(* Tests for the Heron core: the space generator's central guarantee (every
   solution of the constrained space is a valid program on the DLA), the
   constraint-generation rules, statistics, hand-tuned proxies and the
   end-to-end pipeline. *)

module Op = Heron_tensor.Op
module Domain = Heron_csp.Domain
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Template = Heron_sched.Template
module D = Heron_dla.Descriptor
module Validate = Heron_dla.Validate
module Rng = Heron_util.Rng
module Generator = Heron.Generator
module Stats = Heron.Stats
module Pipeline = Heron.Pipeline
module Hand_tuned = Heron.Hand_tuned

(* The paper's key claim: the automatically constrained space contains only
   programs the DLA accepts. *)
let check_all_samples_valid desc op ~samples =
  let gen = Generator.generate desc op in
  let sols = Solver.rand_sat (Rng.create 31) gen.Generator.problem samples in
  Alcotest.(check bool) "space satisfiable" true (sols <> []);
  List.iter
    (fun a ->
      let prog = Concrete.instantiate gen.Generator.template a in
      match Validate.check desc prog with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "sampled program invalid on %s: %s" desc.D.dname
            (Heron_dla.Violation.to_string v))
    sols

let test_space_valid_v100_gemm () =
  check_all_samples_valid D.v100 (Op.gemm ~m:1024 ~n:1024 ~k:1024 ()) ~samples:25

let test_space_valid_v100_skinny () =
  check_all_samples_valid D.v100 (Op.gemm ~m:32 ~n:1000 ~k:4096 ()) ~samples:25

let test_space_valid_v100_conv () =
  check_all_samples_valid D.v100
    (Op.conv2d ~n:16 ~ci:64 ~h:28 ~w:28 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ())
    ~samples:15

let test_space_valid_v100_bmm () =
  check_all_samples_valid D.v100 (Op.bmm ~b:16 ~m:128 ~n:128 ~k:64 ()) ~samples:15

let test_space_valid_dlboost () =
  check_all_samples_valid D.dlboost (Op.gemm ~dt:Op.I8 ~m:512 ~n:512 ~k:512 ()) ~samples:20

let test_space_valid_vta () =
  check_all_samples_valid D.vta (Op.gemm ~dt:Op.I8 ~m:256 ~n:256 ~k:256 ()) ~samples:20

let test_space_valid_scan () =
  check_all_samples_valid D.v100 (Op.scan ~b:64 ~l:4096 ()) ~samples:10

let test_gemv_falls_back () =
  let gen = Generator.generate D.v100 (Op.gemv ~m:1024 ~k:1024 ()) in
  Alcotest.(check bool) "gemv not tensorized (n=1)" false gen.Generator.tensorized

let test_tensorize_when_divisible () =
  let gen = Generator.generate D.v100 (Op.gemm ~m:256 ~n:256 ~k:256 ()) in
  Alcotest.(check bool) "tensorized" true gen.Generator.tensorized;
  Alcotest.(check bool) "intrin recorded" true
    (gen.Generator.template.Template.intrin <> None)

let test_fallback_when_indivisible () =
  (* K = 7 admits no wmma k in {8,16,32}. *)
  let gen = Generator.generate D.v100 (Op.gemm ~m:256 ~n:256 ~k:7 ()) in
  Alcotest.(check bool) "fell back to CUDA cores" false gen.Generator.tensorized

let test_relaxed_space_contains_invalid () =
  (* Dropping the memory-limit constraints (AutoTVM-style) readmits
     programs the DLA rejects — the paper's low-quality-space effect. *)
  let op = Op.gemm ~m:4096 ~n:4096 ~k:4096 () in
  let gen = Generator.generate D.v100 op in
  let relaxed = Heron_baselines.Relax.drop_memory_limits gen.Generator.problem in
  let sols = Solver.rand_sat (Rng.create 13) relaxed 40 in
  let invalid =
    List.filter
      (fun a ->
        not (Validate.is_valid D.v100 (Concrete.instantiate gen.Generator.template a)))
      sols
  in
  Alcotest.(check bool) "some invalid programs" true (List.length invalid > 0)

let test_relax_fix_vars () =
  let gen = Generator.generate D.v100 (Op.gemm ~m:256 ~n:256 ~k:256 ()) in
  let fixed = Heron_baselines.Relax.fix_vars [ ("pad_a", 0) ] gen.Generator.problem in
  Alcotest.(check (list int)) "pinned" [ 0 ] (Domain.to_list (Problem.domain fixed "pad_a"));
  (* Pinning to an out-of-domain value falls back to the domain minimum. *)
  let fixed2 = Heron_baselines.Relax.fix_vars [ ("pad_a", 3) ] gen.Generator.problem in
  Alcotest.(check (list int)) "fallback" [ 0 ] (Domain.to_list (Problem.domain fixed2 "pad_a"))

let test_stats_table5_trend () =
  let count op =
    (Stats.of_problem (Generator.generate D.v100 op).Generator.problem).Stats.total_vars
  in
  let gemm = count (Op.gemm ~m:1024 ~n:1024 ~k:1024 ()) in
  let c1d = count (Op.conv1d ~n:16 ~ci:64 ~l:256 ~co:128 ~kl:3 ~stride:1 ~pad:1 ()) in
  let c2d = count (Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()) in
  let c3d =
    count (Op.conv3d ~n:8 ~ci:16 ~d:8 ~h:28 ~w:28 ~co:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ())
  in
  Alcotest.(check bool) "gemm < c1d" true (gemm < c1d);
  Alcotest.(check bool) "c1d < c2d" true (c1d < c2d);
  Alcotest.(check bool) "c2d < c3d" true (c2d < c3d)

let test_stats_categories_sum () =
  let gen = Generator.generate D.v100 (Op.gemm ~m:1024 ~n:1024 ~k:1024 ()) in
  let c = Stats.of_problem gen.Generator.problem in
  Alcotest.(check int) "categories partition"
    c.Stats.total_vars
    (c.Stats.architectural + c.Stats.loop_length + c.Stats.tunable + c.Stats.auxiliary)

let test_select_semantics () =
  (* The C.shared tile length follows the compute location (Rule C4). *)
  let gen = Generator.generate D.v100 (Op.gemm ~m:512 ~n:512 ~k:512 ()) in
  let sols = Solver.rand_sat (Rng.create 17) gen.Generator.problem 20 in
  List.iter
    (fun a ->
      let loc = Assignment.get a "loc_c" in
      let row = Assignment.get a "len_Cs_row" in
      let expected =
        if loc = 3 then Assignment.get a "aux_i_2" else Assignment.get a "aux_i_1"
      in
      Alcotest.(check int) "row matches location" expected row)
    sols

let test_hand_tuned_runs () =
  let op = Op.gemm ~m:1024 ~n:1024 ~k:1024 () in
  (match Hand_tuned.latency_us ~library:Hand_tuned.Cublas D.v100 op with
  | None -> Alcotest.fail "cublas preset must be feasible"
  | Some l -> Alcotest.(check bool) "positive" true (l > 0.0));
  match
    ( Hand_tuned.latency_us ~library:Hand_tuned.Cublas D.v100 op,
      Hand_tuned.latency_us ~library:Hand_tuned.Pytorch D.v100 op )
  with
  | Some c, Some p ->
      Alcotest.(check bool) "pytorch carries overhead" true (p > c)
  | _ -> Alcotest.fail "both feasible"

let test_hand_tuned_onednn () =
  match
    Hand_tuned.latency_us ~library:Hand_tuned.Onednn D.dlboost
      (Op.gemm ~dt:Op.I8 ~m:512 ~n:512 ~k:512 ())
  with
  | None -> Alcotest.fail "onednn preset must be feasible"
  | Some l -> Alcotest.(check bool) "positive" true (l > 0.0)

let test_pipeline_improves_over_random () =
  let op = Op.gemm ~m:1024 ~n:1024 ~k:1024 () in
  let tuned = Pipeline.tune ~budget:64 ~seed:5 D.v100 op in
  match Pipeline.best_latency_us tuned with
  | None -> Alcotest.fail "tuning must find a program"
  | Some best ->
      (* Compare against the mean of fresh random samples. *)
      let gen = tuned.Pipeline.gen in
      let measure, _ = Pipeline.make_measure D.v100 gen in
      let sols = Solver.rand_sat (Rng.create 99) gen.Generator.problem 10 in
      let latencies = List.filter_map measure sols in
      let mean = List.fold_left ( +. ) 0.0 latencies /. float_of_int (List.length latencies) in
      Alcotest.(check bool) "tuned beats average random" true (best < mean)

let test_pipeline_budget_respected () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let tuned = Pipeline.tune ~budget:32 ~seed:6 D.v100 op in
  Alcotest.(check bool) "at most 32 trials" true
    (List.length tuned.Pipeline.outcome.Heron_search.Cga.result.Heron_search.Env.trace <= 32)

let test_pipeline_best_program_valid () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let tuned = Pipeline.tune ~budget:32 ~seed:7 D.v100 op in
  match Pipeline.best_program tuned with
  | None -> Alcotest.fail "has best program"
  | Some prog -> Alcotest.(check bool) "valid" true (Validate.is_valid D.v100 prog)

(* The pipeline under injected faults: tuning must still deliver a
   validator-clean best program, identically whether the spec arrives as
   an argument or as the process default, and byte-identically to the
   fault-free run when the spec has all-zero rates. *)
let hostile_faults =
  {
    Heron_dla.Faults.seed = 4;
    timeout_rate = 0.15;
    crash_rate = 0.1;
    hang_rate = 0.05;
    noise = 0.2;
    persistent = 0.1;
  }

let test_pipeline_tunes_under_faults () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let tuned = Pipeline.tune ~budget:32 ~seed:6 ~faults:hostile_faults D.v100 op in
  (match Pipeline.best_program tuned with
  | None -> Alcotest.fail "faulted run must still find a program"
  | Some prog -> Alcotest.(check bool) "valid" true (Validate.is_valid D.v100 prog));
  Heron_dla.Faults.set_default (Some hostile_faults);
  let via_default =
    Fun.protect
      ~finally:(fun () -> Heron_dla.Faults.set_default None)
      (fun () -> Pipeline.tune ~budget:32 ~seed:6 D.v100 op)
  in
  Alcotest.(check bool) "process default = explicit spec" true
    (tuned.Pipeline.outcome.Heron_search.Cga.result.Heron_search.Env.trace
    = via_default.Pipeline.outcome.Heron_search.Cga.result.Heron_search.Env.trace)

let test_pipeline_zero_faults_inert () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let plain = Pipeline.tune ~budget:24 ~seed:9 D.v100 op in
  let zeroed =
    Pipeline.tune ~budget:24 ~seed:9 ~faults:{ Heron_dla.Faults.zero with seed = 77 } D.v100 op
  in
  let result t = t.Pipeline.outcome.Heron_search.Cga.result in
  Alcotest.(check bool) "trace identical" true
    ((result plain).Heron_search.Env.trace = (result zeroed).Heron_search.Env.trace);
  Alcotest.(check bool) "best identical" true
    ((result plain).Heron_search.Env.best_latency
    = (result zeroed).Heron_search.Env.best_latency)

let test_pipeline_checkpoint_label_mismatch () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let path = Filename.temp_file "heron_ck_core" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _ = Pipeline.tune ~budget:16 ~seed:3 ~checkpoint:path D.v100 op in
      (* Same checkpoint, different seed: the label check must refuse. *)
      match Pipeline.tune ~budget:16 ~seed:4 ~resume:path D.v100 op with
      | _ -> Alcotest.fail "mismatched checkpoint must be refused"
      | exception Invalid_argument e ->
          Alcotest.(check bool) "diagnostic names the mismatch" true
            (String.length e > 0
            &&
            let needle = "different run" in
            let nl = String.length needle and el = String.length e in
            let rec at i = i + nl <= el && (String.sub e i nl = needle || at (i + 1)) in
            at 0))

let test_generator_deterministic () =
  let op = Op.gemm ~m:512 ~n:512 ~k:512 () in
  let g1 = Generator.generate D.v100 op and g2 = Generator.generate D.v100 op in
  Alcotest.(check int) "same vars" (Problem.n_vars g1.Generator.problem)
    (Problem.n_vars g2.Generator.problem);
  Alcotest.(check int) "same cons" (Problem.n_cons g1.Generator.problem)
    (Problem.n_cons g2.Generator.problem)

let suite =
  [
    Alcotest.test_case "all samples valid: V100 gemm" `Quick test_space_valid_v100_gemm;
    Alcotest.test_case "all samples valid: V100 skinny" `Quick test_space_valid_v100_skinny;
    Alcotest.test_case "all samples valid: V100 conv" `Quick test_space_valid_v100_conv;
    Alcotest.test_case "all samples valid: V100 bmm" `Quick test_space_valid_v100_bmm;
    Alcotest.test_case "all samples valid: DL Boost" `Quick test_space_valid_dlboost;
    Alcotest.test_case "all samples valid: VTA" `Quick test_space_valid_vta;
    Alcotest.test_case "all samples valid: scan" `Quick test_space_valid_scan;
    Alcotest.test_case "gemv falls back" `Quick test_gemv_falls_back;
    Alcotest.test_case "tensorize when divisible" `Quick test_tensorize_when_divisible;
    Alcotest.test_case "fallback when indivisible" `Quick test_fallback_when_indivisible;
    Alcotest.test_case "relaxed space admits invalid" `Quick test_relaxed_space_contains_invalid;
    Alcotest.test_case "relax fix_vars" `Quick test_relax_fix_vars;
    Alcotest.test_case "table5 trend" `Quick test_stats_table5_trend;
    Alcotest.test_case "stats categories sum" `Quick test_stats_categories_sum;
    Alcotest.test_case "SELECT semantics (Rule C4)" `Quick test_select_semantics;
    Alcotest.test_case "hand-tuned proxies run" `Quick test_hand_tuned_runs;
    Alcotest.test_case "oneDNN proxy" `Quick test_hand_tuned_onednn;
    Alcotest.test_case "pipeline beats random" `Quick test_pipeline_improves_over_random;
    Alcotest.test_case "pipeline budget" `Quick test_pipeline_budget_respected;
    Alcotest.test_case "pipeline best program valid" `Quick test_pipeline_best_program_valid;
    Alcotest.test_case "pipeline tunes under faults" `Quick test_pipeline_tunes_under_faults;
    Alcotest.test_case "pipeline zero-rate faults inert" `Quick test_pipeline_zero_faults_inert;
    Alcotest.test_case "pipeline refuses mismatched checkpoint" `Quick
      test_pipeline_checkpoint_label_mismatch;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
  ]
