(* Tests for the cost model: feature binning, regression trees, gradient
   boosting and feature importance. *)

module Domain = Heron_csp.Domain
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Features = Heron_cost.Features
module Fmat = Heron_cost.Fmat
module Tree = Heron_cost.Tree
module Gbt = Heron_cost.Gbt
module Gbt_ref = Heron_cost.Gbt_ref
module Model = Heron_cost.Model
module Rng = Heron_util.Rng
module Obs = Heron_obs.Obs

let toy_problem () =
  let b = Problem.builder () in
  Problem.add_var b "x" (Domain.of_list [ 1; 2; 4; 8; 16 ]);
  Problem.add_var b "y" (Domain.of_list [ 1; 3; 5 ]);
  Problem.add_var b "noise" (Domain.of_list (List.init 10 (fun i -> i)));
  Problem.freeze b

let test_features_shape () =
  let f = Features.of_problem (toy_problem ()) in
  Alcotest.(check int) "three features" 3 (Features.n_features f);
  Alcotest.(check (array string)) "names" [| "x"; "y"; "noise" |] (Features.names f)

let test_binning () =
  let f = Features.of_problem (toy_problem ()) in
  let a = Assignment.of_list [ ("x", 4); ("y", 5); ("noise", 0) ] in
  let bins = Features.binned f a in
  Alcotest.(check int) "x bin" 2 bins.(0);
  Alcotest.(check int) "y bin" 2 bins.(1);
  Alcotest.(check int) "noise bin" 0 bins.(2);
  (* Values below the smallest boundary clamp to bin 0. *)
  let low = Assignment.of_list [ ("x", 0); ("y", 1); ("noise", 9) ] in
  Alcotest.(check int) "clamped" 0 (Features.binned f low).(0)

let test_vector_unbound_zero () =
  let f = Features.of_problem (toy_problem ()) in
  let v = Features.vector f (Assignment.of_list [ ("x", 8) ]) in
  Alcotest.(check (float 0.0)) "bound" 8.0 v.(0);
  Alcotest.(check (float 0.0)) "unbound is 0" 0.0 v.(1)

(* Synthetic regression data over binned features. *)
let synth_data ~n ~bins f =
  let rng = Rng.create 7 in
  let xs = Array.init n (fun _ -> Array.init (Array.length bins) (fun j -> Rng.int rng bins.(j))) in
  let ys = Array.map f xs in
  (xs, ys)

let variance ys =
  let n = float_of_int (Array.length ys) in
  let mean = Array.fold_left ( +. ) 0.0 ys /. n in
  Array.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.0)) 0.0 ys /. n

let mse predict xs ys =
  let n = float_of_int (Array.length xs) in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((predict x -. ys.(i)) ** 2.0)) xs;
  !acc /. n

let test_tree_reduces_error () =
  let bins = [| 8; 8 |] in
  let xs, ys = synth_data ~n:200 ~bins (fun x -> float_of_int ((2 * x.(0)) - x.(1))) in
  let tree = Tree.fit ~n_bins:bins (Fmat.of_rows xs) ys in
  Alcotest.(check bool) "below half the variance" true
    (mse (Tree.predict tree) xs ys < 0.5 *. variance ys)

let test_tree_constant_target () =
  let bins = [| 4 |] in
  let xs, ys = synth_data ~n:50 ~bins (fun _ -> 3.5) in
  let tree = Tree.fit ~n_bins:bins (Fmat.of_rows xs) ys in
  Alcotest.(check (float 1e-9)) "constant" 3.5 (Tree.predict tree [| 2 |]);
  Alcotest.(check int) "single leaf" 1 (Tree.n_nodes tree)

let test_tree_respects_depth () =
  let bins = [| 16; 16; 16 |] in
  let xs, ys =
    synth_data ~n:400 ~bins (fun x -> float_of_int (x.(0) * x.(1)) +. float_of_int x.(2))
  in
  let tree =
    Tree.fit ~params:{ Tree.default_params with Tree.max_depth = 2 } ~n_bins:bins
      (Fmat.of_rows xs) ys
  in
  Alcotest.(check bool) "depth bounded" true (Tree.depth tree <= 2)

let test_gbt_beats_single_tree () =
  let bins = [| 8; 8; 8 |] in
  let f x = float_of_int (x.(0) * x.(1)) -. (2.0 *. float_of_int x.(2)) in
  let xs, ys = synth_data ~n:300 ~bins f in
  let tree = Tree.fit ~n_bins:bins (Fmat.of_rows xs) ys in
  let gbt = Gbt.fit ~n_bins:bins (Fmat.of_rows xs) ys in
  Alcotest.(check bool) "boosting helps" true
    (mse (Gbt.predict gbt) xs ys < mse (Tree.predict tree) xs ys)

let test_gbt_importance_finds_signal () =
  let bins = [| 8; 8; 8; 8 |] in
  (* Only feature 1 matters. *)
  let xs, ys = synth_data ~n:300 ~bins (fun x -> 10.0 *. float_of_int x.(1)) in
  let gbt = Gbt.fit ~n_bins:bins (Fmat.of_rows xs) ys in
  let gains = Gbt.feature_gains gbt in
  let best = ref 0 in
  Array.iteri (fun i g -> if g > gains.(!best) then best := i) gains;
  Alcotest.(check int) "feature 1 dominates" 1 !best

let test_model_lifecycle () =
  let p = toy_problem () in
  let m = Model.create p in
  Alcotest.(check bool) "untrained" false (Model.trained m);
  Alcotest.(check (float 0.0)) "prior" 0.0
    (Model.predict m (Assignment.of_list [ ("x", 2); ("y", 3); ("noise", 1) ]));
  (* Score = x, independent of y/noise. *)
  let rng = Rng.create 3 in
  for _ = 1 to 64 do
    let x = [| 1; 2; 4; 8; 16 |].(Rng.int rng 5) in
    let a = Assignment.of_list [ ("x", x); ("y", 1 + (2 * Rng.int rng 3)); ("noise", Rng.int rng 10) ] in
    Model.record m a (float_of_int x)
  done;
  Model.refit m;
  Alcotest.(check bool) "trained" true (Model.trained m);
  let pred x = Model.predict m (Assignment.of_list [ ("x", x); ("y", 3); ("noise", 5) ]) in
  Alcotest.(check bool) "monotone in x" true (pred 16 > pred 1);
  (match Model.key_variables m 1 with
  | [ "x" ] -> ()
  | other -> Alcotest.failf "expected x as key variable, got [%s]" (String.concat ";" other));
  Alcotest.(check int) "sample count" 64 (Model.n_samples m)

let test_model_window () =
  let p = toy_problem () in
  let m = Model.create ~window:10 p in
  for i = 1 to 25 do
    Model.record m (Assignment.of_list [ ("x", 1); ("y", 1); ("noise", i mod 10) ]) 1.0
  done;
  Alcotest.(check int) "window capped" 10 (Model.n_samples m)

let test_key_variables_fallback () =
  let p = toy_problem () in
  let m = Model.create p in
  Alcotest.(check (list string)) "untrained fallback" [ "x"; "y" ] (Model.key_variables m 2)

(* The flat engine must reproduce the frozen reference bit for bit:
   identical fitted ensembles (canonical dumps) and identical predictions. *)
let test_gbt_matches_reference () =
  let bins = [| 8; 6; 8; 4 |] in
  let f x = float_of_int (x.(0) * x.(1)) -. (2.0 *. float_of_int x.(2)) +. 0.3 in
  let xs, ys = synth_data ~n:150 ~bins f in
  let gbt = Gbt.fit ~n_bins:bins (Fmat.of_rows xs) ys in
  let ref_gbt = Gbt_ref.fit ~n_bins:bins xs ys in
  Alcotest.(check string) "identical dumps" (Gbt_ref.dump ref_gbt) (Gbt.dump gbt);
  Array.iter
    (fun x ->
      Alcotest.(check (float 0.0)) "identical prediction" (Gbt_ref.predict ref_gbt x)
        (Gbt.predict gbt x))
    xs;
  let gains = Gbt.feature_gains gbt and ref_gains = Gbt_ref.feature_gains ref_gbt in
  Array.iteri
    (fun i g -> Alcotest.(check (float 0.0)) "identical gains" ref_gains.(i) g)
    gains

(* Recording into a full window must not allocate proportionally to the
   window: minor-heap words per record should match between a tiny and a
   large window (the old list window rebuilt O(window) cells per insert). *)
let test_record_constant_allocation () =
  let p = toy_problem () in
  let a = Assignment.of_list [ ("x", 4); ("y", 3); ("noise", 7) ] in
  let words_per_record window =
    let m = Model.create ~window p in
    for _ = 1 to window do Model.record m a 1.0 done;
    (* Window now full: measure steady-state insert cost. *)
    let w0 = Gc.minor_words () in
    for _ = 1 to 10_000 do Model.record m a 1.0 done;
    (Gc.minor_words () -. w0) /. 10_000.0
  in
  let small = words_per_record 16 and large = words_per_record 2048 in
  Alcotest.(check bool)
    (Printf.sprintf "O(1) record (small %.1f vs large %.1f words)" small large)
    true
    (large < small +. 16.0)

let test_untrained_predict_batch_counts () =
  let p = toy_problem () in
  let m = Model.create p in
  (* Counter.make is idempotent by name: this is the model's counter. *)
  let c_calls = Obs.Counter.make "costmodel.predict_calls" in
  let calls0 = Obs.Counter.value c_calls in
  let out = Model.predict_batch m [ Assignment.of_list [ ("x", 2); ("y", 3); ("noise", 0) ] ] in
  Alcotest.(check (list (float 0.0))) "untrained zeros" [ 0.0 ] out;
  let calls1 = Obs.Counter.value c_calls in
  Alcotest.(check int) "untrained path counted" (calls0 + 1) calls1

(* The batched/pre-binned entry points of the interned search engine must
   be observably identical to the scalar paths they replace: same ring
   bytes ([samples]), same ensemble after refit, same predictions. *)
let batch_observations n =
  let rng = Rng.create 23 in
  List.init n (fun i ->
      let a =
        Assignment.of_list
          [
            ("x", [| 1; 2; 4; 8; 16 |].(Rng.int rng 5));
            ("y", [| 1; 3; 5 |].(Rng.int rng 3));
            ("noise", Rng.int rng 10);
          ]
      in
      (a, float_of_int (i + 1)))

let same_samples msg a b =
  let sa = Model.samples a and sb = Model.samples b in
  Alcotest.(check int) (msg ^ ": window length") (List.length sa) (List.length sb);
  List.iter2
    (fun (b1, y1) (b2, y2) ->
      Alcotest.(check (array int)) (msg ^ ": bins") b1 b2;
      Alcotest.(check (float 0.0)) (msg ^ ": score") y1 y2)
    sa sb

let test_record_batch_matches_record () =
  let p = toy_problem () in
  let obs = batch_observations 40 in
  let scalar = Model.create ~window:24 p in
  List.iter (fun (a, y) -> Model.record scalar a y) obs;
  let batched = Model.create ~window:24 p in
  Model.record_batch batched obs;
  same_samples "no pool" scalar batched;
  let pooled = Model.create ~window:24 p in
  Heron_util.Pool.with_pool ~domains:3 (fun pool -> Model.record_batch ~pool pooled obs);
  same_samples "pool of 3" scalar pooled;
  (* record_row through a caller-binned matrix is the same observation. *)
  let rowed = Model.create ~window:24 p in
  let m = Fmat.create ~capacity:1 ~n_features:(Model.n_features rowed) () in
  Fmat.set_rows m 1;
  List.iter
    (fun (a, y) ->
      Model.featurize_row rowed a m 0;
      Model.record_row rowed m 0 y)
    obs;
  same_samples "record_row" scalar rowed

let test_predict_gather_matches_predict_batch () =
  let p = toy_problem () in
  let obs = batch_observations 60 in
  let m = Model.create p in
  List.iter (fun (a, y) -> Model.record m a y) obs;
  Model.refit m;
  Alcotest.(check bool) "trained" true (Model.trained m);
  let probes = List.map fst (batch_observations 17) in
  let n = List.length probes in
  (* Bin each probe once into a scratch matrix, scattered over rows. *)
  let src = Fmat.create ~capacity:(2 * n) ~n_features:(Model.n_features m) () in
  Fmat.set_rows src (2 * n);
  let rows = Array.init n (fun i -> (2 * i) + 1) in
  List.iteri (fun i a -> Model.featurize_row m a src rows.(i)) probes;
  let out = Array.make n nan in
  Model.predict_gather m src rows n out;
  let expect = Array.of_list (Model.predict_batch m probes) in
  Alcotest.(check (array (float 0.0))) "gather = batch" expect out;
  (* Untrained: both paths yield zeros. *)
  let fresh = Model.create p in
  let out0 = Array.make n nan in
  List.iteri (fun i a -> Model.featurize_row fresh a src rows.(i)) probes;
  Model.predict_gather fresh src rows n out0;
  Alcotest.(check (array (float 0.0)))
    "untrained zeros"
    (Array.of_list (Model.predict_batch fresh probes))
    out0

let test_samples_restore_roundtrip () =
  let p = toy_problem () in
  let m = Model.create ~window:10 p in
  let rng = Rng.create 11 in
  for i = 1 to 25 do
    let a =
      Assignment.of_list
        [ ("x", [| 1; 2; 4; 8; 16 |].(Rng.int rng 5)); ("y", 3); ("noise", i mod 10) ]
    in
    Model.record m a (float_of_int i)
  done;
  let snap = Model.samples m in
  Alcotest.(check int) "snapshot capped" 10 (List.length snap);
  Alcotest.(check (float 0.0)) "most recent first" 25.0 (snd (List.hd snap));
  let m2 = Model.create ~window:10 p in
  Model.restore m2 snap;
  Alcotest.(check bool) "restore drops ensemble" false (Model.trained m2);
  let snap2 = Model.samples m2 in
  Alcotest.(check int) "round-trip length" (List.length snap) (List.length snap2);
  List.iter2
    (fun (b1, y1) (b2, y2) ->
      Alcotest.(check (array int)) "bins round-trip" b1 b2;
      Alcotest.(check (float 0.0)) "score round-trip" y1 y2)
    snap snap2;
  (* Refit after restore reproduces the exact ensemble of the original. *)
  Model.refit m;
  Model.refit m2;
  let probe = Assignment.of_list [ ("x", 8); ("y", 3); ("noise", 4) ] in
  Alcotest.(check (float 0.0)) "same prediction" (Model.predict m probe) (Model.predict m2 probe)

let suite =
  [
    Alcotest.test_case "feature shape" `Quick test_features_shape;
    Alcotest.test_case "binning" `Quick test_binning;
    Alcotest.test_case "vector unbound" `Quick test_vector_unbound_zero;
    Alcotest.test_case "tree reduces error" `Quick test_tree_reduces_error;
    Alcotest.test_case "tree constant" `Quick test_tree_constant_target;
    Alcotest.test_case "tree depth bound" `Quick test_tree_respects_depth;
    Alcotest.test_case "gbt beats tree" `Quick test_gbt_beats_single_tree;
    Alcotest.test_case "importance finds signal" `Quick test_gbt_importance_finds_signal;
    Alcotest.test_case "model lifecycle" `Quick test_model_lifecycle;
    Alcotest.test_case "model window" `Quick test_model_window;
    Alcotest.test_case "key variable fallback" `Quick test_key_variables_fallback;
    Alcotest.test_case "gbt matches reference" `Quick test_gbt_matches_reference;
    Alcotest.test_case "O(1) record" `Quick test_record_constant_allocation;
    Alcotest.test_case "record_batch = record" `Quick test_record_batch_matches_record;
    Alcotest.test_case "predict_gather = predict_batch" `Quick
      test_predict_gather_matches_predict_batch;
    Alcotest.test_case "untrained predict_batch counts" `Quick test_untrained_predict_batch_counts;
    Alcotest.test_case "samples/restore round-trip" `Quick test_samples_restore_roundtrip;
  ]
