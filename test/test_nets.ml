(* Tests for the whole-network multi-task tuner: task extraction,
   scheduler state round-trip, --jobs independence of the full tuning run,
   and the crash/resume cycle (kill after a round, resume from the
   composite checkpoint, byte-identical final library). *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Pool = Heron_util.Pool
module Json = Heron_obs.Json
module Library = Heron.Library
module Tasks = Heron_nets.Tasks
module Models = Heron_nets.Models
module Scheduler = Heron_nets.Scheduler
module Tuner = Heron_nets.Tuner
module D = Heron_dla.Descriptor

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* ---------- task extraction ---------- *)

let test_extract_dedup () =
  (* tiny lists the 32^3 gemm twice (multiplicities 2 and 1): the
     extractor must fold both layers into one task of weight 3, keeping
     first-appearance order and dense ids. *)
  let ts = Tasks.extract Models.tiny in
  Alcotest.(check int) "two distinct tasks" 2 (List.length ts);
  let t0 = List.nth ts 0 and t1 = List.nth ts 1 in
  Alcotest.(check int) "dense id 0" 0 t0.Tasks.t_id;
  Alcotest.(check int) "dense id 1" 1 t1.Tasks.t_id;
  Alcotest.(check int) "duplicate layers sum weights" 3 t0.Tasks.t_weight;
  Alcotest.(check int) "singleton weight" 1 t1.Tasks.t_weight;
  Alcotest.(check bool) "keys distinct" true (t0.Tasks.t_key <> t1.Tasks.t_key);
  (match Models.tiny.Models.layers with
  | (_, op) :: _ ->
      Alcotest.(check string) "first-appearance order" (Library.op_key op) t0.Tasks.t_key
  | [] -> Alcotest.fail "tiny has layers");
  Alcotest.(check bool) "extraction is deterministic" true (Tasks.extract Models.tiny = ts);
  Alcotest.(check (array (float 0.0))) "weights vector" [| 3.0; 1.0 |] (Tasks.weights ts)

let test_extract_ignores_nonpositive () =
  let net =
    {
      Models.net_name = "Z";
      layers =
        [ (0, Op.gemm ~m:8 ~n:8 ~k:8 ()); (-3, Op.gemm ~m:8 ~n:8 ~k:8 ());
          (2, Op.gemm ~m:8 ~n:8 ~k:8 ()) ];
    }
  in
  match Tasks.extract net with
  | [ t ] -> Alcotest.(check int) "only positive multiplicities count" 2 t.Tasks.t_weight
  | ts -> Alcotest.failf "expected one task, got %d" (List.length ts)

(* ---------- scheduler state round-trip ---------- *)

let report_stream sched n =
  (* A deterministic improving-then-flat latency stream, so both the
     original and the restored scheduler see identical reports. *)
  for i = 0 to n - 1 do
    match Scheduler.next sched with
    | None -> ()
    | Some (t, a) ->
        let best = Some (20.0 /. float_of_int (i + 1)) in
        Scheduler.report sched ~task:t ~alloc:a ~best ~done_:false
  done

let test_scheduler_export_import () =
  let s = Scheduler.create ~slice:4 ~budget:64 [| 3.0; 1.0; 2.0 |] in
  report_stream s 5;
  (* Round-trip through the printed JSON, exactly as the checkpoint file
     does. *)
  let s' =
    match Json.parse (Json.to_string (Scheduler.export s)) with
    | Error e -> Alcotest.failf "export did not print valid JSON: %s" e
    | Ok v -> (
        match Scheduler.import v with
        | Ok s' -> s'
        | Error e -> Alcotest.fail e)
  in
  Alcotest.(check int) "remaining preserved" (Scheduler.remaining s) (Scheduler.remaining s');
  (* Both continue byte-identically to exhaustion under the same report
     stream. *)
  let drain sched =
    let log = ref [] in
    let continue_ = ref true in
    while !continue_ do
      match Scheduler.next sched with
      | None -> continue_ := false
      | Some (t, a) ->
          let r = List.length !log in
          let best = Some (10.0 +. float_of_int ((r * 13) mod 7)) in
          Scheduler.report sched ~task:t ~alloc:a ~best ~done_:false;
          log := (t, a) :: !log
    done;
    List.rev !log
  in
  let tail = drain s and tail' = drain s' in
  Alcotest.(check bool) "continuation nonempty" true (tail <> []);
  Alcotest.(check bool) "restored scheduler continues identically" true (tail = tail')

let test_scheduler_import_rejects () =
  (match Scheduler.import (Json.String "nope") with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  let c = Scheduler.create ~policy:(Scheduler.Custom (fun _ -> 1.0)) ~budget:8 [| 1.0 |] in
  match Scheduler.import (Scheduler.export c) with
  | Ok _ -> Alcotest.fail "custom-policy snapshot restored"
  | Error e ->
      if not (contains e "custom") then
        Alcotest.failf "diagnostic %S does not mention the custom policy" e

(* ---------- whole-run determinism ---------- *)

(* Everything durable about a tuning run. [r_measurements] is deliberately
   excluded: the measurer-invocation count is process-local bookkeeping
   and differs across a kill/resume cycle (the pre-crash process took some
   of them with it). *)
let fingerprint r =
  ( r.Tuner.r_allocations,
    r.Tuner.r_latency_us,
    List.map
      (fun tr ->
        ( tr.Tuner.tr_best,
          tr.Tuner.tr_trace,
          Option.map Assignment.key tr.Tuner.tr_best_assignment,
          tr.Tuner.tr_transferred,
          tr.Tuner.tr_rounds,
          tr.Tuner.tr_alloc ))
      r.Tuner.r_reports,
    Library.to_string r.Tuner.r_library )

let budget = 32
let seed = 11
let slice = 8

let test_jobs_independence () =
  let seq = Tuner.tune ~budget ~seed ~slice D.v100 Models.tiny in
  let par =
    Pool.with_pool ~domains:3 (fun pool ->
        Tuner.tune ~budget ~seed ~slice ~pool D.v100 Models.tiny)
  in
  Alcotest.(check bool) "tuning run identical at any --jobs" true
    (fingerprint seq = fingerprint par);
  Alcotest.(check bool) "library nonempty" true (Library.size seq.Tuner.r_library > 0)

(* ---------- checkpoint restore ---------- *)

(* The true mid-run crash (kill after the first round, resume, compare to
   the uninterrupted run) lives in [test_nets_crash.ml]: it forks, and
   OCaml forbids fork in this binary once the pool suites have spawned
   domains. Here: a completed run's checkpoint reconstructs the whole
   result from the file alone, and mismatched runs are refused. *)
let test_checkpoint_resume () =
  let full = Tuner.tune ~budget ~seed ~slice D.v100 Models.tiny in
  let path = Filename.temp_file "heron_nets_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ckpt = Tuner.tune ~budget ~seed ~slice ~checkpoint:path D.v100 Models.tiny in
      Alcotest.(check bool) "checkpointing does not perturb the run" true
        (fingerprint full = fingerprint ckpt);
      (* The final checkpoint has zero budget left: resuming runs no
         rounds, so the library and reports are rebuilt purely from the
         restored scheduler state and per-task snapshots. *)
      let resumed = Tuner.tune ~budget ~seed ~slice ~resume:path D.v100 Models.tiny in
      Alcotest.(check string) "library rebuilt from the file alone"
        (Library.to_string full.Tuner.r_library)
        (Library.to_string resumed.Tuner.r_library);
      Alcotest.(check bool) "result rebuilt from the file alone" true
        (fingerprint full = fingerprint resumed);
      (* The same file must be refused by any differently-labelled run:
         another seed, and another network (task-set mismatch). *)
      (match Tuner.tune ~budget ~seed:(seed + 1) ~slice ~resume:path D.v100 Models.tiny with
      | _ -> Alcotest.fail "mismatched seed accepted"
      | exception Invalid_argument e ->
          if not (contains e "different run") then
            Alcotest.failf "diagnostic %S does not mention the label mismatch" e);
      match Tuner.tune ~budget ~seed ~slice ~resume:path D.v100 Models.mini with
      | _ -> Alcotest.fail "mismatched network accepted"
      | exception Invalid_argument _ -> ())

let suite =
  [
    Alcotest.test_case "extractor dedups and sums weights" `Quick test_extract_dedup;
    Alcotest.test_case "extractor ignores non-positive layers" `Quick
      test_extract_ignores_nonpositive;
    Alcotest.test_case "scheduler export/import round-trip" `Quick
      test_scheduler_export_import;
    Alcotest.test_case "scheduler import diagnostics" `Quick test_scheduler_import_rejects;
    Alcotest.test_case "tuning identical across jobs" `Quick test_jobs_independence;
    Alcotest.test_case "checkpoint rebuilds the result" `Quick test_checkpoint_resume;
  ]
