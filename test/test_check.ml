(* The heron_check property catalogue at tier-1 budget: the same suites
   bin/fuzz runs open-ended, here as alcotest cases under `dune runtest`.
   QCHECK_SEED overrides the campaign seed; each property derives its
   generator state from (seed, name) so filtering never shifts streams. *)

module Replay = Heron_check.Replay

let budget =
  match Sys.getenv_opt "HERON_CHECK_BUDGET" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let suite =
  let seed = Replay.seed_from_env () in
  Heron_check.Suite.all ~budget
  |> List.concat_map (fun (group, tests) ->
         List.map
           (fun t ->
             (* The DLA/search groups build real spaces and run CGA: slow
                by alcotest convention, skippable via ALCOTEST_QUICK. *)
             let speed = if group = "diff" || group = "engine" then `Quick else `Slow in
             Replay.to_alcotest ~speed ~seed t)
           tests)

(* Oracle sanity: the ground truth itself is simple enough to verify by
   hand on a couple of pinned cases. *)
let test_oracle_pinned () =
  let open Heron_csp in
  let p =
    Problem.of_parts
      [ ("x", Domain.of_list [ 1; 2; 3 ]); ("y", Domain.of_list [ 2; 3 ]) ]
      [ Cons.Le ("x", "y") ]
  in
  Alcotest.(check int) "space" 6 (Heron_check.Oracle.space_size p);
  Alcotest.(check int) "solutions" 5 (Heron_check.Oracle.count p);
  Alcotest.(check bool) "sat" true (Heron_check.Oracle.is_sat p);
  let unsat =
    Problem.of_parts [ ("x", Domain.of_list [ 2; 3 ]) ] [ Cons.In ("x", [ 5 ]) ]
  in
  Alcotest.(check bool) "unsat" false (Heron_check.Oracle.is_sat unsat);
  Alcotest.(check int) "no solutions" 0 (Heron_check.Oracle.count unsat)

let test_generator_wellformed () =
  (* Every generated spec converts to a problem whose space the oracle can
     afford; the generator's own documented bound. *)
  Replay.run_test ~seed:(Replay.seed_from_env ())
    (QCheck.Test.make ~name:"csp_gen specs are well-formed and bounded" ~count:200
       (Heron_check.Csp_gen.arbitrary ()) (fun sp ->
         let p = Heron_check.Csp_gen.to_problem sp in
         Heron_check.Oracle.space_size p <= 20_000
         && Heron_csp.Problem.n_vars p >= 2))

let test_replay_state_is_name_keyed () =
  (* The whole replay story rests on this: the per-property random state
     depends on the property name, not on which other properties ran. *)
  let s1 = Replay.rand_for ~seed:42 "a" and s2 = Replay.rand_for ~seed:42 "a" in
  Alcotest.(check bool) "same name, same stream" true
    (Random.State.bits s1 = Random.State.bits s2);
  let s3 = Replay.rand_for ~seed:42 "b" in
  Alcotest.(check bool) "different name, different stream" true
    (Random.State.bits (Replay.rand_for ~seed:42 "a") <> Random.State.bits s3
    || Random.State.bits s3 <> Random.State.bits (Replay.rand_for ~seed:43 "b"))

let suite =
  Alcotest.test_case "oracle pinned cases" `Quick test_oracle_pinned
  :: Alcotest.test_case "generator well-formed" `Quick test_generator_wellformed
  :: Alcotest.test_case "replay state name-keyed" `Quick test_replay_state_is_name_keyed
  :: suite
