(* Crash/resume cycle for the whole-network tuner, in its own binary:
   the crash run dies from inside [Tuner.tune] via [~kill_after] in a
   forked child, and OCaml forbids [Unix.fork] once any domain has been
   spawned — so this cannot share a process with the pool-backed suites
   in [test_heron]. Nothing here ever creates a domain. *)

module Assignment = Heron_csp.Assignment
module Library = Heron.Library
module Models = Heron_nets.Models
module Tuner = Heron_nets.Tuner
module D = Heron_dla.Descriptor

let budget = 32
let seed = 11
let slice = 8

(* Durable run identity; the measurer-invocation count is process-local
   (the pre-crash process took some invocations with it) and is
   deliberately excluded. *)
let fingerprint r =
  ( r.Tuner.r_allocations,
    r.Tuner.r_latency_us,
    List.map
      (fun tr ->
        ( tr.Tuner.tr_best,
          tr.Tuner.tr_trace,
          Option.map Assignment.key tr.Tuner.tr_best_assignment,
          tr.Tuner.tr_transferred ))
      r.Tuner.r_reports,
    Library.to_string r.Tuner.r_library )

let test_kill_resume () =
  let full = Tuner.tune ~budget ~seed ~slice D.v100 Models.tiny in
  let path = Filename.temp_file "heron_nets_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Die with status 3 after the first checkpoint write, exactly as
         the CLI's --kill-after flag does. *)
      flush stdout;
      flush stderr;
      (match Unix.fork () with
      | 0 -> (
          try
            ignore
              (Tuner.tune ~budget ~seed ~slice ~checkpoint:path ~kill_after:1 D.v100
                 Models.tiny);
            Unix._exit 9 (* kill_after must not let the run finish *)
          with _ -> Unix._exit 8)
      | pid -> (
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 3 -> ()
          | _, Unix.WEXITED n -> Alcotest.failf "crash run exited %d, wanted 3" n
          | _ -> Alcotest.fail "crash run was stopped by a signal"));
      Alcotest.(check bool) "checkpoint written before the crash" true
        (Sys.file_exists path);
      let resumed = Tuner.tune ~budget ~seed ~slice ~resume:path D.v100 Models.tiny in
      Alcotest.(check string) "final library byte-identical"
        (Library.to_string full.Tuner.r_library)
        (Library.to_string resumed.Tuner.r_library);
      Alcotest.(check bool) "whole run identical after mid-run crash" true
        (fingerprint full = fingerprint resumed))

let () =
  Alcotest.run "heron_nets_crash"
    [
      ( "nets-crash",
        [ Alcotest.test_case "kill after round, resume byte-identical" `Quick
            test_kill_resume ] );
    ]
