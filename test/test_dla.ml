(* Tests for the DLA simulators: descriptors, the validator (which
   violations are caught), the performance model's qualitative behavior and
   the measurer. *)

module Op = Heron_tensor.Op
module Concrete = Heron_sched.Concrete
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module D = Heron_dla.Descriptor
module Validate = Heron_dla.Validate
module Violation = Heron_dla.Violation
module Perf = Heron_dla.Perf_model
module Measure = Heron_dla.Measure
module Rng = Heron_util.Rng

let solve_gemm ?(seed = 3) ?(m = 256) ?(n = 256) ?(k = 256) desc =
  let op = Op.gemm ~m ~n ~k () in
  let gen = Heron.Generator.generate desc op in
  match Solver.solve (Rng.create seed) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "generated space must be satisfiable"
  | Some a -> (gen, a)

let instantiate (gen : Heron.Generator.t) a =
  Concrete.instantiate gen.Heron.Generator.template a

let test_descriptor_shapes () =
  List.iter
    (fun (m, n, k) ->
      Alcotest.(check int) "wmma product" 4096 (m * n * k);
      Alcotest.(check bool) "members" true
        (List.for_all (fun x -> List.mem x [ 8; 16; 32 ]) [ m; n; k ]))
    D.v100.D.intrin_shapes;
  Alcotest.(check int) "seven wmma shapes" 7 (List.length D.v100.D.intrin_shapes)

let test_descriptor_peaks () =
  Alcotest.(check (float 1.0)) "v100 peak" 112.0 (D.peak_tflops D.v100);
  Alcotest.(check (float 1.0)) "a100 peak" 312.0 (D.peak_tflops D.a100);
  Alcotest.(check (float 1.0)) "t4 peak" 65.0 (D.peak_tflops D.t4);
  Alcotest.(check bool) "dlboost has vnni" true (D.has_intrinsic D.dlboost);
  Alcotest.(check (option int)) "shared cap" (Some 49152) (D.scope_capacity D.v100 "shared")

let test_valid_solution_passes () =
  let gen, a = solve_gemm D.v100 in
  Alcotest.(check bool) "valid" true (Validate.is_valid D.v100 (instantiate gen a))

let test_bad_intrinsic_shape () =
  let gen, a = solve_gemm D.v100 in
  (* Force a wmma shape whose product is not 4096. *)
  let bad = Assignment.set (Assignment.set a "intrin_m" 32) "intrin_k" 32 in
  let bad = Assignment.set bad "intrin_n" 32 in
  (* Keep coverage consistent is impossible here, so only shape-check
     first: coverage failure or bad shape are both violations. *)
  match Validate.check D.v100 (instantiate gen bad) with
  | Ok () -> Alcotest.fail "must be rejected"
  | Error _ -> ()

let test_smem_overflow_detected () =
  let gen, a = solve_gemm ~m:4096 ~n:4096 ~k:4096 D.v100 in
  (* Blow up the A tile rows beyond any capacity while keeping the product
     chain broken — validator must reject either way; look specifically for
     a memory violation by inflating the C.shared select length. *)
  let huge = Assignment.set a "len_Cs_row" 4096 in
  let huge = Assignment.set huge "len_Cs_col" 4096 in
  match Validate.check D.v100 (instantiate gen huge) with
  | Error (Violation.Spm_overflow { scope = "shared"; _ }) -> ()
  | Error v -> Alcotest.failf "expected smem overflow, got %s" (Violation.to_string v)
  | Ok () -> Alcotest.fail "16M C tile cannot fit in 48K"

let test_bad_vector_length () =
  let gen, a = solve_gemm D.v100 in
  let bad = Assignment.set a "vec_a" 3 in
  match Validate.check D.v100 (instantiate gen bad) with
  | Error (Violation.Bad_vector_length 3) -> ()
  | Error v -> Alcotest.failf "expected vector violation, got %s" (Violation.to_string v)
  | Ok () -> Alcotest.fail "vector width 3 unsupported"

let test_coverage_violation () =
  let gen, a = solve_gemm D.v100 in
  let bad = Assignment.set a "tile_i_block" (Assignment.get a "tile_i_block" * 2) in
  match Validate.check D.v100 (instantiate gen bad) with
  | Error (Violation.Coverage _) -> ()
  | Error v -> Alcotest.failf "expected coverage, got %s" (Violation.to_string v)
  | Ok () -> Alcotest.fail "broken tiling must be rejected"

let test_vta_loop_order () =
  let op = Op.gemm ~dt:Op.I8 ~m:64 ~n:256 ~k:256 () in
  let gen = Heron.Generator.generate D.vta op in
  match Solver.solve (Rng.create 5) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      Alcotest.(check bool) "heron sample valid" true
        (Validate.is_valid D.vta (instantiate gen a));
      (* tile_j_tile = 1 makes a reduction loop innermost above the tile. *)
      let jt = Assignment.get a "tile_j_tile" in
      let bad = Assignment.set a "tile_j_tile" 1 in
      let bad = Assignment.set bad "tile_j_out" (Assignment.get a "tile_j_out" * jt) in
      let prog = instantiate gen bad in
      if Concrete.coverage_errors prog = [] then begin
        match Validate.check D.vta prog with
        | Error (Violation.Bad_loop_order _) -> ()
        | Error v -> Alcotest.failf "expected loop order, got %s" (Violation.to_string v)
        | Ok () ->
            (* Valid only if no reduction loop remains above the tile. *)
            let c = Concrete.compute_stage prog in
            let has_red =
              List.exists
                (fun (l : Concrete.cloop) ->
                  l.Concrete.kind = Op.Reduction && l.Concrete.extent > 1
                  && l.Concrete.ann <> Concrete.Tensorized)
                (Concrete.loop_path prog c)
            in
            Alcotest.(check bool) "only valid without reductions" false has_red
      end

let test_missing_tensorize_vta () =
  (* A scan cannot be tensorized; VTA must reject it. *)
  let op = Op.scan ~b:16 ~l:64 () in
  let gen = Heron.Generator.generate D.vta op in
  match Solver.solve (Rng.create 2) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "scan space is satisfiable"
  | Some a -> (
      match Validate.check D.vta (instantiate gen a) with
      | Error Violation.Missing_tensorize -> ()
      | Error v -> Alcotest.failf "expected missing tensorize, got %s" (Violation.to_string v)
      | Ok () -> Alcotest.fail "VTA has no scalar path")

let test_perf_deterministic () =
  let gen, a = solve_gemm D.v100 in
  let prog = instantiate gen a in
  Alcotest.(check (float 1e-9)) "deterministic" (Perf.latency_us D.v100 prog)
    (Perf.latency_us D.v100 prog)

let test_perf_positive_and_bounded () =
  let gen, a = solve_gemm D.v100 in
  let prog = instantiate gen a in
  let b = Perf.analyze D.v100 prog in
  Alcotest.(check bool) "latency positive" true (b.Perf.latency_us > 0.0);
  Alcotest.(check bool) "utilization in (0,1]" true
    (b.Perf.utilization > 0.0 && b.Perf.utilization <= 1.0);
  (* Achieved throughput can never exceed the descriptor peak. *)
  let tflops = Perf.achieved_tflops (Op.gemm ~m:256 ~n:256 ~k:256 ()) b.Perf.latency_us in
  Alcotest.(check bool) "below peak" true (tflops <= D.peak_tflops D.v100)

let test_perf_occupancy_effect () =
  (* Same tiles, more warps => the model must not get slower. *)
  let gen, a = solve_gemm ~m:1024 ~n:1024 ~k:256 D.v100 in
  let warp_i = Assignment.get a "tile_i_warp" in
  if warp_i = 1 && Assignment.get a "tile_i_tile" mod 2 = 0 then begin
    let more =
      Assignment.set
        (Assignment.set a "tile_i_warp" 2)
        "tile_i_tile"
        (Assignment.get a "tile_i_tile" / 2)
    in
    let l1 = Perf.latency_us D.v100 (instantiate gen a) in
    let l2 = Perf.latency_us D.v100 (instantiate gen more) in
    Alcotest.(check bool) "more warps helps or ties (within noise)" true
      (l2 <= l1 *. 1.15)
  end

let test_bank_conflict_effect () =
  (* A padded shared tile with a conflict-free row must not be slower than
     the same tile with a 128-byte-aligned (conflicting) row. *)
  let gen, a = solve_gemm ~m:1024 ~n:1024 ~k:1024 D.v100 in
  let col = Assignment.get a "len_As_col" in
  if col * 2 mod 128 = 0 then begin
    let padded = Assignment.set a "pad_a" 8 in
    let unpadded = Assignment.set a "pad_a" 0 in
    let lp = Perf.latency_us D.v100 (instantiate gen padded) in
    let lu = Perf.latency_us D.v100 (instantiate gen unpadded) in
    Alcotest.(check bool) "padding avoids conflicts" true (lp <= lu *. 1.1)
  end

let test_measure_counts_and_average () =
  let gen, a = solve_gemm D.v100 in
  let m = Measure.create ~reps:5 D.v100 in
  let prog = instantiate gen a in
  (match Measure.run m prog with
  | Error v -> Alcotest.failf "valid program: %s" (Violation.to_string v)
  | Ok l ->
      let base = Perf.latency_us D.v100 prog in
      Alcotest.(check bool) "close to model" true (abs_float (l -. base) < 0.02 *. base));
  ignore (Measure.run m prog);
  Alcotest.(check int) "count" 2 (Measure.count m)

let test_measure_rejects_invalid () =
  let gen, a = solve_gemm D.v100 in
  let m = Measure.create D.v100 in
  let bad = Assignment.set a "vec_b" 5 in
  match Measure.run m (instantiate gen bad) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid program must not measure"

let test_faster_hardware_is_faster () =
  (* The same program on A100 must beat V100 which must beat T4. *)
  let op = Op.gemm ~m:1024 ~n:1024 ~k:1024 () in
  let gen = Heron.Generator.generate D.v100 op in
  match Solver.solve (Rng.create 11) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      let prog = instantiate gen a in
      let l_v100 = Perf.latency_us D.v100 prog in
      let l_a100 = Perf.latency_us D.a100 prog in
      let l_t4 = Perf.latency_us D.t4 prog in
      Alcotest.(check bool) "a100 < v100" true (l_a100 < l_v100);
      Alcotest.(check bool) "v100 < t4" true (l_v100 < l_t4)

let test_explain_report () =
  let gen, a = solve_gemm D.v100 in
  let report = Heron_dla.Explain.report D.v100 (instantiate gen a) in
  let contains needle =
    let n = String.length needle and m = String.length report in
    let rec go i = i + n <= m && (String.sub report i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "valid line" true (contains "validity: ok");
  Alcotest.(check bool) "shared usage" true (contains "scratchpad shared");
  Alcotest.(check bool) "latency line" true (contains "latency:")

(* ---- exhaustive Violation.t constructor coverage ----

   Hand-built Concrete.t programs (plain records, no template needed) let
   each check be targeted precisely, so every constructor is produced at
   least once with its exact payload. *)

let mk_loop ?(ann = Concrete.Plain) ~origin ~kind name extent =
  Concrete.{ name; extent; origin; kind; ann }

let sp = Op.Spatial
let rd = Op.Reduction

let mk_prog ?intrin ?(assignment = []) op stages =
  Concrete.{ op; stages; intrin; assignment = Assignment.of_list assignment }

let compute_stage_of ?(scope = "local") loops =
  Concrete.
    { name = "C"; scope; loops; attach = None; role = Heron_sched.Template.Compute; align_pad = 0 }

let gemm_loops ?(i = 16) ?(j = 16) ?(r = 16) ?(anni = Concrete.Plain) ?(annj = Concrete.Plain)
    () =
  [
    mk_loop ~ann:anni ~origin:"i" ~kind:sp "i" i;
    mk_loop ~ann:annj ~origin:"j" ~kind:sp "j" j;
    mk_loop ~origin:"r" ~kind:rd "r" r;
  ]

let check_violation name desc prog expect =
  match (Validate.check desc prog, expect) with
  | Error got, want when got = want -> ()
  | Error got, want ->
      Alcotest.failf "%s: expected %s, got %s" name (Violation.to_string want)
        (Violation.to_string got)
  | Ok (), want -> Alcotest.failf "%s: expected %s, got Ok" name (Violation.to_string want)

let test_violation_too_many_threads () =
  let op = Op.gemm ~m:2048 ~n:16 ~k:16 () in
  let prog =
    mk_prog op
      [ compute_stage_of (gemm_loops ~i:2048 ~anni:(Concrete.Bound Heron_sched.Prim.Thread_x) ()) ]
  in
  check_violation "threads" D.v100 prog (Violation.Too_many_threads 2048)

let test_violation_bad_vector () =
  let op = Op.gemm ~m:16 ~n:16 ~k:16 () in
  let prog = mk_prog op [ compute_stage_of (gemm_loops ~annj:(Concrete.Vectorized 3) ()) ] in
  check_violation "vector" D.v100 prog (Violation.Bad_vector_length 3)

let test_violation_spm_overflow () =
  (* A 128x128 f32 staging tile = 65536 bytes > the 49152-byte shared
     scratchpad; it covers both iterators fully, so the capacity check is
     the first one that can fire. *)
  let op = Op.gemm ~dt:Op.F32 ~m:128 ~n:16 ~k:128 () in
  let load =
    Concrete.
      {
        name = "As";
        scope = "shared";
        loops = [ mk_loop ~origin:"i" ~kind:sp "i_s" 128; mk_loop ~origin:"r" ~kind:rd "r_s" 128 ];
        attach = Some ("C", 0);
        role = Heron_sched.Template.Load "A";
        align_pad = 0;
      }
  in
  let prog = mk_prog op [ compute_stage_of (gemm_loops ~i:128 ~r:128 ()); load ] in
  check_violation "spm" D.v100 prog
    (Violation.Spm_overflow { scope = "shared"; used = 65536; cap = 49152 })

let test_violation_bad_intrinsic_shape () =
  let op = Op.gemm ~m:16 ~n:16 ~k:16 () in
  let prog =
    mk_prog ~intrin:"wmma"
      ~assignment:[ ("intrin_m", 3); ("intrin_n", 3); ("intrin_k", 3) ]
      op
      [ compute_stage_of (gemm_loops ()) ]
  in
  check_violation "intrinsic" D.v100 prog (Violation.Bad_intrinsic_shape (3, 3, 3))

let test_violation_missing_tensorize () =
  let op = Op.gemm ~dt:Op.I8 ~m:16 ~n:16 ~k:16 () in
  let prog = mk_prog op [ compute_stage_of (gemm_loops ()) ] in
  check_violation "tensorize" D.vta prog Violation.Missing_tensorize

let vta_tiled_loops ~between =
  (* k_outer (reduction), optionally [between], then the (1, 16, 16)
     tensorized gemm tile. *)
  [ mk_loop ~origin:"r" ~kind:rd "r_out" 4 ]
  @ between
  @ [
      mk_loop ~ann:Concrete.Tensorized ~origin:"i" ~kind:sp "i_t" 16;
      mk_loop ~ann:Concrete.Tensorized ~origin:"j" ~kind:sp "j_t" 16;
      mk_loop ~ann:Concrete.Tensorized ~origin:"r" ~kind:rd "r_t" 16;
    ]

let vta_intrin_assignment = [ ("intrin_m", 1); ("intrin_n", 16); ("intrin_k", 16) ]

let test_violation_bad_loop_order () =
  let op = Op.gemm ~dt:Op.I8 ~m:16 ~n:16 ~k:64 () in
  let prog =
    mk_prog ~intrin:"vta.gemm" ~assignment:vta_intrin_assignment op
      [ compute_stage_of (vta_tiled_loops ~between:[]) ]
  in
  (match Validate.check D.vta prog with
  | Error (Violation.Bad_loop_order _) -> ()
  | Error v -> Alcotest.failf "expected loop order, got %s" (Violation.to_string v)
  | Ok () -> Alcotest.fail "reduction loop innermost above the tile must be rejected");
  (* The repaired twin — a spatial loop of extent 2 slipped between — is
     accepted, pinning down exactly which shape the rule rejects. *)
  let op' = Op.gemm ~dt:Op.I8 ~m:16 ~n:32 ~k:64 () in
  let good =
    mk_prog ~intrin:"vta.gemm" ~assignment:vta_intrin_assignment op'
      [
        compute_stage_of
          (vta_tiled_loops ~between:[ mk_loop ~origin:"j" ~kind:sp "j_out" 2 ]);
      ]
  in
  match Validate.check D.vta good with
  | Ok () -> ()
  | Error v -> Alcotest.failf "repaired program must pass, got %s" (Violation.to_string v)

let test_violation_coverage_exact () =
  let op = Op.gemm ~m:16 ~n:16 ~k:16 () in
  let prog = mk_prog op [ compute_stage_of (gemm_loops ~i:8 ()) ] in
  match Validate.check D.v100 prog with
  | Error (Violation.Coverage _) -> ()
  | Error v -> Alcotest.failf "expected coverage, got %s" (Violation.to_string v)
  | Ok () -> Alcotest.fail "half-covered iterator must be rejected"

let test_violation_unsatisfied_constraint () =
  let p =
    Heron_csp.Problem.of_parts
      [ ("x", Heron_csp.Domain.of_list [ 1; 2; 4 ]); ("y", Heron_csp.Domain.of_list [ 1; 2; 4 ]) ]
      [ Heron_csp.Cons.Eq ("x", "y") ]
  in
  (match Validate.check_assignment p (Assignment.of_list [ ("x", 2); ("y", 2) ]) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "satisfying assignment flagged: %s" (Violation.to_string v));
  match Validate.check_assignment p (Assignment.of_list [ ("x", 1); ("y", 2) ]) with
  | Error (Violation.Unsatisfied_constraint c) ->
      Alcotest.(check string) "constraint round-trips"
        (Heron_csp.Cons.to_string (Heron_csp.Cons.Eq ("x", "y")))
        c
  | Error v -> Alcotest.failf "expected unsatisfied constraint, got %s" (Violation.to_string v)
  | Ok () -> Alcotest.fail "x <> y must be rejected"

let contains ~needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_explain_csp_line () =
  let gen, a = solve_gemm D.v100 in
  let problem = gen.Heron.Generator.problem in
  let ok_report = Heron_dla.Explain.report ~problem D.v100 (instantiate gen a) in
  Alcotest.(check bool) "csp ok line" true (contains ~needle:"csp: ok" ok_report);
  (* Corrupt one variable: the report must name the violated constraint
     exactly as Problem.check renders it. *)
  let bad = Assignment.set a "vec_a" 3 in
  match Heron_csp.Problem.check problem bad with
  | Ok () -> Alcotest.fail "out-of-domain value must violate the space"
  | Error c ->
      let bad_report = Heron_dla.Explain.report ~problem D.v100 (instantiate gen bad) in
      Alcotest.(check bool) "csp invalid line" true
        (contains ~needle:"csp: INVALID" bad_report);
      Alcotest.(check bool) "violated constraint named" true
        (contains ~needle:(Heron_csp.Cons.to_string c) bad_report)

module Faults = Heron_dla.Faults

let hostile =
  {
    Faults.seed = 11;
    timeout_rate = 0.2;
    crash_rate = 0.15;
    hang_rate = 0.1;
    noise = 0.25;
    persistent = 0.2;
  }

let test_faults_deterministic () =
  for i = 0 to 50 do
    let key = Printf.sprintf "cfg-%d" i in
    for attempt = 0 to 3 do
      Alcotest.(check bool) "same decision every time" true
        (Faults.decide hostile ~key ~attempt = Faults.decide hostile ~key ~attempt)
    done
  done;
  (* Different fault seeds give a different fault universe. *)
  let other = { hostile with Faults.seed = 12 } in
  let differs =
    List.exists
      (fun i ->
        let key = Printf.sprintf "cfg-%d" i in
        Faults.decide hostile ~key ~attempt:0 <> Faults.decide other ~key ~attempt:0)
      (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "seed changes the universe" true differs

let test_faults_zero_inert () =
  for i = 0 to 100 do
    let key = Printf.sprintf "cfg-%d" i in
    match Faults.decide Faults.zero ~key ~attempt:(i mod 5) with
    | Faults.Noise f -> Alcotest.(check (float 0.0)) "factor exactly 1" 1.0 f
    | _ -> Alcotest.fail "zero spec must never fault"
  done

let test_faults_persistent_stable () =
  let spec = { Faults.zero with Faults.seed = 3; persistent = 0.5 } in
  let persistent_at attempt key = Faults.decide spec ~key ~attempt = Faults.Persistent in
  let keys = List.init 100 (fun i -> Printf.sprintf "cfg-%d" i) in
  let marked = List.filter (persistent_at 0) keys in
  Alcotest.(check bool) "some configs are persistent" true (marked <> []);
  Alcotest.(check bool) "not all configs are persistent" true
    (List.length marked < List.length keys);
  List.iter
    (fun key ->
      for attempt = 1 to 5 do
        Alcotest.(check bool) "persistent on every attempt" true (persistent_at attempt key)
      done)
    marked

let test_faults_rates () =
  let n = 2000 in
  let count spec kind =
    List.length
      (List.filter
         (fun i -> Faults.decide spec ~key:(Printf.sprintf "k%d" i) ~attempt:0 = kind)
         (List.init n Fun.id))
  in
  let spec = { Faults.zero with Faults.seed = 7; timeout_rate = 0.3 } in
  let timeouts = count spec Faults.Timeout in
  (* 0.3 +- a generous tolerance on 2000 draws *)
  Alcotest.(check bool) "timeout rate honored" true
    (float_of_int timeouts /. float_of_int n > 0.2
    && float_of_int timeouts /. float_of_int n < 0.4);
  Alcotest.(check int) "no crashes at crash=0" 0 (count spec Faults.Crash)

let test_faults_parse_roundtrip () =
  (match Faults.parse (Faults.to_string hostile) with
  | Ok (Some s) -> Alcotest.(check bool) "roundtrip" true (s = hostile)
  | _ -> Alcotest.fail "canonical rendering must parse");
  (match Faults.parse "off" with
  | Ok None -> ()
  | _ -> Alcotest.fail "off must parse to None");
  match Faults.parse "timeout=0.5" with
  | Ok (Some s) ->
      Alcotest.(check bool) "unmentioned fields zero" true
        (s = { Faults.zero with Faults.timeout_rate = 0.5 })
  | _ -> Alcotest.fail "single-field spec must parse"

let test_faults_parse_errors () =
  let expect_error spec =
    match Faults.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S must be rejected" spec
  in
  expect_error "timeout=1.5";
  expect_error "crash=-0.1";
  expect_error "noise=abc";
  expect_error "bogus=1";
  expect_error "seed=1.5";
  expect_error "timeout"

let suite =
  [
    Alcotest.test_case "wmma shape set" `Quick test_descriptor_shapes;
    Alcotest.test_case "descriptor peaks" `Quick test_descriptor_peaks;
    Alcotest.test_case "valid solution passes" `Quick test_valid_solution_passes;
    Alcotest.test_case "bad intrinsic shape" `Quick test_bad_intrinsic_shape;
    Alcotest.test_case "smem overflow" `Quick test_smem_overflow_detected;
    Alcotest.test_case "bad vector length" `Quick test_bad_vector_length;
    Alcotest.test_case "coverage violation" `Quick test_coverage_violation;
    Alcotest.test_case "vta loop order" `Quick test_vta_loop_order;
    Alcotest.test_case "vta missing tensorize" `Quick test_missing_tensorize_vta;
    Alcotest.test_case "perf deterministic" `Quick test_perf_deterministic;
    Alcotest.test_case "perf positive/bounded" `Quick test_perf_positive_and_bounded;
    Alcotest.test_case "occupancy effect" `Quick test_perf_occupancy_effect;
    Alcotest.test_case "bank conflict effect" `Quick test_bank_conflict_effect;
    Alcotest.test_case "measurer averaging" `Quick test_measure_counts_and_average;
    Alcotest.test_case "measurer rejects invalid" `Quick test_measure_rejects_invalid;
    Alcotest.test_case "hardware ordering" `Quick test_faster_hardware_is_faster;
    Alcotest.test_case "explain report" `Quick test_explain_report;
    Alcotest.test_case "violation: too many threads" `Quick test_violation_too_many_threads;
    Alcotest.test_case "violation: bad vector length" `Quick test_violation_bad_vector;
    Alcotest.test_case "violation: spm overflow (exact)" `Quick test_violation_spm_overflow;
    Alcotest.test_case "violation: bad intrinsic shape" `Quick test_violation_bad_intrinsic_shape;
    Alcotest.test_case "violation: missing tensorize" `Quick test_violation_missing_tensorize;
    Alcotest.test_case "violation: bad loop order" `Quick test_violation_bad_loop_order;
    Alcotest.test_case "violation: coverage" `Quick test_violation_coverage_exact;
    Alcotest.test_case "violation: unsatisfied constraint" `Quick
      test_violation_unsatisfied_constraint;
    Alcotest.test_case "explain csp line" `Quick test_explain_csp_line;
    Alcotest.test_case "faults: pure and deterministic" `Quick test_faults_deterministic;
    Alcotest.test_case "faults: zero spec is inert" `Quick test_faults_zero_inert;
    Alcotest.test_case "faults: persistent stable across attempts" `Quick
      test_faults_persistent_stable;
    Alcotest.test_case "faults: rates move outcome frequencies" `Quick test_faults_rates;
    Alcotest.test_case "faults: spec parse/print roundtrip" `Quick test_faults_parse_roundtrip;
    Alcotest.test_case "faults: parse diagnostics" `Quick test_faults_parse_errors;
  ]
