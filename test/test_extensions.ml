(* Tests for the extensions beyond the paper's three evaluated DLAs: the
   TPU/Cambricon descriptors (paper Table 3), the pseudo-code generator,
   and the persistent tuned-schedule library. *)

module Op = Heron_tensor.Op
module Solver = Heron_csp.Solver
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module D = Heron_dla.Descriptor
module Validate = Heron_dla.Validate
module Rng = Heron_util.Rng
module Generator = Heron.Generator
module Codegen = Heron.Codegen
module Library = Heron.Library

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let sample desc op seed =
  let gen = Generator.generate desc op in
  match Solver.solve (Rng.create seed) gen.Generator.problem with
  | None -> Alcotest.fail ("unsatisfiable space on " ^ desc.D.dname)
  | Some a -> (gen, Concrete.instantiate gen.Generator.template a)

let test_tpu_space () =
  (* TPU admits only (1, 256, 256) tiles; n and k must be multiples. *)
  let op = Op.gemm ~dt:Op.I8 ~m:512 ~n:1024 ~k:1024 () in
  let gen = Generator.generate D.tpu op in
  Alcotest.(check bool) "tensorized" true gen.Generator.tensorized;
  let sols = Solver.rand_sat (Rng.create 3) gen.Generator.problem 10 in
  Alcotest.(check bool) "satisfiable" true (sols <> []);
  List.iter
    (fun a ->
      Alcotest.(check int) "n tile" 256 (Assignment.get a "intrin_n");
      let prog = Concrete.instantiate gen.Generator.template a in
      Alcotest.(check bool) "valid" true (Validate.is_valid D.tpu prog))
    sols

let test_tpu_rejects_small_n () =
  (* N = 64 cannot host a 256-wide tile: the space must be unsatisfiable
     and the generator reports the (non-existent) scalar path instead. *)
  let op = Op.gemm ~dt:Op.I8 ~m:512 ~n:64 ~k:1024 () in
  let gen = Generator.build D.tpu op ~tensorize:true in
  Alcotest.(check bool) "unsat" false (Generator.satisfiable gen.Generator.problem)

let test_cambricon_space () =
  let op = Op.gemm ~dt:Op.I8 ~m:256 ~n:512 ~k:512 () in
  let gen = Generator.generate D.cambricon op in
  let sols = Solver.rand_sat (Rng.create 5) gen.Generator.problem 10 in
  Alcotest.(check bool) "satisfiable" true (sols <> []);
  let tile_ns = List.sort_uniq compare (List.map (fun a -> Assignment.get a "intrin_n") sols) in
  Alcotest.(check bool) "flexible tiles explored" true (List.length tile_ns >= 1);
  List.iter
    (fun a ->
      let prog = Concrete.instantiate gen.Generator.template a in
      Alcotest.(check bool) "valid" true (Validate.is_valid D.cambricon prog))
    sols

let test_codegen_tensorcore () =
  let _, prog = sample D.v100 (Op.gemm ~m:256 ~n:256 ~k:256 ()) 7 in
  let code = Codegen.emit D.v100 prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains code needle))
    [ "wmma::mma_sync"; "__shared__"; "blockIdx"; "kernel<<<"; "for (" ]

let test_codegen_vta () =
  let _, prog = sample D.vta (Op.gemm ~dt:Op.I8 ~m:64 ~n:256 ~k:256 ()) 7 in
  let code = Codegen.emit D.vta prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains code needle))
    [ "vta.gemm"; "VTA_WGT_BUFF" ]

let test_codegen_dlboost () =
  let _, prog = sample D.dlboost (Op.gemm ~dt:Op.I8 ~m:256 ~n:256 ~k:256 ()) 8 in
  let code = Codegen.emit D.dlboost prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains code needle))
    [ "_mm512_dpbusd_epi32"; "omp parallel" ]

let test_tpu_capacity_enforced () =
  (* Inflating the selected A-tile length beyond the unified buffer must be
     rejected by the validator (and is excluded by Heron's CSP). *)
  let op = Op.gemm ~dt:Op.I8 ~m:8192 ~n:1024 ~k:8192 () in
  let gen = Generator.generate D.tpu op in
  match Solver.solve (Rng.create 4) gen.Generator.problem with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      let huge = Assignment.set (Assignment.set a "aux_i_1" 8192) "len_Al_col" 8192 in
      let prog = Concrete.instantiate gen.Generator.template huge in
      (match Heron_dla.Validate.check D.tpu prog with
      | Ok () ->
          (* 8192 x 8192 = 64 MB > 24 MB l2: must not validate unless the
             coverage check fired first, which is also a rejection. *)
          Alcotest.fail "oversized tile must be rejected"
      | Error _ -> ())

let test_codegen_balanced_braces () =
  let _, prog = sample D.v100 (Op.gemm ~m:512 ~n:512 ~k:512 ()) 9 in
  let code = Codegen.emit D.v100 prog in
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 code in
  Alcotest.(check int) "braces balanced" (count '{') (count '}')

let test_library_roundtrip () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let gen, prog = sample D.v100 op 11 in
  ignore gen;
  let lib =
    Library.add Library.empty D.v100 op ~latency_us:123.5 prog.Concrete.assignment
  in
  Alcotest.(check int) "one entry" 1 (Library.size lib);
  let path = Filename.temp_file "heron_lib" ".txt" in
  Library.save lib path;
  let lib' = Library.load path in
  Sys.remove path;
  Alcotest.(check int) "loaded" 1 (Library.size lib');
  match Library.lookup lib' D.v100 op with
  | None -> Alcotest.fail "entry must be found"
  | Some e ->
      Alcotest.(check (float 1e-6)) "latency" 123.5 e.Library.latency_us;
      Alcotest.(check bool) "assignment preserved" true
        (Assignment.equal e.Library.assignment prog.Concrete.assignment);
      (* Re-materialized program is valid. *)
      let prog' = Library.program_of e D.v100 op in
      Alcotest.(check bool) "valid program" true (Validate.is_valid D.v100 prog')

let test_library_keeps_best () =
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let _, prog = sample D.v100 op 12 in
  let a = prog.Concrete.assignment in
  let lib = Library.add Library.empty D.v100 op ~latency_us:100.0 a in
  let lib = Library.add lib D.v100 op ~latency_us:200.0 a in
  (match Library.lookup lib D.v100 op with
  | Some e -> Alcotest.(check (float 1e-9)) "kept faster" 100.0 e.Library.latency_us
  | None -> Alcotest.fail "present");
  let lib = Library.add lib D.v100 op ~latency_us:50.0 a in
  match Library.lookup lib D.v100 op with
  | Some e -> Alcotest.(check (float 1e-9)) "replaced by faster" 50.0 e.Library.latency_us
  | None -> Alcotest.fail "present"

let test_library_build () =
  let ops = [ Op.gemm ~m:256 ~n:256 ~k:256 (); Op.gemm ~m:512 ~n:256 ~k:128 () ] in
  let lib = Library.build ~budget:16 ~seed:13 D.v100 ops in
  Alcotest.(check int) "two entries" 2 (Library.size lib);
  List.iter
    (fun (e : Library.entry) ->
      Alcotest.(check bool) "positive latency" true (e.Library.latency_us > 0.0))
    (Library.entries lib)

(* Regression: Library.save must go through the Atomic_io tmp+rename
   protocol. The old implementation opened the target directly, so a
   process death mid-save left a torn library in place; a crash at the
   very first write site must instead leave the previous file intact. *)
let test_library_save_atomic () =
  let module Io_faults = Heron_util.Io_faults in
  let op = Op.gemm ~m:256 ~n:256 ~k:256 () in
  let _, prog = sample D.v100 op 11 in
  let a = prog.Concrete.assignment in
  let lib1 = Library.add Library.empty D.v100 op ~latency_us:100.0 a in
  let lib2 =
    Library.add lib1 D.v100 (Op.gemm ~m:512 ~n:256 ~k:128 ()) ~latency_us:77.0 a
  in
  let path = Filename.temp_file "heron_lib_atomic" ".txt" in
  Library.save lib1 path;
  let read_all p = In_channel.with_open_bin p In_channel.input_all in
  let before = read_all path in
  Io_faults.set_default
    (Some (Io_faults.create { Io_faults.zero with crash_at = Some 0 }));
  Fun.protect ~finally:(fun () ->
      Io_faults.set_default None;
      Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
  @@ fun () ->
  (match Library.save lib2 path with
  | () -> Alcotest.fail "save must die at the injected crash point"
  | exception Io_faults.Crashed _ -> ());
  Alcotest.(check string) "previous library intact after mid-save crash" before
    (read_all path);
  (* And with the injector cleared the interrupted save simply reruns. *)
  Io_faults.set_default None;
  Library.save lib2 path;
  Alcotest.(check int) "rerun save lands" 2 (Library.size (Library.load path))

let test_library_key_distinguishes () =
  let k1 = Library.op_key (Op.gemm ~m:256 ~n:256 ~k:256 ()) in
  let k2 = Library.op_key (Op.gemm ~m:256 ~n:256 ~k:512 ()) in
  let k3 = Library.op_key (Op.gemm ~dt:Op.I8 ~m:256 ~n:256 ~k:256 ()) in
  Alcotest.(check bool) "shape" true (k1 <> k2);
  Alcotest.(check bool) "dtype" true (k1 <> k3)

let suite =
  [
    Alcotest.test_case "tpu space valid" `Quick test_tpu_space;
    Alcotest.test_case "tpu rejects small n" `Quick test_tpu_rejects_small_n;
    Alcotest.test_case "cambricon space valid" `Quick test_cambricon_space;
    Alcotest.test_case "codegen tensorcore" `Quick test_codegen_tensorcore;
    Alcotest.test_case "codegen vta" `Quick test_codegen_vta;
    Alcotest.test_case "codegen dlboost" `Quick test_codegen_dlboost;
    Alcotest.test_case "tpu capacity enforced" `Quick test_tpu_capacity_enforced;
    Alcotest.test_case "codegen braces balanced" `Quick test_codegen_balanced_braces;
    Alcotest.test_case "library roundtrip" `Quick test_library_roundtrip;
    Alcotest.test_case "library keeps best" `Quick test_library_keeps_best;
    Alcotest.test_case "library build" `Quick test_library_build;
    Alcotest.test_case "library save atomic" `Quick test_library_save_atomic;
    Alcotest.test_case "library op keys" `Quick test_library_key_distinguishes;
  ]
