(* Tests for the tensor-expression IR: the generic reference interpreter is
   cross-checked against hand-written kernels and closed-form cases for
   every operator constructor, and the implicit-GEMM analysis is checked
   against known classifications. *)

module Op = Heron_tensor.Op
module Expr = Heron_tensor.Expr
module Ref_exec = Heron_tensor.Ref_exec
module Linalg = Heron_tensor.Linalg
module Gemm_view = Heron_tensor.Gemm_view
module Rng = Heron_util.Rng

let random_array rng n = Array.init n (fun _ -> Rng.float rng -. 0.5)

let check_close ~msg a b =
  Alcotest.(check int) (msg ^ " size") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if abs_float (x -. b.(i)) > 1e-6 *. (1.0 +. abs_float x) then
        Alcotest.failf "%s: index %d: %f <> %f" msg i x b.(i))
    a

let test_expr_eval () =
  let open Expr in
  let e = (var "x" * const 3) + (var "y" - const 1) in
  let env = function "x" -> 4 | "y" -> 10 | _ -> 0 in
  Alcotest.(check int) "eval" 21 (eval env e);
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (vars e)

let test_expr_div () =
  let open Expr in
  let e = var "x" / const 2 in
  Alcotest.(check int) "7/2" 3 (eval (fun _ -> 7) e)

let test_gemm_matches_direct () =
  let rng = Rng.create 1 in
  let m, n, k = (5, 7, 4) in
  let op = Op.gemm ~m ~n ~k () in
  let a = random_array rng (m * k) and b = random_array rng (k * n) in
  let got = Ref_exec.run op [ ("A", a); ("B", b) ] in
  check_close ~msg:"gemm" (Linalg.gemm ~m ~n ~k a b) got

let test_gemm_prop =
  QCheck.Test.make ~name:"gemm interpreter == direct kernel" ~count:25
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 8))
    (fun (m, n, k) ->
      let rng = Rng.create (m + (10 * n) + (100 * k)) in
      let op = Op.gemm ~m ~n ~k () in
      let a = random_array rng (m * k) and b = random_array rng (k * n) in
      let got = Ref_exec.run op [ ("A", a); ("B", b) ] in
      let want = Linalg.gemm ~m ~n ~k a b in
      Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-6) want got)

let test_bmm () =
  let rng = Rng.create 2 in
  let b, m, n, k = (3, 4, 5, 6) in
  let op = Op.bmm ~b ~m ~n ~k () in
  let x = random_array rng (b * m * k) and y = random_array rng (b * k * n) in
  let got = Ref_exec.run op [ ("A", x); ("B", y) ] in
  (* Batch slices must equal per-slice gemms. *)
  for bi = 0 to b - 1 do
    let xa = Array.sub x (bi * m * k) (m * k) and yb = Array.sub y (bi * k * n) (k * n) in
    let want = Linalg.gemm ~m ~n ~k xa yb in
    let slice = Array.sub got (bi * m * n) (m * n) in
    check_close ~msg:(Printf.sprintf "bmm batch %d" bi) want slice
  done

let test_gemv () =
  let rng = Rng.create 3 in
  let m, k = (6, 5) in
  let op = Op.gemv ~m ~k () in
  let a = random_array rng (m * k) and x = random_array rng k in
  let got = Ref_exec.run op [ ("A", a); ("X", x) ] in
  let want =
    Array.init m (fun i ->
        let acc = ref 0.0 in
        for r = 0 to k - 1 do
          acc := !acc +. (a.((i * k) + r) *. x.(r))
        done;
        !acc)
  in
  check_close ~msg:"gemv" want got

let test_conv2d_matches_direct () =
  let rng = Rng.create 4 in
  let n, ci, h, w, co, kh, kw, stride, pad = (2, 3, 8, 8, 4, 3, 3, 1, 1) in
  let op = Op.conv2d ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad () in
  let x = random_array rng (n * ci * h * w) and wt = random_array rng (co * ci * kh * kw) in
  let got = Ref_exec.run op [ ("X", x); ("W", wt) ] in
  check_close ~msg:"c2d" (Linalg.conv2d ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad x wt) got

let test_conv2d_strided () =
  let rng = Rng.create 5 in
  let n, ci, h, w, co, kh, kw, stride, pad = (1, 2, 9, 9, 2, 3, 3, 2, 0) in
  let op = Op.conv2d ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad () in
  let x = random_array rng (n * ci * h * w) and wt = random_array rng (co * ci * kh * kw) in
  let got = Ref_exec.run op [ ("X", x); ("W", wt) ] in
  check_close ~msg:"c2d strided" (Linalg.conv2d ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad x wt) got

let test_conv1d_closed_form () =
  (* All-ones input and kernel: interior outputs equal ci*kl. *)
  let n, ci, l, co, kl = (1, 2, 8, 3, 3) in
  let op = Op.conv1d ~n ~ci ~l ~co ~kl ~stride:1 ~pad:1 () in
  let x = Array.make (n * ci * l) 1.0 and w = Array.make (co * ci * kl) 1.0 in
  let got = Ref_exec.run op [ ("X", x); ("W", w) ] in
  Alcotest.(check (float 1e-9)) "interior" (float_of_int (ci * kl)) got.(1);
  (* Boundary misses one kernel tap per channel. *)
  Alcotest.(check (float 1e-9)) "boundary" (float_of_int (ci * (kl - 1))) got.(0)

let test_conv3d_total () =
  (* Sum of all outputs of a valid (pad 0, stride 1) all-ones conv equals
     #output-points * ci*kd*kh*kw. *)
  let n, ci, d, h, w, co, k = (1, 2, 4, 4, 4, 2, 2) in
  let op = Op.conv3d ~n ~ci ~d ~h ~w ~co ~kd:k ~kh:k ~kw:k ~stride:1 ~pad:0 () in
  let x = Array.make (n * ci * d * h * w) 1.0 in
  let wt = Array.make (co * ci * k * k * k) 1.0 in
  let got = Ref_exec.run op [ ("X", x); ("W", wt) ] in
  let expect = float_of_int (ci * k * k * k) in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "conv3d point" expect v) got

(* Direct transposed-convolution reference built by scattering input
   contributions, the textbook definition. *)
let t2d_direct ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad x wt =
  let oh = ((h - 1) * stride) - (2 * pad) + kh in
  let ow = ((w - 1) * stride) - (2 * pad) + kw in
  let out = Array.make (n * co * oh * ow) 0.0 in
  for bn = 0 to n - 1 do
    for ic = 0 to ci - 1 do
      for iy = 0 to h - 1 do
        for ix = 0 to w - 1 do
          for oc = 0 to co - 1 do
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let oy = (iy * stride) + ky - pad and ox = (ix * stride) + kx - pad in
                if oy >= 0 && oy < oh && ox >= 0 && ox < ow then
                  out.((((((bn * co) + oc) * oh) + oy) * ow) + ox) <-
                    out.((((((bn * co) + oc) * oh) + oy) * ow) + ox)
                    +. x.((((((bn * ci) + ic) * h) + iy) * w) + ix)
                       *. wt.((((((ic * co) + oc) * kh) + ky) * kw) + kx)
              done
            done
          done
        done
      done
    done
  done;
  out

let test_transposed2d () =
  let rng = Rng.create 6 in
  let n, ci, h, w, co, kh, kw, stride, pad = (1, 2, 5, 5, 3, 4, 4, 2, 1) in
  let op = Op.transposed2d ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad () in
  let x = random_array rng (n * ci * h * w) and wt = random_array rng (ci * co * kh * kw) in
  let got = Ref_exec.run op [ ("X", x); ("W", wt) ] in
  check_close ~msg:"t2d" (t2d_direct ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad x wt) got

(* Dilated convolution checked against an explicitly dilated kernel fed to
   the plain convolution. *)
let test_dilated2d () =
  let rng = Rng.create 7 in
  let n, ci, h, w, co, k, dilation = (1, 2, 9, 9, 2, 3, 2) in
  let pad = 2 in
  let op = Op.dilated2d ~n ~ci ~h ~w ~co ~kh:k ~kw:k ~stride:1 ~pad ~dilation () in
  let x = random_array rng (n * ci * h * w) in
  let wt = random_array rng (co * ci * k * k) in
  let got = Ref_exec.run op [ ("X", x); ("W", wt) ] in
  (* Dilate the kernel to (2k-1)x(2k-1) with zeros. *)
  let kd = ((k - 1) * dilation) + 1 in
  let wt_dilated = Array.make (co * ci * kd * kd) 0.0 in
  for oc = 0 to co - 1 do
    for ic = 0 to ci - 1 do
      for ky = 0 to k - 1 do
        for kx = 0 to k - 1 do
          wt_dilated.((((((oc * ci) + ic) * kd) + (ky * dilation)) * kd) + (kx * dilation)) <-
            wt.((((((oc * ci) + ic) * k) + ky) * k) + kx)
        done
      done
    done
  done;
  let want = Linalg.conv2d ~n ~ci ~h ~w ~co ~kh:kd ~kw:kd ~stride:1 ~pad x wt_dilated in
  check_close ~msg:"dilated" want got

let test_scan () =
  let rng = Rng.create 8 in
  let b, l = (3, 10) in
  let op = Op.scan ~b ~l () in
  let x = random_array rng (b * l) in
  let got = Ref_exec.run op [ ("X", x) ] in
  check_close ~msg:"scan" (Linalg.prefix_sum ~b ~l x) got

let test_ref_exec_input_errors () =
  let op = Op.gemv ~m:4 ~k:3 () in
  Alcotest.check_raises "missing input"
    (Invalid_argument "Ref_exec.run: missing input X") (fun () ->
      ignore (Ref_exec.run op [ ("A", Array.make 12 1.0) ]));
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Ref_exec.run: input X has size 2, expected 3") (fun () ->
      ignore (Ref_exec.run op [ ("A", Array.make 12 1.0); ("X", Array.make 2 1.0) ]))

let test_ref_exec_sizes_consistent () =
  (* input_sizes/output_size agree with the tensor shapes for every
     constructor family used in the suite. *)
  List.iter
    (fun (op : Op.t) ->
      List.iter2
        (fun (t : Op.tensor) (name, n) ->
          Alcotest.(check string) "name" t.Op.tname name;
          Alcotest.(check int) "size" (Op.numel t) n)
        op.Op.inputs (Ref_exec.input_sizes op);
      Alcotest.(check int) "out" (Op.numel op.Op.out) (Ref_exec.output_size op))
    [
      Op.gemm ~m:4 ~n:5 ~k:6 ();
      Op.bmm ~b:2 ~m:3 ~n:4 ~k:5 ();
      Op.gemv ~m:4 ~k:3 ();
      Op.scan ~b:2 ~l:5 ();
      Op.conv2d ~n:1 ~ci:2 ~h:5 ~w:5 ~co:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ();
    ]

let test_conv_out_dim () =
  Alcotest.(check int) "same" 56
    (Op.conv_out_dim ~in_dim:56 ~kernel:3 ~stride:1 ~pad:1 ~dilation:1);
  Alcotest.(check int) "strided" 28
    (Op.conv_out_dim ~in_dim:56 ~kernel:1 ~stride:2 ~pad:0 ~dilation:1);
  Alcotest.(check int) "dilated" 52
    (Op.conv_out_dim ~in_dim:56 ~kernel:3 ~stride:1 ~pad:0 ~dilation:2)

let test_gemm_view_gemm () =
  let op = Op.gemm ~m:64 ~n:32 ~k:16 () in
  match Gemm_view.infer op with
  | None -> Alcotest.fail "gemm must have a view"
  | Some v ->
      Alcotest.(check int) "m" 64 v.Gemm_view.m;
      Alcotest.(check int) "n" 32 v.Gemm_view.n;
      Alcotest.(check int) "k" 16 v.Gemm_view.k;
      Alcotest.(check int) "batch" 1 v.Gemm_view.batch

let test_gemm_view_conv () =
  let op = Op.conv2d ~n:4 ~ci:16 ~h:14 ~w:14 ~co:32 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  match Gemm_view.infer op with
  | None -> Alcotest.fail "conv must have a view"
  | Some v ->
      Alcotest.(check int) "m = N*OH*OW" (4 * 14 * 14) v.Gemm_view.m;
      Alcotest.(check int) "n = CO" 32 v.Gemm_view.n;
      Alcotest.(check int) "k = CI*KH*KW" (16 * 3 * 3) v.Gemm_view.k;
      Alcotest.(check (list string)) "m iters" [ "n"; "oh"; "ow" ] v.Gemm_view.m_iters;
      Alcotest.(check (list string)) "n iters" [ "co" ] v.Gemm_view.n_iters

let test_gemm_view_bmm_batch () =
  let op = Op.bmm ~b:12 ~m:64 ~n:64 ~k:32 () in
  match Gemm_view.infer op with
  | None -> Alcotest.fail "bmm must have a view"
  | Some v ->
      Alcotest.(check int) "batch" 12 v.Gemm_view.batch;
      Alcotest.(check (list string)) "batch iters" [ "b" ] v.Gemm_view.batch_iters

let test_gemm_view_gemv () =
  let op = Op.gemv ~m:128 ~k:64 () in
  match Gemm_view.infer op with
  | None -> Alcotest.fail "gemv must have a view"
  | Some v ->
      Alcotest.(check int) "n degenerate" 1 v.Gemm_view.n;
      Alcotest.(check (list string)) "no n iters" [] v.Gemm_view.n_iters

let test_gemm_view_scan_none () =
  Alcotest.(check bool) "scan has no view" true
    (Gemm_view.infer (Op.scan ~b:4 ~l:16 ()) = None)

let test_derived_op () =
  let op = Op.conv2d ~n:4 ~ci:16 ~h:14 ~w:14 ~co:32 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  match Gemm_view.infer op with
  | None -> Alcotest.fail "view"
  | Some v ->
      let d = Gemm_view.derived_op op v in
      Alcotest.(check (float 1.0)) "flops preserved" op.Op.flops d.Op.flops;
      Alcotest.(check int) "derived m" (4 * 14 * 14) (Op.find_iter d "i").Op.extent

let test_fused_relu () =
  (* Always-Inline rule: the fused epilogue equals applying relu to the
     unfused result. *)
  let rng = Rng.create 9 in
  let m, n, k = (4, 5, 6) in
  let base = Op.gemm ~m ~n ~k () in
  let fused = Op.fuse_post base Op.Relu in
  let a = random_array rng (m * k) and b = random_array rng (k * n) in
  let plain = Ref_exec.run base [ ("A", a); ("B", b) ] in
  let got = Ref_exec.run fused [ ("A", a); ("B", b) ] in
  Array.iteri
    (fun i v ->
      let want = if v > 0.0 then v else 0.0 in
      Alcotest.(check (float 1e-9)) "relu applied" want got.(i))
    plain;
  Alcotest.(check bool) "flops grew" true (fused.Op.flops > base.Op.flops);
  Alcotest.(check string) "name" "gemm+relu" fused.Op.cname

let test_post_ops () =
  Alcotest.(check (float 1e-9)) "relu-" 0.0 (Op.apply_post Op.Relu (-3.0));
  Alcotest.(check (float 1e-9)) "relu+" 2.0 (Op.apply_post Op.Relu 2.0);
  Alcotest.(check (float 1e-9)) "scale" 6.0 (Op.apply_post (Op.Scale 2.0) 3.0);
  Alcotest.(check (float 1e-6)) "sigmoid(0)" 0.5 (Op.apply_post Op.Sigmoid 0.0)

let test_tensor_sizes () =
  let t = { Op.tname = "T"; shape = [ 2; 3; 4 ]; dt = Op.F16 } in
  Alcotest.(check int) "numel" 24 (Op.numel t);
  Alcotest.(check int) "bytes" 48 (Op.tensor_bytes t)

let test_dtype_bytes () =
  Alcotest.(check int) "f16" 2 (Op.dtype_bytes Op.F16);
  Alcotest.(check int) "f32" 4 (Op.dtype_bytes Op.F32);
  Alcotest.(check int) "i8" 1 (Op.dtype_bytes Op.I8);
  Alcotest.(check int) "i32" 4 (Op.dtype_bytes Op.I32)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "expr division" `Quick test_expr_div;
    Alcotest.test_case "gemm vs direct" `Quick test_gemm_matches_direct;
    qtest test_gemm_prop;
    Alcotest.test_case "bmm slices" `Quick test_bmm;
    Alcotest.test_case "gemv" `Quick test_gemv;
    Alcotest.test_case "ref exec input errors" `Quick test_ref_exec_input_errors;
    Alcotest.test_case "ref exec sizes consistent" `Quick test_ref_exec_sizes_consistent;
    Alcotest.test_case "conv2d vs direct" `Quick test_conv2d_matches_direct;
    Alcotest.test_case "conv2d strided" `Quick test_conv2d_strided;
    Alcotest.test_case "conv1d closed form" `Quick test_conv1d_closed_form;
    Alcotest.test_case "conv3d all-ones" `Quick test_conv3d_total;
    Alcotest.test_case "transposed conv vs scatter" `Quick test_transposed2d;
    Alcotest.test_case "dilated conv vs dilated kernel" `Quick test_dilated2d;
    Alcotest.test_case "scan vs prefix sum" `Quick test_scan;
    Alcotest.test_case "conv_out_dim" `Quick test_conv_out_dim;
    Alcotest.test_case "gemm view: gemm" `Quick test_gemm_view_gemm;
    Alcotest.test_case "gemm view: conv im2col" `Quick test_gemm_view_conv;
    Alcotest.test_case "gemm view: bmm batch" `Quick test_gemm_view_bmm_batch;
    Alcotest.test_case "gemm view: gemv degenerate n" `Quick test_gemm_view_gemv;
    Alcotest.test_case "gemm view: scan none" `Quick test_gemm_view_scan_none;
    Alcotest.test_case "derived op" `Quick test_derived_op;
    Alcotest.test_case "fused relu epilogue" `Quick test_fused_relu;
    Alcotest.test_case "post-op semantics" `Quick test_post_ops;
    Alcotest.test_case "tensor sizes" `Quick test_tensor_sizes;
    Alcotest.test_case "dtype bytes" `Quick test_dtype_bytes;
  ]
