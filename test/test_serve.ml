(* Tests for the serving layer: lenient library loading, the lock-free
   index under concurrent readers, seeded traffic determinism (including
   --jobs independence of a full daemon scenario), and in-process
   kill+resume byte-identity of the daemon's published library. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Library = Heron.Library
module Index = Heron_serving.Index
module Daemon = Heron_serving.Daemon
module Traffic = Heron_serving.Traffic
module Pool = Heron_util.Pool
module Rng = Heron_util.Rng

let desc = Heron_dla.Descriptor.v100
let dname = desc.Heron_dla.Descriptor.dname

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let in_dir name f =
  let dir = "_test_serve_" ^ name in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------- Library.load hardening ---------- *)

let good1 = "gemm/f16/i:16,j:16,r:16|v100|12.500000|ti=4,tj=8"
let good2 = "gemm/f16/i:32,j:32,r:32|v100|20.000000|ti=8"

let write path body = Heron_util.Atomic_io.write_string ~path body

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_load_lenient () =
  in_dir "load" @@ fun dir ->
  let path = Filename.concat dir "lib.heron" in
  (* Truncated line, garbage line, bad latency, bad binding, duplicate key
     (worse then better), interleaved with good lines. *)
  write path
    (String.concat "\n"
       [
         good1;
         "gemm/f16/i:64,j:64,r:64|v100";
         "complete garbage";
         good2;
         "gemm/f16/i:48,j:48,r:48|v100|not_a_number|ti=4";
         "gemm/f16/i:48,j:48,r:48|v100|3.0|ti=oops";
         "gemm/f16/i:32,j:32,r:32|v100|99.000000|ti=2";
         "gemm/f16/i:32,j:32,r:32|v100|15.000000|ti=1";
         "";
       ]);
  match Library.load_result path with
  | Error e -> Alcotest.failf "lenient load failed: %s" e
  | Ok (lib, warnings) ->
      Alcotest.(check int) "malformed lines skipped" 4 (List.length warnings);
      Alcotest.(check (list int)) "warning line numbers" [ 2; 3; 5; 6 ]
        (List.map (fun w -> w.Library.lw_line) warnings);
      Alcotest.(check int) "surviving entries" 2 (Library.size lib);
      (match
         List.find_opt
           (fun (e : Library.entry) -> e.Library.op_key = "gemm/f16/i:32,j:32,r:32")
           (Library.entries lib)
       with
      | None -> Alcotest.fail "duplicated key lost"
      | Some e ->
          Alcotest.(check (float 0.0)) "duplicate keeps best latency" 15.0 e.Library.latency_us);
      (* The strict loader still refuses the file, naming the first bad line. *)
      (match Library.load path with
      | exception Failure msg ->
          Alcotest.(check bool) "strict error names line 2" true
            (contains_substring msg "line 2")
      | _ -> Alcotest.fail "strict load must fail on malformed lines")

let test_load_clean_roundtrip () =
  in_dir "roundtrip" @@ fun dir ->
  let path = Filename.concat dir "lib.heron" in
  write path (good1 ^ "\n" ^ good2 ^ "\n");
  let lib = Library.load path in
  Alcotest.(check int) "strict load accepts clean files" 2 (Library.size lib);
  Alcotest.(check string) "save/load round-trip" (good1 ^ "\n" ^ good2 ^ "\n")
    (Library.to_string lib);
  match Library.load_result (Filename.concat dir "missing.heron") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load_result must report unreadable files"

(* ---------- the lock-free index ---------- *)

let entry_lib latency extra =
  let op = Op.gemm ~m:16 ~n:16 ~k:16 () in
  let lib = Library.add Library.empty desc op ~latency_us:latency Assignment.empty in
  List.fold_left
    (fun lib m ->
      Library.add lib desc (Op.gemm ~m ~n:32 ~k:32 ()) ~latency_us:50.0 Assignment.empty)
    lib extra

let test_index_near_fallback () =
  let lib = entry_lib 10.0 [ 64 ] in
  let snap = Index.build ~version:1 lib in
  let hit = Index.query_op snap ~dla:dname (Op.gemm ~m:16 ~n:16 ~k:16 ()) in
  let near = Index.query_op snap ~dla:dname (Op.gemm ~m:48 ~n:32 ~k:32 ()) in
  let miss = Index.query_op snap ~dla:dname (Op.gemm ~m:128 ~n:128 ~k:128 ()) in
  (match hit with
  | Index.Hit e -> Alcotest.(check (float 0.0)) "exact hit" 10.0 e.Library.latency_us
  | _ -> Alcotest.fail "expected Hit");
  (match near with
  | Index.Near e ->
      (* 48 rounds up to 64: served by the 64x32x32 entry's bucket. *)
      Alcotest.(check string) "bucket fallback" "gemm/f16/i:64,j:32,r:32" e.Library.op_key
  | _ -> Alcotest.fail "expected Near");
  match miss with
  | Index.Miss -> ()
  | _ -> Alcotest.fail "expected Miss"

(* Reader domains hammer the index while the main domain publishes new
   versions. Each reader checks, per observed snapshot, that (a) versions
   never go backwards and (b) the probe entry's latency matches the
   snapshot's version — a torn read (entry from one version, version field
   from another) cannot pass. *)
let test_concurrent_readers () =
  let versions = 40 in
  let key = Library.op_key (Op.gemm ~m:16 ~n:16 ~k:16 ()) ^ "@" ^ dname in
  let lib_at v = entry_lib (float_of_int v) (List.init (v mod 5) (fun i -> 64 + (16 * i))) in
  let idx = Index.create (Index.build ~version:1 (lib_at 1)) in
  let stop = Atomic.make false in
  let reader () =
    let ok = ref true and last = ref 0 and observed = ref 0 in
    while not (Atomic.get stop) do
      let snap = Index.current idx in
      let v = Index.version snap in
      if v < !last then ok := false;
      if v <> !last then incr observed;
      last := v;
      match Index.find snap key with
      | Some e -> if e.Library.latency_us <> float_of_int v then ok := false
      | None -> ok := false
    done;
    (!ok, !observed)
  in
  let readers = List.init 4 (fun _ -> Domain.spawn reader) in
  for v = 2 to versions do
    Index.publish idx (Index.build ~version:v (lib_at v));
    for _ = 1 to 2000 do
      Domain.cpu_relax ()
    done
  done;
  Atomic.set stop true;
  let results = List.map Domain.join readers in
  List.iteri
    (fun i (ok, observed) ->
      Alcotest.(check bool) (Printf.sprintf "reader %d: monotone, untorn" i) true ok;
      Alcotest.(check bool) (Printf.sprintf "reader %d: saw progress" i) true (observed >= 1))
    results;
  let final = Index.current idx in
  Alcotest.(check int) "final version" versions (Index.version final);
  (* Final state equals the sequentially built index. *)
  let seq = Index.build ~version:versions (lib_at versions) in
  List.iter
    (fun (e : Library.entry) ->
      let k = e.Library.op_key ^ "@" ^ e.Library.dla in
      match (Index.find final k, Index.find seq k) with
      | Some a, Some b ->
          Alcotest.(check (float 0.0)) ("entry " ^ k) b.Library.latency_us a.Library.latency_us
      | _ -> Alcotest.fail ("entry missing: " ^ k))
    (Library.entries (lib_at versions));
  Alcotest.(check int) "same size" (Index.size seq) (Index.size final);
  (* Publishing a stale version must be refused. *)
  match Index.publish idx (Index.build ~version:versions (lib_at versions)) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "stale publish must raise"

(* ---------- traffic determinism ---------- *)

let test_traffic_deterministic () =
  let draw seed =
    let t = Traffic.create ~rng:(Rng.create seed) ~n:16 ~s:1.1 in
    List.init 10_000 (fun _ -> Traffic.next t)
  in
  Alcotest.(check (list int)) "equal seeds, equal streams" (draw 7) (draw 7);
  Alcotest.(check bool) "different seeds differ" true (draw 7 <> draw 8);
  let t = Traffic.create ~rng:(Rng.create 1) ~n:8 ~s:1.3 in
  let ws = List.init 8 (Traffic.weight t) in
  Alcotest.(check bool) "zipf weights decrease" true
    (List.for_all2 (fun a b -> a >= b) (List.filteri (fun i _ -> i < 7) ws) (List.tl ws));
  Alcotest.(check (float 1e-9)) "weights normalized" 1.0 (List.fold_left ( +. ) 0.0 ws)

(* One full daemon scenario: replay a seeded Zipf wave, drain, replay a
   second wave. Returns the per-request outcome string and the final
   published library text. *)
let run_scenario ~dir ~pool =
  let universe =
    [ Op.gemm ~m:16 ~n:16 ~k:16 (); Op.gemm ~m:32 ~n:32 ~k:32 (); Op.gemm ~m:32 ~n:16 ~k:16 () ]
  in
  let config =
    {
      (Daemon.default_config ~dir ~resolve:(Daemon.universe_resolve universe) desc) with
      Daemon.budget = 6;
      seed = 11;
      family_max = 2;
    }
  in
  let daemon = Daemon.start config in
  let probes = Array.of_list (List.map (Index.probe ~dla:dname) universe) in
  let traffic = Traffic.create ~rng:(Rng.create 5) ~n:(Array.length probes) ~s:1.0 in
  let outcomes = Buffer.create 256 in
  for _wave = 1 to 2 do
    for _ = 1 to 150 do
      let served = Daemon.lookup daemon probes.(Traffic.next traffic) in
      Buffer.add_char outcomes
        (match served.Daemon.s_outcome with
        | Index.Hit _ -> 'h'
        | Index.Near _ -> 'n'
        | Index.Miss -> 'm');
      Buffer.add_char outcomes (if served.Daemon.s_enqueued then '!' else '.')
    done;
    ignore (Daemon.drain ?pool daemon)
  done;
  (Buffer.contents outcomes, Library.to_string (Daemon.library daemon), Daemon.version daemon)

let test_daemon_jobs_independent () =
  in_dir "jobs1" @@ fun dir1 ->
  in_dir "jobs2" @@ fun dir2 ->
  let o1, l1, v1 = run_scenario ~dir:dir1 ~pool:None in
  let o2, l2, v2 =
    Pool.with_pool ~domains:2 (fun pool -> run_scenario ~dir:dir2 ~pool:(Some pool))
  in
  Alcotest.(check string) "outcome stream identical at any jobs" o1 o2;
  Alcotest.(check string) "published library identical at any jobs" l1 l2;
  Alcotest.(check int) "same version" v1 v2;
  Alcotest.(check bool) "library non-empty" true (l1 <> "")

(* ---------- kill + resume ---------- *)

exception Killed

(* Crash the daemon right after its first publish — the snapshot is on
   disk, the queue checkpoint still lists the published batch — then
   "restart the process" (a fresh Daemon.start on the same directory) and
   drain. The redo of the half-finished batch is idempotent, so the final
   library is byte-identical to an uninterrupted daemon's. *)
let test_kill_resume_identical () =
  let universe =
    [
      Op.gemm ~m:16 ~n:16 ~k:16 ();
      Op.gemm ~m:32 ~n:32 ~k:32 ();
      Op.gemm ~m:32 ~n:16 ~k:16 ();
      Op.gemm ~m:16 ~n:32 ~k:16 ();
    ]
  in
  let config dir =
    {
      (Daemon.default_config ~dir ~resolve:(Daemon.universe_resolve universe) desc) with
      Daemon.budget = 6;
      seed = 23;
      family_max = 2;
    }
  in
  let enqueue_all daemon =
    List.iter (fun op -> ignore (Daemon.lookup_op daemon op)) universe
  in
  in_dir "uninterrupted" @@ fun dir_a ->
  in_dir "killed" @@ fun dir_b ->
  let a = Daemon.start (config dir_a) in
  enqueue_all a;
  let tuned_a = Daemon.drain a in
  Alcotest.(check int) "all tasks tuned" 4 tuned_a;
  let b = Daemon.start (config dir_b) in
  enqueue_all b;
  (match Daemon.drain ~on_publish:(fun _ -> raise Killed) b with
  | exception Killed -> ()
  | _ -> Alcotest.fail "crash hook did not fire");
  (* Restart: the store has v1, the queue checkpoint still has all the
     work the publish had not yet retired. *)
  let b' = Daemon.start (config dir_b) in
  Alcotest.(check int) "restart sees the published snapshot" 1 (Daemon.version b');
  Alcotest.(check bool) "restart resumes a non-empty queue" true (Daemon.queue_length b' > 0);
  Alcotest.(check bool) "restart is clean" false (Daemon.recovered b');
  let _ = Daemon.drain b' in
  Alcotest.(check string) "killed+resumed library is byte-identical"
    (Library.to_string (Daemon.library a))
    (Library.to_string (Daemon.library b'));
  (* The redone batch costs the crashed run one extra publish; content,
     not the version counter, is the identity contract. *)
  Alcotest.(check bool) "crashed run republished" true (Daemon.version b' >= Daemon.version a)

(* ---------- store checksum sidecars + degraded read-only mode ---------- *)

module Store = Heron_serving.Store
module Io_faults = Heron_util.Io_faults

(* Every publish leaves a [.sum] sidecar next to the snapshot; a snapshot
   whose body no longer matches it is rejected by recovery, which then
   settles on the newest version that still verifies. *)
let test_store_sum_sidecar () =
  in_dir "sum" @@ fun dir ->
  let op = Op.gemm ~m:16 ~n:16 ~k:16 () in
  let lib1 = Library.add Library.empty desc op ~latency_us:10.0 Assignment.empty in
  let lib2 = Library.add lib1 desc (Op.gemm ~m:32 ~n:32 ~k:32 ()) ~latency_us:20.0 Assignment.empty in
  let store = Store.open_ ~dir in
  let v1 = Store.publish store lib1 in
  let v2 = Store.publish store lib2 in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "v%d sidecar exists" v)
        true
        (Sys.file_exists (Store.sum_path store v)))
    [ v1; v2 ];
  (* Corrupt v2's body without updating the sidecar: recovery must reject
     it and settle on v1, flagging the recovery. *)
  let snap2 = Store.snapshot_path store v2 in
  let body = In_channel.with_open_bin snap2 In_channel.input_all in
  Out_channel.with_open_bin snap2 (fun oc ->
      Out_channel.output_string oc (String.map (function '0' -> '9' | c -> c) body));
  match Store.load_latest store with
  | None -> Alcotest.fail "v1 must still be loadable"
  | Some loaded ->
      Alcotest.(check int) "fell back to the previous version" v1 loaded.Store.version;
      Alcotest.(check bool) "flagged as recovered" true loaded.Store.recovered;
      Alcotest.(check int) "no skipped lines" 0 (List.length loaded.Store.warnings);
      Alcotest.(check string) "previous content intact" (Library.to_string lib1)
        (Library.to_string loaded.Store.library)

(* A full disk (persistent ENOSPC on every path) flips the daemon into
   read-only serving: tuned results go live in memory, nothing lands on
   disk, and the first pump after space returns republishes and retires
   the queued batch. *)
let test_daemon_degraded_readonly () =
  in_dir "degraded" @@ fun dir ->
  let universe = [ Op.gemm ~m:16 ~n:16 ~k:16 (); Op.gemm ~m:32 ~n:32 ~k:32 () ] in
  let config =
    {
      (Daemon.default_config ~dir ~resolve:(Daemon.universe_resolve universe) desc) with
      Daemon.budget = 6;
      seed = 11;
      family_max = 2;
    }
  in
  Io_faults.set_default
    (Some (Io_faults.create { Io_faults.zero with persistent = 1.0 }));
  let daemon =
    Fun.protect ~finally:(fun () -> Io_faults.set_default None) @@ fun () ->
    let daemon = Daemon.start config in
    List.iter (fun op -> ignore (Daemon.lookup_op daemon op)) universe;
    let tuned = Daemon.drain daemon in
    Alcotest.(check bool) "tasks were tuned before the failed publish" true (tuned > 0);
    Alcotest.(check bool) "daemon went read-only" true (Daemon.read_only daemon);
    Alcotest.(check int) "nothing durably published" 0 (Daemon.version daemon);
    Alcotest.(check bool) "results live in memory" true
      (Library.size (Daemon.library daemon) > 0);
    Alcotest.(check bool) "queue keeps the unflushed batch" true
      (Daemon.queue_length daemon > 0);
    Alcotest.(check bool) "no manifest on the full disk" false
      (Sys.file_exists (Filename.concat dir "MANIFEST.json"));
    (* Traffic is still answered from the in-memory index. *)
    (match (Daemon.lookup_op daemon (List.hd universe)).Daemon.s_outcome with
    | Index.Hit _ -> ()
    | _ -> Alcotest.fail "read-only daemon must still serve hits");
    daemon
  in
  (* Space returns: the next pump retries the pending publish before
     tuning anything. *)
  let tuned = Daemon.pump daemon ~max_tasks:0 in
  Alcotest.(check int) "no tuning needed to recover" 0 tuned;
  Alcotest.(check bool) "read-only cleared" false (Daemon.read_only daemon);
  Alcotest.(check bool) "publish landed" true (Daemon.version daemon > 0);
  Alcotest.(check int) "queued batch retired" 0 (Daemon.queue_length daemon);
  (* A process restart sees exactly the in-memory state that was serving. *)
  let daemon' = Daemon.start config in
  Alcotest.(check string) "restart sees the recovered library"
    (Library.to_string (Daemon.library daemon))
    (Library.to_string (Daemon.library daemon'))

let suite =
  [
    Alcotest.test_case "library: lenient load skips malformed lines" `Quick test_load_lenient;
    Alcotest.test_case "library: strict load round-trips clean files" `Quick
      test_load_clean_roundtrip;
    Alcotest.test_case "index: exact hit, bucket near-miss, miss" `Quick test_index_near_fallback;
    Alcotest.test_case "index: concurrent readers see monotone untorn snapshots" `Quick
      test_concurrent_readers;
    Alcotest.test_case "traffic: seeded zipf streams are reproducible" `Quick
      test_traffic_deterministic;
    Alcotest.test_case "daemon: scenario is --jobs independent" `Slow
      test_daemon_jobs_independent;
    Alcotest.test_case "daemon: kill after publish + resume is byte-identical" `Slow
      test_kill_resume_identical;
    Alcotest.test_case "store: checksum sidecar rejects corrupt snapshots" `Quick
      test_store_sum_sidecar;
    Alcotest.test_case "daemon: full disk degrades to read-only, then recovers" `Quick
      test_daemon_degraded_readonly;
  ]
