(* Tests for the schedule IR: instantiation, loop paths, footprints, and
   the end-to-end numeric check that a CSP solution instantiates to a
   semantically correct program (tile executor vs reference interpreter). *)

module Op = Heron_tensor.Op
module Ref_exec = Heron_tensor.Ref_exec
module Template = Heron_sched.Template
module Concrete = Heron_sched.Concrete
module Tile_exec = Heron_sched.Tile_exec
module Prim = Heron_sched.Prim
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module D = Heron_dla.Descriptor
module Rng = Heron_util.Rng

(* A tiny hand-built template: one stage, i split in two. *)
let toy_template () =
  let op = Op.gemm ~m:8 ~n:4 ~k:2 () in
  let loop name var origin kind ann =
    { Template.lname = name; extent_var = var; origin; kind; ann }
  in
  {
    Template.op;
    stages =
      [
        {
          Template.sname = "C";
          scope = "local";
          loops =
            [
              loop "i.o" "io" "i" Op.Spatial Template.Plain;
              loop "i.i" "ii" "i" Op.Spatial (Template.Unrolled "u");
              loop "j" "j" "j" Op.Spatial (Template.Vectorized "v");
              loop "r" "r" "r" Op.Reduction Template.Plain;
            ];
          attach = Template.Root;
          role = Template.Compute;
          align_pad = None;
        };
      ];
    prims = [];
    intrin = None;
  }

let toy_assignment =
  Assignment.of_list [ ("io", 4); ("ii", 2); ("j", 4); ("r", 2); ("u", 16); ("v", 4) ]

let test_instantiate () =
  let prog = Concrete.instantiate (toy_template ()) toy_assignment in
  let stage = Concrete.compute_stage prog in
  Alcotest.(check int) "loops" 4 (List.length stage.Concrete.loops);
  let exts = List.map (fun (l : Concrete.cloop) -> l.Concrete.extent) stage.Concrete.loops in
  Alcotest.(check (list int)) "extents" [ 4; 2; 4; 2 ] exts;
  (match (List.nth stage.Concrete.loops 1).Concrete.ann with
  | Concrete.Unrolled 16 -> ()
  | _ -> Alcotest.fail "unroll annotation resolved");
  match (List.nth stage.Concrete.loops 2).Concrete.ann with
  | Concrete.Vectorized 4 -> ()
  | _ -> Alcotest.fail "vector annotation resolved"

let test_instantiate_missing_var () =
  Alcotest.check_raises "missing variable"
    (Invalid_argument "Concrete.instantiate: unbound variable v") (fun () ->
      ignore
        (Concrete.instantiate (toy_template ())
           (Assignment.of_list [ ("io", 4); ("ii", 2); ("j", 4); ("r", 2); ("u", 16) ])))

let test_coverage () =
  let prog = Concrete.instantiate (toy_template ()) toy_assignment in
  Alcotest.(check (list string)) "covers" [] (Concrete.coverage_errors prog);
  let bad = Assignment.set toy_assignment "io" 2 in
  let prog = Concrete.instantiate (toy_template ()) bad in
  Alcotest.(check bool) "mismatch detected" true (Concrete.coverage_errors prog <> [])

let test_footprint () =
  let prog = Concrete.instantiate (toy_template ()) toy_assignment in
  let stage = Concrete.compute_stage prog in
  Alcotest.(check int) "elems" (4 * 2 * 4 * 2) (Concrete.footprint_elems stage)

let test_toy_tile_exec () =
  let tpl = toy_template () in
  let prog = Concrete.instantiate tpl toy_assignment in
  let rng = Rng.create 1 in
  let inputs =
    List.map
      (fun (name, n) -> (name, Array.init n (fun _ -> Rng.float rng -. 0.5)))
      (Ref_exec.input_sizes tpl.Template.op)
  in
  match Tile_exec.run prog inputs with
  | Error e -> Alcotest.fail e
  | Ok got ->
      let want = Ref_exec.run tpl.Template.op inputs in
      Array.iteri
        (fun i x ->
          if abs_float (x -. got.(i)) > 1e-6 then Alcotest.failf "mismatch at %d" i)
        want

(* The central integration property: every solution of the generated
   constrained space instantiates to a program whose tiled execution equals
   the reference semantics. *)
let check_generated_numerics desc op ~solutions =
  let gen = Heron.Generator.generate desc op in
  let rng = Rng.create 77 in
  let sols = Solver.rand_sat rng gen.Heron.Generator.problem solutions in
  Alcotest.(check bool) "got solutions" true (sols <> []);
  let sched_op = gen.Heron.Generator.template.Template.op in
  let inputs =
    List.map
      (fun (name, n) -> (name, Array.init n (fun _ -> Rng.float rng -. 0.5)))
      (Ref_exec.input_sizes sched_op)
  in
  let want = Ref_exec.run sched_op inputs in
  List.iter
    (fun a ->
      let prog = Concrete.instantiate gen.Heron.Generator.template a in
      match Tile_exec.run prog inputs with
      | Error e -> Alcotest.fail e
      | Ok got ->
          Array.iteri
            (fun i x ->
              if abs_float (x -. got.(i)) > 1e-4 *. (1.0 +. abs_float x) then
                Alcotest.failf "numeric mismatch at %d: %f vs %f" i x got.(i))
            want)
    sols

let test_generated_gemm_numerics () =
  check_generated_numerics D.v100 (Op.gemm ~m:32 ~n:32 ~k:32 ()) ~solutions:5

let test_generated_conv_numerics () =
  (* Small conv whose im2col dims still admit the intrinsic. *)
  check_generated_numerics D.vta
    (Op.conv2d ~dt:Op.I8 ~n:1 ~ci:16 ~h:4 ~w:4 ~co:64 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ())
    ~solutions:3

let test_generated_fused_numerics () =
  (* A tuned gemm+relu program matches the fused reference end to end. *)
  check_generated_numerics D.v100 (Op.fuse_post (Op.gemm ~m:32 ~n:32 ~k:32 ()) Op.Relu)
    ~solutions:3

let test_generated_dlboost_numerics () =
  check_generated_numerics D.dlboost (Op.gemm ~dt:Op.I8 ~m:8 ~n:16 ~k:16 ()) ~solutions:4

(* A schedule-free template — one Plain loop per original iterator — so any
   operator cross-checks tiled execution against the reference interpreter
   without needing a generator for its shape. *)
let flat_template op =
  let loop (it : Op.iter) =
    {
      Template.lname = it.Op.iname;
      extent_var = it.Op.iname;
      origin = it.Op.iname;
      kind = it.Op.kind;
      ann = Template.Plain;
    }
  in
  let tpl =
    {
      Template.op;
      stages =
        [
          {
            Template.sname = "C";
            scope = "local";
            loops = List.map loop op.Op.iters;
            attach = Template.Root;
            role = Template.Compute;
            align_pad = None;
          };
        ];
      prims = [];
      intrin = None;
    }
  in
  let a =
    Assignment.of_list (List.map (fun (it : Op.iter) -> (it.Op.iname, it.Op.extent)) op.Op.iters)
  in
  (tpl, a)

let cross_check op =
  let tpl, a = flat_template op in
  let prog = Concrete.instantiate tpl a in
  let rng = Rng.create 11 in
  let inputs =
    List.map
      (fun (name, n) -> (name, Array.init n (fun _ -> Rng.float rng -. 0.5)))
      (Ref_exec.input_sizes op)
  in
  match Tile_exec.run prog inputs with
  | Error e -> Alcotest.fail e
  | Ok got ->
      let want = Ref_exec.run op inputs in
      Alcotest.(check int) "output size" (Array.length want) (Array.length got);
      Array.iteri
        (fun i x ->
          if abs_float (x -. got.(i)) > 1e-6 *. (1.0 +. abs_float x) then
            Alcotest.failf "mismatch at %d: %f vs %f" i x got.(i))
        want

let test_tile_exec_gemv () = cross_check (Op.gemv ~m:9 ~k:7 ())
let test_tile_exec_bmm () = cross_check (Op.bmm ~b:3 ~m:4 ~n:5 ~k:6 ())

let test_tile_exec_fused_gemv () =
  (* The epilogue must apply after the reduction completes, not per MAC. *)
  cross_check (Op.fuse_post (Op.gemv ~m:9 ~k:7 ()) Op.Sigmoid)

let test_tile_exec_scan_defers () =
  (* Non-contraction bodies take the defer-to-reference path and must still
     return the reference output. *)
  cross_check (Op.scan ~b:2 ~l:8 ())

let test_tile_exec_coverage_error () =
  let op = Op.gemv ~m:9 ~k:7 () in
  let tpl, a = flat_template op in
  let prog = Concrete.instantiate tpl (Assignment.set a "i" 3) in
  let inputs =
    List.map (fun (name, n) -> (name, Array.make n 1.0)) (Ref_exec.input_sizes op)
  in
  match Tile_exec.run prog inputs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "under-covered program must be rejected"

let test_loop_path_nesting () =
  let op = Op.gemm ~m:64 ~n:64 ~k:64 () in
  let gen = Heron.Generator.generate D.v100 op in
  match Solver.solve (Rng.create 3) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      let prog = Concrete.instantiate gen.Heron.Generator.template a in
      let compute = Concrete.compute_stage prog in
      let path = Concrete.loop_path prog compute in
      (* Path = store loops above the attach point + compute's own loops. *)
      Alcotest.(check bool) "path longer than own loops" true
        (List.length path > List.length compute.Concrete.loops);
      let own = List.length compute.Concrete.loops in
      let tail = List.filteri (fun i _ -> i >= List.length path - own) path in
      Alcotest.(check (list string)) "own loops are the suffix"
        (List.map (fun (l : Concrete.cloop) -> l.Concrete.name) compute.Concrete.loops)
        (List.map (fun (l : Concrete.cloop) -> l.Concrete.name) tail)

let test_align_pad_footprint () =
  let op = Op.gemm ~m:64 ~n:64 ~k:64 () in
  let gen = Heron.Generator.generate D.v100 op in
  match Solver.solve (Rng.create 4) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      let a8 = Assignment.set a "pad_a" 8 and a0 = Assignment.set a "pad_a" 0 in
      let f pad_a =
        let prog = Concrete.instantiate gen.Heron.Generator.template pad_a in
        Concrete.footprint_bytes prog (Concrete.find_stage prog "A.shared")
      in
      let rows = Assignment.get a "aux_i_1" in
      Alcotest.(check int) "padding adds 2 bytes per row * 8" (rows * 8 * 2) (f a8 - f a0)

let test_axis_extent () =
  let op = Op.gemm ~m:128 ~n:128 ~k:64 () in
  let gen = Heron.Generator.generate D.v100 op in
  match Solver.solve (Rng.create 5) gen.Heron.Generator.problem with
  | None -> Alcotest.fail "satisfiable"
  | Some a ->
      let prog = Concrete.instantiate gen.Heron.Generator.template a in
      let warps = Concrete.axis_extent prog Prim.Thread_y in
      Alcotest.(check int) "warps = warp tile product"
        (Assignment.get a "tile_i_warp" * Assignment.get a "tile_j_warp")
        warps;
      let blocks =
        Concrete.axis_extent prog Prim.Block_x * Concrete.axis_extent prog Prim.Block_y
      in
      Alcotest.(check int) "blocks = block tiles"
        (Assignment.get a "tile_i_block" * Assignment.get a "tile_j_block")
        blocks

let test_coverage_property_many_samples () =
  (* Every solution of the constrained space covers the iteration space
     exactly (50 samples across two shapes). *)
  List.iter
    (fun op ->
      let gen = Heron.Generator.generate D.v100 op in
      let sols = Solver.rand_sat (Rng.create 123) gen.Heron.Generator.problem 25 in
      List.iter
        (fun a ->
          let prog = Concrete.instantiate gen.Heron.Generator.template a in
          Alcotest.(check (list string)) "covers" [] (Concrete.coverage_errors prog))
        sols)
    [ Op.gemm ~m:1024 ~n:1024 ~k:1024 (); Op.gemm ~m:32 ~n:1000 ~k:2048 () ]

let suite =
  [
    Alcotest.test_case "instantiate" `Quick test_instantiate;
    Alcotest.test_case "instantiate missing var" `Quick test_instantiate_missing_var;
    Alcotest.test_case "coverage check" `Quick test_coverage;
    Alcotest.test_case "footprint" `Quick test_footprint;
    Alcotest.test_case "toy tile exec" `Quick test_toy_tile_exec;
    Alcotest.test_case "generated gemm numerics (V100)" `Quick test_generated_gemm_numerics;
    Alcotest.test_case "generated conv numerics (VTA)" `Quick test_generated_conv_numerics;
    Alcotest.test_case "generated gemm numerics (DLBoost)" `Quick
      test_generated_dlboost_numerics;
    Alcotest.test_case "generated fused gemm+relu numerics" `Quick
      test_generated_fused_numerics;
    Alcotest.test_case "tile exec gemv vs reference" `Quick test_tile_exec_gemv;
    Alcotest.test_case "tile exec bmm vs reference" `Quick test_tile_exec_bmm;
    Alcotest.test_case "tile exec fused gemv vs reference" `Quick test_tile_exec_fused_gemv;
    Alcotest.test_case "tile exec scan defers to reference" `Quick test_tile_exec_scan_defers;
    Alcotest.test_case "tile exec rejects under-coverage" `Quick
      test_tile_exec_coverage_error;
    Alcotest.test_case "loop path nesting" `Quick test_loop_path_nesting;
    Alcotest.test_case "storage_align footprint" `Quick test_align_pad_footprint;
    Alcotest.test_case "thread axis extents" `Quick test_axis_extent;
    Alcotest.test_case "coverage property (50 samples)" `Quick
      test_coverage_property_many_samples;
  ]
