(* Observability layer tests: JSON round-trips, counter semantics (incl.
   race-freedom under the domain pool), span nesting, golden-trace
   regression on a fixed-seed tuning run (schema validity, monotone
   best-so-far, counter/evals agreement), tracing transparency (results
   are byte-identical with and without a journal), jobs-independence of
   the deterministic counters, and the Recorder cache cap. *)

module Obs = Heron_obs.Obs
module Json = Heron_obs.Json
module Trace = Heron_obs.Trace
module Pool = Heron_util.Pool
module Rng = Heron_util.Rng
module Domain_ = Heron_csp.Domain
module Cons = Heron_csp.Cons
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Env = Heron_search.Env
module Cga = Heron_search.Cga

(* ---------- helpers ---------- *)

let tmp_journal () = Filename.temp_file "heron_obs" ".jsonl"

let with_journal f =
  let path = tmp_journal () in
  let m = Obs.manifest ~tool:"test" ~seed:0 () in
  Obs.start ~path m;
  let x = Fun.protect ~finally:Obs.stop f in
  let events =
    match Trace.read_file path with
    | Ok es -> es
    | Error msg -> Alcotest.failf "journal unreadable: %s" msg
  in
  Sys.remove path;
  (x, events)

let counter_delta names f =
  let before = List.map (fun n -> Obs.Counter.value (Obs.Counter.make n)) names in
  let x = f () in
  let after = List.map (fun n -> Obs.Counter.value (Obs.Counter.make n)) names in
  (x, List.map2 (fun a b -> a - b) after before)

let check_valid events =
  Alcotest.(check (list string)) "schema valid" [] (Trace.schema_errors events);
  Alcotest.(check (list string)) "nesting valid" [] (Trace.nesting_errors events)

(* The paper's Figure 5 toy space: fast enough to tune in milliseconds. *)
let toy_problem () =
  let b = Problem.builder () in
  Problem.add_var b "x" (Domain_.of_list [ 1; 2; 3; 4; 5 ]);
  Problem.add_var b "y" (Domain_.of_list [ 1; 2; 3; 4; 5 ]);
  Problem.add_var b "z" (Domain_.of_list [ 0; 1 ]);
  Problem.add_var b "xy" (Domain_.of_list (List.init 8 (fun i -> i + 1)));
  Problem.add_cons b (Cons.Prod ("xy", [ "x"; "y" ]));
  Problem.freeze b

let toy_objective a =
  (0.4 *. float_of_int (Assignment.get a "x"))
  +. (0.6 *. float_of_int (Assignment.get a "y"))
  +. (0.01 *. float_of_int (Assignment.get a "z"))

let toy_env seed =
  let p = toy_problem () in
  {
    Env.problem = p;
    measure =
      (fun a ->
        if Problem.check p a = Ok () then Some (1000.0 /. toy_objective a) else None);
    rng = Rng.create seed;
  }

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-123456789);
      Json.Float 0.1;
      Json.Float 1.0;
      Json.Float 1e-9;
      Json.Float (-3.25);
      Json.String "";
      Json.String "plain";
      Json.String "esc \"quotes\" \\ back \n newline \t tab";
      Json.String "ctrl \001 char";
      Json.List [];
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Float 2.5 ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.parse s with
      | Ok v' -> Alcotest.(check bool) ("roundtrip " ^ s) true (v = v')
      | Error msg -> Alcotest.failf "parse %s failed: %s" s msg)
    values

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ "{"; "tru"; "1 2"; "\"\\q\""; "[1,"; "{\"a\":}"; "" ]

let test_json_accessors () =
  let j = Json.Obj [ ("i", Json.Int 3); ("f", Json.Float 2.5); ("s", Json.String "x") ] in
  Alcotest.(check (option int)) "int" (Some 3) (Option.bind (Json.member "i" j) Json.to_int_opt);
  Alcotest.(check (option (float 0.0)))
    "int widens" (Some 3.0)
    (Option.bind (Json.member "i" j) Json.to_float_opt);
  Alcotest.(check (option string))
    "string" (Some "x")
    (Option.bind (Json.member "s" j) Json.to_string_opt);
  Alcotest.(check bool) "missing" true (Json.member "nope" j = None)

(* ---------- counters ---------- *)

let test_counter_basics () =
  let c = Obs.Counter.make "test.basic" in
  let c' = Obs.Counter.make "test.basic" in
  let v0 = Obs.Counter.value c in
  Obs.Counter.incr c;
  Obs.Counter.add c' 9;
  Alcotest.(check int) "same counter by name" (v0 + 10) (Obs.Counter.value c);
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.basic" (Obs.Counter.snapshot ()))

let test_gauge_basics () =
  let g = Obs.Gauge.make "test.gauge" in
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "set/get" 2.5 (Obs.Gauge.value g);
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.gauge" (Obs.Gauge.snapshot ()))

(* Satellite: counters must be race-free under Pool.parallel_map — the
   total is exact and identical for any jobs value. *)
let test_counter_race_free_under_pool () =
  let c = Obs.Counter.make "test.race" in
  let tasks = 64 and per_task = 25 in
  List.iter
    (fun domains ->
      let _, deltas =
        counter_delta [ "test.race" ] (fun () ->
            Pool.with_pool ~domains (fun pool ->
                ignore
                  (Pool.parallel_init pool tasks (fun _ ->
                       for _ = 1 to per_task do
                         Obs.Counter.incr c
                       done))))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "exact total with %d domains" domains)
        [ tasks * per_task ] deltas)
    [ 1; 2; 4; 8 ]

(* pool.tasks counts submitted tasks, so its total is jobs-independent even
   though the chunk split is not. *)
let test_pool_task_counter_jobs_independent () =
  let run domains =
    let _, deltas =
      counter_delta [ "pool.tasks" ] (fun () ->
          Pool.with_pool ~domains (fun pool ->
              ignore (Pool.parallel_init pool 37 (fun i -> i * i))))
    in
    deltas
  in
  let d1 = run 1 in
  Alcotest.(check (list int)) "37 tasks at jobs=1" [ 37 ] d1;
  Alcotest.(check bool) "same at jobs=4" true (run 4 = d1)

(* ---------- journal and spans ---------- *)

let test_start_stop_lifecycle () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  let _, events =
    with_journal (fun () ->
        Alcotest.(check bool) "enabled inside" true (Obs.enabled ());
        (match Obs.start ~path:"/dev/null" (Obs.manifest ~tool:"t" ()) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "double start must raise"))
  in
  check_valid events;
  Obs.stop () (* idempotent: no trace active *)

let test_span_nesting_and_parents () =
  let (), events =
    with_journal (fun () ->
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" (fun () -> ());
            Obs.with_span "inner2" (fun () -> ())))
  in
  check_valid events;
  let begins = List.filter (fun (e : Trace.event) -> e.ev = "span_begin") events in
  Alcotest.(check int) "three spans" 3 (List.length begins);
  let find name =
    List.find (fun e -> Trace.string_field "span" e = Some name) begins
  in
  let outer_id = Option.get (Trace.int_field "id" (find "outer")) in
  Alcotest.(check bool) "outer is a root" true
    (Trace.field "parent" (find "outer") = Some Json.Null);
  Alcotest.(check (option int)) "inner nests under outer" (Some outer_id)
    (Trace.int_field "parent" (find "inner"));
  Alcotest.(check (option int)) "inner2 nests under outer" (Some outer_id)
    (Trace.int_field "parent" (find "inner2"))

let test_span_exception_safe () =
  let (), events =
    with_journal (fun () ->
        match Obs.with_span "boom" (fun () -> failwith "expected") with
        | exception Failure _ -> ()
        | () -> Alcotest.fail "exception must propagate")
  in
  check_valid events;
  Alcotest.(check int) "span closed despite exception" 1
    (List.length (List.filter (fun (e : Trace.event) -> e.ev = "span_end") events))

let test_timestamps_monotone () =
  let (), events =
    with_journal (fun () ->
        for _ = 1 to 50 do
          Obs.with_span "tick" (fun () -> ())
        done)
  in
  check_valid events;
  ignore
    (List.fold_left
       (fun prev (e : Trace.event) ->
         Alcotest.(check bool) "t_ns non-decreasing" true (e.t_ns >= prev);
         e.t_ns)
       0 events)

let test_trace_lint_rejects_malformed () =
  (* The validators must actually catch broken journals. *)
  Alcotest.(check bool) "bad JSON" true (Trace.parse_line "{not json" |> Result.is_error);
  Alcotest.(check bool) "missing header" true
    (Trace.parse_line "{\"v\":1,\"ev\":\"counter\"}" |> Result.is_error);
  Alcotest.(check bool) "wrong version" true
    (Trace.parse_line "{\"v\":99,\"t_ns\":0,\"ev\":\"counter\"}" |> Result.is_error);
  let ev line =
    match Trace.parse_line line with Ok e -> e | Error m -> Alcotest.failf "parse: %s" m
  in
  let manifest =
    ev "{\"v\":1,\"t_ns\":0,\"ev\":\"manifest\",\"schema\":1,\"tool\":\"t\",\"git_rev\":\"x\"}"
  in
  Alcotest.(check bool) "unknown event type flagged" true
    (Trace.schema_errors [ manifest; ev "{\"v\":1,\"t_ns\":1,\"ev\":\"bogus\"}" ] <> []);
  Alcotest.(check bool) "missing required field flagged" true
    (Trace.schema_errors
       [ manifest; ev "{\"v\":1,\"t_ns\":1,\"ev\":\"counter\",\"name\":\"c\"}" ]
    <> []);
  Alcotest.(check bool) "manifest-first enforced" true
    (Trace.schema_errors [ ev "{\"v\":1,\"t_ns\":0,\"ev\":\"trace_end\",\"events\":1}" ] <> []);
  Alcotest.(check bool) "unmatched span_end flagged" true
    (Trace.nesting_errors
       [ ev "{\"v\":1,\"t_ns\":1,\"ev\":\"span_end\",\"span\":\"s\",\"id\":7,\"domain\":0,\"dur_ns\":1}" ]
    <> []);
  Alcotest.(check bool) "unclosed span flagged" true
    (Trace.nesting_errors
       [ ev "{\"v\":1,\"t_ns\":1,\"ev\":\"span_begin\",\"span\":\"s\",\"id\":7,\"parent\":null,\"domain\":0}" ]
    <> [])

(* ---------- golden trace of a fixed-seed tuning run ---------- *)

let test_golden_tuning_trace () =
  let (outcome, step_delta), events =
    with_journal (fun () ->
        counter_delta [ "env.measure_steps" ] (fun () -> Cga.run (toy_env 21) ~budget:40))
  in
  let outcome, step_delta = (outcome, List.hd step_delta) in
  check_valid events;
  (* Eval trajectory: steps are consecutive from 1, best is monotone
     non-increasing, and the journal agrees with the in-memory result. *)
  let evals = Trace.evals events in
  let result = outcome.Cga.result in
  Alcotest.(check int) "one eval event per trace point"
    (List.length result.Env.trace) (List.length evals);
  List.iteri
    (fun i (step, _, _) -> Alcotest.(check int) "steps consecutive" (i + 1) step)
    evals;
  ignore
    (List.fold_left
       (fun prev (_, _, best) ->
         (match (prev, best) with
         | Some p, Some b -> Alcotest.(check bool) "best monotone" true (b <= p)
         | None, _ -> ()
         | Some _, None -> Alcotest.fail "best disappeared");
         best)
       None evals);
  (match List.rev evals with
  | (_, _, final_best) :: _ ->
      Alcotest.(check bool) "final best matches result" true
        (final_best = result.Env.best_latency)
  | [] -> Alcotest.fail "no eval events");
  (* Counter totals in the journal describe this run alone and agree with
     both the live counter delta and the number of emitted eval events. *)
  Alcotest.(check (option int)) "journal steps counter = live delta" (Some step_delta)
    (Trace.counter events "env.measure_steps");
  Alcotest.(check int) "steps counter = eval events" (List.length evals) step_delta;
  (* Structure: generation events and the CGA phase spans are present. *)
  Alcotest.(check bool) "has generation events" true
    (List.exists (fun (e : Trace.event) -> e.ev = "generation") events);
  let span_names =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.ev = "span_begin" then Trace.string_field "span" e else None)
      events
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("span " ^ name) true (List.mem name span_names))
    [ "cga.seed_population"; "cga.evolve"; "cga.measure" ];
  match events with
  | first :: _ ->
      Alcotest.(check (option string)) "manifest tool" (Some "test")
        (Trace.string_field "tool" first);
      Alcotest.(check bool) "git_rev present" true
        (Trace.string_field "git_rev" first <> Some "")
  | [] -> Alcotest.fail "empty journal"

(* Tracing must never change what the search does. *)
let test_tracing_transparent () =
  let run traced =
    let go () =
      let o = Cga.run (toy_env 33) ~budget:40 in
      (o.Cga.result.Env.best_latency, o.Cga.result.Env.trace, o.Cga.result.Env.invalid)
    in
    if traced then fst (with_journal go) else go ()
  in
  let plain = run false in
  Alcotest.(check bool) "traced run identical" true (run true = plain);
  Alcotest.(check bool) "untraced rerun identical" true (run false = plain)

(* The deterministic counters advance by exactly the same amount for any
   pool size (atomic increments over identical work). *)
let deterministic_counters =
  [
    "env.evals";
    "env.measure_steps";
    "env.invalid";
    "env.cache_hits";
    "solver.nodes";
    "solver.fails";
    "solver.rand_sat_draws";
    "solver.solve_calls";
    "solver.compiles";
    "solver.compile_cache_hits";
    "solver.trail_pushes";
    "cga.iterations";
    "cga.generations";
    "cga.offspring_attempted";
    "cga.offspring_accepted";
  ]

let test_counters_jobs_independent () =
  let run pool =
    counter_delta deterministic_counters (fun () ->
        (Cga.run ?pool (toy_env 21) ~budget:40).Cga.result.Env.best_latency)
  in
  let best0, deltas0 = run None in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let best, deltas = run (Some p) in
          Alcotest.(check bool) "same best" true (best = best0);
          List.iteri
            (fun i name ->
              Alcotest.(check int)
                (Printf.sprintf "%s identical at jobs=%d" name domains)
                (List.nth deltas0 i) (List.nth deltas i))
            deterministic_counters))
    [ 2; 4 ]

(* ---------- Recorder cache cap ---------- *)

let test_cache_cap_holds () =
  let measured = ref 0 in
  let p = toy_problem () in
  let env =
    {
      Env.problem = p;
      measure =
        (fun a ->
          incr measured;
          Some (1000.0 /. toy_objective a));
      rng = Rng.create 1;
    }
  in
  let assignment x y = Assignment.of_list [ ("x", x); ("y", y); ("z", 0); ("xy", x * y) ] in
  let distinct = [ assignment 1 1; assignment 1 2; assignment 1 3;
                   assignment 1 4; assignment 1 5; assignment 2 1 ] in
  let r = Env.Recorder.create ~cache_cap:3 env ~budget:100 in
  let _, evictions =
    counter_delta [ "env.cache_evictions" ] (fun () ->
        List.iter (fun a -> ignore (Env.Recorder.eval r a)) distinct)
  in
  Alcotest.(check bool) "cap holds" true (Env.Recorder.cache_size r <= 3);
  Alcotest.(check (list int)) "evictions counted" [ 3 ] evictions;
  (* An evicted configuration is re-measured (one more hardware call); a
     resident one replays from cache. *)
  let calls = !measured in
  ignore (Env.Recorder.eval r (assignment 1 1));
  Alcotest.(check int) "evicted key re-measured" (calls + 1) !measured;
  ignore (Env.Recorder.eval r (assignment 2 1));
  Alcotest.(check int) "resident key cached" (calls + 1) !measured

let test_cache_cap_default_never_evicts () =
  let r = Env.Recorder.create (toy_env 9) ~budget:50 in
  let _, evictions =
    counter_delta [ "env.cache_evictions" ] (fun () ->
        for x = 1 to 5 do
          for y = 1 to 5 do
            if x * y <= 8 then
              ignore
                (Env.Recorder.eval r
                   (Assignment.of_list [ ("x", x); ("y", y); ("z", 0); ("xy", x * y) ]))
          done
        done)
  in
  Alcotest.(check (list int)) "no evictions at default cap" [ 0 ] evictions

(* A failed journal write — here injected via the same hook that
   Io_faults.set_default installs — drops that one event and counts it;
   the run continues and the surviving journal still validates. *)
let test_journal_write_fault_drops_event () =
  let drop_next = ref false in
  Obs.set_journal_write_fault
    (Some
       (fun ~path:_ ~seq:_ ->
         if !drop_next then begin
           drop_next := false;
           true
         end
         else false));
  Fun.protect ~finally:(fun () -> Obs.set_journal_write_fault None) @@ fun () ->
  let ((), deltas), events =
    with_journal (fun () ->
        counter_delta [ "obs.journal_write_failures" ] (fun () ->
            Obs.emit "gauge" [ ("name", Json.String "keep_a"); ("value", Json.Float 1.0) ];
            drop_next := true;
            Obs.emit "gauge" [ ("name", Json.String "dropped"); ("value", Json.Float 2.0) ];
            Obs.emit "gauge" [ ("name", Json.String "keep_b"); ("value", Json.Float 3.0) ]))
  in
  Alcotest.(check (list int)) "one failure counted" [ 1 ] deltas;
  Alcotest.(check bool) "hook consumed" false !drop_next;
  check_valid events;
  let gauge_names =
    List.filter_map
      (fun e ->
        if e.Trace.ev = "gauge" then
          Option.bind (Trace.field "name" e) Json.to_string_opt
        else None)
      events
  in
  Alcotest.(check bool) "events around the drop survive" true
    (List.mem "keep_a" gauge_names && List.mem "keep_b" gauge_names);
  Alcotest.(check bool) "the faulted event is gone" false (List.mem "dropped" gauge_names)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
    Alcotest.test_case "counters race-free under pool" `Quick
      test_counter_race_free_under_pool;
    Alcotest.test_case "pool.tasks jobs-independent" `Quick
      test_pool_task_counter_jobs_independent;
    Alcotest.test_case "start/stop lifecycle" `Quick test_start_stop_lifecycle;
    Alcotest.test_case "span nesting and parents" `Quick test_span_nesting_and_parents;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
    Alcotest.test_case "validators reject malformed journals" `Quick
      test_trace_lint_rejects_malformed;
    Alcotest.test_case "golden tuning trace" `Quick test_golden_tuning_trace;
    Alcotest.test_case "tracing is transparent" `Quick test_tracing_transparent;
    Alcotest.test_case "counters jobs-independent" `Quick test_counters_jobs_independent;
    Alcotest.test_case "cache cap holds with evictions" `Quick test_cache_cap_holds;
    Alcotest.test_case "default cap never evicts" `Quick test_cache_cap_default_never_evicts;
    Alcotest.test_case "journal write fault drops one event" `Quick
      test_journal_write_fault_drops_event;
  ]
