(* Unit and property tests for heron_util. *)

module Rng = Heron_util.Rng
module Ints = Heron_util.Ints
module Hashing = Heron_util.Hashing

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.range rng 3 9 in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done

let test_rng_float () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* split_n: the parallel-determinism workhorse. Stream i must be a pure
   function of (parent state, i), streams must not collide, and the array
   form must agree with sequential splitting and with random access. *)

let stream_prefix rng k = List.init k (fun _ -> Rng.bits64 rng)

let test_split_n_deterministic =
  QCheck.Test.make ~name:"split_n is a pure function of (state, n)" ~count:200
    QCheck.(pair small_int (int_range 0 16))
    (fun (seed, n) ->
      let a = Rng.split_n (Rng.create seed) n in
      let b = Rng.split_n (Rng.create seed) n in
      Array.for_all2 (fun x y -> stream_prefix x 4 = stream_prefix y 4) a b)

let test_split_n_independent =
  QCheck.Test.make ~name:"split_n streams are pairwise distinct" ~count:200
    QCheck.(pair small_int (int_range 2 16))
    (fun (seed, n) ->
      let rngs = Rng.split_n (Rng.create seed) n in
      let prefixes = Array.to_list (Array.map (fun r -> stream_prefix r 4) rngs) in
      List.length (List.sort_uniq compare prefixes) = n)

let test_split_n_matches_sequential =
  QCheck.Test.make ~name:"split_n agrees with n sequential splits" ~count:200
    QCheck.(pair small_int (int_range 0 16))
    (fun (seed, n) ->
      let arr = Rng.split_n (Rng.create seed) n in
      let parent = Rng.create seed in
      let seq = Array.init n (fun _ -> Rng.split parent) in
      Array.for_all2 (fun x y -> stream_prefix x 4 = stream_prefix y 4) arr seq)

let test_split_at_matches_split_n =
  QCheck.Test.make ~name:"split_at i = split_n.(i), parent unadvanced" ~count:200
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, n) ->
      let parent = Rng.create seed in
      let before = stream_prefix (Rng.copy parent) 2 in
      let by_index = Array.init n (fun i -> Rng.split_at parent i) in
      let after = stream_prefix (Rng.copy parent) 2 in
      let arr = Rng.split_n (Rng.copy parent) n in
      before = after
      && Array.for_all2 (fun x y -> stream_prefix x 4 = stream_prefix y 4) by_index arr)

let test_permutation_prop =
  QCheck.Test.make ~name:"permutation is a permutation of 0..n-1" ~count:200
    QCheck.(pair small_int (int_range 0 32))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create seed) n in
      List.sort compare (Array.to_list p) = List.init n (fun i -> i))

let test_sample_distinct () =
  let rng = Rng.create 3 in
  let xs = List.init 20 (fun i -> i) in
  let s = Rng.sample rng xs 8 in
  Alcotest.(check int) "size" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s))

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Ints.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Ints.divisors 1);
  Alcotest.(check (list int)) "divisors 7" [ 1; 7 ] (Ints.divisors 7)

let test_divisors_prop =
  QCheck.Test.make ~name:"divisors divide and are complete" ~count:200
    QCheck.(int_range 1 2000)
    (fun n ->
      let ds = Ints.divisors n in
      List.for_all (fun d -> n mod d = 0) ds
      && List.length ds
         = List.length (List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))))

let test_pow2s () =
  Alcotest.(check (list int)) "pow2 upto 20" [ 1; 2; 4; 8; 16 ] (Ints.pow2s_upto 20)

let test_ceil_div =
  QCheck.Test.make ~name:"ceil_div rounds up" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 1 100))
    (fun (a, b) ->
      let q = Ints.ceil_div a b in
      (q * b >= a) && ((q - 1) * b < a || q = 0))

let test_round_up () =
  Alcotest.(check int) "round_up 13 8" 16 (Ints.round_up 13 8);
  Alcotest.(check int) "round_up 16 8" 16 (Ints.round_up 16 8)

let test_is_pow2 () =
  Alcotest.(check bool) "16" true (Ints.is_pow2 16);
  Alcotest.(check bool) "12" false (Ints.is_pow2 12);
  Alcotest.(check bool) "0" false (Ints.is_pow2 0)

let test_log2_floor () =
  Alcotest.(check int) "log2 1" 0 (Ints.log2_floor 1);
  Alcotest.(check int) "log2 8" 3 (Ints.log2_floor 8);
  Alcotest.(check int) "log2 9" 3 (Ints.log2_floor 9)

let test_hash_stable () =
  Alcotest.(check int64) "fnv stable" (Hashing.fnv1a "heron") (Hashing.fnv1a "heron");
  Alcotest.(check bool) "different inputs differ" true
    (Hashing.fnv1a "a" <> Hashing.fnv1a "b")

let test_hash_ranges () =
  List.iter
    (fun s ->
      let u = Hashing.unit_float s and sv = Hashing.signed_unit s in
      Alcotest.(check bool) "unit in [0,1)" true (u >= 0.0 && u < 1.0);
      Alcotest.(check bool) "signed in [-1,1)" true (sv >= -1.0 && sv < 1.0))
    [ ""; "x"; "heron"; "a-much-longer-key-with-digits-123456" ]

let test_rng_state_hex_roundtrip () =
  let a = Rng.create 987 in
  for _ = 1 to 37 do
    ignore (Rng.bits64 a)
  done;
  let hex = Rng.state_hex a in
  Alcotest.(check int) "16 hex digits" 16 (String.length hex);
  let b = Rng.create 0 in
  (match Rng.set_state_hex b hex with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  for _ = 1 to 50 do
    Alcotest.(check int64) "streams rejoin" (Rng.bits64 a) (Rng.bits64 b)
  done;
  (match Rng.set_state_hex b "nope" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "short state must be rejected");
  match Rng.set_state_hex b "zzzzzzzzzzzzzzzz" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-hex state must be rejected"

let in_temp_dir f =
  let dir = Filename.temp_file "heron_atomic" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_write () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Heron_util.Atomic_io.write_string ~path "first";
      Alcotest.(check string) "content lands" "first" (read_file path);
      Alcotest.(check bool) "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
      (* A failing writer must leave the previous content untouched and
         clean its temp file up. *)
      (match
         Heron_util.Atomic_io.with_file_out ~path (fun oc ->
             output_string oc "torn";
             failwith "mid-write crash")
       with
      | () -> Alcotest.fail "writer must propagate the exception"
      | exception Failure _ -> ());
      Alcotest.(check string) "old content preserved" "first" (read_file path);
      Alcotest.(check bool) "tmp cleaned up" false (Sys.file_exists (path ^ ".tmp")))

let test_atomic_write_fsync () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "durable.json" in
      Heron_util.Atomic_io.write_string ~fsync:true ~path "durable content";
      Alcotest.(check string) "content lands" "durable content" (read_file path);
      Alcotest.(check bool) "no tmp left" false (Sys.file_exists (path ^ ".tmp")))

module Io_faults = Heron_util.Io_faults

let with_injector spec f =
  Io_faults.set_default (Some (Io_faults.create spec));
  Fun.protect ~finally:(fun () -> Io_faults.set_default None) f

let test_io_faults_parse () =
  (match Io_faults.parse "off" with
  | Ok None -> ()
  | _ -> Alcotest.fail "off must parse to no spec");
  (match Io_faults.parse "record" with
  | Ok (Some s) -> Alcotest.(check bool) "record flag" true s.Io_faults.record
  | _ -> Alcotest.fail "record must parse");
  (match Io_faults.parse "crash_at=7" with
  | Ok (Some s) -> Alcotest.(check (option int)) "crash point" (Some 7) s.Io_faults.crash_at
  | _ -> Alcotest.fail "crash_at must parse");
  (match Io_faults.parse "seed=3,enospc=0.1,torn=0.25" with
  | Ok (Some s) ->
      Alcotest.(check int) "seed" 3 s.Io_faults.seed;
      Alcotest.(check (float 1e-9)) "enospc" 0.1 s.Io_faults.enospc;
      Alcotest.(check (float 1e-9)) "torn" 0.25 s.Io_faults.torn;
      (* Canonical rendering round-trips. *)
      (match Io_faults.parse (Io_faults.to_string s) with
      | Ok (Some s') -> Alcotest.(check bool) "roundtrip" true (s = s')
      | _ -> Alcotest.fail "to_string must parse back")
  | _ -> Alcotest.fail "rate spec must parse");
  (match Io_faults.parse "enospc=1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range rate must be rejected");
  match Io_faults.parse "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must be rejected"

(* The same spec over the same write history makes the same decisions —
   and a torn fault never hits a durable (fsynced) write. *)
let test_io_faults_deterministic_and_fsync_immune () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "victim.txt" in
      let spec = { Io_faults.zero with seed = 5; enospc = 1.0 } in
      let outcome () =
        with_injector spec (fun () ->
            match Heron_util.Atomic_io.write_string ~path "payload" with
            | () -> "ok"
            | exception Sys_error msg -> "fail: " ^ msg)
      in
      let a = outcome () and b = outcome () in
      Alcotest.(check string) "same spec, same history, same fate" a b;
      Alcotest.(check bool) "enospc=1.0 always fails" true
        (String.length a >= 5 && String.sub a 0 5 = "fail:");
      (* Non-durable writes can tear (the surviving prefix is hash-chosen,
         so over several paths some must come up short); fsynced writes
         are immune at every path. *)
      let torn = { Io_faults.zero with seed = 5; torn = 1.0 } in
      let content = String.init 64 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
      let paths = List.init 8 (fun i -> Filename.concat dir (Printf.sprintf "t%d" i)) in
      with_injector torn (fun () ->
          List.iter (fun p -> Heron_util.Atomic_io.write_string ~path:p content) paths);
      let lens = List.map (fun p -> String.length (read_file p)) paths in
      Alcotest.(check bool) "torn writes keep prefixes" true
        (List.for_all (fun l -> l <= 64) lens);
      Alcotest.(check bool) "some non-durable write actually tore" true
        (List.exists (fun l -> l < 64) lens);
      with_injector torn (fun () ->
          List.iter
            (fun p -> Heron_util.Atomic_io.write_string ~fsync:true ~path:p content)
            paths);
      Alcotest.(check bool) "durable writes immune to torn faults" true
        (List.for_all (fun p -> read_file p = content) paths))

let test_io_faults_record_counts_sites () =
  in_temp_dir (fun dir ->
      let inj = Io_faults.create { Io_faults.zero with record = true } in
      Io_faults.set_default (Some inj);
      Fun.protect ~finally:(fun () -> Io_faults.set_default None) (fun () ->
          (* write + rename: 2 sites; with fsync a third. *)
          Heron_util.Atomic_io.write_string ~path:(Filename.concat dir "a") "x";
          Alcotest.(check int) "plain write = 2 sites" 2 (Io_faults.sites_seen inj);
          Heron_util.Atomic_io.write_string ~fsync:true ~path:(Filename.concat dir "b") "x";
          Alcotest.(check int) "durable write adds 3 sites" 5 (Io_faults.sites_seen inj)))

let test_with_retry () =
  (* A transient failure is retried; the third attempt succeeds. *)
  let calls = ref 0 in
  let v =
    Heron_util.Atomic_io.with_retry ~attempts:3 ~what:"test" (fun () ->
        incr calls;
        if !calls < 3 then raise (Sys_error "transient (injected)");
        !calls)
  in
  Alcotest.(check int) "succeeds on the last attempt" 3 v;
  (* Attempts exhausted: the last error propagates. *)
  let calls = ref 0 in
  (match
     Heron_util.Atomic_io.with_retry ~attempts:2 ~what:"test" (fun () ->
         incr calls;
         raise (Sys_error "still failing"))
   with
  | _ -> Alcotest.fail "exhausted retry must raise"
  | exception Sys_error _ -> Alcotest.(check int) "bounded attempts" 2 !calls);
  (* A simulated process death is never retried. *)
  let calls = ref 0 in
  match
    Heron_util.Atomic_io.with_retry ~attempts:3 ~what:"test" (fun () ->
        incr calls;
        raise (Io_faults.Crashed { path = "p"; op = Io_faults.Write; site = 0 }))
  with
  | _ -> Alcotest.fail "crash must propagate"
  | exception Io_faults.Crashed _ -> Alcotest.(check int) "no retry on crash" 1 !calls

(* Replay.to_alcotest derives each property's generator state from one
   campaign seed plus the property name and prints the replay commands on
   failure; QCHECK_SEED overrides the seed. *)
let qtest t = Heron_check.Replay.to_alcotest ~seed:(Heron_check.Replay.seed_from_env ()) t

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng range bounds" `Quick test_rng_range;
    Alcotest.test_case "rng float range" `Quick test_rng_float;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    qtest test_shuffle_permutation;
    qtest test_split_n_deterministic;
    qtest test_split_n_independent;
    qtest test_split_n_matches_sequential;
    qtest test_split_at_matches_split_n;
    qtest test_permutation_prop;
    Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
    Alcotest.test_case "divisors examples" `Quick test_divisors;
    qtest test_divisors_prop;
    Alcotest.test_case "pow2s" `Quick test_pow2s;
    qtest test_ceil_div;
    Alcotest.test_case "round_up" `Quick test_round_up;
    Alcotest.test_case "is_pow2" `Quick test_is_pow2;
    Alcotest.test_case "log2_floor" `Quick test_log2_floor;
    Alcotest.test_case "hash stability" `Quick test_hash_stable;
    Alcotest.test_case "hash ranges" `Quick test_hash_ranges;
    Alcotest.test_case "rng state hex roundtrip" `Quick test_rng_state_hex_roundtrip;
    Alcotest.test_case "atomic write" `Quick test_atomic_write;
    Alcotest.test_case "atomic write fsync" `Quick test_atomic_write_fsync;
    Alcotest.test_case "io-faults spec parse" `Quick test_io_faults_parse;
    Alcotest.test_case "io-faults deterministic, fsync torn-immune" `Quick
      test_io_faults_deterministic_and_fsync_immune;
    Alcotest.test_case "io-faults record counts sites" `Quick test_io_faults_record_counts_sites;
    Alcotest.test_case "with_retry policy" `Quick test_with_retry;
  ]
