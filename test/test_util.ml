(* Unit and property tests for heron_util. *)

module Rng = Heron_util.Rng
module Ints = Heron_util.Ints
module Hashing = Heron_util.Hashing

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.range rng 3 9 in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done

let test_rng_float () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* split_n: the parallel-determinism workhorse. Stream i must be a pure
   function of (parent state, i), streams must not collide, and the array
   form must agree with sequential splitting and with random access. *)

let stream_prefix rng k = List.init k (fun _ -> Rng.bits64 rng)

let test_split_n_deterministic =
  QCheck.Test.make ~name:"split_n is a pure function of (state, n)" ~count:200
    QCheck.(pair small_int (int_range 0 16))
    (fun (seed, n) ->
      let a = Rng.split_n (Rng.create seed) n in
      let b = Rng.split_n (Rng.create seed) n in
      Array.for_all2 (fun x y -> stream_prefix x 4 = stream_prefix y 4) a b)

let test_split_n_independent =
  QCheck.Test.make ~name:"split_n streams are pairwise distinct" ~count:200
    QCheck.(pair small_int (int_range 2 16))
    (fun (seed, n) ->
      let rngs = Rng.split_n (Rng.create seed) n in
      let prefixes = Array.to_list (Array.map (fun r -> stream_prefix r 4) rngs) in
      List.length (List.sort_uniq compare prefixes) = n)

let test_split_n_matches_sequential =
  QCheck.Test.make ~name:"split_n agrees with n sequential splits" ~count:200
    QCheck.(pair small_int (int_range 0 16))
    (fun (seed, n) ->
      let arr = Rng.split_n (Rng.create seed) n in
      let parent = Rng.create seed in
      let seq = Array.init n (fun _ -> Rng.split parent) in
      Array.for_all2 (fun x y -> stream_prefix x 4 = stream_prefix y 4) arr seq)

let test_split_at_matches_split_n =
  QCheck.Test.make ~name:"split_at i = split_n.(i), parent unadvanced" ~count:200
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, n) ->
      let parent = Rng.create seed in
      let before = stream_prefix (Rng.copy parent) 2 in
      let by_index = Array.init n (fun i -> Rng.split_at parent i) in
      let after = stream_prefix (Rng.copy parent) 2 in
      let arr = Rng.split_n (Rng.copy parent) n in
      before = after
      && Array.for_all2 (fun x y -> stream_prefix x 4 = stream_prefix y 4) by_index arr)

let test_permutation_prop =
  QCheck.Test.make ~name:"permutation is a permutation of 0..n-1" ~count:200
    QCheck.(pair small_int (int_range 0 32))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create seed) n in
      List.sort compare (Array.to_list p) = List.init n (fun i -> i))

let test_sample_distinct () =
  let rng = Rng.create 3 in
  let xs = List.init 20 (fun i -> i) in
  let s = Rng.sample rng xs 8 in
  Alcotest.(check int) "size" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s))

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Ints.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Ints.divisors 1);
  Alcotest.(check (list int)) "divisors 7" [ 1; 7 ] (Ints.divisors 7)

let test_divisors_prop =
  QCheck.Test.make ~name:"divisors divide and are complete" ~count:200
    QCheck.(int_range 1 2000)
    (fun n ->
      let ds = Ints.divisors n in
      List.for_all (fun d -> n mod d = 0) ds
      && List.length ds
         = List.length (List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))))

let test_pow2s () =
  Alcotest.(check (list int)) "pow2 upto 20" [ 1; 2; 4; 8; 16 ] (Ints.pow2s_upto 20)

let test_ceil_div =
  QCheck.Test.make ~name:"ceil_div rounds up" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 1 100))
    (fun (a, b) ->
      let q = Ints.ceil_div a b in
      (q * b >= a) && ((q - 1) * b < a || q = 0))

let test_round_up () =
  Alcotest.(check int) "round_up 13 8" 16 (Ints.round_up 13 8);
  Alcotest.(check int) "round_up 16 8" 16 (Ints.round_up 16 8)

let test_is_pow2 () =
  Alcotest.(check bool) "16" true (Ints.is_pow2 16);
  Alcotest.(check bool) "12" false (Ints.is_pow2 12);
  Alcotest.(check bool) "0" false (Ints.is_pow2 0)

let test_log2_floor () =
  Alcotest.(check int) "log2 1" 0 (Ints.log2_floor 1);
  Alcotest.(check int) "log2 8" 3 (Ints.log2_floor 8);
  Alcotest.(check int) "log2 9" 3 (Ints.log2_floor 9)

let test_hash_stable () =
  Alcotest.(check int64) "fnv stable" (Hashing.fnv1a "heron") (Hashing.fnv1a "heron");
  Alcotest.(check bool) "different inputs differ" true
    (Hashing.fnv1a "a" <> Hashing.fnv1a "b")

let test_hash_ranges () =
  List.iter
    (fun s ->
      let u = Hashing.unit_float s and sv = Hashing.signed_unit s in
      Alcotest.(check bool) "unit in [0,1)" true (u >= 0.0 && u < 1.0);
      Alcotest.(check bool) "signed in [-1,1)" true (sv >= -1.0 && sv < 1.0))
    [ ""; "x"; "heron"; "a-much-longer-key-with-digits-123456" ]

let test_rng_state_hex_roundtrip () =
  let a = Rng.create 987 in
  for _ = 1 to 37 do
    ignore (Rng.bits64 a)
  done;
  let hex = Rng.state_hex a in
  Alcotest.(check int) "16 hex digits" 16 (String.length hex);
  let b = Rng.create 0 in
  (match Rng.set_state_hex b hex with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  for _ = 1 to 50 do
    Alcotest.(check int64) "streams rejoin" (Rng.bits64 a) (Rng.bits64 b)
  done;
  (match Rng.set_state_hex b "nope" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "short state must be rejected");
  match Rng.set_state_hex b "zzzzzzzzzzzzzzzz" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-hex state must be rejected"

let in_temp_dir f =
  let dir = Filename.temp_file "heron_atomic" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_write () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Heron_util.Atomic_io.write_string ~path "first";
      Alcotest.(check string) "content lands" "first" (read_file path);
      Alcotest.(check bool) "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
      (* A failing writer must leave the previous content untouched and
         clean its temp file up. *)
      (match
         Heron_util.Atomic_io.with_file_out ~path (fun oc ->
             output_string oc "torn";
             failwith "mid-write crash")
       with
      | () -> Alcotest.fail "writer must propagate the exception"
      | exception Failure _ -> ());
      Alcotest.(check string) "old content preserved" "first" (read_file path);
      Alcotest.(check bool) "tmp cleaned up" false (Sys.file_exists (path ^ ".tmp")))

(* Replay.to_alcotest derives each property's generator state from one
   campaign seed plus the property name and prints the replay commands on
   failure; QCHECK_SEED overrides the seed. *)
let qtest t = Heron_check.Replay.to_alcotest ~seed:(Heron_check.Replay.seed_from_env ()) t

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng range bounds" `Quick test_rng_range;
    Alcotest.test_case "rng float range" `Quick test_rng_float;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    qtest test_shuffle_permutation;
    qtest test_split_n_deterministic;
    qtest test_split_n_independent;
    qtest test_split_n_matches_sequential;
    qtest test_split_at_matches_split_n;
    qtest test_permutation_prop;
    Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
    Alcotest.test_case "divisors examples" `Quick test_divisors;
    qtest test_divisors_prop;
    Alcotest.test_case "pow2s" `Quick test_pow2s;
    qtest test_ceil_div;
    Alcotest.test_case "round_up" `Quick test_round_up;
    Alcotest.test_case "is_pow2" `Quick test_is_pow2;
    Alcotest.test_case "log2_floor" `Quick test_log2_floor;
    Alcotest.test_case "hash stability" `Quick test_hash_stable;
    Alcotest.test_case "hash ranges" `Quick test_hash_ranges;
    Alcotest.test_case "rng state hex roundtrip" `Quick test_rng_state_hex_roundtrip;
    Alcotest.test_case "atomic write" `Quick test_atomic_write;
  ]
