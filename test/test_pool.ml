(* Tests for the domain pool: correctness of the parallel combinators
   (results by index), exception propagation, nested maps, degenerate
   inputs, and the graceful-shutdown/inline fallback behavior. *)

module Pool = Heron_util.Pool

let with_pool domains f = Pool.with_pool ~domains f

let test_map_matches_sequential () =
  with_pool 4 (fun pool ->
      let xs = Array.init 1000 (fun i -> i) in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "parallel = sequential" (Array.map f xs)
        (Pool.parallel_map pool f xs))

let test_init_matches_sequential () =
  with_pool 3 (fun pool ->
      let f i = Printf.sprintf "item-%d" (i * 7) in
      Alcotest.(check (array string))
        "parallel_init = Array.init" (Array.init 257 f)
        (Pool.parallel_init pool 257 f))

let test_empty_inputs () =
  with_pool 4 (fun pool ->
      Alcotest.(check (array int)) "empty map" [||] (Pool.parallel_map pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "empty init" [||] (Pool.parallel_init pool 0 (fun i -> i));
      Alcotest.(check (list int)) "empty map_list" [] (Pool.map_list ~pool (fun x -> x) []))

let test_single_element () =
  with_pool 4 (fun pool ->
      Alcotest.(check (array int)) "one element" [| 42 |]
        (Pool.parallel_map pool (fun x -> x + 1) [| 41 |]))

exception Boom of int

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      match Pool.parallel_map pool (fun i -> if i >= 100 then raise (Boom i) else i)
              (Array.init 400 (fun i -> i))
      with
      | _ -> Alcotest.fail "must raise"
      | exception Boom i ->
          (* The exception of the lowest-indexed failing element wins,
             whatever the completion order of the chunks. *)
          Alcotest.(check int) "lowest failing index" 100 i)

let test_pool_survives_exception () =
  with_pool 4 (fun pool ->
      (try ignore (Pool.parallel_map pool (fun _ -> raise Exit) [| 1; 2; 3 |])
       with Exit -> ());
      Alcotest.(check (array int)) "pool still works" [| 2; 4; 6 |]
        (Pool.parallel_map pool (fun x -> 2 * x) [| 1; 2; 3 |]))

let test_nested_maps () =
  (* A worker blocking on an inner batch must keep executing chunks itself
     rather than deadlocking the pool. *)
  with_pool 4 (fun pool ->
      let outer =
        Pool.parallel_init pool 8 (fun i ->
            Array.fold_left ( + ) 0
              (Pool.parallel_init pool 50 (fun j -> (i * 1000) + j)))
      in
      let expect = Array.init 8 (fun i -> (50 * 1000 * i) + (50 * 49 / 2)) in
      Alcotest.(check (array int)) "nested sums" expect outer)

let test_pool_of_one_runs_inline () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      let seen = ref [] in
      ignore (Pool.parallel_map pool (fun i -> seen := i :: !seen; i) (Array.init 5 (fun i -> i)));
      (* Inline execution is strictly in index order. *)
      Alcotest.(check (list int)) "index order" [ 4; 3; 2; 1; 0 ] !seen)

let test_shutdown_idempotent_and_inline_after () =
  let pool = Pool.create ~domains:4 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (array int)) "inline after shutdown" [| 1; 2; 3 |]
    (Pool.parallel_map pool (fun x -> x + 1) [| 0; 1; 2 |])

let test_default_pool_resolution () =
  Alcotest.(check bool) "no default" true (Pool.resolve None = None);
  with_pool 2 (fun pool ->
      Pool.set_default (Some pool);
      Fun.protect
        ~finally:(fun () -> Pool.set_default None)
        (fun () ->
          (match Pool.resolve None with
          | Some p -> Alcotest.(check int) "resolves default" 2 (Pool.jobs p)
          | None -> Alcotest.fail "default pool must resolve");
          with_pool 3 (fun other ->
              match Pool.resolve (Some other) with
              | Some p -> Alcotest.(check int) "explicit wins" 3 (Pool.jobs p)
              | None -> Alcotest.fail "explicit pool must resolve")))

(* Property: under randomized task sets (random size, random failing
   subset, random per-task delays to scramble completion order), the
   re-raised exception is always the one from the lowest-indexed failing
   element, and fault-free runs equal Array.map. Shared pool across cases:
   spawning domains per case would dominate the test. *)
let test_exception_ordering_randomized pool =
  QCheck.Test.make ~name:"parallel_map raises the lowest-indexed failure" ~count:60
    QCheck.(
      pair (int_range 1 120)
        (pair (list_of_size (Gen.int_range 0 8) (int_range 0 119)) small_int))
    (fun (n, (failures, seed)) ->
      let failing = List.sort_uniq compare (List.filter (fun i -> i < n) failures) in
      let delay i =
        (* Deterministic, index-dependent busy work so chunks finish out of
           submission order. *)
        let spin = (i * 7919 * (seed + 1)) mod 257 in
        ignore (Sys.opaque_identity (Array.init spin (fun j -> j * j)))
      in
      let f i =
        delay i;
        if List.mem i failing then raise (Boom i) else i * 2
      in
      match Pool.parallel_map pool f (Array.init n (fun i -> i)) with
      | out -> failing = [] && out = Array.init n (fun i -> i * 2)
      | exception Boom i -> failing <> [] && i = List.hd failing)

let test_map_list_order () =
  with_pool 4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * 3) xs)
        (Pool.map_list ~pool (fun x -> x * 3) xs))

(* Tasks that crash via the deterministic fault injector: whatever the
   pool size, the propagated exception is the one from the lowest-index
   faulting task — the Pool failure contract under a realistic fault
   workload. *)
exception Task_fault of int

let fault_spec = { Heron_dla.Faults.zero with Heron_dla.Faults.seed = 5; crash_rate = 0.06 }

let faulting_task i =
  match Heron_dla.Faults.decide fault_spec ~key:(string_of_int i) ~attempt:0 with
  | Heron_dla.Faults.Crash -> raise (Task_fault i)
  | _ -> (2 * i) + 1

let test_faulting_tasks_deterministic () =
  let n = 300 in
  let expected =
    (* the lowest index the injector crashes, found sequentially *)
    let rec first i =
      if i >= n then None
      else match faulting_task i with _ -> first (i + 1) | exception Task_fault j -> Some j
    in
    first 0
  in
  Alcotest.(check bool) "workload does fault" true (expected <> None);
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          match Pool.parallel_map pool faulting_task (Array.init n (fun i -> i)) with
          | _ -> Alcotest.fail "faulting workload must raise"
          | exception Task_fault i ->
              Alcotest.(check (option int))
                (Printf.sprintf "lowest faulting index at %d domains" domains)
                expected (Some i)))
    [ 1; 2; 4; 8 ]

(* A fault-free (noise-only) workload: every pool size returns every
   result exactly once, by index — nothing lost, nothing duplicated. *)
let test_no_lost_or_duplicated_results () =
  let n = 500 in
  let noisy = { Heron_dla.Faults.zero with Heron_dla.Faults.seed = 9; noise = 0.3 } in
  let task i =
    match Heron_dla.Faults.decide noisy ~key:(string_of_int i) ~attempt:0 with
    | Heron_dla.Faults.Noise f -> float_of_int i *. f
    | _ -> Alcotest.fail "noise-only spec must never fault"
  in
  let expected = Array.init n task in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "results at %d domains" domains)
            expected
            (Pool.parallel_map pool task (Array.init n (fun i -> i)))))
    [ 1; 2; 4; 8 ]

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "init matches sequential" `Quick test_init_matches_sequential;
    Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
    Alcotest.test_case "single element" `Quick test_single_element;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "pool survives exception" `Quick test_pool_survives_exception;
    Alcotest.test_case "nested maps" `Quick test_nested_maps;
    Alcotest.test_case "pool of one inline" `Quick test_pool_of_one_runs_inline;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_and_inline_after;
    Alcotest.test_case "default pool resolution" `Quick test_default_pool_resolution;
    Alcotest.test_case "map_list order" `Quick test_map_list_order;
    Alcotest.test_case "faulting tasks: deterministic propagation" `Quick
      test_faulting_tasks_deterministic;
    Alcotest.test_case "faulting tasks: no lost or duplicated results" `Quick
      test_no_lost_or_duplicated_results;
    Alcotest.test_case "exception ordering (randomized)" `Quick (fun () ->
        with_pool 4 (fun pool ->
            Heron_check.Replay.run_test
              ~seed:(Heron_check.Replay.seed_from_env ())
              (test_exception_ordering_randomized pool)));
  ]
