(* Tests for the search algorithms, centered on the paper's core claims:
   constraint-based crossover/mutation always yields valid offspring, and
   CGA optimizes constrained problems (checked end-to-end on the paper's
   Figure 5 toy problem). *)

module Domain = Heron_csp.Domain
module Cons = Heron_csp.Cons
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Cga_ref = Heron_search.Cga_ref
module Baselines = Heron_search.Baselines
module Rng = Heron_util.Rng

(* The paper's Figure 5 problem: maximize 0.4x + 0.6y + 0.01z subject to
   x*y <= 8, x,y in 1..5, z in {0,1}. Optimum: x=2, y=4 (or x=1,y=5
   scoring 0.8+... compare: x2y4 = 0.8+2.4 = 3.2; x1y5 = 0.4+3.0 = 3.4;
   wait x*y<=8 admits (1,5): 5<=8 -> 3.4 + z. So best is x=1,y=5,z=1. *)
let fig5_problem () =
  let b = Problem.builder () in
  Problem.add_var b "x" (Domain.of_list [ 1; 2; 3; 4; 5 ]);
  Problem.add_var b "y" (Domain.of_list [ 1; 2; 3; 4; 5 ]);
  Problem.add_var b "z" (Domain.of_list [ 0; 1 ]);
  Problem.add_var b "xy" (Domain.of_list (List.init 8 (fun i -> i + 1)));
  Problem.add_cons b (Cons.Prod ("xy", [ "x"; "y" ]));
  Problem.freeze b

let fig5_objective a =
  (0.4 *. float_of_int (Assignment.get a "x"))
  +. (0.6 *. float_of_int (Assignment.get a "y"))
  +. (0.01 *. float_of_int (Assignment.get a "z"))

(* Wrap the objective as a latency so that maximizing fitness = maximizing
   the objective. *)
let fig5_env seed =
  let p = fig5_problem () in
  {
    Env.problem = p;
    measure =
      (fun a ->
        if Problem.check p a = Ok () then Some (1000.0 /. fig5_objective a) else None);
    rng = Rng.create seed;
  }

let test_fig5_optimum_known () =
  let p = fig5_problem () in
  let sols = Solver.enumerate p in
  let best = List.fold_left (fun acc a -> max acc (fig5_objective a)) 0.0 sols in
  Alcotest.(check (float 1e-9)) "optimum" 3.41 best

let test_cga_finds_fig5_optimum () =
  let outcome = Cga.run (fig5_env 1) ~budget:60 in
  match outcome.Cga.result.Env.best_assignment with
  | None -> Alcotest.fail "must find something"
  | Some a -> Alcotest.(check (float 0.02)) "optimal" 3.41 (fig5_objective a)

let test_crossover_offspring_valid () =
  (* Offspring of constraint-based crossover always satisfy CSP_initial. *)
  let p = fig5_problem () in
  let rng = Rng.create 5 in
  let parents = Array.of_list (Solver.rand_sat rng p 6) in
  let csps = Cga.crossover_csps rng p ~keys:[ "x"; "y" ] ~parents ~n:40 in
  let offspring = List.filter_map (fun csp -> Solver.solve rng csp) csps in
  Alcotest.(check bool) "some offspring" true (List.length offspring > 10);
  List.iter
    (fun a -> Alcotest.(check bool) "valid" true (Problem.check p a = Ok ()))
    offspring

let test_crossover_inherits_keys () =
  (* Without mutation, every kept key variable takes a parental value. *)
  let p = fig5_problem () in
  let rng = Rng.create 6 in
  let pa = Assignment.of_list [ ("x", 1); ("y", 5); ("z", 0); ("xy", 5) ] in
  let pb = Assignment.of_list [ ("x", 2); ("y", 4); ("z", 1); ("xy", 8) ] in
  let csps = Cga.crossover_csps ~mutation:false rng p ~keys:[ "x"; "y" ] ~parents:[| pa; pb |] ~n:30 in
  List.iter
    (fun csp ->
      match Solver.solve rng csp with
      | None -> ()
      | Some child ->
          Alcotest.(check bool) "x from a parent" true
            (List.mem (Assignment.get child "x") [ 1; 2 ]);
          Alcotest.(check bool) "y from a parent" true
            (List.mem (Assignment.get child "y") [ 4; 5 ]))
    csps

let test_crossover_mutation_drops_one () =
  let p = fig5_problem () in
  let rng = Rng.create 7 in
  let parents = Array.of_list (Solver.rand_sat rng p 4) in
  let with_m = Cga.crossover_csps ~mutation:true rng p ~keys:[ "x"; "y"; "z" ] ~parents ~n:10 in
  let without = Cga.crossover_csps ~mutation:false rng p ~keys:[ "x"; "y"; "z" ] ~parents ~n:10 in
  List.iter
    (fun csp -> Alcotest.(check int) "2 extra constraints" (Problem.n_cons p + 2) (Problem.n_cons csp))
    with_m;
  List.iter
    (fun csp -> Alcotest.(check int) "3 extra constraints" (Problem.n_cons p + 3) (Problem.n_cons csp))
    without

let test_recorder_budget_and_cache () =
  let env = fig5_env 2 in
  let r = Env.Recorder.create env ~budget:5 in
  let a = Assignment.of_list [ ("x", 1); ("y", 5); ("z", 1); ("xy", 5) ] in
  let first = Env.Recorder.eval r a in
  Alcotest.(check bool) "measured" true (first <> None);
  (* Replays do not consume budget. *)
  for _ = 1 to 10 do
    ignore (Env.Recorder.eval r a)
  done;
  Alcotest.(check int) "only one step" 4 (Env.Recorder.steps_left r);
  Alcotest.(check bool) "seen" true (Env.Recorder.seen r a);
  let result = Env.Recorder.finish r in
  Alcotest.(check int) "trace length" 1 (List.length result.Env.trace)

let test_recorder_tracks_best () =
  let env = fig5_env 3 in
  let r = Env.Recorder.create env ~budget:10 in
  let a1 = Assignment.of_list [ ("x", 1); ("y", 1); ("z", 0); ("xy", 1) ] in
  let a2 = Assignment.of_list [ ("x", 1); ("y", 5); ("z", 1); ("xy", 5) ] in
  ignore (Env.Recorder.eval r a1);
  ignore (Env.Recorder.eval r a2);
  let res = Env.Recorder.finish r in
  (match res.Env.best_assignment with
  | Some b -> Alcotest.(check bool) "best is a2" true (Assignment.equal b a2)
  | None -> Alcotest.fail "has best");
  Alcotest.(check int) "no invalid" 0 res.Env.invalid

let test_recorder_counts_invalid () =
  let env = fig5_env 4 in
  let r = Env.Recorder.create env ~budget:10 in
  let bad = Assignment.of_list [ ("x", 5); ("y", 5); ("z", 0); ("xy", 8) ] in
  Alcotest.(check bool) "invalid measure" true (Env.Recorder.eval r bad = None);
  Alcotest.(check int) "counted" 1 (Env.Recorder.finish r).Env.invalid

let searcher_finds_good name search =
  Alcotest.test_case (name ^ " reaches a good fig5 solution") `Quick (fun () ->
      let result = search (fig5_env 11) in
      match result.Env.best_latency with
      | None -> Alcotest.failf "%s found nothing" name
      | Some l ->
          let obj = 1000.0 /. l in
          Alcotest.(check bool) (name ^ " close to optimum") true (obj >= 2.8))

let test_trace_monotone () =
  let result = Baselines.random_search (fig5_env 12) ~budget:40 in
  let rec check prev = function
    | [] -> ()
    | (p : Env.point) :: rest ->
        (match (prev, p.Env.best) with
        | Some a, Some b -> Alcotest.(check bool) "best non-increasing" true (b <= a)
        | _ -> ());
        check p.Env.best rest
  in
  check None result.Env.trace

let test_ga_sat_decoder_all_valid () =
  let env = fig5_env 13 in
  let result = Baselines.ga_sat_decoder env ~budget:60 in
  Alcotest.(check int) "decoder yields only valid programs" 0 result.Env.invalid

let test_ga_variants_run () =
  List.iter
    (fun (name, search) ->
      let result = search (fig5_env 14) ~budget:40 in
      Alcotest.(check bool) (name ^ " measured something") true
        (List.length result.Env.trace > 0))
    [
      ("GA-1", Baselines.ga_stochastic_ranking ?params:None ?pf:None);
      ("GA-3", Baselines.ga_multi_objective ?params:None);
      ("SA", fun env ~budget -> Baselines.simulated_annealing env ~budget);
    ]

let test_ga_terminates_on_tiny_space () =
  (* Regression: once the whole (tiny) space is measured, converged GA
     populations only produce cached replays; the recorder's secondary
     evaluation cap must still terminate the loop. *)
  let result = Baselines.genetic (fig5_env 31) ~budget:200 in
  Alcotest.(check bool) "terminated with a best" true (result.Env.best_latency <> None);
  Alcotest.(check bool) "within budget" true (List.length result.Env.trace <= 200)

let test_sa_terminates_on_tiny_space () =
  let result = Baselines.simulated_annealing (fig5_env 32) ~budget:200 in
  Alcotest.(check bool) "terminated" true (List.length result.Env.trace <= 200)

let test_cga_deterministic_given_seed () =
  let run () =
    let o = Cga.run (fig5_env 21) ~budget:40 in
    o.Cga.result.Env.best_latency
  in
  Alcotest.(check bool) "same result" true (run () = run ())

(* The multicore determinism contract: a fixed seed yields byte-identical
   results — best latency, full trace and invalid count — whatever the
   domain-pool size, including no pool at all. *)
let test_cga_trace_identical_across_jobs () =
  let run pool =
    let o = Cga.run ?pool (fig5_env 21) ~budget:40 in
    ( o.Cga.result.Env.best_latency,
      o.Cga.result.Env.trace,
      o.Cga.result.Env.invalid )
  in
  let sequential = run None in
  Heron_util.Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check bool) "jobs=1 identical" true (run (Some p) = sequential));
  Heron_util.Pool.with_pool ~domains:4 (fun p ->
      Alcotest.(check bool) "jobs=4 identical" true (run (Some p) = sequential))

(* eval_batch must be observably identical to evaluating the batch one
   call at a time: same returns, trace, best, budget accounting — across
   cache replays, within-batch duplicates, invalid programs and budget
   exhaustion mid-batch. *)
let test_eval_batch_matches_sequential_eval () =
  let assignment x y z = Assignment.of_list [ ("x", x); ("y", y); ("z", z); ("xy", x * y) ] in
  let batch =
    [
      assignment 1 5 1;
      assignment 2 4 0;
      assignment 1 5 1 (* within-batch duplicate: replay, no budget *);
      assignment 5 5 0 (* invalid: x*y = 25 violates xy <= 8 *);
      assignment 1 3 0;
      assignment 2 3 1;
      assignment 1 4 0 (* budget (5) exhausted from here on *);
      assignment 2 2 1;
    ]
  in
  let run_with eval_list =
    let r = Env.Recorder.create (fig5_env 17) ~budget:5 in
    ignore (Env.Recorder.eval r (assignment 1 1 0));  (* pre-batch cache entry *)
    let pre_cached = Env.Recorder.eval r (assignment 1 1 0) in
    let out = eval_list r batch in
    (pre_cached, out, Env.Recorder.steps_left r, Env.Recorder.finish r)
  in
  let sequential = run_with (fun r b -> List.map (Env.Recorder.eval r) b) in
  let singletons =
    run_with (fun r b -> List.concat_map (fun a -> Env.Recorder.eval_batch r [ a ]) b)
  in
  let batched = run_with (fun r b -> Env.Recorder.eval_batch r b) in
  Alcotest.(check bool) "singleton batches = sequential" true (singletons = sequential);
  Alcotest.(check bool) "one batch = sequential" true (batched = sequential);
  Heron_util.Pool.with_pool ~domains:4 (fun pool ->
      let pooled = run_with (fun r b -> Env.Recorder.eval_batch ~pool r b) in
      Alcotest.(check bool) "pooled = sequential" true (pooled = sequential))

module Resilience = Heron_search.Resilience
module Checkpoint = Heron_search.Checkpoint

(* Drive one retry session from a scripted list of attempt outcomes. *)
let scripted outcomes ~attempt =
  if attempt < List.length outcomes then List.nth outcomes attempt
  else Alcotest.failf "unexpected attempt %d" attempt

let test_resilience_verdicts () =
  let p = Resilience.default_policy in
  (match Resilience.run p (scripted [ Resilience.Measured 5.0 ]) with
  | Resilience.Ok_measured { latency; tally } ->
      Alcotest.(check (float 0.0)) "clean latency" 5.0 latency;
      Alcotest.(check int) "no retries" 0 tally.Resilience.retries
  | _ -> Alcotest.fail "clean measurement must be Ok_measured");
  (match Resilience.run p (scripted [ Resilience.Invalid ]) with
  | Resilience.Invalid_config { tally } ->
      Alcotest.(check int) "invalid never retries" 0 tally.Resilience.retries
  | _ -> Alcotest.fail "validator rejection must be Invalid_config");
  (match
     Resilience.run p
       (scripted [ Resilience.Fault Resilience.Timeout; Resilience.Measured 7.0 ])
   with
  | Resilience.Ok_measured { latency; tally } ->
      Alcotest.(check (float 0.0)) "retried latency" 7.0 latency;
      Alcotest.(check int) "one retry" 1 tally.Resilience.retries;
      Alcotest.(check int) "one timeout" 1 tally.Resilience.timeouts
  | _ -> Alcotest.fail "transient fault then success must be Ok_measured");
  (match
     Resilience.run p
       (scripted (List.init (p.Resilience.max_retries + 1) (fun _ -> Resilience.Fault Resilience.Crash)))
   with
  | Resilience.Quarantined { tally } ->
      Alcotest.(check int) "all attempts crashed" (p.Resilience.max_retries + 1)
        tally.Resilience.crashes;
      Alcotest.(check int) "all retries used" p.Resilience.max_retries tally.Resilience.retries
  | _ -> Alcotest.fail "exhausted retries must be Quarantined");
  match Resilience.run p (scripted [ Resilience.Fault Resilience.Hang ]) with
  | Resilience.Degraded { tally } ->
      Alcotest.(check int) "one hang" 1 tally.Resilience.hangs;
      Alcotest.(check (float 0.0)) "hang consumed the deadline" p.Resilience.deadline_us
        tally.Resilience.sim_us
  | _ -> Alcotest.fail "a hang with retries left must be Degraded"

(* A snapshot written by a real (small) CGA run survives the JSON
   round-trip exactly: same label, loop state, recorder export, survivors
   and model samples. *)
let test_checkpoint_roundtrip () =
  let env = fig5_env 5 in
  let snapshots = ref [] in
  let _ =
    Cga.run
      ~params:Cga.{ default_params with pop_size = 8; generations = 2; batch = 4 }
      ~on_snapshot:(fun s -> snapshots := s :: !snapshots)
      env ~budget:16
  in
  Alcotest.(check bool) "snapshots written" true (!snapshots <> []);
  let snap = List.hd !snapshots in
  let path = Filename.temp_file "heron_ck" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save ~path ~label:"test-run" snap;
      match Checkpoint.load ~path with
      | Error e -> Alcotest.fail e
      | Ok (label, back) ->
          Alcotest.(check string) "label" "test-run" label;
          Alcotest.(check int) "iter" snap.Cga.s_iter back.Cga.s_iter;
          Alcotest.(check int) "dry" snap.Cga.s_dry back.Cga.s_dry;
          Alcotest.(check bool) "stopped" snap.Cga.s_stopped back.Cga.s_stopped;
          Alcotest.(check string) "rng" snap.Cga.s_rng_hex back.Cga.s_rng_hex;
          let r0 = snap.Cga.s_recorder and r1 = back.Cga.s_recorder in
          Alcotest.(check int) "steps" r0.Env.Recorder.x_steps r1.Env.Recorder.x_steps;
          Alcotest.(check bool) "trace identical" true
            (r0.Env.Recorder.x_trace = r1.Env.Recorder.x_trace);
          Alcotest.(check bool) "cache identical" true
            (r0.Env.Recorder.x_cache = r1.Env.Recorder.x_cache);
          Alcotest.(check bool) "best latency identical" true
            (r0.Env.Recorder.x_best = r1.Env.Recorder.x_best);
          Alcotest.(check (option string)) "best assignment identical"
            (Option.map Assignment.key r0.Env.Recorder.x_best_a)
            (Option.map Assignment.key r1.Env.Recorder.x_best_a);
          Alcotest.(check bool) "survivors identical" true
            (List.map (fun (a, l) -> (Assignment.key a, l)) snap.Cga.s_survivors
            = List.map (fun (a, l) -> (Assignment.key a, l)) back.Cga.s_survivors);
          Alcotest.(check bool) "model samples identical" true
            (snap.Cga.s_model = back.Cga.s_model))

(* A snapshot from a different task must be rejected before anything is
   restored: its model rows would corrupt the feature ring and its carried
   assignments would not satisfy this problem. Tamper with a genuine
   snapshot in each of the ways a foreign one would differ. *)
let test_resume_rejects_foreign_snapshot () =
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  let snapshots = ref [] in
  let _ =
    Cga.run
      ~params:Cga.{ default_params with pop_size = 8; generations = 2; batch = 4 }
      ~on_snapshot:(fun s -> snapshots := s :: !snapshots)
      (fig5_env 7) ~budget:16
  in
  Alcotest.(check bool) "snapshots written" true (!snapshots <> []);
  let snap = List.hd !snapshots in
  let expect_reject ~needle snap' =
    match Cga.run ~resume:snap' (fig5_env 7) ~budget:8 with
    | _ -> Alcotest.failf "tampered snapshot accepted (wanted %S)" needle
    | exception Invalid_argument e ->
        if not (contains e needle) then
          Alcotest.failf "diagnostic %S does not mention %S" e needle
  in
  (* Model row wider than this task's feature layout. *)
  expect_reject ~needle:"feature layout mismatch"
    { snap with Cga.s_model = [ (Array.make 64 0, 1.0) ] };
  (* Survivor binding the wrong number of variables. *)
  expect_reject ~needle:"binds"
    { snap with Cga.s_survivors = [ (Assignment.of_list [ ("x", 1) ], 10.0) ] };
  (* Survivor binding a variable this problem does not have. *)
  expect_reject ~needle:"unknown variable"
    {
      snap with
      Cga.s_survivors =
        [ (Assignment.of_list [ ("x", 1); ("y", 1); ("q", 1); ("xy", 1) ], 10.0) ];
    };
  (* Recorder best assignment with a value outside this task's domain. *)
  expect_reject ~needle:"outside this task's domain"
    {
      snap with
      Cga.s_survivors = [];
      s_model = [];
      s_recorder =
        {
          snap.Cga.s_recorder with
          Env.Recorder.x_best_a =
            Some (Assignment.of_list [ ("x", 99); ("y", 1); ("z", 0); ("xy", 1) ]);
        };
    };
  (* The untampered snapshot itself still resumes fine. *)
  ignore (Cga.run ~resume:snap (fig5_env 7) ~budget:16)

let test_checkpoint_diagnostics () =
  let expect_error ~needle content =
    let path = Filename.temp_file "heron_ck_bad" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc -> output_string oc content);
        match Checkpoint.load ~path with
        | Ok _ -> Alcotest.failf "must reject %S" content
        | Error e ->
            let contains =
              let nl = String.length needle and el = String.length e in
              let rec at i = i + nl <= el && (String.sub e i nl = needle || at (i + 1)) in
              at 0
            in
            if not contains then Alcotest.failf "diagnostic %S does not mention %S" e needle)
  in
  expect_error ~needle:"invalid JSON" "{ truncated";
  expect_error ~needle:"heron_checkpoint" "{\"foo\": 1}";
  expect_error ~needle:"unsupported version" "{\"heron_checkpoint\": 999}";
  expect_error ~needle:"missing field \"rng\""
    "{\"heron_checkpoint\": 1, \"label\": \"x\", \"iter\": 0, \"dry\": 0, \"stopped\": false}"

(* Allocation regression pins for the exploration loop. Two claims:

   (1) Steady-state per-iteration minor-heap churn is amortized O(1):
   the flat engine keeps population ids, scores, ranking order and
   feature rows in arrays reused across iterations, so once those reach
   their high-water mark a late iteration allocates what an early one
   does — growth of the recorder's seen/cache state or the training
   window must not leak into per-iteration allocation.

   (2) The interned engine allocates strictly less than the frozen
   string-keyed loop on identical work (same seed, draw-for-draw
   identical trajectory): no per-candidate key strings, no per-
   generation scored lists, no per-ranking re-binning. Both runs are
   deterministic, so the minor-word totals are exact, not noisy. *)
let test_cga_iteration_allocation_constant () =
  (* Unconstrained 6-var space (~260k points): candidates stay plentiful
     for the whole run, so every iteration does full-size work. *)
  let wide_problem () =
    let b = Problem.builder () in
    List.iter
      (fun v -> Problem.add_var b v (Domain.of_list (List.init 8 (fun i -> i + 1))))
      [ "a"; "b"; "c"; "d"; "e"; "f" ];
    Problem.freeze b
  in
  let p = wide_problem () in
  let make_env () =
    {
      Env.problem = p;
      measure =
        (fun a ->
          let s = Assignment.fold (fun v x acc -> acc + (x * String.length v)) a 17 in
          Some (1.0 +. float_of_int (s land 0xFF)));
      rng = Rng.create 42;
    }
  in
  let params =
    {
      Cga.default_params with
      Cga.pop_size = 64;
      generations = 3;
      batch = 4;
      top_k = 3;
      survivors = 8;
    }
  in
  let words = ref [] in
  let on_snapshot _ = words := Gc.minor_words () :: !words in
  let w0 = Gc.minor_words () in
  ignore (Cga.run ~params ~on_snapshot (make_env ()) ~budget:60);
  let live_total = Gc.minor_words () -. w0 in
  let ws = Array.of_list (List.rev !words) in
  let n = Array.length ws in
  Alcotest.(check bool) "enough iterations" true (n >= 12);
  let delta i = ws.(i + 1) -. ws.(i) in
  let avg lo hi =
    let acc = ref 0.0 in
    for i = lo to hi - 1 do
      acc := !acc +. delta i
    done;
    !acc /. float_of_int (hi - lo)
  in
  (* Skip iteration 0 (scratch arrays grow to their high-water mark). *)
  let early = avg 1 4 and late = avg (n - 4) (n - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "O(1) iteration churn (early %.0f vs late %.0f words)" early late)
    true
    (late < early *. 1.3);
  let w1 = Gc.minor_words () in
  ignore (Cga_ref.run ~params (make_env ()) ~budget:60);
  let ref_total = Gc.minor_words () -. w1 in
  Alcotest.(check bool)
    (Printf.sprintf "allocates under 0.9x the frozen loop (live %.0f vs ref %.0f words)"
       live_total ref_total)
    true
    (live_total < ref_total *. 0.9)

let suite =
  [
    Alcotest.test_case "fig5 optimum" `Quick test_fig5_optimum_known;
    Alcotest.test_case "CGA finds fig5 optimum" `Quick test_cga_finds_fig5_optimum;
    Alcotest.test_case "offspring always valid" `Quick test_crossover_offspring_valid;
    Alcotest.test_case "crossover inherits key genes" `Quick test_crossover_inherits_keys;
    Alcotest.test_case "mutation drops one constraint" `Quick test_crossover_mutation_drops_one;
    Alcotest.test_case "recorder budget/cache" `Quick test_recorder_budget_and_cache;
    Alcotest.test_case "recorder best tracking" `Quick test_recorder_tracks_best;
    Alcotest.test_case "recorder invalid count" `Quick test_recorder_counts_invalid;
    searcher_finds_good "RAND" (fun env -> Baselines.random_search env ~budget:50);
    searcher_finds_good "CGA" (fun env -> (Cga.run env ~budget:50).Cga.result);
    Alcotest.test_case "trace best monotone" `Quick test_trace_monotone;
    Alcotest.test_case "SAT-decoder always valid" `Quick test_ga_sat_decoder_all_valid;
    Alcotest.test_case "GA variants run" `Quick test_ga_variants_run;
    Alcotest.test_case "GA terminates on tiny space" `Quick test_ga_terminates_on_tiny_space;
    Alcotest.test_case "SA terminates on tiny space" `Quick test_sa_terminates_on_tiny_space;
    Alcotest.test_case "CGA deterministic" `Quick test_cga_deterministic_given_seed;
    Alcotest.test_case "CGA trace identical across jobs" `Quick
      test_cga_trace_identical_across_jobs;
    Alcotest.test_case "eval_batch = sequential eval" `Quick
      test_eval_batch_matches_sequential_eval;
    Alcotest.test_case "resilience verdicts" `Quick test_resilience_verdicts;
    Alcotest.test_case "checkpoint JSON roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "resume rejects foreign snapshots" `Quick
      test_resume_rejects_foreign_snapshot;
    Alcotest.test_case "checkpoint diagnostics" `Quick test_checkpoint_diagnostics;
    Alcotest.test_case "O(1) iteration allocation" `Quick
      test_cga_iteration_allocation_constant;
  ]
