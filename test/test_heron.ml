(* Test driver: one alcotest binary aggregating every module's suite.

   Environment knobs (so suites can be skipped or focused without editing
   this file or learning alcotest's CLI):

     HERON_TEST_ONLY=csp,check   run only the named suites
     HERON_TEST_SKIP=check,dla   drop the named suites
     ALCOTEST_QUICK=1            pass -q: skip `Slow cases (the heavyweight
                                 property groups register as `Slow)
     QCHECK_SEED=<n>             campaign seed for every property test
     HERON_CHECK_BUDGET=<n>      cases per differential property

   Alcotest's own flags and test-name filters still work and compose. *)

let suites =
  [
    ("util", Test_util.suite);
    ("obs", Test_obs.suite);
    ("pool", Test_pool.suite);
    ("tensor", Test_tensor.suite);
    ("csp", Test_csp.suite);
    ("sched", Test_sched.suite);
    ("dla", Test_dla.suite);
    ("costmodel", Test_cost.suite);
    ("search", Test_search.suite);
    ("core", Test_core.suite);
    ("baselines", Test_baselines.suite);
    ("extensions", Test_extensions.suite);
    ("experiments", Test_experiments.suite);
    ("check", Test_check.suite);
    ("serve", Test_serve.suite);
    ("nets", Test_nets.suite);
  ]

let names_of env =
  match Sys.getenv_opt env with
  | None | Some "" -> None
  | Some s ->
      Some
        (String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> ""))

let enabled =
  let keep =
    match (names_of "HERON_TEST_ONLY", names_of "HERON_TEST_SKIP") with
    | Some only, _ -> fun name -> List.mem name only
    | None, Some skip -> fun name -> not (List.mem name skip)
    | None, None -> fun _ -> true
  in
  let chosen = List.filter (fun (name, _) -> keep name) suites in
  (match names_of "HERON_TEST_ONLY" with
  | Some only ->
      List.iter
        (fun name ->
          if not (List.mem_assoc name suites) then
            Printf.eprintf "test_heron: HERON_TEST_ONLY names unknown suite %S\n%!" name)
        only
  | None -> ());
  if chosen = [] then failwith "test_heron: suite selection left nothing to run";
  chosen

let truthy = function Some ("" | "0" | "false") | None -> false | Some _ -> true

let argv =
  (* ALCOTEST_QUICK drops `Slow cases exactly like passing -q by hand. *)
  if truthy (Sys.getenv_opt "ALCOTEST_QUICK") then Array.append Sys.argv [| "-q" |]
  else Sys.argv

let () = Alcotest.run ~argv "heron" enabled
