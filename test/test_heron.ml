(* Test driver: one alcotest binary aggregating every module's suite. *)

let () =
  Alcotest.run "heron"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("tensor", Test_tensor.suite);
      ("csp", Test_csp.suite);
      ("sched", Test_sched.suite);
      ("dla", Test_dla.suite);
      ("costmodel", Test_cost.suite);
      ("search", Test_search.suite);
      ("core", Test_core.suite);
      ("baselines", Test_baselines.suite);
      ("extensions", Test_extensions.suite);
      ("experiments", Test_experiments.suite);
    ]
