(* Tests for the CSP substrate: domains, constraint semantics, propagation
   strength and the randomized solver, including exhaustiveness checks
   against brute-force enumeration on small problems. *)

module Domain = Heron_csp.Domain
module Cons = Heron_csp.Cons
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Rng = Heron_util.Rng

let dl = Domain.of_list

let test_domain_basics () =
  let d = dl [ 3; 1; 2; 3; 1 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 2; 3 ] (Domain.to_list d);
  Alcotest.(check int) "min" 1 (Domain.min_value d);
  Alcotest.(check int) "max" 3 (Domain.max_value d);
  Alcotest.(check bool) "mem" true (Domain.mem 2 d);
  Alcotest.(check bool) "not mem" false (Domain.mem 5 d);
  Alcotest.(check (option int)) "not singleton" None (Domain.value d);
  Alcotest.(check (option int)) "singleton" (Some 7) (Domain.value (Domain.singleton 7))

let test_domain_set_ops =
  QCheck.Test.make ~name:"inter/union are set ops" ~count:200
    QCheck.(pair (list (int_range 0 30)) (list (int_range 0 30)))
    (fun (a, b) ->
      let da = dl a and db = dl b in
      let inter = Domain.to_list (Domain.inter da db) in
      let union = Domain.to_list (Domain.union da db) in
      let sa = List.sort_uniq compare a and sb = List.sort_uniq compare b in
      inter = List.filter (fun x -> List.mem x sb) sa
      && union = List.sort_uniq compare (sa @ sb))

let test_domain_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Domain.to_list (Domain.range 2 4));
  Alcotest.(check bool) "empty range" true (Domain.is_empty (Domain.range 4 2))

let test_domain_random () =
  let rng = Rng.create 1 in
  let d = dl [ 5; 9; 11 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "random member" true (Domain.mem (Domain.random rng d) d)
  done

let test_cons_holds () =
  let env = function "a" -> 6 | "b" -> 2 | "c" -> 3 | "u" -> 1 | _ -> 0 in
  Alcotest.(check bool) "prod" true (Cons.holds env (Cons.Prod ("a", [ "b"; "c" ])));
  Alcotest.(check bool) "sum" false (Cons.holds env (Cons.Sum ("a", [ "b"; "c" ])));
  Alcotest.(check bool) "le" true (Cons.holds env (Cons.Le ("b", "c")));
  Alcotest.(check bool) "in" true (Cons.holds env (Cons.In ("c", [ 1; 3 ])));
  Alcotest.(check bool) "select" true (Cons.holds env (Cons.Select ("c", "u", [ "b"; "c" ])));
  Alcotest.(check bool) "select oob" false
    (Cons.holds (fun _ -> 5) (Cons.Select ("c", "u", [ "b"; "c" ])))

let chain_problem () =
  (* 24 = x * y * z with small domains, plus y <= z. *)
  let b = Problem.builder () in
  Problem.add_var b "n" (Domain.singleton 24);
  Problem.add_var b "x" (dl [ 1; 2; 3; 4; 6 ]);
  Problem.add_var b "yz" (dl [ 4; 6; 8; 12; 24 ]);
  Problem.add_var b "y" (dl [ 1; 2; 3; 4 ]);
  Problem.add_var b "z" (dl [ 2; 3; 4; 6; 8; 12 ]);
  Problem.add_cons b (Cons.Prod ("n", [ "x"; "yz" ]));
  Problem.add_cons b (Cons.Prod ("yz", [ "y"; "z" ]));
  Problem.add_cons b (Cons.Le ("y", "z"));
  Problem.freeze b

let brute_force p =
  (* Enumerate the full cross product and filter by check. *)
  let vars = Array.to_list (Problem.vars p) in
  let rec go acc = function
    | [] -> [ acc ]
    | v :: rest ->
        Domain.to_list (Problem.domain p v)
        |> List.concat_map (fun value -> go (Assignment.set acc v value) rest)
  in
  go Assignment.empty vars |> List.filter (fun a -> Problem.check p a = Ok ())

let test_enumerate_matches_brute_force () =
  let p = chain_problem () in
  let brute = brute_force p in
  let enum = Solver.enumerate p in
  Alcotest.(check int) "same count" (List.length brute) (List.length enum);
  let keys l = List.sort compare (List.map Assignment.key l) in
  Alcotest.(check (list string)) "same solutions" (keys brute) (keys enum)

let test_solver_valid () =
  let p = chain_problem () in
  let rng = Rng.create 5 in
  for _ = 1 to 30 do
    match Solver.solve rng p with
    | None -> Alcotest.fail "satisfiable problem must be solved"
    | Some a -> Alcotest.(check bool) "solution valid" true (Problem.check p a = Ok ())
  done

let test_solver_unsat () =
  let b = Problem.builder () in
  Problem.add_var b "x" (dl [ 2; 3 ]);
  Problem.add_var b "y" (dl [ 5; 7 ]);
  Problem.add_cons b (Cons.Eq ("x", "y"));
  let p = Problem.freeze b in
  Alcotest.(check bool) "unsat" true (Solver.solve (Rng.create 1) p = None)

let test_rand_sat_count_and_validity () =
  let p = chain_problem () in
  let sols = Solver.rand_sat (Rng.create 9) p 20 in
  Alcotest.(check int) "twenty solutions" 20 (List.length sols);
  List.iter
    (fun a -> Alcotest.(check bool) "valid" true (Problem.check p a = Ok ()))
    sols

let test_rand_sat_diversity () =
  let p = chain_problem () in
  let sols = Solver.rand_sat (Rng.create 11) p 30 in
  let distinct = List.sort_uniq compare (List.map Assignment.key sols) in
  Alcotest.(check bool) "several distinct solutions" true (List.length distinct >= 3)

let test_propagation_prunes () =
  (* x * y = 12 with x even forces y in {2, 3, 6} given y <= 6 domain. *)
  let b = Problem.builder () in
  Problem.add_var b "n" (Domain.singleton 12);
  Problem.add_var b "x" (dl [ 2; 4; 6 ]);
  Problem.add_var b "y" (dl [ 1; 2; 3; 4; 5; 6 ]);
  Problem.add_cons b (Cons.Prod ("n", [ "x"; "y" ]));
  let p = Problem.freeze b in
  match Solver.propagate_domains p with
  | None -> Alcotest.fail "satisfiable"
  | Some doms ->
      Alcotest.(check (list int)) "y pruned" [ 2; 3; 6 ]
        (Domain.to_list (List.assoc "y" doms))

let test_propagation_wipeout () =
  let b = Problem.builder () in
  Problem.add_var b "x" (dl [ 2; 3 ]);
  Problem.add_var b "y" (dl [ 10; 11 ]);
  Problem.add_var b "n" (Domain.singleton 7);
  Problem.add_cons b (Cons.Prod ("n", [ "x"; "y" ]));
  Alcotest.(check bool) "wipeout" true (Solver.propagate_domains (Problem.freeze b) = None)

let test_select_propagation () =
  let b = Problem.builder () in
  Problem.add_var b "v" (dl [ 10; 20; 30 ]);
  Problem.add_var b "u" (dl [ 0; 1; 2 ]);
  Problem.add_var b "a" (Domain.singleton 10);
  Problem.add_var b "b" (Domain.singleton 99);
  Problem.add_var b "c" (Domain.singleton 30);
  Problem.add_cons b (Cons.Select ("v", "u", [ "a"; "b"; "c" ]));
  let p = Problem.freeze b in
  (match Solver.propagate_domains p with
  | None -> Alcotest.fail "satisfiable"
  | Some doms ->
      (* b = 99 intersects v nowhere, so index 1 is pruned. *)
      Alcotest.(check (list int)) "u pruned" [ 0; 2 ] (Domain.to_list (List.assoc "u" doms)));
  let sols = Solver.enumerate p in
  Alcotest.(check int) "two solutions" 2 (List.length sols)

let test_sum_constraint () =
  let b = Problem.builder () in
  Problem.add_var b "t" (dl [ 5; 6 ]);
  Problem.add_var b "x" (dl [ 1; 2; 3 ]);
  Problem.add_var b "y" (dl [ 3; 4 ]);
  Problem.add_cons b (Cons.Sum ("t", [ "x"; "y" ]));
  let p = Problem.freeze b in
  let sols = Solver.enumerate p in
  List.iter
    (fun a ->
      Alcotest.(check int) "sum holds"
        (Assignment.get a "x" + Assignment.get a "y")
        (Assignment.get a "t"))
    sols;
  Alcotest.(check int) "solution count" 4 (List.length sols)

let test_with_extra () =
  let p = chain_problem () in
  let p' = Problem.with_extra p [ Cons.In ("x", [ 4 ]) ] in
  Alcotest.(check int) "one more constraint" (Problem.n_cons p + 1) (Problem.n_cons p');
  List.iter
    (fun a -> Alcotest.(check int) "x pinned" 4 (Assignment.get a "x"))
    (Solver.enumerate p');
  (* Unknown variables are rejected. *)
  Alcotest.check_raises "unknown var" (Invalid_argument
    "Problem.with_extra: unknown variable nope in IN(nope, [1])")
    (fun () -> ignore (Problem.with_extra p [ Cons.In ("nope", [ 1 ]) ]))

let test_solve_biased () =
  let p = chain_problem () in
  (* A feasible full bias must be returned verbatim. *)
  let feasible = Assignment.of_list [ ("n", 24); ("x", 2); ("yz", 12); ("y", 3); ("z", 4) ] in
  (match Solver.solve_biased (Rng.create 3) p feasible with
  | None -> Alcotest.fail "must decode"
  | Some a -> Alcotest.(check bool) "bias kept" true (Assignment.equal a feasible));
  (* An infeasible bias still decodes to some valid solution. *)
  let infeasible = Assignment.of_list [ ("x", 6); ("y", 4); ("z", 12) ] in
  match Solver.solve_biased (Rng.create 3) p infeasible with
  | None -> Alcotest.fail "must decode to something"
  | Some a -> Alcotest.(check bool) "valid" true (Problem.check p a = Ok ())

let test_violations_count () =
  let p = chain_problem () in
  let bad = Assignment.of_list [ ("n", 24); ("x", 100); ("yz", 4); ("y", 1); ("z", 2) ] in
  (* x=100 violates its domain; n = x*yz and yz = y*z both fail. *)
  Alcotest.(check bool) "violations > 1" true (Problem.violations p bad >= 2);
  let good = Assignment.of_list [ ("n", 24); ("x", 6); ("yz", 4); ("y", 2); ("z", 2) ] in
  Alcotest.(check int) "no violations" 0 (Problem.violations p good)

let test_categories () =
  let b = Problem.builder () in
  Problem.add_var b ~category:Problem.Architectural "a" (Domain.singleton 1);
  Problem.add_var b ~category:Problem.Tunable "t" (Domain.singleton 1);
  Problem.add_var b ~category:Problem.Auxiliary "x" (Domain.singleton 1);
  let p = Problem.freeze b in
  Alcotest.(check (list string)) "tunables" [ "t" ] (Problem.vars_of_category p Problem.Tunable);
  Alcotest.(check bool) "category" true (Problem.category p "a" = Problem.Architectural)

(* Random chain problems: any solver answer must satisfy the checker, and
   solvability must agree with brute force. *)
let random_chain_agrees =
  QCheck.Test.make ~name:"solver agrees with brute force on random chains" ~count:40
    QCheck.(triple (int_range 1 60) (int_range 1 8) small_int)
    (fun (n, dcap, seed) ->
      let b = Problem.builder () in
      Problem.add_var b "n" (Domain.singleton n);
      Problem.add_var b "x" (dl (List.init dcap (fun i -> i + 1)));
      Problem.add_var b "y" (dl (List.init dcap (fun i -> i + 1)));
      Problem.add_cons b (Cons.Prod ("n", [ "x"; "y" ]));
      let p = Problem.freeze b in
      let brute_sat =
        List.exists
          (fun x -> List.exists (fun y -> x * y = n) (List.init dcap (fun i -> i + 1)))
          (List.init dcap (fun i -> i + 1))
      in
      match Solver.solve (Rng.create seed) p with
      | Some a -> brute_sat && Problem.check p a = Ok ()
      | None -> not brute_sat)

let test_bounds_only_still_sound () =
  (* With exact support pruning disabled, the solver is slower but still
     sound and complete on satisfiable problems. *)
  let p = chain_problem () in
  for seed = 1 to 10 do
    match Solver.solve ~exact_limit:0 (Rng.create seed) p with
    | None -> Alcotest.fail "satisfiable with bounds-only propagation"
    | Some a -> Alcotest.(check bool) "valid" true (Problem.check p a = Ok ())
  done

let test_exact_vs_bounds_agree_on_unsat () =
  let b = Problem.builder () in
  Problem.add_var b "n" (Domain.singleton 7);
  Problem.add_var b "x" (dl [ 2; 3 ]);
  Problem.add_var b "y" (dl [ 2; 3 ]);
  Problem.add_cons b (Cons.Prod ("n", [ "x"; "y" ]));
  let p = Problem.freeze b in
  Alcotest.(check bool) "exact unsat" true (Solver.solve (Rng.create 1) p = None);
  Alcotest.(check bool) "bounds unsat" true
    (Solver.solve ~exact_limit:0 (Rng.create 1) p = None)

(* Regression: the binary exact-support path of PROD/SUM used to filter
   stale domain snapshots. With the target aliased to an operand (v = x * v)
   the snapshot resurrected freshly pruned values and propagation oscillated
   forever. Shrunk from the fuzzer's counterexample (seed 4242, case 613):
   v0 in {0,2}, v1 in {0,2}, PROD(v0, [v1; v0]). *)
let test_aliased_prod_terminates () =
  let p =
    Problem.of_parts
      [ ("v0", dl [ 0; 2 ]); ("v1", dl [ 0; 2 ]) ]
      [ Cons.Prod ("v0", [ "v1"; "v0" ]) ]
  in
  (match Solver.propagate_domains p with
  | None -> Alcotest.fail "satisfiable (v0 = 0)"
  | Some doms ->
      Alcotest.(check (list int)) "v0 fixed to 0" [ 0 ]
        (Domain.to_list (List.assoc "v0" doms)));
  (match Solver.solve (Rng.create 1) p with
  | Some a -> Alcotest.(check bool) "solution valid" true (Problem.check p a = Ok ())
  | None -> Alcotest.fail "must find v0 = 0");
  (* The original (pre-shrink) fuzzer counterexample, for good measure. *)
  let full =
    Problem.of_parts
      [ ("v0", dl [ 0; 2; 23 ]); ("v1", dl [ 0; 2; 4; 5; 7; 12 ]) ]
      [
        Cons.Select ("v1", "v1", [ "v1"; "v1"; "v1" ]);
        Cons.Eq ("v0", "v0");
        Cons.Prod ("v0", [ "v1"; "v0" ]);
        Cons.Prod ("v0", [ "v1" ]);
      ]
  in
  Alcotest.(check int) "one solution" 1 (List.length (Solver.enumerate full))

let test_aliased_sum_terminates () =
  (* Same stale-snapshot shape through the SUM exact path: v = x + v. *)
  let p =
    Problem.of_parts
      [ ("v0", dl [ 0; 2 ]); ("v1", dl [ 0; 2 ]) ]
      [ Cons.Sum ("v0", [ "v1"; "v0" ]) ]
  in
  match Solver.propagate_domains p with
  | None -> Alcotest.fail "satisfiable (v1 = 0)"
  | Some _ ->
      (* Propagation relaxes aliased occurrences, so it only needs to
         terminate without wiping out; search settles the rest. *)
      Alcotest.(check int) "two solutions" 2 (List.length (Solver.enumerate p))

(* ---------- Bitset domains vs the sorted-array reference ---------- *)

module Bitdom = Heron_csp.Bitdom
module Obs = Heron_obs.Obs

(* A pure pseudo-random predicate so both representations filter by the
   exact same membership function. *)
let pred_of seed v = (v * 2654435761 + seed) land 7 > 2

let test_bitdom_matches_domain =
  QCheck.Test.make ~name:"bitdom ops agree with Domain reference" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 80) (int_range 0 200)) small_int)
    (fun (xs, seed) ->
      let d = dl xs in
      let b = Bitdom.of_domain d in
      let n = Domain.size d in
      (* Construction and the whole-universe queries. *)
      Bitdom.to_list b = Domain.to_list d
      && Bitdom.size b = n
      && (not (Bitdom.is_empty b))
      && Bitdom.min_value b = Domain.min_value d
      && Bitdom.max_value b = Domain.max_value d
      && List.for_all (fun v -> Bitdom.mem v b) (Domain.to_list d)
      && (not (Bitdom.mem 201 b))
      && Bitdom.value b = (if n = 1 then Some (List.hd xs) else None)
      (* Filtering, intersection, iteration order. *)
      &&
      let p1 = pred_of seed and p2 = pred_of (seed + 1) in
      let b1 = Bitdom.restrict p1 b and b2 = Bitdom.restrict p2 b in
      Bitdom.to_list b1 = Domain.to_list (Domain.filter p1 d)
      && Domain.to_list (Bitdom.to_domain b2) = Domain.to_list (Domain.filter p2 d)
      && Bitdom.to_list (Bitdom.inter b1 b2)
         = Domain.to_list (Domain.inter (Domain.filter p1 d) (Domain.filter p2 d))
      && (let seen = ref [] in
          Bitdom.iter (fun v -> seen := v :: !seen) b1;
          List.rev !seen = Bitdom.to_list b1)
      && Bitdom.fold (fun acc _ -> acc + 1) 0 b1 = Bitdom.size b1
      (* Slice primitives underneath: the live words of a full domain are
         exactly [fill], and cardinality/extrema come from the words. *)
      &&
      let nw = Bitdom.nwords n in
      let fresh = Array.make nw 0 in
      Bitdom.fill fresh ~off:0 ~n;
      Bitdom.equal_slices fresh 0 b.Bitdom.words 0 ~nw
      && Bitdom.popcount b1.Bitdom.words ~off:0 ~nw = Bitdom.size b1
      && Bitdom.is_empty_slice b1.Bitdom.words ~off:0 ~nw = Bitdom.is_empty b1
      && (Bitdom.is_empty b1
         || Bitdom.min_bit b1.Bitdom.words ~off:0 ~nw
            = Bitdom.index_of b.Bitdom.values (Bitdom.min_value b1)
            && Bitdom.max_bit b1.Bitdom.words ~off:0 ~nw
               = Bitdom.index_of b.Bitdom.values (Bitdom.max_value b1)))

(* ---------- Compiled-template cache ---------- *)

(* Re-solving the same physical problem reuses its compiled template; a
   structurally equal but physically fresh problem does not. *)
let test_compile_cache () =
  let hits () = Obs.Counter.value (Obs.Counter.make "solver.compile_cache_hits") in
  let compiles () = Obs.Counter.value (Obs.Counter.make "solver.compiles") in
  let p = chain_problem () in
  ignore (Solver.solve (Rng.create 3) p);
  let h0 = hits () in
  for i = 0 to 4 do
    Alcotest.(check bool) "solution found" true (Solver.solve (Rng.create i) p <> None)
  done;
  Alcotest.(check bool) "repeat solves hit the template cache" true (hits () >= h0 + 5);
  let h1 = hits () and c1 = compiles () in
  ignore (Solver.solve (Rng.create 3) (chain_problem ()));
  Alcotest.(check int) "fresh problem misses the cache" h1 (hits ());
  Alcotest.(check bool) "fresh problem compiles" true (compiles () > c1);
  (* with_extra offspring reuse the base template rather than recompiling. *)
  let c2 = compiles () and h2 = hits () in
  let o = Problem.with_extra p [ Cons.In ("x", [ 1; 2; 3 ]) ] in
  Alcotest.(check bool) "offspring solvable" true (Solver.solve (Rng.create 9) o <> None);
  Alcotest.(check int) "offspring reuses base template" c2 (compiles ());
  Alcotest.(check bool) "offspring lookup is a cache hit" true (hits () > h2)

let qtest t =
  Heron_check.Replay.to_alcotest ~seed:(Heron_check.Replay.seed_from_env ()) t

let suite =
  [
    Alcotest.test_case "domain basics" `Quick test_domain_basics;
    qtest test_domain_set_ops;
    Alcotest.test_case "domain range" `Quick test_domain_range;
    Alcotest.test_case "domain random" `Quick test_domain_random;
    Alcotest.test_case "constraint semantics" `Quick test_cons_holds;
    Alcotest.test_case "enumerate = brute force" `Quick test_enumerate_matches_brute_force;
    Alcotest.test_case "solver returns valid" `Quick test_solver_valid;
    Alcotest.test_case "solver detects unsat" `Quick test_solver_unsat;
    Alcotest.test_case "rand_sat count/validity" `Quick test_rand_sat_count_and_validity;
    Alcotest.test_case "rand_sat diversity" `Quick test_rand_sat_diversity;
    Alcotest.test_case "propagation prunes products" `Quick test_propagation_prunes;
    Alcotest.test_case "propagation wipeout" `Quick test_propagation_wipeout;
    Alcotest.test_case "select propagation" `Quick test_select_propagation;
    Alcotest.test_case "sum constraint" `Quick test_sum_constraint;
    Alcotest.test_case "with_extra" `Quick test_with_extra;
    Alcotest.test_case "solve_biased" `Quick test_solve_biased;
    Alcotest.test_case "violations count" `Quick test_violations_count;
    Alcotest.test_case "variable categories" `Quick test_categories;
    qtest random_chain_agrees;
    Alcotest.test_case "bounds-only propagation sound" `Quick test_bounds_only_still_sound;
    Alcotest.test_case "exact/bounds agree on unsat" `Quick test_exact_vs_bounds_agree_on_unsat;
    Alcotest.test_case "aliased PROD terminates (regression)" `Quick
      test_aliased_prod_terminates;
    Alcotest.test_case "aliased SUM terminates (regression)" `Quick
      test_aliased_sum_terminates;
    qtest test_bitdom_matches_domain;
    Alcotest.test_case "compile cache reuse" `Quick test_compile_cache;
  ]
