(* Benchmark harness.

   Part 1 (Bechamel): one micro-benchmark per paper table/figure, timing
   the computational kernel that experiment exercises (space generation,
   CSP solving, CGA evolution, simulation, cost-model training, ...), plus
   micro-benchmarks of the core substrates.

   Part 2: regenerates every table and figure at a reduced trial budget so
   that one `dune exec bench/main.exe` run reproduces the whole evaluation
   (use bin/experiments.exe for full-budget runs). *)

open Bechamel
module Op = Heron_tensor.Op
module D = Heron_dla.Descriptor
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Rng = Heron_util.Rng
module E = Heron_experiments

let gemm_g1 = Op.gemm ~m:1024 ~n:1024 ~k:1024 ()
let gemm_g3 = Op.gemm ~m:32 ~n:1000 ~k:2048 ()
let c2d = Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()
let c3d = Op.conv3d ~n:8 ~ci:16 ~d:8 ~h:28 ~w:28 ~co:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()

let gen_v100 = Heron.Generator.generate D.v100 gemm_g1
let gen_g3 = Heron.Generator.generate D.v100 gemm_g3
let gen_c2d = Heron.Generator.generate D.v100 c2d
let gen_dlb = Heron.Generator.generate D.dlboost (Op.gemm ~dt:Op.I8 ~m:512 ~n:512 ~k:512 ())
let gen_vta = Heron.Generator.generate D.vta (Op.gemm ~dt:Op.I8 ~m:256 ~n:256 ~k:256 ())

let sample_prog desc (gen : Heron.Generator.t) seed =
  match Solver.solve (Rng.create seed) gen.Heron.Generator.problem with
  | Some a -> Concrete.instantiate gen.Heron.Generator.template a
  | None -> failwith ("unsatisfiable space on " ^ desc.D.dname)

let prog_v100 = sample_prog D.v100 gen_v100 3
let prog_c2d = sample_prog D.v100 gen_c2d 3

let counter = ref 0

let fresh () = incr counter; !counter

let tests =
  [
    (* Per-table / per-figure kernels. *)
    Test.make ~name:"table4_generate_gemm_space" (Staged.stage (fun () ->
        ignore (Heron.Generator.generate D.v100 gemm_g1)));
    Test.make ~name:"table5_generate_c3d_space" (Staged.stage (fun () ->
        ignore (Heron.Generator.generate D.v100 c3d)));
    Test.make ~name:"fig2_random_search_16" (Staged.stage (fun () ->
        let env = Heron.Pipeline.make_env ~seed:(fresh ()) D.v100 gen_g3 in
        ignore (Heron_search.Baselines.random_search env ~budget:16)));
    Test.make ~name:"fig6_cga_gemm_v100_16" (Staged.stage (fun () ->
        let env = Heron.Pipeline.make_env ~seed:(fresh ()) D.v100 gen_v100 in
        ignore (Heron_search.Cga.run env ~budget:16)));
    Test.make ~name:"fig7_simulate_t4_a100" (Staged.stage (fun () ->
        ignore (Heron_dla.Perf_model.latency_us D.t4 prog_v100);
        ignore (Heron_dla.Perf_model.latency_us D.a100 prog_v100)));
    Test.make ~name:"fig8_cga_dlboost_16" (Staged.stage (fun () ->
        let env = Heron.Pipeline.make_env ~seed:(fresh ()) D.dlboost gen_dlb in
        ignore (Heron_search.Cga.run env ~budget:16)));
    Test.make ~name:"fig9_cga_vta_16" (Staged.stage (fun () ->
        let env = Heron.Pipeline.make_env ~seed:(fresh ()) D.vta gen_vta in
        ignore (Heron_search.Cga.run env ~budget:16)));
    Test.make ~name:"fig10_measure_resnet_layer" (Staged.stage (fun () ->
        ignore (Heron_dla.Perf_model.latency_us D.v100 prog_c2d)));
    Test.make ~name:"fig11_randsat_8" (Staged.stage (fun () ->
        ignore (Solver.rand_sat (Rng.create (fresh ())) gen_v100.Heron.Generator.problem 8)));
    Test.make ~name:"fig12_cga_c2d_16" (Staged.stage (fun () ->
        let env = Heron.Pipeline.make_env ~seed:(fresh ()) D.v100 gen_c2d in
        ignore (Heron_search.Cga.run env ~budget:16)));
    Test.make ~name:"fig13_crossover_offspring_32" (Staged.stage (fun () ->
        let rng = Rng.create (fresh ()) in
        let parents =
          Array.of_list (Solver.rand_sat rng gen_v100.Heron.Generator.problem 4)
        in
        if Array.length parents >= 2 then begin
          let keys = [ "tile_i_warp"; "tile_j_warp"; "tile_r_in"; "vec_a" ] in
          let csps =
            Heron_search.Cga.crossover_csps rng gen_v100.Heron.Generator.problem ~keys
              ~parents ~n:32
          in
          List.iter (fun csp -> ignore (Solver.solve ~max_fails:200 ~max_restarts:0 rng csp)) csps
        end));
    Test.make ~name:"fig14_costmodel_refit" (Staged.stage (fun () ->
        let model = Heron_cost.Model.create gen_v100.Heron.Generator.problem in
        let rng = Rng.create 5 in
        let sols = Solver.rand_sat rng gen_v100.Heron.Generator.problem 32 in
        List.iteri (fun i a -> Heron_cost.Model.record model a (float_of_int (i mod 7))) sols;
        Heron_cost.Model.refit model));
    (* Substrate micro-benchmarks. *)
    Test.make ~name:"substrate_csp_solve" (Staged.stage (fun () ->
        ignore (Solver.solve (Rng.create (fresh ())) gen_v100.Heron.Generator.problem)));
    Test.make ~name:"substrate_validate" (Staged.stage (fun () ->
        ignore (Heron_dla.Validate.check D.v100 prog_v100)));
    Test.make ~name:"substrate_perf_model" (Staged.stage (fun () ->
        ignore (Heron_dla.Perf_model.analyze D.v100 prog_v100)));
    Test.make ~name:"substrate_instantiate" (Staged.stage (fun () ->
        ignore
          (Concrete.instantiate gen_v100.Heron.Generator.template
             prog_v100.Concrete.assignment)));
    Test.make ~name:"substrate_ref_exec_gemm16" (Staged.stage (fun () ->
        let op = Op.gemm ~m:16 ~n:16 ~k:16 () in
        let inputs =
          List.map (fun (n, s) -> (n, Array.make s 1.0)) (Heron_tensor.Ref_exec.input_sizes op)
        in
        ignore (Heron_tensor.Ref_exec.run op inputs)));
  ]

let run_benchmarks () =
  let grouped = Test.make_grouped ~name:"heron" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] -> rows := (name, t) :: !rows
      | _ -> ())
    results;
  print_endline "Bechamel micro-benchmarks (monotonic clock):";
  Printf.printf "%-44s %16s\n%s\n" "benchmark" "time/run" (String.make 62 '-');
  List.sort compare !rows
  |> List.iter (fun (name, ns) ->
         let pretty =
           if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         Printf.printf "%-44s %16s\n" name pretty);
  print_newline ()

let run_experiments () =
  let budget = 100 and seed = 42 in
  print_endline "=== Regenerated tables and figures (reduced budget) ===";
  print_newline ();
  print_string (E.Exp_space.table4 ());
  print_newline ();
  print_string (E.Exp_space.table5 ());
  print_newline ();
  print_string (E.Exp_ops.table9 ());
  print_newline ();
  print_string (E.Exp_search.fig2 ~budget:200 ~seed ());
  print_newline ();
  print_string (E.Exp_ops.fig6 ~budget ~seed ());
  print_newline ();
  print_string (E.Exp_ops.fig7 ~budget ~seed ());
  print_newline ();
  print_string (E.Exp_ops.fig8 ~budget ~seed ());
  print_newline ();
  print_string (E.Exp_ops.fig9 ~budget ~seed ());
  print_newline ();
  print_string (E.Exp_networks.fig10 ~budget:48 ~seed ());
  print_newline ();
  print_string (E.Exp_space.fig11 ~samples:200 ~seed ());
  print_newline ();
  print_string (E.Exp_search.fig12 ~budget:200 ~seed ());
  print_newline ();
  print_string (E.Exp_search.fig13 ~budget:100 ~seed ());
  print_newline ();
  print_string (E.Exp_time.table10 ~budget:64 ~seed ());
  print_newline ();
  print_string (E.Exp_time.fig14 ~budget:64 ~seed ());
  print_newline ();
  print_string (E.Exp_ablation.cga_knobs ~budget:100 ~seed ());
  print_newline ();
  print_string (E.Exp_ablation.propagation ~seed ())

let () =
  run_benchmarks ();
  run_experiments ()
