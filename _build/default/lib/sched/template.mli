(** Schedule templates: the symbolic program structure produced by the
    Space Generator.

    A template fixes the stage/loop structure of the scheduled program —
    which cache stages exist, how each original iterator is split into a
    chain of loops, which loops are bound to hardware threads — while every
    loop extent, compute location, vector length etc. remains a CSP
    variable. A template together with one valid assignment instantiates to
    one {!Concrete} program. *)

module Op = Heron_tensor.Op

type annotation =
  | Plain
  | Unrolled of string  (** unroll length variable *)
  | Vectorized of string  (** vector length variable *)
  | Bound of Prim.thread_axis
  | Tensorized  (** consumed by the tensor intrinsic *)

type loop = {
  lname : string;
  extent_var : string;  (** CSP variable holding this loop's extent *)
  origin : string;  (** the original operator iterator this loop tiles *)
  kind : Op.iter_kind;
  ann : annotation;
}

type attach =
  | Root
  | At of { parent : string; location_var : string }
      (** attached under [parent] at the loop index given by the CSP
          variable [location_var] *)

type role = Load of string | Compute | Store

type stage = {
  sname : string;
  scope : string;  (** memory scope: "global", "shared", "wmma.a", ... *)
  loops : loop list;  (** outer to inner *)
  attach : attach;
  role : role;
  align_pad : string option;
      (** CSP variable for storage_align row padding, when applicable *)
}

type t = {
  op : Op.t;
  stages : stage list;  (** in instantiation order; parents precede children *)
  prims : Prim.t list;  (** the schedule template as primitive list *)
  intrin : string option;  (** tensor intrinsic name when tensorized *)
}

val find_stage : t -> string -> stage
val compute_stage : t -> stage
(** The unique stage with role [Compute]. @raise Invalid_argument if absent. *)

val loop_vars : stage -> string list
val to_string : t -> string
