(** Concrete programs: a schedule template instantiated with one valid CSP
    assignment. This is what the DLA validator, performance models and tile
    executor consume. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment

type cann =
  | Plain
  | Unrolled of int
  | Vectorized of int
  | Bound of Prim.thread_axis
  | Tensorized

type cloop = {
  name : string;
  extent : int;
  origin : string;
  kind : Op.iter_kind;
  ann : cann;
}

type cstage = {
  name : string;
  scope : string;
  loops : cloop list;  (** outer to inner *)
  attach : (string * int) option;  (** parent stage, attach loop index *)
  role : Template.role;
  align_pad : int;  (** storage_align padding in elements, 0 if none *)
}

type t = {
  op : Op.t;
  stages : cstage list;
  intrin : string option;
  assignment : Assignment.t;
}

val instantiate : Template.t -> Assignment.t -> t
(** @raise Invalid_argument when the assignment lacks a template variable. *)

val find_stage : t -> string -> cstage
val compute_stage : t -> cstage
val load_stages : t -> cstage list
val stages_in_scope : t -> string -> cstage list

val footprint_elems : cstage -> int
(** Tile size of a stage: product of its loop extents. *)

val footprint_bytes : t -> cstage -> int
(** Tile size in bytes, including storage_align padding. Load stages use the
    dtype of the tensor they load; other stages use the output dtype. *)

val loop_path : t -> cstage -> cloop list
(** All loops enclosing the stage's body: ancestor loops above the attach
    point (outermost first) followed by the stage's own loops. *)

val axis_extent : t -> Prim.thread_axis -> int
(** Product over all stages' loops bound to the given thread axis
    (counting each binding variable once via the compute/store path). *)

val tensorize_mnk : t -> (int * int * int) option
(** The intrinsic tile shape, when the program is tensorized. *)

val coverage_errors : t -> string list
(** For each original operator iterator, checks that the loops derived from
    it (on the compute stage's loop path) multiply back to its extent;
    returns human-readable mismatches. Empty means the program covers the
    iteration space exactly. *)

val var : t -> string -> int
(** Value of a CSP variable in the underlying assignment. *)

val var_opt : t -> string -> int option

val to_string : t -> string
