module Op = Heron_tensor.Op
module Expr = Heron_tensor.Expr
module Ref_exec = Heron_tensor.Ref_exec

let run (prog : Concrete.t) inputs =
  match Concrete.coverage_errors prog with
  | _ :: _ as errs -> Error (String.concat "; " errs)
  | [] -> (
      let op = prog.op in
      match op.body with
      | Op.Scan _ | Op.Copy _ ->
          (* Non-contraction bodies have no tiled structure worth walking;
             defer to the reference semantics. *)
          Ok (Ref_exec.run op inputs)
      | Op.Contract (a, b) ->
          let stage = Concrete.compute_stage prog in
          let path = Array.of_list (Concrete.loop_path prog stage) in
          let n_loops = Array.length path in
          let counters = Array.make n_loops 0 in
          (* Per original iterator: the positions of its loops in the path,
             outer to inner, and the radix (extent) of each. *)
          let iter_loops =
            List.map
              (fun (it : Op.iter) ->
                let positions = ref [] in
                Array.iteri
                  (fun i (l : Concrete.cloop) ->
                    if l.origin = it.iname then positions := i :: !positions)
                  path;
                (it.iname, List.rev !positions))
              op.iters
          in
          let index_of positions =
            List.fold_left
              (fun acc p -> (acc * path.(p).Concrete.extent) + counters.(p))
              0 positions
          in
          let values = Hashtbl.create 16 in
          let env name =
            match Hashtbl.find_opt values name with
            | Some v -> v
            | None -> 0
          in
          let out = Array.make (Op.numel op.out) 0.0 in
          let flat_index shape idx =
            let rec loop acc shape idx =
              match (shape, idx) with
              | [], [] -> Some acc
              | d :: shape', i :: idx' ->
                  if i < 0 || i >= d then None else loop ((acc * d) + i) shape' idx'
              | _ -> invalid_arg "Tile_exec: rank mismatch"
            in
            loop 0 shape idx
          in
          let read (acc : Op.access) =
            if List.for_all (fun (e, m) -> Expr.eval env e mod m = 0) acc.guards then
              match flat_index acc.src.shape (List.map (Expr.eval env) acc.idx) with
              | None -> 0.0
              | Some i -> (List.assoc acc.src.tname inputs).(i)
            else 0.0
          in
          let body () =
            List.iter (fun (name, positions) -> Hashtbl.replace values name (index_of positions))
              iter_loops;
            let out_idx = List.map (Expr.eval env) op.out_idx in
            match flat_index op.out.shape out_idx with
            | None -> ()
            | Some oi -> out.(oi) <- out.(oi) +. (read a *. read b)
          in
          let rec walk d =
            if d >= n_loops then body ()
            else
              for v = 0 to path.(d).Concrete.extent - 1 do
                counters.(d) <- v;
                walk (d + 1)
              done
          in
          walk 0;
          (* Fused epilogues apply once the reduction is complete. *)
          (match op.Op.post with
          | Some p ->
              let f = Op.apply_post p in
              Array.iteri (fun i v -> out.(i) <- f v) out
          | None -> ());
          Ok out)
