module Op = Heron_tensor.Op

type annotation =
  | Plain
  | Unrolled of string
  | Vectorized of string
  | Bound of Prim.thread_axis
  | Tensorized

type loop = {
  lname : string;
  extent_var : string;
  origin : string;
  kind : Op.iter_kind;
  ann : annotation;
}

type attach = Root | At of { parent : string; location_var : string }

type role = Load of string | Compute | Store

type stage = {
  sname : string;
  scope : string;
  loops : loop list;
  attach : attach;
  role : role;
  align_pad : string option;
}

type t = {
  op : Op.t;
  stages : stage list;
  prims : Prim.t list;
  intrin : string option;
}

let find_stage t name =
  match List.find_opt (fun s -> s.sname = name) t.stages with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Template.find_stage: no stage %s" name)

let compute_stage t =
  match List.find_opt (fun s -> s.role = Compute) t.stages with
  | Some s -> s
  | None -> invalid_arg "Template.compute_stage: template has no compute stage"

let loop_vars s = List.map (fun l -> l.extent_var) s.loops

let annotation_to_string = function
  | Plain -> ""
  | Unrolled v -> Printf.sprintf " [unroll %s]" v
  | Vectorized v -> Printf.sprintf " [vectorize %s]" v
  | Bound ax -> Printf.sprintf " [%s]" (Prim.thread_axis_to_string ax)
  | Tensorized -> " [tensorized]"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "template of %s\n" (Op.to_string t.op));
  List.iter
    (fun s ->
      let attach =
        match s.attach with
        | Root -> "root"
        | At { parent; location_var } -> Printf.sprintf "at %s[%s]" parent location_var
      in
      Buffer.add_string buf
        (Printf.sprintf "  stage %s (%s, %s, %s)\n" s.sname s.scope
           (match s.role with Load tn -> "load " ^ tn | Compute -> "compute" | Store -> "store")
           attach);
      List.iter
        (fun l ->
          Buffer.add_string buf
            (Printf.sprintf "    %s <- %s (origin %s%s)%s\n" l.lname l.extent_var l.origin
               (if l.kind = Op.Reduction then ", reduce" else "")
               (annotation_to_string l.ann)))
        s.loops)
    t.stages;
  Buffer.contents buf
