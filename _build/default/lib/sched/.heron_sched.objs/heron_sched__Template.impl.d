lib/sched/template.ml: Buffer Heron_tensor List Prim Printf
