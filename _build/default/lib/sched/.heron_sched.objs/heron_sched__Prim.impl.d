lib/sched/prim.ml: Printf String
