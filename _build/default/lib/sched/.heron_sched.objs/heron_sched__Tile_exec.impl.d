lib/sched/tile_exec.ml: Array Concrete Hashtbl Heron_tensor List String
