lib/sched/tile_exec.mli: Concrete
