lib/sched/concrete.mli: Heron_csp Heron_tensor Prim Template
