lib/sched/template.mli: Heron_tensor Prim
