lib/sched/concrete.ml: Buffer Heron_csp Heron_tensor List Prim Printf Template
