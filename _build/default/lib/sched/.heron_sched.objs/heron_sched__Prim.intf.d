lib/sched/prim.mli:
