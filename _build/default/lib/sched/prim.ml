type thread_axis = Block_x | Block_y | Thread_x | Thread_y | Vthread | Core

let thread_axis_to_string = function
  | Block_x -> "blockIdx.x"
  | Block_y -> "blockIdx.y"
  | Thread_x -> "threadIdx.x"
  | Thread_y -> "threadIdx.y"
  | Vthread -> "vthread"
  | Core -> "core"

type t =
  | Split of { stage : string; loop : string; outer : string; inner : string; factor : string }
  | Fuse of { stage : string; loops : string list; into : string }
  | Reorder of { stage : string; order : string list }
  | Cache_read of { tensor : string; scope : string; reader : string; new_stage : string }
  | Cache_write of { tensor : string; scope : string; new_stage : string }
  | Compute_at of { stage : string; parent : string; location : string }
  | Bind of { stage : string; loop : string; axis : thread_axis }
  | Unroll of { stage : string; loop : string; length : string }
  | Vectorize of { stage : string; loop : string; length : string }
  | Tensorize of { stage : string; intrin : string; m : string; n : string; k : string }
  | Storage_align of { stage : string; pad : string }
  | Parallel of { stage : string; loop : string }

let to_string = function
  | Split s ->
      Printf.sprintf "%s.split(%s -> %s, %s; factor=%s)" s.stage s.loop s.outer s.inner
        s.factor
  | Fuse f -> Printf.sprintf "%s.fuse([%s] -> %s)" f.stage (String.concat ", " f.loops) f.into
  | Reorder r -> Printf.sprintf "%s.reorder(%s)" r.stage (String.concat ", " r.order)
  | Cache_read c ->
      Printf.sprintf "cache_read(%s, %S) for %s -> %s" c.tensor c.scope c.reader c.new_stage
  | Cache_write c -> Printf.sprintf "cache_write(%s, %S) -> %s" c.tensor c.scope c.new_stage
  | Compute_at c -> Printf.sprintf "%s.compute_at(%s, loc=%s)" c.stage c.parent c.location
  | Bind b -> Printf.sprintf "%s.bind(%s, %s)" b.stage b.loop (thread_axis_to_string b.axis)
  | Unroll u -> Printf.sprintf "%s.unroll(%s, len=%s)" u.stage u.loop u.length
  | Vectorize v -> Printf.sprintf "%s.vectorize(%s, len=%s)" v.stage v.loop v.length
  | Tensorize t ->
      Printf.sprintf "%s.tensorize(%s; m=%s n=%s k=%s)" t.stage t.intrin t.m t.n t.k
  | Storage_align s -> Printf.sprintf "%s.storage_align(pad=%s)" s.stage s.pad
  | Parallel p -> Printf.sprintf "%s.parallel(%s)" p.stage p.loop

let stage_of = function
  | Split { stage; _ }
  | Fuse { stage; _ }
  | Reorder { stage; _ }
  | Compute_at { stage; _ }
  | Bind { stage; _ }
  | Unroll { stage; _ }
  | Vectorize { stage; _ }
  | Tensorize { stage; _ }
  | Storage_align { stage; _ }
  | Parallel { stage; _ } -> stage
  | Cache_read { new_stage; _ } | Cache_write { new_stage; _ } -> new_stage
