(** Numeric execution of a concrete (scheduled) program.

    Walks the compute stage's full loop nest — block loops, thread loops,
    tile loops, tensorized intrinsic loops — reconstructing each original
    iterator's index from the loops derived from it (mixed-radix, outer to
    inner), and evaluates the contraction. Comparing the result against
    {!Heron_tensor.Ref_exec} validates end-to-end that a CSP solution
    instantiates to a semantically correct program. Test shapes only. *)

val run : Concrete.t -> (string * float array) list -> (float array, string) result
(** [run prog inputs] returns the output buffer, or [Error reason] when the
    program does not cover the iteration space or the operator body is not
    a contraction/copy/scan. *)
