module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment

type cann =
  | Plain
  | Unrolled of int
  | Vectorized of int
  | Bound of Prim.thread_axis
  | Tensorized

type cloop = {
  name : string;
  extent : int;
  origin : string;
  kind : Op.iter_kind;
  ann : cann;
}

type cstage = {
  name : string;
  scope : string;
  loops : cloop list;
  attach : (string * int) option;
  role : Template.role;
  align_pad : int;
}

type t = {
  op : Op.t;
  stages : cstage list;
  intrin : string option;
  assignment : Assignment.t;
}

let lookup a v =
  match Assignment.find_opt a v with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Concrete.instantiate: unbound variable %s" v)

let instantiate (tpl : Template.t) a =
  let conv_loop (l : Template.loop) =
    {
      name = l.lname;
      extent = lookup a l.extent_var;
      origin = l.origin;
      kind = l.kind;
      ann =
        (match l.ann with
        | Template.Plain -> Plain
        | Template.Unrolled v -> Unrolled (lookup a v)
        | Template.Vectorized v -> Vectorized (lookup a v)
        | Template.Bound ax -> Bound ax
        | Template.Tensorized -> Tensorized);
    }
  in
  let conv_stage (s : Template.stage) =
    {
      name = s.sname;
      scope = s.scope;
      loops = List.map conv_loop s.loops;
      attach =
        (match s.attach with
        | Template.Root -> None
        | Template.At { parent; location_var } -> Some (parent, lookup a location_var));
      role = s.role;
      align_pad = (match s.align_pad with None -> 0 | Some v -> lookup a v);
    }
  in
  {
    op = tpl.op;
    stages = List.map conv_stage tpl.stages;
    intrin = tpl.intrin;
    assignment = a;
  }

let find_stage t name =
  match List.find_opt (fun s -> s.name = name) t.stages with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Concrete.find_stage: no stage %s" name)

let compute_stage t =
  match List.find_opt (fun s -> s.role = Template.Compute) t.stages with
  | Some s -> s
  | None -> invalid_arg "Concrete.compute_stage: no compute stage"

let load_stages t =
  List.filter (fun s -> match s.role with Template.Load _ -> true | _ -> false) t.stages

let stages_in_scope t scope = List.filter (fun s -> s.scope = scope) t.stages

let footprint_elems s = List.fold_left (fun acc l -> acc * l.extent) 1 s.loops

let footprint_bytes t s =
  let dt =
    match s.role with
    | Template.Load tensor -> (
        match List.find_opt (fun (tn : Op.tensor) -> tn.tname = tensor) t.op.inputs with
        | Some tn -> tn.dt
        | None -> t.op.out.dt)
    | Template.Compute | Template.Store -> t.op.out.dt
  in
  (* storage_align pads each row of the innermost dimension. *)
  let elems =
    match List.rev s.loops with
    | [] -> 0
    | inner :: outers ->
        let rows = List.fold_left (fun acc l -> acc * l.extent) 1 outers in
        rows * (inner.extent + s.align_pad)
  in
  elems * Op.dtype_bytes dt

let rec loop_path t s =
  match s.attach with
  | None -> s.loops
  | Some (parent_name, at) ->
      let parent = find_stage t parent_name in
      let ancestor = loop_path t parent in
      let own_count = List.length parent.loops in
      let above =
        (* Ancestor loops beyond the parent's own loops, plus the parent's
           loops down to (and including) the attach index. *)
        let inherited = List.filteri (fun i _ -> i < List.length ancestor - own_count) ancestor in
        let parents = List.filteri (fun i _ -> i <= at) parent.loops in
        inherited @ parents
      in
      above @ s.loops

let axis_extent t ax =
  let stage =
    match List.find_opt (fun s -> s.role = Template.Compute) t.stages with
    | Some s -> s
    | None -> List.nth t.stages (List.length t.stages - 1)
  in
  loop_path t stage
  |> List.filter (fun l -> l.ann = Bound ax)
  |> List.fold_left (fun acc l -> acc * l.extent) 1

let var_mnk t v =
  match Assignment.find_opt t.assignment v with Some x -> x | None -> 1

let tensorize_mnk t =
  match t.intrin with
  | None -> None
  | Some _ ->
      let m = var_mnk t "intrin_m" and n = var_mnk t "intrin_n" and k = var_mnk t "intrin_k" in
      Some (m, n, k)

let coverage_errors t =
  let stage = compute_stage t in
  let path = loop_path t stage in
  List.filter_map
    (fun (it : Op.iter) ->
      let prod =
        List.fold_left
          (fun acc l -> if l.origin = it.iname then acc * l.extent else acc)
          1 path
      in
      if prod = it.extent then None
      else
        Some
          (Printf.sprintf "iterator %s: loops multiply to %d, extent is %d" it.iname prod
             it.extent))
    t.op.iters

let var t v = lookup t.assignment v
let var_opt t v = Assignment.find_opt t.assignment v

let cann_to_string = function
  | Plain -> ""
  | Unrolled n -> Printf.sprintf " unroll(%d)" n
  | Vectorized n -> Printf.sprintf " vectorize(%d)" n
  | Bound ax -> " " ^ Prim.thread_axis_to_string ax
  | Tensorized -> " tensorized"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "program of %s\n" (Op.to_string t.op));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %s @%s%s\n" s.name s.scope
           (match s.attach with
           | None -> ""
           | Some (p, i) -> Printf.sprintf " (at %s loop %d)" p i));
      List.iter
        (fun (l : cloop) ->
          Buffer.add_string buf
            (Printf.sprintf "    for %s in 0..%d%s  # %s\n" l.name l.extent
               (cann_to_string l.ann) l.origin))
        s.loops)
    t.stages;
  Buffer.contents buf
