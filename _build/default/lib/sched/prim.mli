(** Schedule primitives (Table 1 of the paper).

    A primitive records a program transformation together with the names of
    the CSP variables holding its tunable parameters (split factors, unroll
    lengths, compute locations, ...). The constraint generation rules of
    the Space Generator pattern-match on this data — primitives are the
    common language between template generation and constraint
    generation. *)

type thread_axis = Block_x | Block_y | Thread_x | Thread_y | Vthread | Core

val thread_axis_to_string : thread_axis -> string

type t =
  | Split of { stage : string; loop : string; outer : string; inner : string; factor : string }
      (** [factor] is the CSP variable for the inner extent *)
  | Fuse of { stage : string; loops : string list; into : string }
  | Reorder of { stage : string; order : string list }
  | Cache_read of { tensor : string; scope : string; reader : string; new_stage : string }
  | Cache_write of { tensor : string; scope : string; new_stage : string }
  | Compute_at of { stage : string; parent : string; location : string }
      (** [location] is the CSP variable selecting the attach loop index *)
  | Bind of { stage : string; loop : string; axis : thread_axis }
  | Unroll of { stage : string; loop : string; length : string }
  | Vectorize of { stage : string; loop : string; length : string }
  | Tensorize of { stage : string; intrin : string; m : string; n : string; k : string }
      (** [m]/[n]/[k] are the CSP variables for the intrinsic shape *)
  | Storage_align of { stage : string; pad : string }
      (** shared-memory row padding to avoid bank conflicts *)
  | Parallel of { stage : string; loop : string }

val to_string : t -> string

val stage_of : t -> string
(** The stage a primitive transforms (the reader stage for cache_read). *)
