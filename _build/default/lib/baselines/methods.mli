(** Uniform interface over all program generation methods compared in the
    paper: Heron, the exploration-based baselines (AutoTVM, Ansor, AMOS),
    the polyhedral baseline (AKG), and vendor libraries. *)

module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Env = Heron_search.Env

type run = {
  method_name : string;
  latency_us : float option;  (** best found; [None] if nothing valid *)
  trace : Env.point list;
  invalid : int;  (** invalid candidates explored *)
  steps : int;  (** exploration steps actually used *)
}

type t = {
  name : string;
  supports : Descriptor.t -> Op.t -> bool;
  run : Descriptor.t -> Op.t -> budget:int -> seed:int -> run;
}

val heron : t
(** The full pipeline: constrained space + CGA. *)

val autotvm : t
(** Manual-template paradigm: Heron's structure with memory limits unknown,
    alignment and locations fixed, explored by simulated annealing. *)

val ansor : t
(** Auto-template paradigm without DLA intrinsics: the scalar/SIMT path
    with full structural constraints, explored by a genetic algorithm. *)

val amos : t
(** Mapping-exploration paradigm: tensorized and capacity-aware, but with
    fixed compute locations and no storage alignment, explored by a
    genetic algorithm. *)

val akg : t
(** Polyhedral paradigm: one deterministic heuristic schedule, no search;
    GEMM and 2D convolution only. *)

val vendor : Heron.Hand_tuned.library -> t
(** cuDNN / cuBLAS / PyTorch / oneDNN proxies (no search; [budget]
    ignored). *)

val all_exploration : t list
(** Heron, AutoTVM, Ansor, AMOS. *)

val by_name : string -> t option
