module Op = Heron_tensor.Op
module Gemm_view = Heron_tensor.Gemm_view
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Measure = Heron_dla.Measure
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Baselines = Heron_search.Baselines
module Rng = Heron_util.Rng
module Generator = Heron.Generator
module Pipeline = Heron.Pipeline

type run = {
  method_name : string;
  latency_us : float option;
  trace : Env.point list;
  invalid : int;
  steps : int;
}

type t = {
  name : string;
  supports : Descriptor.t -> Op.t -> bool;
  run : Descriptor.t -> Op.t -> budget:int -> seed:int -> run;
}

let of_result name (r : Env.result) =
  {
    method_name = name;
    latency_us = r.Env.best_latency;
    trace = r.Env.trace;
    invalid = r.Env.invalid;
    steps = List.length r.Env.trace;
  }

let always _ _ = true

let heron =
  {
    name = "Heron";
    supports = always;
    run =
      (fun desc op ~budget ~seed ->
        let tuned = Pipeline.tune ~budget ~seed desc op in
        of_result "Heron" tuned.Pipeline.outcome.Cga.result);
  }

(* Build a baseline environment from a (possibly relaxed) problem, with the
   measurement closure of the *unrelaxed* template: hardware does not care
   which constraints the searcher knew about. *)
let env_of ~seed desc (gen : Generator.t) problem =
  let measure, _ = Pipeline.make_measure desc gen in
  { Env.problem; measure; rng = Rng.create seed }

(* Baseline paradigms use plain weight layouts; the cache-friendly packed
   layouts (oneDNN-style, ~30%) are a Heron-side choice in the paper. *)
let autotvm_pins =
  [ ("pad_a", 0); ("pad_b", 0); ("pad_c", 0); ("loc_a", 0); ("loc_b", 0);
    ("intrin_m", 16); ("intrin_n", 16); ("intrin_k", 16); ("packed_layout", 0) ]

let autotvm =
  {
    name = "AutoTVM";
    supports = always;
    run =
      (fun desc op ~budget ~seed ->
        let gen = Generator.generate ~seed desc op in
        let problem =
          gen.Generator.problem |> Relax.drop_memory_limits |> Relax.fix_vars autotvm_pins
        in
        let env = env_of ~seed desc gen problem in
        (* ~90% of this space is invalid on the DLA (the paper's Fig. 1
           effect); restart quickly when the neighborhood is dead. *)
        let params = { Baselines.default_sa_params with Baselines.restart_after = 5 } in
        of_result "AutoTVM" (Baselines.simulated_annealing ~params env ~budget));
  }

let ansor =
  {
    name = "Ansor";
    supports =
      (fun desc op ->
        (* Ansor has no VTA backend, and needs a scalar/SIMT fallback. *)
        desc.Descriptor.family <> Descriptor.Vta
        &&
        match op.Op.body with Op.Contract _ | Op.Scan _ | Op.Copy _ -> true);
    run =
      (fun desc op ~budget ~seed ->
        let scheduled =
          match Gemm_view.infer op with
          | Some view -> Gemm_view.derived_op op view
          | None -> op
        in
        let gen = Generator.build desc scheduled ~tensorize:false in
        let problem = Relax.fix_vars [ ("packed_layout", 0) ] gen.Generator.problem in
        let env = env_of ~seed desc gen problem in
        of_result "Ansor" (Baselines.genetic env ~budget));
  }

(* AMOS cannot tune compute locations (paper Sec. 7.1): on DL Boost its
   cached stages must sit at the alignment-safe innermost location, whose
   inner loop lengths equal the intrinsic lengths; on TensorCore the outer
   location is the safe default. It cannot use storage_align or the packed
   layouts either. *)
let amos_pins (desc : Descriptor.t) =
  let loc = match desc.Descriptor.family with Descriptor.Dlboost -> 3 | _ -> 0 in
  [ ("pad_a", 0); ("pad_b", 0); ("pad_c", 0); ("loc_a", loc); ("loc_b", loc);
    ("packed_layout", 0) ]

let amos =
  {
    name = "AMOS";
    supports = (fun desc _ -> desc.Descriptor.family <> Descriptor.Vta);
    run =
      (fun desc op ~budget ~seed ->
        let gen = Generator.generate ~seed desc op in
        let problem = Relax.fix_vars (amos_pins desc) gen.Generator.problem in
        let env = env_of ~seed desc gen problem in
        of_result "AMOS" (Baselines.genetic env ~budget));
  }

(* AKG: a deterministic polyhedral-style schedule — balanced tiling chosen
   by rule, decoded to the nearest valid point, measured once. *)
let akg_bias (op : Op.t) =
  ignore op;
  Assignment.of_list
    [ ("intrin_m", 16); ("intrin_n", 16); ("intrin_k", 16); ("tile_i_warp", 2);
      ("tile_j_warp", 2); ("tile_i_tile", 2); ("tile_j_tile", 2); ("tile_r_in", 2);
      ("vec_a", 4); ("vec_b", 4); ("vec_c", 4); ("pad_a", 0); ("pad_b", 0); ("pad_c", 0);
      ("unroll_c", 16); ("loc_a", 0); ("loc_b", 0) ]

let akg =
  {
    name = "AKG";
    supports =
      (fun desc op ->
        desc.Descriptor.family = Descriptor.Tensorcore
        && (op.Op.cname = "gemm" || op.Op.cname = "c2d"));
    run =
      (fun desc op ~budget:_ ~seed ->
        let gen = Generator.generate ~seed desc op in
        let measurer = Measure.create desc in
        let rng = Rng.create seed in
        let latency =
          match Solver.solve_biased rng gen.Generator.problem (akg_bias op) with
          | None -> None
          | Some a -> (
              match Concrete.instantiate gen.Generator.template a with
              | exception Invalid_argument _ -> None
              | prog -> (
                  match Measure.run measurer prog with Ok l -> Some l | Error _ -> None))
        in
        { method_name = "AKG"; latency_us = latency; trace = []; invalid = 0; steps = 1 });
  }

let vendor library =
  let name = Heron.Hand_tuned.library_name library in
  {
    name;
    supports =
      (fun desc _ ->
        match (library, desc.Descriptor.family) with
        | (Heron.Hand_tuned.Cudnn | Heron.Hand_tuned.Cublas | Heron.Hand_tuned.Pytorch),
          Descriptor.Tensorcore -> true
        | Heron.Hand_tuned.Onednn, Descriptor.Dlboost -> true
        | _ -> false);
    run =
      (fun desc op ~budget:_ ~seed ->
        let latency = Heron.Hand_tuned.latency_us ~seed ~library desc op in
        { method_name = name; latency_us = latency; trace = []; invalid = 0; steps = 1 });
  }

let all_exploration = [ heron; autotvm; ansor; amos ]

let by_name n =
  let all =
    [ heron; autotvm; ansor; amos; akg;
      vendor Heron.Hand_tuned.Cudnn; vendor Heron.Hand_tuned.Cublas;
      vendor Heron.Hand_tuned.Pytorch; vendor Heron.Hand_tuned.Onednn ]
  in
  List.find_opt (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii n) all
