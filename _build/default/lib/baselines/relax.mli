(** Search-space relaxations modeling what competing paradigms do NOT
    know about the DLA.

    Dropping a constraint class keeps the same tunables but admits
    assignments that real hardware rejects — recreating the paper's
    low-quality search spaces (e.g. ~95% invalid programs for AutoTVM on
    TensorCore). Fixing a tunable to a single value models a paradigm that
    cannot explore that dimension (e.g. AMOS and compute locations). *)

module Problem = Heron_csp.Problem

val drop_memory_limits : Problem.t -> Problem.t
(** Removes the C5 family: per-tensor footprint products, per-scope sums
    and capacity bounds. *)

val fix_vars : (string * int) list -> Problem.t -> Problem.t
(** Pins each listed variable (when present) to a single value by domain
    restriction; values absent from the domain fall back to the domain
    minimum. *)

val fix_by_prefix : string -> int -> Problem.t -> Problem.t
(** Pins every variable whose name starts with the prefix. *)
