module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Cons = Heron_csp.Cons

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let is_memory_var v =
  starts_with "mem_" v || starts_with "aux_" v && (
    let contains sub =
      let n = String.length sub and m = String.length v in
      let rec go i = i + n <= m && (String.sub v i n = sub || go (i + 1)) in
      go 0
    in
    contains "padded" || contains "dtbytes")
  || (starts_with "arch_" v &&
      let contains sub =
        let n = String.length sub and m = String.length v in
        let rec go i = i + n <= m && (String.sub v i n = sub || go (i + 1)) in
        go 0
      in
      contains "capacity" || contains "min_access")

let rebuild ?(domain_map = fun _ d -> d) ?(keep_cons = fun _ -> true) p =
  let b = Problem.builder () in
  Array.iter
    (fun name ->
      Problem.add_var b ~category:(Problem.category p name) name
        (domain_map name (Problem.domain p name)))
    (Problem.vars p);
  List.iter (fun c -> if keep_cons c then Problem.add_cons b c) (Problem.constraints p);
  Problem.freeze b

let drop_memory_limits p =
  rebuild p ~keep_cons:(fun c -> not (List.exists is_memory_var (Cons.vars c)))

let fix_vars pins p =
  rebuild p ~domain_map:(fun name d ->
      match List.assoc_opt name pins with
      | None -> d
      | Some v ->
          if Domain.mem v d then Domain.singleton v
          else Domain.singleton (Domain.min_value d))

let fix_by_prefix prefix v p =
  rebuild p ~domain_map:(fun name d ->
      if starts_with prefix name then
        if Domain.mem v d then Domain.singleton v else Domain.singleton (Domain.min_value d)
      else d)
