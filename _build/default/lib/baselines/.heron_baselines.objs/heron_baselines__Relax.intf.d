lib/baselines/relax.mli: Heron_csp
