lib/baselines/methods.mli: Heron Heron_dla Heron_search Heron_tensor
