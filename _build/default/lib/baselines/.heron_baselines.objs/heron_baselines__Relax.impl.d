lib/baselines/relax.ml: Array Heron_csp List String
