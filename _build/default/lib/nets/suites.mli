(** Operator shape suites for the paper's evaluation figures.

    Channel counts are kept intrinsic-friendly (multiples of 16), matching
    the layers the paper draws from ResNet-50, Inception-V3, VGG-16 and
    BERT. *)

module Op = Heron_tensor.Op

val table9_gemm : (string * Op.t) list
(** G1–G5 of Table 9 (fp16 for TensorCore). *)

val table9_c2d : (string * Op.t) list
(** C1–C5 of Table 9. *)

val tensorcore_ops : (string * Op.t list) list
(** Figure 6: the nine operator classes, each with several shapes. *)

val dlboost_ops : (string * Op.t list) list
(** Figure 8: the DL Boost operator suite (int8). *)

val vta_ops : (string * Op.t list) list
(** Figure 9: GEMM, C2D and BMM on VTA (int8). *)

val find_op : string -> Op.t option
(** Lookup across all named shapes (e.g. ["G3"], ["C2"]). *)
