(** Layer tables for the four evaluated networks (batch 16).

    Each network is a list of (multiplicity, operator): the distinct
    compute-heavy layers with how many times they occur. End-to-end network
    latency for a method is the multiplicity-weighted sum of its per-layer
    latencies (graph-level effects such as fusion are out of scope, as in
    the paper's per-backend comparison). *)

module Op = Heron_tensor.Op

type network = { net_name : string; layers : (int * Op.t) list }

val resnet50 : network
val vgg16 : network
val inception_v3 : network
val bert : network

val all : network list

val total_flops : network -> float
