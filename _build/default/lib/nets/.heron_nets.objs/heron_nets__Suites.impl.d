lib/nets/suites.ml: Heron_tensor List
