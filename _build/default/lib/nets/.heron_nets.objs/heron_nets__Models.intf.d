lib/nets/models.mli: Heron_tensor
