lib/nets/suites.mli: Heron_tensor
