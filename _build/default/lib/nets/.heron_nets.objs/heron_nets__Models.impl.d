lib/nets/models.ml: Heron_tensor List
