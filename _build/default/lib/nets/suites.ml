module Op = Heron_tensor.Op

let gemm ?(dt = Op.F16) m n k = Op.gemm ~dt ~m ~n ~k ()

let table9_gemm =
  [
    ("G1", gemm 1024 1024 1024);
    ("G2", gemm 4096 4096 4096);
    ("G3", gemm 32 1000 2048);
    ("G4", gemm 32 4096 4096);
    ("G5", gemm 32 1000 4096);
  ]

let c2d ?(dt = Op.F16) n h w ci co r s pad stride =
  Op.conv2d ~dt ~n ~ci ~h ~w ~co ~kh:r ~kw:s ~stride ~pad ()

let table9_c2d =
  [
    ("C1", c2d 1 56 56 64 64 1 1 0 1);
    ("C2", c2d 8 28 28 512 128 1 1 1 1);
    ("C3", c2d 16 14 14 1024 512 1 1 0 2);
    ("C4", c2d 32 7 7 512 512 3 3 0 1);
    ("C5", c2d 32 14 14 256 256 3 3 1 1);
  ]

(* Figure 6 suite: three representative shapes per operator class,
   drawn from ResNet-50 / VGG-16 / Inception-V3 / BERT layers (batch 16). *)
let tensorcore_ops =
  [
    ("GEMM", [ gemm 1024 1024 1024; gemm 4096 4096 4096; gemm 32 1000 4096 ]);
    ( "BMM",
      [
        Op.bmm ~b:192 ~m:128 ~n:128 ~k:64 ();
        Op.bmm ~b:192 ~m:128 ~n:64 ~k:128 ();
        Op.bmm ~b:16 ~m:512 ~n:512 ~k:64 ();
      ] );
    ( "C1D",
      [
        Op.conv1d ~n:16 ~ci:64 ~l:256 ~co:128 ~kl:3 ~stride:1 ~pad:1 ();
        Op.conv1d ~n:16 ~ci:128 ~l:128 ~co:256 ~kl:3 ~stride:2 ~pad:1 ();
        Op.conv1d ~n:16 ~ci:256 ~l:64 ~co:256 ~kl:1 ~stride:1 ~pad:0 ();
      ] );
    ( "C2D",
      [
        c2d 16 56 56 64 64 3 3 1 1;
        c2d 16 28 28 128 128 3 3 1 1;
        c2d 16 14 14 256 256 3 3 1 1;
      ] );
    ( "C3D",
      [
        Op.conv3d ~n:8 ~ci:16 ~d:8 ~h:28 ~w:28 ~co:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ();
        Op.conv3d ~n:8 ~ci:32 ~d:8 ~h:14 ~w:14 ~co:64 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ();
        Op.conv3d ~n:4 ~ci:64 ~d:4 ~h:14 ~w:14 ~co:64 ~kd:1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ();
      ] );
    ( "T2D",
      [
        Op.transposed2d ~n:16 ~ci:64 ~h:14 ~w:14 ~co:64 ~kh:4 ~kw:4 ~stride:2 ~pad:1 ();
        Op.transposed2d ~n:16 ~ci:128 ~h:7 ~w:7 ~co:64 ~kh:4 ~kw:4 ~stride:2 ~pad:1 ();
        Op.transposed2d ~n:8 ~ci:256 ~h:7 ~w:7 ~co:128 ~kh:2 ~kw:2 ~stride:2 ~pad:0 ();
      ] );
    ( "DIL",
      [
        Op.dilated2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:2 ~dilation:2 ();
        Op.dilated2d ~n:16 ~ci:128 ~h:28 ~w:28 ~co:128 ~kh:3 ~kw:3 ~stride:1 ~pad:2 ~dilation:2 ();
        Op.dilated2d ~n:8 ~ci:256 ~h:14 ~w:14 ~co:256 ~kh:3 ~kw:3 ~stride:1 ~pad:4 ~dilation:4 ();
      ] );
    ( "GEMV",
      [
        Op.gemv ~m:1024 ~k:1024 ();
        Op.gemv ~m:4096 ~k:4096 ();
        Op.gemv ~m:1000 ~k:2048 ();
      ] );
    ( "SCAN",
      [ Op.scan ~b:64 ~l:4096 (); Op.scan ~b:512 ~l:1024 (); Op.scan ~b:16 ~l:65536 () ] );
  ]

(* Figure 8 suite: int8 shapes for VNNI. *)
let dlboost_ops =
  let dt = Op.I8 in
  [
    ("GEMM", [ gemm ~dt 1024 1024 1024; gemm ~dt 512 4096 1024; gemm ~dt 32 4096 4096 ]);
    ( "BMM",
      [ Op.bmm ~dt ~b:192 ~m:128 ~n:128 ~k:64 (); Op.bmm ~dt ~b:16 ~m:512 ~n:512 ~k:64 () ] );
    ( "C1D",
      [
        Op.conv1d ~dt ~n:16 ~ci:64 ~l:256 ~co:128 ~kl:3 ~stride:1 ~pad:1 ();
        Op.conv1d ~dt ~n:16 ~ci:128 ~l:128 ~co:256 ~kl:3 ~stride:2 ~pad:1 ();
      ] );
    ( "C2D",
      [ c2d ~dt 16 56 56 64 64 3 3 1 1; c2d ~dt 16 28 28 128 128 3 3 1 1 ] );
    ( "C3D",
      [
        Op.conv3d ~dt ~n:8 ~ci:16 ~d:8 ~h:28 ~w:28 ~co:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ();
      ] );
    ( "T2D",
      [ Op.transposed2d ~dt ~n:16 ~ci:64 ~h:14 ~w:14 ~co:64 ~kh:4 ~kw:4 ~stride:2 ~pad:1 () ] );
    ( "DIL",
      [
        Op.dilated2d ~dt ~n:16 ~ci:64 ~h:28 ~w:28 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:2
          ~dilation:2 ();
      ] );
    ("GEMV", [ Op.gemv ~dt ~m:1024 ~k:1024 (); Op.gemv ~dt ~m:4096 ~k:4096 () ]);
  ]

let vta_ops =
  let dt = Op.I8 in
  [
    ("GEMM", [ gemm ~dt 256 256 256; gemm ~dt 1024 1024 1024; gemm ~dt 64 2048 1024 ]);
    ( "C2D",
      [ c2d ~dt 1 56 56 64 64 3 3 1 1; c2d ~dt 1 28 28 128 128 3 3 1 1 ] );
    ( "BMM",
      [ Op.bmm ~dt ~b:16 ~m:128 ~n:128 ~k:64 (); Op.bmm ~dt ~b:4 ~m:256 ~n:256 ~k:128 () ] );
  ]

let find_op name =
  let named = table9_gemm @ table9_c2d in
  List.assoc_opt name named
