lib/util/ints.mli:
