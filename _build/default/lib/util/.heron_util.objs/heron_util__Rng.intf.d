lib/util/rng.mli:
