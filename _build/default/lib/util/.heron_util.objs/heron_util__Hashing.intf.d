lib/util/hashing.mli:
