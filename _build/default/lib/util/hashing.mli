(** Stable hashing used to derive deterministic per-configuration jitter in
    the DLA performance models. *)

val fnv1a : string -> int64
(** 64-bit FNV-1a hash of a string; stable across runs and platforms. *)

val unit_float : string -> float
(** Deterministic value in [\[0, 1)] derived from the string. *)

val signed_unit : string -> float
(** Deterministic value in [\[-1, 1)] derived from the string. *)
