(** Small integer utilities shared across the code base. *)

val divisors : int -> int list
(** Sorted list of the positive divisors of [n]. Requires [n >= 1]. *)

val pow2s_upto : int -> int list
(** Powers of two [1; 2; ...] not exceeding [n]. Requires [n >= 1]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] rounds the quotient up. Requires [b > 0]. *)

val round_up : int -> int -> int
(** [round_up a m] is the least multiple of [m] that is [>= a]. *)

val product : int list -> int

val is_pow2 : int -> bool

val clamp : lo:int -> hi:int -> int -> int

val log2_floor : int -> int
(** Floor of the base-2 logarithm. Requires the argument [>= 1]. *)
