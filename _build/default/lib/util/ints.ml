let divisors n =
  if n < 1 then invalid_arg "Ints.divisors";
  let rec loop d acc =
    if d * d > n then acc
    else if n mod d = 0 then
      let acc = d :: acc in
      let q = n / d in
      let acc = if q <> d then q :: acc else acc in
      loop (d + 1) acc
    else loop (d + 1) acc
  in
  List.sort_uniq compare (loop 1 [])

let pow2s_upto n =
  if n < 1 then invalid_arg "Ints.pow2s_upto";
  let rec loop p acc = if p > n then List.rev acc else loop (p * 2) (p :: acc) in
  loop 1 []

let ceil_div a b = (a + b - 1) / b

let round_up a m = ceil_div a m * m

let product = List.fold_left ( * ) 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let clamp ~lo ~hi x = max lo (min hi x)

let log2_floor n =
  if n < 1 then invalid_arg "Ints.log2_floor";
  let rec loop k p = if p * 2 > n then k else loop (k + 1) (p * 2) in
  loop 0 1
