let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let unit_float s =
  let h = fnv1a s in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let signed_unit s = (2.0 *. unit_float s) -. 1.0
