(** Implicit-GEMM analysis of a compute (the paper's [Tensorizable]
    condition, Rule S1).

    A contraction of two operands can be mapped onto a matrix-multiply
    intrinsic by classifying its iterators: spatial iterators read only by
    the first operand form the M side, spatial iterators read only by the
    second operand form the N side, spatial iterators read by both are
    batch dimensions, and reduction iterators form the K side. For
    convolutions this is exactly the im2col mapping. *)

type t = {
  batch_iters : string list;
  m_iters : string list;
  n_iters : string list;
  k_iters : string list;
  batch : int;  (** product of batch iterator extents *)
  m : int;
  n : int;
  k : int;
}

val infer : Op.t -> t option
(** [infer op] is [Some view] when [op] is a two-operand contraction
    (hence mappable onto a GEMM intrinsic), [None] otherwise (e.g. scan). *)

val to_string : t -> string

val derived_op : Op.t -> t -> Op.t
(** [derived_op op view] is the implicit-GEMM operator (a plain GEMM, or a
    BMM when batch iterators exist) whose iteration space is the im2col
    flattening of [op]. Its [flops] field keeps the original operator's
    nominal flop count so that utilization losses remain visible. *)
