(** Tensor compute descriptions.

    A compute is a single output tensor defined over a set of named
    iterators (spatial iterators index the output; reduction iterators are
    summed over), mirroring the declarative tensor-expression language of
    deep learning compilers such as TVM. Out-of-range accesses read zero
    (implicit padding), and accesses may carry divisibility guards, which is
    enough to express every operator evaluated in the paper, including
    transposed convolution. *)

type dtype = F16 | F32 | I8 | I32

val dtype_bytes : dtype -> int
val dtype_to_string : dtype -> string

type iter_kind = Spatial | Reduction

type iter = { iname : string; extent : int; kind : iter_kind }

type tensor = { tname : string; shape : int list; dt : dtype }

val numel : tensor -> int
val tensor_bytes : tensor -> int

type access = {
  src : tensor;
  idx : Expr.t list;  (** one index expression per tensor dimension *)
  guards : (Expr.t * int) list;
      (** each [(e, m)] requires [e mod m = 0], else the access reads zero *)
}

type body =
  | Contract of access * access  (** out\[spatial\] += a * b over reductions *)
  | Copy of access               (** out\[spatial\] = a *)
  | Scan of access
      (** out\[..., i\] = sum over j <= i of a\[..., j\] along the last
          spatial iterator *)

type post_op = Relu | Sigmoid | Scale of float
    (** fusable elementwise epilogues (applied by the Always-Inline rule) *)

val apply_post : post_op -> float -> float
val post_op_to_string : post_op -> string

type t = {
  cname : string;
  iters : iter list;
  inputs : tensor list;
  out : tensor;
  out_idx : Expr.t list;
  body : body;
  flops : float;  (** nominal floating-point operations (2 per MAC) *)
  post : post_op option;  (** fused elementwise epilogue, if any *)
}

val fuse_post : t -> post_op -> t
(** [fuse_post op p] fuses the elementwise epilogue [p] into [op] — the
    paper's Always-Inline rule: strictly inlinable consumers are computed
    in place, adding no stage and no intermediate tensor. *)

val spatial_iters : t -> iter list
val reduction_iters : t -> iter list
val find_iter : t -> string -> iter
val to_string : t -> string

(** {2 Operator constructors}

    These build the nine operators of the paper's evaluation. All shapes are
    in elements; convolutions use NCHW layout. *)

val gemm : ?dt:dtype -> m:int -> n:int -> k:int -> unit -> t
val bmm : ?dt:dtype -> b:int -> m:int -> n:int -> k:int -> unit -> t
val gemv : ?dt:dtype -> m:int -> k:int -> unit -> t

val conv1d :
  ?dt:dtype -> n:int -> ci:int -> l:int -> co:int -> kl:int -> stride:int -> pad:int -> unit -> t

val conv2d :
  ?dt:dtype ->
  ?dilation:int ->
  n:int -> ci:int -> h:int -> w:int -> co:int -> kh:int -> kw:int -> stride:int -> pad:int ->
  unit -> t

val conv3d :
  ?dt:dtype ->
  n:int -> ci:int -> d:int -> h:int -> w:int -> co:int -> kd:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> unit -> t

val dilated2d :
  ?dt:dtype ->
  n:int -> ci:int -> h:int -> w:int -> co:int -> kh:int -> kw:int -> stride:int -> pad:int ->
  dilation:int -> unit -> t

val transposed2d :
  ?dt:dtype ->
  n:int -> ci:int -> h:int -> w:int -> co:int -> kh:int -> kw:int -> stride:int -> pad:int ->
  unit -> t

val scan : ?dt:dtype -> b:int -> l:int -> unit -> t

val conv_out_dim : in_dim:int -> kernel:int -> stride:int -> pad:int -> dilation:int -> int
(** Output extent of a convolution along one axis. *)
