type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

let var s = Var s
let const n = Const n
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)

let rec eval env = function
  | Var s -> env s
  | Const n -> n
  | Add (a, b) -> Stdlib.( + ) (eval env a) (eval env b)
  | Sub (a, b) -> Stdlib.( - ) (eval env a) (eval env b)
  | Mul (a, b) -> Stdlib.( * ) (eval env a) (eval env b)
  | Div (a, b) -> Stdlib.( / ) (eval env a) (eval env b)

let vars e =
  let rec collect acc = function
    | Var s -> s :: acc
    | Const _ -> acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> collect (collect acc a) b
  in
  List.sort_uniq compare (collect [] e)

let rec to_string = function
  | Var s -> s
  | Const n -> string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (to_string a) (to_string b)
