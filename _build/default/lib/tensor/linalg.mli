(** Direct, hand-written kernels used to cross-check the generic reference
    interpreter in tests. *)

val gemm : m:int -> n:int -> k:int -> float array -> float array -> float array
(** [gemm ~m ~n ~k a b] with [a] of size m*k and [b] of size k*n. *)

val conv2d :
  n:int -> ci:int -> h:int -> w:int -> co:int -> kh:int -> kw:int -> stride:int -> pad:int ->
  float array -> float array -> float array
(** NCHW convolution matching {!Op.conv2d} with dilation 1. *)

val prefix_sum : b:int -> l:int -> float array -> float array
