(** Integer index expressions used by tensor accesses.

    Expressions are built over iterator names and constants; they are the
    affine (plus division, for transposed convolution) indices with which a
    compute stage reads its operands. *)

type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** integer division, used by strided/transposed accesses *)

val var : string -> t
val const : int -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val eval : (string -> int) -> t -> int
(** [eval env e] evaluates [e], looking iterator values up in [env]. *)

val vars : t -> string list
(** Sorted, deduplicated iterator names occurring in the expression. *)

val to_string : t -> string
