type dtype = F16 | F32 | I8 | I32

let dtype_bytes = function F16 -> 2 | F32 -> 4 | I8 -> 1 | I32 -> 4
let dtype_to_string = function F16 -> "f16" | F32 -> "f32" | I8 -> "i8" | I32 -> "i32"

type iter_kind = Spatial | Reduction

type iter = { iname : string; extent : int; kind : iter_kind }

type tensor = { tname : string; shape : int list; dt : dtype }

let numel t = List.fold_left ( * ) 1 t.shape
let tensor_bytes t = numel t * dtype_bytes t.dt

type access = {
  src : tensor;
  idx : Expr.t list;
  guards : (Expr.t * int) list;
}

type body =
  | Contract of access * access
  | Copy of access
  | Scan of access

type post_op = Relu | Sigmoid | Scale of float

let apply_post = function
  | Relu -> fun x -> if x > 0.0 then x else 0.0
  | Sigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | Scale c -> fun x -> c *. x

let post_op_to_string = function
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Scale c -> Printf.sprintf "scale(%g)" c

type t = {
  cname : string;
  iters : iter list;
  inputs : tensor list;
  out : tensor;
  out_idx : Expr.t list;
  body : body;
  flops : float;
  post : post_op option;
      (* fused elementwise epilogue (the Always-Inline rule applies it in
         the consumer without materializing an intermediate) *)
}

let fuse_post op p =
  {
    op with
    cname = op.cname ^ "+" ^ post_op_to_string p;
    post = Some p;
    flops = op.flops +. float_of_int (List.fold_left ( * ) 1 op.out.shape);
  }

let spatial_iters t = List.filter (fun i -> i.kind = Spatial) t.iters
let reduction_iters t = List.filter (fun i -> i.kind = Reduction) t.iters

let find_iter t name =
  match List.find_opt (fun i -> i.iname = name) t.iters with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Op.find_iter: no iterator %s in %s" name t.cname)

let to_string t =
  let iter_str i =
    Printf.sprintf "%s:%d%s" i.iname i.extent (if i.kind = Reduction then "r" else "")
  in
  Printf.sprintf "%s[%s] <- %s" t.cname
    (String.concat ", " (List.map iter_str t.iters))
    (match t.body with
    | Contract (a, b) -> Printf.sprintf "%s * %s" a.src.tname b.src.tname
    | Copy a -> a.src.tname
    | Scan a -> Printf.sprintf "scan(%s)" a.src.tname)

let sp name extent = { iname = name; extent; kind = Spatial }
let rd name extent = { iname = name; extent; kind = Reduction }
let v = Expr.var
let c = Expr.const

let access src idx = { src; idx; guards = [] }

let conv_out_dim ~in_dim ~kernel ~stride ~pad ~dilation =
  ((in_dim + (2 * pad) - (dilation * (kernel - 1)) - 1) / stride) + 1

let gemm ?(dt = F16) ~m ~n ~k () =
  let a = { tname = "A"; shape = [ m; k ]; dt }
  and b = { tname = "B"; shape = [ k; n ]; dt }
  and out = { tname = "C"; shape = [ m; n ]; dt = F32 } in
  {
    cname = "gemm";
    iters = [ sp "i" m; sp "j" n; rd "r" k ];
    inputs = [ a; b ];
    out;
    out_idx = [ v "i"; v "j" ];
    body = Contract (access a [ v "i"; v "r" ], access b [ v "r"; v "j" ]);
    flops = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k;
    post = None;
  }

let bmm ?(dt = F16) ~b ~m ~n ~k () =
  let x = { tname = "A"; shape = [ b; m; k ]; dt }
  and y = { tname = "B"; shape = [ b; k; n ]; dt }
  and out = { tname = "C"; shape = [ b; m; n ]; dt = F32 } in
  {
    cname = "bmm";
    iters = [ sp "b" b; sp "i" m; sp "j" n; rd "r" k ];
    inputs = [ x; y ];
    out;
    out_idx = [ v "b"; v "i"; v "j" ];
    body = Contract (access x [ v "b"; v "i"; v "r" ], access y [ v "b"; v "r"; v "j" ]);
    flops = 2.0 *. float_of_int b *. float_of_int m *. float_of_int n *. float_of_int k;
    post = None;
  }

let gemv ?(dt = F16) ~m ~k () =
  let a = { tname = "A"; shape = [ m; k ]; dt }
  and x = { tname = "X"; shape = [ k ]; dt }
  and out = { tname = "Y"; shape = [ m ]; dt = F32 } in
  {
    cname = "gemv";
    iters = [ sp "i" m; rd "r" k ];
    inputs = [ a; x ];
    out;
    out_idx = [ v "i" ];
    body = Contract (access a [ v "i"; v "r" ], access x [ v "r" ]);
    flops = 2.0 *. float_of_int m *. float_of_int k;
    post = None;
  }

let conv1d ?(dt = F16) ~n ~ci ~l ~co ~kl ~stride ~pad () =
  let ol = conv_out_dim ~in_dim:l ~kernel:kl ~stride ~pad ~dilation:1 in
  let x = { tname = "X"; shape = [ n; ci; l ]; dt }
  and w = { tname = "W"; shape = [ co; ci; kl ]; dt }
  and out = { tname = "Y"; shape = [ n; co; ol ]; dt = F32 } in
  let total_flops = 2.0 *. float_of_int (n * co * ol * ci * kl) in
  let open Expr in
  {
    cname = "c1d";
    iters = [ sp "n" n; sp "co" co; sp "ol" ol; rd "rc" ci; rd "rl" kl ];
    inputs = [ x; w ];
    out;
    out_idx = [ var "n"; var "co"; var "ol" ];
    body =
      Contract
        ( access x [ var "n"; var "rc"; (var "ol" * const stride) + var "rl" - const pad ],
          access w [ var "co"; var "rc"; var "rl" ] );
    flops = total_flops;
    post = None;
  }

let conv_nd_2 ~name ~dt ~dilation ~n ~ci ~h ~w:w_dim ~co ~kh ~kw ~stride ~pad ~guards_of =
  let oh = conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad ~dilation in
  let ow = conv_out_dim ~in_dim:w_dim ~kernel:kw ~stride ~pad ~dilation in
  let x = { tname = "X"; shape = [ n; ci; h; w_dim ]; dt }
  and wt = { tname = "W"; shape = [ co; ci; kh; kw ]; dt }
  and out = { tname = "Y"; shape = [ n; co; oh; ow ]; dt = F32 } in
  let total_flops = 2.0 *. float_of_int (n * co * oh * ow * ci * kh * kw) in
  let open Expr in
  let ih = (var "oh" * const stride) + (var "rh" * const dilation) - const pad in
  let iw = (var "ow" * const stride) + (var "rw" * const dilation) - const pad in
  {
    cname = name;
    iters =
      [ sp "n" n; sp "co" co; sp "oh" oh; sp "ow" ow; rd "rc" ci; rd "rh" kh; rd "rw" kw ];
    inputs = [ x; wt ];
    out;
    out_idx = [ var "n"; var "co"; var "oh"; var "ow" ];
    body =
      Contract
        ( { src = x; idx = [ var "n"; var "rc"; ih; iw ]; guards = guards_of ih iw },
          access wt [ var "co"; var "rc"; var "rh"; var "rw" ] );
    flops = total_flops;
    post = None;
  }

let conv2d ?(dt = F16) ?(dilation = 1) ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad () =
  conv_nd_2 ~name:"c2d" ~dt ~dilation ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad
    ~guards_of:(fun _ _ -> [])

let dilated2d ?(dt = F16) ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad ~dilation () =
  let op = conv_nd_2 ~name:"dil" ~dt ~dilation ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad
      ~guards_of:(fun _ _ -> [])
  in
  op

let conv3d ?(dt = F16) ~n ~ci ~d ~h ~w ~co ~kd ~kh ~kw ~stride ~pad () =
  let od = conv_out_dim ~in_dim:d ~kernel:kd ~stride ~pad ~dilation:1 in
  let oh = conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad ~dilation:1 in
  let ow = conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad ~dilation:1 in
  let x = { tname = "X"; shape = [ n; ci; d; h; w ]; dt }
  and wt = { tname = "W"; shape = [ co; ci; kd; kh; kw ]; dt }
  and out = { tname = "Y"; shape = [ n; co; od; oh; ow ]; dt = F32 } in
  let total_flops = 2.0 *. float_of_int (n * co * od * oh * ow * ci * kd * kh * kw) in
  let open Expr in
  let idx ax red = (var ax * const stride) + var red - const pad in
  {
    cname = "c3d";
    iters =
      [
        sp "n" n; sp "co" co; sp "od" od; sp "oh" oh; sp "ow" ow;
        rd "rc" ci; rd "rd" kd; rd "rh" kh; rd "rw" kw;
      ];
    inputs = [ x; wt ];
    out;
    out_idx = [ var "n"; var "co"; var "od"; var "oh"; var "ow" ];
    body =
      Contract
        ( access x [ var "n"; var "rc"; idx "od" "rd"; idx "oh" "rh"; idx "ow" "rw" ],
          access wt [ var "co"; var "rc"; var "rd"; var "rh"; var "rw" ] );
    flops = total_flops;
    post = None;
  }

(* Transposed convolution expressed as a convolution over the
   stride-dilated input: an input element contributes at output position
   oh = ih*stride - pad + kh', so reading back we index the input at
   (oh + pad - kh') / stride guarded by divisibility. *)
let transposed2d ?(dt = F16) ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad () =
  let oh = ((h - 1) * stride) - (2 * pad) + kh in
  let ow = ((w - 1) * stride) - (2 * pad) + kw in
  let x = { tname = "X"; shape = [ n; ci; h; w ]; dt }
  and wt = { tname = "W"; shape = [ ci; co; kh; kw ]; dt }
  and out = { tname = "Y"; shape = [ n; co; oh; ow ]; dt = F32 } in
  let total_flops =
    2.0 *. float_of_int (n * co * oh * ow * ci * kh * kw) /. float_of_int (stride * stride)
  in
  let open Expr in
  let ih_num = var "oh" + const pad - var "rh" in
  let iw_num = var "ow" + const pad - var "rw" in
  let ih = ih_num / const stride and iw = iw_num / const stride in
  {
    cname = "t2d";
    iters =
      [ sp "n" n; sp "co" co; sp "oh" oh; sp "ow" ow; rd "rc" ci; rd "rh" kh; rd "rw" kw ];
    inputs = [ x; wt ];
    out;
    out_idx = [ var "n"; var "co"; var "oh"; var "ow" ];
    body =
      Contract
        ( { src = x; idx = [ var "n"; var "rc"; ih; iw ];
            guards = [ (ih_num, stride); (iw_num, stride) ] },
          access wt [ var "rc"; var "co"; var "rh"; var "rw" ] );
    flops = total_flops;
    post = None;
  }

let scan ?(dt = F32) ~b ~l () =
  let x = { tname = "X"; shape = [ b; l ]; dt }
  and out = { tname = "Y"; shape = [ b; l ]; dt } in
  {
    cname = "scan";
    iters = [ sp "b" b; sp "i" l ];
    inputs = [ x ];
    out;
    out_idx = [ v "b"; v "i" ];
    body = Scan (access x [ v "b"; v "i" ]);
    flops = float_of_int (b * l);
    post = None;
  }

let _ = c
