(** Generic reference interpreter for compute descriptions.

    Executes a compute naively (directly expanding all loop indices) over
    float arrays, producing the ground-truth output used to validate both
    the operator constructors and scheduled programs. Intended for small
    test shapes only. *)

val run : Op.t -> (string * float array) list -> float array
(** [run op inputs] evaluates [op] with the named input buffers (row-major,
    one per [op.inputs]) and returns the row-major output buffer.

    @raise Invalid_argument if an input is missing or has the wrong size. *)

val input_sizes : Op.t -> (string * int) list
(** Names and element counts of the operator's inputs, in declaration
    order. *)

val output_size : Op.t -> int
