let gemm ~m ~n ~k a b =
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for r = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + r) *. b.((r * n) + j))
      done;
      out.((i * n) + j) <- !acc
    done
  done;
  out

let conv2d ~n ~ci ~h ~w ~co ~kh ~kw ~stride ~pad x wt =
  let oh = Op.conv_out_dim ~in_dim:h ~kernel:kh ~stride ~pad ~dilation:1 in
  let ow = Op.conv_out_dim ~in_dim:w ~kernel:kw ~stride ~pad ~dilation:1 in
  let out = Array.make (n * co * oh * ow) 0.0 in
  for bn = 0 to n - 1 do
    for oc = 0 to co - 1 do
      for y = 0 to oh - 1 do
        for x0 = 0 to ow - 1 do
          let acc = ref 0.0 in
          for ic = 0 to ci - 1 do
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (y * stride) + ky - pad and ix = (x0 * stride) + kx - pad in
                if iy >= 0 && iy < h && ix >= 0 && ix < w then
                  acc :=
                    !acc
                    +. x.((((((bn * ci) + ic) * h) + iy) * w) + ix)
                       *. wt.((((((oc * ci) + ic) * kh) + ky) * kw) + kx)
              done
            done
          done;
          out.((((((bn * co) + oc) * oh) + y) * ow) + x0) <- !acc
        done
      done
    done
  done;
  out

let prefix_sum ~b ~l x =
  let out = Array.make (b * l) 0.0 in
  for i = 0 to b - 1 do
    let acc = ref 0.0 in
    for j = 0 to l - 1 do
      acc := !acc +. x.((i * l) + j);
      out.((i * l) + j) <- !acc
    done
  done;
  out
