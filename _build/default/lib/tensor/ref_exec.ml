let input_sizes (op : Op.t) = List.map (fun t -> (t.Op.tname, Op.numel t)) op.inputs

let output_size (op : Op.t) = Op.numel op.out

let flat_index shape idx =
  (* Returns None when any coordinate is out of range (implicit zero pad). *)
  let rec loop acc shape idx =
    match (shape, idx) with
    | [], [] -> Some acc
    | d :: shape', i :: idx' ->
        if i < 0 || i >= d then None else loop ((acc * d) + i) shape' idx'
    | _ -> invalid_arg "Ref_exec: rank mismatch"
  in
  loop 0 shape idx

let read_access env buffers (a : Op.access) =
  let guarded =
    List.for_all (fun (e, m) -> Expr.eval env e mod m = 0) a.guards
  in
  if not guarded then 0.0
  else
    let idx = List.map (Expr.eval env) a.idx in
    match flat_index a.src.shape idx with
    | None -> 0.0
    | Some i -> (List.assoc a.src.tname buffers).(i)

let run (op : Op.t) inputs =
  List.iter
    (fun (t : Op.tensor) ->
      match List.assoc_opt t.tname inputs with
      | None -> invalid_arg (Printf.sprintf "Ref_exec.run: missing input %s" t.tname)
      | Some buf ->
          if Array.length buf <> Op.numel t then
            invalid_arg (Printf.sprintf "Ref_exec.run: input %s has size %d, expected %d"
                t.tname (Array.length buf) (Op.numel t)))
    op.inputs;
  let out = Array.make (Op.numel op.out) 0.0 in
  let values = Hashtbl.create 16 in
  let env name =
    match Hashtbl.find_opt values name with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Ref_exec.run: unbound iterator %s" name)
  in
  let spatial = Op.spatial_iters op and reduction = Op.reduction_iters op in
  let rec iterate iters body =
    match iters with
    | [] -> body ()
    | (it : Op.iter) :: rest ->
        for v = 0 to it.extent - 1 do
          Hashtbl.replace values it.iname v;
          iterate rest body
        done
  in
  let post =
    match op.post with Some p -> Op.apply_post p | None -> fun x -> x
  in
  let write_point () =
    let out_idx = List.map (Expr.eval env) op.out_idx in
    match flat_index op.out.shape out_idx with
    | None -> invalid_arg "Ref_exec.run: output index out of range"
    | Some oi -> (
        match op.body with
        | Op.Contract (a, b) ->
            let acc = ref 0.0 in
            iterate reduction (fun () ->
                acc := !acc +. (read_access env inputs a *. read_access env inputs b));
            out.(oi) <- post (out.(oi) +. !acc)
        | Op.Copy a -> out.(oi) <- post (read_access env inputs a)
        | Op.Scan a ->
            (* Accumulate along the last spatial iterator: recompute the
               prefix sum for this point. Quadratic, but only used on test
               shapes. *)
            let last =
              match List.rev spatial with
              | it :: _ -> it
              | [] -> invalid_arg "Ref_exec.run: scan without spatial iterators"
            in
            let here = env last.iname in
            let acc = ref 0.0 in
            for j = 0 to here do
              Hashtbl.replace values last.iname j;
              acc := !acc +. read_access env inputs a
            done;
            Hashtbl.replace values last.iname here;
            out.(oi) <- post !acc)
  in
  iterate spatial write_point;
  out
