type t = {
  batch_iters : string list;
  m_iters : string list;
  n_iters : string list;
  k_iters : string list;
  batch : int;
  m : int;
  n : int;
  k : int;
}

let access_vars (a : Op.access) =
  List.concat_map Expr.vars a.idx |> List.sort_uniq compare

let infer (op : Op.t) =
  match op.body with
  | Op.Copy _ | Op.Scan _ -> None
  | Op.Contract (a, b) ->
      let va = access_vars a and vb = access_vars b in
      let mem v l = List.mem v l in
      let classify (it : Op.iter) =
        match it.kind with
        | Op.Reduction -> `K
        | Op.Spatial ->
            let ina = mem it.iname va and inb = mem it.iname vb in
            if ina && inb then `Batch else if inb then `N else `M
      in
      let batch_iters = ref [] and m_iters = ref [] and n_iters = ref [] and k_iters = ref [] in
      List.iter
        (fun it ->
          match classify it with
          | `Batch -> batch_iters := it.Op.iname :: !batch_iters
          | `M -> m_iters := it.iname :: !m_iters
          | `N -> n_iters := it.iname :: !n_iters
          | `K -> k_iters := it.iname :: !k_iters)
        op.iters;
      let extent_prod names =
        List.fold_left (fun acc n -> acc * (Op.find_iter op n).extent) 1 names
      in
      let batch_iters = List.rev !batch_iters
      and m_iters = List.rev !m_iters
      and n_iters = List.rev !n_iters
      and k_iters = List.rev !k_iters in
      Some
        {
          batch_iters;
          m_iters;
          n_iters;
          k_iters;
          batch = extent_prod batch_iters;
          m = extent_prod m_iters;
          n = extent_prod n_iters;
          k = extent_prod k_iters;
        }

let to_string v =
  Printf.sprintf "gemm-view{batch=%d m=%d n=%d k=%d; M=[%s] N=[%s] K=[%s]}" v.batch v.m v.n
    v.k
    (String.concat "," v.m_iters)
    (String.concat "," v.n_iters)
    (String.concat "," v.k_iters)

let derived_op (op : Op.t) v =
  let derived =
    if v.batch > 1 then Op.bmm ~dt:(List.hd op.inputs).Op.dt ~b:v.batch ~m:v.m ~n:v.n ~k:v.k ()
    else Op.gemm ~dt:(List.hd op.inputs).Op.dt ~m:v.m ~n:(max v.n 1) ~k:v.k ()
  in
  { derived with Op.cname = op.cname ^ "/im2col"; Op.flops = op.flops; Op.post = op.post }
