lib/tensor/expr.mli:
