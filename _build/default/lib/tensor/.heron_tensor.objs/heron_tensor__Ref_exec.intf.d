lib/tensor/ref_exec.mli: Op
