lib/tensor/expr.ml: List Printf Stdlib
