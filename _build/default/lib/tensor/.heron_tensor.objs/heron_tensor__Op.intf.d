lib/tensor/op.mli: Expr
