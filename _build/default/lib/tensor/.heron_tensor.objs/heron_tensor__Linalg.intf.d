lib/tensor/linalg.mli:
