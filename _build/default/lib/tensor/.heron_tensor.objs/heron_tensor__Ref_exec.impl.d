lib/tensor/ref_exec.ml: Array Expr Hashtbl List Op Printf
