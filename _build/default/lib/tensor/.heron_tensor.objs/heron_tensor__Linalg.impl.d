lib/tensor/linalg.ml: Array Op
