lib/tensor/gemm_view.mli: Op
