lib/tensor/op.ml: Expr List Printf String
