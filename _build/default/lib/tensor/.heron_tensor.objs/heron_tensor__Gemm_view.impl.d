lib/tensor/gemm_view.ml: Expr List Op Printf String
