type t =
  | Bad_intrinsic_shape of (int * int * int)
  | Missing_tensorize
  | Spm_overflow of { scope : string; used : int; cap : int }
  | Bad_vector_length of int
  | Bad_loop_order of string
  | Too_many_threads of int
  | Coverage of string
  | Unsatisfied_constraint of string

let to_string = function
  | Bad_intrinsic_shape (m, n, k) ->
      Printf.sprintf "intrinsic shape (%d, %d, %d) unsupported by the functional unit" m n k
  | Missing_tensorize -> "the accelerator has no scalar path; computation must be tensorized"
  | Spm_overflow { scope; used; cap } ->
      Printf.sprintf "scratchpad %S overflow: %d bytes used, capacity %d" scope used cap
  | Bad_vector_length v -> Printf.sprintf "vectorized access of width %d unsupported" v
  | Bad_loop_order why -> "loop order violates write timing: " ^ why
  | Too_many_threads n -> Printf.sprintf "%d threads per block exceeds the hardware limit" n
  | Coverage why -> "loop nest does not cover the iteration space: " ^ why
  | Unsatisfied_constraint c -> "assignment violates constraint " ^ c
