type family = Tensorcore | Dlboost | Vta

type t = {
  dname : string;
  family : family;
  units : int;
  max_warps_per_unit : int;
  clock_ghz : float;
  intrin_name : string;
  intrin_shapes : (int * int * int) list;
  intrin_mnk_product : int option;
  intrin_flops_per_cycle : float;
  fallback_flops_per_cycle : float;
  spm_capacity : (string * int) list;
  mem_bw_gbs : float;
  spm_bw_factor : float;
  vector_lengths : int list;
  max_threads_per_block : int;
  launch_overhead_us : float;
  noise : float;
}

let scope_capacity t scope = List.assoc_opt scope t.spm_capacity

let has_intrinsic t = t.intrin_shapes <> []

let peak_tflops t =
  t.intrin_flops_per_cycle *. float_of_int t.units *. t.clock_ghz /. 1000.0

(* All wmma shapes with m, n, k in {8, 16, 32} and m*n*k = 4096. *)
let wmma_shapes =
  let candidates = [ 8; 16; 32 ] in
  List.concat_map
    (fun m ->
      List.concat_map
        (fun n ->
          List.filter_map
            (fun k -> if m * n * k = 4096 then Some (m, n, k) else None)
            candidates)
        candidates)
    candidates

let tensorcore ~dname ~units ~clock_ghz ~tc_tflops ~cuda_tflops ~smem ~bw =
  {
    dname;
    family = Tensorcore;
    units;
    max_warps_per_unit = 64;
    clock_ghz;
    intrin_name = "wmma::mma_sync";
    intrin_shapes = wmma_shapes;
    intrin_mnk_product = Some 4096;
    intrin_flops_per_cycle = tc_tflops *. 1000.0 /. (float_of_int units *. clock_ghz);
    fallback_flops_per_cycle = cuda_tflops *. 1000.0 /. (float_of_int units *. clock_ghz);
    spm_capacity =
      [ ("shared", smem); ("wmma.a", 64 * 1024); ("wmma.b", 64 * 1024); ("wmma.acc", 64 * 1024) ];
    mem_bw_gbs = bw;
    spm_bw_factor = 12.0;
    vector_lengths = [ 1; 2; 4; 8 ];
    max_threads_per_block = 1024;
    launch_overhead_us = 4.0;
    noise = 0.04;
  }

let v100 =
  tensorcore ~dname:"tensorcore-v100" ~units:80 ~clock_ghz:1.53 ~tc_tflops:112.0
    ~cuda_tflops:31.4 ~smem:(48 * 1024) ~bw:900.0

let t4 =
  tensorcore ~dname:"tensorcore-t4" ~units:40 ~clock_ghz:1.59 ~tc_tflops:65.0 ~cuda_tflops:16.3
    ~smem:(48 * 1024) ~bw:320.0

let a100 =
  tensorcore ~dname:"tensorcore-a100" ~units:108 ~clock_ghz:1.41 ~tc_tflops:312.0
    ~cuda_tflops:78.0 ~smem:(164 * 1024) ~bw:1555.0

let dlboost =
  {
    dname = "dlboost-gold6240";
    family = Dlboost;
    units = 18;
    max_warps_per_unit = 2;
    clock_ghz = 2.6;
    intrin_name = "avx512.vnni.vpdpbusd";
    intrin_shapes = [ (1, 16, 4) ];
    intrin_mnk_product = None;
    intrin_flops_per_cycle = 23_000.0 /. (18.0 *. 2.6);
    fallback_flops_per_cycle = 64.0;
    spm_capacity = [ ("l1", 32 * 1024); ("l2", 1024 * 1024) ];
    mem_bw_gbs = 120.0;
    spm_bw_factor = 8.0;
    vector_lengths = [ 1; 4; 16; 64 ];
    max_threads_per_block = 1;
    launch_overhead_us = 1.0;
    noise = 0.05;
  }

let vta =
  {
    dname = "vta-pynq";
    family = Vta;
    units = 1;
    max_warps_per_unit = 1;
    clock_ghz = 0.1;
    intrin_name = "vta.gemm";
    intrin_shapes = [ (1, 16, 16) ];
    intrin_mnk_product = None;
    intrin_flops_per_cycle = 512.0;
    fallback_flops_per_cycle = 0.0;
    spm_capacity = [ ("vta.inp", 32 * 1024); ("vta.wgt", 256 * 1024); ("vta.acc", 128 * 1024) ];
    mem_bw_gbs = 1.0;
    spm_bw_factor = 16.0;
    vector_lengths = [ 1; 16 ];
    max_threads_per_block = 1;
    launch_overhead_us = 20.0;
    noise = 0.03;
  }

(* Google TPU (v1-flavored): a 256x256 systolic array fed from a unified
   buffer; the Table 3 constraints (fixed (1,256,256) tiles, per-operand
   buffer capacity) map onto the single-scope staging rules. *)
let tpu =
  {
    dname = "tpu-v1";
    family = Dlboost;
    units = 1;
    max_warps_per_unit = 1;
    clock_ghz = 0.7;
    intrin_name = "tpu.matmul256";
    intrin_shapes = [ (1, 256, 256) ];
    intrin_mnk_product = None;
    intrin_flops_per_cycle = 131072.0;
    fallback_flops_per_cycle = 0.0;
    spm_capacity = [ ("l1", 4 * 1024 * 1024); ("l2", 24 * 1024 * 1024) ];
    mem_bw_gbs = 34.0;
    spm_bw_factor = 20.0;
    vector_lengths = [ 1; 256 ];
    max_threads_per_block = 1;
    launch_overhead_us = 50.0;
    noise = 0.02;
  }

(* Cambricon-flavored accelerator: flexible matrix-unit tile shapes and the
   Table 3 buffer constraints (Vout*3 <= 64K; Vout + Vout*Vin + Vin <= 768K
   approximated by the per-scope capacities below). *)
let cambricon =
  {
    dname = "cambricon-mlu";
    family = Dlboost;
    units = 4;
    max_warps_per_unit = 1;
    clock_ghz = 1.0;
    intrin_name = "mlu.conv_mm";
    intrin_shapes = [ (1, 16, 16); (1, 32, 32); (1, 64, 64) ];
    intrin_mnk_product = None;
    intrin_flops_per_cycle = 4096.0;
    fallback_flops_per_cycle = 128.0;
    spm_capacity = [ ("l1", 64 * 1024 / 3); ("l2", 768 * 1024) ];
    mem_bw_gbs = 100.0;
    spm_bw_factor = 12.0;
    vector_lengths = [ 1; 16; 32; 64 ];
    max_threads_per_block = 1;
    launch_overhead_us = 8.0;
    noise = 0.04;
  }

let family_to_string = function
  | Tensorcore -> "tensorcore"
  | Dlboost -> "dlboost"
  | Vta -> "vta"

let to_string t =
  Printf.sprintf "%s (%s): %d units @ %.2f GHz, %.1f TFLOPS peak, %.0f GB/s" t.dname
    (family_to_string t.family) t.units t.clock_ghz (peak_tflops t) t.mem_bw_gbs
