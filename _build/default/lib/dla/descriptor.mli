(** DLA descriptors: the architectural parameters and constraints of each
    simulated accelerator.

    A descriptor is both the configuration of the analytic performance
    model and the source of truth the validator enforces; the Heron Space
    Generator reads the same fields when emitting constraints (Rule C5/C6),
    which is exactly the paper's customization story. *)

type family = Tensorcore | Dlboost | Vta

type t = {
  dname : string;
  family : family;
  units : int;  (** SMs / cores / compute units *)
  max_warps_per_unit : int;  (** resident warp (or thread) limit *)
  clock_ghz : float;
  intrin_name : string;
  intrin_shapes : (int * int * int) list;  (** allowed intrinsic (m, n, k) *)
  intrin_mnk_product : int option;  (** e.g. m*n*k = 4096 on TensorCore *)
  intrin_flops_per_cycle : float;  (** per unit, using the intrinsic *)
  fallback_flops_per_cycle : float;  (** per unit, scalar/SIMT fallback; 0 if none *)
  spm_capacity : (string * int) list;  (** scope name -> bytes *)
  mem_bw_gbs : float;  (** off-chip bandwidth *)
  spm_bw_factor : float;  (** on-chip bandwidth as a multiple of off-chip *)
  vector_lengths : int list;  (** legal vectorized access widths *)
  max_threads_per_block : int;
  launch_overhead_us : float;
  noise : float;  (** relative amplitude of deterministic measurement jitter *)
}

val scope_capacity : t -> string -> int option
val has_intrinsic : t -> bool
val peak_tflops : t -> float
(** Peak intrinsic throughput implied by the descriptor. *)

val v100 : t
val t4 : t
val a100 : t
val dlboost : t
val vta : t

val tpu : t
(** TPU-v1-flavored systolic accelerator (paper Table 3: fixed
    (1, 256, 256) tiles, unified-buffer capacity constraints). *)

val cambricon : t
(** Cambricon-flavored accelerator (paper Table 3: flexible matrix tile
    shapes, dual buffer-capacity constraints). *)

val to_string : t -> string
