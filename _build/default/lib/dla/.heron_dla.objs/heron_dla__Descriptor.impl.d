lib/dla/descriptor.ml: List Printf
