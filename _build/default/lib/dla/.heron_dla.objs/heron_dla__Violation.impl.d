lib/dla/violation.ml: Printf
