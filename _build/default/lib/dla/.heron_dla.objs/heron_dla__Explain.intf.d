lib/dla/explain.mli: Descriptor Heron_sched
