lib/dla/measure.ml: Descriptor Heron_csp Heron_sched Heron_util Perf_model Printf Validate Violation
