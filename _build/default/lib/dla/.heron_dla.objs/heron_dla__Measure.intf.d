lib/dla/measure.mli: Descriptor Heron_sched Violation
