lib/dla/validate.ml: Descriptor Heron_sched Heron_tensor List Printf Violation
