lib/dla/explain.ml: Buffer Descriptor Heron_sched List Perf_model Printf Validate Violation
