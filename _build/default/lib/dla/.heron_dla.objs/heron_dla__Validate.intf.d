lib/dla/validate.mli: Descriptor Heron_sched Violation
