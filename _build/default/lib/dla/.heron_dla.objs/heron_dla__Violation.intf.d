lib/dla/violation.mli:
