lib/dla/perf_model.ml: Descriptor Heron_csp Heron_sched Heron_tensor Heron_util List
