lib/dla/descriptor.mli:
