lib/dla/perf_model.mli: Descriptor Heron_sched Heron_tensor
