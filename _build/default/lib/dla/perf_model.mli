(** Analytic performance models for the simulated DLAs.

    The model composes three time components — intrinsic/scalar compute,
    off-chip traffic, and on-chip (scratchpad) traffic — from the concrete
    program's loop structure: grid/thread decomposition, tile footprints
    and reuse (attach) depths, vector widths, unroll pragmas and
    storage-align padding. A small deterministic, configuration-dependent
    jitter makes the landscape rugged, as on real hardware (paper Fig. 11).

    The model assumes the program already passed {!Validate.check}. *)

type breakdown = {
  compute_us : float;
  mem_us : float;  (** off-chip traffic time *)
  spm_us : float;  (** on-chip traffic time, bank conflicts included *)
  latency_us : float;  (** composed latency, jitter applied *)
  blocks : int;
  warps : int;
  waves : int;
  blocks_per_unit : int;
  utilization : float;  (** compute efficiency factor in \[0, 1\] *)
}

val analyze : Descriptor.t -> Heron_sched.Concrete.t -> breakdown

val latency_us : Descriptor.t -> Heron_sched.Concrete.t -> float

val achieved_tflops : Heron_tensor.Op.t -> float -> float
(** [achieved_tflops op latency_us] from the operator's nominal flops. *)
