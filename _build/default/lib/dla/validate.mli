(** Program validation against a DLA descriptor.

    This is the simulator's ground truth for what real hardware rejects:
    the Heron Space Generator emits constraints that mirror exactly these
    checks, so every assignment drawn from its constrained space passes,
    while unconstrained baselines routinely fail here. *)

val check : Descriptor.t -> Heron_sched.Concrete.t -> (unit, Violation.t) result
(** First violation found, scanning in a fixed order: iteration-space
    coverage, staging-tile data coverage (a cache stage must load at least
    what its consumer reads), intrinsic shape, scratchpad capacities,
    vector widths, thread limits, and family-specific loop-order rules. *)

val is_valid : Descriptor.t -> Heron_sched.Concrete.t -> bool
