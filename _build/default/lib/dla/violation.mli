(** The ways a program can be invalid on a DLA — the "compilation or
    run-time error" that makes unconstrained search spaces low-quality. *)

type t =
  | Bad_intrinsic_shape of (int * int * int)
      (** tensorized with a shape the functional unit does not support *)
  | Missing_tensorize
      (** the DLA has no scalar fallback (VTA) but the program is untiled *)
  | Spm_overflow of { scope : string; used : int; cap : int }
  | Bad_vector_length of int
  | Bad_loop_order of string
      (** VTA write-address timing constraint violated *)
  | Too_many_threads of int
  | Coverage of string
      (** the loop nest does not cover the iteration space exactly *)
  | Unsatisfied_constraint of string
      (** the assignment violates its own CSP (unconstrained searchers) *)

val to_string : t -> string
