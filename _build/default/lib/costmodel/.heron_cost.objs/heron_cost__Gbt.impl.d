lib/costmodel/gbt.ml: Array List Tree
