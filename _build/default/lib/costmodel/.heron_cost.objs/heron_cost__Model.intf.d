lib/costmodel/model.mli: Gbt Heron_csp
