lib/costmodel/tree.ml: Array List
