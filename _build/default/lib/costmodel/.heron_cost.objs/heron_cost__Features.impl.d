lib/costmodel/features.ml: Array Heron_csp
