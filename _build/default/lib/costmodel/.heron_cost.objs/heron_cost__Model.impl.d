lib/costmodel/model.ml: Array Features Gbt Heron_csp List
