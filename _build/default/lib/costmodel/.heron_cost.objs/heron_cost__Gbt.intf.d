lib/costmodel/gbt.mli: Tree
