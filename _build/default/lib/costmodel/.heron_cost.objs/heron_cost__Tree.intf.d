lib/costmodel/tree.mli:
