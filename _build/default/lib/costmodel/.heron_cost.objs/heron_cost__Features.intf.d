lib/costmodel/features.mli: Heron_csp
