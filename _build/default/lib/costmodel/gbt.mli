(** Gradient-boosted regression trees with squared loss — the from-scratch
    stand-in for the XGBoost model the paper employs. *)

type params = {
  n_trees : int;
  learning_rate : float;
  tree : Tree.params;
}

val default_params : params

type t

val fit : ?params:params -> n_bins:int array -> int array array -> float array -> t

val predict : t -> int array -> float

val feature_gains : t -> float array
(** Per-feature total gain across the ensemble (XGBoost-style
    importance). *)

val n_trees : t -> int
