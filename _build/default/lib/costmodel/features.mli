(** Feature extraction for the cost model.

    Following the paper, the features of a program are the values of the
    variables declared during constraint generation (loop lengths, memory
    usage, vector widths, ...), which are available without compiling
    anything. Each feature is discretized into bins derived from the
    variable's domain, enabling fast histogram-based tree training. *)

module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t

val of_problem : ?max_bins:int -> Problem.t -> t

val n_features : t -> int
val names : t -> string array
val n_bins : t -> int array
(** Bin count per feature. *)

val vector : t -> Assignment.t -> float array
(** Raw feature values (unbound variables map to 0). *)

val binned : t -> Assignment.t -> int array
(** Bin index per feature: the highest bin whose boundary value does not
    exceed the variable's value. *)
