module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Measure = Heron_dla.Measure
module Rng = Heron_util.Rng

type library = Cudnn | Cublas | Pytorch | Onednn

let library_name = function
  | Cudnn -> "cuDNN"
  | Cublas -> "cuBLAS"
  | Pytorch -> "PyTorch"
  | Onednn -> "oneDNN"

(* Preset kernel menus: preferences for the tunables; the biased CSP solve
   snaps each preset to the nearest valid configuration for the shape. *)
let tensorcore_presets =
  [
    (* 128x128 block, 64x64 warp tiles: the flagship large-GEMM kernel. *)
    [ ("intrin_m", 16); ("intrin_n", 16); ("intrin_k", 16); ("tile_i_warp", 2);
      ("tile_j_warp", 2); ("tile_i_tile", 4); ("tile_j_tile", 4); ("tile_r_in", 2);
      ("vec_a", 8); ("vec_b", 8); ("vec_c", 4); ("pad_a", 8); ("pad_b", 8); ("pad_c", 8);
      ("unroll_c", 64); ("loc_a", 0); ("loc_b", 0) ];
    (* 64x64 block kernel. *)
    [ ("intrin_m", 16); ("intrin_n", 16); ("intrin_k", 16); ("tile_i_warp", 2);
      ("tile_j_warp", 2); ("tile_i_tile", 2); ("tile_j_tile", 2); ("tile_r_in", 4);
      ("vec_a", 8); ("vec_b", 8); ("vec_c", 4); ("pad_a", 8); ("pad_b", 8); ("pad_c", 8);
      ("unroll_c", 64); ("loc_a", 0); ("loc_b", 0) ];
    (* Tall-and-skinny kernel: small m tile, wide n. *)
    [ ("intrin_m", 16); ("intrin_n", 16); ("intrin_k", 16); ("tile_i_warp", 1);
      ("tile_j_warp", 4); ("tile_i_tile", 1); ("tile_j_tile", 2); ("tile_r_in", 2);
      ("vec_a", 8); ("vec_b", 8); ("vec_c", 4); ("pad_a", 8); ("pad_b", 8); ("pad_c", 8);
      ("unroll_c", 16); ("loc_a", 0); ("loc_b", 0) ];
  ]

let dlboost_presets =
  [
    (* oneDNN-style packed kernel. *)
    [ ("packed_layout", 1); ("tile_j_tile", 4); ("tile_r_in", 16); ("vec_b", 64);
      ("vec_c", 16); ("unroll_c", 64); ("loc_a", 0); ("loc_b", 3); ("tile_i_tile", 4) ];
    [ ("packed_layout", 1); ("tile_j_tile", 2); ("tile_r_in", 32); ("vec_b", 64);
      ("vec_c", 16); ("unroll_c", 16); ("loc_a", 0); ("loc_b", 0); ("tile_i_tile", 8) ];
  ]

let vta_presets =
  [
    [ ("tile_i_tile", 8); ("tile_j_tile", 8); ("tile_r_in", 4); ("vec_a", 16);
      ("vec_b", 16); ("unroll_c", 16) ];
  ]

let presets_for (desc : Descriptor.t) =
  match desc.Descriptor.family with
  | Descriptor.Tensorcore -> tensorcore_presets
  | Descriptor.Dlboost -> dlboost_presets
  | Descriptor.Vta -> vta_presets

let latency_us ?(seed = 2024) ~library desc op =
  let gen = Generator.generate ~seed desc op in
  let measurer = Measure.create desc in
  let rng = Rng.create seed in
  let overhead = match library with Pytorch -> 1.08 | Cudnn | Cublas | Onednn -> 1.0 in
  let try_preset preset =
    let bias = Assignment.of_list preset in
    match Solver.solve_biased ~max_fails:2000 rng gen.Generator.problem bias with
    | None -> None
    | Some a -> (
        match Concrete.instantiate gen.Generator.template a with
        | exception Invalid_argument _ -> None
        | prog -> (
            match Measure.run measurer prog with
            | Ok l -> Some (l *. overhead)
            | Error _ -> None))
  in
  presets_for desc
  |> List.filter_map try_preset
  |> function
  | [] -> None
  | ls -> Some (List.fold_left min infinity ls)
