module Op = Heron_tensor.Op
module Gemm_view = Heron_tensor.Gemm_view
module Problem = Heron_csp.Problem
module Solver = Heron_csp.Solver
module Template = Heron_sched.Template
module Descriptor = Heron_dla.Descriptor
module Rng = Heron_util.Rng

type t = {
  template : Template.t;
  problem : Problem.t;
  tensorized : bool;
  original_op : Op.t;
}

let is_contraction (op : Op.t) =
  match op.body with Op.Contract _ -> true | Op.Copy _ | Op.Scan _ -> false

(* Record the im2col mapping between the original operator's iterators and
   the fused GEMM dimensions: one loop-length variable per original
   iterator, chained by PROD constraints into the fused lengths the
   template tiles. More complex operators therefore describe their spaces
   with more variables and constraints (paper Table 5). *)
let im2col_bookkeeping (ctx : Gen_ctx.t) (orig : Op.t) (view : Heron_tensor.Gemm_view.t) =
  let module Problem = Heron_csp.Problem in
  let orig_var (name : string) =
    let it = Op.find_iter orig name in
    Gen_ctx.const_var ctx ~category:Problem.Loop_length ("orig_len_" ^ name) it.Op.extent
  in
  let bind fused_dim iters =
    match iters with
    | [] -> ()
    | names ->
        let vars = List.map orig_var names in
        let fused = "len_" ^ fused_dim in
        (* Binary product chain: len_dim = o1 * (o2 * (...)). *)
        let rec chain = function
          | [] -> assert false
          | [ v ] -> v
          | v :: rest ->
              let tail = chain rest in
              let dom_product =
                Heron_csp.Domain.of_list
                  [ List.fold_left (fun acc v ->
                        let n = String.sub v (String.length "orig_len_")
                            (String.length v - String.length "orig_len_") in
                        acc * (Op.find_iter orig n).Op.extent)
                      1 (v :: rest) ]
              in
              let aux =
                Gen_ctx.add_var ctx ~category:Problem.Auxiliary
                  ("aux_im2col_" ^ fused_dim ^ "_" ^ string_of_int (List.length rest))
                  dom_product
              in
              Gen_ctx.prod ctx aux [ v; tail ];
              aux
        in
        let top = chain vars in
        Gen_ctx.prod ctx fused [ top ]
  in
  bind "b" view.Heron_tensor.Gemm_view.batch_iters;
  bind "i" view.Heron_tensor.Gemm_view.m_iters;
  bind "j" view.Heron_tensor.Gemm_view.n_iters;
  bind "r" view.Heron_tensor.Gemm_view.k_iters

let build ?orig desc op ~tensorize =
  let ctx = Gen_ctx.create desc op in
  let tensorized =
    if not (is_contraction op) then begin
      Rules_sched.simple_spatial ctx;
      false
    end
    else begin
      (match desc.Descriptor.family with
      | Descriptor.Tensorcore -> Rules_sched.tensorcore_contraction ctx ~tensorize
      | Descriptor.Dlboost -> Rules_sched.dlboost_contraction ctx ~tensorize
      | Descriptor.Vta -> Rules_sched.vta_contraction ctx);
      (match orig with
      | Some (orig_op, view) when orig_op != op -> im2col_bookkeeping ctx orig_op view
      | _ -> ());
      tensorize || desc.Descriptor.family = Descriptor.Vta
    end
  in
  Rules_cons.apply_all ctx;
  let intrin = if tensorized then Some desc.Descriptor.intrin_name else None in
  {
    template = Gen_ctx.finish ctx ~intrin;
    problem = Problem.freeze ctx.b;
    tensorized;
    original_op = op;
  }

let satisfiable ?(seed = 17) problem =
  match Solver.solve ~max_fails:2000 ~max_restarts:1 (Rng.create seed) problem with
  | Some _ -> true
  | None -> false

let generate ?(seed = 17) desc op =
  match Gemm_view.infer op with
  | None -> build desc op ~tensorize:false
  | Some view -> (
      let derived = Gemm_view.derived_op op view in
      let with_original g = { g with original_op = op } in
      if Descriptor.has_intrinsic desc then begin
        let g = build ~orig:(op, view) desc derived ~tensorize:true in
        if satisfiable ~seed g.problem then with_original g
        else
          match desc.Descriptor.family with
          | Descriptor.Vta ->
              (* VTA has no scalar path; an unsatisfiable space means the
                 shape cannot run — surfaced as-is. *)
              with_original g
          | Descriptor.Tensorcore | Descriptor.Dlboost ->
              with_original (build ~orig:(op, view) desc derived ~tensorize:false)
      end
      else with_original (build ~orig:(op, view) desc derived ~tensorize:false))
