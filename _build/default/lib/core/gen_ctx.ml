module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Op = Heron_tensor.Op
module Template = Heron_sched.Template
module Prim = Heron_sched.Prim
module Descriptor = Heron_dla.Descriptor

type split_fact = { parent_var : string; outer_var : string; inner_var : string }

type select_fact = { sel_var : string; loc_var : string; entries : string list }

type cache_fact = {
  cf_stage : string;
  cf_scope : string;
  cf_loop_vars : string list;
  cf_pad : string option;
  cf_dtype_bytes : int;
}

type t = {
  b : Problem.builder;
  desc : Descriptor.t;
  op : Op.t;
  mutable prims : Prim.t list;
  mutable stages : Template.stage list;
  mutable splits : split_fact list;
  mutable candidates : (string * int list) list;
  mutable selects : select_fact list;
  mutable caches : cache_fact list;
  mutable les : (string * string) list;
  mutable prods : (string * string list) list;
}

let create desc op =
  {
    b = Problem.builder ();
    desc;
    op;
    prims = [];
    stages = [];
    splits = [];
    candidates = [];
    selects = [];
    caches = [];
    les = [];
    prods = [];
  }

let add_var t ?category name dom =
  Problem.add_var t.b ?category name dom;
  name

let const_var t ?category name v = add_var t ?category name (Domain.singleton v)

let prim t p = t.prims <- p :: t.prims

let split t ~stage ~loop fact =
  t.splits <- fact :: t.splits;
  prim t
    (Prim.Split
       { stage; loop; outer = fact.outer_var; inner = fact.inner_var; factor = fact.inner_var })

let candidate t v cs = t.candidates <- (v, cs) :: t.candidates

let select t fact = t.selects <- fact :: t.selects

let cache t fact = t.caches <- fact :: t.caches

let le t a b = t.les <- (a, b) :: t.les

let prod t v vs = t.prods <- (v, vs) :: t.prods

let stage t s = t.stages <- s :: t.stages

let stage_names t = List.rev_map (fun (s : Template.stage) -> s.sname) t.stages

let finish t ~intrin =
  {
    Template.op = t.op;
    stages = List.rev t.stages;
    prims = List.rev t.prims;
    intrin;
  }
