module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Op = Heron_tensor.Op
module Template = Heron_sched.Template
module Prim = Heron_sched.Prim
module Descriptor = Heron_dla.Descriptor
module Ints = Heron_util.Ints

let divisors_dom e = Domain.of_list (Ints.divisors e)

let loop name var origin kind ann =
  { Template.lname = name; extent_var = var; origin; kind; ann }

let iter_extent (ctx : Gen_ctx.t) name = (Op.find_iter ctx.op name).Op.extent


let has_batch (ctx : Gen_ctx.t) =
  List.exists (fun (it : Op.iter) -> it.iname = "b") ctx.op.iters

(* A three-level split chain for iterator [dim]:
   extent = outer0 * (outer1 * (outer2 * leaf)). Declares the tunables (with
   divisor domains), the auxiliary suffix variables, and the split facts
   (C1). [leaf] must already be declared. Returns (aux1, aux2): the
   extents remaining below level 0 and level 1. *)
let chain3 (ctx : Gen_ctx.t) ~dim ~names:(n0, n1, n2) ~leaf =
  let extent = iter_extent ctx dim in
  let dom = divisors_dom extent in
  let len = Gen_ctx.const_var ctx ~category:Problem.Loop_length ("len_" ^ dim) extent in
  let t0 = Gen_ctx.add_var ctx n0 dom in
  let t1 = Gen_ctx.add_var ctx n1 dom in
  let t2 = Gen_ctx.add_var ctx n2 dom in
  let aux1 = Gen_ctx.add_var ctx ~category:Problem.Auxiliary ("aux_" ^ dim ^ "_1") dom in
  let aux2 = Gen_ctx.add_var ctx ~category:Problem.Auxiliary ("aux_" ^ dim ^ "_2") dom in
  Gen_ctx.split ctx ~stage:"C" ~loop:dim { parent_var = len; outer_var = t0; inner_var = aux1 };
  Gen_ctx.split ctx ~stage:"C" ~loop:(dim ^ ".1")
    { parent_var = aux1; outer_var = t1; inner_var = aux2 };
  Gen_ctx.split ctx ~stage:"C" ~loop:(dim ^ ".2")
    { parent_var = aux2; outer_var = t2; inner_var = leaf };
  (aux1, aux2)

(* A two-level chain: extent = outer0 * (outer1 * leaf). Returns aux1. *)
let chain2 (ctx : Gen_ctx.t) ~dim ~names:(n0, n1) ~leaf =
  let extent = iter_extent ctx dim in
  let dom = divisors_dom extent in
  let len = Gen_ctx.const_var ctx ~category:Problem.Loop_length ("len_" ^ dim) extent in
  let t0 = Gen_ctx.add_var ctx n0 dom in
  let t1 = Gen_ctx.add_var ctx n1 dom in
  let aux1 = Gen_ctx.add_var ctx ~category:Problem.Auxiliary ("aux_" ^ dim ^ "_1") dom in
  Gen_ctx.split ctx ~stage:"C" ~loop:dim { parent_var = len; outer_var = t0; inner_var = aux1 };
  Gen_ctx.split ctx ~stage:"C" ~loop:(dim ^ ".1")
    { parent_var = aux1; outer_var = t1; inner_var = leaf };
  aux1

(* Declare an intrinsic-shape variable (Rule S1's tensorize parameters). *)
let intrin_var (ctx : Gen_ctx.t) name candidates =
  let v =
    Gen_ctx.add_var ctx ~category:Problem.Architectural name (Domain.of_list candidates)
  in
  Gen_ctx.candidate ctx v candidates;
  v

let tunable_candidates (ctx : Gen_ctx.t) name candidates =
  let v = Gen_ctx.add_var ctx name (Domain.of_list candidates) in
  Gen_ctx.candidate ctx v candidates;
  v

let unroll_candidates = [ 1; 16; 64; 512 ]

let batch_loop (ctx : Gen_ctx.t) ~bind =
  if has_batch ctx then begin
    let extent = iter_extent ctx "b" in
    let v = Gen_ctx.const_var ctx ~category:Problem.Loop_length "len_b" extent in
    [ loop "b.all" v "b" Op.Spatial bind ]
  end
  else []

let cache_read_prim ctx ~tensor ~scope ~reader ~new_stage =
  Gen_ctx.prim ctx (Prim.Cache_read { tensor; scope; reader; new_stage })

let compute_at_prim ctx ~stage ~parent ~location =
  Gen_ctx.prim ctx (Prim.Compute_at { stage; parent; location })

(* -------------------------------------------------------------------- *)
(* TensorCore (and its CUDA-core fallback)                                *)
(* -------------------------------------------------------------------- *)

let tensorcore_contraction (ctx : Gen_ctx.t) ~tensorize =
  let desc = ctx.desc in
  let in_bytes = Op.dtype_bytes (List.hd ctx.op.inputs).Op.dt in
  (* Rule S1: tensorize — intrinsic shape variables and their coupling. *)
  let shape_candidates =
    let ms = List.map (fun (m, _, _) -> m) desc.Descriptor.intrin_shapes in
    let ns = List.map (fun (_, n, _) -> n) desc.Descriptor.intrin_shapes in
    let ks = List.map (fun (_, _, k) -> k) desc.Descriptor.intrin_shapes in
    (List.sort_uniq compare ms, List.sort_uniq compare ns, List.sort_uniq compare ks)
  in
  let leaf_m, leaf_n, leaf_k =
    if tensorize then begin
      let cm, cn, ck = shape_candidates in
      let m = intrin_var ctx "intrin_m" cm in
      let n = intrin_var ctx "intrin_n" cn in
      let k = intrin_var ctx "intrin_k" ck in
      Gen_ctx.prim ctx
        (Prim.Tensorize { stage = "C"; intrin = desc.Descriptor.intrin_name; m; n; k });
      (match desc.Descriptor.intrin_mnk_product with
      | Some p ->
          let cm, cn, _ = shape_candidates in
          let mn_values =
            List.concat_map (fun a -> List.map (fun b -> a * b) cn) cm
            |> List.sort_uniq compare
          in
          let mn =
            Gen_ctx.add_var ctx ~category:Problem.Auxiliary "aux_intrin_mn"
              (Domain.of_list mn_values)
          in
          let mnk = Gen_ctx.const_var ctx ~category:Problem.Architectural "arch_intrin_mnk" p in
          Gen_ctx.prod ctx mn [ m; n ];
          Gen_ctx.prod ctx mnk [ mn; k ]
      | None -> ());
      (m, n, k)
    end
    else
      ( tunable_candidates ctx "tile_i_inner" [ 1; 2; 4; 8 ],
        tunable_candidates ctx "tile_j_inner" [ 1; 2; 4; 8 ],
        tunable_candidates ctx "tile_r_inner" [ 1; 2; 4; 8 ] )
  in
  (* Multi-level tiling chains. *)
  let aux_i_1, aux_i_2 =
    chain3 ctx ~dim:"i" ~names:("tile_i_block", "tile_i_warp", "tile_i_tile") ~leaf:leaf_m
  in
  let aux_j_1, aux_j_2 =
    chain3 ctx ~dim:"j" ~names:("tile_j_block", "tile_j_warp", "tile_j_tile") ~leaf:leaf_n
  in
  let aux_r_1 = chain2 ctx ~dim:"r" ~names:("tile_r_out", "tile_r_in") ~leaf:leaf_k in
  (* Thread limit (C6): warps per block bounded by the hardware. *)
  let warps =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary "aux_warps"
      (Domain.of_list (List.concat_map (fun a -> List.map (fun b -> a * b) (Ints.divisors 32))
          (Ints.divisors 32)))
  in
  Gen_ctx.prod ctx warps [ "tile_i_warp"; "tile_j_warp" ];
  let max_warps = Gen_ctx.const_var ctx ~category:Problem.Architectural "arch_max_warps" 32 in
  Gen_ctx.le ctx warps max_warps;
  (* Tunables for memory access and pipelining. *)
  let vec_a = tunable_candidates ctx "vec_a" desc.Descriptor.vector_lengths in
  let vec_b = tunable_candidates ctx "vec_b" desc.Descriptor.vector_lengths in
  let vec_c = tunable_candidates ctx "vec_c" desc.Descriptor.vector_lengths in
  let pad_a = tunable_candidates ctx "pad_a" [ 0; 8 ] in
  let pad_b = tunable_candidates ctx "pad_b" [ 0; 8 ] in
  let pad_c = tunable_candidates ctx "pad_c" [ 0; 8 ] in
  let unroll_c = tunable_candidates ctx "unroll_c" unroll_candidates in
  Gen_ctx.prim ctx (Prim.Vectorize { stage = "A.shared"; loop = "as.col"; length = vec_a });
  Gen_ctx.prim ctx (Prim.Vectorize { stage = "B.shared"; loop = "bs.col"; length = vec_b });
  Gen_ctx.prim ctx (Prim.Vectorize { stage = "C.store"; loop = "j.st"; length = vec_c });
  Gen_ctx.prim ctx (Prim.Storage_align { stage = "A.shared"; pad = pad_a });
  Gen_ctx.prim ctx (Prim.Storage_align { stage = "B.shared"; pad = pad_b });
  Gen_ctx.prim ctx (Prim.Storage_align { stage = "C.shared"; pad = pad_c });
  Gen_ctx.prim ctx (Prim.Unroll { stage = "C"; loop = "r.i"; length = unroll_c });
  (* Store stage (root nest with the grid/warp decomposition). *)
  let base = if has_batch ctx then 1 else 0 in
  let store_loops =
    batch_loop ctx ~bind:(Template.Bound Prim.Block_x)
    @ [
        loop "i.blk" "tile_i_block" "i" Op.Spatial (Template.Bound Prim.Block_y);
        loop "j.blk" "tile_j_block" "j" Op.Spatial (Template.Bound Prim.Block_x);
        loop "i.wrp" "tile_i_warp" "i" Op.Spatial (Template.Bound Prim.Thread_y);
        loop "j.wrp" "tile_j_warp" "j" Op.Spatial (Template.Bound Prim.Thread_y);
        loop "i.st" aux_i_2 "i" Op.Spatial Template.Plain;
        loop "j.st" aux_j_2 "j" Op.Spatial (Template.Vectorized vec_c);
      ]
  in
  Gen_ctx.stage ctx
    {
      Template.sname = "C.store";
      scope = "global";
      loops = store_loops;
      attach = Template.Root;
      role = Template.Store;
      align_pad = None;
    };
  (* Rule S2/S3: shared-memory stage for the output tile, with a tunable
     compute location (after the block loops or after the warp loops). *)
  let loc_c =
    Gen_ctx.add_var ctx "loc_c" (Domain.of_list [ base + 1; base + 3 ])
  in
  let row_dom = divisors_dom (iter_extent ctx "i") in
  let col_dom = divisors_dom (iter_extent ctx "j") in
  let len_cs_row = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Cs_row" row_dom in
  let len_cs_col = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Cs_col" col_dom in
  let entries level1 level2 =
    List.init (base + 4) (fun idx -> if idx < base + 3 then level1 else level2)
  in
  Gen_ctx.select ctx { sel_var = len_cs_row; loc_var = loc_c; entries = entries aux_i_1 aux_i_2 };
  Gen_ctx.select ctx { sel_var = len_cs_col; loc_var = loc_c; entries = entries aux_j_1 aux_j_2 };
  Gen_ctx.prim ctx
    (Prim.Cache_write { tensor = "C"; scope = "shared"; new_stage = "C.shared" });
  compute_at_prim ctx ~stage:"C.shared" ~parent:"C.store" ~location:loc_c;
  Gen_ctx.stage ctx
    {
      Template.sname = "C.shared";
      scope = "shared";
      loops =
        [
          loop "cs.i" len_cs_row "i" Op.Spatial Template.Plain;
          loop "cs.j" len_cs_col "j" Op.Spatial Template.Plain;
        ];
      attach = Template.At { parent = "C.store"; location_var = loc_c };
      role = Template.Store;
      align_pad = Some pad_c;
    };
  Gen_ctx.cache ctx
    {
      cf_stage = "C.shared";
      cf_scope = "shared";
      cf_loop_vars = [ len_cs_row; len_cs_col ];
      cf_pad = Some pad_c;
      cf_dtype_bytes = 4;
    };
  (* Compute stage, attached after the warp loops. *)
  let loc_compute =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary "loc_compute"
      (Domain.singleton (base + 3))
  in
  compute_at_prim ctx ~stage:"C" ~parent:"C.store" ~location:loc_compute;
  let leaf_ann = if tensorize then Template.Tensorized else Template.Plain in
  Gen_ctx.stage ctx
    {
      Template.sname = "C";
      scope = "local";
      loops =
        [
          loop "r.o" "tile_r_out" "r" Op.Reduction Template.Plain;
          loop "i.t" "tile_i_tile" "i" Op.Spatial Template.Plain;
          loop "j.t" "tile_j_tile" "j" Op.Spatial Template.Plain;
          loop "r.i" "tile_r_in" "r" Op.Reduction (Template.Unrolled unroll_c);
          loop "wm" leaf_m "i" Op.Spatial leaf_ann;
          loop "wn" leaf_n "j" Op.Spatial leaf_ann;
          loop "wk" leaf_k "r" Op.Reduction leaf_ann;
        ];
      attach = Template.At { parent = "C.store"; location_var = loc_compute };
      role = Template.Compute;
      align_pad = None;
    };
  (* Rule S2: shared-memory input stages with tunable compute locations. *)
  let k_dom = divisors_dom (iter_extent ctx "r") in
  let loc_a = Gen_ctx.add_var ctx "loc_a" (Domain.of_list [ 0; 1; 2; 3 ]) in
  let loc_b = Gen_ctx.add_var ctx "loc_b" (Domain.of_list [ 0; 1; 2; 3 ]) in
  let len_as_col = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_As_col" k_dom in
  let len_bs_row = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Bs_row" k_dom in
  let k_entries = [ aux_r_1; aux_r_1; aux_r_1; leaf_k ] in
  Gen_ctx.select ctx { sel_var = len_as_col; loc_var = loc_a; entries = k_entries };
  Gen_ctx.select ctx { sel_var = len_bs_row; loc_var = loc_b; entries = k_entries };
  cache_read_prim ctx ~tensor:"A" ~scope:"shared" ~reader:"C" ~new_stage:"A.shared";
  cache_read_prim ctx ~tensor:"B" ~scope:"shared" ~reader:"C" ~new_stage:"B.shared";
  compute_at_prim ctx ~stage:"A.shared" ~parent:"C" ~location:loc_a;
  compute_at_prim ctx ~stage:"B.shared" ~parent:"C" ~location:loc_b;
  Gen_ctx.stage ctx
    {
      Template.sname = "A.shared";
      scope = "shared";
      loops =
        [
          loop "as.row" aux_i_1 "i" Op.Spatial Template.Plain;
          loop "as.col" len_as_col "r" Op.Reduction (Template.Vectorized vec_a);
        ];
      attach = Template.At { parent = "C"; location_var = loc_a };
      role = Template.Load "A";
      align_pad = Some pad_a;
    };
  Gen_ctx.stage ctx
    {
      Template.sname = "B.shared";
      scope = "shared";
      loops =
        [
          loop "bs.row" len_bs_row "r" Op.Reduction Template.Plain;
          loop "bs.col" aux_j_1 "j" Op.Spatial (Template.Vectorized vec_b);
        ];
      attach = Template.At { parent = "C"; location_var = loc_b };
      role = Template.Load "B";
      align_pad = Some pad_b;
    };
  Gen_ctx.cache ctx
    {
      cf_stage = "A.shared";
      cf_scope = "shared";
      cf_loop_vars = [ aux_i_1; len_as_col ];
      cf_pad = Some pad_a;
      cf_dtype_bytes = in_bytes;
    };
  Gen_ctx.cache ctx
    {
      cf_stage = "B.shared";
      cf_scope = "shared";
      cf_loop_vars = [ len_bs_row; aux_j_1 ];
      cf_pad = Some pad_b;
      cf_dtype_bytes = in_bytes;
    };
  Gen_ctx.le ctx vec_a len_as_col;
  Gen_ctx.le ctx vec_b aux_j_1;
  Gen_ctx.le ctx vec_c aux_j_2;
  (* Rule S3: fragment stages (wmma.a / wmma.b / accumulator). *)
  if tensorize then begin
    let loc_frag =
      Gen_ctx.add_var ctx ~category:Problem.Auxiliary "loc_frag" (Domain.singleton 3)
    in
    cache_read_prim ctx ~tensor:"A" ~scope:"wmma.a" ~reader:"C" ~new_stage:"A.wmma";
    cache_read_prim ctx ~tensor:"B" ~scope:"wmma.b" ~reader:"C" ~new_stage:"B.wmma";
    compute_at_prim ctx ~stage:"A.wmma" ~parent:"C" ~location:loc_frag;
    compute_at_prim ctx ~stage:"B.wmma" ~parent:"C" ~location:loc_frag;
    Gen_ctx.stage ctx
      {
        Template.sname = "A.wmma";
        scope = "wmma.a";
        loops =
          [
            loop "aw.m" leaf_m "i" Op.Spatial Template.Plain;
            loop "aw.k" leaf_k "r" Op.Reduction Template.Plain;
          ];
        attach = Template.At { parent = "C"; location_var = loc_frag };
        role = Template.Load "A";
        align_pad = None;
      };
    Gen_ctx.stage ctx
      {
        Template.sname = "B.wmma";
        scope = "wmma.b";
        loops =
          [
            loop "bw.k" leaf_k "r" Op.Reduction Template.Plain;
            loop "bw.n" leaf_n "j" Op.Spatial Template.Plain;
          ];
        attach = Template.At { parent = "C"; location_var = loc_frag };
        role = Template.Load "B";
        align_pad = None;
      };
    Gen_ctx.cache ctx
      { cf_stage = "A.wmma"; cf_scope = "wmma.a"; cf_loop_vars = [ leaf_m; leaf_k ];
        cf_pad = None; cf_dtype_bytes = in_bytes };
    Gen_ctx.cache ctx
      { cf_stage = "B.wmma"; cf_scope = "wmma.b"; cf_loop_vars = [ leaf_k; leaf_n ];
        cf_pad = None; cf_dtype_bytes = in_bytes };
    let loc_acc =
      Gen_ctx.add_var ctx ~category:Problem.Auxiliary "loc_acc"
        (Domain.singleton (base + 3))
    in
    Gen_ctx.prim ctx
      (Prim.Cache_write { tensor = "C"; scope = "wmma.acc"; new_stage = "C.acc" });
    compute_at_prim ctx ~stage:"C.acc" ~parent:"C.store" ~location:loc_acc;
    Gen_ctx.stage ctx
      {
        Template.sname = "C.acc";
        scope = "wmma.acc";
        loops =
          [
            loop "ca.i" aux_i_2 "i" Op.Spatial Template.Plain;
            loop "ca.j" aux_j_2 "j" Op.Spatial Template.Plain;
          ];
        attach = Template.At { parent = "C.store"; location_var = loc_acc };
        role = Template.Store;
        align_pad = None;
      };
    Gen_ctx.cache ctx
      { cf_stage = "C.acc"; cf_scope = "wmma.acc"; cf_loop_vars = [ aux_i_2; aux_j_2 ];
        cf_pad = None; cf_dtype_bytes = 4 }
  end

(* -------------------------------------------------------------------- *)
(* Intel DL Boost                                                         *)
(* -------------------------------------------------------------------- *)

let dlboost_contraction (ctx : Gen_ctx.t) ~tensorize =
  let desc = ctx.desc in
  let leaf_m, leaf_n, leaf_k =
    if tensorize then begin
      let cand f =
        List.sort_uniq compare (List.map f desc.Descriptor.intrin_shapes)
      in
      let m = intrin_var ctx "intrin_m" (cand (fun (m, _, _) -> m)) in
      let n = intrin_var ctx "intrin_n" (cand (fun (_, n, _) -> n)) in
      let k = intrin_var ctx "intrin_k" (cand (fun (_, _, k) -> k)) in
      Gen_ctx.prim ctx
        (Prim.Tensorize { stage = "C"; intrin = desc.Descriptor.intrin_name; m; n; k });
      (* When the functional unit offers several distinct shapes (e.g.
         Cambricon's flexible matrix tiles), the three dimensions must be
         chosen together: one shape-index tunable selects all three (C6). *)
      let shapes = desc.Descriptor.intrin_shapes in
      if List.length shapes > 1 then begin
        let sel =
          Gen_ctx.add_var ctx "intrin_shape_sel"
            (Domain.of_list (List.init (List.length shapes) (fun i -> i)))
        in
        let entry dim i value =
          Gen_ctx.const_var ctx ~category:Problem.Architectural
            (Printf.sprintf "arch_shape_%s_%d" dim i) value
        in
        let select dim var proj =
          let entries = List.mapi (fun i s -> entry dim i (proj s)) shapes in
          Gen_ctx.select ctx { sel_var = var; loc_var = sel; entries }
        in
        select "m" m (fun (x, _, _) -> x);
        select "n" n (fun (_, x, _) -> x);
        select "k" k (fun (_, _, x) -> x)
      end;
      (m, n, k)
    end
    else
      ( tunable_candidates ctx "tile_i_inner" [ 1; 2; 4 ],
        tunable_candidates ctx "tile_j_inner" [ 1; 4; 8; 16 ],
        tunable_candidates ctx "tile_r_inner" [ 1; 2; 4 ] )
  in
  let aux_i_1 = chain2 ctx ~dim:"i" ~names:("tile_i_core", "tile_i_tile") ~leaf:leaf_m in
  let aux_j_1 = chain2 ctx ~dim:"j" ~names:("tile_j_out", "tile_j_tile") ~leaf:leaf_n in
  let aux_r_1 = chain2 ctx ~dim:"r" ~names:("tile_r_out", "tile_r_in") ~leaf:leaf_k in
  let vec_b = tunable_candidates ctx "vec_b" desc.Descriptor.vector_lengths in
  let vec_c = tunable_candidates ctx "vec_c" desc.Descriptor.vector_lengths in
  let unroll_c = tunable_candidates ctx "unroll_c" unroll_candidates in
  let packed = tunable_candidates ctx "packed_layout" [ 0; 1 ] in
  ignore packed;
  Gen_ctx.prim ctx (Prim.Vectorize { stage = "B.l1"; loop = "bl.col"; length = vec_b });
  Gen_ctx.prim ctx (Prim.Unroll { stage = "C"; loop = "r.i"; length = unroll_c });
  Gen_ctx.prim ctx (Prim.Parallel { stage = "C.store"; loop = "i.core" });
  let base = if has_batch ctx then 1 else 0 in
  let store_loops =
    batch_loop ctx ~bind:(Template.Bound Prim.Core)
    @ [
        loop "i.core" "tile_i_core" "i" Op.Spatial (Template.Bound Prim.Core);
        loop "j.out" "tile_j_out" "j" Op.Spatial Template.Plain;
        loop "i.st" aux_i_1 "i" Op.Spatial Template.Plain;
        loop "j.st" aux_j_1 "j" Op.Spatial (Template.Vectorized vec_c);
      ]
  in
  Gen_ctx.stage ctx
    {
      Template.sname = "C.store";
      scope = "global";
      loops = store_loops;
      attach = Template.Root;
      role = Template.Store;
      align_pad = None;
    };
  let loc_compute =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary "loc_compute"
      (Domain.singleton (base + 1))
  in
  compute_at_prim ctx ~stage:"C" ~parent:"C.store" ~location:loc_compute;
  let leaf_ann = if tensorize then Template.Tensorized else Template.Plain in
  Gen_ctx.stage ctx
    {
      Template.sname = "C";
      scope = "local";
      loops =
        [
          loop "r.o" "tile_r_out" "r" Op.Reduction Template.Plain;
          loop "i.t" "tile_i_tile" "i" Op.Spatial Template.Plain;
          loop "j.t" "tile_j_tile" "j" Op.Spatial Template.Plain;
          loop "r.i" "tile_r_in" "r" Op.Reduction (Template.Unrolled unroll_c);
          loop "m" leaf_m "i" Op.Spatial leaf_ann;
          loop "n" leaf_n "j" Op.Spatial leaf_ann;
          loop "k" leaf_k "r" Op.Reduction leaf_ann;
        ];
      attach = Template.At { parent = "C.store"; location_var = loc_compute };
      role = Template.Compute;
      align_pad = None;
    };
  (* Cache staging: A tiles resident in L2, packed B tiles in L1. *)
  let k_dom = divisors_dom (iter_extent ctx "r") in
  let loc_a = Gen_ctx.add_var ctx "loc_a" (Domain.of_list [ 0; 1; 2; 3 ]) in
  let loc_b = Gen_ctx.add_var ctx "loc_b" (Domain.of_list [ 0; 1; 2; 3 ]) in
  let len_al_col = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Al_col" k_dom in
  let len_bl_row = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Bl_row" k_dom in
  let k_entries = [ aux_r_1; aux_r_1; aux_r_1; leaf_k ] in
  Gen_ctx.select ctx { sel_var = len_al_col; loc_var = loc_a; entries = k_entries };
  Gen_ctx.select ctx { sel_var = len_bl_row; loc_var = loc_b; entries = k_entries };
  cache_read_prim ctx ~tensor:"A" ~scope:"l2" ~reader:"C" ~new_stage:"A.l2";
  cache_read_prim ctx ~tensor:"B" ~scope:"l1" ~reader:"C" ~new_stage:"B.l1";
  compute_at_prim ctx ~stage:"A.l2" ~parent:"C" ~location:loc_a;
  compute_at_prim ctx ~stage:"B.l1" ~parent:"C" ~location:loc_b;
  Gen_ctx.stage ctx
    {
      Template.sname = "A.l2";
      scope = "l2";
      loops =
        [
          loop "al.row" aux_i_1 "i" Op.Spatial Template.Plain;
          loop "al.col" len_al_col "r" Op.Reduction Template.Plain;
        ];
      attach = Template.At { parent = "C"; location_var = loc_a };
      role = Template.Load "A";
      align_pad = None;
    };
  Gen_ctx.stage ctx
    {
      Template.sname = "B.l1";
      scope = "l1";
      loops =
        [
          loop "bl.row" len_bl_row "r" Op.Reduction Template.Plain;
          loop "bl.col" aux_j_1 "j" Op.Spatial (Template.Vectorized vec_b);
        ];
      attach = Template.At { parent = "C"; location_var = loc_b };
      role = Template.Load "B";
      align_pad = None;
    };
  Gen_ctx.cache ctx
    { cf_stage = "A.l2"; cf_scope = "l2"; cf_loop_vars = [ aux_i_1; len_al_col ];
      cf_pad = None; cf_dtype_bytes = 1 };
  Gen_ctx.cache ctx
    { cf_stage = "B.l1"; cf_scope = "l1"; cf_loop_vars = [ len_bl_row; aux_j_1 ];
      cf_pad = None; cf_dtype_bytes = 1 };
  Gen_ctx.le ctx vec_b aux_j_1;
  Gen_ctx.le ctx vec_c aux_j_1

(* -------------------------------------------------------------------- *)
(* TVM VTA                                                                *)
(* -------------------------------------------------------------------- *)

let vta_contraction (ctx : Gen_ctx.t) =
  let desc = ctx.desc in
  let m = intrin_var ctx "intrin_m" [ 1 ] in
  let n = intrin_var ctx "intrin_n" [ 16 ] in
  let k = intrin_var ctx "intrin_k" [ 16 ] in
  Gen_ctx.prim ctx
    (Prim.Tensorize { stage = "C"; intrin = desc.Descriptor.intrin_name; m; n; k });
  let aux_i_1 = chain2 ctx ~dim:"i" ~names:("tile_i_out", "tile_i_tile") ~leaf:m in
  let aux_j_1 = chain2 ctx ~dim:"j" ~names:("tile_j_out", "tile_j_tile") ~leaf:n in
  let aux_r_1 = chain2 ctx ~dim:"r" ~names:("tile_r_out", "tile_r_in") ~leaf:k in
  let vec_a = tunable_candidates ctx "vec_a" desc.Descriptor.vector_lengths in
  let vec_b = tunable_candidates ctx "vec_b" desc.Descriptor.vector_lengths in
  let unroll_c = tunable_candidates ctx "unroll_c" unroll_candidates in
  Gen_ctx.prim ctx (Prim.Vectorize { stage = "A.inp"; loop = "ai.col"; length = vec_a });
  Gen_ctx.prim ctx (Prim.Vectorize { stage = "B.wgt"; loop = "bw.col"; length = vec_b });
  Gen_ctx.prim ctx (Prim.Unroll { stage = "C"; loop = "r.i"; length = unroll_c });
  (* C6: write-timing — the spatial loop right above the gemm tile must
     iterate at least twice. *)
  let two = Gen_ctx.const_var ctx ~category:Problem.Architectural "arch_min_access" 2 in
  Gen_ctx.le ctx two "tile_j_tile";
  Gen_ctx.prim ctx (Prim.Reorder { stage = "C"; order = [ "r.o"; "i.t"; "r.i"; "j.t" ] });
  let base = if has_batch ctx then 1 else 0 in
  let store_loops =
    batch_loop ctx ~bind:Template.Plain
    @ [
        loop "i.out" "tile_i_out" "i" Op.Spatial Template.Plain;
        loop "j.out" "tile_j_out" "j" Op.Spatial Template.Plain;
        loop "i.st" aux_i_1 "i" Op.Spatial Template.Plain;
        loop "j.st" aux_j_1 "j" Op.Spatial Template.Plain;
      ]
  in
  Gen_ctx.stage ctx
    {
      Template.sname = "C.store";
      scope = "global";
      loops = store_loops;
      attach = Template.Root;
      role = Template.Store;
      align_pad = None;
    };
  let loc_compute =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary "loc_compute"
      (Domain.singleton (base + 1))
  in
  compute_at_prim ctx ~stage:"C" ~parent:"C.store" ~location:loc_compute;
  Gen_ctx.stage ctx
    {
      Template.sname = "C";
      scope = "local";
      loops =
        [
          loop "r.o" "tile_r_out" "r" Op.Reduction Template.Plain;
          loop "i.t" "tile_i_tile" "i" Op.Spatial Template.Plain;
          loop "r.i" "tile_r_in" "r" Op.Reduction (Template.Unrolled unroll_c);
          loop "j.t" "tile_j_tile" "j" Op.Spatial Template.Plain;
          loop "m" m "i" Op.Spatial Template.Tensorized;
          loop "n" n "j" Op.Spatial Template.Tensorized;
          loop "k" k "r" Op.Reduction Template.Tensorized;
        ];
      attach = Template.At { parent = "C.store"; location_var = loc_compute };
      role = Template.Compute;
      align_pad = None;
    };
  (* Rule S3: distinct input/weight/accumulator buffers. *)
  let k_dom = divisors_dom (iter_extent ctx "r") in
  let loc_a = Gen_ctx.add_var ctx "loc_a" (Domain.of_list [ 0; 1; 2; 3 ]) in
  let loc_b = Gen_ctx.add_var ctx "loc_b" (Domain.of_list [ 0; 1; 2; 3 ]) in
  let len_ai_col = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Ai_col" k_dom in
  let len_bw_row = Gen_ctx.add_var ctx ~category:Problem.Loop_length "len_Bw_row" k_dom in
  let k_entries = [ aux_r_1; aux_r_1; aux_r_1; k ] in
  Gen_ctx.select ctx { sel_var = len_ai_col; loc_var = loc_a; entries = k_entries };
  Gen_ctx.select ctx { sel_var = len_bw_row; loc_var = loc_b; entries = k_entries };
  cache_read_prim ctx ~tensor:"A" ~scope:"vta.inp" ~reader:"C" ~new_stage:"A.inp";
  cache_read_prim ctx ~tensor:"B" ~scope:"vta.wgt" ~reader:"C" ~new_stage:"B.wgt";
  compute_at_prim ctx ~stage:"A.inp" ~parent:"C" ~location:loc_a;
  compute_at_prim ctx ~stage:"B.wgt" ~parent:"C" ~location:loc_b;
  Gen_ctx.stage ctx
    {
      Template.sname = "A.inp";
      scope = "vta.inp";
      loops =
        [
          loop "ai.row" aux_i_1 "i" Op.Spatial Template.Plain;
          loop "ai.col" len_ai_col "r" Op.Reduction (Template.Vectorized vec_a);
        ];
      attach = Template.At { parent = "C"; location_var = loc_a };
      role = Template.Load "A";
      align_pad = None;
    };
  Gen_ctx.stage ctx
    {
      Template.sname = "B.wgt";
      scope = "vta.wgt";
      loops =
        [
          loop "bw.row" len_bw_row "r" Op.Reduction Template.Plain;
          loop "bw.col" aux_j_1 "j" Op.Spatial (Template.Vectorized vec_b);
        ];
      attach = Template.At { parent = "C"; location_var = loc_b };
      role = Template.Load "B";
      align_pad = None;
    };
  let loc_acc =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary "loc_acc"
      (Domain.singleton (base + 1))
  in
  Gen_ctx.prim ctx
    (Prim.Cache_write { tensor = "C"; scope = "vta.acc"; new_stage = "C.accbuf" });
  compute_at_prim ctx ~stage:"C.accbuf" ~parent:"C.store" ~location:loc_acc;
  Gen_ctx.stage ctx
    {
      Template.sname = "C.accbuf";
      scope = "vta.acc";
      loops =
        [
          loop "cb.i" aux_i_1 "i" Op.Spatial Template.Plain;
          loop "cb.j" aux_j_1 "j" Op.Spatial Template.Plain;
        ];
      attach = Template.At { parent = "C.store"; location_var = loc_acc };
      role = Template.Store;
      align_pad = None;
    };
  Gen_ctx.cache ctx
    { cf_stage = "A.inp"; cf_scope = "vta.inp"; cf_loop_vars = [ aux_i_1; len_ai_col ];
      cf_pad = None; cf_dtype_bytes = 1 };
  Gen_ctx.cache ctx
    { cf_stage = "B.wgt"; cf_scope = "vta.wgt"; cf_loop_vars = [ len_bw_row; aux_j_1 ];
      cf_pad = None; cf_dtype_bytes = 1 };
  Gen_ctx.cache ctx
    { cf_stage = "C.accbuf"; cf_scope = "vta.acc"; cf_loop_vars = [ aux_i_1; aux_j_1 ];
      cf_pad = None; cf_dtype_bytes = 4 };
  Gen_ctx.le ctx vec_a len_ai_col;
  Gen_ctx.le ctx vec_b aux_j_1

(* -------------------------------------------------------------------- *)
(* Non-contraction fallback (scan and friends)                            *)
(* -------------------------------------------------------------------- *)

let simple_spatial (ctx : Gen_ctx.t) =
  let desc = ctx.desc in
  let spatial = Op.spatial_iters ctx.op in
  let first, rest =
    match spatial with
    | f :: r -> (f, r)
    | [] -> invalid_arg "Rules_sched.simple_spatial: operator without spatial iterators"
  in
  let dom = divisors_dom first.Op.extent in
  let len =
    Gen_ctx.const_var ctx ~category:Problem.Loop_length ("len_" ^ first.Op.iname)
      first.Op.extent
  in
  let blk = Gen_ctx.add_var ctx "tile_s_block" dom in
  let aux1 =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary ("aux_" ^ first.Op.iname ^ "_1") dom
  in
  let thr = Gen_ctx.add_var ctx "tile_s_thread" dom in
  let aux2 =
    Gen_ctx.add_var ctx ~category:Problem.Auxiliary ("aux_" ^ first.Op.iname ^ "_2") dom
  in
  Gen_ctx.split ctx ~stage:"Y" ~loop:first.Op.iname
    { parent_var = len; outer_var = blk; inner_var = aux1 };
  Gen_ctx.split ctx ~stage:"Y" ~loop:(first.Op.iname ^ ".1")
    { parent_var = aux1; outer_var = thr; inner_var = aux2 };
  (* Keep per-thread work and thread counts in hardware range. *)
  let max_thr =
    Gen_ctx.const_var ctx ~category:Problem.Architectural "arch_max_threads"
      (max 1 (desc.Descriptor.max_threads_per_block / 32))
  in
  Gen_ctx.le ctx thr max_thr;
  let unroll_y = tunable_candidates ctx "unroll_y" unroll_candidates in
  Gen_ctx.prim ctx (Prim.Unroll { stage = "Y"; loop = "inner"; length = unroll_y });
  let bind_blk, bind_thr =
    match desc.Descriptor.family with
    | Descriptor.Tensorcore ->
        (Template.Bound Prim.Block_x, Template.Bound Prim.Thread_y)
    | Descriptor.Dlboost | Descriptor.Vta -> (Template.Bound Prim.Core, Template.Plain)
  in
  let rest_loops =
    List.map
      (fun (it : Op.iter) ->
        let v =
          Gen_ctx.const_var ctx ~category:Problem.Loop_length ("len_" ^ it.Op.iname)
            it.Op.extent
        in
        loop (it.Op.iname ^ ".all") v it.Op.iname it.Op.kind Template.Plain)
      (rest @ Op.reduction_iters ctx.op)
  in
  let inner_ann = Template.Unrolled unroll_y in
  let loops =
    [
      loop (first.Op.iname ^ ".blk") blk first.Op.iname Op.Spatial bind_blk;
      loop (first.Op.iname ^ ".thr") thr first.Op.iname Op.Spatial bind_thr;
    ]
    @ rest_loops
    @ [ loop (first.Op.iname ^ ".in") aux2 first.Op.iname Op.Spatial inner_ann ]
  in
  Gen_ctx.stage ctx
    {
      Template.sname = "Y";
      scope = "local";
      loops;
      attach = Template.Root;
      role = Template.Compute;
      align_pad = None;
    }
