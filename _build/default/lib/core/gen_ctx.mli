(** Generation context shared by the schedule generation rules (S1–S3,
    multi-level tiling) and the constraint generation rules (C1–C6).

    The schedule rules populate the context with stages, primitives and
    typed facts (splits, candidate sets, fused stages, SPM usage,
    DLA-specific limits); the constraint rules then scan those facts to
    emit the CSP — mirroring the two steps of the paper's Algorithm 1. *)

module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Op = Heron_tensor.Op
module Template = Heron_sched.Template
module Prim = Heron_sched.Prim
module Descriptor = Heron_dla.Descriptor

type split_fact = { parent_var : string; outer_var : string; inner_var : string }

type select_fact = {
  sel_var : string;  (** the dependent loop-length variable *)
  loc_var : string;  (** the compute-location tunable *)
  entries : string list;  (** one source variable per attach index *)
}

type cache_fact = {
  cf_stage : string;
  cf_scope : string;
  cf_loop_vars : string list;  (** extent variables, outer to inner *)
  cf_pad : string option;
  cf_dtype_bytes : int;
}

type t = {
  b : Problem.builder;
  desc : Descriptor.t;
  op : Op.t;  (** the operator being scheduled (possibly im2col-derived) *)
  mutable prims : Prim.t list;  (** reversed *)
  mutable stages : Template.stage list;  (** reversed *)
  mutable splits : split_fact list;
  mutable candidates : (string * int list) list;
  mutable selects : select_fact list;
  mutable caches : cache_fact list;
  mutable les : (string * string) list;  (** extra LE facts (C6) *)
  mutable prods : (string * string list) list;  (** extra PROD facts (C6) *)
}

val create : Descriptor.t -> Op.t -> t

(** {2 Variable declaration helpers} *)

val add_var : t -> ?category:Problem.category -> string -> Domain.t -> string
(** Declares a variable and returns its name (for fluent use). *)

val const_var : t -> ?category:Problem.category -> string -> int -> string
(** Declares a singleton-domain variable. *)

(** {2 Fact recording (each also records the display primitive)} *)

val split : t -> stage:string -> loop:string -> split_fact -> unit
val candidate : t -> string -> int list -> unit
val select : t -> select_fact -> unit
val cache : t -> cache_fact -> unit
val le : t -> string -> string -> unit
val prod : t -> string -> string list -> unit
val prim : t -> Prim.t -> unit
val stage : t -> Template.stage -> unit

val stage_names : t -> string list
(** Names of the stages recorded so far, in declaration order. *)

val finish : t -> intrin:string option -> Template.t
(** Assembles the template (stages in declaration order). The CSP is frozen
    separately by {!Rules_cons.apply_all} followed by [Problem.freeze]. *)
