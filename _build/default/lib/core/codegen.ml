module Op = Heron_tensor.Op
module Concrete = Heron_sched.Concrete
module Template = Heron_sched.Template
module Prim = Heron_sched.Prim
module Descriptor = Heron_dla.Descriptor
module Perf = Heron_dla.Perf_model

let scope_qualifier (desc : Descriptor.t) scope =
  match (desc.Descriptor.family, scope) with
  | Descriptor.Tensorcore, "shared" -> "__shared__"
  | Descriptor.Tensorcore, "wmma.a" -> "wmma::fragment<matrix_a>"
  | Descriptor.Tensorcore, "wmma.b" -> "wmma::fragment<matrix_b>"
  | Descriptor.Tensorcore, "wmma.acc" -> "wmma::fragment<accumulator>"
  | Descriptor.Dlboost, "l1" -> "/* L1-resident */"
  | Descriptor.Dlboost, "l2" -> "/* L2-resident */"
  | Descriptor.Vta, "vta.inp" -> "VTA_INP_BUFF"
  | Descriptor.Vta, "vta.wgt" -> "VTA_WGT_BUFF"
  | Descriptor.Vta, "vta.acc" -> "VTA_ACC_BUFF"
  | _ -> "/* " ^ scope ^ " */"

let dtype_name = function
  | Op.F16 -> "half"
  | Op.F32 -> "float"
  | Op.I8 -> "int8_t"
  | Op.I32 -> "int32_t"

let loop_header indent (l : Concrete.cloop) =
  let pragma =
    match l.Concrete.ann with
    | Concrete.Unrolled n -> Printf.sprintf "%s#pragma unroll %d\n" indent n
    | Concrete.Vectorized n when n > 1 ->
        Printf.sprintf "%s/* vectorized x%d */\n" indent n
    | _ -> ""
  in
  match l.Concrete.ann with
  | Concrete.Bound ax ->
      Printf.sprintf "%sconst int %s = %s;  // 0..%d\n" indent
        (String.map (fun c -> if c = '.' then '_' else c) l.Concrete.name)
        (Prim.thread_axis_to_string ax) l.Concrete.extent
  | Concrete.Tensorized ->
      Printf.sprintf "%s/* intrinsic dim %s = %d */\n" indent l.Concrete.name
        l.Concrete.extent
  | _ ->
      Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {\n" indent
        (String.map (fun c -> if c = '.' then '_' else c) l.Concrete.name)
        (String.map (fun c -> if c = '.' then '_' else c) l.Concrete.name)
        l.Concrete.extent
        (String.map (fun c -> if c = '.' then '_' else c) l.Concrete.name)
  |> fun s -> pragma ^ s

let needs_close (l : Concrete.cloop) =
  match l.Concrete.ann with
  | Concrete.Bound _ | Concrete.Tensorized -> false
  | _ -> true

let intrinsic_call (desc : Descriptor.t) prog indent =
  match Concrete.tensorize_mnk prog with
  | None -> indent ^ "acc += a_frag * b_frag;  // scalar fallback\n"
  | Some (m, n, k) -> (
      match desc.Descriptor.family with
      | Descriptor.Tensorcore ->
          Printf.sprintf "%swmma::mma_sync(acc, a_frag, b_frag, acc);  // %dx%dx%d\n"
            indent m n k
      | Descriptor.Dlboost ->
          Printf.sprintf "%sacc = _mm512_dpbusd_epi32(acc, a_vec, b_vec);  // (%d,%d,%d)\n"
            indent m n k
      | Descriptor.Vta ->
          Printf.sprintf "%svta.gemm(acc_idx, inp_idx, wgt_idx);  // (%d,%d,%d)\n" indent m
            n k)

let stage_buffers desc prog =
  Concrete.load_stages prog
  @ List.filter
      (fun (s : Concrete.cstage) ->
        s.Concrete.role = Template.Store && s.Concrete.scope <> "global")
      prog.Concrete.stages
  |> List.map (fun (s : Concrete.cstage) ->
         let bytes = Concrete.footprint_bytes prog s in
         let dt =
           match s.Concrete.role with
           | Template.Load tensor -> (
               match
                 List.find_opt (fun (t : Op.tensor) -> t.Op.tname = tensor)
                   prog.Concrete.op.Op.inputs
               with
               | Some t -> t.Op.dt
               | None -> prog.Concrete.op.Op.out.Op.dt)
           | _ -> prog.Concrete.op.Op.out.Op.dt
         in
         Printf.sprintf "  %s %s %s[%d];  // %d bytes%s"
           (scope_qualifier desc s.Concrete.scope)
           (dtype_name dt)
           (String.map (fun c -> if c = '.' then '_' else c) s.Concrete.name)
           (bytes / Op.dtype_bytes dt)
           bytes
           (if s.Concrete.align_pad > 0 then
              Printf.sprintf " (storage_align pad %d)" s.Concrete.align_pad
            else ""))

let launch_config desc prog =
  let bx = Concrete.axis_extent prog Prim.Block_x in
  let by = Concrete.axis_extent prog Prim.Block_y in
  let warps = Concrete.axis_extent prog Prim.Thread_y in
  let cores = Concrete.axis_extent prog Prim.Core in
  match desc.Descriptor.family with
  | Descriptor.Tensorcore ->
      Printf.sprintf "kernel<<<dim3(%d, %d), dim3(32, %d)>>>  // %d blocks, %d warps each"
        bx by warps (bx * by) warps
  | Descriptor.Dlboost -> Printf.sprintf "#pragma omp parallel for  // %d chunks" cores
  | Descriptor.Vta -> "vta_run(insn_queue)  // single compute core"

(* Emit the body of one stage: its copy loops (load/store stages) or the
   compute nest with the intrinsic at the innermost point, recursing into
   stages attached at each loop level. *)
let rec emit_stage buf desc prog depth (s : Concrete.cstage) =
  let attached_at =
    List.filter
      (fun (c : Concrete.cstage) ->
        match c.Concrete.attach with Some (p, _) -> p = s.Concrete.name | None -> false)
      prog.Concrete.stages
  in
  let indent n = String.make (2 * n) ' ' in
  let rec loops d = function
    | [] ->
        (match s.Concrete.role with
        | Template.Compute ->
            Buffer.add_string buf (intrinsic_call desc prog (indent d))
        | Template.Load tensor ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s = %s[...];  // coalesced copy\n" (indent d)
                 (String.map (fun c -> if c = '.' then '_' else c) s.Concrete.name)
                 tensor)
        | Template.Store ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s[...] = acc;  // write back\n" (indent d)
                 prog.Concrete.op.Op.out.Op.tname));
        d
    | (l : Concrete.cloop) :: rest ->
        Buffer.add_string buf (loop_header (indent d) l);
        let d' = if needs_close l then d + 1 else d in
        (* Stages attached after this loop nest inside it. *)
        let idx = List.length s.Concrete.loops - List.length rest - 1 in
        List.iter
          (fun (c : Concrete.cstage) ->
            match c.Concrete.attach with
            | Some (_, at) when at = idx -> emit_stage buf desc prog d' c
            | _ -> ())
          attached_at;
        let d_end = loops d' rest in
        if needs_close l then begin
          Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d));
          d_end - 1
        end
        else d_end
  in
  ignore (loops depth s.Concrete.loops)

let emit desc prog =
  let buf = Buffer.create 1024 in
  let op = prog.Concrete.op in
  Buffer.add_string buf
    (Printf.sprintf "// generated by Heron for %s\n// operator: %s\n// launch: %s\n"
       desc.Descriptor.dname (Op.to_string op) (launch_config desc prog));
  let b = Perf.analyze desc prog in
  Buffer.add_string buf
    (Printf.sprintf "// predicted: %.1f us (utilization %.0f%%)\n"
       b.Perf.latency_us (100.0 *. b.Perf.utilization));
  Buffer.add_string buf "\nvoid kernel(...) {\n";
  List.iter
    (fun line -> Buffer.add_string buf (line ^ "\n"))
    (stage_buffers desc prog);
  Buffer.add_string buf "\n";
  (* Emit from the root stages; attached stages are inlined recursively. *)
  List.iter
    (fun (s : Concrete.cstage) ->
      if s.Concrete.attach = None then emit_stage buf desc prog 1 s)
    prog.Concrete.stages;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
