(** Constraint generation rules (paper Table 8, Algorithm 1 Step 2).

    Each rule scans the facts the schedule generation rules recorded in the
    {!Gen_ctx} and emits variables and constraints:

    - C1/C2 [AddLoopSplit]/[AddLoopFuse]: every split binds the parent loop
      length to the product of the child lengths (PROD).
    - C3 [AddCandidates]: variables with architectural candidate sets get
      IN constraints.
    - C4 [AddStageFuse]: lengths of loops in a fused (compute_at) stage
      depend on the location tunable (SELECT).
    - C5 [AddMemLimit]: per-scope memory consumption — per-tensor tile
      PRODs, a SUM across tensors, and an LE against the capacity.
    - C6 [AddDLASpecific]: descriptor-specific constraints (intrinsic
      product, thread limits, VTA loop ordering, ...), recorded as raw
      LE/PROD facts by the schedule rules. *)

val apply_all : Gen_ctx.t -> unit
(** Runs C1–C6 over the context, mutating its problem builder. *)

val apply_c5 : Gen_ctx.t -> unit
(** The memory-limit rule alone (exposed for the customization example and
    tests). *)
