(** Proxies for vendor-provided hand-tuned libraries (cuDNN, cuBLAS,
    PyTorch kernels, oneDNN).

    A hand-tuned library ships a small menu of expert-chosen kernel
    configurations tuned for common (large, square-ish) shapes and picks
    the best applicable one at run time. We model exactly that: a fixed set
    of preset parameter preferences per DLA family, each decoded to the
    nearest valid configuration and measured on the same simulator; the
    best preset wins. The menu does not adapt to unusual shapes, which is
    where exploration-based generation pulls ahead — as in the paper. *)

module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor

type library = Cudnn | Cublas | Pytorch | Onednn

val library_name : library -> string

val latency_us : ?seed:int -> library:library -> Descriptor.t -> Op.t -> float option
(** Latency of the library's best preset kernel for this operator, or
    [None] when no preset is feasible (the library refuses the shape). *)
