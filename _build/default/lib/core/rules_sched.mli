(** Schedule generation rules (paper Tables 2 and 6, Algorithm 1 Step 1).

    For a tensorizable contraction the builders apply, in order: Rule S1
    (tensorize via the hardware intrinsic), Rule S2 (multi-level SPM cache
    stages, e.g. shared memory plus wmma fragments), Rule S3 (multi-scope
    SPM cache stages, e.g. separate input/weight buffers on VTA), and the
    general multi-level-tiling rule. Each emits stages, primitives and
    constraint facts into the {!Gen_ctx}.

    All builders operate on the implicit-GEMM operator produced by
    {!Heron_tensor.Gemm_view.derived_op} (iterators [b], [i], [j], [r]). *)

val tensorcore_contraction : Gen_ctx.t -> tensorize:bool -> unit
(** The five-stage TensorCore structure (paper Eq. 1): global -> shared ->
    fragments -> TensorCores -> shared -> global. With [tensorize:false]
    the same tiling runs on CUDA cores (the Ansor-style fallback). *)

val dlboost_contraction : Gen_ctx.t -> tensorize:bool -> unit
(** VNNI (1, 16, 4) int8 structure with L2/L1 cache staging, core-parallel
    outer tiling, and a packed-layout tunable. *)

val vta_contraction : Gen_ctx.t -> unit
(** VTA (1, 16, 16) structure with explicit input/weight/accumulator
    buffers and the write-timing loop-order constraint (C6). *)

val simple_spatial : Gen_ctx.t -> unit
(** Fallback for non-contraction operators (scan): block/thread tiling of
    the first spatial iterator, remaining loops kept whole. *)
