(** The generated library: a persistent collection of tuned schedules, one
    per (operator shape, DLA) — what a downstream user links against
    instead of re-tuning.

    Entries are stored in a line-oriented text format
    ([op_key|dla|latency_us|var=value,...]) so libraries can be versioned
    and diffed. Looking an entry up re-generates the schedule template for
    the operator (deterministic) and instantiates it with the stored
    assignment. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor

type entry = {
  op_key : string;
  dla : string;
  latency_us : float;
  assignment : Assignment.t;
}

type t

val empty : t
val size : t -> int
val entries : t -> entry list

val op_key : Op.t -> string
(** Canonical shape+dtype key, e.g. ["gemm/f16/i:1024,j:1024,r:1024"]. *)

val add : t -> Descriptor.t -> Op.t -> latency_us:float -> Assignment.t -> t
(** Inserts (or replaces, if faster) the schedule for this operator/DLA. *)

val lookup : t -> Descriptor.t -> Op.t -> entry option

val program_of : entry -> Descriptor.t -> Op.t -> Concrete.t
(** Re-materializes the stored schedule as a concrete program.
    @raise Invalid_argument if the entry does not match the operator. *)

val build :
  ?budget:int -> ?seed:int -> Descriptor.t -> Op.t list -> t
(** Tunes every operator and collects the winners — the paper's "library
    generation" end product. Operators that admit no valid program are
    skipped. *)

val save : t -> string -> unit
val load : string -> t
(** @raise Failure on malformed files. *)

val to_string : t -> string
