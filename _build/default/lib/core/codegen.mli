(** Pseudo-code generation: renders a concrete (scheduled) program as a
    readable kernel in the target's idiom — CUDA-with-wmma for TensorCore,
    AVX512-VNNI-flavored C for DL Boost, VTA runtime calls for VTA.

    The output is documentation-quality pseudo-code (the loop structure,
    memory staging, bindings, intrinsic calls and launch configuration of
    the generated program), not compilable source: the containers this
    reproduction runs in have no CUDA/VNNI toolchain to consume it. *)

module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor

val emit : Descriptor.t -> Concrete.t -> string
(** Full kernel rendering, including a launch-configuration header. *)

val launch_config : Descriptor.t -> Concrete.t -> string
(** One-line grid/block (or core/queue) summary. *)
