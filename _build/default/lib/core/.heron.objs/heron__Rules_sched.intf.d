lib/core/rules_sched.mli: Gen_ctx
