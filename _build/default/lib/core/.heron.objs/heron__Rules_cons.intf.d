lib/core/rules_cons.mli: Gen_ctx
