lib/core/rules_sched.ml: Gen_ctx Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List Printf
