lib/core/rules_cons.ml: Gen_ctx Hashtbl Heron_csp Heron_dla List Printf
