lib/core/codegen.ml: Buffer Heron_dla Heron_sched Heron_tensor List Printf String
