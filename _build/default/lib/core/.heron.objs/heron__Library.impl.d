lib/core/library.ml: Generator Heron_csp Heron_dla Heron_sched Heron_search Heron_tensor List Map Pipeline Printf String
