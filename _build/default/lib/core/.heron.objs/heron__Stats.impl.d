lib/core/stats.ml: Heron_csp List Printf
