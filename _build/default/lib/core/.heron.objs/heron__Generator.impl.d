lib/core/generator.ml: Gen_ctx Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List Rules_cons Rules_sched String
