lib/core/gen_ctx.ml: Heron_csp Heron_dla Heron_sched Heron_tensor List
