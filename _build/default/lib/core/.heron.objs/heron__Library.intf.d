lib/core/library.mli: Heron_csp Heron_dla Heron_sched Heron_tensor
