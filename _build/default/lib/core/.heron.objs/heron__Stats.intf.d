lib/core/stats.mli: Heron_csp
