lib/core/hand_tuned.mli: Heron_dla Heron_tensor
