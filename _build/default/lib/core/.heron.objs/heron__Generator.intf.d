lib/core/generator.mli: Heron_csp Heron_dla Heron_sched Heron_tensor
