lib/core/hand_tuned.ml: Generator Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List
