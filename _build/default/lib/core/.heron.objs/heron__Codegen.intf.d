lib/core/codegen.mli: Heron_dla Heron_sched
