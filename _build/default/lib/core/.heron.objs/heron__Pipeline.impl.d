lib/core/pipeline.ml: Generator Heron_csp Heron_dla Heron_sched Heron_search Heron_tensor Heron_util
