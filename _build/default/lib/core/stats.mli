(** Variable/constraint statistics of a generated search space — the data
    behind the paper's Tables 4 and 5. *)

module Problem = Heron_csp.Problem

type counts = {
  architectural : int;
  loop_length : int;
  tunable : int;
  auxiliary : int;
  total_vars : int;
  total_cons : int;
}

val of_problem : Problem.t -> counts

val to_string : counts -> string
