(** The Space Generator (paper Algorithm 1): from a compute description and
    a DLA descriptor to a schedule template plus the constrained search
    space [CSP_initial]. *)

module Op = Heron_tensor.Op
module Problem = Heron_csp.Problem
module Template = Heron_sched.Template
module Descriptor = Heron_dla.Descriptor

type t = {
  template : Template.t;
  problem : Problem.t;  (** the constrained search space *)
  tensorized : bool;  (** Rule S1 applied *)
  original_op : Op.t;
      (** the user's operator; [template.op] is its im2col-derived GEMM when
          the contraction path was taken *)
}

val generate : ?seed:int -> Descriptor.t -> Op.t -> t
(** Applies the schedule generation rules (picking the tensorized path when
    the intrinsic fits, falling back to the scalar/SIMT path otherwise),
    then the constraint generation rules. [seed] only affects the internal
    satisfiability probe. *)

val build :
  ?orig:Op.t * Heron_tensor.Gemm_view.t -> Descriptor.t -> Op.t -> tensorize:bool -> t
(** Low-level entry: force a specific path (used by baselines and tests).
    The operator must already be the scheduled form (derived GEMM for
    contractions). [orig] supplies the original operator and its
    implicit-GEMM view so the im2col mapping is recorded as bookkeeping
    variables and constraints in the space. *)

val satisfiable : ?seed:int -> Problem.t -> bool
