module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor

type entry = {
  op_key : string;
  dla : string;
  latency_us : float;
  assignment : Assignment.t;
}

module M = Map.Make (String)

type t = entry M.t

let empty = M.empty
let size = M.cardinal
let entries t = List.map snd (M.bindings t)

let op_key (op : Op.t) =
  Printf.sprintf "%s/%s/%s" op.Op.cname
    (Op.dtype_to_string (match op.Op.inputs with t :: _ -> t.Op.dt | [] -> op.Op.out.Op.dt))
    (String.concat ","
       (List.map
          (fun (it : Op.iter) -> Printf.sprintf "%s:%d" it.Op.iname it.Op.extent)
          op.Op.iters))

let full_key desc op = op_key op ^ "@" ^ desc.Descriptor.dname

let add t desc op ~latency_us assignment =
  let key = full_key desc op in
  let entry = { op_key = op_key op; dla = desc.Descriptor.dname; latency_us; assignment } in
  match M.find_opt key t with
  | Some old when old.latency_us <= latency_us -> t
  | _ -> M.add key entry t

let lookup t desc op = M.find_opt (full_key desc op) t

let program_of entry desc op =
  if entry.op_key <> op_key op then
    invalid_arg
      (Printf.sprintf "Library.program_of: entry is for %s, not %s" entry.op_key (op_key op));
  let gen = Generator.generate desc op in
  Concrete.instantiate gen.Generator.template entry.assignment

let build ?(budget = 200) ?(seed = 42) desc ops =
  List.fold_left
    (fun lib op ->
      let tuned = Pipeline.tune ~budget ~seed desc op in
      match
        ( Pipeline.best_latency_us tuned,
          tuned.Pipeline.outcome.Heron_search.Cga.result.Heron_search.Env.best_assignment )
      with
      | Some latency_us, Some a -> add lib desc op ~latency_us a
      | _ -> lib)
    empty ops

let entry_to_line e =
  Printf.sprintf "%s|%s|%.6f|%s" e.op_key e.dla e.latency_us
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Assignment.bindings e.assignment)))

let entry_of_line line =
  match String.split_on_char '|' line with
  | [ op_key; dla; lat; bindings ] ->
      let assignment =
        if bindings = "" then Assignment.empty
        else
          String.split_on_char ',' bindings
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | Some i ->
                     ( String.sub kv 0 i,
                       int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) )
                 | None -> failwith ("Library.load: malformed binding " ^ kv))
          |> Assignment.of_list
      in
      { op_key; dla; latency_us = float_of_string lat; assignment }
  | _ -> failwith ("Library.load: malformed line " ^ line)

let to_string t =
  entries t |> List.map entry_to_line |> String.concat "\n"
  |> fun body -> if body = "" then body else body ^ "\n"

let save t path =
  let oc = open_out path in
  (try output_string oc (to_string t)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let load path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line ->
        let acc = if String.trim line = "" then acc else entry_of_line line :: acc in
        read acc
    | exception End_of_file -> acc
  in
  let items = read [] in
  close_in ic;
  List.fold_left
    (fun t e -> M.add (e.op_key ^ "@" ^ e.dla) e t)
    empty items
