module Problem = Heron_csp.Problem

type counts = {
  architectural : int;
  loop_length : int;
  tunable : int;
  auxiliary : int;
  total_vars : int;
  total_cons : int;
}

let of_problem p =
  let count cat = List.length (Problem.vars_of_category p cat) in
  {
    architectural = count Problem.Architectural;
    loop_length = count Problem.Loop_length;
    tunable = count Problem.Tunable;
    auxiliary = count Problem.Auxiliary;
    total_vars = Problem.n_vars p;
    total_cons = Problem.n_cons p;
  }

let to_string c =
  Printf.sprintf
    "arch=%d loop-length=%d tunable=%d auxiliary=%d | variables=%d constraints=%d"
    c.architectural c.loop_length c.tunable c.auxiliary c.total_vars c.total_cons
