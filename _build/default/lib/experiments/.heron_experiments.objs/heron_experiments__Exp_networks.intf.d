lib/experiments/exp_networks.mli:
