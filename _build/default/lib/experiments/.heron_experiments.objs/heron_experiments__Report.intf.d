lib/experiments/report.mli:
