lib/experiments/exp_ops.mli: Heron_baselines Heron_dla Heron_tensor
