lib/experiments/exp_space.ml: Hashtbl Heron Heron_baselines Heron_csp Heron_dla Heron_nets Heron_sched Heron_tensor Heron_util List Printf Report
