lib/experiments/exp_space.mli:
