lib/experiments/exp_ablation.ml: Heron Heron_csp Heron_dla Heron_search Heron_tensor Heron_util List Printf Report Sys
