lib/experiments/exp_search.mli: Heron_search
