lib/experiments/exp_time.mli:
