lib/experiments/exp_networks.ml: Hashtbl Heron Heron_baselines Heron_dla Heron_nets Heron_tensor List Printf Report String
