lib/experiments/exp_time.ml: Heron Heron_baselines Heron_dla Heron_search Heron_tensor List Printf Report Sys
