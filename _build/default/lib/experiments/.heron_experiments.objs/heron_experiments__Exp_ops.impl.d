lib/experiments/exp_ops.ml: Heron Heron_baselines Heron_dla Heron_nets Heron_tensor List Option Printf Report
