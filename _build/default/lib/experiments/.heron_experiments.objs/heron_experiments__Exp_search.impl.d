lib/experiments/exp_search.ml: Heron Heron_dla Heron_search Heron_tensor List Printf Report String
