(** Search-space structure experiments: Tables 4 and 5 (variable and
    constraint counts) and Figure 11 (space-quality visualization). *)

val table4 : unit -> string
(** Variable-category breakdown for GEMM on TensorCore. *)

val table5 : unit -> string
(** Variables/constraints for GEMM, BMM, C1D, C2D, C3D on TensorCore. *)

val fig11 : ?samples:int -> ?seed:int -> unit -> string
(** Heat map of the best sampled GFLOPS per (shared-memory-of-C,
    shared-memory-of-A) sub-space, for Heron's automatically constrained
    space vs the AutoTVM-style manually constrained space on GEMM G1. *)
