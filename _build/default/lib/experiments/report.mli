(** Plain-text table rendering for experiment output. *)

val table : header:string list -> string list list -> string
(** Monospace-aligned table with a separator under the header. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. *)

val fmt_opt : float option -> string
(** Formats a latency/ratio, "-" for [None]. *)

val fmt_ratio : float option -> string

val csv : header:string list -> string list list -> string
