module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Concrete = Heron_sched.Concrete
module Measure = Heron_dla.Measure
module Solver = Heron_csp.Solver
module Rng = Heron_util.Rng
module Generator = Heron.Generator
module Stats = Heron.Stats
module Relax = Heron_baselines.Relax
module Suites = Heron_nets.Suites

let table4 () =
  let op = Op.gemm ~m:1024 ~n:1024 ~k:1024 () in
  let gen = Generator.generate Descriptor.v100 op in
  let c = Stats.of_problem gen.Generator.problem in
  "Table 4 — variables describing GEMM's constraints on TensorCore\n\n"
  ^ Report.table
      ~header:[ "Architectural"; "Loop length"; "Tunable"; "Others" ]
      [
        [ string_of_int c.Stats.architectural; string_of_int c.Stats.loop_length;
          string_of_int c.Stats.tunable; string_of_int c.Stats.auxiliary ];
      ]

let table5_ops () =
  [
    ("GEMM", Op.gemm ~m:1024 ~n:1024 ~k:1024 ());
    ("BMM", Op.bmm ~b:192 ~m:128 ~n:128 ~k:64 ());
    ("C1D", Op.conv1d ~n:16 ~ci:64 ~l:256 ~co:128 ~kl:3 ~stride:1 ~pad:1 ());
    ("C2D", Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
    ( "C3D",
      Op.conv3d ~n:8 ~ci:16 ~d:8 ~h:28 ~w:28 ~co:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () );
  ]

let table5 () =
  let rows =
    List.map
      (fun (name, op) ->
        let gen = Generator.generate Descriptor.v100 op in
        let c = Stats.of_problem gen.Generator.problem in
        [ name; string_of_int c.Stats.total_vars; string_of_int c.Stats.total_cons ])
      (table5_ops ())
  in
  "Table 5 — number of variables and constraints used for space description\n\n"
  ^ Report.table ~header:[ "operator"; "variables"; "constraints" ] rows

(* Figure 11: sample a space, bucket samples by the shared-memory bytes of
   the C and A tiles (log2 bins), record the best GFLOPS per bucket. *)
let sample_grid ~samples ~seed desc (gen : Generator.t) problem =
  let rng = Rng.create seed in
  let measurer = Measure.create desc in
  let grid = Hashtbl.create 64 in
  let n_valid = ref 0 and n_total = ref 0 in
  let assignments = Solver.rand_sat rng problem samples in
  List.iter
    (fun a ->
      incr n_total;
      match Concrete.instantiate gen.Generator.template a with
      | exception Invalid_argument _ -> ()
      | prog ->
          let bytes_of name =
            match Concrete.find_stage prog name with
            | exception Invalid_argument _ -> 0
            | s -> Concrete.footprint_bytes prog s
          in
          let bucket b = if b <= 0 then 0 else Heron_util.Ints.log2_floor b in
          let key = (bucket (bytes_of "C.shared"), bucket (bytes_of "A.shared")) in
          let gflops =
            match Measure.run measurer prog with
            | Error _ -> 0.0
            | Ok l ->
                incr n_valid;
                prog.Concrete.op.Op.flops /. l /. 1e3
          in
          let prev = match Hashtbl.find_opt grid key with Some g -> g | None -> 0.0 in
          Hashtbl.replace grid key (max prev gflops))
    assignments;
  (grid, !n_valid, !n_total)

let render_grid grid =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) grid [] in
  if keys = [] then "(no samples)\n"
  else begin
    let cs = List.sort_uniq compare (List.map fst keys) in
    let as_ = List.sort_uniq compare (List.map snd keys) in
    let rows =
      List.map
        (fun c ->
          Printf.sprintf "2^%d" c
          :: List.map
               (fun a ->
                 match Hashtbl.find_opt grid (c, a) with
                 | None -> "."
                 | Some 0.0 -> "inv"
                 | Some g -> Printf.sprintf "%.0f" g)
               as_)
        cs
    in
    Report.table
      ~header:("smem(C) \\ smem(A)" :: List.map (fun a -> Printf.sprintf "2^%d" a) as_)
      rows
  end

let fig11 ?(samples = 300) ?(seed = 42) () =
  let desc = Descriptor.v100 in
  let op = List.assoc "G1" Suites.table9_gemm in
  let gen = Generator.generate desc op in
  let heron_grid, hv, ht = sample_grid ~samples ~seed desc gen gen.Generator.problem in
  let relaxed =
    gen.Generator.problem |> Relax.drop_memory_limits
    |> Relax.fix_vars
         [ ("pad_a", 0); ("pad_b", 0); ("pad_c", 0); ("loc_a", 0); ("loc_b", 0);
           ("intrin_m", 16); ("intrin_n", 16); ("intrin_k", 16) ]
  in
  let tvm_grid, tv, tt = sample_grid ~samples ~seed desc gen relaxed in
  Printf.sprintf
    "Figure 11 — search-space quality on GEMM G1 (best sampled GFLOPS per sub-space;\n\
     rows: shared memory of C tile, columns: shared memory of A tile; 'inv' = only\n\
     invalid programs sampled there)\n\n\
     Heron space (%d/%d samples valid):\n%s\n\
     AutoTVM-style space (%d/%d samples valid):\n%s"
    hv ht (render_grid heron_grid) tv tt (render_grid tvm_grid)
