(** Figure 10: end-to-end network performance on TensorCore. *)

val fig10 : ?budget:int -> ?seed:int -> unit -> string
(** Multiplicity-weighted network latency for Heron, AutoTVM, AMOS and the
    PyTorch (cuDNN/cuBLAS) proxy on ResNet-50, VGG-16, Inception-V3 and
    BERT, reported relative to Heron. Distinct layer shapes are tuned once
    and shared across occurrences. *)
