module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Perf_model = Heron_dla.Perf_model
module Methods = Heron_baselines.Methods
module Suites = Heron_nets.Suites

type cell = { method_name : string; latency_us : float option }

type shape_result = { shape_name : string; op : Op.t; cells : cell list }

let run_shapes ~budget ~seed desc ~methods shapes =
  List.map
    (fun (shape_name, op) ->
      let cells =
        List.map
          (fun (m : Methods.t) ->
            let latency_us =
              if m.Methods.supports desc op then
                (m.Methods.run desc op ~budget ~seed).Methods.latency_us
              else None
            in
            { method_name = m.Methods.name; latency_us })
          methods
      in
      { shape_name; op; cells })
    shapes

let heron_latency r =
  List.find_map
    (fun c -> if c.method_name = "Heron" then c.latency_us else None)
    r.cells

let relative_to_heron r =
  let h = heron_latency r in
  List.filter_map
    (fun c ->
      if c.method_name = "Heron" then None
      else
        Some
          ( c.method_name,
            match (c.latency_us, h) with
            | Some l, Some lh -> Some (l /. lh)
            | _ -> None ))
    r.cells

(* Geometric-mean Heron speedup per (operator class, method). *)
let class_table ~budget ~seed desc ~methods suites =
  let method_names =
    List.filter_map
      (fun (m : Methods.t) -> if m.Methods.name = "Heron" then None else Some m.Methods.name)
      methods
  in
  let rows =
    List.map
      (fun (cls, ops) ->
        let shapes = List.mapi (fun i op -> (Printf.sprintf "%s#%d" cls i, op)) ops in
        let results = run_shapes ~budget ~seed desc ~methods shapes in
        let per_method name =
          let ratios =
            List.filter_map
              (fun r ->
                relative_to_heron r
                |> List.assoc_opt name
                |> Option.join)
              results
          in
          if ratios = [] then "-" else Printf.sprintf "%.2fx" (Report.geomean ratios)
        in
        cls :: List.map per_method method_names)
      suites
  in
  Report.table ~header:("operator" :: List.map (fun n -> "Heron vs " ^ n) method_names) rows

let fig6 ?(budget = 80) ?(seed = 42) () =
  let methods =
    [ Methods.heron; Methods.autotvm; Methods.ansor; Methods.amos;
      Methods.vendor Heron.Hand_tuned.Pytorch ]
  in
  "Figure 6 — operator performance on NVIDIA V100 TensorCore\n"
  ^ "(geomean of latency_method / latency_Heron; >1 means Heron is faster)\n\n"
  ^ class_table ~budget ~seed Descriptor.v100 ~methods Suites.tensorcore_ops

let fig7 ?(budget = 80) ?(seed = 42) () =
  let methods =
    [ Methods.heron; Methods.autotvm; Methods.ansor; Methods.amos; Methods.akg;
      Methods.vendor Heron.Hand_tuned.Cublas; Methods.vendor Heron.Hand_tuned.Cudnn ]
  in
  let section desc =
    let shapes = Suites.table9_gemm @ Suites.table9_c2d in
    let results = run_shapes ~budget ~seed desc ~methods shapes in
    let rows =
      List.map
        (fun r ->
          r.shape_name
          :: List.map
               (fun c ->
                 match c.latency_us with
                 | None -> "-"
                 | Some l -> Printf.sprintf "%.2f" (Perf_model.achieved_tflops r.op l))
               r.cells)
        results
    in
    Printf.sprintf "%s (achieved TFLOPS, higher is better)\n%s" desc.Descriptor.dname
      (Report.table
         ~header:("shape" :: List.map (fun (m : Methods.t) -> m.Methods.name) methods)
         rows)
  in
  "Figure 7 / Table 9 — GEMM G1-G5 and C2D C1-C5 on T4 and A100\n\n"
  ^ section Descriptor.t4 ^ "\n" ^ section Descriptor.a100

let fig8 ?(budget = 80) ?(seed = 42) () =
  let methods =
    [ Methods.heron; Methods.autotvm; Methods.ansor; Methods.amos;
      Methods.vendor Heron.Hand_tuned.Onednn ]
  in
  "Figure 8 — operator performance on Intel DL Boost (int8)\n"
  ^ "(geomean of latency_method / latency_Heron; >1 means Heron is faster)\n\n"
  ^ class_table ~budget ~seed Descriptor.dlboost ~methods Suites.dlboost_ops

let fig9 ?(budget = 80) ?(seed = 42) () =
  let methods = [ Methods.heron; Methods.autotvm ] in
  "Figure 9 — operator performance on TVM VTA (int8)\n"
  ^ "(geomean of latency_method / latency_Heron; >1 means Heron is faster)\n\n"
  ^ class_table ~budget ~seed Descriptor.vta ~methods Suites.vta_ops

let table9 () =
  let gemm_rows =
    List.map
      (fun (name, (op : Op.t)) ->
        let d n = (Op.find_iter op n).Op.extent in
        [ name; string_of_int (d "i"); string_of_int (d "j"); string_of_int (d "r") ])
      Suites.table9_gemm
  in
  let c2d_rows =
    List.map
      (fun (name, (op : Op.t)) ->
        let d n = (Op.find_iter op n).Op.extent in
        [ name; string_of_int (d "n"); string_of_int (d "oh"); string_of_int (d "ow");
          string_of_int (d "rc"); string_of_int (d "co"); string_of_int (d "rh") ])
      Suites.table9_c2d
  in
  "Table 9 — evaluated configurations\n\n"
  ^ Report.table ~header:[ "GEMM"; "M"; "N"; "K" ] gemm_rows
  ^ "\n"
  ^ Report.table ~header:[ "C2D"; "batch"; "OH"; "OW"; "CI"; "CO"; "R" ] c2d_rows
