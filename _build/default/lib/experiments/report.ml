let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun acc row -> match List.nth_opt row i with Some c -> max acc (String.length c) | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    List.mapi
      (fun i w ->
        let cell = match List.nth_opt row i with Some c -> c | None -> "" in
        cell ^ String.make (w - String.length cell) ' ')
      widths
    |> String.concat "  "
  in
  let sep = List.map (fun w -> String.make w '-') widths |> String.concat "  " in
  String.concat "\n" ((render header :: sep :: List.map render rows) @ [ "" ])

let geomean = function
  | [] -> 0.0
  | xs ->
      let logs = List.map log xs in
      exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length xs))

let fmt_opt = function None -> "-" | Some x -> Printf.sprintf "%.1f" x

let fmt_ratio = function None -> "-" | Some x -> Printf.sprintf "%.2fx" x

let csv ~header rows =
  let line cells = String.concat "," cells in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"
