(** Operator-level comparisons: Figures 6 (V100), 7 (T4/A100 with Table 9
    shapes), 8 (DL Boost) and 9 (VTA). *)

module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Methods = Heron_baselines.Methods

type cell = { method_name : string; latency_us : float option }

type shape_result = { shape_name : string; op : Op.t; cells : cell list }

val run_shapes :
  budget:int ->
  seed:int ->
  Descriptor.t ->
  methods:Methods.t list ->
  (string * Op.t) list ->
  shape_result list

val relative_to_heron : shape_result -> (string * float option) list
(** Per-method speedup of Heron over the method: latency_method /
    latency_heron (>1 means Heron is faster), [None] when either failed. *)

val fig6 : ?budget:int -> ?seed:int -> unit -> string
(** TensorCore V100, 9 operator classes: geometric-mean performance of each
    method relative to Heron. *)

val fig7 : ?budget:int -> ?seed:int -> unit -> string
(** T4 and A100 absolute TFLOPS on the Table 9 GEMM/C2D shapes. *)

val fig8 : ?budget:int -> ?seed:int -> unit -> string
(** DL Boost operator suite. *)

val fig9 : ?budget:int -> ?seed:int -> unit -> string
(** VTA: GEMM / C2D / BMM vs AutoTVM. *)

val table9 : unit -> string
(** The evaluated shape configurations. *)
