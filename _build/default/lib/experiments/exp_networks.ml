module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Methods = Heron_baselines.Methods
module Models = Heron_nets.Models

let op_key (op : Op.t) =
  op.Op.cname ^ "/"
  ^ String.concat "x"
      (List.map (fun (it : Op.iter) -> string_of_int it.Op.extent) op.Op.iters)

let fig10 ?(budget = 48) ?(seed = 42) () =
  let desc = Descriptor.v100 in
  let methods =
    [ Methods.heron; Methods.autotvm; Methods.amos;
      Methods.vendor Heron.Hand_tuned.Pytorch ]
  in
  (* Tune each distinct layer shape once per method. *)
  let cache : (string, float option) Hashtbl.t = Hashtbl.create 128 in
  let layer_latency (m : Methods.t) op =
    let key = m.Methods.name ^ "|" ^ op_key op in
    match Hashtbl.find_opt cache key with
    | Some l -> l
    | None ->
        (* A couple of retry seeds: at reduced budgets a stochastic searcher
           can whiff a single layer, which would null the whole network. *)
        let l =
          if not (m.Methods.supports desc op) then None
          else
            List.fold_left
              (fun acc s ->
                match acc with
                | Some _ -> acc
                | None -> (m.Methods.run desc op ~budget ~seed:s).Methods.latency_us)
              None
              [ seed; seed + 101; seed + 202 ]
        in
        Hashtbl.replace cache key l;
        l
  in
  let network_latency (m : Methods.t) (net : Models.network) =
    List.fold_left
      (fun acc (count, op) ->
        match (acc, layer_latency m op) with
        | Some total, Some l -> Some (total +. (float_of_int count *. l))
        | _ -> None)
      (Some 0.0) net.Models.layers
  in
  let rows =
    List.map
      (fun net ->
        let heron_l = network_latency Methods.heron net in
        let cells =
          List.filter_map
            (fun (m : Methods.t) ->
              if m.Methods.name = "Heron" then None
              else
                Some
                  (match (network_latency m net, heron_l) with
                  | Some l, Some lh -> Printf.sprintf "%.2fx" (l /. lh)
                  | _ -> "-"))
            methods
        in
        let heron_ms =
          match heron_l with Some l -> Printf.sprintf "%.2f ms" (l /. 1000.0) | None -> "-"
        in
        net.Models.net_name :: heron_ms :: cells)
      Models.all
  in
  let header =
    "network" :: "Heron latency"
    :: List.filter_map
         (fun (m : Methods.t) ->
           if m.Methods.name = "Heron" then None else Some ("Heron vs " ^ m.Methods.name))
         methods
  in
  "Figure 10 — network performance on V100 TensorCore (batch 16)\n"
  ^ "(latency_method / latency_Heron; >1 means Heron is faster)\n\n"
  ^ Report.table ~header rows
