lib/search/cga.ml: Array Env Hashtbl Heron_cost Heron_csp Heron_util List Sys
