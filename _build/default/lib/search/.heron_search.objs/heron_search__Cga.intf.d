lib/search/cga.mli: Env Heron_cost Heron_csp Heron_util
