lib/search/env.ml: Hashtbl Heron_csp Heron_util List
