lib/search/env.mli: Heron_csp Heron_util
