lib/search/baselines.mli: Env
