lib/search/baselines.ml: Array Env Heron_csp Heron_util List
