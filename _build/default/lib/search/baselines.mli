(** Baseline exploration algorithms.

    These reproduce the searchers Heron is compared against: random valid
    sampling (RAND), simulated annealing and a classic genetic algorithm
    operating on concrete chromosomes (Fig. 2 and 12), and the three
    constraint-handling GA variants of Fig. 13 — stochastic ranking (GA-1),
    SAT-decoding (GA-2) and multi-objective selection (GA-3). *)

val random_search : Env.t -> budget:int -> Env.result
(** RAND: every step draws a fresh valid assignment with the CSP solver. *)

type sa_params = {
  initial_temp : float;
  cooling : float;  (** multiplicative decay per step *)
  moves_per_step : int;  (** tunable variables mutated per neighbor *)
  restart_after : int;  (** steps without improvement before a fresh start *)
}

val default_sa_params : sa_params

val simulated_annealing : ?params:sa_params -> Env.t -> budget:int -> Env.result

type ga_params = {
  pop_size : int;
  mutation_rate : float;  (** per-gene mutation probability *)
  elite : int;  (** best chromosomes carried over unchanged *)
}

val default_ga_params : ga_params

val genetic : ?params:ga_params -> Env.t -> budget:int -> Env.result
(** Classic GA: crossover/mutation on concrete chromosomes; invalid
    offspring score zero fitness (no repair). *)

val ga_stochastic_ranking : ?params:ga_params -> ?pf:float -> Env.t -> budget:int -> Env.result
(** GA-1: survivors chosen by stochastic ranking over (fitness, constraint
    violations); [pf] is the probability of comparing by fitness only. *)

val ga_sat_decoder : ?params:ga_params -> Env.t -> budget:int -> Env.result
(** GA-2: every offspring is decoded to a valid assignment by a biased CSP
    solve before evaluation. *)

val ga_multi_objective : ?params:ga_params -> Env.t -> budget:int -> Env.result
(** GA-3: violations are a second objective; selection is by Pareto
    dominance tournament. *)
