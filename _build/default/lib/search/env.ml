module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t = {
  problem : Problem.t;
  measure : Assignment.t -> float option;
  rng : Heron_util.Rng.t;
}

type point = { step : int; latency : float option; best : float option }

type result = {
  best_latency : float option;
  best_assignment : Assignment.t option;
  trace : point list;
  invalid : int;
}

let score_of_latency l = 1000.0 /. l

let score = function None -> 0.0 | Some l -> score_of_latency l

module Recorder = struct
  type r = {
    env : t;
    budget : int;
    cache : (string, float option) Hashtbl.t;
    mutable steps : int;
    mutable evals : int;  (* total eval calls, cached replays included *)
    mutable best : float option;
    mutable best_a : Assignment.t option;
    mutable trace_rev : point list;
    mutable invalid : int;
  }

  let create env ~budget =
    {
      env;
      budget;
      cache = Hashtbl.create 256;
      steps = 0;
      evals = 0;
      best = None;
      best_a = None;
      trace_rev = [];
      invalid = 0;
    }

  (* The secondary cap bounds searchers whose populations converge onto
     already-measured configurations (replays are free in budget terms but
     must not allow an infinite loop). *)
  let exhausted r = r.steps >= r.budget || r.evals >= 50 * r.budget
  let steps_left r = max 0 (r.budget - r.steps)

  let seen r a = Hashtbl.mem r.cache (Assignment.key a)

  let eval r a =
    r.evals <- r.evals + 1;
    let key = Assignment.key a in
    match Hashtbl.find_opt r.cache key with
    | Some l -> l
    | None ->
        if exhausted r then None
        else begin
          let l = r.env.measure a in
          Hashtbl.replace r.cache key l;
          r.steps <- r.steps + 1;
          (match l with
          | None -> r.invalid <- r.invalid + 1
          | Some lat ->
              let better = match r.best with None -> true | Some b -> lat < b in
              if better then begin
                r.best <- Some lat;
                r.best_a <- Some a
              end);
          r.trace_rev <- { step = r.steps; latency = l; best = r.best } :: r.trace_rev;
          l
        end

  let finish r =
    {
      best_latency = r.best;
      best_assignment = r.best_a;
      trace = List.rev r.trace_rev;
      invalid = r.invalid;
    }
end
