module M = Map.Make (String)

type t = int M.t

let empty = M.empty
let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
let bindings = M.bindings
let get t k = M.find k t
let find_opt t k = M.find_opt k t
let set t k v = M.add k v t
let mem t k = M.mem k t
let cardinal = M.cardinal
let equal = M.equal Int.equal

let key t =
  bindings t |> List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) |> String.concat ";"

let to_string = key
