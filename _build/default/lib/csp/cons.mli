(** The six constraint types of the paper (Table 7). *)

type t =
  | Prod of string * string list  (** T1: v = v1 * ... * vn *)
  | Sum of string * string list   (** T2: v = v1 + ... + vn *)
  | Eq of string * string         (** T3: v1 = v2 *)
  | Le of string * string         (** T4: v1 <= v2 *)
  | In of string * int list       (** T5: v in \{c1, ..., cn\} *)
  | Select of string * string * string list
      (** T6: v = vs\[u\], where the index u is itself a variable *)

val vars : t -> string list
(** All variables the constraint mentions. *)

val holds : (string -> int) -> t -> bool
(** [holds lookup c] checks [c] under a total assignment. *)

val to_string : t -> string
