(** Finite integer domains.

    A domain is an immutable sorted set of candidate values for a CSP
    variable. All Heron domains are non-negative (loop extents, byte
    counts, candidate indices), which the propagators for PROD rely on. *)

type t

val of_list : int list -> t
(** Builds a domain from an arbitrary list (sorted and deduplicated). *)

val to_list : t -> int list

val singleton : int -> t

val range : int -> int -> t
(** [range lo hi] is the inclusive integer interval. *)

val empty : t

val is_empty : t -> bool

val size : t -> int

val min_value : t -> int
(** @raise Invalid_argument on an empty domain. *)

val max_value : t -> int
(** @raise Invalid_argument on an empty domain. *)

val mem : int -> t -> bool

val value : t -> int option
(** [value d] is [Some v] iff [d] is the singleton [v]. *)

val filter : (int -> bool) -> t -> t

val inter : t -> t -> t

val union : t -> t -> t

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val random : Heron_util.Rng.t -> t -> int
(** Uniform element. @raise Invalid_argument on an empty domain. *)

val to_string : t -> string
