(** Total or partial assignments of CSP variables (the concrete
    chromosomes of the search). *)

type t

val empty : t
val of_list : (string * int) list -> t
val bindings : t -> (string * int) list
val get : t -> string -> int
(** @raise Not_found when the variable is unbound. *)

val find_opt : t -> string -> int option
val set : t -> string -> int -> t
val mem : t -> string -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val key : t -> string
(** Canonical string rendering, usable as a hash/cache key. *)

val to_string : t -> string
