lib/csp/problem.ml: Array Assignment Cons Domain Hashtbl List Printf
