lib/csp/domain.mli: Heron_util
