lib/csp/cons.mli:
