lib/csp/assignment.mli:
