lib/csp/problem.mli: Assignment Cons Domain
