lib/csp/assignment.ml: Int List Map String
