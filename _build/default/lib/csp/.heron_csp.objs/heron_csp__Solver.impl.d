lib/csp/solver.ml: Array Assignment Cons Domain Hashtbl Heron_util List Problem Queue
