lib/csp/cons.ml: List Printf String
