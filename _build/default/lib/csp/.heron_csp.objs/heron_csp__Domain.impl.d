lib/csp/domain.ml: Array Heron_util List Printf String
