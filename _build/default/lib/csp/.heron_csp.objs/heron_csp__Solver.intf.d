lib/csp/solver.mli: Assignment Domain Heron_util Problem
