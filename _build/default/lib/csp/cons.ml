type t =
  | Prod of string * string list
  | Sum of string * string list
  | Eq of string * string
  | Le of string * string
  | In of string * int list
  | Select of string * string * string list

let vars = function
  | Prod (v, vs) | Sum (v, vs) -> v :: vs
  | Eq (a, b) | Le (a, b) -> [ a; b ]
  | In (v, _) -> [ v ]
  | Select (v, u, vs) -> v :: u :: vs

let holds lookup = function
  | Prod (v, vs) -> lookup v = List.fold_left (fun acc x -> acc * lookup x) 1 vs
  | Sum (v, vs) -> lookup v = List.fold_left (fun acc x -> acc + lookup x) 0 vs
  | Eq (a, b) -> lookup a = lookup b
  | Le (a, b) -> lookup a <= lookup b
  | In (v, cs) -> List.mem (lookup v) cs
  | Select (v, u, vs) ->
      let i = lookup u in
      i >= 0 && i < List.length vs && lookup v = lookup (List.nth vs i)

let to_string = function
  | Prod (v, vs) -> Printf.sprintf "PROD(%s, [%s])" v (String.concat "; " vs)
  | Sum (v, vs) -> Printf.sprintf "SUM(%s, [%s])" v (String.concat "; " vs)
  | Eq (a, b) -> Printf.sprintf "EQ(%s, %s)" a b
  | Le (a, b) -> Printf.sprintf "LE(%s, %s)" a b
  | In (v, cs) ->
      Printf.sprintf "IN(%s, [%s])" v (String.concat "; " (List.map string_of_int cs))
  | Select (v, u, vs) ->
      Printf.sprintf "SELECT(%s, %s, [%s])" v u (String.concat "; " vs)
