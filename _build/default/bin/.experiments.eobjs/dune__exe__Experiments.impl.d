bin/experiments.ml: Arg Cmd Cmdliner Heron_experiments Term
