bin/experiments.mli:
