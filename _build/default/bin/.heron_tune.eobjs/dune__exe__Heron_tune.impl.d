bin/heron_tune.ml: Arg Cmd Cmdliner Heron Heron_dla Heron_sched Heron_tensor Printf Term
