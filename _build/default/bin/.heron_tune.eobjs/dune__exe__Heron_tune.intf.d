bin/heron_tune.mli:
