(* Quickstart: generate Heron's automatically constrained search space for
   a GEMM on the simulated V100 TensorCore, inspect it, explore it with the
   constraint-based genetic algorithm, and compare the result against the
   vendor-library proxy.

   Run with: dune exec examples/quickstart.exe *)

module Op = Heron_tensor.Op
module D = Heron_dla.Descriptor
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Perf = Heron_dla.Perf_model

let () =
  let op = Op.gemm ~m:1024 ~n:1024 ~k:1024 () in
  let desc = D.v100 in
  Printf.printf "operator: %s\ntarget:   %s\n\n" (Op.to_string op) (D.to_string desc);

  (* 1. Constrained space generation (schedule template + CSP). *)
  let gen = Heron.Generator.generate desc op in
  Printf.printf "generated space: %s\n"
    (Heron.Stats.to_string (Heron.Stats.of_problem gen.Heron.Generator.problem));
  Printf.printf "tensorized: %b\n\n" gen.Heron.Generator.tensorized;

  (* 2. Every random sample of the space is a valid program. *)
  let rng = Heron_util.Rng.create 1 in
  let samples = Solver.rand_sat rng gen.Heron.Generator.problem 5 in
  print_endline "five random valid programs from the constrained space:";
  List.iter
    (fun a ->
      let prog = Concrete.instantiate gen.Heron.Generator.template a in
      match Heron_dla.Validate.check desc prog with
      | Ok () ->
          Printf.printf "  %8.1f us (%.1f TFLOPS)\n" (Perf.latency_us desc prog)
            (Perf.achieved_tflops op (Perf.latency_us desc prog))
      | Error v -> Printf.printf "  INVALID: %s\n" (Heron_dla.Violation.to_string v))
    samples;

  (* 3. Explore with CGA. *)
  print_endline "\ntuning with CGA (200 trials)...";
  let tuned = Heron.Pipeline.tune ~budget:200 ~seed:42 desc op in
  (match Heron.Pipeline.best_latency_us tuned with
  | Some l ->
      Printf.printf "Heron best: %.1f us (%.2f TFLOPS)\n" l (Perf.achieved_tflops op l)
  | None -> print_endline "no valid program found");

  (* 4. Compare to the hand-tuned library proxy. *)
  (match
     ( Heron.Hand_tuned.latency_us ~library:Heron.Hand_tuned.Cublas desc op,
       Heron.Pipeline.best_latency_us tuned )
   with
  | Some vendor, Some heron ->
      Printf.printf "cuBLAS proxy: %.1f us  ->  Heron speedup %.2fx\n" vendor
        (vendor /. heron)
  | _ -> ());

  (* 5. Show the winning schedule. *)
  match Heron.Pipeline.best_program tuned with
  | Some prog -> print_endline "\nbest schedule:"; print_string (Concrete.to_string prog)
  | None -> ()
