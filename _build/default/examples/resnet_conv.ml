(* Domain example: generate a TensorCore library for the convolution layers
   of ResNet-50 (batch 16) and compare per-layer against the cuDNN proxy —
   the workload the paper's introduction motivates.

   Run with: dune exec examples/resnet_conv.exe -- [trials] *)

module Op = Heron_tensor.Op
module D = Heron_dla.Descriptor
module Models = Heron_nets.Models
module Perf = Heron_dla.Perf_model

let () =
  let trials = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64 in
  let desc = D.v100 in
  Printf.printf "ResNet-50 convolution layers on %s (%d trials per layer)\n\n"
    desc.D.dname trials;
  Printf.printf "%-34s %12s %12s %9s\n" "layer" "Heron (us)" "cuDNN (us)" "speedup";
  let total_heron = ref 0.0 and total_cudnn = ref 0.0 in
  List.iter
    (fun (count, (op : Op.t)) ->
      if op.Op.cname = "c2d" then begin
        let tuned = Heron.Pipeline.tune ~budget:trials ~seed:42 desc op in
        let heron = Heron.Pipeline.best_latency_us tuned in
        let cudnn = Heron.Hand_tuned.latency_us ~library:Heron.Hand_tuned.Cudnn desc op in
        let label =
          let d n = (Op.find_iter op n).Op.extent in
          Printf.sprintf "%dx c2d ci%d h%d co%d k%d" count (d "rc")
            (d "oh") (d "co") (d "rh")
        in
        match (heron, cudnn) with
        | Some h, Some c ->
            total_heron := !total_heron +. (float_of_int count *. h);
            total_cudnn := !total_cudnn +. (float_of_int count *. c);
            Printf.printf "%-34s %12.1f %12.1f %8.2fx\n%!" label h c (c /. h)
        | _ -> Printf.printf "%-34s %12s\n" label "infeasible"
      end)
    Models.resnet50.Models.layers;
  Printf.printf "\nnetwork conv total: Heron %.2f ms, cuDNN %.2f ms (%.2fx)\n"
    (!total_heron /. 1000.0) (!total_cudnn /. 1000.0) (!total_cudnn /. !total_heron)
