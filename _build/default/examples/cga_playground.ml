(* The paper's Figure 5 walked through by hand: constraint-based crossover
   and mutation on a toy constrained-optimization problem
     maximize 0.4x + 0.6y + 0.01z  s.t.  x*y <= 8, x,y in 1..5, z in {0,1}.

   Run with: dune exec examples/cga_playground.exe *)

module Domain = Heron_csp.Domain
module Cons = Heron_csp.Cons
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Cga = Heron_search.Cga
module Env = Heron_search.Env
module Rng = Heron_util.Rng

let problem () =
  let b = Problem.builder () in
  Problem.add_var b "x" (Domain.of_list [ 1; 2; 3; 4; 5 ]);
  Problem.add_var b "y" (Domain.of_list [ 1; 2; 3; 4; 5 ]);
  Problem.add_var b "z" (Domain.of_list [ 0; 1 ]);
  Problem.add_var b "xy" (Domain.of_list (List.init 8 (fun i -> i + 1)));
  Problem.add_cons b (Cons.Prod ("xy", [ "x"; "y" ]));
  Problem.freeze b

let objective a =
  (0.4 *. float_of_int (Assignment.get a "x"))
  +. (0.6 *. float_of_int (Assignment.get a "y"))
  +. (0.01 *. float_of_int (Assignment.get a "z"))

let show name a = Printf.printf "  %s = %s  (objective %.2f)\n" name (Assignment.to_string a) (objective a)

let () =
  let p = problem () in
  let rng = Rng.create 2024 in
  print_endline "CSP_initial: x*y <= 8 (via xy = x*y with xy in 1..8)\n";

  (* Two random parents, as in the paper's example. *)
  let c1 = Assignment.of_list [ ("x", 1); ("y", 4); ("z", 0); ("xy", 4) ] in
  let c2 = Assignment.of_list [ ("x", 2); ("y", 3); ("z", 0); ("xy", 6) ] in
  print_endline "parents:";
  show "c1" c1;
  show "c2" c2;

  (* Step 2: constraint-based crossover on key variables x and y adds
     IN(x, {1,2}) and IN(y, {3,4}); Step 3: mutation drops one of them. *)
  print_endline "\nconstraint-based crossover (keys x, y) + mutation; ten offspring:";
  let csps = Cga.crossover_csps rng p ~keys:[ "x"; "y" ] ~parents:[| c1; c2 |] ~n:10 in
  List.iteri
    (fun i csp ->
      match Solver.solve rng csp with
      | Some child ->
          Printf.printf "  offspring %d: %s (objective %.2f, valid: %b)\n" i
            (Assignment.to_string child) (objective child)
            (Problem.check p child = Ok ())
      | None -> Printf.printf "  offspring %d: (crossover CSP unsatisfiable)\n" i)
    csps;

  (* Full CGA run finds the optimum x=1, y=5, z=1 (objective 3.41) even
     though neither parent contains y=5 — mutation re-opens the space. *)
  let env =
    {
      Env.problem = p;
      measure = (fun a -> if Problem.check p a = Ok () then Some (1000.0 /. objective a) else None);
      rng = Rng.create 7;
    }
  in
  let outcome = Cga.run env ~budget:60 in
  match outcome.Cga.result.Env.best_assignment with
  | Some best ->
      print_endline "\nfull CGA run (60 evaluations):";
      show "best" best
  | None -> ()
