(* Customization example (paper Section 4, "Customization"): support a new
   DLA by describing its architectural constraints in a descriptor — the
   generation rules read the intrinsic shapes, scratchpad capacities and
   vector widths from it, so the constrained space adapts without new code.

   The fictional "EdgeTensor" accelerator below has a single 16x16x16
   intrinsic, a 96 KiB scratchpad, and only 4-wide vector accesses.

   Run with: dune exec examples/custom_dla.exe *)

module Op = Heron_tensor.Op
module D = Heron_dla.Descriptor
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Perf = Heron_dla.Perf_model

let edge_tensor =
  {
    D.dname = "edge-tensor";
    family = D.Tensorcore;
    units = 8;
    max_warps_per_unit = 16;
    clock_ghz = 0.9;
    intrin_name = "edge.mma16";
    intrin_shapes = [ (16, 16, 16) ];
    intrin_mnk_product = Some 4096;
    intrin_flops_per_cycle = 2048.0;
    fallback_flops_per_cycle = 64.0;
    spm_capacity =
      [ ("shared", 96 * 1024); ("wmma.a", 16 * 1024); ("wmma.b", 16 * 1024);
        ("wmma.acc", 16 * 1024) ];
    mem_bw_gbs = 60.0;
    spm_bw_factor = 10.0;
    vector_lengths = [ 1; 2; 4 ];
    max_threads_per_block = 256;
    launch_overhead_us = 10.0;
    noise = 0.03;
  }

let () =
  Printf.printf "custom DLA: %s\n\n" (D.to_string edge_tensor);
  let op = Op.conv2d ~n:4 ~ci:64 ~h:28 ~w:28 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () in
  let gen = Heron.Generator.generate edge_tensor op in
  Printf.printf "space for %s:\n  %s\n\n" (Op.to_string op)
    (Heron.Stats.to_string (Heron.Stats.of_problem gen.Heron.Generator.problem));

  (* The intrinsic-shape variables now admit only the custom shape. *)
  let dom v = Heron_csp.Domain.to_string (Heron_csp.Problem.domain gen.Heron.Generator.problem v) in
  Printf.printf "intrin_m domain: %s (from the descriptor, not the code)\n" (dom "intrin_m");

  (* Samples respect the new limits. *)
  let rng = Heron_util.Rng.create 7 in
  let ok = ref 0 in
  List.iter
    (fun a ->
      let prog = Concrete.instantiate gen.Heron.Generator.template a in
      if Heron_dla.Validate.is_valid edge_tensor prog then incr ok)
    (Solver.rand_sat rng gen.Heron.Generator.problem 20);
  Printf.printf "valid samples: %d/20\n\n" !ok;

  let tuned = Heron.Pipeline.tune ~budget:120 ~seed:42 edge_tensor op in
  match Heron.Pipeline.best_latency_us tuned with
  | Some l ->
      Printf.printf "tuned: %.1f us (%.2f TFLOPS of %.1f peak)\n" l
        (Perf.achieved_tflops op l) (D.peak_tflops edge_tensor)
  | None -> print_endline "no valid program found"
