(* End-to-end library generation (the paper's title deliverable): tune a
   set of operators for a DLA, persist the winning schedules, reload the
   library, and emit one kernel's pseudo-code.

   Run with: dune exec examples/build_library.exe -- [trials] *)

module Op = Heron_tensor.Op
module D = Heron_dla.Descriptor
module Library = Heron.Library
module Codegen = Heron.Codegen

let () =
  let trials = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64 in
  let desc = D.v100 in
  let ops =
    [
      Op.gemm ~m:1024 ~n:1024 ~k:1024 ();
      Op.gemm ~m:32 ~n:1000 ~k:4096 ();
      Op.bmm ~b:192 ~m:128 ~n:128 ~k:64 ();
      Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ();
    ]
  in
  Printf.printf "building a %d-kernel library for %s (%d trials each)...\n%!"
    (List.length ops) desc.D.dname trials;
  let lib = Library.build ~budget:trials ~seed:42 desc ops in
  List.iter
    (fun (e : Library.entry) ->
      Printf.printf "  %-40s %10.1f us\n" e.Library.op_key e.Library.latency_us)
    (Library.entries lib);

  let path = Filename.temp_file "heron_v100" ".lib" in
  Library.save lib path;
  Printf.printf "\nsaved to %s (%d entries)\n" path (Library.size lib);

  (* A downstream user reloads the library and re-materializes a kernel. *)
  let lib' = Library.load path in
  let op = List.hd ops in
  (match Library.lookup lib' desc op with
  | Some entry ->
      let prog = Library.program_of entry desc op in
      print_endline "\nre-materialized kernel for the first operator:\n";
      print_string (Codegen.emit desc prog)
  | None -> print_endline "lookup failed");
  Sys.remove path
