examples/cga_playground.mli:
