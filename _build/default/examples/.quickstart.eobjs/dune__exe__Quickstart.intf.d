examples/quickstart.mli:
