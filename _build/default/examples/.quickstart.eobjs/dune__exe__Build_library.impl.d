examples/build_library.ml: Array Filename Heron Heron_dla Heron_tensor List Printf Sys
