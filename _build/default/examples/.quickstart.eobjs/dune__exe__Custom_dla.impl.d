examples/custom_dla.ml: Heron Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List Printf
