examples/cga_playground.ml: Heron_csp Heron_search Heron_util List Printf
