examples/build_library.mli:
