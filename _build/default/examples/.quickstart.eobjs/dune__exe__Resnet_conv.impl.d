examples/resnet_conv.ml: Array Heron Heron_dla Heron_nets Heron_tensor List Printf Sys
