examples/custom_dla.mli:
