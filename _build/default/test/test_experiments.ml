(* Tests for the experiment harness: table rendering and the fast
   experiments end-to-end (the heavyweight figure runs are exercised by the
   benchmark harness). *)

module E = Heron_experiments

let test_table_render () =
  let s = E.Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has separator" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && l.[0] = '-'));
  Alcotest.(check int) "four lines + trailing" 5 (List.length (String.split_on_char '\n' s))

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (E.Report.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (E.Report.geomean [])

let test_csv () =
  let s = E.Report.csv ~header:[ "x"; "y" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "csv" "x,y\n1,2\n" s

let test_table4 () =
  let s = E.Exp_space.table4 () in
  Alcotest.(check bool) "mentions categories" true
    (String.length s > 0
    && List.exists (fun w -> String.length w > 0) (String.split_on_char ' ' s))

let test_table5_rows () =
  let s = E.Exp_space.table5 () in
  List.iter
    (fun op ->
      Alcotest.(check bool) (op ^ " present") true
        (String.split_on_char '\n' s
        |> List.exists (fun l -> String.length l >= String.length op
                                 && String.sub l 0 (String.length op) = op)))
    [ "GEMM"; "BMM"; "C1D"; "C2D"; "C3D" ]

let test_table9 () =
  let s = E.Exp_ops.table9 () in
  Alcotest.(check bool) "has G1 and C5" true
    (String.split_on_char '\n' s
     |> List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "G1")
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "C5"))

let test_trace_rows () =
  let trace =
    [
      { Heron_search.Env.step = 1; latency = Some 100.0; best = Some 100.0 };
      { Heron_search.Env.step = 2; latency = Some 50.0; best = Some 50.0 };
    ]
  in
  let rows = E.Exp_search.trace_rows ~checkpoints:[ 1; 2; 5 ] [ ("M", trace) ] in
  Alcotest.(check (list (list string))) "rows" [ [ "M"; "10.0"; "20.0"; "20.0" ] ] rows

let test_fig2_small () =
  let s = E.Exp_search.fig2 ~budget:30 ~seed:1 () in
  Alcotest.(check bool) "has all methods" true
    (List.for_all
       (fun m ->
         String.split_on_char '\n' s
         |> List.exists (fun l -> String.length l >= String.length m
                                  && String.sub l 0 (String.length m) = m))
       [ "RAND"; "SA"; "GA" ])

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "table4 output" `Quick test_table4;
    Alcotest.test_case "table5 output" `Quick test_table5_rows;
    Alcotest.test_case "table9 output" `Quick test_table9;
    Alcotest.test_case "trace rows" `Quick test_trace_rows;
    Alcotest.test_case "fig2 small" `Slow test_fig2_small;
  ]
