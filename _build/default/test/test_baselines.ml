(* Tests for the baseline paradigm models and workload tables. *)

module Op = Heron_tensor.Op
module D = Heron_dla.Descriptor
module Methods = Heron_baselines.Methods
module Suites = Heron_nets.Suites
module Models = Heron_nets.Models

let small_gemm = Op.gemm ~m:256 ~n:256 ~k:256 ()

let test_supports () =
  Alcotest.(check bool) "heron everywhere" true (Methods.heron.Methods.supports D.vta small_gemm);
  Alcotest.(check bool) "ansor not on vta" false (Methods.ansor.Methods.supports D.vta small_gemm);
  Alcotest.(check bool) "amos not on vta" false (Methods.amos.Methods.supports D.vta small_gemm);
  Alcotest.(check bool) "akg gemm on tc" true (Methods.akg.Methods.supports D.v100 small_gemm);
  Alcotest.(check bool) "akg not scan" false
    (Methods.akg.Methods.supports D.v100 (Op.scan ~b:4 ~l:64 ()));
  let cudnn = Methods.vendor Heron.Hand_tuned.Cudnn in
  Alcotest.(check bool) "cudnn on tc" true (cudnn.Methods.supports D.v100 small_gemm);
  Alcotest.(check bool) "cudnn not on dlboost" false
    (cudnn.Methods.supports D.dlboost small_gemm)

let run_method (m : Methods.t) desc op =
  m.Methods.run desc op ~budget:24 ~seed:3

let test_heron_runs () =
  let r = run_method Methods.heron D.v100 small_gemm in
  Alcotest.(check bool) "found" true (r.Methods.latency_us <> None);
  Alcotest.(check int) "no invalid in constrained space" 0 r.Methods.invalid

let test_autotvm_runs_and_hits_invalid () =
  (* AutoTVM's relaxed space on a large shape explores invalid programs. *)
  let big = Op.gemm ~m:4096 ~n:4096 ~k:4096 () in
  let r = Methods.autotvm.Methods.run D.v100 big ~budget:60 ~seed:3 in
  Alcotest.(check bool) "ran" true (r.Methods.steps > 0);
  Alcotest.(check bool) "explored invalid candidates" true (r.Methods.invalid > 0)

let test_ansor_never_tensorized_slower () =
  let heron = run_method Methods.heron D.v100 small_gemm in
  let ansor = run_method Methods.ansor D.v100 small_gemm in
  match (heron.Methods.latency_us, ansor.Methods.latency_us) with
  | Some h, Some a -> Alcotest.(check bool) "heron uses the TensorCore" true (h < a)
  | _ -> Alcotest.fail "both must find something"

let test_amos_runs () =
  let r = run_method Methods.amos D.v100 small_gemm in
  Alcotest.(check bool) "found" true (r.Methods.latency_us <> None)

let test_akg_single_shot () =
  let r = run_method Methods.akg D.v100 small_gemm in
  Alcotest.(check int) "one step" 1 r.Methods.steps;
  Alcotest.(check bool) "found" true (r.Methods.latency_us <> None)

let test_by_name () =
  Alcotest.(check bool) "heron" true (Methods.by_name "heron" <> None);
  Alcotest.(check bool) "AKG case-insensitive" true (Methods.by_name "akg" <> None);
  Alcotest.(check bool) "unknown" true (Methods.by_name "tvm9000" = None)

let test_suites_shapes () =
  Alcotest.(check int) "5 gemm configs" 5 (List.length Suites.table9_gemm);
  Alcotest.(check int) "5 c2d configs" 5 (List.length Suites.table9_c2d);
  Alcotest.(check int) "9 tensorcore op classes" 9 (List.length Suites.tensorcore_ops);
  Alcotest.(check int) "8 dlboost op classes" 8 (List.length Suites.dlboost_ops);
  Alcotest.(check int) "3 vta op classes" 3 (List.length Suites.vta_ops);
  (match Suites.find_op "G3" with
  | Some op ->
      Alcotest.(check int) "G3 m" 32 (Op.find_iter op "i").Op.extent;
      Alcotest.(check int) "G3 k" 2048 (Op.find_iter op "r").Op.extent
  | None -> Alcotest.fail "G3 exists");
  Alcotest.(check bool) "unknown shape" true (Suites.find_op "Z9" = None)

let test_dlboost_suite_is_int8 () =
  List.iter
    (fun (_, ops) ->
      List.iter
        (fun (op : Op.t) ->
          List.iter
            (fun (t : Op.tensor) ->
              Alcotest.(check bool) "int8 inputs" true (t.Op.dt = Op.I8))
            op.Op.inputs)
        ops)
    Suites.dlboost_ops

let test_networks () =
  Alcotest.(check int) "four networks" 4 (List.length Models.all);
  List.iter
    (fun (net : Models.network) ->
      Alcotest.(check bool) (net.Models.net_name ^ " has layers") true
        (net.Models.layers <> []);
      Alcotest.(check bool) (net.Models.net_name ^ " flops positive") true
        (Models.total_flops net > 0.0);
      List.iter
        (fun (count, _) ->
          Alcotest.(check bool) "positive multiplicity" true (count > 0))
        net.Models.layers)
    Models.all

let test_bert_dominated_by_gemms () =
  let gemm_flops =
    List.fold_left
      (fun acc (c, (op : Op.t)) ->
        if op.Op.cname = "gemm" then acc +. (float_of_int c *. op.Op.flops) else acc)
      0.0 Models.bert.Models.layers
  in
  Alcotest.(check bool) "gemms dominate BERT" true
    (gemm_flops > 0.8 *. Models.total_flops Models.bert)

let suite =
  [
    Alcotest.test_case "method support matrix" `Quick test_supports;
    Alcotest.test_case "heron method" `Quick test_heron_runs;
    Alcotest.test_case "autotvm explores invalid" `Quick test_autotvm_runs_and_hits_invalid;
    Alcotest.test_case "ansor slower than heron" `Quick test_ansor_never_tensorized_slower;
    Alcotest.test_case "amos method" `Quick test_amos_runs;
    Alcotest.test_case "akg single shot" `Quick test_akg_single_shot;
    Alcotest.test_case "method lookup" `Quick test_by_name;
    Alcotest.test_case "suite shapes" `Quick test_suites_shapes;
    Alcotest.test_case "dlboost suite int8" `Quick test_dlboost_suite_is_int8;
    Alcotest.test_case "network tables" `Quick test_networks;
    Alcotest.test_case "bert gemm-dominated" `Quick test_bert_dominated_by_gemms;
  ]
