test/test_search.ml: Alcotest Array Heron_csp Heron_search Heron_util List
