test/test_heron.mli:
