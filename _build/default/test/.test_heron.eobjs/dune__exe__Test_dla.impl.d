test/test_dla.ml: Alcotest Heron Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List String
