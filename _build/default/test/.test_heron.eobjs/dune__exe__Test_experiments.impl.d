test/test_experiments.ml: Alcotest Heron_experiments Heron_search List String
