test/test_core.ml: Alcotest Heron Heron_baselines Heron_csp Heron_dla Heron_sched Heron_search Heron_tensor Heron_util List
