test/test_util.ml: Alcotest Array Heron_util List QCheck QCheck_alcotest
