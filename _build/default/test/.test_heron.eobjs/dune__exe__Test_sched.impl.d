test/test_sched.ml: Alcotest Array Heron Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List
