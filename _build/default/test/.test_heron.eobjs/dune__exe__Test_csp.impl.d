test/test_csp.ml: Alcotest Array Heron_csp Heron_util List QCheck QCheck_alcotest
