test/test_baselines.ml: Alcotest Heron Heron_baselines Heron_dla Heron_nets Heron_tensor List
