test/test_tensor.ml: Alcotest Array Heron_tensor Heron_util Printf QCheck QCheck_alcotest
