test/test_cost.ml: Alcotest Array Heron_cost Heron_csp Heron_util List String
