test/test_extensions.ml: Alcotest Filename Heron Heron_csp Heron_dla Heron_sched Heron_tensor Heron_util List String Sys
