(* Structured run observability: monotonic-clock spans, named atomic
   counters/gauges, and a JSONL event journal with a versioned schema.

   Design constraints (see OBSERVABILITY.md):
   - counters/gauges are always live (atomic increments, metrics can be
     printed without a journal) and never touch RNG or control flow, so
     instrumented code produces byte-identical results with or without a
     trace;
   - the journal sink is process-global and mutex-serialized; timestamps
     are read under the sink mutex, so [t_ns] is non-decreasing in file
     order — a validated invariant;
   - when no sink is installed every journal entry point is a single
     atomic load. *)

let schema_version = 1

(* ---------- monotonic clock ---------- *)

module Clock = struct
  (* OCaml 5.1's Unix has no clock_gettime; monotonise the wall clock with
     an atomic running max so spans never see time move backwards. *)
  let last = Atomic.make 0

  let now_ns () =
    let raw = int_of_float (Unix.gettimeofday () *. 1e9) in
    let rec clamp () =
      let prev = Atomic.get last in
      if raw <= prev then prev
      else if Atomic.compare_and_set last prev raw then raw
      else clamp ()
    in
    clamp ()
end

(* ---------- counters and gauges ---------- *)

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64
  let registry_mutex = Mutex.create ()

  let make name =
    Mutex.lock registry_mutex;
    let c =
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; cell = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c
    in
    Mutex.unlock registry_mutex;
    c

  let name c = c.name
  let incr c = Atomic.incr c.cell
  let add c n = ignore (Atomic.fetch_and_add c.cell n)
  let value c = Atomic.get c.cell

  let snapshot () =
    Mutex.lock registry_mutex;
    let all = Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry [] in
    Mutex.unlock registry_mutex;
    List.sort compare all
end

module Gauge = struct
  type t = { name : string; cell : float Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let registry_mutex = Mutex.create ()

  let make name =
    Mutex.lock registry_mutex;
    let g =
      match Hashtbl.find_opt registry name with
      | Some g -> g
      | None ->
          let g = { name; cell = Atomic.make 0.0 } in
          Hashtbl.replace registry name g;
          g
    in
    Mutex.unlock registry_mutex;
    g

  let name g = g.name
  let set g v = Atomic.set g.cell v
  let value g = Atomic.get g.cell

  let snapshot () =
    Mutex.lock registry_mutex;
    let all = Hashtbl.fold (fun name g acc -> (name, Atomic.get g.cell) :: acc) registry [] in
    Mutex.unlock registry_mutex;
    List.sort compare all
end

(* ---------- run manifest ---------- *)

type manifest = {
  tool : string;
  seed : int option;
  descriptor : string option;
  op : string option;
  budget : int option;
  jobs : int option;
  git_rev : string;
  argv : string list;
}

(* Best-effort: HERON_GIT_REV overrides, else walk up from the cwd looking
   for .git/HEAD (following one level of ref indirection). *)
let detect_git_rev () =
  match Sys.getenv_opt "HERON_GIT_REV" with
  | Some rev when rev <> "" -> rev
  | _ ->
      let read_first_line path =
        match open_in path with
        | exception Sys_error _ -> None
        | ic ->
            let line = try Some (input_line ic) with End_of_file -> None in
            close_in_noerr ic;
            line
      in
      let resolve dir =
        match read_first_line (Filename.concat dir ".git/HEAD") with
        | None -> None
        | Some head ->
            if String.length head > 5 && String.sub head 0 5 = "ref: " then
              let ref_path = String.sub head 5 (String.length head - 5) in
              read_first_line (Filename.concat dir (Filename.concat ".git" ref_path))
            else Some head
      in
      let rec up dir depth =
        if depth > 6 then None
        else
          match resolve dir with
          | Some rev -> Some rev
          | None ->
              let parent = Filename.dirname dir in
              if parent = dir then None else up parent (depth + 1)
      in
      let short rev = if String.length rev > 12 then String.sub rev 0 12 else rev in
      (match up (Sys.getcwd ()) 0 with
      | Some rev -> short (String.trim rev)
      | None -> "unknown")

let manifest ~tool ?seed ?descriptor ?op ?budget ?jobs () =
  {
    tool;
    seed;
    descriptor;
    op;
    budget;
    jobs;
    git_rev = detect_git_rev ();
    argv = Array.to_list Sys.argv;
  }

(* ---------- the journal sink ---------- *)

type sink = {
  oc : out_channel;
  path : string;
  mutex : Mutex.t;
  t0_ns : int;
  baseline : (string, int) Hashtbl.t;  (* counter values when the trace started *)
  span_ids : int Atomic.t;
  mutable events : int;
  mutable seq : int;  (* write attempts, including dropped ones *)
}

let current : sink option Atomic.t = Atomic.make None

let enabled () = Atomic.get current <> None

(* The journal is observability, not durability: a failed event write
   (real EIO, or a fault injected through the hook below) drops that one
   event and counts it, instead of aborting a tuning run over its own
   telemetry. The hook is keyed on [seq] — a counter of write *attempts*,
   not successes — so one dropped event never condemns the rest of the
   stream to the same hash decision. *)
let c_journal_write_failures = Counter.make "obs.journal_write_failures"
let c_journal_rename_failures = Counter.make "obs.journal_rename_failures"

let no_journal_fault ~path:_ ~seq:_ = false
let journal_write_fault = ref no_journal_fault

let set_journal_write_fault = function
  | None -> journal_write_fault := no_journal_fault
  | Some f -> journal_write_fault := f

let write_event s ev fields =
  Mutex.lock s.mutex;
  let t_ns = Clock.now_ns () - s.t0_ns in
  let line =
    Json.to_string
      (Json.Obj
         (("v", Json.Int schema_version)
          :: ("t_ns", Json.Int t_ns)
          :: ("ev", Json.String ev)
          :: fields))
  in
  let seq = s.seq in
  s.seq <- seq + 1;
  (match
     if !journal_write_fault ~path:s.path ~seq then
       raise (Sys_error (s.path ^ ": injected journal write fault"));
     output_string s.oc line;
     output_char s.oc '\n'
   with
  | () -> s.events <- s.events + 1
  | exception Sys_error _ -> Counter.incr c_journal_write_failures);
  Mutex.unlock s.mutex

let emit ev fields =
  match Atomic.get current with None -> () | Some s -> write_event s ev fields

let opt_field name to_json = function None -> (name, Json.Null) | Some v -> (name, to_json v)

let start ~path m =
  (match Atomic.get current with
  | Some _ -> invalid_arg "Obs.start: a trace is already active"
  | None -> ());
  (* The journal accumulates in [path ^ ".tmp"] and only lands at [path]
     when [stop] closes it, so a killed run never leaves a truncated
     journal where a reader expects a complete one. *)
  let oc = open_out (path ^ ".tmp") in
  let baseline = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace baseline name v) (Counter.snapshot ());
  let s =
    {
      oc;
      path;
      mutex = Mutex.create ();
      t0_ns = Clock.now_ns ();
      baseline;
      span_ids = Atomic.make 0;
      events = 0;
      seq = 0;
    }
  in
  Atomic.set current (Some s);
  write_event s "manifest"
    [
      ("schema", Json.Int schema_version);
      ("tool", Json.String m.tool);
      opt_field "seed" (fun i -> Json.Int i) m.seed;
      opt_field "descriptor" (fun d -> Json.String d) m.descriptor;
      opt_field "op" (fun o -> Json.String o) m.op;
      opt_field "budget" (fun b -> Json.Int b) m.budget;
      opt_field "jobs" (fun j -> Json.Int j) m.jobs;
      ("git_rev", Json.String m.git_rev);
      ("argv", Json.List (List.map (fun a -> Json.String a) m.argv));
    ]

(* Counter events report the delta since [start], so a journal's totals
   describe that run alone even though counters are process-global. *)
let counter_delta s (name, v) =
  let base = match Hashtbl.find_opt s.baseline name with Some b -> b | None -> 0 in
  (name, v - base)

let stop () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      List.iter
        (fun (name, delta) ->
          if delta <> 0 then
            write_event s "counter" [ ("name", Json.String name); ("value", Json.Int delta) ])
        (List.map (counter_delta s) (Counter.snapshot ()));
      List.iter
        (fun (name, v) ->
          write_event s "gauge" [ ("name", Json.String name); ("value", Json.Float v) ])
        (Gauge.snapshot ());
      write_event s "trace_end" [ ("events", Json.Int (s.events + 1)) ];
      Atomic.set current None;
      close_out_noerr s.oc;
      (* A failed finalizing rename loses the whole journal; that must at
         least be visible — count it and say where the bytes still are. *)
      (try Unix.rename (s.path ^ ".tmp") s.path
       with Unix.Unix_error (err, _, _) ->
         Counter.incr c_journal_rename_failures;
         Printf.eprintf "warning: obs: could not finalize journal %s: %s (events remain in %s)\n%!"
           s.path (Unix.error_message err) (s.path ^ ".tmp"))

let with_trace path m f =
  match path with
  | None -> f ()
  | Some p ->
      start ~path:p m;
      Fun.protect ~finally:stop f

(* ---------- spans ---------- *)

(* Per-domain span stack: spans opened on different pool domains nest
   independently, and the journal records which domain each belongs to so
   validators can check stack discipline per domain. *)
let span_stack : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let with_span name f =
  match Atomic.get current with
  | None -> f ()
  | Some s ->
      let id = Atomic.fetch_and_add s.span_ids 1 in
      let stack = Domain.DLS.get span_stack in
      let parent = match !stack with [] -> Json.Null | p :: _ -> Json.Int p in
      let dom = (Domain.self () :> int) in
      let t_begin = Clock.now_ns () in
      write_event s "span_begin"
        [
          ("span", Json.String name);
          ("id", Json.Int id);
          ("parent", parent);
          ("domain", Json.Int dom);
        ];
      stack := id :: !stack;
      Fun.protect
        ~finally:(fun () ->
          (match !stack with top :: rest when top = id -> stack := rest | _ -> ());
          let dur = Clock.now_ns () - t_begin in
          emit "span_end"
            [
              ("span", Json.String name);
              ("id", Json.Int id);
              ("domain", Json.Int dom);
              ("dur_ns", Json.Int dur);
            ])
        f

(* ---------- metrics report ---------- *)

let metrics_report () =
  let b = Buffer.create 512 in
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  let gauges = List.filter (fun (_, v) -> v <> 0.0) (Gauge.snapshot ()) in
  let width =
    List.fold_left
      (fun acc (name, _) -> max acc (String.length name))
      0
      (counters @ List.map (fun (n, _) -> (n, 0)) gauges)
  in
  Buffer.add_string b "-- metrics --\n";
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-*s %d\n" width name v))
    counters;
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-*s %g\n" width name v))
    gauges;
  Buffer.contents b
