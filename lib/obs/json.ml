(* Minimal JSON: just enough to emit and read back the observability
   journal without an external dependency. Values are immutable; objects
   preserve field order (the schema relies on "v" coming first only
   cosmetically, validation is order-independent). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest representation that parses back to the same float; non-finite
   values have no JSON encoding and degrade to null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then error "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char b '"'; go ()
            | '\\' -> Buffer.add_char b '\\'; go ()
            | '/' -> Buffer.add_char b '/'; go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then error "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> error "bad \\u escape"
                in
                (* UTF-8 encode the code point (no surrogate pairing; the
                   journal only ever escapes control characters). *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> error "bad escape")
        | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ()
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected , or }"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
