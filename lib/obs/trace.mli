(** Journal reading and validation — the OBSERVABILITY.md schema contract
    in executable form, shared by [bin/trace_lint], the [@trace-quick]
    alias and [test/test_obs.ml]. *)

type event = { t_ns : int; ev : string; json : Json.t }

val parse_line : string -> (event, string) result
(** Parse one journal line and check the [v]/[t_ns]/[ev] header. *)

val read_file : string -> (event list, string) result
(** Read a whole journal; fails on the first malformed line. *)

val schema_errors : event list -> string list
(** Schema validation: manifest first, monotone [t_ns], known event types,
    required fields present with the right shapes. Empty = valid. Extra
    fields are allowed (forward compatibility). *)

val nesting_errors : event list -> string list
(** Span stack discipline per domain: every [span_end] closes the innermost
    open span of its domain and no span is left open. Empty = valid. *)

val counters : event list -> (string * int) list
(** Counter events in journal order (values are per-run deltas). *)

val counter : event list -> string -> int option
(** Lookup one counter by name. *)

val evals : event list -> (int * float option * float option) list
(** Eval trajectory: (step, latency, best-so-far) in journal order. *)

val summary : event list -> string
(** One-line human summary of a journal. *)

val field : string -> event -> Json.t option
val int_field : string -> event -> int option
val string_field : string -> event -> string option
