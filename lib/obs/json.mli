(** Minimal JSON values, emission and parsing — the journal's wire format.
    No external dependency; covers exactly what the observability schema
    needs (finite numbers, escaped strings, arrays, objects). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats use the shortest decimal form
    that round-trips; non-finite floats degrade to [null]. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error. Numbers
    without [.]/[e] parse as [Int], others as [Float]. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an object, [None] otherwise. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values widen to float. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
