(** Structured run observability: named atomic counters/gauges, spans on a
    monotonic clock, and a process-global JSONL event journal with a
    versioned schema plus a run manifest.

    Instrumentation never touches RNG state or control flow, so traced and
    untraced runs of the same seed produce byte-identical results; with no
    journal installed every entry point is one atomic load (counters stay
    live so [--metrics] works without a trace). See OBSERVABILITY.md for
    the event schema. *)

val schema_version : int
(** Version stamped on every journal line ([1]). Bump on any breaking
    change to event shapes. *)

module Clock : sig
  val now_ns : unit -> int
  (** Wall clock in nanoseconds, monotonised with an atomic running max:
      never decreases, process-wide. *)
end

(** Named monotone counters. [make] is idempotent by name — modules create
    their counters at load time and increments are wait-free atomics, safe
    under {!Heron_util.Pool} parallelism. *)
module Counter : sig
  type t

  val make : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  val snapshot : unit -> (string * int) list
  (** All counters, sorted by name. *)
end

(** Named last-write-wins float gauges. *)
module Gauge : sig
  type t

  val make : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val value : t -> float
  val snapshot : unit -> (string * float) list
end

type manifest = {
  tool : string;
  seed : int option;
  descriptor : string option;
  op : string option;
  budget : int option;
  jobs : int option;
  git_rev : string;
  argv : string list;
}

val manifest :
  tool:string ->
  ?seed:int ->
  ?descriptor:string ->
  ?op:string ->
  ?budget:int ->
  ?jobs:int ->
  unit ->
  manifest
(** Build a manifest, detecting [git_rev] (HERON_GIT_REV, else .git/HEAD
    walking up from the cwd, else ["unknown"]) and capturing [Sys.argv]. *)

val start : path:string -> manifest -> unit
(** Open the journal and write the manifest line. Events accumulate in
    [path ^ ".tmp"]; {!stop} renames the finished journal to [path], so a
    killed run never leaves a truncated journal at [path]. Records a
    baseline of all counters so the journal's counter events report deltas
    for this run only. Raises [Invalid_argument] if a trace is active. *)

val stop : unit -> unit
(** Flush counter/gauge snapshots and the [trace_end] line, close the
    journal. No-op when no trace is active. *)

val with_trace : string option -> manifest -> (unit -> 'a) -> 'a
(** [with_trace (Some path) m f] runs [f] inside [start]/[stop] (stop also
    on exception); [with_trace None m f] is just [f ()]. *)

val enabled : unit -> bool
(** Whether a journal sink is currently installed. *)

val set_journal_write_fault : (path:string -> seq:int -> bool) option -> unit
(** Install (or clear, with [None]) a write-fault hook consulted before
    every journal line: returning [true] makes that write fail as a
    [Sys_error] would. A failed journal write — injected or real — drops
    that one event and increments [obs.journal_write_failures] instead of
    aborting the run; [seq] counts write {e attempts}, so consecutive
    events key independently. Installed by
    {!Heron_util.Io_faults.set_default}; not meant for direct use. *)

val emit : string -> (string * Json.t) list -> unit
(** [emit ev fields] appends one event line (adding [v]/[t_ns]/[ev]).
    Serialized under the sink mutex; timestamps are taken under the lock so
    [t_ns] is non-decreasing in file order. No-op when disabled. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f] in [span_begin]/[span_end] events carrying
    a unique id, the per-domain parent span, the domain id and the
    duration. When disabled, exactly [f ()]. *)

val metrics_report : unit -> string
(** Human-readable table of all non-zero counters and gauges. *)
