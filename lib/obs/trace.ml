(* Journal reading and validation: the schema contract of OBSERVABILITY.md
   in executable form. Used by bin/trace_lint, the @trace-quick alias and
   test/test_obs.ml. *)

type event = { t_ns : int; ev : string; json : Json.t }

let field name e = Json.member name e.json
let int_field name e = Option.bind (field name e) Json.to_int_opt
let string_field name e = Option.bind (field name e) Json.to_string_opt

let parse_line line =
  match Json.parse line with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok json -> (
      match
        ( Option.bind (Json.member "v" json) Json.to_int_opt,
          Option.bind (Json.member "t_ns" json) Json.to_int_opt,
          Option.bind (Json.member "ev" json) Json.to_string_opt )
      with
      | Some v, Some t_ns, Some ev ->
          if v <> Obs.schema_version then
            Error (Printf.sprintf "schema version %d, expected %d" v Obs.schema_version)
          else if t_ns < 0 then Error "negative t_ns"
          else Ok { t_ns; ev; json }
      | _ -> Error "missing v/t_ns/ev header fields")

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line -> (
            match parse_line line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
      in
      let r = go 1 [] in
      close_in_noerr ic;
      r

(* Required fields per event type. A field predicate returns true when the
   value has the right shape; extra fields are always allowed (forward
   compatibility). *)
let is_int = fun j -> Json.to_int_opt j <> None
let is_string = fun j -> Json.to_string_opt j <> None
let is_number = fun j -> Json.to_float_opt j <> None
let is_opt_number = function Json.Null -> true | j -> is_number j
let is_opt_int = function Json.Null -> true | j -> is_int j

let required_fields = function
  | "manifest" -> Some [ ("schema", is_int); ("tool", is_string); ("git_rev", is_string) ]
  | "span_begin" ->
      Some [ ("span", is_string); ("id", is_int); ("parent", is_opt_int); ("domain", is_int) ]
  | "span_end" ->
      Some [ ("span", is_string); ("id", is_int); ("domain", is_int); ("dur_ns", is_int) ]
  | "counter" -> Some [ ("name", is_string); ("value", is_int) ]
  | "gauge" -> Some [ ("name", is_string); ("value", is_number) ]
  | "eval" ->
      Some [ ("step", is_int); ("latency", is_opt_number); ("best", is_opt_number) ]
  | "generation" ->
      Some
        [
          ("iter", is_int);
          ("gen", is_int);
          ("pop", is_int);
          ("offspring_attempted", is_int);
          ("offspring_accepted", is_int);
        ]
  | "net_round" ->
      (* One scheduler round of the whole-network tuner. [best]/[gain] are
         null until the task produces a result (resp. while the gain
         estimate is still the optimistic infinity). *)
      Some
        [
          ("round", is_int);
          ("task", is_int);
          ("key", is_string);
          ("alloc", is_int);
          ("steps", is_int);
          ("best", is_opt_number);
          ("gain", is_opt_number);
        ]
  | "io_retry" ->
      (* One bounded-backoff retry of a durable write (store publish,
         checkpoint) after a transient storage error. *)
      Some [ ("what", is_string); ("attempt", is_int); ("error", is_string) ]
  | "trace_end" -> Some [ ("events", is_int) ]
  | _ -> None

let schema_errors events =
  let errors = ref [] in
  let err i fmt = Printf.ksprintf (fun m -> errors := Printf.sprintf "event %d: %s" i m :: !errors) fmt in
  (match events with
  | [] -> errors := [ "empty journal" ]
  | first :: _ ->
      if first.ev <> "manifest" then err 0 "first event is %S, expected manifest" first.ev);
  let last_t = ref 0 in
  List.iteri
    (fun i e ->
      if e.t_ns < !last_t then err i "t_ns %d decreases (previous %d)" e.t_ns !last_t;
      last_t := e.t_ns;
      if i > 0 && e.ev = "manifest" then err i "duplicate manifest";
      match required_fields e.ev with
      | None -> err i "unknown event type %S" e.ev
      | Some reqs ->
          List.iter
            (fun (name, check) ->
              match field name e with
              | None -> err i "%s: missing field %S" e.ev name
              | Some j -> if not (check j) then err i "%s: field %S has wrong type" e.ev name)
            reqs)
    events;
  List.rev !errors

(* Span stack discipline, independently per domain: every span_end matches
   the innermost open span of its domain, and nothing is left open. *)
let nesting_errors events =
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks dom s;
        s
  in
  let errors = ref [] in
  List.iteri
    (fun i e ->
      match e.ev with
      | "span_begin" -> (
          match (int_field "id" e, int_field "domain" e) with
          | Some id, Some dom ->
              let s = stack dom in
              s := id :: !s
          | _ -> errors := Printf.sprintf "event %d: span_begin without id/domain" i :: !errors)
      | "span_end" -> (
          match (int_field "id" e, int_field "domain" e) with
          | Some id, Some dom -> (
              let s = stack dom in
              match !s with
              | top :: rest when top = id -> s := rest
              | top :: _ ->
                  errors :=
                    Printf.sprintf "event %d: span_end id %d but innermost open span is %d" i id
                      top
                    :: !errors
              | [] ->
                  errors := Printf.sprintf "event %d: span_end id %d with no open span" i id :: !errors)
          | _ -> errors := Printf.sprintf "event %d: span_end without id/domain" i :: !errors)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun dom s ->
      List.iter
        (fun id -> errors := Printf.sprintf "domain %d: span %d never closed" dom id :: !errors)
        !s)
    stacks;
  List.rev !errors

let counters events =
  List.filter_map
    (fun e ->
      if e.ev <> "counter" then None
      else
        match (string_field "name" e, int_field "value" e) with
        | Some name, Some v -> Some (name, v)
        | _ -> None)
    events

let counter events name = List.assoc_opt name (counters events)

let evals events =
  List.filter_map
    (fun e ->
      if e.ev <> "eval" then None
      else
        match int_field "step" e with
        | None -> None
        | Some step ->
            let num k = Option.bind (field k e) Json.to_float_opt in
            Some (step, num "latency", num "best"))
    events

let summary events =
  let count p = List.length (List.filter p events) in
  Printf.sprintf "%d events: %d spans, %d evals, %d generations, %d counters"
    (List.length events)
    (count (fun e -> e.ev = "span_begin"))
    (count (fun e -> e.ev = "eval"))
    (count (fun e -> e.ev = "generation"))
    (count (fun e -> e.ev = "counter"))
