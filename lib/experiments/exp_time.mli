(** Compilation-time experiments: Table 10 (method comparison) and
    Figure 14 (Heron's compile-time breakdown).

    Hardware-measurement wall time is simulated: each measurement is
    charged its program's simulated latency (times repetitions) plus a
    fixed per-measurement harness overhead, matching how the paper's
    compile time is dominated by on-device measurement. Search and
    cost-model times are real wall-clock seconds of this implementation. *)

val table10 : ?budget:int -> ?seed:int -> unit -> string

val fig14 : ?budget:int -> ?seed:int -> ?pool:Heron_util.Pool.t -> unit -> string
(** [?pool] parallelizes tuning; the reported breakdown then reflects the
    parallel wall-clock of each phase. *)
