(** Whole-network tuning scenario: gradient budget allocation vs per-op
    round-robin at equal budget, plus the cross-task transfer ablation.

    Three runs of the same network/budget/seed — gradient+transfer,
    round-robin+transfer, gradient+cold — feed two gates:

    - the gradient scheduler's weighted end-to-end latency beats
      round-robin's;
    - on at least one freshly-warmed task, transfer reaches the
      convergence threshold (the easier of the two runs' final bests) in
      no more measurement steps than the cold run.

    A fourth run repeats the gradient configuration without the domain
    pool and must match byte-for-byte (allocation trace and traces),
    re-checking jobs-independence at the whole-network level. *)

val run :
  ?budget:int ->
  ?seed:int ->
  ?slice:int ->
  ?net:string ->
  ?strict:bool ->
  ?out:string ->
  unit ->
  string * bool
(** [run ()] tunes the named network (default ["mini"]) on V100 (default
    budget 80, slice 8). Returns the report and whether every gate
    passed; [~strict:false] relaxes the scheduling gate to
    gradient-no-worse-than-round-robin (the quick-gate setting for tiny
    workloads where both policies may saturate). [?out] additionally
    writes the machine-readable BENCH JSON there (atomically).
    @raise Invalid_argument on an unknown network name. *)
