(** Exploration-efficiency experiments: Figure 2 (RAND vs SA vs GA in the
    irregular space), Figure 12 (CGA vs the same) and Figure 13 (CGA vs
    constraint-handling GA variants across problem sizes). *)

val fig2 : ?budget:int -> ?seed:int -> unit -> string

val fig12 : ?budget:int -> ?seed:int -> ?pool:Heron_util.Pool.t -> unit -> string
(** [?pool] parallelizes the CGA runs' measurement/CSP/model phases
    without changing results for a fixed seed. *)

val fig13 : ?budget:int -> ?seed:int -> ?pool:Heron_util.Pool.t -> unit -> string

val trace_rows :
  checkpoints:int list ->
  (string * Heron_search.Env.point list) list ->
  string list list
(** Best-so-far GFLOPS-equivalent (1000/latency) of each method at each
    checkpoint step, for rendering exploration curves as a table. *)
