module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Methods = Heron_baselines.Methods
module Pipeline = Heron.Pipeline

(* Per-measurement harness overhead on a real device (upload, launch,
   timing), in seconds. *)
let harness_overhead_s = 0.15

let simulated_measure_s (trace : Env.point list) ~reps =
  List.fold_left
    (fun acc (p : Env.point) ->
      let run =
        match p.Env.latency with Some l -> l *. 1e-6 *. float_of_int reps | None -> 0.05
      in
      acc +. run +. harness_overhead_s)
    0.0 trace

let time_ops () =
  [
    ("GEMM", Op.gemm ~m:1024 ~n:1024 ~k:1024 ());
    ("BMM", Op.bmm ~b:192 ~m:128 ~n:128 ~k:64 ());
    ("Conv1D", Op.conv1d ~n:16 ~ci:64 ~l:256 ~co:128 ~kl:3 ~stride:1 ~pad:1 ());
    ("Conv2D", Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
    ( "Conv3D",
      Op.conv3d ~n:8 ~ci:16 ~d:8 ~h:28 ~w:28 ~co:32 ~kd:3 ~kh:3 ~kw:3 ~stride:1 ~pad:1 () );
  ]

let table10 ?(budget = 120) ?(seed = 42) () =
  let desc = Descriptor.v100 in
  let rows =
    List.map
      (fun (name, op) ->
        let per_method (m : Methods.t) =
          let t0 = Sys.time () in
          let r = m.Methods.run desc op ~budget ~seed in
          let wall = Sys.time () -. t0 in
          let total = wall +. simulated_measure_s r.Methods.trace ~reps:3 in
          Printf.sprintf "%.1f" (total /. 60.0)
        in
        [ name; per_method Methods.autotvm; per_method Methods.amos;
          per_method Methods.heron ])
      (time_ops ())
  in
  "Table 10 — compilation time on TensorCore (minutes; search wall-clock plus\n\
   simulated on-device measurement time)\n\n"
  ^ Report.table ~header:[ "operator"; "AutoTVM"; "AMOS"; "Heron" ] rows

let fig14 ?(budget = 120) ?(seed = 42) ?pool () =
  let desc = Descriptor.v100 in
  let rows =
    List.map
      (fun (name, op) ->
        let tuned = Pipeline.tune ~budget ~seed ?pool desc op in
        let o = tuned.Pipeline.outcome in
        let measure =
          simulated_measure_s o.Cga.result.Env.trace ~reps:3 +. o.Cga.time_measure_s
        in
        let search = o.Cga.time_search_s in
        let model = o.Cga.time_model_s in
        let total = measure +. search +. model in
        let pct x = Printf.sprintf "%.0f%%" (100.0 *. x /. total) in
        [ name; Printf.sprintf "%.1f min" (total /. 60.0); pct search; pct model;
          pct measure ])
      (time_ops ())
  in
  "Figure 14 — breakdown of Heron's compilation time\n\n"
  ^ Report.table ~header:[ "operator"; "total"; "CGA search"; "cost model"; "measurement" ]
      rows
