(** Ablations of the design choices DESIGN.md calls out: the number and
    source of CGA key variables, constraint-based mutation, the
    epsilon-greedy measurement split, and CSP propagation strength. *)

val cga_knobs : ?budget:int -> ?seed:int -> ?pool:Heron_util.Pool.t -> unit -> string
(** Top-k / mutation / epsilon ablation on GEMM G1 (V100). [?pool]
    parallelizes each CGA run without changing its result. *)

val propagation : ?seed:int -> unit -> string
(** Solver cost with exact binary PROD/SUM pruning vs bounds-only, on the
    GEMM and C2D spaces. *)
