module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Solver = Heron_csp.Solver
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Rng = Heron_util.Rng
module Pipeline = Heron.Pipeline
module Generator = Heron.Generator

let score (r : Env.result) =
  match r.Env.best_latency with Some l -> 1000.0 /. l | None -> 0.0

let cga_knobs ?(budget = 200) ?(seed = 42) ?pool () =
  let op = Op.gemm ~m:1024 ~n:1024 ~k:1024 () in
  let gen = Generator.generate Descriptor.v100 op in
  let seeds = [ seed; seed + 1; seed + 2 ] in
  let run params =
    let scores =
      List.map
        (fun s ->
          let env = Pipeline.make_env ~seed:s Descriptor.v100 gen in
          score (Cga.run ~params ?pool env ~budget).Cga.result)
        seeds
    in
    List.fold_left ( +. ) 0.0 scores /. float_of_int (List.length scores)
  in
  let d = Cga.default_params in
  let variants =
    [
      ("default", d);
      ("top-k = 4", { d with Cga.top_k = 4 });
      ("top-k = 16", { d with Cga.top_k = 16 });
      ("no mutation", { d with Cga.mutation = false });
      ("random keys (CGA-1)", { d with Cga.key_selection = Cga.Random_keys });
      ("epsilon = 0 (pure exploit)", { d with Cga.epsilon = 0.0 });
      ("epsilon = 0.5", { d with Cga.epsilon = 0.5 });
    ]
  in
  let rows =
    List.map (fun (name, p) -> [ name; Printf.sprintf "%.1f" (run p) ]) variants
  in
  "Ablation — CGA knobs on GEMM G1, V100 (mean best score 1000/latency_us over 3 seeds)\n\n"
  ^ Report.table ~header:[ "variant"; "score" ] rows

let propagation ?(seed = 42) () =
  let cases =
    [
      ("GEMM G1", Generator.generate Descriptor.v100 (Op.gemm ~m:1024 ~n:1024 ~k:1024 ()));
      ( "C2D",
        Generator.generate Descriptor.v100
          (Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ()) );
    ]
  in
  let solve_stats ~exact_limit (gen : Generator.t) =
    let stats = Solver.fresh_stats () in
    let rng = Rng.create seed in
    let t0 = Sys.time () in
    let solved = ref 0 in
    for _ = 1 to 20 do
      match Solver.solve ~exact_limit ~stats rng gen.Generator.problem with
      | Some _ -> incr solved
      | None -> ()
    done;
    (!solved, stats.Solver.nodes, stats.Solver.fails, Sys.time () -. t0)
  in
  let rows =
    List.concat_map
      (fun (name, gen) ->
        List.map
          (fun (mode, limit) ->
            let solved, nodes, fails, secs = solve_stats ~exact_limit:limit gen in
            [ name; mode; string_of_int solved; string_of_int nodes; string_of_int fails;
              Printf.sprintf "%.3f s" secs ])
          [ ("exact binary pruning", 10_000); ("bounds only", 0) ])
      cases
  in
  "Ablation — CSP propagation strength (20 RandSAT draws each)\n\n"
  ^ Report.table ~header:[ "space"; "propagation"; "solved"; "nodes"; "fails"; "time" ] rows
