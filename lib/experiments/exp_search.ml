module Op = Heron_tensor.Op
module Descriptor = Heron_dla.Descriptor
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Baselines = Heron_search.Baselines
module Generator = Heron.Generator
module Pipeline = Heron.Pipeline

let best_at trace step =
  let rec go best = function
    | [] -> best
    | (p : Env.point) :: rest -> if p.Env.step > step then best else go p.Env.best rest
  in
  go None trace

let trace_rows ~checkpoints traces =
  List.map
    (fun (name, trace) ->
      name
      :: List.map
           (fun cp ->
             match best_at trace cp with
             | None -> "-"
             | Some l -> Printf.sprintf "%.1f" (1000.0 /. l))
           checkpoints)
    traces

let checkpoints_for budget =
  List.filter (fun c -> c <= budget) [ 25; 50; 100; 200; 400; 800; 1600; 2000 ]

let render_traces ~budget traces =
  let checkpoints = checkpoints_for budget in
  Report.table
    ~header:("method" :: List.map (fun c -> Printf.sprintf "@%d" c) checkpoints)
    (trace_rows ~checkpoints traces)

let run_on_problem ~seed desc op searchers =
  let gen = Generator.generate ~seed desc op in
  List.map
    (fun (name, search) ->
      let env = Pipeline.make_env ~seed desc gen in
      let result : Env.result = search env in
      (name, result))
    searchers

let classic_searchers ~budget =
  [
    ("RAND", fun env -> Baselines.random_search env ~budget);
    ("SA", fun env -> Baselines.simulated_annealing env ~budget);
    ("GA", fun env -> Baselines.genetic env ~budget);
  ]

let cga_searcher ?params ?pool ~budget () =
  ("CGA", fun env -> (Cga.run ?params ?pool env ~budget).Cga.result)

let fig2 ?(budget = 400) ?(seed = 42) () =
  let op = Op.gemm ~m:32 ~n:1000 ~k:2048 () in
  let results =
    run_on_problem ~seed Descriptor.v100 op (classic_searchers ~budget)
  in
  let traces = List.map (fun (n, (r : Env.result)) -> (n, r.Env.trace)) results in
  let invalids =
    List.map
      (fun (n, (r : Env.result)) ->
        Printf.sprintf "%s: %d/%d explored candidates invalid" n r.Env.invalid
          (List.length r.Env.trace))
      results
  in
  "Figure 2 — RAND vs SA vs GA in Heron's irregular constrained space (GEMM G3)\n"
  ^ "(best-so-far score 1000/latency_us at each exploration step; higher is better)\n\n"
  ^ render_traces ~budget traces
  ^ "\n" ^ String.concat "\n" invalids ^ "\n"

let fig12 ?(budget = 400) ?(seed = 42) ?pool () =
  let cases =
    [
      ("C2D", Op.conv2d ~n:16 ~ci:64 ~h:56 ~w:56 ~co:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ());
      ("GEMM", Op.gemm ~m:1024 ~n:1024 ~k:1024 ());
    ]
  in
  let sections =
    List.map
      (fun (name, op) ->
        let searchers = cga_searcher ?pool ~budget () :: classic_searchers ~budget in
        let results = run_on_problem ~seed Descriptor.v100 op searchers in
        let traces = List.map (fun (n, (r : Env.result)) -> (n, r.Env.trace)) results in
        Printf.sprintf "%s:\n%s" name (render_traces ~budget traces))
      cases
  in
  "Figure 12 — CGA vs SA, GA and RAND on C2D and GEMM (V100)\n"
  ^ "(best-so-far score 1000/latency_us; higher is better)\n\n"
  ^ String.concat "\n" sections

let fig13 ?(budget = 200) ?(seed = 42) ?pool () =
  let sizes = [ 256; 512; 1024; 2048 ] in
  let variant_searchers ~budget =
    [
      ("CGA", fun env -> (Cga.run ?pool env ~budget).Cga.result);
      ( "CGA-1",
        fun env ->
          (Cga.run
             ~params:{ Cga.default_params with Cga.key_selection = Cga.Random_keys }
             ?pool env ~budget)
            .Cga.result );
      ("GA-1", fun env -> Baselines.ga_stochastic_ranking env ~budget);
      ("GA-2", fun env -> Baselines.ga_sat_decoder env ~budget);
      ("GA-3", fun env -> Baselines.ga_multi_objective env ~budget);
    ]
  in
  let rows =
    List.map
      (fun n ->
        let op = Op.gemm ~m:n ~n ~k:n () in
        let results =
          run_on_problem ~seed Descriptor.v100 op (variant_searchers ~budget)
        in
        let cga_best =
          match List.assoc "CGA" results with
          | { Env.best_latency = Some l; _ } -> Some l
          | _ -> None
        in
        string_of_int n
        :: List.map
             (fun (_, (r : Env.result)) ->
               match (r.Env.best_latency, cga_best) with
               | Some l, Some c -> Printf.sprintf "%.2f" (c /. l)
               | _ -> "-")
             results)
      sizes
  in
  "Figure 13 — CGA vs constraint-handling GA variants on GEMM (N, N, N)\n"
  ^ "(performance relative to CGA; 1.00 = CGA, lower is worse)\n\n"
  ^ Report.table ~header:[ "N"; "CGA"; "CGA-1"; "GA-1"; "GA-2"; "GA-3" ] rows

