module D = Heron_dla.Descriptor
module Env = Heron_search.Env
module Models = Heron_nets.Models
module Tasks = Heron_nets.Tasks
module Scheduler = Heron_nets.Scheduler
module Tuner = Heron_nets.Tuner
module Pool = Heron_util.Pool
module Json = Heron_obs.Json

(* First step at which a run's incumbent best reaches [threshold] —
   the measurements-to-first-improvement metric of the transfer gate. *)
let steps_to threshold trace =
  let rec go = function
    | [] -> None
    | (p : Env.point) :: rest -> (
        match p.Env.best with
        | Some b when b <= threshold +. 1e-9 -> Some p.Env.step
        | _ -> go rest)
  in
  go trace

let fmt_opt = function None -> "-" | Some l -> Printf.sprintf "%.2f" l

(* Strip what only the driver process can see (measurement counts vary
   across kill/resume) down to what determinism promises: the allocation
   trace, per-task traces and the final latency. *)
let fingerprint (r : Tuner.result) =
  ( r.Tuner.r_allocations,
    r.Tuner.r_latency_us,
    List.map (fun tr -> (tr.Tuner.tr_best, tr.Tuner.tr_trace)) r.Tuner.r_reports )

let run ?(budget = 80) ?(seed = 42) ?(slice = 8) ?(net = "mini") ?(strict = true) ?out () =
  let desc = D.v100 in
  let net =
    match Models.find net with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Exp_nets.run: unknown network %S" net)
  in
  let tune ~policy ~transfer =
    Tuner.tune ~budget ~seed ~slice ~policy ~transfer desc net
  in
  let grad = tune ~policy:Scheduler.Gradient ~transfer:true in
  let rr = tune ~policy:Scheduler.Round_robin ~transfer:true in
  let cold = tune ~policy:Scheduler.Gradient ~transfer:false in
  (* Jobs-identity: the same gradient run with the process-default pool
     cleared must produce the identical allocation trace and traces. *)
  let solo =
    let saved = Pool.default () in
    Pool.set_default None;
    Fun.protect
      ~finally:(fun () -> Pool.set_default saved)
      (fun () -> tune ~policy:Scheduler.Gradient ~transfer:true)
  in
  let jobs_identical = fingerprint grad = fingerprint solo in
  (* Transfer gate rows: every task the gradient run warm-started,
     scored against the cold run on steps-to-threshold. *)
  let transfer_rows =
    List.filter_map
      (fun (tr, cr) ->
        if not tr.Tuner.tr_transferred then None
        else
          match (tr.Tuner.tr_best, cr.Tuner.tr_best) with
          | Some bt, Some bc ->
              let threshold = Float.max bt bc in
              Some
                ( tr.Tuner.tr_task,
                  steps_to threshold tr.Tuner.tr_trace,
                  steps_to threshold cr.Tuner.tr_trace )
          | _ -> None)
      (List.combine grad.Tuner.r_reports cold.Tuner.r_reports)
  in
  let gate_gradient =
    match (grad.Tuner.r_latency_us, rr.Tuner.r_latency_us) with
    | Some g, Some r -> if strict then g < r else g <= r
    | _ -> false
  in
  let gate_transfer =
    transfer_rows <> []
    && List.exists
         (fun (_, st, sc) ->
           match (st, sc) with Some st, Some sc -> st <= sc | _ -> false)
         transfer_rows
  in
  let ok = gate_gradient && gate_transfer && jobs_identical in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Whole-network tuning: %s on %s, budget %d (slice %d), seed %d\n\n"
       net.Models.net_name desc.D.dname budget slice seed);
  let policy_rows =
    List.map
      (fun (name, (r : Tuner.result)) ->
        [
          name;
          fmt_opt r.Tuner.r_latency_us;
          string_of_int (List.length r.Tuner.r_allocations);
          String.concat " "
            (List.map
               (fun tr -> Printf.sprintf "%d:%d" tr.Tuner.tr_task.Tasks.t_id tr.Tuner.tr_alloc)
               r.Tuner.r_reports);
        ])
      [ ("gradient", grad); ("round-robin", rr); ("gradient/cold", cold) ]
  in
  Buffer.add_string buf
    (Report.table
       ~header:[ "policy"; "end-to-end us"; "rounds"; "trials per task" ]
       policy_rows);
  Buffer.add_string buf "\n";
  if transfer_rows <> [] then begin
    Buffer.add_string buf
      (Report.table
         ~header:[ "transferred task"; "steps to threshold (warm)"; "(cold)" ]
         (List.map
            (fun (t, st, sc) ->
              [
                Tasks.to_string t;
                (match st with None -> "-" | Some n -> string_of_int n);
                (match sc with None -> "-" | Some n -> string_of_int n);
              ])
            transfer_rows));
    Buffer.add_string buf "\n"
  end;
  Buffer.add_string buf
    (Printf.sprintf "gates: gradient%sround-robin %b, transfer-helps %b, jobs-identical %b\n"
       (if strict then "<" else "<=")
       gate_gradient gate_transfer jobs_identical);
  (match out with
  | None -> ()
  | Some path ->
      let jopt = function None -> Json.Null | Some f -> Json.Float f in
      let run_json (r : Tuner.result) =
        Json.Obj
          [
            ("latency_us", jopt r.Tuner.r_latency_us);
            ( "allocations",
              Json.List
                (List.map
                   (fun (i, a) -> Json.List [ Json.Int i; Json.Int a ])
                   r.Tuner.r_allocations) );
            ( "tasks",
              Json.List
                (List.map
                   (fun tr ->
                     Json.Obj
                       [
                         ("key", Json.String tr.Tuner.tr_task.Tasks.t_key);
                         ("weight", Json.Int tr.Tuner.tr_task.Tasks.t_weight);
                         ("rounds", Json.Int tr.Tuner.tr_rounds);
                         ("alloc", Json.Int tr.Tuner.tr_alloc);
                         ("steps", Json.Int tr.Tuner.tr_steps);
                         ("best_us", jopt tr.Tuner.tr_best);
                         ("transferred", Json.Bool tr.Tuner.tr_transferred);
                       ])
                   r.Tuner.r_reports) );
          ]
      in
      let json =
        Json.Obj
          [
            ( "workload",
              Json.Obj
                [
                  ("network", Json.String net.Models.net_name);
                  ("dla", Json.String desc.D.dname);
                  ("budget", Json.Int budget);
                  ("slice", Json.Int slice);
                  ("seed", Json.Int seed);
                ] );
            ("gradient", run_json grad);
            ("round_robin", run_json rr);
            ("gradient_cold", run_json cold);
            ( "transfer",
              Json.List
                (List.map
                   (fun (t, st, sc) ->
                     Json.Obj
                       [
                         ("key", Json.String t.Tasks.t_key);
                         ( "steps_to_threshold_warm",
                           match st with None -> Json.Null | Some n -> Json.Int n );
                         ( "steps_to_threshold_cold",
                           match sc with None -> Json.Null | Some n -> Json.Int n );
                       ])
                   transfer_rows) );
            ( "gates",
              Json.Obj
                [
                  ("gradient_beats_round_robin", Json.Bool gate_gradient);
                  ("transfer_helps", Json.Bool gate_transfer);
                  ("jobs_identical", Json.Bool jobs_identical);
                ] );
          ]
      in
      Heron_util.Atomic_io.write_string ~path (Json.to_string json ^ "\n");
      Buffer.add_string buf (Printf.sprintf "wrote %s\n" path));
  (Buffer.contents buf, ok)
