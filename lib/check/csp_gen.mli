(** QCheck generators for random-but-well-formed CSPs.

    A [spec] is a shrink-friendly intermediate form: variables are indices,
    domains are value lists, constraints refer to variables by index, so
    every spec converts to a well-formed {!Heron_csp.Problem.t} by
    construction (no unknown variables, no empty domains). Shrinking drops
    constraints, removes domain values and halves values, so a failing
    property reports a minimal problem.

    Generated spaces are bounded ([space_size] of the resulting problem is
    at most 10^4 before the repair pass, barely above after), small enough
    for the brute-force {!Oracle}. A repair pass seeds each generated
    constraint with one witness combination so a healthy fraction of
    problems is satisfiable; the rest exercise UNSAT agreement. *)

type cons_spec =
  | SProd of int * int list
  | SSum of int * int list
  | SEq of int * int
  | SLe of int * int
  | SIn of int * int list
  | SSel of int * int * int list

type spec = { doms : int list array; cons : cons_spec list }

val to_problem : spec -> Heron_csp.Problem.t
(** Variables are named ["v0"], ["v1"], ... in index order. *)

val print : spec -> string

val arbitrary :
  ?max_vars:int -> ?max_value:int -> ?max_dom:int -> ?max_cons:int -> unit ->
  spec QCheck.arbitrary
(** Defaults: up to 5 variables, values in [0, 24], up to 6 values per
    domain, up to 4 constraints (PROD/SUM arity up to 3, self-references
    allowed — aliased operands are prime propagation-bug bait). *)

val permute_cons : spec -> Heron_util.Rng.t -> spec
(** Same problem, constraints in a random order — the metamorphic twin for
    reorder-invariance properties. *)
