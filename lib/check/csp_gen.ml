module Domain = Heron_csp.Domain
module Cons = Heron_csp.Cons
module Problem = Heron_csp.Problem
module Rng = Heron_util.Rng

type cons_spec =
  | SProd of int * int list
  | SSum of int * int list
  | SEq of int * int
  | SLe of int * int
  | SIn of int * int list
  | SSel of int * int * int list

type spec = { doms : int list array; cons : cons_spec list }

let var i = Printf.sprintf "v%d" i

let to_cons = function
  | SProd (v, vs) -> Cons.Prod (var v, List.map var vs)
  | SSum (v, vs) -> Cons.Sum (var v, List.map var vs)
  | SEq (a, b) -> Cons.Eq (var a, var b)
  | SLe (a, b) -> Cons.Le (var a, var b)
  | SIn (v, cs) -> Cons.In (var v, cs)
  | SSel (v, u, vs) -> Cons.Select (var v, var u, List.map var vs)

let to_problem sp =
  let b = Problem.builder () in
  Array.iteri (fun i d -> Problem.add_var b (var i) (Domain.of_list d)) sp.doms;
  List.iter (fun c -> Problem.add_cons b (to_cons c)) sp.cons;
  Problem.freeze b

let print sp =
  let dom i d =
    Printf.sprintf "%s in {%s}" (var i) (String.concat ", " (List.map string_of_int d))
  in
  let doms = Array.to_list (Array.mapi dom sp.doms) in
  let cons = List.map (fun c -> Cons.to_string (to_cons c)) sp.cons in
  String.concat "; " (doms @ cons)

(* ---------- generation ---------- *)

let gen ~max_vars ~max_value ~max_dom ~max_cons st =
  let open QCheck.Gen in
  let n = int_range 2 max_vars st in
  let doms =
    Array.init n (fun _ ->
        let size = int_range 1 max_dom st in
        List.init size (fun _ -> int_range 0 max_value st) |> List.sort_uniq compare)
  in
  let any_var st = int_range 0 (n - 1) st in
  let operands st = list_repeat (int_range 1 3 st) any_var st in
  let one_cons st =
    match int_range 0 5 st with
    | 0 -> SProd (any_var st, operands st)
    | 1 -> SSum (any_var st, operands st)
    | 2 -> SEq (any_var st, any_var st)
    | 3 -> SLe (any_var st, any_var st)
    | 4 ->
        let v = any_var st in
        (* Mostly values the variable can actually take, plus one stray. *)
        let own = List.filter (fun _ -> bool st) doms.(v) in
        let cs = List.sort_uniq compare ((int_range 0 max_value st :: own) @ [ 0 ]) in
        SIn (v, cs)
    | _ -> SSel (any_var st, any_var st, operands st)
  in
  let cons = list_repeat (int_range 0 max_cons st) one_cons st in
  (* Repair pass: with high probability, widen the target's domain with one
     witness combination so the constraint is individually satisfiable. *)
  let pick d st = List.nth d (int_range 0 (List.length d - 1) st) in
  let add i v = doms.(i) <- List.sort_uniq compare (v :: doms.(i)) in
  List.iter
    (fun c ->
      if float_bound_inclusive 1.0 st < 0.8 then
        match c with
        | SProd (v, vs) ->
            let p = List.fold_left (fun acc x -> acc * pick doms.(x) st) 1 vs in
            if p <= 4096 then add v p
        | SSum (v, vs) -> add v (List.fold_left (fun acc x -> acc + pick doms.(x) st) 0 vs)
        | SEq (a, b) -> add a (pick doms.(b) st)
        | SLe (_, _) -> ()
        | SIn (v, cs) -> if cs <> [] then add v (pick cs st)
        | SSel (v, u, vs) ->
            let i = int_range 0 (List.length vs - 1) st in
            add u i;
            add v (pick doms.(List.nth vs i) st))
    cons;
  { doms; cons }

(* ---------- shrinking ---------- *)

let set_dom doms i d =
  let out = Array.copy doms in
  out.(i) <- d;
  out

let shrink sp yield =
  (* Drop one constraint at a time. *)
  List.iteri
    (fun i _ -> yield { sp with cons = List.filteri (fun j _ -> j <> i) sp.cons })
    sp.cons;
  (* Remove one domain value at a time (domains stay non-empty). *)
  Array.iteri
    (fun i d ->
      if List.length d > 1 then
        List.iteri
          (fun j _ -> yield { sp with doms = set_dom sp.doms i (List.filteri (fun k _ -> k <> j) d) })
          d)
    sp.doms;
  (* Halve individual values toward 0. *)
  Array.iteri
    (fun i d ->
      List.iteri
        (fun j v ->
          if v > 0 then
            let d' =
              List.mapi (fun k x -> if k = j then v / 2 else x) d |> List.sort_uniq compare
            in
            if d' <> d then yield { sp with doms = set_dom sp.doms i d' })
        d)
    sp.doms

let arbitrary ?(max_vars = 5) ?(max_value = 24) ?(max_dom = 6) ?(max_cons = 4) () =
  QCheck.make ~print ~shrink (gen ~max_vars ~max_value ~max_dom ~max_cons)

let permute_cons sp rng =
  let a = Array.of_list sp.cons in
  let perm = Rng.permutation rng (Array.length a) in
  { sp with cons = Array.to_list (Array.map (fun i -> a.(i)) perm) }
