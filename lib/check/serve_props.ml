module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Library = Heron.Library
module Index = Heron_serving.Index
module Store = Heron_serving.Store
module Tuning_queue = Heron_serving.Tuning_queue
module Rng = Heron_util.Rng

let seed_pair = QCheck.pair QCheck.small_int QCheck.small_int
let desc = Heron_dla.Descriptor.v100
let dname = desc.Heron_dla.Descriptor.dname

(* Non-power-of-two extents included on purpose: 24 and 48 bucket with 32
   and 64, exercising the near-miss fallback. *)
let dims = [| 8; 16; 24; 32; 48; 64 |]

let random_op rng =
  Op.gemm ~m:(Rng.choice rng dims) ~n:(Rng.choice rng dims) ~k:(Rng.choice rng dims) ()

let random_library rng n =
  let rec go lib ops i =
    if i = 0 then (lib, ops)
    else
      let op = random_op rng in
      let latency_us = float_of_int (1 + Rng.int rng 1000) /. 7. in
      let a = Assignment.of_list [ ("tile", 1 + Rng.int rng 16) ] in
      go (Library.add lib desc op ~latency_us a) (op :: ops) (i - 1)
  in
  go Library.empty [] n

let entry_eq (a : Library.entry) (b : Library.entry) =
  a.Library.op_key = b.Library.op_key
  && a.Library.dla = b.Library.dla
  && a.Library.latency_us = b.Library.latency_us
  && Assignment.bindings a.Library.assignment = Assignment.bindings b.Library.assignment

(* (a) The compiled index answers exactly like the naive oracle over the
   library: exact entries hit, absent-but-bucketed shapes serve the
   bucket's best entry, everything else misses. *)
let index_equals_oracle ~count =
  QCheck.Test.make ~name:"serve: index query equals the library-scan oracle" ~count seed_pair
    (fun (seed, k) ->
      let rng = Rng.create ((seed * 7919) + k) in
      let lib, ops = random_library rng (4 + Rng.int rng 16) in
      let snap = Index.build ~version:1 lib in
      (* Bucket of each library entry, recovered from the ops that built it. *)
      let bucket_of_key = Hashtbl.create 16 in
      List.iter
        (fun op ->
          let fk = Library.op_key op ^ "@" ^ dname in
          match Index.bucket_key ~dla:dname op with
          | Some b -> Hashtbl.replace bucket_of_key fk b
          | None -> ())
        ops;
      let oracle op =
        match Library.lookup lib desc op with
        | Some e -> Index.Hit e
        | None -> (
            match Index.bucket_key ~dla:dname op with
            | None -> Index.Miss
            | Some b -> (
                let cands =
                  List.filter
                    (fun (e : Library.entry) ->
                      Hashtbl.find_opt bucket_of_key (e.Library.op_key ^ "@" ^ e.Library.dla)
                      = Some b)
                    (Library.entries lib)
                in
                let best =
                  List.fold_left
                    (fun acc (e : Library.entry) ->
                      match acc with
                      | None -> Some e
                      | Some (w : Library.entry) ->
                          if
                            e.Library.latency_us < w.Library.latency_us
                            || (e.Library.latency_us = w.Library.latency_us
                               && e.Library.op_key < w.Library.op_key)
                          then Some e
                          else acc)
                    None cands
                in
                match best with None -> Index.Miss | Some e -> Index.Near e))
      in
      let same op =
        match (Index.query_op snap ~dla:dname op, oracle op) with
        | Index.Hit a, Index.Hit b | Index.Near a, Index.Near b -> entry_eq a b
        | Index.Miss, Index.Miss -> true
        | _ -> false
      in
      let probes = ops @ List.init 12 (fun _ -> random_op rng) in
      List.for_all same probes)

let dir_counter = ref 0

let fresh_dir prefix =
  incr dir_counter;
  Printf.sprintf "_sp_%s_%d" prefix !dir_counter

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* (b) Publish/reload round-trip: every publish is reloadable and
   byte-identical, versions are monotone, and a garbage manifest degrades
   to snapshot-scan recovery of the same state, never to data loss. *)
let publish_reload_roundtrip ~count =
  QCheck.Test.make ~name:"serve: store publish/reload round-trips (even past manifest garbage)"
    ~count seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 6271) + k) in
      let dir = fresh_dir "store" in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let store = Store.open_ ~dir in
      let publishes = 1 + (k mod 4) in
      let ok = ref true in
      let last = ref Library.empty in
      for p = 1 to publishes do
        let lib, _ = random_library rng (1 + Rng.int rng 8) in
        last := lib;
        let v = Store.publish store lib in
        if v <> p then ok := false;
        match Store.load_latest store with
        | None -> ok := false
        | Some l ->
            if
              l.Store.version <> p || l.Store.recovered
              || l.Store.warnings <> []
              || Library.to_string l.Store.library <> Library.to_string lib
            then ok := false
      done;
      (* Trash the manifest; recovery must find the newest snapshot. *)
      Out_channel.with_open_bin (Store.manifest_path store) (fun oc ->
          Out_channel.output_string oc "{ not a manifest");
      (match Store.load_latest store with
      | None -> ok := false
      | Some l ->
          if
            l.Store.version <> publishes
            || (not l.Store.recovered)
            || Library.to_string l.Store.library <> Library.to_string !last
          then ok := false);
      !ok)

(* (b') Torn snapshots: truncate the newest snapshot at an arbitrary byte
   and trash the manifest — the checksum sidecar must reject the torn
   file and the snapshot scan must recover the previous good version,
   never serve the torn bytes. *)
let torn_snapshot_recovery ~count =
  QCheck.Test.make ~name:"serve: torn snapshot rejected by checksum, previous version recovered"
    ~count seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 3557) + k) in
      let dir = fresh_dir "torn" in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let lib1, _ = random_library rng (1 + Rng.int rng 6) in
      let lib2, _ = random_library rng (2 + Rng.int rng 6) in
      let store = Store.open_ ~dir in
      ignore (Store.publish store lib1);
      let v2 = Store.publish store lib2 in
      let snap = Store.snapshot_path store v2 in
      let full = In_channel.with_open_bin snap In_channel.input_all in
      let cut = k mod String.length full in
      Out_channel.with_open_bin snap (fun oc ->
          Out_channel.output_string oc (String.sub full 0 cut));
      (* The manifest's own checksum already rejects the torn file; trash
         the manifest too so the snapshot-scan recovery path is the one
         under test. *)
      Out_channel.with_open_bin (Store.manifest_path store) (fun oc ->
          Out_channel.output_string oc "{ torn");
      match Store.load_latest store with
      | None -> false
      | Some l ->
          l.Store.recovered
          && l.Store.version = v2 - 1
          && l.Store.warnings = []
          && Library.to_string l.Store.library = Library.to_string lib1)

let families = [| "gemm/f16"; "gemm/f32"; "c2d/f16" |]

let random_task rng =
  {
    Tuning_queue.t_dla = dname;
    t_op_key =
      Printf.sprintf "%s/i:%d,j:%d" (Rng.choice rng families) (Rng.choice rng dims)
        (Rng.choice rng dims);
  }

let task_keys q = List.map Tuning_queue.task_key (Tuning_queue.tasks q)

(* (c) Dedup: however many times a key misses while pending, exactly one
   task exists for it, and the queue preserves first-miss order. *)
let dedupe ~count =
  QCheck.Test.make ~name:"serve: k misses on one pending key enqueue exactly one task" ~count
    seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 4969) + k) in
      let stream = List.init (3 + Rng.int rng 24) (fun _ -> random_task rng) in
      let q = Tuning_queue.create () in
      let seen = Hashtbl.create 16 in
      let accepts_ok =
        List.for_all
          (fun t ->
            let key = Tuning_queue.task_key t in
            let fresh = not (Hashtbl.mem seen key) in
            Hashtbl.replace seen key ();
            Tuning_queue.enqueue q t = fresh)
          stream
      in
      let firsts =
        List.rev
          (fst
             (List.fold_left
                (fun (acc, seen) t ->
                  let key = Tuning_queue.task_key t in
                  if List.mem key seen then (acc, seen) else (key :: acc, key :: seen))
                ([], []) stream))
      in
      accepts_ok && task_keys q = firsts
      && List.for_all (Tuning_queue.mem q) firsts)

(* (d) Crash-redo equality: checkpoint the queue after any prefix of the
   miss stream, reload it, and replay the whole stream — dedup makes the
   replay idempotent, so the final queue equals the uninterrupted one. *)
let resume_any_checkpoint ~count =
  QCheck.Test.make ~name:"serve: resume from any queue checkpoint equals uninterrupted" ~count
    seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 8191) + k) in
      let stream = List.init (2 + Rng.int rng 16) (fun _ -> random_task rng) in
      let full = Tuning_queue.create () in
      List.iter (fun t -> ignore (Tuning_queue.enqueue full t)) stream;
      let cut = k mod (List.length stream + 1) in
      let prefix = List.filteri (fun i _ -> i < cut) stream in
      let q1 = Tuning_queue.create () in
      List.iter (fun t -> ignore (Tuning_queue.enqueue q1 t)) prefix;
      incr dir_counter;
      let path = Printf.sprintf "_sp_queue_%d.json" !dir_counter in
      Fun.protect ~finally:(fun () -> rm_rf path) @@ fun () ->
      Tuning_queue.save q1 ~path;
      match Tuning_queue.load ~path with
      | Error _ -> false
      | Ok q2 ->
          let roundtrip = task_keys q2 = task_keys q1 in
          List.iter (fun t -> ignore (Tuning_queue.enqueue q2 t)) stream;
          roundtrip && task_keys q2 = task_keys full)

let tests ?(count = 20) () =
  [
    index_equals_oracle ~count;
    publish_reload_roundtrip ~count:(max 1 (count / 2));
    torn_snapshot_recovery ~count;
    dedupe ~count;
    resume_any_checkpoint ~count;
  ]
