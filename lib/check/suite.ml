let all ~budget =
  let at n = max 1 n in
  [
    ("diff", Diff.tests ~count:(at budget) ());
    ("engine", Engine_diff.tests ~count:(at budget) ());
    ("dla", Dla_props.tests ~count:(at (budget / 8)) ());
    ("model", Model_props.tests ~count:(at (budget / 8)) ());
    ("search", Search_props.tests ~count:(at (budget / 15)) ());
    ("search_engine", Search_engine_diff.tests ~count:(at (budget / 15)) ());
    ("fault", Fault_props.tests ~count:(at (budget / 15)) ());
    ("serve", Serve_props.tests ~count:(at (budget / 15)) ());
    ("nets", Nets_props.tests ~count:(at (budget / 15)) ());
    ("crash", Crash_props.tests ~count:(at (budget / 15)) ());
  ]
