(** Metamorphic and invariant properties over the DLA layer: spaces built
    by the real {!Heron.Generator} on three descriptor families, programs
    drawn with [rand_sat], checked through {!Heron_dla.Validate},
    {!Heron_dla.Perf_model} and {!Heron_dla.Measure}.

    - every sampled assignment instantiates to a validator-clean program
      (the paper's "constrained space = valid space" claim);
    - constraint order never changes propagation or sampled-program
      validity;
    - halving every scratchpad capacity can only lower [blocks_per_unit],
      raise [waves], and shrink the valid set;
    - [Measure.run] succeeds exactly when [Validate.check] does and stays
      within the model's documented noise envelope. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
(** [count] sampled programs per property per descriptor (default 40). *)

val spaces : (Heron_dla.Descriptor.t * Heron.Generator.t) list Lazy.t
(** The shared descriptor/space fixtures (v100 f16 GEMM, DLBoost i8 GEMM,
    VTA i8 GEMM), built once on first force and reused by {!Search_props}. *)
