(** Properties of the whole-network tuner: scheduler budget conservation
    and warmup, constant-gain/round-robin equivalence, transfer layout
    soundness, and driver inertness (no-transfer tuning is byte-identical
    to hand-rolled chunked CGA runs with the same allocation). *)

val tests : ?count:int -> unit -> QCheck.Test.t list
