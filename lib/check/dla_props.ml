module Op = Heron_tensor.Op
module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Solver = Heron_csp.Solver
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Validate = Heron_dla.Validate
module Perf_model = Heron_dla.Perf_model
module Measure = Heron_dla.Measure
module Generator = Heron.Generator
module Rng = Heron_util.Rng

(* Space construction is the expensive part; build each once, lazily, and
   share it across all properties and all generated cases. *)
let spaces =
  lazy
    (List.map
       (fun (desc, op) -> (desc, Generator.generate ~seed:7 desc op))
       [
         (Descriptor.v100, Op.gemm ~dt:F16 ~m:256 ~n:256 ~k:256 ());
         (Descriptor.dlboost, Op.gemm ~dt:I8 ~m:128 ~n:128 ~k:128 ());
         (Descriptor.vta, Op.gemm ~dt:I8 ~m:64 ~n:256 ~k:256 ());
       ])

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

(* One program per (descriptor, seed): rand_sat must succeed — that the
   constrained space stays solvable is itself part of the property. *)
let draw (gen : Generator.t) rng =
  match Solver.rand_sat rng gen.problem 1 with
  | [ a ] -> Some (a, Concrete.instantiate gen.template a)
  | _ -> None

let for_all_spaces seed f =
  List.for_all
    (fun (i, (desc, gen)) -> f desc gen (Rng.create ((seed * 31) + i)))
    (List.mapi (fun i s -> (i, s)) (Lazy.force spaces))

let valid_by_construction ~count =
  QCheck.Test.make ~name:"dla: sampled assignments instantiate to valid programs" ~count
    seed_arb (fun seed ->
      for_all_spaces seed (fun desc gen rng ->
          match draw gen rng with
          | None -> false
          | Some (a, prog) ->
              Problem.check gen.problem a = Ok () && Validate.check desc prog = Ok ()))

let shuffle_cons p rng =
  let cs = Array.of_list (Problem.constraints p) in
  let perm = Rng.permutation rng (Array.length cs) in
  let parts =
    Array.to_list (Array.map (fun v -> (v, Problem.domain p v)) (Problem.vars p))
  in
  Problem.of_parts parts (Array.to_list (Array.map (fun i -> cs.(i)) perm))

let reorder_invariance ~count =
  QCheck.Test.make ~name:"dla: constraint reorder preserves propagation and validity" ~count
    seed_arb (fun seed ->
      for_all_spaces seed (fun desc gen rng ->
          let p' = shuffle_cons gen.problem rng in
          let doms_of q =
            match Solver.propagate_domains q with
            | None -> None
            | Some ds ->
                Some (List.sort compare (List.map (fun (v, d) -> (v, Domain.to_list d)) ds))
          in
          doms_of gen.problem = doms_of p'
          &&
          (* A sample from the reordered space is a sample from the space. *)
          match Solver.rand_sat rng p' 1 with
          | [ a ] ->
              Problem.check gen.problem a = Ok ()
              && Validate.check desc (Concrete.instantiate gen.template a) = Ok ()
          | _ -> false))

let tighten desc =
  Descriptor.
    { desc with spm_capacity = List.map (fun (s, c) -> (s, c / 2)) desc.spm_capacity }

let spm_monotone ~count =
  QCheck.Test.make
    ~name:"dla: halving scratchpads lowers blocks/unit, raises waves, shrinks valid set"
    ~count seed_arb (fun seed ->
      for_all_spaces seed (fun desc gen rng ->
          match draw gen rng with
          | None -> false
          | Some (_, prog) ->
              let tight = tighten desc in
              let b = Perf_model.analyze desc prog in
              let b' = Perf_model.analyze tight prog in
              b'.blocks_per_unit <= b.blocks_per_unit
              && b'.waves >= b.waves
              && ((not (Validate.is_valid tight prog)) || Validate.is_valid desc prog)))

let measure_matches_validate ~count =
  QCheck.Test.make ~name:"dla: Measure.run agrees with Validate and the perf model" ~count
    seed_arb (fun seed ->
      for_all_spaces seed (fun desc gen rng ->
          match draw gen rng with
          | None -> false
          | Some (_, prog) ->
              let m = Measure.create desc in
              let tight_prog_ok = Validate.check desc prog = Ok () in
              (match Measure.run m prog with
              | Ok lat ->
                  let base = Perf_model.latency_us desc prog in
                  tight_prog_ok && lat > 0.0
                  && Float.abs (lat -. base) <= (0.011 *. base) +. 1e-9
              | Error _ -> not tight_prog_ok)
              (* The invalid side, on a program made invalid on purpose. *)
              &&
              let tight = tighten (tighten desc) in
              let mt = Measure.create tight in
              (Measure.run mt prog |> Result.is_ok) = Validate.is_valid tight prog))

let tests ?(count = 40) () =
  [
    valid_by_construction ~count;
    reorder_invariance ~count;
    spm_monotone ~count;
    measure_matches_validate ~count;
  ]
