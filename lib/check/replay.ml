let default_seed = 42

let seed_from_env () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> default_seed)
  | None -> default_seed

let test_name (QCheck2.Test.Test cell) = QCheck2.Test.get_name cell

let rand_for ~seed name =
  let h = Int64.to_int (Heron_util.Hashing.fnv1a name) land 0x3FFFFFFF in
  Random.State.make [| seed; h |]

let run_test ~seed t = QCheck.Test.check_exn ~rand:(rand_for ~seed (test_name t)) t

let to_alcotest ?(speed = `Quick) ~seed t =
  let name = test_name t in
  Alcotest.test_case name speed (fun () ->
      try run_test ~seed t
      with e ->
        Printf.printf
          "\n\
           [qcheck] property %S failed under campaign seed %d\n\
           [qcheck] replay: QCHECK_SEED=%d dune runtest\n\
           [qcheck] replay: dune exec bin/fuzz.exe -- --seed %d --filter %S\n%!"
          name seed seed seed name;
        raise e)
