module Domain = Heron_csp.Domain
module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

let space_size p =
  Array.fold_left
    (fun acc v ->
      let s = Domain.size (Problem.domain p v) in
      if acc > max_int / 2 / max s 1 then max_int / 2 else acc * s)
    1 (Problem.vars p)

let enum_solutions ~limit p =
  let vars = Array.to_list (Problem.vars p) in
  let out = ref [] and n = ref 0 in
  let rec go acc = function
    | [] ->
        if Problem.check p acc = Ok () then begin
          out := acc :: !out;
          incr n
        end
    | v :: rest ->
        Domain.iter
          (fun value -> if !n < limit then go (Assignment.set acc v value) rest)
          (Problem.domain p v)
  in
  go Assignment.empty vars;
  !out

let solutions ?(limit = max_int) p =
  enum_solutions ~limit p
  |> List.sort (fun a b -> compare (Assignment.key a) (Assignment.key b))

let is_sat p = enum_solutions ~limit:1 p <> []

let count p = List.length (enum_solutions ~limit:max_int p)
