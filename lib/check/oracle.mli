(** Brute-force CSP oracle.

    Exhaustively enumerates the cross product of the domains and filters
    with {!Heron_csp.Problem.check} — no propagation, no search heuristics,
    nothing shared with {!Heron_csp.Solver}. On small problems this is the
    ground truth the solver is differentially verified against: the two
    implementations only agree because both are correct. *)

val space_size : Heron_csp.Problem.t -> int
(** Product of all domain sizes (the cost of one oracle call). Saturates at
    [max_int / 2] instead of overflowing. *)

val solutions : ?limit:int -> Heron_csp.Problem.t -> Heron_csp.Assignment.t list
(** All satisfying total assignments, by exhaustive enumeration, sorted by
    {!Heron_csp.Assignment.key}. Stops after [limit] solutions (default:
    unlimited). Only call on problems with a small {!space_size}. *)

val is_sat : Heron_csp.Problem.t -> bool
(** Exhaustive satisfiability (early exit on the first solution). *)

val count : Heron_csp.Problem.t -> int
(** Number of satisfying assignments. *)
