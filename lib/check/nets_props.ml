module Problem = Heron_csp.Problem
module Solver = Heron_csp.Solver
module Features = Heron_cost.Features
module Transfer = Heron_cost.Transfer
module Cga = Heron_search.Cga
module Env = Heron_search.Env
module Scheduler = Heron_nets.Scheduler
module Tasks = Heron_nets.Tasks
module Tuner = Heron_nets.Tuner
module Models = Heron_nets.Models
module Generator = Heron.Generator
module Pipeline = Heron.Pipeline
module Rng = Heron_util.Rng
module Hashing = Heron_util.Hashing

(* Deterministic per-(task, round) pseudo-measurements, so every property
   drives the scheduler with the same report stream on replay. *)
let synth_best task rounds =
  let h =
    Int64.to_int (Hashing.fnv1a (Printf.sprintf "nets:%d:%d" task rounds)) land 0xFFFF
  in
  10.0 /. float_of_int (rounds + 1) *. (1.0 +. (float_of_int h /. 65536.0))

let synth_done task rounds =
  let h = Int64.to_int (Hashing.fnv1a (Printf.sprintf "done:%d:%d" task rounds)) in
  h land 7 = 0

(* Drive a scheduler to exhaustion with the synthetic stream; returns the
   allocation sequence (newest last). Raises on a violated step invariant
   so QCheck reports the offending configuration. *)
let drive sched =
  let allocs = ref [] in
  let rounds = ref 0 in
  let continue_ = ref true in
  (* Budget strictly decreases every round, so this always terminates. *)
  while !continue_ do
    match Scheduler.next sched with
    | None -> continue_ := false
    | Some (task, alloc) ->
        let before = Scheduler.remaining sched in
        if alloc <= 0 || alloc > before then
          failwith (Printf.sprintf "round %d: alloc %d of %d remaining" !rounds alloc before);
        let v = Scheduler.views sched in
        let rs = v.(task).Scheduler.v_rounds in
        Scheduler.report sched ~task ~alloc
          ~best:(Some (synth_best task rs))
          ~done_:(synth_done task rs);
        allocs := (task, alloc) :: !allocs;
        incr rounds
  done;
  List.rev !allocs

let arb_config =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* weights = array_repeat n (map float_of_int (int_range 1 8)) in
      let* budget = int_range 1 200 in
      let* slice = int_range 1 32 in
      return (weights, budget, slice))
  in
  QCheck.make
    ~print:(fun (w, b, s) ->
      Printf.sprintf "weights=[%s] budget=%d slice=%d"
        (String.concat ";" (Array.to_list (Array.map string_of_float w)))
        b s)
    gen

(* Conservation: allocations sum to exactly the spent budget; the loop
   only stops early (budget left over) when every task is done; and the
   warmup floor sends the first rounds to distinct tasks. *)
let scheduler_conservation ~count =
  QCheck.Test.make ~name:"nets: scheduler conserves budget and warms every task" ~count
    arb_config
    (fun (weights, budget, slice) ->
      let sched = Scheduler.create ~slice ~budget weights in
      let allocs = drive sched in
      let spent = List.fold_left (fun acc (_, a) -> acc + a) 0 allocs in
      let views = Scheduler.views sched in
      let all_done = Array.for_all (fun v -> v.Scheduler.v_done) views in
      let remaining = Scheduler.remaining sched in
      (* Exact conservation. *)
      spent + remaining = budget
      (* Early stop only when no task can absorb budget. *)
      && (remaining = 0 || all_done)
      (* Warmup floor: the first min(n, rounds) rounds hit distinct tasks. *)
      &&
      let n = Array.length weights in
      let first = List.filteri (fun i _ -> i < n) allocs in
      let tasks = List.map fst first in
      List.length (List.sort_uniq compare tasks) = List.length tasks
      (* Per-task bookkeeping agrees with the allocation log. *)
      && Array.for_all
           (fun v ->
             v.Scheduler.v_alloc
             = List.fold_left
                 (fun acc (t, a) -> if t = v.Scheduler.v_id then acc + a else acc)
                 0 allocs)
           views)

(* A constant gain estimate must reproduce round-robin order exactly:
   under ties the scheduler prefers the least recently scheduled task,
   which is the cyclic order. *)
let round_robin_equivalence ~count =
  QCheck.Test.make ~name:"nets: constant-gain allocation equals round-robin" ~count
    arb_config
    (fun (weights, budget, slice) ->
      let const_ =
        Scheduler.create ~policy:(Scheduler.Custom (fun _ -> 1.0)) ~slice ~budget weights
      in
      let rr = Scheduler.create ~policy:Scheduler.Round_robin ~slice ~budget weights in
      drive const_ = drive rr)

(* Transfer soundness: imported rows are always layout-compatible with
   the target (exactly n_features cells, every bin within range), for
   arbitrary donor/target problem pairs. *)
let transfer_layout ~count =
  QCheck.Test.make ~name:"nets: transferred windows fit the target feature layout" ~count
    (QCheck.triple (Csp_gen.arbitrary ()) (Csp_gen.arbitrary ()) QCheck.small_int)
    (fun (dsp, tsp, seed) ->
      let donor = Csp_gen.to_problem dsp and target = Csp_gen.to_problem tsp in
      let df = Features.of_problem donor and tf = Features.of_problem target in
      let rng = Rng.create seed in
      let sols = Solver.rand_sat ~max_fails:10_000 rng donor 6 in
      QCheck.assume (sols <> []);
      let window =
        List.mapi (fun i a -> (Features.binned df a, 1.0 +. float_of_int i)) sols
      in
      let portable = Transfer.export df window in
      match Transfer.import tf portable with
      | None -> true (* low coverage: cold start, nothing to check *)
      | Some rows ->
          let nb = Features.n_bins tf in
          rows <> []
          && List.for_all
               (fun (bins, score) ->
                 Array.length bins = Features.n_features tf
                 && Array.for_all (fun b -> b >= 0) (Array.mapi (fun i b -> nb.(i) - 1 - b) bins)
                 && Array.for_all (fun b -> b >= 0) bins
                 && Float.is_finite score)
               rows)

(* Driver inertness: with transfer off, the multi-task tuner is nothing
   but a scheduler around per-task chunked CGA runs — replaying the
   recorded allocation by hand (same per-task seeds, same cumulative
   budgets) must reproduce every task's trace and best byte-for-byte. *)
let no_transfer_inert ~count =
  QCheck.Test.make ~name:"nets: no-transfer tuning equals hand-rolled chunked CGA" ~count
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let desc = Heron_dla.Descriptor.v100 in
      let net = Models.tiny in
      let budget = 24 and slice = 8 in
      let r = Tuner.tune ~budget ~seed ~slice ~transfer:false desc net in
      List.for_all
        (fun tr ->
          let t = tr.Tuner.tr_task in
          let tseed = Tuner.task_seed ~seed t.Tasks.t_key in
          let gen = Generator.generate ~seed:tseed desc t.Tasks.t_op in
          let ms = Pipeline.make_measure_set desc gen in
          let env =
            {
              Env.problem = gen.Generator.problem;
              measure = ms.Pipeline.measure;
              rng = Rng.create tseed;
            }
          in
          let snapshot = ref None in
          let cum = ref 0 in
          List.iter
            (fun (task, alloc) ->
              if task = t.Tasks.t_id then begin
                cum := !cum + alloc;
                ignore
                  (Cga.run ~measure_batch:ms.Pipeline.measure_batch ?resume:!snapshot
                     ~on_snapshot:(fun s -> snapshot := Some s)
                     env ~budget:!cum)
              end)
            r.Tuner.r_allocations;
          match !snapshot with
          | None -> tr.Tuner.tr_trace = [] && tr.Tuner.tr_best = None
          | Some s ->
              s.Cga.s_recorder.Env.Recorder.x_trace = tr.Tuner.tr_trace
              && s.Cga.s_recorder.Env.Recorder.x_best = tr.Tuner.tr_best
              && s.Cga.s_recorder.Env.Recorder.x_best_a = tr.Tuner.tr_best_assignment)
        r.Tuner.r_reports)

let tests ?(count = 20) () =
  [
    scheduler_conservation ~count:(max 1 (count * 4));
    round_robin_equivalence ~count:(max 1 (count * 4));
    transfer_layout ~count;
    no_transfer_inert ~count:(max 1 (count / 10));
  ]
