(** Differential properties for the flat-array cost-model engine and the
    batched perf-model evaluation path:

    - the struct-of-arrays {!Heron_cost.Gbt} must fit and predict
      byte-identically to the frozen pre-overhaul {!Heron_cost.Gbt_ref}
      (canonical dumps, predictions and feature importances all exactly
      equal);
    - the {!Heron_cost.Model} ring-buffer training window must reproduce
      the old list-window semantics for any record stream;
    - [Model.predict_batch] must agree pointwise with scalar [predict],
      trained or not;
    - {!Heron_dla.Perf_model} context/batch evaluation must equal scalar
      [analyze] on full breakdowns;
    - the pipeline's batched measurement provider must equal its scalar
      measurement closure, invocation counts included. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
