(** Fault-campaign invariants of the resilient measurement pipeline:

    - a CGA run under injected faults still only ever reports a best
      assignment that satisfies the original CSP;
    - a quarantined configuration is never measured again — its attempt
      count is bounded by the retry policy no matter how often the search
      revisits it;
    - a zero-rate fault spec is byte-for-byte inert: trace, incumbent and
      invalid count equal the resilience-free run;
    - killing a run at any iteration boundary and resuming from the
      checkpoint snapshot reproduces the uninterrupted run exactly. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
(** [count] cases per property (default 20). *)
