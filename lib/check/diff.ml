module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Domain = Heron_csp.Domain
module Rng = Heron_util.Rng

(* A fail budget larger than any generated space (10^4 assignments), so
   backtracking search is exhaustive and None means UNSAT, not give-up. *)
let exhaustive = 1_000_000

let small_problem sp =
  let p = Csp_gen.to_problem sp in
  QCheck.assume (Oracle.space_size p <= 10_000);
  p

let keys l = List.sort compare (List.map Assignment.key l)

let with_seed arb = QCheck.pair arb QCheck.small_int

let solve_agrees arb ~count =
  QCheck.Test.make ~name:"diff: solve sound + complete vs oracle" ~count (with_seed arb)
    (fun (sp, seed) ->
      let p = small_problem sp in
      let sat = Oracle.is_sat p in
      match Solver.solve ~max_fails:exhaustive ~max_restarts:0 (Rng.create seed) p with
      | Some a -> Problem.check p a = Ok () && sat
      | None -> not sat)

let solve_bounds_only_agrees arb ~count =
  QCheck.Test.make ~name:"diff: bounds-only solve sound + complete vs oracle" ~count
    (with_seed arb) (fun (sp, seed) ->
      let p = small_problem sp in
      let sat = Oracle.is_sat p in
      match
        Solver.solve ~exact_limit:0 ~max_fails:exhaustive ~max_restarts:0 (Rng.create seed) p
      with
      | Some a -> Problem.check p a = Ok () && sat
      | None -> not sat)

let enumerate_equals_oracle arb ~count =
  QCheck.Test.make ~name:"diff: enumerate = oracle solution set" ~count arb (fun sp ->
      let p = small_problem sp in
      keys (Solver.enumerate ~limit:20_000 p) = keys (Oracle.solutions p))

let rand_sat_sound_complete arb ~count =
  QCheck.Test.make ~name:"diff: rand_sat sound, complete on sat, empty on unsat" ~count
    (with_seed arb) (fun (sp, seed) ->
      let p = small_problem sp in
      let n = 4 in
      let sols = Solver.rand_sat ~max_fails:exhaustive (Rng.create seed) p n in
      List.for_all (fun a -> Problem.check p a = Ok ()) sols
      && List.length sols = if Oracle.is_sat p then n else 0)

let solve_all_agrees arb ~count =
  QCheck.Test.make ~name:"diff: solve_all per-problem agreement with oracle" ~count
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 3) arb) QCheck.small_int)
    (fun (sps, seed) ->
      let ps = List.map Csp_gen.to_problem sps in
      QCheck.assume (List.for_all (fun p -> Oracle.space_size p <= 10_000) ps);
      let outs = Solver.solve_all ~max_fails:exhaustive ~max_restarts:0 (Rng.create seed) ps in
      List.length outs = List.length ps
      && List.for_all2
           (fun p out ->
             match out with
             | Some a -> Problem.check p a = Ok () && Oracle.is_sat p
             | None -> not (Oracle.is_sat p))
           ps outs)

let propagation_keeps_solutions arb ~count =
  QCheck.Test.make ~name:"diff: propagation never prunes an oracle solution" ~count arb
    (fun sp ->
      let p = small_problem sp in
      let sols = Oracle.solutions p in
      match Solver.propagate_domains p with
      | None -> sols = []
      | Some doms ->
          List.for_all
            (fun a ->
              List.for_all (fun (v, d) -> Domain.mem (Assignment.get a v) d) doms)
            sols)

let reorder_invariance arb ~count =
  QCheck.Test.make ~name:"diff: propagation and solution set invariant under cons reorder"
    ~count (with_seed arb) (fun (sp, seed) ->
      let p = small_problem sp in
      let sp' = Csp_gen.permute_cons sp (Rng.create seed) in
      let p' = Csp_gen.to_problem sp' in
      let doms_of q =
        match Solver.propagate_domains q with
        | None -> None
        | Some doms -> Some (List.sort compare (List.map (fun (v, d) -> (v, Domain.to_list d)) doms))
      in
      doms_of p = doms_of p'
      && keys (Solver.enumerate ~limit:20_000 p) = keys (Solver.enumerate ~limit:20_000 p'))

let tests ?(count = 300) () =
  let arb = Csp_gen.arbitrary () in
  [
    solve_agrees arb ~count;
    solve_bounds_only_agrees arb ~count;
    enumerate_equals_oracle arb ~count;
    rand_sat_sound_complete arb ~count;
    solve_all_agrees arb ~count;
    propagation_keeps_solutions arb ~count;
    reorder_invariance arb ~count;
  ]
