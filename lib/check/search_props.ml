module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Domain = Heron_csp.Domain
module Concrete = Heron_sched.Concrete
module Validate = Heron_dla.Validate
module Cga = Heron_search.Cga
module Env = Heron_search.Env
module Rng = Heron_util.Rng
module Pool = Heron_util.Pool
module Hashing = Heron_util.Hashing

let exhaustive = 1_000_000

let with_seed arb = QCheck.pair arb QCheck.small_int

(* Crossover on random generated CSPs: every offspring the solver can
   materialize from a crossover CSP must satisfy the *original* problem. *)
let crossover_on_random ~count =
  QCheck.Test.make ~name:"search: crossover offspring satisfy the original CSP" ~count
    (with_seed (Csp_gen.arbitrary ())) (fun (sp, seed) ->
      let p = Csp_gen.to_problem sp in
      QCheck.assume (Oracle.space_size p <= 10_000 && Oracle.is_sat p);
      let rng = Rng.create seed in
      let parents =
        Array.of_list (Solver.rand_sat ~max_fails:exhaustive rng p 2)
      in
      QCheck.assume (Array.length parents = 2);
      let vars = Array.to_list (Problem.vars p) in
      let keys = List.filteri (fun i _ -> i mod 2 = 0) vars in
      let csps = Cga.crossover_csps rng p ~keys ~parents ~n:4 in
      List.for_all
        (fun csp ->
          match Solver.solve ~max_fails:exhaustive ~max_restarts:0 rng csp with
          | Some a -> Problem.check p a = Ok ()
          | None -> true (* an over-constrained child is discarded, not wrong *))
        csps)

(* Crossover on the real V100 GEMM space: offspring must instantiate to
   validator-clean programs, the Algorithm 3 guarantee end to end. *)
let crossover_on_dla ~count =
  QCheck.Test.make ~name:"search: crossover offspring are valid DLA programs" ~count
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let desc, (gen : Heron.Generator.t) = List.hd (Lazy.force Dla_props.spaces) in
      let rng = Rng.create seed in
      let parents = Array.of_list (Solver.rand_sat rng gen.problem 2) in
      if Array.length parents <> 2 then false
      else
        let keys =
          match Problem.vars_of_category gen.problem Problem.Tunable with
          | [] -> Array.to_list (Problem.vars gen.problem)
          | vs -> List.filteri (fun i _ -> i < 4) vs
        in
        let csps = Cga.crossover_csps rng gen.problem ~keys ~parents ~n:3 in
        List.for_all
          (fun csp ->
            match Solver.solve rng csp with
            | Some a ->
                Problem.check gen.problem a = Ok ()
                && Validate.check desc (Concrete.instantiate gen.template a) = Ok ()
            | None -> true)
          csps)

(* A small fixed satisfiable problem for end-to-end CGA runs: c = a * b
   with power-of-two domains, the shape of a tiling sub-space. *)
let toy_problem () =
  Problem.of_parts
    [
      ("a", Domain.of_list [ 1; 2; 4; 8 ]);
      ("b", Domain.of_list [ 1; 2; 4; 8 ]);
      ("c", Domain.of_list [ 1; 2; 4; 8; 16; 32; 64 ]);
      ("u", Domain.of_list [ 1; 2; 3; 4 ]);
    ]
    [ Heron_csp.Cons.Prod ("c", [ "a"; "b" ]) ]

(* Deterministic, configuration-dependent "latency": a pure hash of the
   assignment, so any trace divergence is the search's fault alone. *)
let hash_measure a =
  let h = Int64.to_int (Hashing.fnv1a (Assignment.key a)) land 0xFFFF in
  Some (1.0 +. (float_of_int h /. 4096.0))

let small_params =
  Cga.
    {
      default_params with
      pop_size = 8;
      generations = 2;
      batch = 4;
      top_k = 2;
      survivors = 2;
    }

let run_cga ?pool seed =
  let env =
    Env.{ problem = toy_problem (); measure = hash_measure; rng = Rng.create seed }
  in
  let outcome = Cga.run ~params:small_params ?pool env ~budget:12 in
  outcome.Cga.result

let cga_pool_invariance ~count =
  QCheck.Test.make ~name:"search: CGA trace is identical with and without a pool" ~count
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let seq = run_cga seed in
      let par = Pool.with_pool ~domains:3 (fun pool -> run_cga ~pool seed) in
      seq.Env.trace = par.Env.trace
      && seq.Env.best_latency = par.Env.best_latency
      && seq.Env.best_assignment = par.Env.best_assignment
      && seq.Env.invalid = par.Env.invalid
      && seq.Env.invalid = 0)

let tests ?(count = 20) () =
  [
    crossover_on_random ~count;
    crossover_on_dla ~count;
    cga_pool_invariance ~count:(max 1 (count / 3));
  ]
