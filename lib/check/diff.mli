(** Differential verification of {!Heron_csp.Solver} against the
    brute-force {!Oracle}, as QCheck properties over {!Csp_gen} problems.

    Each property checks, on every generated CSP (domain product <= 10^4):
    soundness (anything the solver emits re-validates against the
    constraints), completeness-on-sat (given an exhaustive fail budget, the
    solver finds a solution whenever the oracle says one exists), UNSAT
    agreement, and metamorphic reorder-invariance of propagation and of the
    solution set. [rand_sat]/[solve_all] are additionally pinned to their
    split-generator determinism contract. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
(** [count] generated problems per property (default 300). *)
