(** Properties of the serving layer: the lookup index against a naive
    library oracle, store publish/reload round-trips (including manifest
    corruption), torn-snapshot rejection via the checksum sidecar,
    tuning-queue dedup, and resume-from-any-queue-checkpoint equality. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
