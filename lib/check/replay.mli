(** Seed plumbing shared by the three test tiers.

    Every property runs on a [Random.State.t] derived from one campaign
    seed plus the property's name, so (a) a whole run replays from a single
    integer, (b) filtering tests in or out never shifts another test's
    stream, and (c) any failure message carries the exact command that
    reproduces it byte-identically. *)

val default_seed : int

val seed_from_env : unit -> int
(** [QCHECK_SEED] when set (and numeric), {!default_seed} otherwise. *)

val test_name : QCheck.Test.t -> string

val rand_for : seed:int -> string -> Random.State.t
(** The per-property generator state: a pure function of (seed, name). *)

val run_test : seed:int -> QCheck.Test.t -> unit
(** {!QCheck.Test.check_exn} on the per-property state. Raises on failure
    with the shrunk counterexample in the message. *)

val to_alcotest :
  ?speed:Alcotest.speed_level -> seed:int -> QCheck.Test.t -> unit Alcotest.test_case
(** Alcotest adapter that, on any property failure, first prints the qcheck
    seed and the two replay commands ([QCHECK_SEED=... dune runtest] and
    [bin/fuzz --seed ... --filter ...]) before re-raising. *)
