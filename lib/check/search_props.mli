(** Search-level invariants (paper Algorithms 2 and 3):

    - constraint-based crossover only ever materializes offspring that
      satisfy the original CSP — checked both on random {!Csp_gen} problems
      (against the {!Oracle}) and on a real generated DLA space (against
      {!Heron_dla.Validate});
    - a full CGA run is byte-deterministic in its trace, incumbent and
      invalid count whatever the domain-pool size, and explores zero
      invalid candidates on a constrained space. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
(** [count] cases per property (default 20); the CGA end-to-end property
    runs [max 1 (count / 3)] cases. *)

(** {2 Shared fixtures} (also used by {!Fault_props}) *)

val toy_problem : unit -> Heron_csp.Problem.t
(** A small fixed satisfiable problem for end-to-end CGA runs: [c = a * b]
    with power-of-two domains, the shape of a tiling sub-space. *)

val hash_measure : Heron_csp.Assignment.t -> float option
(** Deterministic configuration-dependent "latency": a pure hash of the
    assignment, so any trace divergence is the search's fault alone. *)

val small_params : Heron_search.Cga.params
(** CGA parameters scaled down for property-test budgets. *)
