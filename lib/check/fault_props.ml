module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Faults = Heron_dla.Faults
module Cga = Heron_search.Cga
module Env = Heron_search.Env
module Resilience = Heron_search.Resilience
module Rng = Heron_util.Rng

let seed_pair = QCheck.pair QCheck.small_int QCheck.small_int

(* A moderately hostile fault universe: every class of fault occurs, rates
   vary with the generated fault seed. *)
let hostile_spec fseed =
  {
    Faults.seed = fseed;
    timeout_rate = 0.1 +. (0.05 *. float_of_int (fseed mod 4));
    crash_rate = 0.1;
    hang_rate = 0.05;
    noise = 0.2;
    persistent = 0.15;
  }

let run_cga ?resilience ?resume ?on_snapshot seed =
  let env =
    Env.
      {
        problem = Search_props.toy_problem ();
        measure = Search_props.hash_measure;
        rng = Rng.create seed;
      }
  in
  Cga.run ~params:Search_props.small_params ?resilience ?resume ?on_snapshot env ~budget:12

let same_result (a : Env.result) (b : Env.result) =
  a.Env.trace = b.Env.trace
  && a.Env.best_latency = b.Env.best_latency
  && a.Env.invalid = b.Env.invalid
  && Option.map Assignment.key a.Env.best_assignment
     = Option.map Assignment.key b.Env.best_assignment

(* (a) Even under injected faults, every configuration that reaches the
   measurer — and in particular the reported best — satisfies the CSP. *)
let offspring_valid_under_faults ~count =
  QCheck.Test.make ~name:"fault: measured offspring satisfy the CSP under faults" ~count
    seed_pair (fun (seed, fseed) ->
      let problem = Search_props.toy_problem () in
      let all_valid = ref true in
      let attempt a ~attempt =
        if Problem.check problem a <> Ok () then all_valid := false;
        Heron.Pipeline.make_attempt_measure Search_props.hash_measure (hostile_spec fseed) a
          ~attempt
      in
      let resilience = Env.Recorder.make_resilience attempt in
      let outcome = run_cga ~resilience seed in
      !all_valid
      &&
      match outcome.Cga.result.Env.best_assignment with
      | None -> true
      | Some a -> Problem.check problem a = Ok ())

(* (b) A quarantined configuration is never measured again: whatever the
   eval sequence, no configuration sees more than max_retries + 1
   measurement attempts, and a quarantined config replays as None. *)
let quarantine_never_remeasured ~count =
  QCheck.Test.make ~name:"fault: quarantined configs are never re-measured" ~count seed_pair
    (fun (seed, fseed) ->
      let problem = Search_props.toy_problem () in
      let spec = { Faults.zero with seed = fseed; crash_rate = 0.6; persistent = 0.5 } in
      let attempts = Hashtbl.create 32 in
      let attempt a ~attempt:n =
        let key = Assignment.key a in
        Hashtbl.replace attempts key (1 + Option.value ~default:0 (Hashtbl.find_opt attempts key));
        Heron.Pipeline.make_attempt_measure Search_props.hash_measure spec a ~attempt:n
      in
      let resilience = Env.Recorder.make_resilience attempt in
      let env =
        Env.{ problem; measure = Search_props.hash_measure; rng = Rng.create seed }
      in
      let r = Env.Recorder.create ~resilience env ~budget:200 in
      let sols = Solver.rand_sat (Rng.create seed) problem 8 in
      QCheck.assume (sols <> []);
      (* Visit every configuration three times; replays must come from the
         cache/quarantine set, never from fresh measurement sessions. *)
      let replays_consistent = ref true in
      List.iter
        (fun a ->
          let first = Env.Recorder.eval r a in
          let again = Env.Recorder.eval r a in
          if first <> again then replays_consistent := false)
        (sols @ sols);
      let max_attempts = Resilience.default_policy.Resilience.max_retries + 1 in
      !replays_consistent
      && Hashtbl.fold (fun _ n ok -> ok && n <= max_attempts) attempts true)

(* (c) A zero-rate fault spec is byte-for-byte inert: the resilient run
   equals the resilience-free run in trace, incumbent and invalid count. *)
let faults_off_inert ~count =
  QCheck.Test.make ~name:"fault: zero-rate fault spec is byte-identical to faults off" ~count
    seed_pair (fun (seed, fseed) ->
      let spec = { Faults.zero with seed = fseed } in
      let resilience =
        Env.Recorder.make_resilience
          (Heron.Pipeline.make_attempt_measure Search_props.hash_measure spec)
      in
      let plain = run_cga seed in
      let shielded = run_cga ~resilience seed in
      same_result plain.Cga.result shielded.Cga.result)

(* (d) Crash-safe resume: killing the loop at any iteration boundary and
   resuming from that snapshot reproduces the uninterrupted run. *)
let resume_equals_uninterrupted ~count =
  QCheck.Test.make ~name:"fault: resume from any snapshot equals the uninterrupted run" ~count
    seed_pair (fun (seed, k) ->
      let fseed = seed + k in
      let make_resilience () =
        Env.Recorder.make_resilience
          (Heron.Pipeline.make_attempt_measure Search_props.hash_measure (hostile_spec fseed))
      in
      let snapshots = ref [] in
      let full =
        run_cga ~resilience:(make_resilience ())
          ~on_snapshot:(fun s -> snapshots := s :: !snapshots)
          seed
      in
      let snaps = List.rev !snapshots in
      QCheck.assume (snaps <> []);
      let resume = List.nth snaps (k mod List.length snaps) in
      let resumed = run_cga ~resilience:(make_resilience ()) ~resume seed in
      same_result full.Cga.result resumed.Cga.result)

let tests ?(count = 20) () =
  [
    offspring_valid_under_faults ~count;
    quarantine_never_remeasured ~count;
    faults_off_inert ~count:(max 1 (count / 2));
    resume_equals_uninterrupted ~count:(max 1 (count / 2));
  ]
