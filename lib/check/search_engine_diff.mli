(** Differential properties: the interned flat-pool search engine
    ({!Heron_search.Cga} / {!Heron_search.Env.Recorder}) against the
    frozen pre-overhaul loop ({!Heron_search.Cga_ref} /
    {!Heron_search.Env_ref}) — results, checkpoint bytes and RNG
    consumption byte-identical at --jobs 1 and 4, with and without
    faults, across resume splits; plus pool-independence of the
    [search.*] counters. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
