(** Differential properties between the production solver engine
    ({!Heron_csp.Solver}: compiled-template cache, bitset domains,
    trail-based backtracking) and the frozen pre-overhaul reference
    ({!Heron_csp.Solver_ref}).

    Where {!Diff} checks the solver against a brute-force oracle for
    soundness/completeness, these properties pin something stronger: the
    two engines must be observationally *identical* — same solutions in
    the same order for the same seeds (same RNG consumption), same
    search statistics, same propagation fixpoints — across [solve],
    [rand_sat], [solve_all], [enumerate], [propagate_domains] and
    [solve_biased], including the [with_extra] incremental template-reuse
    path and compile-cache hits. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
