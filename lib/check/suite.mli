(** The full property catalogue, grouped, with per-group case counts scaled
    from one overall budget (cases per differential property). *)

val all : budget:int -> (string * QCheck.Test.t list) list
(** Groups: ["diff"] and ["engine"] at [budget] cases, ["dla"] and
    ["model"] at [budget / 8], ["search"], ["fault"] and ["serve"] at
    [budget / 15] (all clamped to at least 1). *)
