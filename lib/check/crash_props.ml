(* Exhaustive crash-point verification of the storage protocols.

   Each scenario below is a write-path protocol (store publish, queue
   checkpoint, CGA checkpoint, nets composite checkpoint, the serve daemon
   end to end). The explorer runs it once under a site-recording
   {!Heron_util.Io_faults} injector to enumerate its N I/O sites — every
   executed write/fsync/rename boundary — then replays it N times with a
   simulated process death at exactly site i, checks the protocol's
   mid-crash invariants (never torn, never version-regressed), runs the
   scenario's recovery with faults off, and requires the recovered final
   state to equal the uninterrupted run's. Not a sampled campaign: every
   enumerated crash point is visited. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Library = Heron.Library
module Json = Heron_obs.Json
module Store = Heron_serving.Store
module Tuning_queue = Heron_serving.Tuning_queue
module Daemon = Heron_serving.Daemon
module Cga = Heron_search.Cga
module Checkpoint = Heron_search.Checkpoint
module Env = Heron_search.Env
module Tuner = Heron_nets.Tuner
module Models = Heron_nets.Models
module Io_faults = Heron_util.Io_faults
module Rng = Heron_util.Rng

let seed_pair = QCheck.pair QCheck.small_int QCheck.small_int
let desc = Heron_dla.Descriptor.v100
let dname = desc.Heron_dla.Descriptor.dname
let dir_counter = ref 0

let fresh_name prefix =
  incr dir_counter;
  Printf.sprintf "_cp_%s_%d" prefix !dir_counter

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ---------- the explorer ---------- *)

type 'ctx scenario = {
  setup : unit -> 'ctx;
  run : 'ctx -> unit;  (* the protocol under test; faults land here *)
  mid_check : 'ctx -> bool;  (* invariants at the crash point, faults off *)
  recover : 'ctx -> unit;  (* application-level redo, faults off *)
  final : 'ctx -> string;  (* canonical end state *)
  teardown : 'ctx -> unit;
}

let with_injector spec f =
  Io_faults.set_default (Some (Io_faults.create spec));
  Fun.protect ~finally:(fun () -> Io_faults.set_default None) f

(* Record once (N sites, expected final state), then crash at every i < N.
   Each replay must actually die at its site — the record run proved the
   site is reached — and recovery must land on the expected state. *)
let explore s =
  let ctx = s.setup () in
  let inj = Io_faults.create { Io_faults.zero with record = true } in
  let n =
    Io_faults.set_default (Some inj);
    Fun.protect
      ~finally:(fun () -> Io_faults.set_default None)
      (fun () ->
        s.run ctx;
        Io_faults.sites_seen inj)
  in
  let expected = s.final ctx in
  s.teardown ctx;
  n > 0
  &&
  let rec sweep i =
    if i >= n then true
    else
      let ctx = s.setup () in
      let ok =
        Fun.protect ~finally:(fun () -> s.teardown ctx) @@ fun () ->
        let crashed =
          with_injector
            { Io_faults.zero with crash_at = Some i }
            (fun () ->
              match s.run ctx with
              | () -> false
              | exception Io_faults.Crashed _ -> true)
        in
        crashed && s.mid_check ctx
        &&
        (s.recover ctx;
         s.final ctx = expected)
      in
      ok && sweep (i + 1)
  in
  sweep 0

(* ---------- shared generators ---------- *)

let dims = [| 8; 16; 24; 32; 48; 64 |]

let random_op rng =
  Op.gemm ~m:(Rng.choice rng dims) ~n:(Rng.choice rng dims) ~k:(Rng.choice rng dims) ()

let random_library rng n =
  let rec go lib i =
    if i = 0 then lib
    else
      let op = random_op rng in
      let latency_us = float_of_int (1 + Rng.int rng 1000) /. 7. in
      let a = Assignment.of_list [ ("tile", 1 + Rng.int rng 16) ] in
      go (Library.add lib desc op ~latency_us a) (i - 1)
  in
  go Library.empty n

(* ---------- (a) store publish ---------- *)

type store_ctx = { sc_dir : string; sc_libs : Library.t list }

(* The store's crash contract: at any boundary the readable state is a
   prefix of the publish history — some already-published library (or the
   empty store), never a torn or half-written one — and redoing the
   publishes that had not completed converges on the uninterrupted
   content. *)
let store_scenario libs =
  let loaded_content dir =
    let store = Store.open_ ~dir in
    match Store.load_latest store with
    | None -> None
    | Some l -> Some (l.Store.recovered, l.Store.warnings, Library.to_string l.Store.library)
  in
  {
    setup = (fun () -> { sc_dir = fresh_name "store"; sc_libs = libs });
    run =
      (fun c ->
        let store = Store.open_ ~dir:c.sc_dir in
        List.iter (fun lib -> ignore (Store.publish store lib)) c.sc_libs);
    mid_check =
      (fun c ->
        match loaded_content c.sc_dir with
        | None -> true (* crash before the first publish completed *)
        | Some (_, warnings, content) ->
            warnings = []
            && List.exists (fun lib -> Library.to_string lib = content) c.sc_libs);
    recover =
      (fun c ->
        (* The caller's redo: republish everything not yet *completely*
           on disk. The loaded state names the last publish whose content
           landed — but a [recovered] load means its manifest never did
           (the death fell between the snapshot/sidecar and the manifest),
           so that publish is re-run too: re-publishing the same content
           is idempotent and completes the protocol. *)
        let store = Store.open_ ~dir:c.sc_dir in
        let done_ =
          match loaded_content c.sc_dir with
          | None -> 0
          | Some (recovered, _, content) ->
              let rec last_match i best = function
                | [] -> best
                | lib :: rest ->
                    last_match (i + 1)
                      (if Library.to_string lib = content then i + 1 else best)
                      rest
              in
              let matched = last_match 0 0 c.sc_libs in
              if recovered then matched - 1 else matched
        in
        List.iteri
          (fun i lib -> if i >= done_ then ignore (Store.publish store lib))
          c.sc_libs);
    final =
      (fun c ->
        match loaded_content c.sc_dir with
        | None -> "<empty>"
        | Some (recovered, warnings, content) ->
            Printf.sprintf "recovered=%b warnings=%d\n%s" recovered (List.length warnings)
              content);
    teardown = (fun c -> rm_rf c.sc_dir);
  }

let store_publish_sweep ~count =
  QCheck.Test.make ~name:"crash: store publish survives death at every I/O site" ~count
    seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 9973) + k) in
      let libs = List.init (1 + (k mod 3)) (fun _ -> random_library rng (1 + Rng.int rng 4)) in
      explore (store_scenario libs))

(* ---------- (b) tuning-queue checkpoint ---------- *)

let families = [| "gemm/f16"; "gemm/f32"; "c2d/f16" |]

let random_task rng =
  {
    Tuning_queue.t_dla = dname;
    t_op_key =
      Printf.sprintf "%s/i:%d,j:%d" (Rng.choice rng families) (Rng.choice rng dims)
        (Rng.choice rng dims);
  }

type queue_ctx = { qc_path : string; qc_stream : Tuning_queue.task list }

let queue_keys q = List.map Tuning_queue.task_key (Tuning_queue.tasks q)

(* The daemon's accept path: enqueue, checkpoint, repeat. A crash leaves
   the checkpoint at some prefix of the accept history; replaying the whole
   miss stream over it is idempotent (dedup), so redo converges. *)
let queue_scenario stream =
  let full_keys =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, seen) t ->
              let key = Tuning_queue.task_key t in
              if List.mem key seen then (acc, seen) else (key :: acc, key :: seen))
            ([], []) stream))
  in
  let prefix_of_full keys =
    let rec go = function
      | [], _ -> true
      | k :: ks, f :: fs -> k = f && go (ks, fs)
      | _ :: _, [] -> false
    in
    go (keys, full_keys)
  in
  {
    setup = (fun () -> { qc_path = fresh_name "queue" ^ ".json"; qc_stream = stream });
    run =
      (fun c ->
        let q = Tuning_queue.create () in
        List.iter
          (fun t ->
            if Tuning_queue.enqueue q t then Tuning_queue.save q ~path:c.qc_path)
          c.qc_stream);
    mid_check =
      (fun c ->
        (not (Sys.file_exists c.qc_path))
        ||
        match Tuning_queue.load ~path:c.qc_path with
        | Error _ -> false (* a torn checkpoint must be impossible *)
        | Ok q -> prefix_of_full (queue_keys q));
    recover =
      (fun c ->
        let q =
          if Sys.file_exists c.qc_path then
            match Tuning_queue.load ~path:c.qc_path with
            | Ok q -> q
            | Error _ -> Tuning_queue.create ()
          else Tuning_queue.create ()
        in
        List.iter (fun t -> ignore (Tuning_queue.enqueue q t)) c.qc_stream;
        Tuning_queue.save q ~path:c.qc_path);
    final =
      (fun c ->
        match Tuning_queue.load ~path:c.qc_path with
        | Ok q -> String.concat "|" (queue_keys q)
        | Error e -> "<error: " ^ e ^ ">");
    teardown = (fun c -> rm_rf c.qc_path);
  }

let queue_checkpoint_sweep ~count =
  QCheck.Test.make ~name:"crash: queue-checkpoint redo is idempotent at every I/O site" ~count
    seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 7433) + k) in
      let stream = List.init (2 + Rng.int rng 5) (fun _ -> random_task rng) in
      explore (queue_scenario stream))

(* ---------- (c) CGA checkpoint save ---------- *)

let synthetic_snapshot rng tag =
  {
    Cga.s_iter = 1 + Rng.int rng 8;
    s_dry = Rng.int rng 3;
    s_stopped = false;
    s_rng_hex = Rng.state_hex (Rng.create (Rng.int rng 10_000));
    s_recorder =
      {
        Env.Recorder.x_steps = Rng.int rng 50;
        x_evals = Rng.int rng 50;
        x_invalid = Rng.int rng 5;
        x_best = Some (float_of_int (1 + Rng.int rng 100) /. 3.);
        x_best_a = Some (Assignment.of_list [ ("tile", 1 + Rng.int rng 8) ]);
        x_trace = [];
        x_cache = [];
        x_quarantined = [];
        x_degraded = [];
      };
    s_survivors = [ (Assignment.of_list [ ("tile", 1 + Rng.int rng 8) ], 0.5) ];
    s_model = [ ([| Rng.int rng 4; Rng.int rng 4 |], float_of_int (Rng.int rng 9) /. 2.) ];
  }
  |> fun s -> (tag, s)

type ckpt_ctx = { cc_path : string }

(* Old-or-new: a checkpoint overwrite killed at any boundary leaves a
   loadable checkpoint equal to exactly one of the two versions. *)
let checkpoint_scenario ~old_ckpt ~new_ckpt =
  let render (label, s) = Json.to_string (Checkpoint.snapshot_to_json ~label s) in
  let save (label, s) path = Checkpoint.save ~path ~label s in
  {
    setup =
      (fun () ->
        let c = { cc_path = fresh_name "ckpt" ^ ".json" } in
        save old_ckpt c.cc_path;
        c);
    run = (fun c -> save new_ckpt c.cc_path);
    mid_check =
      (fun c ->
        match Checkpoint.load ~path:c.cc_path with
        | Error _ -> false
        | Ok got ->
            let r = render got in
            r = render old_ckpt || r = render new_ckpt);
    recover = (fun c -> save new_ckpt c.cc_path);
    final =
      (fun c ->
        match Checkpoint.load ~path:c.cc_path with
        | Ok got -> render got
        | Error e -> "<error: " ^ e ^ ">");
    teardown = (fun c -> rm_rf c.cc_path);
  }

let search_checkpoint_sweep ~count =
  QCheck.Test.make ~name:"crash: CGA checkpoint save leaves old or new at every I/O site"
    ~count seed_pair (fun (seed, k) ->
      let rng = Rng.create ((seed * 6121) + k) in
      let old_ckpt = synthetic_snapshot rng "run-old" in
      let new_ckpt = synthetic_snapshot rng "run-new" in
      explore (checkpoint_scenario ~old_ckpt ~new_ckpt))

(* ---------- (d) nets composite checkpoint ---------- *)

type nets_ctx = { nc_path : string; nc_seed : int; mutable nc_result : Tuner.result option }

(* The whole-network tuner checkpoints after every scheduler round; a
   death at any boundary of any of those writes must leave a resumable
   checkpoint whose continuation is byte-identical to the uninterrupted
   run. *)
let nets_scenario seed =
  let budget = 24 and slice = 8 in
  let tune ?resume c =
    c.nc_result <-
      Some
        (Tuner.tune ~budget ~seed:c.nc_seed ~slice ~transfer:false ~checkpoint:c.nc_path
           ?resume desc Models.tiny)
  in
  {
    setup = (fun () -> { nc_path = fresh_name "nets" ^ ".json"; nc_seed = seed; nc_result = None });
    run = (fun c -> tune c);
    mid_check =
      (fun c ->
        (* Old-or-new: whatever checkpoint the death left (if any) is a
           complete JSON document, never a torn one. *)
        (not (Sys.file_exists c.nc_path))
        ||
        match In_channel.with_open_bin c.nc_path In_channel.input_all with
        | exception Sys_error _ -> false
        | body -> Result.is_ok (Json.parse (String.trim body)));
    recover =
      (fun c ->
        if Sys.file_exists c.nc_path then tune ~resume:c.nc_path c else tune c);
    final =
      (fun c ->
        match c.nc_result with
        | None -> "<no result>"
        | Some r ->
            (* [r_measurements] counts this process's live measure calls,
               so a resumed run legitimately reports fewer; the tuned
               artifacts are what must be byte-identical. *)
            Printf.sprintf "latency=%s\n%s"
              (match r.Tuner.r_latency_us with
              | Some l -> Printf.sprintf "%.6f" l
              | None -> "none")
              (Library.to_string r.Tuner.r_library));
    teardown = (fun c -> rm_rf c.nc_path);
  }

let nets_checkpoint_sweep ~count =
  QCheck.Test.make ~name:"crash: nets composite checkpoint resumes at every I/O site" ~count
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
    (fun seed -> explore (nets_scenario seed))

(* ---------- (e) serve daemon end to end ---------- *)

type serve_ctx = { dc_dir : string; dc_config : Daemon.config; dc_universe : Op.t list }

(* The whole daemon protocol under the explorer: accept misses (durable
   queue), tune, publish, checkpoint. After a death anywhere, a fresh
   daemon on the same directory plus a client retry of the same misses
   must drain to a library byte-identical to the uninterrupted run's —
   the determinism contract of daemon.mli, now checked at every
   individual syscall boundary rather than one hand-picked window. *)
let serve_scenario seed =
  let rng = Rng.create ((seed * 31) + 7) in
  let universe = List.init 2 (fun _ -> random_op rng) in
  let mk_config dir =
    {
      (Daemon.default_config ~dir ~resolve:(Daemon.universe_resolve universe) desc) with
      Daemon.budget = 4;
      seed = 11 + seed;
      family_max = 2;
    }
  in
  let serve_all config =
    let d = Daemon.start config in
    List.iter (fun op -> ignore (Daemon.lookup_op d op)) universe;
    ignore (Daemon.drain d)
  in
  {
    setup =
      (fun () ->
        let dir = fresh_name "daemon" in
        { dc_dir = dir; dc_config = mk_config dir; dc_universe = universe });
    run = (fun c -> serve_all c.dc_config);
    mid_check =
      (fun c ->
        (* Restart must always be clean: whatever the death left behind
           loads without a single skipped line. *)
        let d = Daemon.start c.dc_config in
        Daemon.load_warnings d = [] && not (Daemon.read_only d));
    recover = (fun c -> serve_all c.dc_config);
    final =
      (fun c ->
        let d = Daemon.start c.dc_config in
        Library.to_string (Daemon.library d));
    teardown = (fun c -> rm_rf c.dc_dir);
  }

let serve_daemon_sweep ~count =
  QCheck.Test.make ~name:"crash: serve daemon drains identically after death at every I/O site"
    ~count
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
    (fun seed -> explore (serve_scenario seed))

let tests ?(count = 20) () =
  [
    store_publish_sweep ~count:(max 1 (count / 2));
    queue_checkpoint_sweep ~count;
    search_checkpoint_sweep ~count;
    nets_checkpoint_sweep ~count:(max 1 (count / 10));
    serve_daemon_sweep ~count:(max 1 (count / 10));
  ]
