(* Differential properties of the interned flat-pool search engine:
   {!Heron_search.Cga} (live) against {!Heron_search.Cga_ref} /
   {!Heron_search.Env_ref} (the frozen pre-overhaul string-keyed loop).
   Both engines must agree byte for byte — results, traces, every
   per-iteration checkpoint rendered through {!Heron_search.Checkpoint},
   and draw-for-draw RNG consumption — at --jobs 1 and 4, with and
   without injected faults, and across resume-mid-run splits. Snapshots
   are compared as serialized checkpoint bytes, so interned ids can
   never leak into the on-disk format unnoticed. *)

module Assignment = Heron_csp.Assignment
module Cga = Heron_search.Cga
module Cga_ref = Heron_search.Cga_ref
module Env = Heron_search.Env
module Env_ref = Heron_search.Env_ref
module Checkpoint = Heron_search.Checkpoint
module Faults = Heron_dla.Faults
module Rng = Heron_util.Rng
module Pool = Heron_util.Pool
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)
let seed_pair = QCheck.pair seed_arb QCheck.small_int

let make_env seed =
  Env.
    {
      problem = Search_props.toy_problem ();
      measure = Search_props.hash_measure;
      rng = Rng.create seed;
    }

let budget = 12

let run_live ?pool ?resilience ?resume ?on_snapshot seed =
  let env = make_env seed in
  let o =
    Cga.run ~params:Search_props.small_params ?pool ?resilience ?resume ?on_snapshot env
      ~budget
  in
  (o, Rng.state_hex env.Env.rng)

let run_ref ?pool ?resilience ?resume ?on_snapshot seed =
  let env = make_env seed in
  let o =
    Cga_ref.run ~params:Search_props.small_params ?pool ?resilience ?resume ?on_snapshot env
      ~budget
  in
  (o, Rng.state_hex env.Env.rng)

let checkpoint_bytes s = Json.to_string (Checkpoint.snapshot_to_json ~label:"diff" s)

let same_result (a : Env.result) (b : Env.result) =
  a.Env.trace = b.Env.trace
  && a.Env.best_latency = b.Env.best_latency
  && a.Env.invalid = b.Env.invalid
  && Option.map Assignment.key a.Env.best_assignment
     = Option.map Assignment.key b.Env.best_assignment

let same_snapshots sa sb =
  List.length sa = List.length sb
  && List.for_all2 (fun a b -> String.equal (checkpoint_bytes a) (checkpoint_bytes b)) sa sb

let collect () =
  let acc = ref [] in
  ((fun s -> acc := s :: !acc), fun () -> List.rev !acc)

(* The hostile fault universe of {!Fault_props}, applied identically to
   both engines (each gets its own resilience value of its own type, built
   from the same deterministic attempt closure). *)
let fault_spec fseed =
  {
    Faults.seed = fseed;
    timeout_rate = 0.1 +. (0.05 *. float_of_int (fseed mod 4));
    crash_rate = 0.1;
    hang_rate = 0.05;
    noise = 0.2;
    persistent = 0.15;
  }

let attempt_measure fseed =
  Heron.Pipeline.make_attempt_measure Search_props.hash_measure (fault_spec fseed)

(* (a) Fault-free runs are byte-identical: result, every checkpoint, and
   total RNG consumption (the post-run generator state equality makes the
   draw-for-draw claim: one extra or missing draw anywhere desyncs it). *)
let run_identical ~count =
  QCheck.Test.make ~name:"search_engine: run byte-identical to frozen engine" ~count
    seed_arb (fun seed ->
      let push_a, snaps_a = collect () and push_b, snaps_b = collect () in
      let a, rng_a = run_live ~on_snapshot:push_a seed in
      let b, rng_b = run_ref ~on_snapshot:push_b seed in
      same_result a.Cga.result b.Cga.result
      && String.equal rng_a rng_b
      && same_snapshots (snaps_a ()) (snaps_b ()))

(* (b) Same with the live engine on a 4-domain pool against the frozen
   engine with no pool at all: identity and jobs-independence at once. *)
let run_identical_jobs4 ~count =
  QCheck.Test.make ~name:"search_engine: jobs-4 run byte-identical to jobs-1 frozen engine"
    ~count seed_arb (fun seed ->
      let push_a, snaps_a = collect () and push_b, snaps_b = collect () in
      let a, rng_a =
        Pool.with_pool ~domains:4 (fun pool -> run_live ~pool ~on_snapshot:push_a seed)
      in
      let b, rng_b = run_ref ~on_snapshot:push_b seed in
      same_result a.Cga.result b.Cga.result
      && String.equal rng_a rng_b
      && same_snapshots (snaps_a ()) (snaps_b ()))

(* (c) Under injected faults (retries, quarantine, degraded commits), the
   engines still agree byte for byte — the fault paths are id-keyed in the
   live recorder and string-keyed in the frozen one. *)
let faults_identical ~count =
  QCheck.Test.make ~name:"search_engine: faulty run byte-identical to frozen engine" ~count
    seed_pair (fun (seed, fseed) ->
      let push_a, snaps_a = collect () and push_b, snaps_b = collect () in
      let ra = Env.Recorder.make_resilience (attempt_measure fseed) in
      let rb = Env_ref.Recorder.make_resilience (attempt_measure fseed) in
      let a, rng_a = run_live ~resilience:ra ~on_snapshot:push_a seed in
      let b, rng_b = run_ref ~resilience:rb ~on_snapshot:push_b seed in
      same_result a.Cga.result b.Cga.result
      && String.equal rng_a rng_b
      && same_snapshots (snaps_a ()) (snaps_b ()))

(* (d) Resume-mid-run: both engines resumed from the same mid-run
   checkpoint agree with each other AND with the uninterrupted run's
   remaining checkpoints. The post-resume snapshots byte-match the
   uninterrupted ones, so nothing about the resumed representation —
   in particular no interned id — leaks into the checkpoint format. *)
let resume_identical ~count =
  QCheck.Test.make
    ~name:"search_engine: resume-mid-run byte-identical, checkpoints stay pure" ~count
    seed_pair (fun (seed, k) ->
      let push_full, snaps_full = collect () in
      let full, _ = run_live ~on_snapshot:push_full seed in
      let snaps = snaps_full () in
      QCheck.assume (snaps <> []);
      let cut = k mod List.length snaps in
      let resume = List.nth snaps cut in
      let push_a, snaps_a = collect () and push_b, snaps_b = collect () in
      let a, rng_a = run_live ~resume ~on_snapshot:push_a seed in
      let b, rng_b = run_ref ~resume ~on_snapshot:push_b seed in
      let tail = List.filteri (fun i _ -> i > cut) snaps in
      same_result a.Cga.result b.Cga.result
      && String.equal rng_a rng_b
      && same_snapshots (snaps_a ()) (snaps_b ())
      && same_snapshots (snaps_a ()) tail
      && same_result a.Cga.result full.Cga.result)

(* (e) The search.* counters are pool-independent: interning, dedupe and
   ranking all happen on the sequential control path, so a 4-domain run
   advances them exactly as a pool-less one. *)
let counters_jobs_independent ~count =
  let watched =
    [ "search.interned"; "search.intern_hits"; "search.dedupe_hits"; "search.rank_rows" ]
  in
  let deltas f =
    let before = Obs.Counter.snapshot () in
    f ();
    let after = Obs.Counter.snapshot () in
    let get l n = Option.value ~default:0 (List.assoc_opt n l) in
    List.map (fun n -> (n, get after n - get before n)) watched
  in
  QCheck.Test.make ~name:"search_engine: search.* counters independent of pool size" ~count
    seed_arb (fun seed ->
      let d1 = deltas (fun () -> ignore (run_live seed)) in
      let d4 =
        deltas (fun () ->
            Pool.with_pool ~domains:4 (fun pool -> ignore (run_live ~pool seed)))
      in
      d1 = d4 && List.exists (fun (_, d) -> d > 0) d1)

let tests ?(count = 20) () =
  [
    run_identical ~count;
    run_identical_jobs4 ~count:(max 1 (count / 2));
    faults_identical ~count;
    resume_identical ~count:(max 1 (count / 2));
    counters_jobs_independent ~count:(max 1 (count / 3));
  ]
