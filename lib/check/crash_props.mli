(** Exhaustive crash-point verification of the storage protocols: each
    scenario (store publish, tuning-queue checkpoint, CGA checkpoint, nets
    composite checkpoint, serve daemon end to end) runs once under a
    site-recording {!Heron_util.Io_faults} injector to enumerate its N I/O
    sites, then replays with a simulated process death at {e every} site,
    checks mid-crash invariants (never torn, never version-regressed) and
    requires recovery to converge on the uninterrupted run's final state. *)

val tests : ?count:int -> unit -> QCheck.Test.t list
