module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Solver = Heron_csp.Solver
module Solver_ref = Heron_csp.Solver_ref
module Cons = Heron_csp.Cons
module Domain = Heron_csp.Domain
module Rng = Heron_util.Rng

(* Tight budgets on purpose: Give_up and restart paths must also be
   byte-identical between the engines, so we want a healthy fraction of
   searches to exhaust them. *)
let max_fails = 500

let with_seed arb = QCheck.pair arb QCheck.small_int

let keys_in_order l = List.map Assignment.key l
let opt_key = Option.map Assignment.key

let stats_equal (s : Solver.stats) (r : Solver_ref.stats) =
  s.Solver.nodes = r.Solver_ref.nodes
  && s.Solver.fails = r.Solver_ref.fails
  && s.Solver.restarts = r.Solver_ref.restarts

(* Random [In] extras over the problem's own variables — the shape CGA
   crossover layers on the base CSP. Value subsets may be empty (an
   unsatisfiable extension) or the full domain (a no-op one); both sides
   must agree on those edges too. *)
let random_in_extras rng p =
  let vars = Problem.vars p in
  let k = Rng.int rng (Array.length vars + 1) in
  List.init k (fun _ ->
      let v = vars.(Rng.int rng (Array.length vars)) in
      let dom = Domain.to_list (Problem.domain p v) in
      Cons.In (v, List.filter (fun _ -> Rng.int rng 3 > 0) dom))

let solve_identical arb ~count =
  QCheck.Test.make ~name:"engine: solve byte-identical to reference" ~count (with_seed arb)
    (fun (sp, seed) ->
      let p = Csp_gen.to_problem sp in
      let st = Solver.fresh_stats () and str = Solver_ref.fresh_stats () in
      let a = Solver.solve ~max_fails ~max_restarts:2 ~stats:st (Rng.create seed) p in
      let b = Solver_ref.solve ~max_fails ~max_restarts:2 ~stats:str (Rng.create seed) p in
      opt_key a = opt_key b && stats_equal st str)

let solve_bounds_only_identical arb ~count =
  QCheck.Test.make ~name:"engine: bounds-only solve byte-identical to reference" ~count
    (with_seed arb) (fun (sp, seed) ->
      let p = Csp_gen.to_problem sp in
      let a = Solver.solve ~exact_limit:0 ~max_fails ~max_restarts:2 (Rng.create seed) p in
      let b = Solver_ref.solve ~exact_limit:0 ~max_fails ~max_restarts:2 (Rng.create seed) p in
      opt_key a = opt_key b)

let rand_sat_identical arb ~count =
  QCheck.Test.make ~name:"engine: rand_sat byte-identical to reference" ~count
    (with_seed arb) (fun (sp, seed) ->
      let p = Csp_gen.to_problem sp in
      let a = Solver.rand_sat ~max_fails (Rng.create seed) p 4 in
      let b = Solver_ref.rand_sat ~max_fails (Rng.create seed) p 4 in
      keys_in_order a = keys_in_order b)

let enumerate_identical arb ~count =
  QCheck.Test.make ~name:"engine: enumerate byte-identical (incl. order) to reference"
    ~count arb (fun sp ->
      let p = Csp_gen.to_problem sp in
      QCheck.assume (Oracle.space_size p <= 10_000);
      keys_in_order (Solver.enumerate ~limit:20_000 p)
      = keys_in_order (Solver_ref.enumerate ~limit:20_000 p))

let propagate_domains_identical arb ~count =
  QCheck.Test.make ~name:"engine: propagate_domains identical to reference" ~count arb
    (fun sp ->
      let p = Csp_gen.to_problem sp in
      let norm = Option.map (List.map (fun (v, d) -> (v, Domain.to_list d))) in
      norm (Solver.propagate_domains p) = norm (Solver_ref.propagate_domains p))

let solve_biased_identical arb ~count =
  QCheck.Test.make ~name:"engine: solve_biased byte-identical to reference" ~count
    (with_seed arb) (fun (sp, seed) ->
      let p = Csp_gen.to_problem sp in
      let rngb = Rng.create (seed + 7) in
      let bias =
        Assignment.of_list
          (Array.to_list
             (Array.map
                (fun v -> (v, Domain.random rngb (Problem.domain p v)))
                (Problem.vars p)))
      in
      opt_key (Solver.solve_biased ~max_fails (Rng.create seed) p bias)
      = opt_key (Solver_ref.solve_biased ~max_fails (Rng.create seed) p bias))

(* The compiled-template fast path: offspring built with [with_extra]
   (including nested extension) reuse the cached base template and layer
   only the [In] filters on its propagated root. Results must match a
   reference full compile of each offspring, and a repeat run — now a
   guaranteed compile-cache hit — must reproduce itself. *)
let incremental_identical arb ~count =
  QCheck.Test.make ~name:"engine: with_extra template reuse byte-identical to reference"
    ~count (with_seed arb) (fun (sp, seed) ->
      let p = Csp_gen.to_problem sp in
      let rng = Rng.create (seed + 1) in
      let offspring =
        Problem.with_extra
          (Problem.with_extra p (random_in_extras rng p))
          (random_in_extras rng p)
        :: List.init 3 (fun _ -> Problem.with_extra p (random_in_extras rng p))
      in
      let a = Solver.solve_all ~max_fails ~max_restarts:1 (Rng.create seed) offspring in
      let b = Solver_ref.solve_all ~max_fails ~max_restarts:1 (Rng.create seed) offspring in
      List.map opt_key a = List.map opt_key b
      &&
      let o = List.hd offspring in
      let r1 = Solver.rand_sat ~max_fails (Rng.create seed) o 3 in
      let r2 = Solver.rand_sat ~max_fails (Rng.create seed) o 3 in
      let rr = Solver_ref.rand_sat ~max_fails (Rng.create seed) o 3 in
      keys_in_order r1 = keys_in_order rr
      && keys_in_order r2 = keys_in_order rr
      &&
      let norm = Option.map (List.map (fun (v, d) -> (v, Domain.to_list d))) in
      norm (Solver.propagate_domains o) = norm (Solver_ref.propagate_domains o))

let tests ?(count = 300) () =
  let arb = Csp_gen.arbitrary () in
  [
    solve_identical arb ~count;
    solve_bounds_only_identical arb ~count;
    rand_sat_identical arb ~count;
    enumerate_identical arb ~count;
    propagate_domains_identical arb ~count;
    solve_biased_identical arb ~count;
    incremental_identical arb ~count;
  ]
