module Op = Heron_tensor.Op
module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Solver = Heron_csp.Solver
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Perf_model = Heron_dla.Perf_model
module Fmat = Heron_cost.Fmat
module Features = Heron_cost.Features
module Gbt = Heron_cost.Gbt
module Gbt_ref = Heron_cost.Gbt_ref
module Model = Heron_cost.Model
module Generator = Heron.Generator
module Pipeline = Heron.Pipeline
module Rng = Heron_util.Rng

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

(* Random pre-binned regression dataset: the raw material both boosting
   engines train on. *)
let random_dataset rng =
  let nf = 1 + Rng.int rng 5 in
  let bins = Array.init nf (fun _ -> 2 + Rng.int rng 14) in
  let n = 8 + Rng.int rng 112 in
  let xs = Array.init n (fun _ -> Array.init nf (fun j -> Rng.int rng bins.(j))) in
  let w = Array.init nf (fun _ -> Rng.float rng -. 0.5) in
  let ys =
    Array.map
      (fun x ->
        let acc = ref (Rng.float rng *. 0.1) in
        Array.iteri (fun j v -> acc := !acc +. (w.(j) *. float_of_int v)) x;
        !acc)
      xs
  in
  (bins, xs, ys)

(* The flat SoA engine against the frozen pre-overhaul ensemble: canonical
   dumps (every split, threshold, leaf and gain, floats rendered with %h),
   predictions on the training rows and per-feature importances must all
   be exactly equal. *)
let gbt_matches_reference ~count =
  QCheck.Test.make ~name:"model: flat Gbt fit/predict byte-identical to Gbt_ref" ~count
    seed_arb (fun seed ->
      let rng = Rng.create ((seed * 17) + 1) in
      let bins, xs, ys = random_dataset rng in
      let gbt = Gbt.fit ~n_bins:bins (Fmat.of_rows xs) ys in
      let ref_gbt = Gbt_ref.fit ~n_bins:bins xs ys in
      Gbt.dump gbt = Gbt_ref.dump ref_gbt
      && Array.for_all (fun x -> Gbt.predict gbt x = Gbt_ref.predict ref_gbt x) xs
      && Gbt.feature_gains gbt = Gbt_ref.feature_gains ref_gbt)

(* A small random CSP to drive the Model API end to end. *)
let random_problem rng =
  let b = Problem.builder () in
  let nv = 2 + Rng.int rng 3 in
  for i = 0 to nv - 1 do
    let dom = List.init (2 + Rng.int rng 6) (fun j -> j + Rng.int rng 3) in
    Problem.add_var b (Printf.sprintf "v%d" i) (Domain.of_list dom)
  done;
  Problem.freeze b

let random_assignment rng problem =
  Assignment.of_list
    (Array.to_list (Problem.vars problem)
    |> List.map (fun v -> (v, Rng.choice_list rng (Domain.to_list (Problem.domain problem v)))))

(* The ring window must reproduce list-window semantics exactly: after any
   record stream, [samples] is the most recent [window] observations, most
   recent first, with the bins [Features.binned] would produce. *)
let ring_window_semantics ~count =
  QCheck.Test.make ~name:"model: ring training window equals list-window semantics" ~count
    seed_arb (fun seed ->
      let rng = Rng.create ((seed * 17) + 2) in
      let problem = random_problem rng in
      let window = 1 + Rng.int rng 12 in
      let m = Model.create ~window problem in
      let f = Features.of_problem problem in
      let expected = ref [] in
      let n_records = Rng.int rng 40 in
      for i = 0 to n_records - 1 do
        let a = random_assignment rng problem in
        let y = float_of_int i in
        Model.record m a y;
        expected := List.filteri (fun k _ -> k < window - 1) !expected;
        expected := (Features.binned f a, y) :: !expected
      done;
      Model.samples m = !expected)

(* Batch prediction against the scalar path, trained and untrained. *)
let predict_batch_matches_scalar ~count =
  QCheck.Test.make ~name:"model: predict_batch equals scalar predict" ~count seed_arb
    (fun seed ->
      let rng = Rng.create ((seed * 17) + 3) in
      let problem = random_problem rng in
      let m = Model.create problem in
      let batch = List.init (1 + Rng.int rng 24) (fun _ -> random_assignment rng problem) in
      let untrained_ok =
        List.for_all (fun p -> p = 0.0) (Model.predict_batch m batch)
      in
      for i = 0 to 19 do
        Model.record m (random_assignment rng problem) (float_of_int (i mod 7))
      done;
      Model.refit m;
      untrained_ok
      && Model.trained m
      && Model.predict_batch m batch = List.map (Model.predict m) batch)

(* Shared DLA spaces (same construction as {!Dla_props}). *)
let spaces =
  lazy
    (List.map
       (fun (desc, op) -> (desc, Generator.generate ~seed:7 desc op))
       [
         (Descriptor.v100, Op.gemm ~dt:F16 ~m:256 ~n:256 ~k:256 ());
         (Descriptor.dlboost, Op.gemm ~dt:I8 ~m:128 ~n:128 ~k:128 ());
         (Descriptor.vta, Op.gemm ~dt:I8 ~m:64 ~n:256 ~k:256 ());
       ])

let draw_programs (gen : Generator.t) rng n =
  Solver.rand_sat rng gen.problem n
  |> List.map (fun a -> (a, Concrete.instantiate gen.template a))

(* The hoisted evaluation context against the scalar model: full breakdowns
   (a float-record comparison, so every component is exact) and the pooled
   batch entry point must agree with per-program analysis. *)
let perf_ctx_matches_scalar ~count =
  QCheck.Test.make ~name:"model: Perf_model ctx/batch evaluation equals scalar analyze"
    ~count seed_arb (fun seed ->
      List.for_all
        (fun (i, (desc, (gen : Generator.t))) ->
          let rng = Rng.create ((seed * 31) + i) in
          let progs = draw_programs gen rng 4 in
          let ctx = Perf_model.make_ctx desc gen.template.Heron_sched.Template.op in
          List.for_all
            (fun (_, prog) -> Perf_model.analyze_ctx ctx prog = Perf_model.analyze desc prog)
            progs
          &&
          let arr = Array.of_list (List.map snd progs) in
          Perf_model.latency_batch ctx arr
          = Array.map (fun p -> Perf_model.latency_us desc p) arr)
        (List.mapi (fun i s -> (i, s)) (Lazy.force spaces)))

(* The pipeline's batched measurement provider against its scalar closure:
   same outcome per assignment (including instantiation failures) and the
   same measurer invocation count. *)
let measure_batch_matches_scalar ~count =
  QCheck.Test.make ~name:"model: batched measurement equals scalar measurement" ~count
    seed_arb (fun seed ->
      List.for_all
        (fun (i, (desc, (gen : Generator.t))) ->
          let rng = Rng.create ((seed * 37) + i) in
          let batch = Array.of_list (List.map fst (draw_programs gen rng 6)) in
          let s = Pipeline.make_measure_set desc gen in
          let batched = s.Pipeline.measure_batch batch in
          let scalar = Array.map s.Pipeline.measure batch in
          batched = scalar && s.Pipeline.measured () = 2 * Array.length batch)
        (List.mapi (fun i s -> (i, s)) (Lazy.force spaces)))

let tests ?(count = 40) () =
  [
    gbt_matches_reference ~count;
    ring_window_semantics ~count;
    predict_batch_matches_scalar ~count;
    perf_ctx_matches_scalar ~count;
    measure_batch_matches_scalar ~count;
  ]
