(** The generated library: a persistent collection of tuned schedules, one
    per (operator shape, DLA) — what a downstream user links against
    instead of re-tuning.

    Entries are stored in a line-oriented text format
    ([op_key|dla|latency_us|var=value,...]) so libraries can be versioned
    and diffed. Looking an entry up re-generates the schedule template for
    the operator (deterministic) and instantiates it with the stored
    assignment. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor

type entry = {
  op_key : string;
  dla : string;
  latency_us : float;
  assignment : Assignment.t;
}

type t

val empty : t
val size : t -> int
val entries : t -> entry list

val op_key : Op.t -> string
(** Canonical shape+dtype key, e.g. ["gemm/f16/i:1024,j:1024,r:1024"]. *)

val add : t -> Descriptor.t -> Op.t -> latency_us:float -> Assignment.t -> t
(** Inserts (or replaces, if faster) the schedule for this operator/DLA. *)

val lookup : t -> Descriptor.t -> Op.t -> entry option

val program_of : entry -> Descriptor.t -> Op.t -> Concrete.t
(** Re-materializes the stored schedule as a concrete program.
    @raise Invalid_argument if the entry does not match the operator. *)

val build :
  ?budget:int -> ?seed:int -> Descriptor.t -> Op.t list -> t
(** Tunes every operator and collects the winners — the paper's "library
    generation" end product. Operators that admit no valid program are
    skipped. *)

val save : t -> string -> unit
(** Writes through {!Heron_util.Atomic_io} (tmp + rename): a save killed
    at any instant leaves the previous file intact, never a torn one. *)

val load : string -> t
(** Strict load. @raise Failure on unreadable files or the first malformed
    line. Long-running consumers (the serve daemon) use {!load_result}. *)

type load_warning = { lw_line : int; lw_text : string; lw_reason : string }
(** One skipped line: its 1-based line number, raw text and the reason. *)

val warning_to_string : load_warning -> string

val load_result : string -> (t * load_warning list, string) result
(** Lenient load: malformed lines are skipped and reported as warnings
    instead of killing the caller; [Error] only when the file itself cannot
    be read. Duplicated keys keep the lower-latency entry, whatever the
    line order (the same best-wins policy as {!add}). *)

val of_string_lenient : string -> t * load_warning list
(** {!load_result} on an in-memory body; never fails. *)

val to_string : t -> string
