module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor

type entry = {
  op_key : string;
  dla : string;
  latency_us : float;
  assignment : Assignment.t;
}

module M = Map.Make (String)

type t = entry M.t

let empty = M.empty
let size = M.cardinal
let entries t = List.map snd (M.bindings t)

let op_key (op : Op.t) =
  Printf.sprintf "%s/%s/%s" op.Op.cname
    (Op.dtype_to_string (match op.Op.inputs with t :: _ -> t.Op.dt | [] -> op.Op.out.Op.dt))
    (String.concat ","
       (List.map
          (fun (it : Op.iter) -> Printf.sprintf "%s:%d" it.Op.iname it.Op.extent)
          op.Op.iters))

let full_key desc op = op_key op ^ "@" ^ desc.Descriptor.dname

let add t desc op ~latency_us assignment =
  let key = full_key desc op in
  let entry = { op_key = op_key op; dla = desc.Descriptor.dname; latency_us; assignment } in
  match M.find_opt key t with
  | Some old when old.latency_us <= latency_us -> t
  | _ -> M.add key entry t

let lookup t desc op = M.find_opt (full_key desc op) t

let program_of entry desc op =
  if entry.op_key <> op_key op then
    invalid_arg
      (Printf.sprintf "Library.program_of: entry is for %s, not %s" entry.op_key (op_key op));
  let gen = Generator.generate desc op in
  Concrete.instantiate gen.Generator.template entry.assignment

let build ?(budget = 200) ?(seed = 42) desc ops =
  List.fold_left
    (fun lib op ->
      let tuned = Pipeline.tune ~budget ~seed desc op in
      match
        ( Pipeline.best_latency_us tuned,
          tuned.Pipeline.outcome.Heron_search.Cga.result.Heron_search.Env.best_assignment )
      with
      | Some latency_us, Some a -> add lib desc op ~latency_us a
      | _ -> lib)
    empty ops

let entry_to_line e =
  Printf.sprintf "%s|%s|%.6f|%s" e.op_key e.dla e.latency_us
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Assignment.bindings e.assignment)))

let entry_of_line_result line =
  match String.split_on_char '|' line with
  | [ op_key; dla; lat; bindings ] -> (
      let binding_of kv =
        match String.index_opt kv '=' with
        | Some i -> (
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt v with
            | Some x -> Ok (String.sub kv 0 i, x)
            | None -> Error (Printf.sprintf "binding %s: %S is not an integer" kv v))
        | None -> Error (Printf.sprintf "malformed binding %s" kv)
      in
      let rec bindings_of acc = function
        | [] -> Ok (List.rev acc)
        | kv :: rest -> (
            match binding_of kv with
            | Ok b -> bindings_of (b :: acc) rest
            | Error _ as e -> e)
      in
      let bound =
        if bindings = "" then Ok []
        else bindings_of [] (String.split_on_char ',' bindings)
      in
      match (float_of_string_opt lat, bound) with
      | None, _ -> Error (Printf.sprintf "latency %S is not a number" lat)
      | _, Error e -> Error e
      | Some latency_us, Ok bs ->
          if op_key = "" then Error "empty op key"
          else if dla = "" then Error "empty DLA name"
          else Ok { op_key; dla; latency_us; assignment = Assignment.of_list bs })
  | _ -> Error "expected op_key|dla|latency|bindings"

type load_warning = { lw_line : int; lw_text : string; lw_reason : string }

let warning_to_string w =
  Printf.sprintf "line %d: %s (%s)" w.lw_line w.lw_reason w.lw_text

(* Insert with the same best-wins policy as [add]: a duplicated key keeps
   the entry with the lower latency, whatever the line order. *)
let add_entry t e =
  let key = e.op_key ^ "@" ^ e.dla in
  match M.find_opt key t with
  | Some old when old.latency_us <= e.latency_us -> t
  | _ -> M.add key e t

let of_string_lenient body =
  let lines = String.split_on_char '\n' body in
  let _, t, warnings =
    List.fold_left
      (fun (line_no, t, warnings) line ->
        if String.trim line = "" then (line_no + 1, t, warnings)
        else
          match entry_of_line_result line with
          | Ok e -> (line_no + 1, add_entry t e, warnings)
          | Error reason ->
              ( line_no + 1,
                t,
                { lw_line = line_no; lw_text = line; lw_reason = reason } :: warnings ))
      (1, empty, []) lines
  in
  (t, List.rev warnings)

let to_string t =
  entries t |> List.map entry_to_line |> String.concat "\n"
  |> fun body -> if body = "" then body else body ^ "\n"

(* Through the atomic protocol (tmp + rename): a library save interrupted
   at any instant leaves the previous file (or nothing), never a torn one
   a later [load] would half-parse. *)
let save t path = Heron_util.Atomic_io.write_string ~path (to_string t)

let load_result path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "Library.load: cannot read %s: %s" path e)
  | body -> Ok (of_string_lenient body)

let load path =
  match load_result path with
  | Error e -> failwith e
  | Ok (t, []) -> t
  | Ok (_, w :: _) -> failwith (Printf.sprintf "Library.load: %s: %s" path (warning_to_string w))
