module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Measure = Heron_dla.Measure
module Perf_model = Heron_dla.Perf_model
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Rng = Heron_util.Rng

type tuned = {
  gen : Generator.t;
  outcome : Cga.outcome;
  desc : Descriptor.t;
  op : Op.t;
  measurements : int;
}

let make_measure ?reps desc (gen : Generator.t) =
  let measurer = Measure.create ?reps desc in
  let measure a =
    match Concrete.instantiate gen.Generator.template a with
    | exception Invalid_argument _ -> None
    | prog -> ( match Measure.run measurer prog with Ok l -> Some l | Error _ -> None)
  in
  (measure, fun () -> Measure.count measurer)

let make_env ?reps ?(seed = 42) desc gen =
  let measure, _count = make_measure ?reps desc gen in
  { Env.problem = gen.Generator.problem; measure; rng = Rng.create seed }

let tune ?(budget = 200) ?(seed = 42) ?reps ?params ?pool desc op =
  let gen = Generator.generate ~seed desc op in
  let measure, count = make_measure ?reps desc gen in
  let env = { Env.problem = gen.Generator.problem; measure; rng = Rng.create seed } in
  let outcome = Cga.run ?params ?pool env ~budget in
  { gen; outcome; desc; op; measurements = count () }

let best_latency_us t = t.outcome.Cga.result.Env.best_latency

let best_tflops t =
  match best_latency_us t with
  | None -> None
  | Some l -> Some (Perf_model.achieved_tflops t.op l)

let best_program t =
  match t.outcome.Cga.result.Env.best_assignment with
  | None -> None
  | Some a -> Some (Concrete.instantiate t.gen.Generator.template a)
