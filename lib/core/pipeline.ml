module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Measure = Heron_dla.Measure
module Perf_model = Heron_dla.Perf_model
module Faults = Heron_dla.Faults
module Env = Heron_search.Env
module Cga = Heron_search.Cga
module Resilience = Heron_search.Resilience
module Checkpoint = Heron_search.Checkpoint
module Rng = Heron_util.Rng

type tuned = {
  gen : Generator.t;
  outcome : Cga.outcome;
  desc : Descriptor.t;
  op : Op.t;
  measurements : int;
}

type measure_set = {
  measure : Assignment.t -> float option;
  measure_batch : ?pool:Heron_util.Pool.t -> Assignment.t array -> float option array;
  measured : unit -> int;
}

let make_measure_set ?reps desc (gen : Generator.t) =
  (* One measurer for both entry points, with the per-operator perf-model
     context built once up front. *)
  let measurer = Measure.create ?reps ~op:gen.Generator.template.Heron_sched.Template.op desc in
  let instantiate a =
    match Concrete.instantiate gen.Generator.template a with
    | exception Invalid_argument _ -> None
    | prog -> Some prog
  in
  let measure a =
    match instantiate a with
    | None -> None
    | Some prog -> ( match Measure.run measurer prog with Ok l -> Some l | Error _ -> None)
  in
  let measure_batch ?pool assignments =
    (* Instantiate sequentially (cheap and deterministic), then push every
       instantiable program through one pooled measurer dispatch. Same
       values, counters and measurement count as scalar [measure] calls. *)
    let progs = Array.map instantiate assignments in
    let dense =
      Array.of_list (List.filter_map (fun p -> p) (Array.to_list progs))
    in
    let results = Measure.run_batch ?pool measurer dense in
    let out = Array.make (Array.length assignments) None in
    let j = ref 0 in
    Array.iteri
      (fun i p ->
        match p with
        | None -> ()
        | Some _ ->
            (out.(i) <- (match results.(!j) with Ok l -> Some l | Error _ -> None));
            incr j)
      progs;
    out
  in
  { measure; measure_batch; measured = (fun () -> Measure.count measurer) }

let make_measure ?reps desc gen =
  let s = make_measure_set ?reps desc gen in
  (s.measure, s.measured)

let make_env ?reps ?(seed = 42) desc gen =
  let measure, _count = make_measure ?reps desc gen in
  { Env.problem = gen.Generator.problem; measure; rng = Rng.create seed }

(* One resilient measurement attempt: ask the fault injector what happens
   to this (config, attempt), then either report the fault or run the real
   measurer and scale its latency by the (possibly 1.0) noise factor. A
   persistently-failing config crashes on every attempt, so it exhausts
   its retries and lands in quarantine. *)
let make_attempt_measure measure spec a ~attempt =
  let key = Assignment.key a in
  match Faults.decide spec ~key ~attempt with
  | Faults.Timeout -> Resilience.Fault Resilience.Timeout
  | Faults.Crash | Faults.Persistent -> Resilience.Fault Resilience.Crash
  | Faults.Hang -> Resilience.Fault Resilience.Hang
  | Faults.Noise factor -> (
      match measure a with
      | None -> Resilience.Invalid
      | Some l -> Resilience.Measured (l *. factor))

let run_label desc op ~budget ~seed ~faults =
  Printf.sprintf "%s|%s|budget=%d|seed=%d|faults=%s" desc.Descriptor.dname (Op.to_string op)
    budget seed
    (match faults with None -> "off" | Some s -> Faults.to_string s)

let tune ?(budget = 200) ?(seed = 42) ?reps ?params ?pool ?faults ?policy ?checkpoint ?resume
    ?kill_after desc op =
  let faults = Faults.resolve faults in
  let gen = Generator.generate ~seed desc op in
  let { measure; measure_batch; measured = count } = make_measure_set ?reps desc gen in
  let env = { Env.problem = gen.Generator.problem; measure; rng = Rng.create seed } in
  let resilience =
    match faults with
    | None -> None
    | Some spec -> Some (Env.Recorder.make_resilience ?policy (make_attempt_measure measure spec))
  in
  let label = run_label desc op ~budget ~seed ~faults in
  let resume =
    match resume with
    | None -> None
    | Some path -> (
        match Checkpoint.load ~path with
        | Error e -> invalid_arg e
        | Ok (file_label, snap) ->
            if file_label <> label then
              invalid_arg
                (Printf.sprintf
                   "checkpoint: %s belongs to a different run (file label %S, this run %S)" path
                   file_label label)
            else Some snap)
  in
  let on_snapshot =
    match checkpoint with
    | None -> None
    | Some path ->
        let writes = ref 0 in
        Some
          (fun snap ->
            Checkpoint.save ~path ~label snap;
            incr writes;
            (* Crash simulation for resilience tests: die (uncleanly, as a
               crash would) after the Nth checkpoint write. *)
            match kill_after with Some n when !writes >= n -> exit 3 | _ -> ())
  in
  let outcome = Cga.run ?params ?pool ~measure_batch ?resilience ?resume ?on_snapshot env ~budget in
  { gen; outcome; desc; op; measurements = count () }

let best_latency_us t = t.outcome.Cga.result.Env.best_latency

let best_tflops t =
  match best_latency_us t with
  | None -> None
  | Some l -> Some (Perf_model.achieved_tflops t.op l)

let best_program t =
  match t.outcome.Cga.result.Env.best_assignment with
  | None -> None
  | Some a -> Some (Concrete.instantiate t.gen.Generator.template a)
