(** The end-to-end Heron pipeline: Space Generator -> Space Explorer (CGA)
    -> DLA Measurer -> Cost Model. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Env = Heron_search.Env
module Cga = Heron_search.Cga

type tuned = {
  gen : Generator.t;
  outcome : Cga.outcome;
  desc : Descriptor.t;
  op : Op.t;
  measurements : int;  (** DLA measurer invocations *)
}

val make_measure :
  ?reps:int -> Descriptor.t -> Generator.t -> (Assignment.t -> float option) * (unit -> int)
(** The measurement closure used by every searcher: instantiate the
    template with the assignment, validate on the DLA, simulate. The second
    component reports how many measurements ran. *)

(** Scalar and batched views of one measurer (shared invocation count).
    [measure_batch] agrees with [measure] element by element; it
    instantiates sequentially and measures through one pooled dispatch,
    reusing the per-operator perf-model context built at creation. *)
type measure_set = {
  measure : Assignment.t -> float option;
  measure_batch : ?pool:Heron_util.Pool.t -> Assignment.t array -> float option array;
  measured : unit -> int;
}

val make_measure_set : ?reps:int -> Descriptor.t -> Generator.t -> measure_set

val make_env : ?reps:int -> ?seed:int -> Descriptor.t -> Generator.t -> Env.t

val make_attempt_measure :
  (Assignment.t -> float option) ->
  Heron_dla.Faults.spec ->
  Assignment.t ->
  attempt:int ->
  Heron_search.Resilience.attempt
(** Compose a base measurer with a fault injector into one resilient
    measurement attempt: the injector decides (purely, from the config
    key and attempt number) whether this attempt times out, crashes,
    hangs, or proceeds with a noise factor applied to the measured
    latency. Persistent faults crash every attempt, so those configs end
    up quarantined. *)

val run_label :
  Descriptor.t -> Op.t -> budget:int -> seed:int -> faults:Heron_dla.Faults.spec option -> string
(** The identity of a tuning run for checkpoint label checks: DLA name,
    operator, budget, seed and canonical fault spec. *)

val tune :
  ?budget:int ->
  ?seed:int ->
  ?reps:int ->
  ?params:Cga.params ->
  ?pool:Heron_util.Pool.t ->
  ?faults:Heron_dla.Faults.spec ->
  ?policy:Heron_search.Resilience.policy ->
  ?checkpoint:string ->
  ?resume:string ->
  ?kill_after:int ->
  Descriptor.t ->
  Op.t ->
  tuned
(** Generate the constrained space for [op] on the DLA and explore it with
    CGA under the given measurement budget (default 200). [?pool] (or the
    process default pool) parallelizes measurement batches, CSP solving
    and cost-model training without changing the result for a fixed
    seed.

    [?faults] (or the process default, {!Heron_dla.Faults.set_default})
    injects deterministic measurement faults; the search then runs behind
    the {!Heron_search.Resilience} retry/quarantine/degradation layer
    under [?policy]. Without a fault spec the pipeline is byte-identical
    to previous behavior.

    [?checkpoint] writes an atomic checkpoint of the full search state to
    the given path at every exploration iteration; [?resume] restores one
    (refusing a checkpoint whose label does not match this run) and
    continues byte-identically to an uninterrupted run. [?kill_after n]
    is a crash simulation hook for tests: the process exits with status 3
    after the [n]th checkpoint write.

    @raise Invalid_argument when [?resume] names an unreadable, invalid,
    or mismatched checkpoint. *)

val best_latency_us : tuned -> float option
val best_tflops : tuned -> float option
val best_program : tuned -> Concrete.t option
