(** The end-to-end Heron pipeline: Space Generator -> Space Explorer (CGA)
    -> DLA Measurer -> Cost Model. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Concrete = Heron_sched.Concrete
module Descriptor = Heron_dla.Descriptor
module Env = Heron_search.Env
module Cga = Heron_search.Cga

type tuned = {
  gen : Generator.t;
  outcome : Cga.outcome;
  desc : Descriptor.t;
  op : Op.t;
  measurements : int;  (** DLA measurer invocations *)
}

val make_measure :
  ?reps:int -> Descriptor.t -> Generator.t -> (Assignment.t -> float option) * (unit -> int)
(** The measurement closure used by every searcher: instantiate the
    template with the assignment, validate on the DLA, simulate. The second
    component reports how many measurements ran. *)

val make_env : ?reps:int -> ?seed:int -> Descriptor.t -> Generator.t -> Env.t

val tune :
  ?budget:int ->
  ?seed:int ->
  ?reps:int ->
  ?params:Cga.params ->
  ?pool:Heron_util.Pool.t ->
  Descriptor.t ->
  Op.t ->
  tuned
(** Generate the constrained space for [op] on the DLA and explore it with
    CGA under the given measurement budget (default 200). [?pool] (or the
    process default pool) parallelizes measurement batches, CSP solving
    and cost-model training without changing the result for a fixed
    seed. *)

val best_latency_us : tuned -> float option
val best_tflops : tuned -> float option
val best_program : tuned -> Concrete.t option
