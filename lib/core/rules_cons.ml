module Problem = Heron_csp.Problem
module Domain = Heron_csp.Domain
module Cons = Heron_csp.Cons
module Descriptor = Heron_dla.Descriptor

(* Pairwise value combination of two domains, deduplicated and optionally
   capped; used to give auxiliary product/sum variables exact domains. *)
let combine ?cap op d1 d2 =
  let seen = Hashtbl.create 97 in
  Domain.iter
    (fun a ->
      Domain.iter
        (fun b ->
          let v = op a b in
          let keep = match cap with None -> true | Some c -> v <= c in
          if keep then Hashtbl.replace seen v ())
        d2)
    d1;
  Domain.of_list (Hashtbl.fold (fun v () acc -> v :: acc) seen [])

(* C1/C2: splits (and fuses, which record the same product shape). *)
let apply_c1 (ctx : Gen_ctx.t) =
  List.iter
    (fun (f : Gen_ctx.split_fact) ->
      Problem.add_cons ctx.b (Cons.Prod (f.parent_var, [ f.outer_var; f.inner_var ])))
    (List.rev ctx.splits)

(* C3: candidate sets. *)
let apply_c3 (ctx : Gen_ctx.t) =
  List.iter
    (fun (v, cs) -> Problem.add_cons ctx.b (Cons.In (v, cs)))
    (List.rev ctx.candidates)

(* C4: stage fusion — the dependent length selects among per-location
   sources. *)
let apply_c4 (ctx : Gen_ctx.t) =
  List.iter
    (fun (f : Gen_ctx.select_fact) ->
      Problem.add_cons ctx.b (Cons.Select (f.sel_var, f.loc_var, f.entries)))
    (List.rev ctx.selects)

(* C5: scratchpad capacity. For every scope with a declared capacity, the
   byte footprint of each cache stage is the product of its loop lengths
   (innermost padded by storage_align) times the element size; footprints
   are summed per scope and bounded by the capacity. *)
let apply_c5 (ctx : Gen_ctx.t) =
  (* Auxiliary names are numbered per invocation, not from a global
     counter: variable names (and thus solver sampling, which hashes
     them) must be a pure function of the context, or two generations in
     one process would diverge. *)
  let aux_counter = ref 0 in
  let fresh_aux prefix =
    incr aux_counter;
    Printf.sprintf "%s#%d" prefix !aux_counter
  in
  let cap_of scope = Descriptor.scope_capacity ctx.desc scope in
  let scopes =
    List.sort_uniq compare (List.map (fun c -> c.Gen_ctx.cf_scope) ctx.caches)
  in
  List.iter
    (fun scope ->
      match cap_of scope with
      | None -> ()
      | Some cap ->
          let stages =
            List.filter (fun c -> c.Gen_ctx.cf_scope = scope) (List.rev ctx.caches)
          in
          let byte_vars =
            List.map
              (fun (c : Gen_ctx.cache_fact) ->
                (* Innermost length, padded if storage_align applies. *)
                let rev_loops = List.rev c.cf_loop_vars in
                let inner, outers =
                  match rev_loops with
                  | i :: o -> (i, List.rev o)
                  | [] -> invalid_arg "Rules_cons.apply_c5: cache stage without loops"
                in
                let padded_inner =
                  match c.cf_pad with
                  | None -> inner
                  | Some pad ->
                      let dom =
                        combine ( + ) (Problem.domain_of ctx.b inner)
                          (Problem.domain_of ctx.b pad)
                      in
                      let v = fresh_aux (Printf.sprintf "aux_%s_padded" c.cf_stage) in
                      Problem.add_var ctx.b ~category:Problem.Auxiliary v dom;
                      Problem.add_cons ctx.b (Cons.Sum (v, [ inner; pad ]));
                      v
                in
                (* Element count: binary product chain over the loops. *)
                let elems =
                  List.fold_left
                    (fun acc l ->
                      let dom =
                        combine ( * ) ~cap:(cap * 4)
                          (Problem.domain_of ctx.b acc) (Problem.domain_of ctx.b l)
                      in
                      let v = fresh_aux (Printf.sprintf "mem_%s_elems" c.cf_stage) in
                      Problem.add_var ctx.b ~category:Problem.Auxiliary v dom;
                      Problem.add_cons ctx.b (Cons.Prod (v, [ acc; l ]));
                      v)
                    padded_inner outers
                in
                let bytes = fresh_aux (Printf.sprintf "mem_%s_bytes" c.cf_stage) in
                let dtv = fresh_aux (Printf.sprintf "aux_%s_dtbytes" c.cf_stage) in
                Problem.add_var ctx.b ~category:Problem.Auxiliary dtv
                  (Domain.singleton c.cf_dtype_bytes);
                Problem.add_var ctx.b ~category:Problem.Auxiliary bytes
                  (combine ( * ) ~cap:(cap * 4)
                     (Problem.domain_of ctx.b elems)
                     (Domain.singleton c.cf_dtype_bytes));
                Problem.add_cons ctx.b (Cons.Prod (bytes, [ elems; dtv ]));
                bytes)
              stages
          in
          (* Total per scope, bounded by the capacity. *)
          let total =
            match byte_vars with
            | [] -> None
            | [ only ] -> Some only
            | first :: rest ->
                Some
                  (List.fold_left
                     (fun acc v ->
                       let dom =
                         combine ( + ) ~cap
                           (Problem.domain_of ctx.b acc) (Problem.domain_of ctx.b v)
                       in
                       let s = fresh_aux (Printf.sprintf "mem_%s_total" scope) in
                       Problem.add_var ctx.b ~category:Problem.Auxiliary s dom;
                       Problem.add_cons ctx.b (Cons.Sum (s, [ acc; v ]));
                       s)
                     first rest)
          in
          match total with
          | None -> ()
          | Some total ->
              let cap_var = fresh_aux (Printf.sprintf "arch_%s_capacity" scope) in
              Problem.add_var ctx.b ~category:Problem.Architectural cap_var
                (Domain.singleton cap);
              Problem.add_cons ctx.b (Cons.Le (total, cap_var)))
    scopes

(* C6: DLA-specific facts recorded by the schedule rules. *)
let apply_c6 (ctx : Gen_ctx.t) =
  List.iter (fun (a, b) -> Problem.add_cons ctx.b (Cons.Le (a, b))) (List.rev ctx.les);
  List.iter (fun (v, vs) -> Problem.add_cons ctx.b (Cons.Prod (v, vs))) (List.rev ctx.prods)

let apply_all ctx =
  apply_c1 ctx;
  apply_c3 ctx;
  apply_c4 ctx;
  apply_c5 ctx;
  apply_c6 ctx
