(** A constraint satisfaction problem: variables with finite domains plus
    constraints (the paper's [CSP_initial] and its CGA offspring).

    Every variable carries a category matching the paper's Table 4
    breakdown: architectural constants, loop lengths, tunable parameters,
    and auxiliary helpers. *)

type category = Architectural | Loop_length | Tunable | Auxiliary

val category_to_string : category -> string

type t

type builder

val builder : unit -> builder

val add_var : builder -> ?category:category -> string -> Domain.t -> unit
(** @raise Invalid_argument if the variable already exists. *)

val declare_var : builder -> ?category:category -> string -> Domain.t -> unit
(** Like {!add_var} but intersects domains if the variable exists. *)

val has_var : builder -> string -> bool

val domain_of : builder -> string -> Domain.t
(** Current domain of a declared variable.
    @raise Invalid_argument on unknown variables. *)

val add_cons : builder -> Cons.t -> unit
(** @raise Invalid_argument if the constraint mentions an unknown variable. *)

val freeze : builder -> t

val of_parts : (string * Domain.t) list -> Cons.t list -> t
(** Convenience constructor; all variables are categorized [Tunable]. *)

val vars : t -> string array
(** Variable names in declaration order. *)

val n_vars : t -> int
val n_cons : t -> int
val domain : t -> string -> Domain.t
val category : t -> string -> category
val constraints : t -> Cons.t list
val vars_of_category : t -> category -> string list

val with_extra : t -> Cons.t list -> t
(** [with_extra p cs] is [p] plus additional constraints — the CSP
    transformation at the heart of constraint-based crossover.
    Unknown variables in [cs] are rejected like {!add_cons}. *)

val decompose : t -> t * Cons.t list
(** [decompose p] is [(root, extras)] where [root] is the underlying
    problem [p] was derived from by (possibly nested) {!with_extra}
    calls and [extras] lists the layered constraints in application
    order, so [root] extended with [extras] has exactly [p]'s
    constraint list. For a problem built directly, it is [(p, [])].
    The root is returned by physical identity, letting the solver key a
    compiled-template cache on it. *)

val check : t -> Assignment.t -> (unit, Cons.t) result
(** First violated constraint, if any. Also fails when a value falls
    outside its declared domain (reported as an [In] constraint). *)

val violations : t -> Assignment.t -> int
(** Number of violated constraints (domain violations included). *)
