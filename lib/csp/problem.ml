type category = Architectural | Loop_length | Tunable | Auxiliary

let category_to_string = function
  | Architectural -> "architectural"
  | Loop_length -> "loop-length"
  | Tunable -> "tunable"
  | Auxiliary -> "auxiliary"

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  domains : Domain.t array;
  categories : category array;
  cons : Cons.t list;
  origin : origin;
}

(* Provenance of a problem: built from scratch, or derived by layering
   extra constraints on an existing problem via [with_extra]. The solver
   uses this to reuse one compiled template (and its propagated root)
   across a whole family of CGA offspring. *)
and origin = Root | Extended of t * Cons.t list

type builder = {
  mutable b_names : string list;  (* reversed *)
  b_index : (string, int) Hashtbl.t;
  mutable b_domains : Domain.t list;  (* reversed *)
  mutable b_categories : category list;  (* reversed *)
  mutable b_cons : Cons.t list;  (* reversed *)
  mutable b_count : int;
}

let builder () =
  { b_names = []; b_index = Hashtbl.create 64; b_domains = []; b_categories = [];
    b_cons = []; b_count = 0 }

let has_var b name = Hashtbl.mem b.b_index name

let add_var b ?(category = Tunable) name dom =
  if has_var b name then invalid_arg (Printf.sprintf "Problem.add_var: duplicate %s" name);
  Hashtbl.add b.b_index name b.b_count;
  b.b_names <- name :: b.b_names;
  b.b_domains <- dom :: b.b_domains;
  b.b_categories <- category :: b.b_categories;
  b.b_count <- b.b_count + 1

let declare_var b ?(category = Tunable) name dom =
  match Hashtbl.find_opt b.b_index name with
  | None -> add_var b ~category name dom
  | Some i ->
      (* Intersect with the existing domain in place. *)
      let doms = Array.of_list (List.rev b.b_domains) in
      doms.(i) <- Domain.inter doms.(i) dom;
      b.b_domains <- List.rev (Array.to_list doms)

let domain_of b name =
  match Hashtbl.find_opt b.b_index name with
  | None -> invalid_arg (Printf.sprintf "Problem.domain_of: unknown variable %s" name)
  | Some i ->
      let doms = Array.of_list (List.rev b.b_domains) in
      doms.(i)

let add_cons b c =
  List.iter
    (fun v ->
      if not (has_var b v) then
        invalid_arg (Printf.sprintf "Problem.add_cons: unknown variable %s in %s" v
            (Cons.to_string c)))
    (Cons.vars c);
  b.b_cons <- c :: b.b_cons

let freeze b =
  {
    names = Array.of_list (List.rev b.b_names);
    index = Hashtbl.copy b.b_index;
    domains = Array.of_list (List.rev b.b_domains);
    categories = Array.of_list (List.rev b.b_categories);
    cons = List.rev b.b_cons;
    origin = Root;
  }

let of_parts vars cons =
  let b = builder () in
  List.iter (fun (name, dom) -> add_var b name dom) vars;
  List.iter (add_cons b) cons;
  freeze b

let vars t = t.names
let n_vars t = Array.length t.names
let n_cons t = List.length t.cons

let idx t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Problem: unknown variable %s" name)

let domain t name = t.domains.(idx t name)
let category t name = t.categories.(idx t name)
let constraints t = t.cons

let vars_of_category t cat =
  Array.to_list t.names |> List.filter (fun n -> category t n = cat)

let with_extra t cs =
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem t.index v) then
            invalid_arg
              (Printf.sprintf "Problem.with_extra: unknown variable %s in %s" v
                 (Cons.to_string c)))
        (Cons.vars c))
    cs;
  { t with cons = t.cons @ cs; origin = Extended (t, cs) }

let rec decompose t =
  match t.origin with
  | Root -> (t, [])
  | Extended (base, extras) ->
      let root, inner = decompose base in
      (root, inner @ extras)

let check t a =
  let lookup v = Assignment.get a v in
  let domain_violation =
    Array.to_list t.names
    |> List.find_map (fun name ->
           match Assignment.find_opt a name with
           | None -> Some (Cons.In (name, Domain.to_list (domain t name)))
           | Some v ->
               if Domain.mem v (domain t name) then None
               else Some (Cons.In (name, Domain.to_list (domain t name))))
  in
  match domain_violation with
  | Some c -> Error c
  | None -> (
      match List.find_opt (fun c -> not (Cons.holds lookup c)) t.cons with
      | Some c -> Error c
      | None -> Ok ())

let violations t a =
  let dom_viol =
    Array.to_list t.names
    |> List.filter (fun name ->
           match Assignment.find_opt a name with
           | None -> true
           | Some v -> not (Domain.mem v (domain t name)))
    |> List.length
  in
  let lookup v = Assignment.get a v in
  let cons_viol =
    List.filter
      (fun c ->
        (* A constraint over unbound variables counts as violated. *)
        match List.find_opt (fun v -> not (Assignment.mem a v)) (Cons.vars c) with
        | Some _ -> true
        | None -> not (Cons.holds lookup c))
      t.cons
    |> List.length
  in
  dom_viol + cons_viol
