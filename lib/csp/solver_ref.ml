module Rng = Heron_util.Rng

(* The pre-overhaul solver engine, frozen verbatim (minus observability and
   pool plumbing, which never influenced results): sorted-array domains,
   full [compile] per problem, [Array.copy] of the whole domain array at
   every DFS node, O(k^2) n-ary revision. It exists as the executable
   specification the rebuilt engine in [Solver] is differentially tested
   against (lib/check/engine_diff.ml) and benchmarked against
   (bench/bench_solver.ml). Do not optimize this module. *)

type stats = { mutable nodes : int; mutable fails : int; mutable restarts : int }

let fresh_stats () = { nodes = 0; fails = 0; restarts = 0 }

(* Sequential counter of fixpoint propagations, for bench_solver's
   rounds/sec baseline. Not thread-safe; the reference engine is
   sequential by design. *)
let propagate_rounds = ref 0

type ic =
  | CProd of int * int array
  | CSum of int * int array
  | CEq of int * int
  | CLe of int * int
  | CIn of int * Domain.t
  | CSel of int * int * int array

let default_exact_limit = 10_000

type compiled = {
  names : string array;
  init_domains : Domain.t array;
  ics : ic array;
  watchers : int list array;
  exact_limit : int;
}

let compile ?(exact_limit = default_exact_limit) problem =
  let names = Problem.vars problem in
  let n = Array.length names in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i name -> Hashtbl.replace ids name i) names;
  let id name = Hashtbl.find ids name in
  let init_domains = Array.map (Problem.domain problem) names in
  let ics =
    Problem.constraints problem
    |> List.map (fun c ->
           match c with
           | Cons.Prod (v, vs) -> CProd (id v, Array.of_list (List.map id vs))
           | Cons.Sum (v, vs) -> CSum (id v, Array.of_list (List.map id vs))
           | Cons.Eq (a, b) -> CEq (id a, id b)
           | Cons.Le (a, b) -> CLe (id a, id b)
           | Cons.In (v, cs) -> CIn (id v, Domain.of_list cs)
           | Cons.Select (v, u, vs) -> CSel (id v, id u, Array.of_list (List.map id vs)))
    |> Array.of_list
  in
  let watchers = Array.make n [] in
  Array.iteri
    (fun ci ic ->
      let vars =
        match ic with
        | CProd (v, vs) | CSum (v, vs) -> v :: Array.to_list vs
        | CEq (a, b) | CLe (a, b) -> [ a; b ]
        | CIn (v, _) -> [ v ]
        | CSel (v, u, vs) -> v :: u :: Array.to_list vs
      in
      List.iter (fun vid -> watchers.(vid) <- ci :: watchers.(vid)) (List.sort_uniq compare vars))
    ics;
  { names; init_domains; ics; watchers; exact_limit }

exception Wipeout

let set_dom doms changed vid d =
  if Domain.is_empty d then raise Wipeout;
  if not (Domain.equal doms.(vid) d) then begin
    doms.(vid) <- d;
    changed := vid :: !changed
  end

let revise_nary doms changed v vs ~identity ~op ~inv_lo ~inv_hi =
  let lo_all = Array.fold_left (fun acc x -> op acc (Domain.min_value doms.(x))) identity vs in
  let hi_all = Array.fold_left (fun acc x -> op acc (Domain.max_value doms.(x))) identity vs in
  set_dom doms changed v (Domain.filter (fun x -> x >= lo_all && x <= hi_all) doms.(v));
  let v_lo = Domain.min_value doms.(v) and v_hi = Domain.max_value doms.(v) in
  Array.iteri
    (fun i x ->
      let others_lo = ref identity and others_hi = ref identity in
      Array.iteri
        (fun j y ->
          if i <> j then begin
            others_lo := op !others_lo (Domain.min_value doms.(y));
            others_hi := op !others_hi (Domain.max_value doms.(y))
          end)
        vs;
      let lo = inv_lo v_lo !others_hi and hi = inv_hi v_hi !others_lo in
      set_dom doms changed x (Domain.filter (fun a -> a >= lo && a <= hi) doms.(x)))
    vs

let revise_prod ~exact_limit doms changed v vs =
  match vs with
  | [| x |] ->
      let d = Domain.inter doms.(v) doms.(x) in
      set_dom doms changed v d;
      set_dom doms changed x d
  | [| a; b |] when Domain.size doms.(a) * Domain.size doms.(b) <= exact_limit ->
      let products = ref [] in
      Domain.iter
        (fun x -> Domain.iter (fun y -> products := (x * y) :: !products) doms.(b))
        doms.(a);
      set_dom doms changed v (Domain.inter doms.(v) (Domain.of_list !products));
      let keep_a x =
        Domain.fold (fun acc y -> acc || Domain.mem (x * y) doms.(v)) false doms.(b)
      in
      set_dom doms changed a (Domain.filter keep_a doms.(a));
      let keep_b y =
        Domain.fold (fun acc x -> acc || Domain.mem (x * y) doms.(v)) false doms.(a)
      in
      set_dom doms changed b (Domain.filter keep_b doms.(b))
  | _ ->
      revise_nary doms changed v vs ~identity:1 ~op:( * )
        ~inv_lo:(fun v_lo others_hi -> if others_hi = 0 then 0 else (v_lo + others_hi - 1) / others_hi)
        ~inv_hi:(fun v_hi others_lo -> if others_lo = 0 then max_int else v_hi / others_lo)

let revise_sum ~exact_limit doms changed v vs =
  match vs with
  | [| x |] ->
      let d = Domain.inter doms.(v) doms.(x) in
      set_dom doms changed v d;
      set_dom doms changed x d
  | [| a; b |] when Domain.size doms.(a) * Domain.size doms.(b) <= exact_limit ->
      let sums = ref [] in
      Domain.iter
        (fun x -> Domain.iter (fun y -> sums := (x + y) :: !sums) doms.(b))
        doms.(a);
      set_dom doms changed v (Domain.inter doms.(v) (Domain.of_list !sums));
      let keep_a x =
        Domain.fold (fun acc y -> acc || Domain.mem (x + y) doms.(v)) false doms.(b)
      in
      set_dom doms changed a (Domain.filter keep_a doms.(a));
      let keep_b y =
        Domain.fold (fun acc x -> acc || Domain.mem (x + y) doms.(v)) false doms.(a)
      in
      set_dom doms changed b (Domain.filter keep_b doms.(b))
  | _ ->
      revise_nary doms changed v vs ~identity:0 ~op:( + )
        ~inv_lo:(fun v_lo others_hi -> v_lo - others_hi)
        ~inv_hi:(fun v_hi others_lo -> v_hi - others_lo)

let revise_sel doms changed v u vs =
  let n = Array.length vs in
  let du =
    Domain.filter
      (fun i -> i >= 0 && i < n && not (Domain.is_empty (Domain.inter doms.(v) doms.(vs.(i)))))
      doms.(u)
  in
  set_dom doms changed u du;
  let union =
    Domain.fold (fun acc i -> Domain.union acc doms.(vs.(i))) Domain.empty doms.(u)
  in
  set_dom doms changed v (Domain.inter doms.(v) union);
  match Domain.value doms.(u) with
  | Some i ->
      let d = Domain.inter doms.(v) doms.(vs.(i)) in
      set_dom doms changed v d;
      set_dom doms changed vs.(i) d
  | None -> ()

let revise ~exact_limit doms changed = function
  | CProd (v, vs) -> revise_prod ~exact_limit doms changed v vs
  | CSum (v, vs) -> revise_sum ~exact_limit doms changed v vs
  | CEq (a, b) ->
      let d = Domain.inter doms.(a) doms.(b) in
      set_dom doms changed a d;
      set_dom doms changed b d
  | CLe (a, b) ->
      let hi = Domain.max_value doms.(b) in
      set_dom doms changed a (Domain.filter (fun x -> x <= hi) doms.(a));
      let lo = Domain.min_value doms.(a) in
      set_dom doms changed b (Domain.filter (fun x -> x >= lo) doms.(b))
  | CIn (v, cs) -> set_dom doms changed v (Domain.inter doms.(v) cs)
  | CSel (v, u, vs) -> revise_sel doms changed v u vs

let propagate compiled doms seed =
  let nc = Array.length compiled.ics in
  let in_queue = Array.make nc false in
  let queue = Queue.create () in
  let push ci =
    if not in_queue.(ci) then begin
      in_queue.(ci) <- true;
      Queue.push ci queue
    end
  in
  List.iter push seed;
  try
    while not (Queue.is_empty queue) do
      let ci = Queue.pop queue in
      in_queue.(ci) <- false;
      let changed = ref [] in
      revise ~exact_limit:compiled.exact_limit doms changed compiled.ics.(ci);
      List.iter (fun vid -> List.iter push compiled.watchers.(vid)) !changed
    done;
    incr propagate_rounds;
    true
  with Wipeout -> false

let all_cons compiled = List.init (Array.length compiled.ics) (fun i -> i)

let extract compiled doms =
  let bindings = ref [] in
  Array.iteri
    (fun i name ->
      match Domain.value doms.(i) with
      | Some v -> bindings := (name, v) :: !bindings
      | None -> invalid_arg "Solver_ref.extract: non-singleton domain")
    compiled.names;
  Assignment.of_list !bindings

exception Give_up

let search ?(max_fails = 4000) ~stats rng compiled doms0 =
  let fails = ref 0 in
  let pick_var doms =
    let best = ref (-1) and best_size = ref max_int and ties = ref 0 in
    Array.iteri
      (fun i d ->
        let s = Domain.size d in
        if s > 1 then
          if s < !best_size then begin
            best := i;
            best_size := s;
            ties := 1
          end
          else if s = !best_size then begin
            incr ties;
            if Rng.int rng !ties = 0 then best := i
          end)
      doms;
    if !best < 0 then None else Some !best
  in
  let rec dfs doms =
    stats.nodes <- stats.nodes + 1;
    match pick_var doms with
    | None -> Some (extract compiled doms)
    | Some vid ->
        let values = Array.of_list (Domain.to_list doms.(vid)) in
        Rng.shuffle rng values;
        let rec try_values i =
          if i >= Array.length values then None
          else begin
            let doms' = Array.copy doms in
            doms'.(vid) <- Domain.singleton values.(i);
            let ok = propagate compiled doms' compiled.watchers.(vid) in
            let result = if ok then dfs doms' else None in
            match result with
            | Some _ as r -> r
            | None ->
                stats.fails <- stats.fails + 1;
                incr fails;
                if !fails > max_fails then raise Give_up;
                try_values (i + 1)
          end
        in
        try_values 0
  in
  try dfs doms0 with Give_up -> None

let solve ?(max_fails = 4000) ?(max_restarts = 8) ?exact_limit ?stats rng problem =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let compiled = compile ?exact_limit problem in
  let root = Array.copy compiled.init_domains in
  if not (propagate compiled root (all_cons compiled)) then None
  else
    let rec attempt k =
      if k > max_restarts then None
      else begin
        if k > 0 then stats.restarts <- stats.restarts + 1;
        match search ~max_fails ~stats rng compiled (Array.copy root) with
        | Some a -> Some a
        | None -> attempt (k + 1)
      end
    in
    attempt 0

let rand_sat ?(max_fails = 4000) ?exact_limit ?stats rng problem n =
  let compiled = compile ?exact_limit problem in
  let root = Array.copy compiled.init_domains in
  if n <= 0 || not (propagate compiled root (all_cons compiled)) then []
  else begin
    let stats = match stats with Some s -> s | None -> fresh_stats () in
    let rngs = Rng.split_n rng n in
    let draw task_rng =
      let rec go attempt =
        if attempt >= 3 then None
        else
          match search ~max_fails ~stats task_rng compiled (Array.copy root) with
          | Some _ as a -> a
          | None -> go (attempt + 1)
      in
      go 0
    in
    Array.map draw rngs |> Array.to_list |> List.filter_map Fun.id
  end

let solve_all ?(max_fails = 4000) ?(max_restarts = 8) ?exact_limit ?stats rng problems =
  let arr = Array.of_list problems in
  let rngs = Rng.split_n rng (Array.length arr) in
  Array.to_list
    (Array.init (Array.length arr) (fun i ->
         solve ~max_fails ~max_restarts ?exact_limit ?stats rngs.(i) arr.(i)))

let propagate_domains problem =
  let compiled = compile problem in
  let doms = Array.copy compiled.init_domains in
  if propagate compiled doms (all_cons compiled) then
    Some (Array.to_list (Array.mapi (fun i name -> (name, doms.(i))) compiled.names))
  else None

let enumerate ?(limit = 10_000) problem =
  let compiled = compile problem in
  let doms0 = Array.copy compiled.init_domains in
  if not (propagate compiled doms0 (all_cons compiled)) then []
  else begin
    let out = ref [] and count = ref 0 in
    let rec dfs doms =
      if !count >= limit then ()
      else begin
        let open_var = ref (-1) in
        (try
           Array.iteri
             (fun i d ->
               if Domain.size d > 1 then begin
                 open_var := i;
                 raise Exit
               end)
             doms
         with Exit -> ());
        if !open_var < 0 then begin
          out := extract compiled doms :: !out;
          incr count
        end
        else
          let vid = !open_var in
          Domain.iter
            (fun v ->
              let doms' = Array.copy doms in
              doms'.(vid) <- Domain.singleton v;
              if propagate compiled doms' compiled.watchers.(vid) then dfs doms')
            doms.(vid)
      end
    in
    dfs doms0;
    List.rev !out
  end

let search_biased ?(max_fails = 4000) ~stats rng compiled doms0 bias =
  let fails = ref 0 in
  let pick_var doms =
    let best = ref (-1) and best_size = ref max_int and ties = ref 0 in
    Array.iteri
      (fun i d ->
        let s = Domain.size d in
        if s > 1 then
          if s < !best_size then begin
            best := i;
            best_size := s;
            ties := 1
          end
          else if s = !best_size then begin
            incr ties;
            if Rng.int rng !ties = 0 then best := i
          end)
      doms;
    if !best < 0 then None else Some !best
  in
  let rec dfs doms =
    stats.nodes <- stats.nodes + 1;
    match pick_var doms with
    | None -> Some (extract compiled doms)
    | Some vid ->
        let dom_values = Array.of_list (Domain.to_list doms.(vid)) in
        Rng.shuffle rng dom_values;
        let values =
          match Assignment.find_opt bias compiled.names.(vid) with
          | Some v when Domain.mem v doms.(vid) ->
              Array.of_list (v :: List.filter (fun x -> x <> v) (Array.to_list dom_values))
          | _ -> dom_values
        in
        let rec try_values i =
          if i >= Array.length values then None
          else begin
            let doms' = Array.copy doms in
            doms'.(vid) <- Domain.singleton values.(i);
            let ok = propagate compiled doms' compiled.watchers.(vid) in
            let result = if ok then dfs doms' else None in
            match result with
            | Some _ as r -> r
            | None ->
                stats.fails <- stats.fails + 1;
                incr fails;
                if !fails > max_fails then raise Give_up;
                try_values (i + 1)
          end
        in
        try_values 0
  in
  try dfs doms0 with Give_up -> None

let solve_biased ?(max_fails = 4000) rng problem bias =
  let stats = fresh_stats () in
  let compiled = compile problem in
  let root = Array.copy compiled.init_domains in
  if not (propagate compiled root (all_cons compiled)) then None
  else search_biased ~max_fails ~stats rng compiled root bias
