(** Propagation-based randomized CSP solving.

    The solver combines fixpoint constraint propagation (bounds reasoning
    for n-ary PROD/SUM, exact support pruning for binary ones) with a
    randomized backtracking search, giving the paper's [RandSAT]: draw
    random valid assignments of a CSP without enumerating the space.

    Internally each problem is lowered once to a compiled template
    (bitset domain layout, watcher lists, propagated root fixpoint) that
    an LRU cache keyed by problem physical identity reuses across
    solves; [Problem.with_extra] offspring whose extras are all [In]
    constraints share their base's template and re-propagate only what
    the extras change. Search backtracks by trail rewinding rather than
    domain copying. None of this is observable: results are byte
    identical to a compile-per-solve engine (see [Solver_ref] and the
    [engine] differential properties in [lib/check]), and cache traffic
    shows up in the [solver.compiles] / [solver.compile_cache_hits] /
    [solver.trail_pushes] counters documented in OBSERVABILITY.md. *)

type stats = {
  mutable nodes : int;     (** search nodes explored *)
  mutable fails : int;     (** dead ends encountered *)
  mutable restarts : int;  (** randomized restarts *)
}

val solve :
  ?max_fails:int ->
  ?max_restarts:int ->
  ?exact_limit:int ->
  ?stats:stats ->
  Heron_util.Rng.t ->
  Problem.t ->
  Assignment.t option
(** One random valid total assignment, or [None] if the problem looks
    unsatisfiable (definitely, or after exhausting the fail budget). *)

val rand_sat :
  ?max_fails:int ->
  ?exact_limit:int ->
  ?pool:Heron_util.Pool.t ->
  Heron_util.Rng.t ->
  Problem.t ->
  int ->
  Assignment.t list
(** [rand_sat rng p n] draws up to [n] valid assignments (duplicates
    possible on tiny spaces, fewer than [n] on hard/unsat problems).
    [exact_limit] caps the domain-size product for exact binary PROD/SUM
    support pruning; 0 disables it (bounds reasoning only). Draw [i] runs
    on its own generator split from [rng] in index order, so the result is
    identical with or without a [pool] and for any pool size. *)

val solve_all :
  ?max_fails:int ->
  ?max_restarts:int ->
  ?exact_limit:int ->
  ?pool:Heron_util.Pool.t ->
  Heron_util.Rng.t ->
  Problem.t list ->
  Assignment.t option list
(** Solve a batch of independent problems, optionally on a domain pool,
    with per-task generators split from [rng] in index order. Results are
    in input order and identical for any pool size. *)

val propagate_domains : Problem.t -> (string * Domain.t) list option
(** Runs propagation alone and returns the narrowed domains, or [None] on a
    wipeout (the CSP is unsatisfiable). Exposed for tests and diagnostics. *)

val enumerate : ?limit:int -> Problem.t -> Assignment.t list
(** Exhaustive enumeration (deterministic order) of up to [limit] solutions.
    Only for small test problems. *)

val fresh_stats : unit -> stats

val solve_biased :
  ?max_fails:int ->
  Heron_util.Rng.t ->
  Problem.t ->
  Assignment.t ->
  Assignment.t option
(** Like {!solve}, but when branching on a variable, tries the value the
    bias assignment proposes first (if still in the domain). This is the
    decoding step of SAT-decoder genetic algorithms: it maps an arbitrary
    chromosome to a nearby valid one. *)
