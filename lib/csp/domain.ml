type t = int array
(* Invariant: strictly increasing. *)

let of_list l = Array.of_list (List.sort_uniq compare l)
let to_list = Array.to_list
let singleton v = [| v |]

let range lo hi =
  if lo > hi then [||] else Array.init (hi - lo + 1) (fun i -> lo + i)

let empty = [||]
let is_empty d = Array.length d = 0
let size = Array.length

let min_value d =
  if is_empty d then invalid_arg "Domain.min_value: empty domain";
  d.(0)

let max_value d =
  if is_empty d then invalid_arg "Domain.max_value: empty domain";
  d.(Array.length d - 1)

let mem v d =
  let rec bs lo hi =
    if lo > hi then false
    else
      let mid = (lo + hi) / 2 in
      if d.(mid) = v then true else if d.(mid) < v then bs (mid + 1) hi else bs lo (mid - 1)
  in
  bs 0 (Array.length d - 1)

let value d = if Array.length d = 1 then Some d.(0) else None

let filter p d =
  let kept = Array.to_list d |> List.filter p in
  Array.of_list kept

let inter a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out := x :: !out;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

(* Linear merge of the two sorted inputs — [union] runs on every CSel
   revise, so no sort and no intermediate lists. *)
let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x = y then begin
        out.(!k) <- x;
        incr i;
        incr j
      end
      else if x < y then begin
        out.(!k) <- x;
        incr i
      end
      else begin
        out.(!k) <- y;
        incr j
      end;
      incr k
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < lb do
      out.(!k) <- b.(!j);
      incr j;
      incr k
    done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

let equal a b = a = b

let iter f d = Array.iter f d

let fold f acc d = Array.fold_left f acc d

let random rng d =
  if is_empty d then invalid_arg "Domain.random: empty domain";
  d.(Heron_util.Rng.int rng (Array.length d))

let to_string d =
  if Array.length d > 12 then
    Printf.sprintf "{%d values in [%d, %d]}" (Array.length d) (min_value d) (max_value d)
  else
    "{" ^ String.concat ", " (List.map string_of_int (to_list d)) ^ "}"
