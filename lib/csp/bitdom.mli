(** Packed bitset domains over a frozen universe.

    During search, a variable's live domain is always a subset of its
    frozen initial domain (propagation and branching only remove
    values). The solver therefore represents live domains as bitmasks
    over indices into that universe: bit [i] set means the [i]-th
    smallest initial value is still live. Membership, intersection,
    filtering and cardinality become word operations with zero
    allocation, and iteration stays ascending so value ordering — and
    every seeded trace — is unchanged relative to the sorted-array
    representation.

    Words hold {!bits_per_word} = 62 bits so every word is a
    non-negative OCaml [int]. Invariant maintained by all operations
    here: bits at positions >= the universe size are zero in the last
    word (so popcounts and equality never need masking).

    Two layers:
    - Low-level slice primitives over a caller-owned flat [int array]
      ([store]) at a word offset — the solver packs every variable's
      live words into one array so a search-tree snapshot is a single
      blit and backtracking is a trail of (word index, old word) pairs.
    - A self-contained high-level {!t} (universe + live words), used by
      the unit tests that pit bitset operations against the
      sorted-array {!Domain} reference. *)

val bits_per_word : int

val nwords : int -> int
(** Words needed for a universe of [n] values. [nwords 0 = 0]. *)

val index_of : int array -> int -> int
(** [index_of values v] is the position of [v] in the sorted array
    [values], or [-1] if absent. *)

(** {1 Slice primitives}

    All take the flat [store], a word offset [off], and either the
    word count [nw] or the universe size [n] (bit count). *)

val fill : int array -> off:int -> n:int -> unit
(** Set bits [0..n-1], clear any tail bits of the last word. *)

val popcount : int array -> off:int -> nw:int -> int

val is_empty_slice : int array -> off:int -> nw:int -> bool

val mem_bit : int array -> off:int -> int -> bool
(** [mem_bit store ~off i] tests bit [i] of the slice. *)

val min_bit : int array -> off:int -> nw:int -> int
(** Lowest set bit index, or [-1] if the slice is empty. *)

val max_bit : int array -> off:int -> nw:int -> int
(** Highest set bit index, or [-1] if the slice is empty. *)

val iter_bits : (int -> unit) -> int array -> off:int -> nw:int -> unit
(** Ascending over set bit indices. *)

val equal_slices : int array -> int -> int array -> int -> nw:int -> bool
(** [equal_slices a aoff b boff ~nw] compares two [nw]-word slices. *)

(** {1 Self-contained domains (for tests)} *)

type t = { values : int array; words : int array }
(** [values] is the frozen universe (strictly ascending); [words] are
    the live bits, [nwords (Array.length values)] of them. *)

val of_domain : Domain.t -> t
(** Universe = the given domain, all values live. *)

val to_domain : t -> Domain.t

val to_list : t -> int list

val size : t -> int

val is_empty : t -> bool

val mem : int -> t -> bool

val min_value : t -> int
(** @raise Invalid_argument on an empty domain. *)

val max_value : t -> int
(** @raise Invalid_argument on an empty domain. *)

val value : t -> int option
(** [Some v] iff the live set is the singleton [v]. *)

val restrict : (int -> bool) -> t -> t
(** Keep live values satisfying the predicate (same universe). *)

val inter : t -> t -> t
(** Intersection of live sets; both arguments must share the same
    universe (word AND). @raise Invalid_argument otherwise. *)

val iter : (int -> unit) -> t -> unit
(** Ascending over live values. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
