module M = Map.Make (String)

type t = int M.t

let empty = M.empty
let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
let bindings = M.bindings
let get t k = M.find k t
let find_opt t k = M.find_opt k t
let set t k v = M.add k v t
let mem t k = M.mem k t
let cardinal = M.cardinal
let equal = M.equal Int.equal
let fold f t acc = M.fold f t acc

let key t =
  bindings t |> List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) |> String.concat ";"

let to_string = key

let of_key s =
  if String.length s = 0 then Ok empty
  else
    let parts = String.split_on_char ';' s in
    let rec build m = function
      | [] -> Ok m
      | part :: rest -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "binding %S has no '='" part)
          | Some i -> (
              let v = String.sub part 0 i in
              let x = String.sub part (i + 1) (String.length part - i - 1) in
              if v = "" then Error (Printf.sprintf "binding %S has an empty variable" part)
              else
                match int_of_string_opt x with
                | None -> Error (Printf.sprintf "binding %S has a non-integer value" part)
                | Some x -> build (M.add v x m) rest))
    in
    match build M.empty parts with
    | Error _ as e -> e
    | Ok m ->
        (* Only canonical renderings round-trip: [key] sorts bindings and
           never repeats a variable, so a reordered or duplicated key is a
           corrupt input, not an alternate spelling. *)
        if String.equal (key m) s then Ok m
        else Error "not in canonical key form (sorted, no duplicate variables)"
