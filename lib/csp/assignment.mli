(** Total or partial assignments of CSP variables (the concrete
    chromosomes of the search). *)

type t

val empty : t
val of_list : (string * int) list -> t
val bindings : t -> (string * int) list
val get : t -> string -> int
(** @raise Not_found when the variable is unbound. *)

val find_opt : t -> string -> int option
val set : t -> string -> int -> t
val mem : t -> string -> bool
val cardinal : t -> int
val equal : t -> t -> bool

val fold : (string -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over bindings in increasing variable order (allocation-free, for
    structural hashing). *)

val key : t -> string
(** Canonical string rendering, usable as a hash/cache key. *)

val to_string : t -> string

val of_key : string -> (t, string) result
(** Parse a {!key} rendering back into an assignment. Only canonical
    renderings are accepted ([key (of_key s) = s]): bindings sorted by
    variable, no duplicates, integer values. Checkpoint import uses this
    to rebuild assignments without storing them twice. *)
