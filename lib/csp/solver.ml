module Rng = Heron_util.Rng
module Obs = Heron_obs.Obs

(* Global observability counters, alongside the per-search [stats] record:
   [stats] feeds experiment tables, counters feed --metrics/--trace.
   Atomic increments only — totals are deterministic for any pool size
   because the work itself is (per-task split generators) and compile-cache
   lookups happen only in sequential caller code. *)
let c_revise = Obs.Counter.make "solver.revise"
let c_propagate = Obs.Counter.make "solver.propagate_rounds"
let c_wipeouts = Obs.Counter.make "solver.wipeouts"
let c_nodes = Obs.Counter.make "solver.nodes"
let c_fails = Obs.Counter.make "solver.fails"
let c_restarts = Obs.Counter.make "solver.restarts"
let c_solve = Obs.Counter.make "solver.solve_calls"
let c_draws = Obs.Counter.make "solver.rand_sat_draws"
let c_compiles = Obs.Counter.make "solver.compiles"
let c_cache_hits = Obs.Counter.make "solver.compile_cache_hits"
let c_trail = Obs.Counter.make "solver.trail_pushes"

type stats = { mutable nodes : int; mutable fails : int; mutable restarts : int }

let fresh_stats () = { nodes = 0; fails = 0; restarts = 0 }

(* Compiled, id-based constraint form. *)
type ic =
  | CProd of int * int array
  | CSum of int * int array
  | CEq of int * int
  | CLe of int * int
  | CIn of int * Domain.t
  | CSel of int * int * int array

(* Binary exact-support threshold: domains in our templates are small, so
   exact pruning of v = a*b / v = a+b is affordable and much stronger than
   bounds reasoning. Set to 0 to fall back to pure bounds reasoning (the
   propagation-strength ablation). *)
let default_exact_limit = 10_000

(* Where variable [i]'s live domain lives: a slice of [nw] words at word
   offset [off] of the engine's flat store, bit b meaning [values.(b)] is
   still live. [values] is the frozen initial domain — search only ever
   removes values, so it is a universe for the whole search tree. *)
type layout = { values : int array; off : int; nw : int }

type compiled = {
  names : string array;
  ids : (string, int) Hashtbl.t;
  ics : ic array;
  watchers : int array array;  (* var id -> constraint ids *)
  exact_limit : int;  (* binary exact-support threshold for PROD/SUM *)
  layouts : layout array;
  total_words : int;
  max_nw : int;  (* widest single-variable slice, sizes filter scratch *)
  max_arity : int;
  nvars : int;
  nc : int;
  (* Root fixpoint, computed once at compile time: the initial domains
     propagated to quiescence under the problem's own constraints. Every
     search and every incremental extension starts from a blit of this.
     Mutable only because it is produced by running the engine right
     after the record is built. *)
  mutable root_words : int array;
  mutable root_ok : bool;
}

(* One backtracking engine: flat live-domain store, an undo trail of
   (flat word index, old word) pairs, and reusable propagation scratch.
   Allocated once per solve/draw and reused across every node of that
   search — the per-node [Array.copy doms] of the old engine is gone. *)
type engine = {
  cp : compiled;
  store : int array;
  mutable tr_idx : int array;
  mutable tr_old : int array;
  mutable tr_len : int;
  mutable trailing : bool;  (* root/extras propagation runs untrailed *)
  mutable trail_pushed : int;  (* local tally, flushed to c_trail once *)
  in_queue : bool array;
  queue : int array;  (* ring buffer; in_queue bounds occupancy by nc *)
  mutable q_head : int;
  mutable q_count : int;
  scratch : int array;  (* filter build area, committed after the scan *)
  scratch2 : int array;  (* exact-support value masks over v's universe *)
  mutable changed : int array;  (* vars changed by the current revise *)
  mutable n_changed : int;
  lo_buf : int array;  (* n-ary operand bound snapshots *)
  hi_buf : int array;
  suf_lo : int array;
  suf_hi : int array;
}

let make_engine cp start =
  let store = Array.make cp.total_words 0 in
  Array.blit start 0 store 0 cp.total_words;
  {
    cp;
    store;
    tr_idx = Array.make 64 0;
    tr_old = Array.make 64 0;
    tr_len = 0;
    trailing = false;
    trail_pushed = 0;
    in_queue = Array.make (max cp.nc 1) false;
    (* Ring capacity is the next power of two >= nc so the wrap in
       q_push/q_pop is a mask, not a division. [in_queue] bounds
       occupancy by nc, so the ring never overflows. *)
    queue =
      (let cap = ref 1 in
       while !cap < cp.nc do
         cap := !cap lsl 1
       done;
       Array.make !cap 0);
    q_head = 0;
    q_count = 0;
    scratch = Array.make (max cp.max_nw 1) 0;
    scratch2 = Array.make (max cp.max_nw 1) 0;
    changed = Array.make 16 0;
    n_changed = 0;
    lo_buf = Array.make (cp.max_arity + 1) 0;
    hi_buf = Array.make (cp.max_arity + 1) 0;
    suf_lo = Array.make (cp.max_arity + 2) 0;
    suf_hi = Array.make (cp.max_arity + 2) 0;
  }

let reset e start =
  Array.blit start 0 e.store 0 e.cp.total_words;
  e.tr_len <- 0

let finish_engine e =
  Obs.Counter.add c_trail e.trail_pushed;
  e.trail_pushed <- 0

let write_word e fi w =
  if e.store.(fi) <> w then begin
    if e.trailing then begin
      if e.tr_len = Array.length e.tr_idx then begin
        let cap = 2 * Array.length e.tr_idx in
        let idx = Array.make cap 0 and old = Array.make cap 0 in
        Array.blit e.tr_idx 0 idx 0 e.tr_len;
        Array.blit e.tr_old 0 old 0 e.tr_len;
        e.tr_idx <- idx;
        e.tr_old <- old
      end;
      e.tr_idx.(e.tr_len) <- fi;
      e.tr_old.(e.tr_len) <- e.store.(fi);
      e.tr_len <- e.tr_len + 1;
      e.trail_pushed <- e.trail_pushed + 1
    end;
    e.store.(fi) <- w
  end

let undo_to e mark =
  for i = e.tr_len - 1 downto mark do
    e.store.(e.tr_idx.(i)) <- e.tr_old.(i)
  done;
  e.tr_len <- mark

let push_changed e v =
  if e.n_changed = Array.length e.changed then begin
    let bigger = Array.make (2 * Array.length e.changed) 0 in
    Array.blit e.changed 0 bigger 0 e.n_changed;
    e.changed <- bigger
  end;
  e.changed.(e.n_changed) <- v;
  e.n_changed <- e.n_changed + 1

(* Live-domain reads. All mirror the sorted-array semantics exactly:
   ascending order, [Invalid_argument] on empty bounds. *)

let d_size e v =
  let l = e.cp.layouts.(v) in
  Bitdom.popcount e.store ~off:l.off ~nw:l.nw

let d_min e v =
  let l = e.cp.layouts.(v) in
  match Bitdom.min_bit e.store ~off:l.off ~nw:l.nw with
  | -1 -> invalid_arg "Solver.d_min: empty domain"
  | b -> l.values.(b)

let d_max e v =
  let l = e.cp.layouts.(v) in
  match Bitdom.max_bit e.store ~off:l.off ~nw:l.nw with
  | -1 -> invalid_arg "Solver.d_max: empty domain"
  | b -> l.values.(b)

let d_mem e v x =
  let l = e.cp.layouts.(v) in
  let i = Bitdom.index_of l.values x in
  i >= 0 && Bitdom.mem_bit e.store ~off:l.off i

let d_iter e v f =
  let l = e.cp.layouts.(v) in
  Bitdom.iter_bits (fun b -> f l.values.(b)) e.store ~off:l.off ~nw:l.nw

let d_exists e v p =
  let l = e.cp.layouts.(v) in
  let found = ref false in
  (try
     Bitdom.iter_bits
       (fun b -> if p l.values.(b) then begin
          found := true;
          raise Exit
        end)
       e.store ~off:l.off ~nw:l.nw
   with Exit -> ());
  !found

let d_value e v = if d_size e v = 1 then Some (d_min e v) else None

let live_values e v =
  let l = e.cp.layouts.(v) in
  let n = Bitdom.popcount e.store ~off:l.off ~nw:l.nw in
  let out = Array.make n 0 in
  let k = ref 0 in
  Bitdom.iter_bits
    (fun b ->
      out.(!k) <- l.values.(b);
      incr k)
    e.store ~off:l.off ~nw:l.nw;
  out

exception Wipeout

(* Commit discipline: every revise builds a variable's new live set in
   scratch while reading only committed state, then commits in one pass.
   This reproduces the old [Domain.filter] + [set_dom] live-read
   sequencing exactly, which the aliasing regression tests (v = x * v)
   depend on. Raises [Wipeout] before writing anything if the result is
   empty, like [set_dom] did. *)
let commit_from_scratch e v buf =
  let l = e.cp.layouts.(v) in
  if Bitdom.is_empty_slice buf ~off:0 ~nw:l.nw then raise Wipeout;
  let any = ref false in
  for wi = 0 to l.nw - 1 do
    let fi = l.off + wi in
    if e.store.(fi) <> buf.(wi) then begin
      any := true;
      write_word e fi buf.(wi)
    end
  done;
  if !any then push_changed e v

let commit_filter e v p =
  let l = e.cp.layouts.(v) in
  for wi = 0 to l.nw - 1 do
    let w = ref e.store.(l.off + wi) in
    let base = wi * Bitdom.bits_per_word in
    let out = ref 0 and b = ref 0 in
    while !w <> 0 do
      if !w land 1 = 1 && p l.values.(base + !b) then out := !out lor (1 lsl !b);
      w := !w lsr 1;
      incr b
    done;
    e.scratch.(wi) <- !out
  done;
  if l.nw = 0 then raise Wipeout;
  commit_from_scratch e v e.scratch

(* v = x (unary PROD/SUM and CEq): intersect both with the other. The
   second filter reads the already-narrowed first, so both end at the
   intersection, exactly like the old shared [Domain.inter]. *)
let revise_eq e a b =
  commit_filter e a (fun x -> d_mem e b x);
  commit_filter e b (fun x -> d_mem e a x)

let revise_le e a b =
  let hi = d_max e b in
  commit_filter e a (fun x -> x <= hi);
  let lo = d_min e a in
  commit_filter e b (fun x -> x >= lo)

let revise_in e v cs = commit_filter e v (fun x -> Domain.mem x cs)

let revise_sel e v u vs =
  let n = Array.length vs in
  (* Index domain: valid positions whose source still intersects v. *)
  commit_filter e u (fun i -> i >= 0 && i < n && d_exists e v (fun x -> d_mem e vs.(i) x));
  (* v must lie in the union of the still-selectable sources. *)
  commit_filter e v (fun x -> d_exists e u (fun i -> d_mem e vs.(i) x));
  match d_value e u with
  | Some i ->
      commit_filter e v (fun x -> d_mem e vs.(i) x);
      commit_filter e vs.(i) (fun x -> d_mem e v x)
  | None -> ()

(* Generic bounds propagation for v = fold op over vs, with op monotone
   and all domains non-negative. [inv_lo]/[inv_hi] compute the bounds of
   one operand given bounds of v and the aggregate of the others.

   Operand bounds are snapshotted once and combined through prefix/suffix
   aggregates, making the revise O(k) instead of the old O(k^2) rescan.
   The snapshot can be stale for operands narrowed earlier in this same
   revise; that only weakens individual prunings (still sound), and the
   constraint re-enters the queue whenever one of its variables changes,
   so the propagation fixpoint — where snapshot and live bounds agree —
   is identical to the old engine's. *)
let revise_nary e v vs ~identity ~op ~inv_lo ~inv_hi =
  let k = Array.length vs in
  for i = 0 to k - 1 do
    e.lo_buf.(i) <- d_min e vs.(i);
    e.hi_buf.(i) <- d_max e vs.(i)
  done;
  let lo_all = ref identity and hi_all = ref identity in
  for i = 0 to k - 1 do
    lo_all := op !lo_all e.lo_buf.(i);
    hi_all := op !hi_all e.hi_buf.(i)
  done;
  let lo_all = !lo_all and hi_all = !hi_all in
  commit_filter e v (fun x -> x >= lo_all && x <= hi_all);
  let v_lo = d_min e v and v_hi = d_max e v in
  e.suf_lo.(k) <- identity;
  e.suf_hi.(k) <- identity;
  for i = k - 1 downto 0 do
    e.suf_lo.(i) <- op e.lo_buf.(i) e.suf_lo.(i + 1);
    e.suf_hi.(i) <- op e.hi_buf.(i) e.suf_hi.(i + 1)
  done;
  let pre_lo = ref identity and pre_hi = ref identity in
  for i = 0 to k - 1 do
    let others_lo = op !pre_lo e.suf_lo.(i + 1) in
    let others_hi = op !pre_hi e.suf_hi.(i + 1) in
    let lo = inv_lo v_lo others_hi and hi = inv_hi v_hi others_lo in
    commit_filter e vs.(i) (fun a -> a >= lo && a <= hi);
    pre_lo := op !pre_lo e.lo_buf.(i);
    pre_hi := op !pre_hi e.hi_buf.(i)
  done

(* Exact binary support pruning: mark which of v's universe values are a
   product (resp. sum) of live (a, b) pairs into scratch2, AND it into v,
   then keep only supported values of a and b. Every step reads the live
   store — [v], [a] and [b] may alias the same variable, and filtering a
   stale snapshot can resurrect values pruned moments earlier, making the
   fixpoint oscillate forever (e.g. v = x * v with 0 in both domains). *)
(* Domains are non-negative (an engine-wide assumption, see
   [revise_nary]), so for a fixed [x] the targets [combine x y] are
   nondecreasing as [y] iterates ascending. Each inner loop therefore
   keeps a galloping lower-bound cursor into [v]'s sorted universe
   instead of running a full binary search per pair: [seek] advances the
   cursor to the first index whose value is >= [t] (or [n] if none) in
   O(log gap), and a pair is supported iff the value there equals [t]
   (and, for the keep phases, its bit is still live). *)
let seek (values : int array) n pos t =
  if pos >= n || values.(pos) >= t then pos
  else begin
    let step = ref 1 in
    while pos + !step < n && values.(pos + !step) < t do
      step := !step lsl 1
    done;
    let lo = ref (pos + (!step lsr 1)) and hi = ref (min (pos + !step) (n - 1)) in
    if values.(!hi) < t then n
    else begin
      (* invariant: values.(!lo) < t <= values.(!hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if values.(mid) < t then lo := mid else hi := mid
      done;
      !hi
    end
  end

let revise_exact_binary e v a b combine =
  let lv = e.cp.layouts.(v) in
  let n = Array.length lv.values in
  for wi = 0 to lv.nw - 1 do
    e.scratch2.(wi) <- 0
  done;
  d_iter e a (fun x ->
      let pos = ref 0 in
      d_iter e b (fun y ->
          let i = seek lv.values n !pos (combine x y) in
          pos := i;
          if i < n && lv.values.(i) = combine x y then
            e.scratch2.(i / Bitdom.bits_per_word) <-
              e.scratch2.(i / Bitdom.bits_per_word)
              lor (1 lsl (i mod Bitdom.bits_per_word))));
  for wi = 0 to lv.nw - 1 do
    e.scratch.(wi) <- e.store.(lv.off + wi) land e.scratch2.(wi)
  done;
  if lv.nw = 0 then raise Wipeout;
  commit_from_scratch e v e.scratch;
  commit_filter e a (fun x ->
      let pos = ref 0 in
      d_exists e b (fun y ->
          let t = combine x y in
          let i = seek lv.values n !pos t in
          pos := i;
          i < n && lv.values.(i) = t && Bitdom.mem_bit e.store ~off:lv.off i));
  commit_filter e b (fun y ->
      let pos = ref 0 in
      d_exists e a (fun x ->
          let t = combine x y in
          let i = seek lv.values n !pos t in
          pos := i;
          i < n && lv.values.(i) = t && Bitdom.mem_bit e.store ~off:lv.off i))

let revise_prod e v vs =
  match vs with
  | [| x |] -> revise_eq e v x
  | [| a; b |] when d_size e a * d_size e b <= e.cp.exact_limit ->
      revise_exact_binary e v a b ( * )
  | _ ->
      revise_nary e v vs ~identity:1 ~op:( * )
        ~inv_lo:(fun v_lo others_hi -> if others_hi = 0 then 0 else (v_lo + others_hi - 1) / others_hi)
        ~inv_hi:(fun v_hi others_lo -> if others_lo = 0 then max_int else v_hi / others_lo)

let revise_sum e v vs =
  match vs with
  | [| x |] -> revise_eq e v x
  | [| a; b |] when d_size e a * d_size e b <= e.cp.exact_limit ->
      revise_exact_binary e v a b ( + )
  | _ ->
      revise_nary e v vs ~identity:0 ~op:( + )
        ~inv_lo:(fun v_lo others_hi -> v_lo - others_hi)
        ~inv_hi:(fun v_hi others_lo -> v_hi - others_lo)

let revise e = function
  | CProd (v, vs) -> revise_prod e v vs
  | CSum (v, vs) -> revise_sum e v vs
  | CEq (a, b) -> revise_eq e a b
  | CLe (a, b) -> revise_le e a b
  | CIn (v, cs) -> revise_in e v cs
  | CSel (v, u, vs) -> revise_sel e v u vs

let q_push e ci =
  if not e.in_queue.(ci) then begin
    e.in_queue.(ci) <- true;
    let cap = Array.length e.queue in
    e.queue.((e.q_head + e.q_count) land (cap - 1)) <- ci;
    e.q_count <- e.q_count + 1
  end

let q_pop e =
  let ci = e.queue.(e.q_head) in
  e.q_head <- (e.q_head + 1) land (Array.length e.queue - 1);
  e.q_count <- e.q_count - 1;
  e.in_queue.(ci) <- false;
  ci

let q_clear e =
  while e.q_count > 0 do
    ignore (q_pop e)
  done

let push_watchers e v =
  let ws = e.cp.watchers.(v) in
  for j = 0 to Array.length ws - 1 do
    q_push e ws.(j)
  done

(* Fixpoint propagation over whatever the caller queued. Returns [false]
   on wipeout, leaving the queue empty either way; partially committed
   words are the caller's to undo (trail) or discard. *)
let run_queue e =
  try
    while e.q_count > 0 do
      Obs.Counter.incr c_revise;
      let ci = q_pop e in
      e.n_changed <- 0;
      revise e e.cp.ics.(ci);
      for k = 0 to e.n_changed - 1 do
        push_watchers e e.changed.(k)
      done
    done;
    Obs.Counter.incr c_propagate;
    true
  with Wipeout ->
    Obs.Counter.incr c_wipeouts;
    q_clear e;
    false

let compile ?(exact_limit = default_exact_limit) problem =
  Obs.Counter.incr c_compiles;
  let names = Problem.vars problem in
  let n = Array.length names in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i name -> Hashtbl.replace ids name i) names;
  let id name = Hashtbl.find ids name in
  let ics =
    Problem.constraints problem
    |> List.map (fun c ->
           match c with
           | Cons.Prod (v, vs) -> CProd (id v, Array.of_list (List.map id vs))
           | Cons.Sum (v, vs) -> CSum (id v, Array.of_list (List.map id vs))
           | Cons.Eq (a, b) -> CEq (id a, id b)
           | Cons.Le (a, b) -> CLe (id a, id b)
           | Cons.In (v, cs) -> CIn (id v, Domain.of_list cs)
           | Cons.Select (v, u, vs) -> CSel (id v, id u, Array.of_list (List.map id vs)))
    |> Array.of_list
  in
  let watcher_lists = Array.make n [] in
  Array.iteri
    (fun ci ic ->
      let vars =
        match ic with
        | CProd (v, vs) | CSum (v, vs) -> v :: Array.to_list vs
        | CEq (a, b) | CLe (a, b) -> [ a; b ]
        | CIn (v, _) -> [ v ]
        | CSel (v, u, vs) -> v :: u :: Array.to_list vs
      in
      List.iter
        (fun vid -> watcher_lists.(vid) <- ci :: watcher_lists.(vid))
        (List.sort_uniq compare vars))
    ics;
  let layouts = Array.make n { values = [||]; off = 0; nw = 0 } in
  let off = ref 0 and max_nw = ref 1 in
  Array.iteri
    (fun i name ->
      let values = Array.of_list (Domain.to_list (Problem.domain problem name)) in
      let nw = Bitdom.nwords (Array.length values) in
      layouts.(i) <- { values; off = !off; nw };
      off := !off + nw;
      if nw > !max_nw then max_nw := nw)
    names;
  let max_arity =
    Array.fold_left
      (fun acc ic ->
        match ic with
        | CProd (_, vs) | CSum (_, vs) | CSel (_, _, vs) -> max acc (Array.length vs)
        | _ -> acc)
      1 ics
  in
  let cp =
    {
      names;
      ids;
      ics;
      watchers = Array.map (fun l -> Array.of_list l) watcher_lists;
      exact_limit;
      layouts;
      total_words = !off;
      max_nw = !max_nw;
      max_arity;
      nvars = n;
      nc = Array.length ics;
      root_words = [||];
      root_ok = false;
    }
  in
  let start = Array.make cp.total_words 0 in
  Array.iter
    (fun l -> Bitdom.fill start ~off:l.off ~n:(Array.length l.values))
    layouts;
  let e = make_engine cp start in
  for ci = 0 to cp.nc - 1 do
    q_push e ci
  done;
  cp.root_ok <- run_queue e;
  cp.root_words <- e.store;
  cp

(* Compiled-template cache, keyed by problem physical identity and exact
   limit. CGA offspring all decompose to the same base problem, so one
   compile (and one root propagation) serves a whole tuning run. The
   mutex makes concurrent access safe, but for deterministic
   [solver.compile_cache_hits] totals all our entry points consult the
   cache from sequential caller code only — never inside pool tasks. *)
let cache_cap = 8
let cache : (Problem.t * int * compiled) list ref = ref []
let cache_mutex = Mutex.create ()

let compile_cached ~exact_limit problem =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) @@ fun () ->
  let rec find acc = function
    | [] -> None
    | ((p, el, cp) as entry) :: rest ->
        if p == problem && el = exact_limit then Some (entry, cp, List.rev_append acc rest)
        else find (entry :: acc) rest
  in
  match find [] !cache with
  | Some (entry, cp, rest) ->
      Obs.Counter.incr c_cache_hits;
      cache := entry :: rest;
      cp
  | None ->
      let cp = compile ~exact_limit problem in
      cache := List.filteri (fun i _ -> i < cache_cap) ((problem, exact_limit, cp) :: !cache);
      cp

let is_in_cons = function Cons.In _ -> true | _ -> false

(* Resolve a problem to (compiled template, start words), or [None] when
   propagation alone refutes it. [Problem.with_extra] offspring whose
   extras are all [In] constraints reuse the cached base template: blit
   the base's root fixpoint, apply the [In] filters directly (an [In]
   revise is a one-shot intersection — once applied it stays satisfied as
   domains shrink, so the extras never need to join the watcher graph),
   and re-propagate only the constraints watching a changed variable.
   The result is the same fixpoint a full compile would reach. *)
let prepare ?(exact_limit = default_exact_limit) problem =
  let root, extras = Problem.decompose problem in
  if root == problem then begin
    let cp = compile_cached ~exact_limit problem in
    if cp.root_ok then Some (cp, cp.root_words) else None
  end
  else if List.for_all is_in_cons extras then begin
    let cp = compile_cached ~exact_limit root in
    if not cp.root_ok then None
    else if extras = [] then Some (cp, cp.root_words)
    else begin
      let e = make_engine cp cp.root_words in
      let ok =
        try
          e.n_changed <- 0;
          List.iter
            (fun c ->
              match c with
              | Cons.In (v, cs) ->
                  let vid = Hashtbl.find cp.ids v in
                  let csd = Domain.of_list cs in
                  commit_filter e vid (fun x -> Domain.mem x csd)
              | _ -> assert false)
            extras;
          for k = 0 to e.n_changed - 1 do
            push_watchers e e.changed.(k)
          done;
          run_queue e
        with Wipeout ->
          Obs.Counter.incr c_wipeouts;
          q_clear e;
          false
      in
      if ok then Some (cp, e.store) else None
    end
  end
  else begin
    (* Non-[In] extras: compile the extended problem outright. Such
       problems are one-shot, so they do not enter the cache. *)
    let cp = compile ~exact_limit problem in
    if cp.root_ok then Some (cp, cp.root_words) else None
  end

let extract e =
  let bindings = ref [] in
  Array.iteri
    (fun i name ->
      match d_value e i with
      | Some v -> bindings := (name, v) :: !bindings
      | None -> invalid_arg "Solver.extract: non-singleton domain")
    e.cp.names;
  Assignment.of_list !bindings

exception Give_up

(* Stable move-to-front: same ordering as consing the bias value onto the
   shuffled list with the old engine. *)
let move_to_front values x =
  let j = ref (-1) in
  Array.iteri (fun i v -> if !j < 0 && v = x then j := i) values;
  let j = !j in
  if j > 0 then begin
    for i = j downto 1 do
      values.(i) <- values.(i - 1)
    done;
    values.(0) <- x
  end

(* Unified randomized DFS: [search_biased] of the old engine is the
   [?bias] case. Branching singletons and every propagation write are
   trail-recorded; a failed branch is undone by rewinding to its mark. *)
let search ?(max_fails = 4000) ?bias ~stats rng e =
  let cp = e.cp in
  let fails = ref 0 in
  let pick_var () =
    (* Smallest open domain, random tie-break. *)
    let best = ref (-1) and best_size = ref max_int and ties = ref 0 in
    for i = 0 to cp.nvars - 1 do
      let s = d_size e i in
      if s > 1 then
        if s < !best_size then begin
          best := i;
          best_size := s;
          ties := 1
        end
        else if s = !best_size then begin
          incr ties;
          if Rng.int rng !ties = 0 then best := i
        end
    done;
    if !best < 0 then None else Some !best
  in
  let assign vid x =
    let l = cp.layouts.(vid) in
    let bit = Bitdom.index_of l.values x in
    for wi = 0 to l.nw - 1 do
      let w =
        if wi = bit / Bitdom.bits_per_word then 1 lsl (bit mod Bitdom.bits_per_word) else 0
      in
      write_word e (l.off + wi) w
    done
  in
  let rec dfs () =
    stats.nodes <- stats.nodes + 1;
    Obs.Counter.incr c_nodes;
    match pick_var () with
    | None -> Some (extract e)
    | Some vid ->
        let values = live_values e vid in
        Rng.shuffle rng values;
        (match bias with
        | Some b -> (
            match Assignment.find_opt b cp.names.(vid) with
            | Some v when d_mem e vid v -> move_to_front values v
            | _ -> ())
        | None -> ());
        let rec try_values i =
          if i >= Array.length values then None
          else begin
            let mark = e.tr_len in
            assign vid values.(i);
            push_watchers e vid;
            let ok = run_queue e in
            let result = if ok then dfs () else None in
            match result with
            | Some _ as r -> r
            | None ->
                undo_to e mark;
                stats.fails <- stats.fails + 1;
                Obs.Counter.incr c_fails;
                incr fails;
                if !fails > max_fails then raise Give_up;
                try_values (i + 1)
          end
        in
        try_values 0
  in
  try dfs () with Give_up -> None

let solve_prepared ~max_fails ~max_restarts ~stats ?bias rng cp start =
  let e = make_engine cp start in
  e.trailing <- true;
  let rec attempt k =
    if k > max_restarts then None
    else begin
      if k > 0 then begin
        stats.restarts <- stats.restarts + 1;
        Obs.Counter.incr c_restarts;
        reset e start
      end;
      match search ~max_fails ?bias ~stats rng e with
      | Some a -> Some a
      | None -> attempt (k + 1)
    end
  in
  let r = attempt 0 in
  finish_engine e;
  r

let solve ?(max_fails = 4000) ?(max_restarts = 8) ?exact_limit ?stats rng problem =
  Obs.Counter.incr c_solve;
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  match prepare ?exact_limit problem with
  | None -> None
  | Some (cp, start) -> solve_prepared ~max_fails ~max_restarts ~stats rng cp start

(* Each draw runs on its own generator, split from the parent in index
   order before any search starts. Draw i is therefore a pure function of
   (parent state, i): executing the draws on a domain pool of any size —
   or sequentially — yields byte-identical solution lists. The template
   is prepared once here; each task only allocates its own engine. *)
let rand_sat ?(max_fails = 4000) ?exact_limit ?pool rng problem n =
  if n <= 0 then []
  else
    match prepare ?exact_limit problem with
    | None -> []
    | Some (cp, start) ->
        let rngs = Rng.split_n rng n in
        let draw task_rng =
          Obs.Counter.incr c_draws;
          let stats = fresh_stats () in
          let e = make_engine cp start in
          e.trailing <- true;
          let rec go attempt =
            if attempt >= 3 then None
            else
              match search ~max_fails ~stats task_rng e with
              | Some _ as a -> a
              | None ->
                  reset e start;
                  go (attempt + 1)
          in
          let r = go 0 in
          finish_engine e;
          r
        in
        Heron_util.Pool.map ?pool draw rngs |> Array.to_list |> List.filter_map Fun.id

(* Solve a batch of independent problems with per-task split generators;
   same determinism contract as {!rand_sat}. Templates are prepared
   sequentially in the caller (one compile + root propagation per
   distinct base, cache hits for the rest), then searched on the pool. *)
let solve_all ?(max_fails = 4000) ?(max_restarts = 8) ?exact_limit ?pool rng problems =
  let arr = Array.of_list problems in
  let rngs = Rng.split_n rng (Array.length arr) in
  let preps =
    Array.map
      (fun p ->
        Obs.Counter.incr c_solve;
        prepare ?exact_limit p)
      arr
  in
  let task i =
    match preps.(i) with
    | None -> None
    | Some (cp, start) ->
        solve_prepared ~max_fails ~max_restarts ~stats:(fresh_stats ()) rngs.(i) cp start
  in
  Heron_util.Pool.init ?pool (Array.length arr) task |> Array.to_list

let propagate_domains problem =
  match prepare problem with
  | None -> None
  | Some (cp, start) ->
      Some
        (Array.to_list
           (Array.mapi
              (fun i name ->
                let l = cp.layouts.(i) in
                let vals = ref [] in
                Bitdom.iter_bits
                  (fun b -> vals := l.values.(b) :: !vals)
                  start ~off:l.off ~nw:l.nw;
                (name, Domain.of_list (List.rev !vals)))
              cp.names))

let enumerate ?(limit = 10_000) problem =
  match prepare problem with
  | None -> []
  | Some (cp, start) ->
      let e = make_engine cp start in
      e.trailing <- true;
      let out = ref [] and count = ref 0 in
      let rec dfs () =
        if !count >= limit then ()
        else begin
          let open_var = ref (-1) in
          (try
             for i = 0 to cp.nvars - 1 do
               if d_size e i > 1 then begin
                 open_var := i;
                 raise Exit
               end
             done
           with Exit -> ());
          if !open_var < 0 then begin
            out := extract e :: !out;
            incr count
          end
          else begin
            let vid = !open_var in
            let l = cp.layouts.(vid) in
            Array.iter
              (fun v ->
                let mark = e.tr_len in
                let bit = Bitdom.index_of l.values v in
                for wi = 0 to l.nw - 1 do
                  let w =
                    if wi = bit / Bitdom.bits_per_word then
                      1 lsl (bit mod Bitdom.bits_per_word)
                    else 0
                  in
                  write_word e (l.off + wi) w
                done;
                push_watchers e vid;
                if run_queue e then dfs ();
                undo_to e mark)
              (live_values e vid)
          end
        end
      in
      dfs ();
      finish_engine e;
      List.rev !out

let solve_biased ?(max_fails = 4000) rng problem bias =
  let stats = fresh_stats () in
  match prepare problem with
  | None -> None
  | Some (cp, start) ->
      let e = make_engine cp start in
      e.trailing <- true;
      let r = search ~max_fails ~bias ~stats rng e in
      finish_engine e;
      r
