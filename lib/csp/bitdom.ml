(* 62 bits per word keeps every word a non-negative OCaml int: masks can
   be built with [lsl] without overflowing into the sign bit, and word
   comparisons are plain integer comparisons. *)
let bits_per_word = 62

let nwords n = (n + bits_per_word - 1) / bits_per_word

(* The [int] annotations matter: without them this infers ['a array] and
   every probe of the hot binary search goes through polymorphic
   [compare] — ~2x whole-solver slowdown under profiling. *)
let index_of (values : int array) (v : int) =
  let rec bs lo hi =
    if lo > hi then -1
    else
      let mid = (lo + hi) / 2 in
      if values.(mid) = v then mid
      else if values.(mid) < v then bs (mid + 1) hi
      else bs lo (mid - 1)
  in
  bs 0 (Array.length values - 1)

let full_word = (1 lsl bits_per_word) - 1

let fill store ~off ~n =
  let nw = nwords n in
  for wi = 0 to nw - 1 do
    let bits_here = min bits_per_word (n - (wi * bits_per_word)) in
    store.(off + wi) <- (if bits_here = bits_per_word then full_word else (1 lsl bits_here) - 1)
  done

let popcount store ~off ~nw =
  let c = ref 0 in
  for wi = 0 to nw - 1 do
    let w = ref store.(off + wi) in
    while !w <> 0 do
      w := !w land (!w - 1);
      incr c
    done
  done;
  !c

let is_empty_slice store ~off ~nw =
  let rec go wi = wi >= nw || (store.(off + wi) = 0 && go (wi + 1)) in
  go 0

let mem_bit store ~off i =
  store.(off + (i / bits_per_word)) land (1 lsl (i mod bits_per_word)) <> 0

let min_bit store ~off ~nw =
  let rec word wi =
    if wi >= nw then -1
    else
      let w = store.(off + wi) in
      if w = 0 then word (wi + 1)
      else begin
        let b = ref 0 and x = ref w in
        while !x land 1 = 0 do
          x := !x lsr 1;
          incr b
        done;
        (wi * bits_per_word) + !b
      end
  in
  word 0

let max_bit store ~off ~nw =
  let rec word wi =
    if wi < 0 then -1
    else
      let w = store.(off + wi) in
      if w = 0 then word (wi - 1)
      else begin
        let b = ref (-1) and x = ref w in
        while !x <> 0 do
          x := !x lsr 1;
          incr b
        done;
        (wi * bits_per_word) + !b
      end
  in
  word (nw - 1)

let iter_bits f store ~off ~nw =
  for wi = 0 to nw - 1 do
    let w = ref store.(off + wi) in
    let b = ref (wi * bits_per_word) in
    while !w <> 0 do
      if !w land 1 = 1 then f !b;
      w := !w lsr 1;
      incr b
    done
  done

let equal_slices (a : int array) aoff (b : int array) boff ~nw =
  let rec go wi = wi >= nw || (a.(aoff + wi) = b.(boff + wi) && go (wi + 1)) in
  go 0

type t = { values : int array; words : int array }

let of_domain d =
  let values = Array.of_list (Domain.to_list d) in
  let n = Array.length values in
  let words = Array.make (nwords n) 0 in
  fill words ~off:0 ~n;
  { values; words }

let size t = popcount t.words ~off:0 ~nw:(Array.length t.words)
let is_empty t = is_empty_slice t.words ~off:0 ~nw:(Array.length t.words)

let mem v t =
  let i = index_of t.values v in
  i >= 0 && mem_bit t.words ~off:0 i

let min_value t =
  match min_bit t.words ~off:0 ~nw:(Array.length t.words) with
  | -1 -> invalid_arg "Bitdom.min_value: empty domain"
  | b -> t.values.(b)

let max_value t =
  match max_bit t.words ~off:0 ~nw:(Array.length t.words) with
  | -1 -> invalid_arg "Bitdom.max_value: empty domain"
  | b -> t.values.(b)

let value t = if size t = 1 then Some (min_value t) else None

let iter f t = iter_bits (fun b -> f t.values.(b)) t.words ~off:0 ~nw:(Array.length t.words)

let fold f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
let to_domain t = Domain.of_list (to_list t)

let restrict p t =
  let words = Array.copy t.words in
  iter_bits
    (fun b ->
      if not (p t.values.(b)) then
        words.(b / bits_per_word) <-
          words.(b / bits_per_word) land lnot (1 lsl (b mod bits_per_word)))
    t.words ~off:0 ~nw:(Array.length t.words);
  { t with words }

let inter a b =
  if a.values != b.values && a.values <> b.values then
    invalid_arg "Bitdom.inter: distinct universes";
  { a with words = Array.map2 ( land ) a.words b.words }
