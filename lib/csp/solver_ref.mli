(** Reference CSP solver engine — the pre-overhaul implementation, kept
    verbatim as an executable specification.

    [Solver] is the production engine (compiled-template cache, bitset
    domains, trail-based backtracking); this module is the sorted-array,
    copy-per-node engine it replaced. The check layer
    (lib/check/engine_diff.ml) asserts the two are observationally
    identical — same solutions, same RNG consumption — on random CSPs,
    and bench/bench_solver.ml measures the speedup against it.

    Sequential only: no pool plumbing, no observability counters. Do not
    use outside tests and benchmarks, and do not optimize it. *)

type stats = { mutable nodes : int; mutable fails : int; mutable restarts : int }

val fresh_stats : unit -> stats

val propagate_rounds : int ref
(** Total fixpoint propagations completed since start, for bench
    accounting. Not thread-safe (the engine is sequential). *)

val solve :
  ?max_fails:int ->
  ?max_restarts:int ->
  ?exact_limit:int ->
  ?stats:stats ->
  Heron_util.Rng.t ->
  Problem.t ->
  Assignment.t option

val rand_sat :
  ?max_fails:int ->
  ?exact_limit:int ->
  ?stats:stats ->
  Heron_util.Rng.t ->
  Problem.t ->
  int ->
  Assignment.t list
(** Sequential replay of [Solver.rand_sat]: same per-draw split
    generators, so the solution list is byte-identical to the production
    engine's for the same seed. *)

val solve_all :
  ?max_fails:int ->
  ?max_restarts:int ->
  ?exact_limit:int ->
  ?stats:stats ->
  Heron_util.Rng.t ->
  Problem.t list ->
  Assignment.t option list

val propagate_domains : Problem.t -> (string * Domain.t) list option

val enumerate : ?limit:int -> Problem.t -> Assignment.t list

val solve_biased :
  ?max_fails:int -> Heron_util.Rng.t -> Problem.t -> Assignment.t -> Assignment.t option
