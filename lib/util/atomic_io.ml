let with_file_out ~path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match f oc with
  | () ->
      close_out oc;
      Unix.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_string ~path s = with_file_out ~path (fun oc -> output_string oc s)
