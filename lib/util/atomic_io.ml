module Obs = Heron_obs.Obs

let c_retries = Obs.Counter.make "io.retries"

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (err, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message err))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try Unix.fsync fd
          with Unix.Unix_error (err, _, _) ->
            raise (Sys_error (path ^ ": " ^ Unix.error_message err)))

(* Directories cannot be fsynced on every platform/filesystem; durability
   of the rename is best-effort there, so failures are ignored. *)
let fsync_dir_noerr dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

(* The plain protocol, exactly as it has always been (plus the optional
   fsync): no injector is consulted, let alone constructed. *)
let plain_with_file_out ~fsync ~path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match f oc with
  | () ->
      if fsync then begin
        flush oc;
        (try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error (err, _, _) ->
           close_out_noerr oc;
           remove_noerr tmp;
           raise (Sys_error (tmp ^ ": " ^ Unix.error_message err)))
      end;
      close_out oc;
      Unix.rename tmp path;
      if fsync then fsync_dir_noerr (Filename.dirname path)
  | exception e ->
      close_out_noerr oc;
      remove_noerr tmp;
      raise e

(* The instrumented protocol: the same syscall sequence, with the injector
   consulted at each boundary — content write, fsync (when requested),
   rename. A [Crash] raises [Io_faults.Crashed] with exactly the bytes
   that had persisted by that boundary left on disk; [Fail] mimics the
   plain error contract (temp file removed, target untouched, Sys_error);
   [Torn] silently truncates the temp file and lets the rename proceed —
   the un-fsynced-page-loss failure the checksummed readers must catch. *)
let injected_with_file_out inj ~fsync ~path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match f oc with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      remove_noerr tmp;
      raise e);
  let len = (Unix.stat tmp).Unix.st_size in
  let crash op site ~keep =
    if keep < len then Unix.truncate tmp keep;
    raise (Io_faults.Crashed { path; op; site })
  in
  let site inj = Io_faults.sites_seen inj in
  (match Io_faults.at_site inj ~path ~len ~durable:fsync Io_faults.Write with
  | Io_faults.Proceed -> ()
  | Io_faults.Torn k -> if k < len then Unix.truncate tmp k
  | Io_faults.Fail msg ->
      remove_noerr tmp;
      raise (Sys_error msg)
  | Io_faults.Crash k -> crash Io_faults.Write (site inj - 1) ~keep:k);
  if fsync then begin
    match Io_faults.at_site inj ~path ~len ~durable:true Io_faults.Fsync with
    | Io_faults.Proceed | Io_faults.Torn _ -> fsync_path tmp
    | Io_faults.Fail msg ->
        remove_noerr tmp;
        raise (Sys_error msg)
    | Io_faults.Crash _ -> crash Io_faults.Fsync (site inj - 1) ~keep:len
  end;
  (match Io_faults.at_site inj ~path ~len ~durable:fsync Io_faults.Rename with
  | Io_faults.Proceed | Io_faults.Torn _ -> Unix.rename tmp path
  | Io_faults.Fail msg ->
      remove_noerr tmp;
      raise (Sys_error msg)
  | Io_faults.Crash _ -> crash Io_faults.Rename (site inj - 1) ~keep:len);
  if fsync then fsync_dir_noerr (Filename.dirname path)

let with_file_out ?(fsync = false) ~path f =
  match Io_faults.default () with
  | None -> plain_with_file_out ~fsync ~path f
  | Some inj -> injected_with_file_out inj ~fsync ~path f

let write_string ?fsync ~path s = with_file_out ?fsync ~path (fun oc -> output_string oc s)

(* Bounded retry with exponential backoff for the durability protocols
   (store publish, checkpoint writes): transient failures surface as
   [Sys_error] and are worth one more roll; a simulated crash
   ([Io_faults.Crashed]) is process death and must never be retried. The
   backoff sleeps are microseconds — enough to model the policy without
   slowing a test suite. *)
let with_retry ?(attempts = 3) ~what f =
  let attempts = max 1 attempts in
  let rec go n =
    match f () with
    | v -> v
    | exception Sys_error msg ->
        if n + 1 >= attempts then raise (Sys_error msg)
        else begin
          Obs.Counter.incr c_retries;
          Obs.emit "io_retry"
            [
              ("what", Heron_obs.Json.String what);
              ("attempt", Heron_obs.Json.Int (n + 1));
              ("error", Heron_obs.Json.String msg);
            ];
          Unix.sleepf (50e-6 *. float_of_int (1 lsl n));
          go (n + 1)
        end
  in
  go 0
