(** Deterministic pseudo-random number generation.

    All stochastic components of the reproduction (solvers, searchers,
    measurement jitter) draw from this splittable SplitMix64 generator so
    that every experiment is reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators, advancing [t] [n]
    times. Generator [i] depends only on [t]'s state and [i], making it
    the unit of determinism for parallel fan-out: hand generator [i] to
    task [i] and results are reproducible whatever the execution order. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val state_hex : t -> string
(** The full generator state as 16 hex digits, for checkpoints. *)

val set_state_hex : t -> string -> (unit, string) result
(** [set_state_hex t s] restores a state captured by {!state_hex}; the
    stream then continues exactly where the captured generator stood. *)

val split_at : t -> int -> t
(** [split_at t i] is [(split_n (copy t) (i + 1)).(i)] without materializing
    the array and without advancing [t]: random access into the indexed
    split sequence. The generator-friendly fan-out helper — a property test
    or worker can derive stream [i] from the parent state alone. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t xs k] draws [min k (length xs)] distinct elements. *)
