(** A fixed-size pool of worker domains for data-parallel kernels.

    The pool is built directly on [Domain], [Mutex] and [Condition] (no
    external dependency). A pool of [~domains:n] provides total parallelism
    [n]: the calling domain always participates in its own batches, so
    [n - 1] worker domains are spawned.

    Determinism contract: every combinator assembles its output by task
    index, never by completion order, so for a pure (or per-task-seeded)
    function the result is byte-identical whatever the pool size —
    including the no-pool sequential fallback of the [?pool] variants.
    Parallelism changes wall-clock only, never results. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [max 0 (domains - 1)] worker domains.
    [domains <= 1] yields a pool that runs everything inline on the
    caller. *)

val jobs : t -> int
(** Total parallelism of the pool ([domains] as given to {!create},
    clamped to at least 1). *)

val shutdown : t -> unit
(** Graceful shutdown: workers finish queued tasks, then exit and are
    joined. Idempotent. A pool keeps working after [shutdown] — batches
    simply run inline on the caller. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts it
    down, even when [f] raises. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] computed on the pool with
    chunked scheduling. Results are placed by index. If one or more
    applications raise, every chunk still completes (or aborts at its own
    failing element) and the exception of the lowest-indexed failing
    element is re-raised with its backtrace. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f] with the same scheduling,
    ordering and exception guarantees as {!parallel_map}. *)

val map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** {!parallel_map} when [?pool] is given, [Array.map] otherwise. *)

val init : ?pool:t -> int -> (int -> 'a) -> 'a array
(** {!parallel_init} when [?pool] is given, [Array.init] (evaluated in
    index order) otherwise. *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!map}; preserves order. *)

val set_default : t option -> unit
(** Install (or clear) the process-wide default pool picked up by
    {!resolve}. Entry points ([--jobs]) set this once at startup so the
    whole pipeline benefits without threading a pool everywhere. *)

val default : unit -> t option

val resolve : t option -> t option
(** [resolve pool] is [pool] when [Some _], otherwise the process default.
    The standard idiom for [?pool] parameters deep in the library. *)
