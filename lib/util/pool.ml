module Obs = Heron_obs.Obs

(* Batch/task counters: totals are deterministic for any pool size (a batch
   of n tasks always counts n), while the caller/worker chunk split is
   scheduling-dependent and only describes utilization. *)
let c_batches = Obs.Counter.make "pool.batches"
let c_tasks = Obs.Counter.make "pool.tasks"
let c_chunks_caller = Obs.Counter.make "pool.chunks.caller"
let c_chunks_worker = Obs.Counter.make "pool.chunks.worker"
let g_jobs = Obs.Gauge.make "pool.jobs"

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* new task queued, or shutdown requested *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let jobs t = t.jobs

(* Workers drain the queue even when a shutdown is pending, so in-flight
   batches always complete. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec get () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stop then None
    else begin
      Condition.wait t.cond t.mutex;
      get ()
    end
  in
  let task = get () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      (* Batches catch their own exceptions; a stray one must not kill the
         worker. *)
      (try task () with _ -> ());
      worker_loop t

let create ~domains =
  let jobs = max 1 domains in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body 0 .. body (n-1)] across the pool. Work is split into chunks a
   few times smaller than a fair share so stragglers rebalance; chunks are
   claimed from a shared atomic cursor by the caller and by one helper
   ticket per worker, so the caller always makes progress itself (this is
   what makes nested batches deadlock-free). Completion and failure state
   live in a per-batch mutex/condition, never in the pool-wide one. *)
let parallel_run t n body =
  if n > 0 then begin
    Obs.Counter.incr c_batches;
    Obs.Counter.add c_tasks n;
    if t.workers = [] then begin
      Obs.Counter.incr c_chunks_caller;
      for i = 0 to n - 1 do
        body i
      done
    end
    else begin
      let chunks = min n (t.jobs * 4) in
      let chunk_size = (n + chunks - 1) / chunks in
      let chunks = (n + chunk_size - 1) / chunk_size in
      let cursor = Atomic.make 0 in
      let bm = Mutex.create () and bc = Condition.create () in
      let completed = ref 0 in
      let failure = ref None in
      let run_chunk c =
        let lo = c * chunk_size in
        let hi = min (n - 1) (lo + chunk_size - 1) in
        let i = ref lo in
        (try
           while !i <= hi do
             body !i;
             incr i
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock bm;
           (match !failure with
           | Some (j, _, _) when j <= !i -> ()
           | _ -> failure := Some (!i, e, bt));
           Mutex.unlock bm);
        Mutex.lock bm;
        incr completed;
        if !completed = chunks then Condition.broadcast bc;
        Mutex.unlock bm
      in
      let rec claim chunk_counter =
        let c = Atomic.fetch_and_add cursor 1 in
        if c < chunks then begin
          Obs.Counter.incr chunk_counter;
          run_chunk c;
          claim chunk_counter
        end
      in
      Mutex.lock t.mutex;
      List.iter (fun _ -> Queue.push (fun () -> claim c_chunks_worker) t.queue) t.workers;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      claim c_chunks_caller;
      Mutex.lock bm;
      while !completed < chunks do
        Condition.wait bc bm
      done;
      Mutex.unlock bm;
      match !failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_run t n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_init t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_run t n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map ?pool f xs =
  match pool with None -> Array.map f xs | Some t -> parallel_map t f xs

let init ?pool n f =
  match pool with
  | None ->
      if n = 0 then [||]
      else begin
        let out = Array.make n (f 0) in
        for i = 1 to n - 1 do
          out.(i) <- f i
        done;
        out
      end
  | Some t -> parallel_init t n f

let map_list ?pool f xs = Array.to_list (map ?pool f (Array.of_list xs))

let default_pool = ref None

let set_default p =
  default_pool := p;
  Obs.Gauge.set g_jobs (match p with Some t -> float_of_int t.jobs | None -> 1.0)
let default () = !default_pool
let resolve = function Some _ as p -> p | None -> default ()
