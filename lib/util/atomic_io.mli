(** Crash-safe file writes: content lands in [path ^ ".tmp"] and is
    renamed over [path] only once complete, so a reader never observes a
    truncated file and a killed writer leaves the previous version (or
    nothing) behind — never garbage. Used for benchmark JSON reports,
    search checkpoints and the observability journal. *)

val write_string : path:string -> string -> unit
(** [write_string ~path s] atomically replaces the contents of [path]
    with [s] (write to [path ^ ".tmp"], flush, rename). *)

val with_file_out : path:string -> (out_channel -> unit) -> unit
(** [with_file_out ~path f] hands [f] a channel on [path ^ ".tmp"] and
    renames over [path] when [f] returns. On exception the temp file is
    removed and [path] is untouched. *)
