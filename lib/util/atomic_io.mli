(** Crash-safe file writes: content lands in [path ^ ".tmp"] and is
    renamed over [path] only once complete, so a reader never observes a
    truncated file and a killed writer leaves the previous version (or
    nothing) behind — never garbage. Used for benchmark JSON reports,
    search checkpoints, the observability journal, library saves and the
    serve store.

    {2 Durability contract}

    By default the protocol is {e atomic but not durable}: after a
    successful return the new content is visible to every subsequent
    reader, but an OS crash (power loss) before the kernel flushes its
    caches may tear or lose it. With [~fsync:true] the temp file is
    fsynced before the rename and the parent directory after it
    (best-effort on the directory), so a returned write additionally
    survives power loss untorn. The serve store's manifests/snapshots and
    the tuning-queue checkpoints write with [~fsync:true]; hot-loop
    artifacts (search checkpoints, traces, bench reports) stay
    non-durable, where the deterministic torn-write injection of
    {!Io_faults} can exercise the readers' checksum/recovery paths.

    When a process-default {!Io_faults} injector is installed, every write
    consults it at each syscall boundary (write, fsync, rename); with no
    injector (the default) nothing is constructed or consulted and the
    protocol is byte-identical to the uninstrumented one. *)

val write_string : ?fsync:bool -> path:string -> string -> unit
(** [write_string ~path s] atomically replaces the contents of [path]
    with [s] (write to [path ^ ".tmp"], flush, rename). [~fsync:true]
    additionally makes the replacement durable before returning. *)

val with_file_out : ?fsync:bool -> path:string -> (out_channel -> unit) -> unit
(** [with_file_out ~path f] hands [f] a channel on [path ^ ".tmp"] and
    renames over [path] when [f] returns. On exception — from [f], from a
    real I/O error, or from an injected fault — the temp file is removed
    and [path] is untouched, except for {!Io_faults.Crashed}, which leaves
    disk exactly as the simulated death would. *)

val with_retry : ?attempts:int -> what:string -> (unit -> 'a) -> 'a
(** [with_retry ~what f] runs [f], retrying a [Sys_error] (transient
    ENOSPC/EIO, injected or real) up to [attempts] times total (default 3)
    with exponential microsecond backoff, counting [io.retries] and
    emitting an [io_retry] journal event per retry. The last error is
    re-raised when attempts are exhausted. {!Io_faults.Crashed} is never
    caught: a simulated process death terminates the protocol like a real
    one would. *)
