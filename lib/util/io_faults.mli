(** Deterministic fault injection for the storage (write) path.

    Real deployments lose libraries to the file system, not just to flaky
    boards: disks fill (ENOSPC), writes and fsyncs error (EIO), un-synced
    data tears on power loss, renames fail, and processes die between any
    two syscalls. This module injects exactly those failures under
    {!Atomic_io} (and, for event drops, under the Obs journal writer),
    keyed purely on [(fault seed, path, site op, attempt)] via stable
    hashing — {e zero} RNG state is consumed, so a storage-fault campaign
    is a pure function of its spec plus the write history, identical for
    any [--jobs] value, and a spec of all-zero rates is byte-for-byte
    inert.

    Beyond probabilistic rates, two deterministic modes drive the
    crash-point explorer in [lib/check/crash_props.ml]:
    - [record]: inject nothing, count every I/O site encountered;
    - [crash_at=N]: simulate process death at exactly the N-th site. *)

type spec = {
  seed : int;  (** fault-universe seed; independent of the search seed *)
  enospc : float;  (** transient per-write ENOSPC probability *)
  eio : float;
      (** transient per-write/per-fsync EIO probability; also the journal
          event-drop probability *)
  torn : float;
      (** probability that a {e non-durable} write silently keeps only a
          prefix of its content (page-cache loss without fsync). Writes
          issued with [~fsync:true] are immune — that is the durability
          contract. *)
  rename_fail : float;  (** transient rename failure probability *)
  crash : float;  (** per-site simulated-process-death probability *)
  persistent : float;
      (** fraction of paths for which {e every} write fails with ENOSPC
          (a full disk), keyed on the path alone — drives the serve
          daemon's degraded read-only mode *)
  crash_at : int option;
      (** deterministic mode: simulate process death at exactly this
          global site index (0-based, in encounter order); all rates are
          ignored *)
  record : bool;  (** site-recording mode: inject nothing, count sites *)
}

val zero : spec
(** All rates zero, no crash point, not recording: injects nothing. *)

(** The write-protocol position being executed. Each execution of one of
    these positions is one {e site} — one potential crash point. *)
type op = Write  (** content lands in the temp file *)
        | Fsync  (** the temp file is made durable *)
        | Rename  (** the temp file replaces the target *)

exception Crashed of { path : string; op : op; site : int }
(** Simulated process death at a syscall boundary: everything before the
    boundary persisted, nothing after. Must never be caught by retry
    logic — only a crash-point harness (or a binary's top level, which
    converts it to exit 3) may observe it. *)

(** What the injector decides for one site. *)
type action =
  | Proceed  (** execute the syscall normally *)
  | Torn of int  (** report success but persist only the first [k] bytes *)
  | Fail of string  (** raise [Sys_error] with this message *)
  | Crash of int
      (** simulated process death; for a [Write] site the first [k] bytes
          of the content persist in the temp file *)

type t
(** An injector instance: a spec plus the site counter and per-(path, op)
    attempt counts. *)

val create : spec -> t

val spec : t -> spec
val sites_seen : t -> int
(** Total I/O sites encountered so far, in every mode — after a
    [record]-mode run this is the crash-point count [N]; replaying with
    [crash_at = i] for each [i < N] visits every boundary exhaustively. *)

val at_site : t -> path:string -> ?len:int -> ?durable:bool -> op -> action
(** Consult the injector at one site. [len] is the content length (bounds
    torn/crash prefixes); [durable] marks an fsynced write, which torn
    faults never hit. Allocates the site index as a side effect, so call
    exactly once per executed protocol position. *)

val parse : string -> (spec option, string) result
(** Parse an [--io-faults] spec: [off]/[none]/[""] for [Ok None],
    [record], or comma-separated [key=value] pairs over [seed], [enospc],
    [eio], [torn], [rename], [crash], [persistent], [crash_at], e.g.
    [seed=3,enospc=0.1,torn=0.2] or [crash_at=7]. Rates must lie in
    [0, 1]. *)

val to_string : spec -> string
(** Canonical rendering; [parse (to_string s) = Ok (Some s)]. *)

val set_default : t option -> unit
(** Install a process-default injector ([--io-faults] on the binaries):
    {!Atomic_io} consults it on every write, and the Obs journal
    write-fault hook is installed/cleared to match. With [None] (the
    default) no injector exists and the write path is byte-identical to a
    build without this module. *)

val default : unit -> t option
