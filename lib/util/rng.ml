type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  (* Explicit loop: the parent must advance in index order, so task i's
     stream is a function of (seed, i) alone — never of Array.init's
     unspecified evaluation order or of who executes the task. *)
  let out = Array.make n t in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

let copy t = { state = t.state }

(* The whole generator state is one int64; a fixed-width hex rendering
   round-trips it exactly, so checkpoints can freeze and restore a search's
   random stream mid-run. *)
let state_hex t = Printf.sprintf "%016Lx" t.state

let set_state_hex t s =
  if String.length s <> 16 then Error (Printf.sprintf "Rng state %S: expected 16 hex digits" s)
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v ->
        t.state <- v;
        Ok ()
    | None -> Error (Printf.sprintf "Rng state %S: not hexadecimal" s)

let split_at t i =
  if i < 0 then invalid_arg "Rng.split_at: negative index";
  (* Random access into the split_n sequence: advance a copy of the parent
     past the first [i] splits, then take the next one. The parent is not
     advanced, so tasks can derive their own generator from (parent, index)
     without materializing the whole array. *)
  let c = copy t in
  for _ = 1 to i do
    ignore (bits64 c)
  done;
  split c

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays positive. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo + int t (hi - lo + 1)

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  if n < 0 then invalid_arg "Rng.permutation: negative size";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample t xs k =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)
