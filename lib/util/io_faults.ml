module Obs = Heron_obs.Obs

type spec = {
  seed : int;
  enospc : float;
  eio : float;
  torn : float;
  rename_fail : float;
  crash : float;
  persistent : float;
  crash_at : int option;
  record : bool;
}

let zero =
  {
    seed = 0;
    enospc = 0.0;
    eio = 0.0;
    torn = 0.0;
    rename_fail = 0.0;
    crash = 0.0;
    persistent = 0.0;
    crash_at = None;
    record = false;
  }

type op = Write | Fsync | Rename

let op_tag = function Write -> "write" | Fsync -> "fsync" | Rename -> "rename"

exception Crashed of { path : string; op : op; site : int }

let () =
  Printexc.register_printer (function
    | Crashed { path; op; site } ->
        Some
          (Printf.sprintf "Io_faults.Crashed(path=%s, op=%s, site=%d)" path (op_tag op) site)
    | _ -> None)

type action =
  | Proceed
  | Torn of int
  | Fail of string
  | Crash of int

type t = {
  spec : spec;
  sites : int Atomic.t;
  attempts : (string, int) Hashtbl.t;
  attempts_mutex : Mutex.t;
}

let create spec =
  { spec; sites = Atomic.make 0; attempts = Hashtbl.create 64; attempts_mutex = Mutex.create () }

let spec t = t.spec
let sites_seen t = Atomic.get t.sites

let c_injected = Obs.Counter.make "io.injected"

(* Per-(path, op) execution count: the [attempt] of the hash key, so a
   bounded retry of the same write re-rolls its fate instead of replaying
   the identical decision forever. *)
let attempt_of t ~path op =
  Mutex.lock t.attempts_mutex;
  let key = path ^ "\x00" ^ op_tag op in
  let n = match Hashtbl.find_opt t.attempts key with Some n -> n | None -> 0 in
  Hashtbl.replace t.attempts key (n + 1);
  Mutex.unlock t.attempts_mutex;
  n

(* Every decision is a threshold test on a stable hash of the full context
   plus a tag naming the draw — the same zero-RNG scheme as Dla.Faults, so
   a fault campaign is a pure function of (spec, write history). *)
let roll s ~path ~attempt op tag =
  Hashing.unit_float (Printf.sprintf "io:%d:%s:%s:%d:%s" s.seed path (op_tag op) attempt tag)

(* Bytes that survive a torn or crashed write: any prefix of the content,
   chosen deterministically from the same hash universe. *)
let keep_bytes s ~path ~attempt op ~len =
  if len <= 0 then 0
  else
    int_of_float (roll s ~path ~attempt op "keep" *. float_of_int (len + 1)) |> min len

let enospc_msg path = path ^ ": No space left on device (injected)"
let eio_msg path = path ^ ": Input/output error (injected)"

let at_site t ~path ?(len = 0) ?(durable = false) op =
  let site = Atomic.fetch_and_add t.sites 1 in
  let s = t.spec in
  if s.record then Proceed
  else
    match s.crash_at with
    | Some n -> if site = n then Crash (keep_bytes s ~path ~attempt:0 op ~len) else Proceed
    | None ->
        if
          s.enospc = 0.0 && s.eio = 0.0 && s.torn = 0.0 && s.rename_fail = 0.0 && s.crash = 0.0
          && s.persistent = 0.0
        then Proceed
        else begin
          let attempt = attempt_of t ~path op in
          let injected a =
            Obs.Counter.incr c_injected;
            a
          in
          (* Persistent faults model a full disk: keyed on the path alone,
             every attempt at every site of that path fails the same way. *)
          if
            s.persistent > 0.0
            && Hashing.unit_float (Printf.sprintf "io:%d:%s:persistent" s.seed path)
               < s.persistent
          then injected (Fail (enospc_msg path))
          else if s.crash > 0.0 && roll s ~path ~attempt op "crash" < s.crash then
            injected (Crash (keep_bytes s ~path ~attempt op ~len))
          else
            match op with
            | Write ->
                if s.enospc > 0.0 && roll s ~path ~attempt op "enospc" < s.enospc then
                  injected (Fail (enospc_msg path))
                else if s.eio > 0.0 && roll s ~path ~attempt op "eio" < s.eio then
                  injected (Fail (eio_msg path))
                else if
                  (* A torn write models page-cache loss behind a write that
                     was never fsynced; durable writes are immune, which is
                     exactly the contract [Atomic_io]'s [?fsync] documents. *)
                  (not durable) && s.torn > 0.0 && roll s ~path ~attempt op "torn" < s.torn
                then injected (Torn (keep_bytes s ~path ~attempt op ~len))
                else Proceed
            | Fsync ->
                if s.eio > 0.0 && roll s ~path ~attempt op "eio" < s.eio then
                  injected (Fail (eio_msg path))
                else Proceed
            | Rename ->
                if s.rename_fail > 0.0 && roll s ~path ~attempt op "rename" < s.rename_fail
                then injected (Fail (eio_msg path))
                else Proceed
        end

(* ---------- spec parsing ---------- *)

let to_string s =
  if s.record then "record"
  else
    match s.crash_at with
    | Some n -> Printf.sprintf "crash_at=%d" n
    | None ->
        Printf.sprintf "seed=%d,enospc=%g,eio=%g,torn=%g,rename=%g,crash=%g,persistent=%g"
          s.seed s.enospc s.eio s.torn s.rename_fail s.crash s.persistent

let parse str =
  let str = String.trim str in
  match String.lowercase_ascii str with
  | "" | "off" | "none" -> Ok None
  | "record" -> Ok (Some { zero with record = true })
  | _ -> (
      let parse_field acc part =
        match acc with
        | Error _ as e -> e
        | Ok s -> (
            match String.index_opt part '=' with
            | None -> Error (Printf.sprintf "io-fault spec: %S is not key=value" part)
            | Some i -> (
                let k = String.trim (String.sub part 0 i) in
                let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
                let rate set =
                  match float_of_string_opt v with
                  | Some f when Float.is_finite f && f >= 0.0 && f <= 1.0 -> Ok (set f)
                  | Some f when Float.is_finite f ->
                      Error (Printf.sprintf "io-fault spec: %s=%g out of [0, 1]" k f)
                  | _ -> Error (Printf.sprintf "io-fault spec: %s=%S is not a number" k v)
                in
                match k with
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some n -> Ok { s with seed = n }
                    | None ->
                        Error (Printf.sprintf "io-fault spec: seed=%S is not an integer" v))
                | "crash_at" -> (
                    match int_of_string_opt v with
                    | Some n when n >= 0 -> Ok { s with crash_at = Some n }
                    | _ ->
                        Error
                          (Printf.sprintf
                             "io-fault spec: crash_at=%S is not a non-negative integer" v))
                | "enospc" -> rate (fun f -> { s with enospc = f })
                | "eio" -> rate (fun f -> { s with eio = f })
                | "torn" -> rate (fun f -> { s with torn = f })
                | "rename" -> rate (fun f -> { s with rename_fail = f })
                | "crash" -> rate (fun f -> { s with crash = f })
                | "persistent" -> rate (fun f -> { s with persistent = f })
                | _ ->
                    Error
                      (Printf.sprintf
                         "io-fault spec: unknown key %S \
                          (seed|enospc|eio|torn|rename|crash|persistent|crash_at)"
                         k)))
      in
      match List.fold_left parse_field (Ok zero) (String.split_on_char ',' str) with
      | Ok s -> Ok (Some s)
      | Error _ as e -> e)

(* ---------- process default ---------- *)

(* The journal is observability, not durability: under an injected write
   fault Obs drops the event and counts it, so the hook only needs a
   boolean. Keyed on a per-journal sequence number so one unlucky event
   never condemns the rest of the stream. *)
let journal_hook s =
  if s.record || s.crash_at <> None || s.eio = 0.0 then None
  else
    Some
      (fun ~path ~seq ->
        Hashing.unit_float (Printf.sprintf "io:%d:%s:journal:%d" s.seed path seq) < s.eio)

let default_injector = ref None

let set_default t =
  default_injector := t;
  Obs.set_journal_write_fault
    (match t with None -> None | Some t -> journal_hook t.spec)

let default () = !default_injector
