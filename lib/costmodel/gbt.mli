(** Gradient-boosted regression trees with squared loss — the from-scratch
    stand-in for the XGBoost model the paper employs. The fitted ensemble
    is compiled into one flat struct-of-arrays (all trees' pre-order nodes
    concatenated into shared [feat]/[bin]/[left]/[right]/[value] arrays),
    so prediction walks a few contiguous kilobytes instead of
    pointer-linked nodes. Fit and predict are byte-identical to the frozen
    {!Gbt_ref} oracle. *)

type params = {
  n_trees : int;
  learning_rate : float;
  tree : Tree.params;
}

val default_params : params

type t

val fit :
  ?params:params ->
  ?pool:Heron_util.Pool.t ->
  n_bins:int array ->
  Fmat.t ->
  float array ->
  t
(** [fit ~n_bins m ys] boosts on the first [Fmat.n_rows m] rows against
    [ys] (extra entries ignored). With [?pool], each round's per-sample
    residual predictions fan out; the ensemble is identical for any pool
    size. @raise Invalid_argument on empty data. *)

val predict : t -> int array -> float
val predict_row : t -> Fmat.t -> int -> float

val predict_batch_into : ?pool:Heron_util.Pool.t -> t -> Fmat.t -> float array -> unit
(** [predict_batch_into ?pool t m out] writes the prediction for row [r]
    into [out.(r)] for every row of [m] — the caller owns (and reuses)
    the output buffer across batches. Optionally fanned out across the
    pool (disjoint per-row stores, deterministic).
    @raise Invalid_argument when [out] is shorter than [Fmat.n_rows m]. *)

val feature_gains : t -> float array
(** Per-feature total gain across the ensemble (XGBoost-style
    importance). *)

val n_trees : t -> int

val dump : t -> string
(** Canonical serialization (floats as ["%h"]), format shared with
    {!Gbt_ref.dump}: byte-equal dumps mean byte-identical fitted
    models. *)
