(** Gradient-boosted regression trees with squared loss — the from-scratch
    stand-in for the XGBoost model the paper employs. *)

type params = {
  n_trees : int;
  learning_rate : float;
  tree : Tree.params;
}

val default_params : params

type t

val fit :
  ?params:params ->
  ?pool:Heron_util.Pool.t ->
  n_bins:int array ->
  int array array ->
  float array ->
  t
(** With [?pool], each boosting round parallelizes the per-feature split
    scan and the residual update; the ensemble is identical for any pool
    size. *)

val predict : t -> int array -> float

val predict_batch : ?pool:Heron_util.Pool.t -> t -> int array array -> float array
(** Batch prediction, optionally fanned out across a domain pool; output
    order matches input order. *)

val feature_gains : t -> float array
(** Per-feature total gain across the ensemble (XGBoost-style
    importance). *)

val n_trees : t -> int
