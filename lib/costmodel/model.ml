module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs

let c_fit_calls = Obs.Counter.make "costmodel.fit_calls"
let c_fit_ns = Obs.Counter.make "costmodel.fit_ns"
let c_predict_calls = Obs.Counter.make "costmodel.predict_calls"
let c_predict_ns = Obs.Counter.make "costmodel.predict_ns"
let c_record_calls = Obs.Counter.make "costmodel.record_calls"
let c_predict_rows = Obs.Counter.make "costmodel.predict_rows"

(* Wall-clock a cold-path call into a calls/ns counter pair (these run once
   per CGA generation, so the two clock reads are negligible). *)
let timed_count c_calls c_ns f =
  let t0 = Obs.Clock.now_ns () in
  let x = f () in
  Obs.Counter.incr c_calls;
  Obs.Counter.add c_ns (Obs.Clock.now_ns () - t0);
  x

(* The training window lives in a fixed ring: [window] flat byte rows plus
   a float target per slot. [next] is the slot the next [record] writes;
   the most recent sample sits at [next - 1] (mod window). Inserting is
   O(n_features) regardless of how full the window is — the pre-overhaul
   list window paid an O(window) [List.filteri] rebuild per insert once
   full. *)
type t = {
  features : Features.t;
  gbt_params : Gbt.params;
  window : int;
  nf : int;
  ring : Fmat.t;  (* always [window] rows *)
  ring_y : float array;
  mutable next : int;
  mutable count : int;  (* samples currently held: min(total recorded, window) *)
  mutable ensemble : Gbt.t option;
  fit_m : Fmat.t;  (* refit scratch, rows ordered most recent first *)
  fit_y : float array;
  pred_m : Fmat.t;  (* batch-prediction scratch, reused across generations *)
  mutable pred_out : float array;  (* reused prediction output buffer *)
  rec_m : Fmat.t;  (* batched-record binning scratch *)
}

let create ?(gbt_params = Gbt.default_params) ?(window = 512) problem =
  let features = Features.of_problem problem in
  let window = max 1 window in
  let nf = Features.n_features features in
  let ring = Fmat.create ~capacity:window ~n_features:nf () in
  Fmat.set_rows ring window;
  {
    features;
    gbt_params;
    window;
    nf;
    ring;
    ring_y = Array.make window 0.0;
    next = 0;
    count = 0;
    ensemble = None;
    fit_m = Fmat.create ~capacity:window ~n_features:nf ();
    fit_y = Array.make window 0.0;
    pred_m = Fmat.create ~n_features:nf ();
    pred_out = [||];
    rec_m = Fmat.create ~n_features:nf ();
  }

let commit_row t src r score =
  Obs.Counter.incr c_record_calls;
  Fmat.blit_row src r t.ring t.next;
  t.ring_y.(t.next) <- score;
  t.next <- (t.next + 1) mod t.window;
  if t.count < t.window then t.count <- t.count + 1

let record t a score =
  Obs.Counter.incr c_record_calls;
  Features.bin_row t.features a t.ring t.next;
  t.ring_y.(t.next) <- score;
  t.next <- (t.next + 1) mod t.window;
  if t.count < t.window then t.count <- t.count + 1

let record_row = commit_row

let record_batch ?pool t obs =
  (* Bin every observation on the pool (disjoint rows of the scratch
     matrix), then commit to the ring sequentially in list order — the
     ring bytes and counters end up identical to iterated [record]. *)
  let obs = Array.of_list obs in
  let n = Array.length obs in
  Fmat.set_rows t.rec_m n;
  ignore
    (Heron_util.Pool.init ?pool n (fun r ->
         Features.bin_row t.features (fst obs.(r)) t.rec_m r));
  for r = 0 to n - 1 do
    commit_row t t.rec_m r (snd obs.(r))
  done

let featurize_row t a m r = Features.bin_row t.features a m r

(* Slot of the k-th most recent sample (k = 0 is the newest). *)
let slot t k = ((t.next - 1 - k) mod t.window + t.window) mod t.window

let refit ?pool t =
  if t.count >= 8 then
    timed_count c_fit_calls c_fit_ns (fun () ->
        Obs.with_span "costmodel.fit" (fun () ->
            (* Fit on most-recent-first rows — the exact sample order the
               pre-overhaul list window trained in. *)
            Fmat.set_rows t.fit_m t.count;
            for k = 0 to t.count - 1 do
              let s = slot t k in
              Fmat.blit_row t.ring s t.fit_m k;
              t.fit_y.(k) <- t.ring_y.(s)
            done;
            t.ensemble <-
              Some
                (Gbt.fit ~params:t.gbt_params ?pool
                   ~n_bins:(Features.n_bins t.features) t.fit_m t.fit_y)))

let trained t = t.ensemble <> None

let predict t a =
  match t.ensemble with
  | None -> 0.0
  | Some g -> Gbt.predict g (Features.binned t.features a)

let predict_batch ?pool t assignments =
  (* The untrained path counts too, so traces distinguish "cheap because
     untrained" from "never called". *)
  timed_count c_predict_calls c_predict_ns (fun () ->
      Obs.Counter.add c_predict_rows (List.length assignments);
      match t.ensemble with
      | None -> List.map (fun _ -> 0.0) assignments
      | Some g ->
          (* Batch-bin into the reused flat matrix, then walk the compiled
             ensemble over all rows into the reused output buffer. Scoring
             fans out across the pool by row index; order is preserved. *)
          let n = List.length assignments in
          Fmat.set_rows t.pred_m n;
          List.iteri (fun r a -> Features.bin_row t.features a t.pred_m r) assignments;
          if Array.length t.pred_out < n then t.pred_out <- Array.make n 0.0;
          Gbt.predict_batch_into ?pool g t.pred_m t.pred_out;
          List.init n (fun r -> t.pred_out.(r)))

let predict_gather ?pool t src rows n out =
  (* Zero-copy ranking entry: [rows.(0 .. n-1)] index pre-binned feature
     rows of [src] (built once per assignment with {!featurize_row}), so
     scoring a population is row blits plus the compiled ensemble — no
     per-candidate binning, lists or result allocation. Same counters and
     untrained semantics as {!predict_batch}. *)
  timed_count c_predict_calls c_predict_ns (fun () ->
      Obs.Counter.add c_predict_rows n;
      match t.ensemble with
      | None -> Array.fill out 0 n 0.0
      | Some g ->
          Fmat.set_rows t.pred_m n;
          for r = 0 to n - 1 do
            Fmat.blit_row src rows.(r) t.pred_m r
          done;
          Gbt.predict_batch_into ?pool g t.pred_m out)

let importance t =
  match t.ensemble with
  | None -> []
  | Some g ->
      let gains = Gbt.feature_gains g in
      let names = Features.names t.features in
      let pairs = Array.to_list (Array.mapi (fun i n -> (n, gains.(i))) names) in
      List.sort (fun (_, a) (_, b) -> Float.compare b a) pairs

let key_variables t k =
  let ranked = importance t in
  let positive = List.filter (fun (_, g) -> g > 0.0) ranked in
  let chosen = List.filteri (fun i _ -> i < k) positive |> List.map fst in
  if chosen <> [] then chosen
  else
    (* Untrained model: deterministic fallback. *)
    Array.to_list (Features.names t.features) |> List.filteri (fun i _ -> i < k)

let n_samples t = t.count

let n_features t = t.nf

let layout_ok t bins =
  Array.length bins = t.nf
  &&
  let nb = Features.n_bins t.features in
  let ok = ref true in
  Array.iteri (fun i b -> if b < 0 || b >= nb.(i) then ok := false) bins;
  !ok

let samples t = List.init t.count (fun k -> (Fmat.row t.ring (slot t k), t.ring_y.(slot t k)))

let restore t data =
  (* Keep the [window] most recent entries ([data] is most recent first),
     placing them so the ring's recency order reproduces the list's. *)
  let data = List.filteri (fun i _ -> i < t.window) data in
  let n = List.length data in
  t.count <- n;
  t.next <- n mod t.window;
  List.iteri
    (fun k (bins, y) ->
      let s = slot t k in
      Array.iteri (fun f v -> Fmat.set t.ring s f v) bins;
      t.ring_y.(s) <- y)
    data;
  t.ensemble <- None
