module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t = {
  features : Features.t;
  gbt_params : Gbt.params;
  window : int;
  mutable data : (int array * float) list;  (* most recent first *)
  mutable count : int;
  mutable ensemble : Gbt.t option;
}

let create ?(gbt_params = Gbt.default_params) ?(window = 512) problem =
  {
    features = Features.of_problem problem;
    gbt_params;
    window;
    data = [];
    count = 0;
    ensemble = None;
  }

let record t a score =
  t.data <- (Features.binned t.features a, score) :: t.data;
  t.count <- t.count + 1;
  if t.count > t.window then begin
    t.data <- List.filteri (fun i _ -> i < t.window) t.data;
    t.count <- t.window
  end

let refit ?pool t =
  if t.count >= 8 then begin
    let xs = Array.of_list (List.map fst t.data) in
    let ys = Array.of_list (List.map snd t.data) in
    t.ensemble <-
      Some (Gbt.fit ~params:t.gbt_params ?pool ~n_bins:(Features.n_bins t.features) xs ys)
  end

let trained t = t.ensemble <> None

let predict t a =
  match t.ensemble with
  | None -> 0.0
  | Some g -> Gbt.predict g (Features.binned t.features a)

let predict_batch ?pool t assignments =
  match t.ensemble with
  | None -> List.map (fun _ -> 0.0) assignments
  | Some g ->
      (* Binning and ensemble evaluation are pure per-assignment reads, so
         the whole scoring pass fans out; order is preserved. *)
      Heron_util.Pool.map_list ?pool
        (fun a -> Gbt.predict g (Features.binned t.features a))
        assignments

let importance t =
  match t.ensemble with
  | None -> []
  | Some g ->
      let gains = Gbt.feature_gains g in
      let names = Features.names t.features in
      let pairs = Array.to_list (Array.mapi (fun i n -> (n, gains.(i))) names) in
      List.sort (fun (_, a) (_, b) -> compare b a) pairs

let key_variables t k =
  let ranked = importance t in
  let positive = List.filter (fun (_, g) -> g > 0.0) ranked in
  let chosen = List.filteri (fun i _ -> i < k) positive |> List.map fst in
  if chosen <> [] then chosen
  else
    (* Untrained model: deterministic fallback. *)
    Array.to_list (Features.names t.features) |> List.filteri (fun i _ -> i < k)

let n_samples t = t.count
