module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs

let c_fit_calls = Obs.Counter.make "costmodel.fit_calls"
let c_fit_ns = Obs.Counter.make "costmodel.fit_ns"
let c_predict_calls = Obs.Counter.make "costmodel.predict_calls"
let c_predict_ns = Obs.Counter.make "costmodel.predict_ns"

(* Wall-clock a cold-path call into a calls/ns counter pair (these run once
   per CGA generation, so the two clock reads are negligible). *)
let timed_count c_calls c_ns f =
  let t0 = Obs.Clock.now_ns () in
  let x = f () in
  Obs.Counter.incr c_calls;
  Obs.Counter.add c_ns (Obs.Clock.now_ns () - t0);
  x

type t = {
  features : Features.t;
  gbt_params : Gbt.params;
  window : int;
  mutable data : (int array * float) list;  (* most recent first *)
  mutable count : int;
  mutable ensemble : Gbt.t option;
}

let create ?(gbt_params = Gbt.default_params) ?(window = 512) problem =
  {
    features = Features.of_problem problem;
    gbt_params;
    window;
    data = [];
    count = 0;
    ensemble = None;
  }

let record t a score =
  t.data <- (Features.binned t.features a, score) :: t.data;
  t.count <- t.count + 1;
  if t.count > t.window then begin
    t.data <- List.filteri (fun i _ -> i < t.window) t.data;
    t.count <- t.window
  end

let refit ?pool t =
  if t.count >= 8 then
    timed_count c_fit_calls c_fit_ns (fun () ->
        Obs.with_span "costmodel.fit" (fun () ->
            let xs = Array.of_list (List.map fst t.data) in
            let ys = Array.of_list (List.map snd t.data) in
            t.ensemble <-
              Some
                (Gbt.fit ~params:t.gbt_params ?pool ~n_bins:(Features.n_bins t.features) xs ys)))

let trained t = t.ensemble <> None

let predict t a =
  match t.ensemble with
  | None -> 0.0
  | Some g -> Gbt.predict g (Features.binned t.features a)

let predict_batch ?pool t assignments =
  match t.ensemble with
  | None -> List.map (fun _ -> 0.0) assignments
  | Some g ->
      (* Binning and ensemble evaluation are pure per-assignment reads, so
         the whole scoring pass fans out; order is preserved. *)
      timed_count c_predict_calls c_predict_ns (fun () ->
          Heron_util.Pool.map_list ?pool
            (fun a -> Gbt.predict g (Features.binned t.features a))
            assignments)

let importance t =
  match t.ensemble with
  | None -> []
  | Some g ->
      let gains = Gbt.feature_gains g in
      let names = Features.names t.features in
      let pairs = Array.to_list (Array.mapi (fun i n -> (n, gains.(i))) names) in
      List.sort (fun (_, a) (_, b) -> compare b a) pairs

let key_variables t k =
  let ranked = importance t in
  let positive = List.filter (fun (_, g) -> g > 0.0) ranked in
  let chosen = List.filteri (fun i _ -> i < k) positive |> List.map fst in
  if chosen <> [] then chosen
  else
    (* Untrained model: deterministic fallback. *)
    Array.to_list (Features.names t.features) |> List.filteri (fun i _ -> i < k)

let n_samples t = t.count

let samples t = t.data

let restore t data =
  t.data <- data;
  t.count <- List.length data;
  t.ensemble <- None
