(* Gradient boosting over {!Tree}, with the fitted ensemble compiled into
   one flat struct-of-arrays: every tree's pre-order nodes concatenated
   into shared [feat]/[bin]/[left]/[right]/[value]/[gain] arrays with
   per-tree root offsets. Batch prediction walks those few contiguous
   kilobytes for a whole population, writing into one caller-owned buffer
   that is reused across CGA generations. Fitting and prediction are
   byte-identical to the frozen {!Gbt_ref} oracle. *)

type params = { n_trees : int; learning_rate : float; tree : Tree.params }

let default_params = { n_trees = 24; learning_rate = 0.3; tree = Tree.default_params }

(* A tree walk costs tens of nanoseconds; a pool barrier costs tens of
   microseconds. Below this many rows, pooled dispatch loses to running
   inline, so the batch entry points fall back to the sequential path.
   Harmless for results either way: the pool contract makes them identical
   at any pool size. *)
let pool_cutoff_rows = 4096

type t = {
  base : float;
  rate : float;
  n_features : int;
  tree_off : int array;  (* root node index of each tree; length n_trees + 1 *)
  feat : int array;  (* >= 0: split on feature; -1: leaf *)
  bin : int array;
  left : int array;  (* absolute node indices *)
  right : int array;
  value : float array;  (* leaf predictions *)
  gain : float array;  (* split gains, for feature importance *)
}

(* Concatenate per-tree SoAs, shifting child links by each tree's offset. *)
let compile ~base ~rate ~n_features (trees : Tree.t array) =
  let total = Array.fold_left (fun acc (tr : Tree.t) -> acc + Array.length tr.Tree.feat) 0 trees in
  let nt = Array.length trees in
  let tree_off = Array.make (nt + 1) 0 in
  let feat = Array.make (max 1 total) (-1)
  and bin = Array.make (max 1 total) 0
  and left = Array.make (max 1 total) (-1)
  and right = Array.make (max 1 total) (-1)
  and value = Array.make (max 1 total) 0.0
  and gain = Array.make (max 1 total) 0.0 in
  let off = ref 0 in
  Array.iteri
    (fun ti (tr : Tree.t) ->
      let o = !off in
      tree_off.(ti) <- o;
      let n = Array.length tr.Tree.feat in
      for i = 0 to n - 1 do
        feat.(o + i) <- tr.Tree.feat.(i);
        bin.(o + i) <- tr.Tree.bin.(i);
        left.(o + i) <- (if tr.Tree.left.(i) < 0 then -1 else o + tr.Tree.left.(i));
        right.(o + i) <- (if tr.Tree.right.(i) < 0 then -1 else o + tr.Tree.right.(i));
        value.(o + i) <- tr.Tree.value.(i);
        gain.(o + i) <- tr.Tree.gain.(i)
      done;
      off := o + n)
    trees;
  tree_off.(nt) <- !off;
  { base; rate; n_features; tree_off; feat; bin; left; right; value; gain }

let fit ?(params = default_params) ?pool ~n_bins (m : Fmat.t) ys =
  let n = Fmat.n_rows m in
  if n = 0 then invalid_arg "Gbt.fit: empty data";
  if Array.length ys < n then invalid_arg "Gbt.fit: ys shorter than the matrix";
  (* Base and residuals accumulate exactly as the reference does. *)
  let base = ref 0.0 in
  for i = 0 to n - 1 do
    base := !base +. ys.(i)
  done;
  let base = !base /. float_of_int n in
  let preds = Array.make n base in
  let residuals = Array.make n 0.0 in
  let trees = Array.make params.n_trees None in
  let scratch = Tree.scratch () in
  let pool = if n < pool_cutoff_rows then None else pool in
  for round = 0 to params.n_trees - 1 do
    (* Squared loss: the negative gradient is the residual. *)
    for i = 0 to n - 1 do
      residuals.(i) <- ys.(i) -. preds.(i)
    done;
    let tree = Tree.fit ~params:params.tree ~scratch ~n_bins m residuals in
    trees.(round) <- Some tree;
    (* Per-sample tree outputs are independent, so each preds.(i) update is
       the same float expression whether contributions are computed on the
       pool or fused into the sequential loop. *)
    match pool with
    | None ->
        for i = 0 to n - 1 do
          preds.(i) <- preds.(i) +. (params.learning_rate *. Tree.predict_row tree m i)
        done
    | Some _ ->
        let contrib = Heron_util.Pool.init ?pool n (fun i -> Tree.predict_row tree m i) in
        Array.iteri
          (fun i c -> preds.(i) <- preds.(i) +. (params.learning_rate *. c))
          contrib
  done;
  let trees = Array.map (function Some t -> t | None -> assert false) trees in
  compile ~base ~rate:params.learning_rate ~n_features:(Fmat.n_features m) trees

let n_trees t = Array.length t.tree_off - 1

(* Tree walks accumulate in ensemble order with the same float expression
   as the reference's fold: acc +. (rate *. leaf). Pre-order storage means
   a split's left child is always the next node, so walks never load the
   [left] array. *)
let predict t x =
  let acc = ref t.base in
  for ti = 0 to n_trees t - 1 do
    let i = ref (Array.unsafe_get t.tree_off ti) in
    while Array.unsafe_get t.feat !i >= 0 do
      i :=
        if Array.unsafe_get x (Array.unsafe_get t.feat !i) <= Array.unsafe_get t.bin !i
        then !i + 1
        else Array.unsafe_get t.right !i
    done;
    acc := !acc +. (t.rate *. Array.unsafe_get t.value !i)
  done;
  !acc

(* Walk the ensemble over the row starting at byte [base] of [rows]. *)
let predict_bytes t rows base =
  let acc = ref t.base in
  for ti = 0 to n_trees t - 1 do
    let i = ref (Array.unsafe_get t.tree_off ti) in
    while Array.unsafe_get t.feat !i >= 0 do
      let b = Char.code (Bytes.unsafe_get rows (base + Array.unsafe_get t.feat !i)) in
      i := if b <= Array.unsafe_get t.bin !i then !i + 1 else Array.unsafe_get t.right !i
    done;
    acc := !acc +. (t.rate *. Array.unsafe_get t.value !i)
  done;
  !acc

let predict_row t m r = predict_bytes t (Fmat.data m) (r * Fmat.n_features m)

let predict_batch_into ?pool t m out =
  let n = Fmat.n_rows m in
  if Array.length out < n then invalid_arg "Gbt.predict_batch_into: output buffer too small";
  let rows = Fmat.data m and nf = Fmat.n_features m in
  (* Disjoint per-row float stores: safe and deterministic on the pool. *)
  let pool = if n < pool_cutoff_rows then None else pool in
  ignore (Heron_util.Pool.init ?pool n (fun r -> out.(r) <- predict_bytes t rows (r * nf)))

let feature_gains t =
  let acc = Array.make t.n_features 0.0 in
  let tmp = Array.make t.n_features 0.0 in
  (* Per-tree subtotal first, then one elementwise add into the ensemble
     accumulator — the reference's exact float addition order. *)
  for ti = 0 to n_trees t - 1 do
    Array.fill tmp 0 t.n_features 0.0;
    for i = t.tree_off.(ti) to t.tree_off.(ti + 1) - 1 do
      let f = t.feat.(i) in
      if f >= 0 then tmp.(f) <- tmp.(f) +. t.gain.(i)
    done;
    for f = 0 to t.n_features - 1 do
      acc.(f) <- acc.(f) +. tmp.(f)
    done
  done;
  acc

(* Canonical serialization, format shared with [Gbt_ref.dump]. *)
let dump t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "base=%h rate=%h nf=%d\n" t.base t.rate t.n_features);
  for ti = 0 to n_trees t - 1 do
    Buffer.add_string buf (Printf.sprintf "tree %d: " ti);
    let rec walk i =
      if t.feat.(i) < 0 then Buffer.add_string buf (Printf.sprintf "L%h" t.value.(i))
      else begin
        Buffer.add_string buf (Printf.sprintf "S%d:%d:%h(" t.feat.(i) t.bin.(i) t.gain.(i));
        walk t.left.(i);
        Buffer.add_char buf ',';
        walk t.right.(i);
        Buffer.add_char buf ')'
      end
    in
    walk t.tree_off.(ti);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
