type params = { n_trees : int; learning_rate : float; tree : Tree.params }

let default_params = { n_trees = 24; learning_rate = 0.3; tree = Tree.default_params }

type t = {
  base : float;
  trees : Tree.t list;
  rate : float;
  n_features : int;
}

let fit ?(params = default_params) ?pool ~n_bins xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Gbt.fit: empty data";
  let base = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
  let preds = Array.make n base in
  let trees = ref [] in
  for _round = 1 to params.n_trees do
    (* Squared loss: the negative gradient is the residual. *)
    let residuals = Array.init n (fun i -> ys.(i) -. preds.(i)) in
    let tree = Tree.fit ~params:params.tree ?pool ~n_bins xs residuals in
    trees := tree :: !trees;
    (* Per-sample tree outputs are independent; computing them on the pool
       and applying sequentially keeps float order identical. *)
    let contrib = Heron_util.Pool.init ?pool n (fun i -> Tree.predict tree xs.(i)) in
    Array.iteri
      (fun i c -> preds.(i) <- preds.(i) +. (params.learning_rate *. c))
      contrib
  done;
  { base; trees = List.rev !trees; rate = params.learning_rate;
    n_features = Array.length xs.(0) }

let predict t x =
  List.fold_left (fun acc tree -> acc +. (t.rate *. Tree.predict tree x)) t.base t.trees

let predict_batch ?pool t xs = Heron_util.Pool.map ?pool (predict t) xs

let feature_gains t =
  let acc = Array.make t.n_features 0.0 in
  List.iter
    (fun tree ->
      let g = Tree.gains tree in
      Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) g)
    t.trees;
  acc

let n_trees t = List.length t.trees
