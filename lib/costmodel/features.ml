module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Domain = Heron_csp.Domain

type t = {
  feat_names : string array;
  boundaries : int array array;  (** sorted bin boundary values per feature *)
}

let of_problem ?(max_bins = 32) problem =
  (* Bin indices must fit the one-byte cells of {!Fmat}. *)
  let max_bins = min max_bins (Fmat.max_bin + 1) in
  let feat_names = Array.copy (Problem.vars problem) in
  let boundaries =
    Array.map
      (fun name ->
        let values = Array.of_list (Domain.to_list (Problem.domain problem name)) in
        let n = Array.length values in
        if n <= max_bins then values
        else
          (* Evenly subsample the sorted domain values as boundaries. *)
          Array.init max_bins (fun i -> values.(i * n / max_bins)))
      feat_names
  in
  { feat_names; boundaries }

let n_features t = Array.length t.feat_names
let names t = t.feat_names
let n_bins t = Array.map (fun b -> max 1 (Array.length b)) t.boundaries

let value_of a name = match Assignment.find_opt a name with Some v -> v | None -> 0

let vector t a = Array.map (fun name -> float_of_int (value_of a name)) t.feat_names

let bin_of boundaries v =
  (* Highest index i with boundaries.(i) <= v, else 0. *)
  let n = Array.length boundaries in
  if n = 0 then 0
  else
    let rec bs lo hi acc =
      if lo > hi then acc
      else
        let mid = (lo + hi) / 2 in
        if boundaries.(mid) <= v then bs (mid + 1) hi mid else bs lo (mid - 1) acc
    in
    bs 0 (n - 1) 0

let binned t a =
  Array.mapi (fun i name -> bin_of t.boundaries.(i) (value_of a name)) t.feat_names

let bin_value t i b =
  let bounds = t.boundaries.(i) in
  let n = Array.length bounds in
  if n = 0 then 0 else bounds.(max 0 (min b (n - 1)))

let max_value t i =
  let bounds = t.boundaries.(i) in
  let n = Array.length bounds in
  if n = 0 then 1 else max 1 bounds.(n - 1)

let bin_of_value t i v = bin_of t.boundaries.(i) v

let bin_row t a m r =
  for i = 0 to Array.length t.feat_names - 1 do
    Fmat.set m r i (bin_of t.boundaries.(i) (value_of a t.feat_names.(i)))
  done
