(** The cost model of the exploration loop: maps assignments to predicted
    fitness scores and ranks the key variables by feature importance
    (Algorithm 3, Step 1).

    The training window is a fixed ring of flat byte rows ({!Fmat}):
    {!record} is O(n_features) regardless of window fill, and batch
    prediction bins into a reused flat matrix and walks the compiled
    ensemble — no per-generation allocation beyond the result list. *)

module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t

val create : ?gbt_params:Gbt.params -> ?window:int -> Problem.t -> t
(** [window] caps the number of most recent samples kept for training. *)

val record : t -> Assignment.t -> float -> unit
(** Stores one (assignment, fitness score) observation into the ring,
    evicting the oldest once the window is full. O(n_features). *)

val record_row : t -> Fmat.t -> int -> float -> unit
(** [record_row t src r score] records a pre-binned observation: row [r]
    of [src] (built with {!featurize_row}, so the layout matches) is
    blitted into the ring. Ring bytes and counters are identical to
    {!record} on the assignment the row was binned from — the record
    path of the interned search engine, which bins each candidate once
    at intern time. *)

val record_batch :
  ?pool:Heron_util.Pool.t -> t -> (Assignment.t * float) list -> unit
(** Records a batch of observations, binning the feature rows on the
    pool (disjoint scratch rows) and committing to the ring sequentially
    in list order — observably identical to iterating {!record}. *)

val featurize_row : t -> Assignment.t -> Fmat.t -> int -> unit
(** [featurize_row t a m r] bins [a] into row [r] of the caller's matrix
    with this model's feature layout ([m] must have {!n_features}
    columns). Callers cache such rows per assignment and feed them back
    through {!record_row} / {!predict_gather}. *)

val refit : ?pool:Heron_util.Pool.t -> t -> unit
(** Retrains the ensemble on the stored observations (cheap; histogram
    trees on at most [window] samples). No-op with fewer than 8 samples.
    With [?pool], each boosting round's residual predictions fan out;
    the model is identical for any pool size. *)

val trained : t -> bool

val predict : t -> Assignment.t -> float
(** Predicted fitness; 0 when the model is not yet trained. *)

val predict_batch : ?pool:Heron_util.Pool.t -> t -> Assignment.t list -> float list
(** Batch [predict], optionally fanned out across a domain pool; output
    order matches input order. *)

val predict_gather :
  ?pool:Heron_util.Pool.t -> t -> Fmat.t -> int array -> int -> float array -> unit
(** [predict_gather t src rows n out] scores the pre-binned feature rows
    [src.(rows.(0)) .. src.(rows.(n-1))] into [out.(0 .. n-1)] (which
    must hold at least [n] cells) — the zero-copy ranking path: row
    blits into the reused prediction matrix, no per-candidate binning or
    intermediate lists. Predictions, counters and untrained behavior
    (all zeros) match {!predict_batch} on the corresponding
    assignments. *)

val importance : t -> (string * float) list
(** Features sorted by decreasing total gain; empty when untrained. *)

val key_variables : t -> int -> string list
(** Top-k feature names by importance, restricted to features with positive
    gain; falls back to the lexicographically first variables when the
    model is untrained. *)

val n_samples : t -> int

val n_features : t -> int
(** Number of features (problem variables) this model bins on. *)

val layout_ok : t -> int array -> bool
(** Whether a binned row fits this model's feature layout: exactly
    {!n_features} cells, each within its feature's bin range. The guard
    {!Heron_search.Cga.run} applies to every resumed or transferred
    window sample. *)

val samples : t -> (int array * float) list
(** The stored training window, most recent first: binned feature vectors
    paired with fitness scores. For checkpointing. *)

val restore : t -> (int array * float) list -> unit
(** Replace the training window with a checkpointed one (most recent
    first) and drop the ensemble; the next {!refit} retrains it. Fitting
    is deterministic in the samples, so restore + refit reproduces the
    exact ensemble a checkpointed run had. *)
