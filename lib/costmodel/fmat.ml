(* Flat row-major matrix of bin indices: one byte per cell, [n_rows] rows
   of [n_features] columns in a single [Bytes.t]. This is the storage the
   whole cost-model hot path runs on — training windows, fit matrices and
   batch-prediction inputs — replacing the boxed [int array array] of the
   pre-overhaul engine. A row is [n_features] consecutive bytes, so tree
   fitting and batched prediction stream cache-line-contiguous data. *)

type t = {
  n_features : int;
  mutable data : Bytes.t;
  mutable n_rows : int;
}

let max_bin = 255

let create ?(capacity = 16) ~n_features () =
  if n_features <= 0 then invalid_arg "Fmat.create: n_features must be positive";
  { n_features; data = Bytes.create (max 1 (capacity * n_features)); n_rows = 0 }

let n_features t = t.n_features
let n_rows t = t.n_rows
let capacity t = Bytes.length t.data / t.n_features

let clear t = t.n_rows <- 0

let reserve t rows =
  let need = rows * t.n_features in
  if Bytes.length t.data < need then begin
    let cap = max need (2 * Bytes.length t.data) in
    let data = Bytes.create cap in
    Bytes.blit t.data 0 data 0 (t.n_rows * t.n_features);
    t.data <- data
  end

let set_rows t rows =
  if rows < 0 then invalid_arg "Fmat.set_rows: negative row count";
  reserve t rows;
  t.n_rows <- rows

(* Unsafe cell accessors: callers index within [0, n_rows) x [0, n_features)
   by construction (every call site loops over its own row range). *)
let get t row feat = Char.code (Bytes.unsafe_get t.data ((row * t.n_features) + feat))

let data t = t.data

let set t row feat v =
  if v < 0 || v > max_bin then invalid_arg "Fmat.set: bin index out of byte range";
  Bytes.unsafe_set t.data ((row * t.n_features) + feat) (Char.unsafe_chr v)

let push_row t bins =
  if Array.length bins <> t.n_features then invalid_arg "Fmat.push_row: width mismatch";
  reserve t (t.n_rows + 1);
  let r = t.n_rows in
  t.n_rows <- r + 1;
  Array.iteri (fun f v -> set t r f v) bins

let row t r = Array.init t.n_features (fun f -> get t r f)

let blit_row src r dst r' =
  if src.n_features <> dst.n_features then invalid_arg "Fmat.blit_row: width mismatch";
  Bytes.blit src.data (r * src.n_features) dst.data (r' * dst.n_features) src.n_features

let of_rows ?n_features rows =
  let nf =
    match n_features with
    | Some nf -> nf
    | None ->
        if Array.length rows = 0 then invalid_arg "Fmat.of_rows: empty and no ~n_features"
        else Array.length rows.(0)
  in
  let t = create ~capacity:(max 1 (Array.length rows)) ~n_features:nf () in
  Array.iter (fun r -> push_row t r) rows;
  t
