(** Frozen pre-overhaul GBT engine — the differential oracle the flat-array
    rebuild is tested against (the PR-4 playbook). Boxed [int array array]
    features, pointer-linked tree nodes, per-feature sorted-gain scans.
    Results define the correctness bar: the production {!Gbt} must fit
    byte-identical ensembles and predict byte-identical scores. Sequential
    on purpose; never optimize or parallelize this module. *)

module Tree : sig
  type params = { max_depth : int; min_samples : int; min_gain : float }

  val default_params : params

  type node =
    | Leaf of float
    | Split of { feat : int; bin : int; gain : float; left : node; right : node }

  type t = { root : node; n_features : int }

  val fit : ?params:params -> n_bins:int array -> int array array -> float array -> t
  val predict : t -> int array -> float
  val gains : t -> float array
end

type params = { n_trees : int; learning_rate : float; tree : Tree.params }

val default_params : params

type t

val fit : ?params:params -> n_bins:int array -> int array array -> float array -> t
val predict : t -> int array -> float
val feature_gains : t -> float array
val n_trees : t -> int

val dump : t -> string
(** Canonical serialization (floats as ["%h"]), shared format with
    {!Gbt.dump}: byte-equal dumps mean byte-identical fitted models. *)
