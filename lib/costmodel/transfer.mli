(** Cross-task cost-model transfer (Chen et al., {i Learning to Optimize
    Tensor Programs}): a shape-invariant view of a trained window so a
    model fitted on one task can warm-start a fresh one.

    The binned rows {!Model} trains on are task-specific — bin boundaries
    derive from each task's variable domains. {!export} lifts a window out
    of that layout into named, extent-normalized features (each value
    divided by its feature's largest representable value, so a tile size
    of 64 on a 4096-extent loop and 4 on a 256-extent loop land near the
    same coordinate); {!import} rebinds the rows into a target task's
    layout by feature {e name}, re-scaling by the target's extents and
    re-binning with the target's boundaries. Imported rows are
    feature-layout-compatible with the target by construction: exactly
    [n_features] bins, each within its feature's bin range. *)

type portable = {
  p_names : string array;  (** donor feature (variable) names *)
  p_rows : (float array * float) list;
      (** normalized feature rows (values in [\[0, 1\]]) paired with
          fitness scores, most recent first *)
}

val export : Features.t -> (int array * float) list -> portable
(** [export features window] lifts a {!Model.samples}-style window (binned
    rows, most recent first) out of [features]'s layout. *)

val coverage : Features.t -> portable -> float
(** Fraction of the target's features whose name also appears in the
    donor — the transfer-quality signal callers gate on. 0 for an empty
    target. *)

val import :
  ?min_coverage:float -> Features.t -> portable -> (int array * float) list option
(** [import ~min_coverage target p] rebins every donor row into [target]'s
    feature layout (features absent from the donor read 0, the same
    convention as unbound variables in {!Features.vector}). [None] when
    the name overlap is below [min_coverage] (default 0.5) or the donor
    window is empty — the caller then falls back to a cold start. *)
