(** Histogram-based regression trees (the weak learners of the boosted
    ensemble). Training operates on pre-binned integer features; splits
    maximize variance reduction. *)

type params = {
  max_depth : int;
  min_samples : int;  (** do not split nodes smaller than this *)
  min_gain : float;  (** minimum variance reduction to accept a split *)
}

val default_params : params

type t

val fit :
  ?params:params ->
  ?pool:Heron_util.Pool.t ->
  n_bins:int array ->
  int array array ->
  float array ->
  t
(** [fit ~n_bins xs ys] trains on samples [xs] (each an array of bin
    indices, one per feature) with targets [ys]. With [?pool], the
    per-feature split scan of each node fans out across the pool; the
    fitted tree is identical for any pool size.
    @raise Invalid_argument on empty or mismatched data. *)

val predict : t -> int array -> float

val gains : t -> float array
(** Total variance reduction contributed by each feature (indexed like the
    feature vectors) — the raw material of feature importance. *)

val depth : t -> int
val n_nodes : t -> int
