(** Histogram-based regression trees (the weak learners of the boosted
    ensemble), trained on a flat byte matrix ({!Fmat}) of pre-binned
    features and stored as a pre-order struct-of-arrays. Splits maximize
    variance reduction. Fitting is byte-identical to the frozen
    {!Gbt_ref.Tree} oracle — same splits, gains and leaf means — the flat
    engine only changes the constants (single streaming histogram pass per
    node over all features, count+fill partitioning, monomorphic
    comparisons). *)

type params = {
  max_depth : int;
  min_samples : int;  (** do not split nodes smaller than this *)
  min_gain : float;  (** minimum variance reduction to accept a split *)
}

val default_params : params

(** Pre-order node storage: [feat.(i) >= 0] is a split on that feature at
    threshold [bin.(i)] (samples with [x <= bin] go to [left.(i)]);
    [feat.(i) = -1] is a leaf predicting [value.(i)]. Read-only. *)
type t = {
  feat : int array;
  bin : int array;
  left : int array;
  right : int array;
  value : float array;
  gain : float array;
  n_features : int;
}

type scratch
(** Reusable fit workspace (histograms, partition permutation, offsets).
    One scratch serves any problem size — buffers grow on demand and are
    retained — but must not be shared across concurrent fits. *)

val scratch : unit -> scratch

val fit :
  ?params:params ->
  ?pool:Heron_util.Pool.t ->
  ?scratch:scratch ->
  n_bins:int array ->
  Fmat.t ->
  float array ->
  t
(** [fit ~n_bins m ys] trains on the first [Fmat.n_rows m] rows of [m]
    against targets [ys] (which may be longer; extra entries are ignored).
    [?pool] is accepted for interface stability but unused: the
    single-pass histogram build is sequential and the fitted tree is
    identical regardless. [?scratch] amortizes workspace allocation across
    repeated fits (e.g. boosting rounds) and never changes the result.
    @raise Invalid_argument on empty or mismatched data. *)

val predict : t -> int array -> float
val predict_row : t -> Fmat.t -> int -> float

val gains : t -> float array
(** Total variance reduction contributed by each feature (indexed like the
    feature vectors) — the raw material of feature importance. *)

val depth : t -> int
val n_nodes : t -> int
