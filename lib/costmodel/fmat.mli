(** Flat row-major matrix of bin indices (one byte per cell) — the storage
    of the cost-model hot path. Rows are contiguous [n_features]-byte
    runs inside one [Bytes.t], so tree fitting and batched prediction
    stream cache-contiguous data instead of chasing boxed
    [int array array] pointers. Bin indices must fit a byte; feature
    binning is clamped to at most 256 bins (see {!Features.of_problem}). *)

type t

val max_bin : int
(** Largest storable bin index (255). *)

val create : ?capacity:int -> n_features:int -> unit -> t
(** An empty matrix with room for [capacity] rows (grows on demand). *)

val n_features : t -> int
val n_rows : t -> int
val capacity : t -> int

val clear : t -> unit
(** Drop all rows (storage is retained for reuse). *)

val reserve : t -> int -> unit
(** Ensure capacity for at least the given number of rows. *)

val set_rows : t -> int -> unit
(** Set the logical row count (growing storage as needed); cell contents
    of newly exposed rows are unspecified until written with {!set}. Used
    to pre-size a batch that is then filled in parallel, row by row. *)

val get : t -> int -> int -> int
(** [get t row feat]: no bounds check beyond the backing buffer; callers
    stay within [n_rows] x [n_features] by construction. *)

val data : t -> Bytes.t
(** The raw row-major store (row [r] occupies bytes
    [r * n_features .. (r + 1) * n_features - 1]). For the library's own
    hot loops, which hoist the row base out of per-cell indexing; invalid
    beyond the current row count, and stale after a growing {!reserve}. *)

val set : t -> int -> int -> int -> unit
(** @raise Invalid_argument when the value does not fit a byte. *)

val push_row : t -> int array -> unit
(** Append one row given as a bin-index vector. *)

val row : t -> int -> int array
(** Materialize one row as an [int array] (checkpointing / debug). *)

val blit_row : t -> int -> t -> int -> unit
(** [blit_row src r dst r'] copies one row across matrices of equal
    width. *)

val of_rows : ?n_features:int -> int array array -> t
(** Build from boxed rows (tests and the differential oracle bridge). *)
