(** Feature extraction for the cost model.

    Following the paper, the features of a program are the values of the
    variables declared during constraint generation (loop lengths, memory
    usage, vector widths, ...), which are available without compiling
    anything. Each feature is discretized into bins derived from the
    variable's domain, enabling fast histogram-based tree training. Bin
    counts are clamped to 256 so a bin index always fits the one-byte
    cells of the flat {!Fmat} matrices the engine trains on. *)

module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t

val of_problem : ?max_bins:int -> Problem.t -> t
(** [max_bins] is clamped to [Fmat.max_bin + 1] (256). *)

val n_features : t -> int
val names : t -> string array
val n_bins : t -> int array
(** Bin count per feature. *)

val vector : t -> Assignment.t -> float array
(** Raw feature values (unbound variables map to 0). *)

val binned : t -> Assignment.t -> int array
(** Bin index per feature: the highest bin whose boundary value does not
    exceed the variable's value. *)

val bin_row : t -> Assignment.t -> Fmat.t -> int -> unit
(** [bin_row t a m r] bins assignment [a] directly into row [r] of the
    flat matrix [m] — the batch-binning path of {!Model}; equivalent to
    writing {!binned} into the row, without the intermediate array. *)

(** {2 Shape-invariant helpers}

    Cross-task cost-model transfer ({!Transfer}) needs to move a training
    window between tasks with different extents. These expose the bin
    geometry: a bin's representative raw value and the feature's largest
    domain value (the task extent the transfer layer normalizes by). *)

val bin_value : t -> int -> int -> int
(** [bin_value t i b] is the raw variable value at the lower boundary of
    bin [b] of feature [i] (0 when the feature has no boundaries). Out-of-
    range [b] is clamped into the feature's bin range. *)

val max_value : t -> int -> int
(** Largest bin-boundary value of feature [i] — the extent normalizer
    (the largest value the binning can represent). At least 1, so it is
    always safe to divide by. *)

val bin_of_value : t -> int -> int -> int
(** [bin_of_value t i v] is the bin index a raw value [v] of feature [i]
    falls into: the highest bin whose boundary does not exceed [v]. *)
