(* Histogram-based regression trees over a flat byte matrix ({!Fmat}),
   stored as a struct-of-arrays in pre-order. The fit is byte-identical to
   the frozen {!Gbt_ref.Tree} oracle — same splits, same gains, same leaf
   means — but with very different constants:

   - one pass per node over its samples builds the (feature x bin)
     count/sum histograms for ALL features at once, streaming contiguous
     byte rows, instead of one boxed-array rescan per feature;
   - partitioning is a single count+fill pass instead of two
     Array->List->filter->Array round trips;
   - all inner-loop comparisons are monomorphic float/int operations.

   Byte-identity constrains the histogram work: per-(feature, bin) float
   sums accumulate in sample order, exactly as the reference's per-feature
   scans do (each accumulator sees the same addends in the same order, so
   every float is bit-equal). The LightGBM build-child-by-subtraction
   trick is deliberately NOT applied to the float sums — subtraction
   changes rounding and would break the differential oracle; children
   rebuild their histograms directly, which the flat single-pass layout
   makes cheap. *)

type params = { max_depth : int; min_samples : int; min_gain : float }

let default_params = { max_depth = 4; min_samples = 4; min_gain = 1e-9 }

(* Nodes in pre-order: [feat.(i) >= 0] marks a split (children at
   [left.(i)]/[right.(i)], samples with [x.(feat) <= bin] go left);
   [feat.(i) = -1] marks a leaf carrying [value.(i)]. *)
type t = {
  feat : int array;
  bin : int array;
  left : int array;
  right : int array;
  value : float array;
  gain : float array;
  n_features : int;
}

(* Reusable fit workspace: grown on demand, never shrunk, so repeated
   fits (boosting rounds) run allocation-free. Contents are meaningless
   between calls. *)
type scratch = {
  mutable s_offs : int array;
  mutable s_hist_n : int array;
  mutable s_hist_s : float array;
  mutable s_idx : int array;
  mutable s_tmp : int array;
}

let scratch () = { s_offs = [||]; s_hist_n = [||]; s_hist_s = [||]; s_idx = [||]; s_tmp = [||] }

let fit ?(params = default_params) ?pool:_ ?scratch:sc ~n_bins (m : Fmat.t) ys =
  let n = Fmat.n_rows m in
  if n = 0 then invalid_arg "Tree.fit: empty data";
  if Array.length ys < n then invalid_arg "Tree.fit: ys shorter than the matrix";
  let nf = Fmat.n_features m in
  if Array.length n_bins <> nf then invalid_arg "Tree.fit: n_bins/width mismatch";
  let sc = match sc with Some sc -> sc | None -> scratch () in
  (* Per-feature histogram offsets, prefix-summed: feature [f]'s bins live
     at [offs.(f) .. offs.(f) + n_bins.(f) - 1]. Denser than a uniform
     max-bins stride, so clears are shorter and the randomly-addressed
     accumulators stay cache-resident. *)
  if Array.length sc.s_offs < nf then sc.s_offs <- Array.make nf 0;
  let offs = sc.s_offs in
  let hist_len = ref 0 in
  for f = 0 to nf - 1 do
    offs.(f) <- !hist_len;
    hist_len := !hist_len + max 1 n_bins.(f)
  done;
  let hist_len = !hist_len in
  (* A tree has at most 2n-1 nodes (every leaf holds >= 1 sample) and at
     most 2^(depth+1)-1; allocate the smaller bound up front. *)
  let cap =
    let by_depth =
      if params.max_depth < 30 then (1 lsl (params.max_depth + 1)) - 1 else max_int
    in
    max 1 (min by_depth ((2 * n) - 1))
  in
  let feat = Array.make cap (-1)
  and bin = Array.make cap 0
  and left = Array.make cap (-1)
  and right = Array.make cap (-1)
  and value = Array.make cap 0.0
  and gain = Array.make cap 0.0 in
  let len = ref 0 in
  let push () =
    let i = !len in
    incr len;
    i
  in
  (* Shared scratch, refilled per node (never live across the recursive
     calls): the (feature x bin) histograms, plus one permutation array
     [idx] holding each node's samples as the contiguous slice
     [lo, hi) — partitioning rearranges in place (with [tmp] buffering the
     right side to stay stable), so growing the tree allocates nothing. *)
  if Array.length sc.s_hist_n < hist_len then begin
    sc.s_hist_n <- Array.make hist_len 0;
    sc.s_hist_s <- Array.make hist_len 0.0
  end;
  if Array.length sc.s_idx < n then begin
    sc.s_idx <- Array.make n 0;
    sc.s_tmp <- Array.make n 0
  end;
  let hist_n = sc.s_hist_n and hist_s = sc.s_hist_s in
  let idx = sc.s_idx and tmp = sc.s_tmp in
  for i = 0 to n - 1 do
    idx.(i) <- i
  done;
  let rows = Fmat.data m in
  let mean lo hi =
    (* Same accumulation order as the reference: sample order. *)
    let sum = ref 0.0 in
    for k = lo to hi - 1 do
      sum := !sum +. Array.unsafe_get ys (Array.unsafe_get idx k)
    done;
    !sum /. float_of_int (hi - lo)
  in
  let rec grow lo hi d =
    let card = hi - lo in
    if d >= params.max_depth || card < 2 * params.min_samples then begin
      let i = push () in
      value.(i) <- mean lo hi;
      i
    end
    else begin
      Array.fill hist_n 0 hist_len 0;
      Array.fill hist_s 0 hist_len 0.0;
      (* One streaming pass: every (feature, bin) accumulator receives its
         ys addends in sample order, as the per-feature reference scans
         do. Rows are read as raw consecutive bytes. *)
      for k = lo to hi - 1 do
        let i = Array.unsafe_get idx k in
        let y = Array.unsafe_get ys i in
        let base = i * nf in
        for f = 0 to nf - 1 do
          let b = Char.code (Bytes.unsafe_get rows (base + f)) in
          let off = Array.unsafe_get offs f + b in
          Array.unsafe_set hist_n off (Array.unsafe_get hist_n off + 1);
          Array.unsafe_set hist_s off (Array.unsafe_get hist_s off +. y)
        done
      done;
      (* Best split per feature, then argmax in feature order (earlier
         feature wins ties, matching the reference's reduction). *)
      let best_feat = ref (-1) and best_bin = ref 0 and best_gain = ref 0.0 in
      let have_best = ref false in
      for f = 0 to nf - 1 do
        let bins = n_bins.(f) and base_off = offs.(f) in
        let total_sum = ref 0.0 in
        for b = 0 to bins - 1 do
          total_sum := !total_sum +. Array.unsafe_get hist_s (base_off + b)
        done;
        let total_sum = !total_sum in
        let base = total_sum *. total_sum /. float_of_int card in
        let f_bin = ref 0 and f_gain = ref 0.0 in
        let f_have = ref false in
        let acc_n = ref 0 and acc_sum = ref 0.0 in
        for b = 0 to bins - 2 do
          acc_n := !acc_n + Array.unsafe_get hist_n (base_off + b);
          acc_sum := !acc_sum +. Array.unsafe_get hist_s (base_off + b);
          let nl = !acc_n and nr = card - !acc_n in
          if nl >= params.min_samples && nr >= params.min_samples then begin
            let sl = !acc_sum and sr = total_sum -. !acc_sum in
            let score =
              (sl *. sl /. float_of_int nl) +. (sr *. sr /. float_of_int nr) -. base
            in
            if (not !f_have) || Float.compare !f_gain score < 0 then begin
              f_have := true;
              f_bin := b;
              f_gain := score
            end
          end
        done;
        if !f_have && ((not !have_best) || Float.compare !best_gain !f_gain < 0) then begin
          have_best := true;
          best_feat := f;
          best_bin := !f_bin;
          best_gain := !f_gain
        end
      done;
      if !have_best && !best_gain > params.min_gain then begin
        let sf = !best_feat and sb = !best_bin and sg = !best_gain in
        (* Stable in-place partition: left-goers compact down within the
           slice (writes never outrun reads), right-goers stage in [tmp]
           and blit back above them — sample order preserved on both
           sides, no per-node allocation. *)
        let li = ref lo and ti = ref 0 in
        for k = lo to hi - 1 do
          let i = Array.unsafe_get idx k in
          if Char.code (Bytes.unsafe_get rows ((i * nf) + sf)) <= sb then begin
            Array.unsafe_set idx !li i;
            incr li
          end
          else begin
            Array.unsafe_set tmp !ti i;
            incr ti
          end
        done;
        let mid = !li in
        Array.blit tmp 0 idx mid !ti;
        let me = push () in
        let l = grow lo mid (d + 1) in
        let r = grow mid hi (d + 1) in
        feat.(me) <- sf;
        bin.(me) <- sb;
        gain.(me) <- sg;
        left.(me) <- l;
        right.(me) <- r;
        me
      end
      else begin
        let i = push () in
        value.(i) <- mean lo hi;
        i
      end
    end
  in
  ignore (grow 0 n 0);
  let n_nodes = !len in
  {
    feat = Array.sub feat 0 n_nodes;
    bin = Array.sub bin 0 n_nodes;
    left = Array.sub left 0 n_nodes;
    right = Array.sub right 0 n_nodes;
    value = Array.sub value 0 n_nodes;
    gain = Array.sub gain 0 n_nodes;
    n_features = nf;
  }

(* Pre-order storage: a split's left child is always the next node, so the
   walks only ever load the [right] link. *)
let predict t x =
  let i = ref 0 in
  while Array.unsafe_get t.feat !i >= 0 do
    i :=
      if Array.unsafe_get x (Array.unsafe_get t.feat !i) <= Array.unsafe_get t.bin !i then
        !i + 1
      else Array.unsafe_get t.right !i
  done;
  Array.unsafe_get t.value !i

let predict_row t m r =
  let rows = Fmat.data m in
  let base = r * Fmat.n_features m in
  let i = ref 0 in
  while Array.unsafe_get t.feat !i >= 0 do
    let b = Char.code (Bytes.unsafe_get rows (base + Array.unsafe_get t.feat !i)) in
    i := if b <= Array.unsafe_get t.bin !i then !i + 1 else Array.unsafe_get t.right !i
  done;
  Array.unsafe_get t.value !i

(* Pre-order node storage makes index order the reference's walk order, so
   gain accumulation is float-for-float identical to [Gbt_ref.Tree.gains]. *)
let gains t =
  let acc = Array.make t.n_features 0.0 in
  Array.iteri (fun i f -> if f >= 0 then acc.(f) <- acc.(f) +. t.gain.(i)) t.feat;
  acc

let depth t =
  let rec d i = if t.feat.(i) < 0 then 0 else 1 + max (d t.left.(i)) (d t.right.(i)) in
  d 0

let n_nodes t = Array.length t.feat
