type params = { max_depth : int; min_samples : int; min_gain : float }

let default_params = { max_depth = 4; min_samples = 4; min_gain = 1e-9 }

type node =
  | Leaf of float
  | Split of { feat : int; bin : int; gain : float; left : node; right : node }
      (** samples with [x.(feat) <= bin] go left *)

type t = { root : node; n_features : int }

let mean ys idx =
  let sum = Array.fold_left (fun acc i -> acc +. ys.(i)) 0.0 idx in
  sum /. float_of_int (Array.length idx)

(* Best split of [idx] on [feat]: scan bins left to right accumulating sums,
   maximizing  sum_l^2/n_l + sum_r^2/n_r  (equivalent to variance
   reduction). Returns (bin, gain) or None. *)
let best_split_on xs ys idx feat bins min_samples =
  let counts = Array.make bins 0 and sums = Array.make bins 0.0 in
  Array.iter
    (fun i ->
      let b = xs.(i).(feat) in
      counts.(b) <- counts.(b) + 1;
      sums.(b) <- sums.(b) +. ys.(i))
    idx;
  let total_n = Array.length idx in
  let total_sum = Array.fold_left ( +. ) 0.0 sums in
  let base = total_sum *. total_sum /. float_of_int total_n in
  let best = ref None in
  let acc_n = ref 0 and acc_sum = ref 0.0 in
  for b = 0 to bins - 2 do
    acc_n := !acc_n + counts.(b);
    acc_sum := !acc_sum +. sums.(b);
    let nl = !acc_n and nr = total_n - !acc_n in
    if nl >= min_samples && nr >= min_samples then begin
      let sl = !acc_sum and sr = total_sum -. !acc_sum in
      let score = (sl *. sl /. float_of_int nl) +. (sr *. sr /. float_of_int nr) -. base in
      match !best with
      | Some (_, g) when g >= score -> ()
      | _ -> best := Some (b, score)
    end
  done;
  !best

(* Parallelizing the split search below this node population is all
   overhead: one scan is O(|idx| + bins). *)
let parallel_scan_threshold = 64

let fit ?(params = default_params) ?pool ~n_bins xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Tree.fit: empty data";
  if Array.length ys <> n then invalid_arg "Tree.fit: xs/ys length mismatch";
  let n_features = Array.length xs.(0) in
  let rec grow idx d =
    if d >= params.max_depth || Array.length idx < 2 * params.min_samples then
      Leaf (mean ys idx)
    else begin
      (* The per-feature scans are independent pure reads, so they fan out
         across the pool; the argmax reduction stays sequential in feature
         order (earlier feature wins ties), keeping the fitted tree
         identical for any pool size. *)
      let scan feat =
        best_split_on xs ys idx feat n_bins.(feat) params.min_samples
      in
      let candidates =
        if Array.length idx >= parallel_scan_threshold then
          Heron_util.Pool.init ?pool n_features scan
        else Array.init n_features scan
      in
      let best = ref None in
      for feat = 0 to n_features - 1 do
        match candidates.(feat) with
        | Some (bin, gain) -> (
            match !best with
            | Some (_, _, g) when g >= gain -> ()
            | _ -> best := Some (feat, bin, gain))
        | None -> ()
      done;
      match !best with
      | Some (feat, bin, gain) when gain > params.min_gain ->
          let left_idx = Array.of_list (List.filter (fun i -> xs.(i).(feat) <= bin)
              (Array.to_list idx))
          and right_idx = Array.of_list (List.filter (fun i -> xs.(i).(feat) > bin)
              (Array.to_list idx))
          in
          Split { feat; bin; gain; left = grow left_idx (d + 1); right = grow right_idx (d + 1) }
      | _ -> Leaf (mean ys idx)
    end
  in
  { root = grow (Array.init n (fun i -> i)) 0; n_features }

let rec predict_node node x =
  match node with
  | Leaf v -> v
  | Split { feat; bin; left; right; _ } ->
      if x.(feat) <= bin then predict_node left x else predict_node right x

let predict t x = predict_node t.root x

let gains t =
  let acc = Array.make t.n_features 0.0 in
  let rec walk = function
    | Leaf _ -> ()
    | Split { feat; gain; left; right; _ } ->
        acc.(feat) <- acc.(feat) +. gain;
        walk left;
        walk right
  in
  walk t.root;
  acc

let depth t =
  let rec d = function Leaf _ -> 0 | Split { left; right; _ } -> 1 + max (d left) (d right) in
  d t.root

let n_nodes t =
  let rec c = function Leaf _ -> 1 | Split { left; right; _ } -> 1 + c left + c right in
  c t.root
