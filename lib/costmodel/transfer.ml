(* Shape-invariant window transfer: donor bins -> normalized named values
   -> target bins. Both directions go through the same Features bin
   geometry, so a same-task export/import round-trip is the identity on
   bins and the cross-task path is a pure, deterministic rescaling. *)

type portable = {
  p_names : string array;
  p_rows : (float array * float) list;
}

let export features window =
  let nf = Features.n_features features in
  let scale = Array.init nf (fun i -> float_of_int (Features.max_value features i)) in
  let lift bins =
    Array.init nf (fun i ->
        let b = if i < Array.length bins then bins.(i) else 0 in
        float_of_int (Features.bin_value features i b) /. scale.(i))
  in
  {
    p_names = Array.copy (Features.names features);
    p_rows = List.map (fun (bins, score) -> (lift bins, score)) window;
  }

let donor_index p =
  let table = Hashtbl.create (Array.length p.p_names) in
  Array.iteri (fun i name -> if not (Hashtbl.mem table name) then Hashtbl.add table name i) p.p_names;
  table

let coverage target p =
  let names = Features.names target in
  let nf = Array.length names in
  if nf = 0 then 0.0
  else begin
    let table = donor_index p in
    let matched = Array.fold_left (fun acc n -> if Hashtbl.mem table n then acc + 1 else acc) 0 names in
    float_of_int matched /. float_of_int nf
  end

let import ?(min_coverage = 0.5) target p =
  if p.p_rows = [] || coverage target p < min_coverage then None
  else begin
    let names = Features.names target in
    let nf = Array.length names in
    let table = donor_index p in
    (* Donor column feeding each target feature; -1 reads 0 (the unbound-
       variable convention of Features.vector). *)
    let src = Array.map (fun n -> match Hashtbl.find_opt table n with Some i -> i | None -> -1) names in
    let rebin (row, score) =
      ( Array.init nf (fun j ->
            if src.(j) < 0 then Features.bin_of_value target j 0
            else
              let v =
                row.(src.(j)) *. float_of_int (Features.max_value target j)
              in
              Features.bin_of_value target j (int_of_float (Float.round v))),
        score )
    in
    Some (List.map rebin p.p_rows)
  end
