(* The frozen pre-overhaul cost-model engine, kept verbatim as the
   differential oracle for the flat-array rebuild (the PR-4 playbook:
   the production engine must stay byte-identical to this reference —
   fitted trees, gains and predictions alike). Operates on boxed
   [int array array] feature matrices and pointer-linked tree nodes.
   Do not optimize this file. *)

module Tree = struct
  type params = { max_depth : int; min_samples : int; min_gain : float }

  let default_params = { max_depth = 4; min_samples = 4; min_gain = 1e-9 }

  type node =
    | Leaf of float
    | Split of { feat : int; bin : int; gain : float; left : node; right : node }
        (** samples with [x.(feat) <= bin] go left *)

  type t = { root : node; n_features : int }

  let mean ys idx =
    let sum = Array.fold_left (fun acc i -> acc +. ys.(i)) 0.0 idx in
    sum /. float_of_int (Array.length idx)

  (* Best split of [idx] on [feat]: scan bins left to right accumulating
     sums, maximizing  sum_l^2/n_l + sum_r^2/n_r  (equivalent to variance
     reduction). Returns (bin, gain) or None. *)
  let best_split_on xs ys idx feat bins min_samples =
    let counts = Array.make bins 0 and sums = Array.make bins 0.0 in
    Array.iter
      (fun i ->
        let b = xs.(i).(feat) in
        counts.(b) <- counts.(b) + 1;
        sums.(b) <- sums.(b) +. ys.(i))
      idx;
    let total_n = Array.length idx in
    let total_sum = Array.fold_left ( +. ) 0.0 sums in
    let base = total_sum *. total_sum /. float_of_int total_n in
    let best = ref None in
    let acc_n = ref 0 and acc_sum = ref 0.0 in
    for b = 0 to bins - 2 do
      acc_n := !acc_n + counts.(b);
      acc_sum := !acc_sum +. sums.(b);
      let nl = !acc_n and nr = total_n - !acc_n in
      if nl >= min_samples && nr >= min_samples then begin
        let sl = !acc_sum and sr = total_sum -. !acc_sum in
        let score = (sl *. sl /. float_of_int nl) +. (sr *. sr /. float_of_int nr) -. base in
        match !best with
        | Some (_, g) when g >= score -> ()
        | _ -> best := Some (b, score)
      end
    done;
    !best

  let fit ?(params = default_params) ~n_bins xs ys =
    let n = Array.length xs in
    if n = 0 then invalid_arg "Gbt_ref.Tree.fit: empty data";
    if Array.length ys <> n then invalid_arg "Gbt_ref.Tree.fit: xs/ys length mismatch";
    let n_features = Array.length xs.(0) in
    let rec grow idx d =
      if d >= params.max_depth || Array.length idx < 2 * params.min_samples then
        Leaf (mean ys idx)
      else begin
        let best = ref None in
        for feat = 0 to n_features - 1 do
          match best_split_on xs ys idx feat n_bins.(feat) params.min_samples with
          | Some (bin, gain) -> (
              match !best with
              | Some (_, _, g) when g >= gain -> ()
              | _ -> best := Some (feat, bin, gain))
          | None -> ()
        done;
        match !best with
        | Some (feat, bin, gain) when gain > params.min_gain ->
            let left_idx =
              Array.of_list (List.filter (fun i -> xs.(i).(feat) <= bin) (Array.to_list idx))
            and right_idx =
              Array.of_list (List.filter (fun i -> xs.(i).(feat) > bin) (Array.to_list idx))
            in
            Split { feat; bin; gain; left = grow left_idx (d + 1); right = grow right_idx (d + 1) }
        | _ -> Leaf (mean ys idx)
      end
    in
    { root = grow (Array.init n (fun i -> i)) 0; n_features }

  let rec predict_node node x =
    match node with
    | Leaf v -> v
    | Split { feat; bin; left; right; _ } ->
        if x.(feat) <= bin then predict_node left x else predict_node right x

  let predict t x = predict_node t.root x

  let gains t =
    let acc = Array.make t.n_features 0.0 in
    let rec walk = function
      | Leaf _ -> ()
      | Split { feat; gain; left; right; _ } ->
          acc.(feat) <- acc.(feat) +. gain;
          walk left;
          walk right
    in
    walk t.root;
    acc
end

type params = { n_trees : int; learning_rate : float; tree : Tree.params }

let default_params = { n_trees = 24; learning_rate = 0.3; tree = Tree.default_params }

type t = {
  base : float;
  trees : Tree.t list;
  rate : float;
  n_features : int;
}

let fit ?(params = default_params) ~n_bins xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Gbt_ref.fit: empty data";
  let base = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
  let preds = Array.make n base in
  let trees = ref [] in
  for _round = 1 to params.n_trees do
    (* Squared loss: the negative gradient is the residual. *)
    let residuals = Array.init n (fun i -> ys.(i) -. preds.(i)) in
    let tree = Tree.fit ~params:params.tree ~n_bins xs residuals in
    trees := tree :: !trees;
    let contrib = Array.init n (fun i -> Tree.predict tree xs.(i)) in
    Array.iteri
      (fun i c -> preds.(i) <- preds.(i) +. (params.learning_rate *. c))
      contrib
  done;
  { base; trees = List.rev !trees; rate = params.learning_rate; n_features = Array.length xs.(0) }

let predict t x =
  List.fold_left (fun acc tree -> acc +. (t.rate *. Tree.predict tree x)) t.base t.trees

let feature_gains t =
  let acc = Array.make t.n_features 0.0 in
  List.iter
    (fun tree ->
      let g = Tree.gains tree in
      Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) g)
    t.trees;
  acc

let n_trees t = List.length t.trees

(* Canonical ensemble serialization shared with the production engine
   ([Gbt.dump]): byte-equal dumps mean byte-identical fitted models.
   Floats print as hex ("%h"), so the equality is exact. *)
let dump t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "base=%h rate=%h nf=%d\n" t.base t.rate t.n_features);
  List.iteri
    (fun ti tree ->
      Buffer.add_string buf (Printf.sprintf "tree %d: " ti);
      let rec walk = function
        | Tree.Leaf v -> Buffer.add_string buf (Printf.sprintf "L%h" v)
        | Tree.Split { feat; bin; gain; left; right } ->
            Buffer.add_string buf (Printf.sprintf "S%d:%d:%h(" feat bin gain);
            walk left;
            Buffer.add_char buf ',';
            walk right;
            Buffer.add_char buf ')'
      in
      walk tree.Tree.root;
      Buffer.add_char buf '\n')
    t.trees;
  Buffer.contents buf
