(** Assignment interning — the identity layer of the flat search engine.

    Maps each distinct assignment to a dense int id (allocated
    contiguously from 0), hashing its bindings structurally exactly once
    and memoizing the canonical {!Heron_csp.Assignment.key} string per
    id, so the search loop's dedupe/seen/cache/quarantine bookkeeping is
    int-keyed array access with no per-touch string building. Dense ids
    double as indices into per-id side tables (cache flags, cached
    feature rows, dedupe stamps).

    Counters: [search.interned] counts distinct assignments admitted,
    [search.intern_hits] counts re-interns resolved to an existing id.
    Interning only happens on the sequential control path, so both are
    independent of pool size. *)

module Assignment = Heron_csp.Assignment

type t

val create : unit -> t

val size : t -> int
(** Number of ids allocated; valid ids are [0 .. size - 1]. *)

val intern : t -> Assignment.t -> int
(** The id of this assignment, allocating the next dense id on first
    sight (structural equality; the interned copy is the first one
    seen). *)

val intern_keyed : t -> Assignment.t -> string -> int
(** [intern_keyed t a key] is [intern t a], additionally memoizing [key]
    as the id's key string. The caller guarantees
    [key = Assignment.key a] — checkpoint import uses this to recycle
    the strings it just parsed. *)

val assignment : t -> int -> Assignment.t

val key : t -> int -> string
(** Canonical key string of an id, built on first use and memoized. *)
