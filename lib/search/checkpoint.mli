(** Crash-safe checkpoints of a CGA exploration: a versioned JSON
    rendering of {!Cga.snapshot}, written atomically (tmp + rename) so a
    kill at any instant leaves either the previous checkpoint or the new
    one, never a torn file.

    The [label] ties a checkpoint to the run that produced it (operator,
    budget, seed, fault spec ...): {!load} returns it so callers can
    refuse to resume a checkpoint from a different campaign. *)

val version : int

val save : path:string -> label:string -> Cga.snapshot -> unit
(** Atomic write: the JSON lands in [path ^ ".tmp"] and is renamed over
    [path] only once complete. *)

val load : path:string -> (string * Cga.snapshot, string) result
(** Read back [(label, snapshot)]. All diagnostics name the offending
    field, e.g. ["checkpoint: recorder.cache[3]: expected [key, latency]"]. *)

val describe : string * Cga.snapshot -> string
(** One-line human summary (label, iterations, steps, quarantined count)
    for [trace_lint --checkpoint]. *)

val snapshot_to_json : label:string -> Cga.snapshot -> Heron_obs.Json.t
(** The JSON value {!save} writes — exposed so composite checkpoints
    (the multi-task network tuner) can embed per-task snapshots in one
    atomically written file. *)

val snapshot_of_json : Heron_obs.Json.t -> (string * Cga.snapshot, string) result
(** Inverse of {!snapshot_to_json}; diagnostics name the offending
    field exactly as {!load}'s do. *)
