(** The search environment: everything an exploration algorithm needs,
    independent of how programs are built or measured. *)

module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t = {
  problem : Problem.t;  (** the constrained space, [CSP_initial] *)
  measure : Assignment.t -> float option;
      (** hardware measurement: average latency in microseconds, or [None]
          when the program is invalid (fails to compile or run) *)
  rng : Heron_util.Rng.t;
}

type point = {
  step : int;  (** 1-based exploration step *)
  latency : float option;  (** this step's measurement *)
  best : float option;  (** best latency after this step *)
}

type result = {
  best_latency : float option;
  best_assignment : Assignment.t option;
  trace : point list;  (** in step order *)
  invalid : int;  (** number of invalid candidates explored *)
}

val score_of_latency : float -> float
(** Fitness score of a measured latency (higher is better). *)

val score : float option -> float
(** Fitness of a measurement outcome; invalid programs score 0. *)

(** Mutable bookkeeping shared by all searchers: counts steps, maintains
    the trace and the incumbent, and caches measurements by assignment so
    revisiting a configuration costs no extra hardware trial.

    Internally the recorder runs on interned assignments ({!Intern}):
    every configuration is a dense int id, and cache/quarantine/degraded
    state is flat per-id array reads — no string key is built anywhere on
    the hot path (checkpoint export is the only place keys materialize).
    The assignment-keyed API below is unchanged; searchers that already
    hold ids (the {!Cga} flat-pool loop) use the [_id] entry points and
    skip the intern lookup too. *)
module Recorder : sig
  type r

  (** The optional resilience layer: when installed, every fresh
      measurement runs as a {!Resilience} retry session instead of a
      single [measure] call. Configurations that exhaust their retries are
      quarantined (never re-measured, score 0); sessions cut off by the
      per-candidate deadline degrade to the [predict] fallback (the cost
      model), flagged in the trace. With no faults injected the layer is
      byte-for-byte inert. *)
  type resilience

  val make_resilience :
    ?policy:Resilience.policy ->
    (Assignment.t -> attempt:int -> Resilience.attempt) ->
    resilience

  val set_fallback : resilience -> (Assignment.t -> float option) option -> unit
  (** Install (or clear) the predicted-latency fallback used for degraded
      candidates. Searchers that train a cost model update this as the
      model refits. *)

  val create :
    ?cache_cap:int ->
    ?measure_batch:(?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) ->
    ?resilience:resilience ->
    t ->
    budget:int ->
    r
  (** [cache_cap] bounds the measurement cache (default 65536): beyond it,
      the oldest entries are evicted FIFO and counted on the
      [env.cache_evictions] metric. An evicted configuration costs a fresh
      measurement step if revisited, so the default is far above any
      realistic campaign's distinct-configuration count.

      [measure_batch], when given, must agree with [t.measure] element by
      element; {!eval_batch} then measures fresh candidates through it in
      one dispatch (letting the provider reuse per-operator state) instead
      of pool-mapping scalar calls. Ignored when [resilience] is installed
      — retry sessions wrap each measurement individually. *)

  val exhausted : r -> bool
  val steps_left : r -> int

  val cache_size : r -> int
  (** Number of cached measurements (always [<= cache_cap]). *)

  val eval : r -> Assignment.t -> float option
  (** Measures (or replays from cache) and records one exploration step.
      Returns the latency. Cached replays do not consume budget, but a
      secondary cap (50x budget total evaluations) guarantees termination
      for searchers that converge onto already-measured points. *)

  val eval_batch :
    ?pool:Heron_util.Pool.t -> r -> Assignment.t list -> float option list
  (** [eval_batch ?pool r batch] is observably identical to
      [List.map (eval r) batch] — same return values, cache, trace, best
      tracking and budget accounting, all updated in submission order —
      but the underlying hardware measurements of fresh candidates (whole
      retry sessions, when resilience is on) run in parallel on [pool].
      Pool size cannot change the result, only the wall-clock. *)

  val seen : r -> Assignment.t -> bool

  val degraded : r -> Assignment.t -> bool
  (** Whether this configuration's cached value is a cost-model fallback
      rather than a measurement (always [false] without resilience).
      Degraded values never become the incumbent best, and searchers must
      not feed them back into model training. *)

  (** {2 Interned entry points}

      The id-keyed face of the same recorder: [intern] maps an assignment
      to its dense id (hashing it once), and the [_id] functions are the
      O(1) array-read equivalents of their assignment-keyed namesakes —
      same values, counters, trace and budget accounting. *)

  val interner : r -> Intern.t
  (** The recorder's intern table. Searchers share it so population ids
      and recorder ids coincide (one id namespace per run). *)

  val intern : r -> Assignment.t -> int

  val seen_id : r -> int -> bool
  val degraded_id : r -> int -> bool
  val eval_id : r -> int -> float option

  val eval_batch_ids : ?pool:Heron_util.Pool.t -> r -> int array -> float option array
  (** [eval_batch] over interned ids; element [i] of the result is the
      latency of [ids.(i)]. *)

  val finish : r -> result

  (** Serializable snapshot of a recorder for checkpoint/resume. *)
  type export = {
    x_steps : int;
    x_evals : int;
    x_invalid : int;
    x_best : float option;
    x_best_a : Assignment.t option;
    x_trace : point list;  (** in step order *)
    x_cache : (string * float option) list;  (** in FIFO insertion order *)
    x_quarantined : string list;  (** sorted *)
    x_degraded : string list;  (** sorted *)
  }

  val export : r -> export

  val import :
    ?cache_cap:int ->
    ?measure_batch:(?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) ->
    ?resilience:resilience ->
    t ->
    budget:int ->
    export ->
    r
  (** Rebuild a recorder in exactly the exported state (cache in the same
      FIFO order, quarantine and degraded sets restored when [resilience]
      is given), so a resumed search continues byte-identically to one
      that was never interrupted. Exported keys are parsed back into
      assignments with {!Assignment.of_key}; a key that is not a
      canonical rendering (hand-edited or corrupt checkpoint) raises
      [Invalid_argument] before any state is restored into the run. *)
end
