(** The search environment: everything an exploration algorithm needs,
    independent of how programs are built or measured. *)

module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment

type t = {
  problem : Problem.t;  (** the constrained space, [CSP_initial] *)
  measure : Assignment.t -> float option;
      (** hardware measurement: average latency in microseconds, or [None]
          when the program is invalid (fails to compile or run) *)
  rng : Heron_util.Rng.t;
}

type point = {
  step : int;  (** 1-based exploration step *)
  latency : float option;  (** this step's measurement *)
  best : float option;  (** best latency after this step *)
}

type result = {
  best_latency : float option;
  best_assignment : Assignment.t option;
  trace : point list;  (** in step order *)
  invalid : int;  (** number of invalid candidates explored *)
}

val score_of_latency : float -> float
(** Fitness score of a measured latency (higher is better). *)

val score : float option -> float
(** Fitness of a measurement outcome; invalid programs score 0. *)

(** Mutable bookkeeping shared by all searchers: counts steps, maintains
    the trace and the incumbent, and caches measurements by assignment so
    revisiting a configuration costs no extra hardware trial. *)
module Recorder : sig
  type r

  val create : ?cache_cap:int -> t -> budget:int -> r
  (** [cache_cap] bounds the measurement cache (default 65536): beyond it,
      the oldest entries are evicted FIFO and counted on the
      [env.cache_evictions] metric. An evicted configuration costs a fresh
      measurement step if revisited, so the default is far above any
      realistic campaign's distinct-configuration count. *)

  val exhausted : r -> bool
  val steps_left : r -> int

  val cache_size : r -> int
  (** Number of cached measurements (always [<= cache_cap]). *)

  val eval : r -> Assignment.t -> float option
  (** Measures (or replays from cache) and records one exploration step.
      Returns the latency. Cached replays do not consume budget, but a
      secondary cap (50x budget total evaluations) guarantees termination
      for searchers that converge onto already-measured points. *)

  val eval_batch :
    ?pool:Heron_util.Pool.t -> r -> Assignment.t list -> float option list
  (** [eval_batch ?pool r batch] is observably identical to
      [List.map (eval r) batch] — same return values, cache, trace, best
      tracking and budget accounting, all updated in submission order —
      but the underlying hardware measurements of fresh candidates run in
      parallel on [pool]. Pool size cannot change the result, only the
      wall-clock. *)

  val seen : r -> Assignment.t -> bool
  val finish : r -> result
end
