(** Frozen pre-overhaul CGA loop — the differential oracle for the
    interned flat-pool engine in {!Cga}. List-rebuilt populations,
    string-keyed dedupe/seen through {!Env_ref.Recorder}, polymorphic
    full sorts for ranking. Shares {!Cga}'s [params], [outcome] and
    [snapshot] types so runs and checkpoints compare byte for byte. *)

val run :
  ?params:Cga.params ->
  ?pool:Heron_util.Pool.t ->
  ?measure_batch:
    (?pool:Heron_util.Pool.t ->
    Heron_csp.Assignment.t array ->
    float option array) ->
  ?resilience:Env_ref.Recorder.resilience ->
  ?resume:Cga.snapshot ->
  ?on_snapshot:(Cga.snapshot -> unit) ->
  Env.t ->
  budget:int ->
  Cga.outcome
(** Byte-identical in results, traces, snapshots and RNG consumption to
    the pre-overhaul {!Cga.run}. The only intentional difference from the
    historical code is bookkeeping: step-3 ranking is charged to
    [time_search_s] (both engines charge it identically). *)
