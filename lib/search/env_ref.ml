(* Frozen pre-overhaul recorder, kept verbatim as the differential oracle
   for the interned flat-array engine in {!Env} (PR 4/6 playbook: freeze
   the old code, demand byte-identical results). Every bookkeeping touch
   here re-derives the string key with [Assignment.key] and stores it in
   string-keyed hash tables — exactly the cost profile the overhaul
   removes. Do not modify except to keep it compiling: the [search_engine]
   property group and [@bench-search] both diff the live engine against
   this one.

   The recorder shares {!Env}'s [t], [point], [result] and
   [Recorder.export] types, so exports, snapshots and checkpoints built
   from either engine can be compared byte for byte. *)

module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

module Recorder = struct
  (* Counter handles are shared with the live recorder by name:
     [Obs.Counter.make] is idempotent, so both engines advance the same
     metrics and counter-based tests hold for either. *)
  let c_evals = Obs.Counter.make "env.evals"
  let c_cache_hits = Obs.Counter.make "env.cache_hits"
  let c_steps = Obs.Counter.make "env.measure_steps"
  let c_invalid = Obs.Counter.make "env.invalid"
  let c_skips = Obs.Counter.make "env.budget_skips"
  let c_evictions = Obs.Counter.make "env.cache_evictions"
  let c_retries = Obs.Counter.make "env.retries"
  let c_quarantined = Obs.Counter.make "env.quarantined"
  let c_quarantine_hits = Obs.Counter.make "env.quarantine_hits"
  let c_degraded = Obs.Counter.make "env.degraded"
  let c_fault_timeouts = Obs.Counter.make "env.fault_timeouts"
  let c_fault_crashes = Obs.Counter.make "env.fault_crashes"
  let c_fault_hangs = Obs.Counter.make "env.fault_hangs"

  type resilience = {
    policy : Resilience.policy;
    attempt_measure : Assignment.t -> attempt:int -> Resilience.attempt;
    mutable predict : (Assignment.t -> float option) option;
    quarantined : (string, unit) Hashtbl.t;
    degraded : (string, unit) Hashtbl.t;
  }

  let make_resilience ?(policy = Resilience.default_policy) attempt_measure =
    {
      policy;
      attempt_measure;
      predict = None;
      quarantined = Hashtbl.create 32;
      degraded = Hashtbl.create 32;
    }

  let set_fallback rz predict = rz.predict <- predict

  type r = {
    env : Env.t;
    budget : int;
    resilience : resilience option;
    measure_batch :
      (?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) option;
    cache : (string, float option) Hashtbl.t;
    cache_cap : int;
    cache_order : string Queue.t;  (* insertion order, for FIFO eviction *)
    mutable steps : int;
    mutable evals : int;  (* total eval calls, cached replays included *)
    mutable best : float option;
    mutable best_a : Assignment.t option;
    mutable trace_rev : Env.point list;
    mutable invalid : int;
  }

  let default_cache_cap = 65_536

  let create ?(cache_cap = default_cache_cap) ?measure_batch ?resilience env ~budget =
    {
      env;
      budget;
      resilience;
      measure_batch;
      cache = Hashtbl.create 256;
      cache_cap = max 1 cache_cap;
      cache_order = Queue.create ();
      steps = 0;
      evals = 0;
      best = None;
      best_a = None;
      trace_rev = [];
      invalid = 0;
    }

  let cache_size r = Hashtbl.length r.cache

  let quarantined_key r key =
    match r.resilience with None -> false | Some rz -> Hashtbl.mem rz.quarantined key

  let degraded r a =
    match r.resilience with
    | None -> false
    | Some rz -> Hashtbl.mem rz.degraded (Assignment.key a)

  let cache_insert r key l =
    while Hashtbl.length r.cache >= r.cache_cap do
      let oldest = Queue.pop r.cache_order in
      Hashtbl.remove r.cache oldest;
      Obs.Counter.incr c_evictions
    done;
    Hashtbl.replace r.cache key l;
    Queue.push key r.cache_order

  let commit_fresh ?(degraded = false) ?(quarantined = false) r a key l =
    cache_insert r key l;
    r.steps <- r.steps + 1;
    Obs.Counter.incr c_steps;
    (match l with
    | None ->
        if not (degraded || quarantined) then begin
          r.invalid <- r.invalid + 1;
          Obs.Counter.incr c_invalid
        end
    | Some lat ->
        if not degraded then begin
          let better = match r.best with None -> true | Some b -> lat < b in
          if better then begin
            r.best <- Some lat;
            r.best_a <- Some a
          end
        end);
    r.trace_rev <- { Env.step = r.steps; latency = l; best = r.best } :: r.trace_rev;
    if Obs.enabled () then
      Obs.emit "eval"
        ([
           ("step", Json.Int r.steps);
           ("latency", match l with None -> Json.Null | Some x -> Json.Float x);
           ("best", match r.best with None -> Json.Null | Some x -> Json.Float x);
         ]
        @ (if degraded then [ ("degraded", Json.Bool true) ] else [])
        @ if quarantined then [ ("quarantined", Json.Bool true) ] else []);
    l

  type outcome = Plain of float option | Resilient of Resilience.verdict

  let measure_outcome r a =
    match r.resilience with
    | None -> Plain (r.env.Env.measure a)
    | Some rz ->
        Resilient (Resilience.run rz.policy (fun ~attempt -> rz.attempt_measure a ~attempt))

  let commit_outcome r a key = function
    | Plain l -> commit_fresh r a key l
    | Resilient v -> (
        let rz =
          match r.resilience with
          | Some rz -> rz
          | None -> assert false (* Resilient outcomes only arise with resilience on *)
        in
        let t = Resilience.tally_of v in
        Obs.Counter.add c_retries t.Resilience.retries;
        Obs.Counter.add c_fault_timeouts t.Resilience.timeouts;
        Obs.Counter.add c_fault_crashes t.Resilience.crashes;
        Obs.Counter.add c_fault_hangs t.Resilience.hangs;
        match v with
        | Resilience.Ok_measured { latency; _ } -> commit_fresh r a key (Some latency)
        | Resilience.Invalid_config _ -> commit_fresh r a key None
        | Resilience.Degraded _ ->
            Obs.Counter.incr c_degraded;
            Hashtbl.replace rz.degraded key ();
            let l = match rz.predict with None -> None | Some p -> p a in
            commit_fresh ~degraded:true r a key l
        | Resilience.Quarantined _ ->
            Obs.Counter.incr c_quarantined;
            Hashtbl.replace rz.quarantined key ();
            commit_fresh ~quarantined:true r a key None)

  let exhausted r = r.steps >= r.budget || r.evals >= 50 * r.budget
  let steps_left r = max 0 (r.budget - r.steps)

  let seen r a = Hashtbl.mem r.cache (Assignment.key a)

  let eval r a =
    r.evals <- r.evals + 1;
    Obs.Counter.incr c_evals;
    let key = Assignment.key a in
    match Hashtbl.find_opt r.cache key with
    | Some l ->
        Obs.Counter.incr c_cache_hits;
        l
    | None ->
        if quarantined_key r key then begin
          Obs.Counter.incr c_quarantine_hits;
          None
        end
        else if exhausted r then begin
          Obs.Counter.incr c_skips;
          None
        end
        else commit_outcome r a key (measure_outcome r a)

  type plan =
    | Cached of float option
    | Run of int
    | Dup of int
    | Skip
    | Qhit

  let eval_batch ?pool r batch =
    let batch = Array.of_list batch in
    let n = Array.length batch in
    let plans = Array.make n Skip in
    let jobs_rev = ref [] and n_jobs = ref 0 in
    let evals_v = ref r.evals and steps_v = ref r.steps in
    let fresh_keys = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      incr evals_v;
      let key = Assignment.key batch.(i) in
      match Hashtbl.find_opt r.cache key with
      | Some l -> plans.(i) <- Cached l
      | None -> (
          match Hashtbl.find_opt fresh_keys key with
          | Some j -> plans.(i) <- Dup j
          | None ->
              if quarantined_key r key then plans.(i) <- Qhit
              else if !steps_v >= r.budget || !evals_v >= 50 * r.budget then
                plans.(i) <- Skip
              else begin
                plans.(i) <- Run !n_jobs;
                Hashtbl.replace fresh_keys key !n_jobs;
                jobs_rev := batch.(i) :: !jobs_rev;
                incr n_jobs;
                incr steps_v
              end)
    done;
    let jobs = Array.of_list (List.rev !jobs_rev) in
    let measured =
      match (r.measure_batch, r.resilience) with
      | Some mb, None -> Array.map (fun l -> Plain l) (mb ?pool jobs)
      | _ -> Heron_util.Pool.map ?pool (fun a -> measure_outcome r a) jobs
    in
    Array.to_list
      (Array.mapi
         (fun i a ->
           r.evals <- r.evals + 1;
           Obs.Counter.incr c_evals;
           match plans.(i) with
           | Cached l ->
               Obs.Counter.incr c_cache_hits;
               l
           | Dup j -> (
               Obs.Counter.incr c_cache_hits;
               match Hashtbl.find_opt r.cache (Assignment.key jobs.(j)) with
               | Some l -> l
               | None -> None)
           | Skip ->
               Obs.Counter.incr c_skips;
               None
           | Qhit ->
               Obs.Counter.incr c_quarantine_hits;
               None
           | Run j -> commit_outcome r a (Assignment.key a) measured.(j))
         batch)

  let finish r =
    {
      Env.best_latency = r.best;
      best_assignment = r.best_a;
      trace = List.rev r.trace_rev;
      invalid = r.invalid;
    }

  (* ---------- checkpointing (shared export type with the live engine) -- *)

  let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

  let export r =
    {
      Env.Recorder.x_steps = r.steps;
      x_evals = r.evals;
      x_invalid = r.invalid;
      x_best = r.best;
      x_best_a = r.best_a;
      x_trace = List.rev r.trace_rev;
      x_cache =
        List.rev
          (Queue.fold (fun acc key -> (key, Hashtbl.find r.cache key) :: acc) [] r.cache_order);
      x_quarantined = (match r.resilience with None -> [] | Some rz -> sorted_keys rz.quarantined);
      x_degraded = (match r.resilience with None -> [] | Some rz -> sorted_keys rz.degraded);
    }

  let import ?cache_cap ?measure_batch ?resilience env ~budget (x : Env.Recorder.export) =
    let r = create ?cache_cap ?measure_batch ?resilience env ~budget in
    List.iter
      (fun (key, l) ->
        Hashtbl.replace r.cache key l;
        Queue.push key r.cache_order)
      x.Env.Recorder.x_cache;
    r.steps <- x.Env.Recorder.x_steps;
    r.evals <- x.Env.Recorder.x_evals;
    r.invalid <- x.Env.Recorder.x_invalid;
    r.best <- x.Env.Recorder.x_best;
    r.best_a <- x.Env.Recorder.x_best_a;
    r.trace_rev <- List.rev x.Env.Recorder.x_trace;
    (match resilience with
    | None -> ()
    | Some rz ->
        List.iter (fun k -> Hashtbl.replace rz.quarantined k ()) x.Env.Recorder.x_quarantined;
        List.iter (fun k -> Hashtbl.replace rz.degraded k ()) x.Env.Recorder.x_degraded);
    r
end
