module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

type t = {
  problem : Problem.t;
  measure : Assignment.t -> float option;
  rng : Heron_util.Rng.t;
}

type point = { step : int; latency : float option; best : float option }

type result = {
  best_latency : float option;
  best_assignment : Assignment.t option;
  trace : point list;
  invalid : int;
}

let score_of_latency l = 1000.0 /. l

let score = function None -> 0.0 | Some l -> score_of_latency l

(* The recorder is the interned flat-array engine: every assignment it
   touches is mapped to a dense int id by {!Intern} (hash computed once,
   key string materialized only for checkpoints), and all per-config
   bookkeeping — cache membership and values, quarantine and degraded
   marks — lives in flat per-id arrays grown alongside the intern table.
   [Env_ref.Recorder] is the frozen pre-overhaul string-keyed engine;
   the [search_engine] property group holds the two byte-identical. *)
module Recorder = struct
  let c_evals = Obs.Counter.make "env.evals"
  let c_cache_hits = Obs.Counter.make "env.cache_hits"
  let c_steps = Obs.Counter.make "env.measure_steps"
  let c_invalid = Obs.Counter.make "env.invalid"
  let c_skips = Obs.Counter.make "env.budget_skips"
  let c_evictions = Obs.Counter.make "env.cache_evictions"

  (* Resilience outcomes (all zero when no resilience layer is installed,
     so fault-free runs emit no extra counter events). *)
  let c_retries = Obs.Counter.make "env.retries"
  let c_quarantined = Obs.Counter.make "env.quarantined"
  let c_quarantine_hits = Obs.Counter.make "env.quarantine_hits"
  let c_degraded = Obs.Counter.make "env.degraded"
  let c_fault_timeouts = Obs.Counter.make "env.fault_timeouts"
  let c_fault_crashes = Obs.Counter.make "env.fault_crashes"
  let c_fault_hangs = Obs.Counter.make "env.fault_hangs"

  type resilience = {
    policy : Resilience.policy;
    attempt_measure : Assignment.t -> attempt:int -> Resilience.attempt;
    mutable predict : (Assignment.t -> float option) option;
  }

  let make_resilience ?(policy = Resilience.default_policy) attempt_measure =
    { policy; attempt_measure; predict = None }

  let set_fallback rz predict = rz.predict <- predict

  (* Per-id state bits packed into one byte. *)
  let f_cached = 1
  let f_quarantined = 2
  let f_degraded = 4

  type r = {
    env : t;
    budget : int;
    resilience : resilience option;
    measure_batch : (?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) option;
    intern : Intern.t;
    mutable flags : Bytes.t;  (* per-id f_* bits *)
    mutable cvals : float option array;  (* per-id cached measurement *)
    cache_cap : int;
    cache_order : int Queue.t;  (* insertion order, for FIFO eviction *)
    mutable cache_n : int;  (* ids currently holding f_cached *)
    mutable quar_rev : int list;  (* quarantined ids, newest first *)
    mutable degr_rev : int list;  (* degraded ids, newest first *)
    mutable steps : int;
    mutable evals : int;  (* total eval calls, cached replays included *)
    mutable best : float option;
    mutable best_a : Assignment.t option;
    mutable trace_rev : point list;
    mutable invalid : int;
  }

  let default_cache_cap = 65_536

  let create ?(cache_cap = default_cache_cap) ?measure_batch ?resilience env ~budget =
    {
      env;
      budget;
      resilience;
      measure_batch;
      intern = Intern.create ();
      flags = Bytes.make 256 '\000';
      cvals = Array.make 256 None;
      cache_cap = max 1 cache_cap;
      cache_order = Queue.create ();
      cache_n = 0;
      quar_rev = [];
      degr_rev = [];
      steps = 0;
      evals = 0;
      best = None;
      best_a = None;
      trace_rev = [];
      invalid = 0;
    }

  let interner r = r.intern

  (* Grow the per-id arrays to cover every allocated id. Readers bound-
     check instead (ids above the watermark carry no flags), so callers
     that only ever read — [seen_id] on freshly interned populations —
     cost nothing. *)
  let ensure r =
    let n = Intern.size r.intern in
    if n > Bytes.length r.flags then begin
      let cap = ref (Bytes.length r.flags) in
      while n > !cap do
        cap := 2 * !cap
      done;
      let flags = Bytes.make !cap '\000' in
      Bytes.blit r.flags 0 flags 0 (Bytes.length r.flags);
      r.flags <- flags;
      let cvals = Array.make !cap None in
      Array.blit r.cvals 0 cvals 0 (Array.length r.cvals);
      r.cvals <- cvals
    end

  let intern r a =
    let id = Intern.intern r.intern a in
    ensure r;
    id

  let get_flag r id bit =
    id < Bytes.length r.flags && Char.code (Bytes.unsafe_get r.flags id) land bit <> 0

  let set_flag r id bit =
    ensure r;
    Bytes.unsafe_set r.flags id
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get r.flags id) lor bit))

  let clear_flag r id bit =
    Bytes.unsafe_set r.flags id
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get r.flags id) land lnot bit))

  let cache_size r = r.cache_n

  let seen_id r id = get_flag r id f_cached
  let seen r a = seen_id r (intern r a)

  let degraded_id r id = get_flag r id f_degraded
  let degraded r a = degraded_id r (intern r a)

  let cached_value r id = if get_flag r id f_cached then r.cvals.(id) else None

  (* Insert a fresh measurement, evicting oldest entries beyond the cap.
     Evicted configurations cost a fresh step if revisited, so the default
     cap is far above any realistic campaign's distinct-config count. *)
  let cache_insert r id l =
    while r.cache_n >= r.cache_cap do
      let oldest = Queue.pop r.cache_order in
      if get_flag r oldest f_cached then begin
        clear_flag r oldest f_cached;
        r.cvals.(oldest) <- None;
        r.cache_n <- r.cache_n - 1
      end;
      Obs.Counter.incr c_evictions
    done;
    ensure r;
    if not (get_flag r id f_cached) then r.cache_n <- r.cache_n + 1;
    set_flag r id f_cached;
    r.cvals.(id) <- l;
    Queue.push id r.cache_order

  (* Shared commit path of [eval] and [eval_batch]: bookkeeping for one
     fresh measurement, in submission order. A [degraded] commit stores a
     cost-model prediction, not a measurement: it never becomes the
     incumbent best. Neither degraded nor quarantined commits count as
     [invalid] — that bucket means "the validator rejected the program". *)
  let commit_fresh ?(degraded = false) ?(quarantined = false) r id l =
    cache_insert r id l;
    r.steps <- r.steps + 1;
    Obs.Counter.incr c_steps;
    (match l with
    | None ->
        if not (degraded || quarantined) then begin
          r.invalid <- r.invalid + 1;
          Obs.Counter.incr c_invalid
        end
    | Some lat ->
        if not degraded then begin
          let better = match r.best with None -> true | Some b -> lat < b in
          if better then begin
            r.best <- Some lat;
            r.best_a <- Some (Intern.assignment r.intern id)
          end
        end);
    r.trace_rev <- { step = r.steps; latency = l; best = r.best } :: r.trace_rev;
    if Obs.enabled () then
      Obs.emit "eval"
        ([
           ("step", Json.Int r.steps);
           ("latency", match l with None -> Json.Null | Some x -> Json.Float x);
           ("best", match r.best with None -> Json.Null | Some x -> Json.Float x);
         ]
        @ (if degraded then [ ("degraded", Json.Bool true) ] else [])
        @ if quarantined then [ ("quarantined", Json.Bool true) ] else []);
    l

  (* The measurement of one fresh candidate, safe to run on a pool worker:
     either the plain measure call, or a full resilient retry session
     (attempts, simulated backoff). All mutable bookkeeping happens later,
     in [commit_outcome], sequentially. *)
  type outcome = Plain of float option | Resilient of Resilience.verdict

  let measure_outcome r a =
    match r.resilience with
    | None -> Plain (r.env.measure a)
    | Some rz ->
        Resilient (Resilience.run rz.policy (fun ~attempt -> rz.attempt_measure a ~attempt))

  let commit_outcome r id = function
    | Plain l -> commit_fresh r id l
    | Resilient v -> (
        let rz =
          match r.resilience with
          | Some rz -> rz
          | None -> assert false (* Resilient outcomes only arise with resilience on *)
        in
        let t = Resilience.tally_of v in
        Obs.Counter.add c_retries t.Resilience.retries;
        Obs.Counter.add c_fault_timeouts t.Resilience.timeouts;
        Obs.Counter.add c_fault_crashes t.Resilience.crashes;
        Obs.Counter.add c_fault_hangs t.Resilience.hangs;
        match v with
        | Resilience.Ok_measured { latency; _ } -> commit_fresh r id (Some latency)
        | Resilience.Invalid_config _ -> commit_fresh r id None
        | Resilience.Degraded _ ->
            Obs.Counter.incr c_degraded;
            if not (get_flag r id f_degraded) then begin
              set_flag r id f_degraded;
              r.degr_rev <- id :: r.degr_rev
            end;
            let l =
              match rz.predict with
              | None -> None
              | Some p -> p (Intern.assignment r.intern id)
            in
            commit_fresh ~degraded:true r id l
        | Resilience.Quarantined _ ->
            Obs.Counter.incr c_quarantined;
            if not (get_flag r id f_quarantined) then begin
              set_flag r id f_quarantined;
              r.quar_rev <- id :: r.quar_rev
            end;
            commit_fresh ~quarantined:true r id None)

  (* The secondary cap bounds searchers whose populations converge onto
     already-measured configurations (replays are free in budget terms but
     must not allow an infinite loop). *)
  let exhausted r = r.steps >= r.budget || r.evals >= 50 * r.budget
  let steps_left r = max 0 (r.budget - r.steps)

  let eval_id r id =
    r.evals <- r.evals + 1;
    Obs.Counter.incr c_evals;
    if get_flag r id f_cached then begin
      Obs.Counter.incr c_cache_hits;
      r.cvals.(id)
    end
    else if get_flag r id f_quarantined then begin
      (* Reachable only after the quarantined cache entry was evicted:
         the config is still never re-measured and still scores 0. *)
      Obs.Counter.incr c_quarantine_hits;
      None
    end
    else if exhausted r then begin
      Obs.Counter.incr c_skips;
      None
    end
    else commit_outcome r id (measure_outcome r (Intern.assignment r.intern id))

  let eval r a = eval_id r (intern r a)

  (* What [eval] would do with one batch element, decided up front so the
     expensive [measure] calls can run in parallel while every piece of
     mutable bookkeeping stays sequential. *)
  type plan =
    | Cached of float option
        (* replay of a pre-batch cache entry, pinned at classification time
           so a (vanishingly rare) mid-batch eviction cannot lose it *)
    | Run of int  (* fresh measurement, index into the parallel job array *)
    | Dup of int  (* same id as job i, measured earlier in this batch *)
    | Skip  (* budget exhausted: eval would return None unmeasured *)
    | Qhit  (* quarantined (and evicted from cache): never re-measured *)

  let eval_batch_ids ?pool r ids =
    let n = Array.length ids in
    (* Phase 1 — sequential classification, mirroring [eval] exactly:
       cache lookups, the budget check against steps consumed by earlier
       batch elements, within-batch duplicates (the second occurrence of
       an id replays the first one's cache entry), and the quarantine
       flags. All O(1) per element on the per-id arrays. *)
    let plans = Array.make n Skip in
    let jobs_rev = ref [] and n_jobs = ref 0 in
    let evals_v = ref r.evals and steps_v = ref r.steps in
    let fresh_ids = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      incr evals_v;
      let id = ids.(i) in
      if get_flag r id f_cached then plans.(i) <- Cached r.cvals.(id)
      else
        match Hashtbl.find_opt fresh_ids id with
        | Some j -> plans.(i) <- Dup j
        | None ->
            if get_flag r id f_quarantined then plans.(i) <- Qhit
            else if !steps_v >= r.budget || !evals_v >= 50 * r.budget then
              plans.(i) <- Skip
            else begin
              plans.(i) <- Run !n_jobs;
              Hashtbl.replace fresh_ids id !n_jobs;
              jobs_rev := id :: !jobs_rev;
              incr n_jobs;
              incr steps_v
            end
    done;
    (* Phase 2 — the only parallel part: run the measurer (with its whole
       retry session when resilience is on) on every fresh candidate.
       Results land by job index. *)
    let job_ids = Array.of_list (List.rev !jobs_rev) in
    let jobs = Array.map (Intern.assignment r.intern) job_ids in
    let measured =
      match (r.measure_batch, r.resilience) with
      | Some mb, None ->
          (* The batched provider (ctx reuse, one pool dispatch) — only
             when no resilience layer wraps per-attempt closures around
             each measurement. Same values as the scalar [measure]. *)
          Array.map (fun l -> Plain l) (mb ?pool jobs)
      | _ -> Heron_util.Pool.map ?pool (fun a -> measure_outcome r a) jobs
    in
    (* Phase 3 — sequential commit in submission order, byte-identical to
       calling [eval] element by element. *)
    Array.mapi
      (fun i id ->
        r.evals <- r.evals + 1;
        Obs.Counter.incr c_evals;
        match plans.(i) with
        | Cached l ->
            Obs.Counter.incr c_cache_hits;
            l
        | Dup j ->
            Obs.Counter.incr c_cache_hits;
            (* Replay whatever job [j]'s commit put in the cache. *)
            cached_value r job_ids.(j)
        | Skip ->
            Obs.Counter.incr c_skips;
            None
        | Qhit ->
            Obs.Counter.incr c_quarantine_hits;
            None
        | Run j -> commit_outcome r id measured.(j))
      ids

  let eval_batch ?pool r batch =
    let ids = Array.of_list (List.map (fun a -> intern r a) batch) in
    Array.to_list (eval_batch_ids ?pool r ids)

  let finish r =
    {
      best_latency = r.best;
      best_assignment = r.best_a;
      trace = List.rev r.trace_rev;
      invalid = r.invalid;
    }

  (* ---------- checkpointing ---------- *)

  type export = {
    x_steps : int;
    x_evals : int;
    x_invalid : int;
    x_best : float option;
    x_best_a : Assignment.t option;
    x_trace : point list;
    x_cache : (string * float option) list;
    x_quarantined : string list;
    x_degraded : string list;
  }

  (* Key strings are materialized here — and nowhere else on the hot
     path — via the intern table's memoized [Intern.key], so repeated
     checkpoints of a steady-state run re-use every string. The export
     is byte-identical to the string-keyed engine's: cache in FIFO
     order, quarantine/degraded sets sorted. *)
  let export r =
    {
      x_steps = r.steps;
      x_evals = r.evals;
      x_invalid = r.invalid;
      x_best = r.best;
      x_best_a = r.best_a;
      x_trace = List.rev r.trace_rev;
      x_cache =
        List.rev
          (Queue.fold (fun acc id -> (Intern.key r.intern id, r.cvals.(id)) :: acc) []
             r.cache_order);
      x_quarantined =
        List.sort String.compare (List.rev_map (Intern.key r.intern) r.quar_rev);
      x_degraded = List.sort String.compare (List.rev_map (Intern.key r.intern) r.degr_rev);
    }

  let id_of_key r ctx k =
    match Assignment.of_key k with
    | Ok a -> Intern.intern_keyed r.intern a k
    | Error e ->
        invalid_arg (Printf.sprintf "Env.Recorder.import: %s key %S: %s" ctx k e)

  let import ?cache_cap ?measure_batch ?resilience env ~budget x =
    let r = create ?cache_cap ?measure_batch ?resilience env ~budget in
    List.iter
      (fun (key, l) ->
        let id = id_of_key r "cache" key in
        ensure r;
        if not (get_flag r id f_cached) then r.cache_n <- r.cache_n + 1;
        set_flag r id f_cached;
        r.cvals.(id) <- l;
        Queue.push id r.cache_order)
      x.x_cache;
    r.steps <- x.x_steps;
    r.evals <- x.x_evals;
    r.invalid <- x.x_invalid;
    r.best <- x.x_best;
    r.best_a <- x.x_best_a;
    r.trace_rev <- List.rev x.x_trace;
    (match resilience with
    | None -> ()
    | Some _ ->
        (* Like the pre-overhaul engine, quarantine/degraded marks only
           survive an import when a resilience layer is installed (without
           one they are unreachable anyway). *)
        List.iter
          (fun k ->
            let id = id_of_key r "quarantined" k in
            if not (get_flag r id f_quarantined) then begin
              set_flag r id f_quarantined;
              r.quar_rev <- id :: r.quar_rev
            end)
          x.x_quarantined;
        List.iter
          (fun k ->
            let id = id_of_key r "degraded" k in
            if not (get_flag r id f_degraded) then begin
              set_flag r id f_degraded;
              r.degr_rev <- id :: r.degr_rev
            end)
          x.x_degraded);
    r
end
