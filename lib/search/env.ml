module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

type t = {
  problem : Problem.t;
  measure : Assignment.t -> float option;
  rng : Heron_util.Rng.t;
}

type point = { step : int; latency : float option; best : float option }

type result = {
  best_latency : float option;
  best_assignment : Assignment.t option;
  trace : point list;
  invalid : int;
}

let score_of_latency l = 1000.0 /. l

let score = function None -> 0.0 | Some l -> score_of_latency l

module Recorder = struct
  let c_evals = Obs.Counter.make "env.evals"
  let c_cache_hits = Obs.Counter.make "env.cache_hits"
  let c_steps = Obs.Counter.make "env.measure_steps"
  let c_invalid = Obs.Counter.make "env.invalid"
  let c_skips = Obs.Counter.make "env.budget_skips"
  let c_evictions = Obs.Counter.make "env.cache_evictions"

  type r = {
    env : t;
    budget : int;
    cache : (string, float option) Hashtbl.t;
    cache_cap : int;
    cache_order : string Queue.t;  (* insertion order, for FIFO eviction *)
    mutable steps : int;
    mutable evals : int;  (* total eval calls, cached replays included *)
    mutable best : float option;
    mutable best_a : Assignment.t option;
    mutable trace_rev : point list;
    mutable invalid : int;
  }

  let default_cache_cap = 65_536

  let create ?(cache_cap = default_cache_cap) env ~budget =
    {
      env;
      budget;
      cache = Hashtbl.create 256;
      cache_cap = max 1 cache_cap;
      cache_order = Queue.create ();
      steps = 0;
      evals = 0;
      best = None;
      best_a = None;
      trace_rev = [];
      invalid = 0;
    }

  let cache_size r = Hashtbl.length r.cache

  (* Insert a fresh measurement, evicting oldest entries beyond the cap.
     Evicted configurations cost a fresh step if revisited, so the default
     cap is far above any realistic campaign's distinct-config count. *)
  let cache_insert r key l =
    while Hashtbl.length r.cache >= r.cache_cap do
      let oldest = Queue.pop r.cache_order in
      Hashtbl.remove r.cache oldest;
      Obs.Counter.incr c_evictions
    done;
    Hashtbl.replace r.cache key l;
    Queue.push key r.cache_order

  (* Shared commit path of [eval] and [eval_batch]: bookkeeping for one
     fresh measurement, in submission order. *)
  let commit_fresh r a key l =
    cache_insert r key l;
    r.steps <- r.steps + 1;
    Obs.Counter.incr c_steps;
    (match l with
    | None ->
        r.invalid <- r.invalid + 1;
        Obs.Counter.incr c_invalid
    | Some lat ->
        let better = match r.best with None -> true | Some b -> lat < b in
        if better then begin
          r.best <- Some lat;
          r.best_a <- Some a
        end);
    r.trace_rev <- { step = r.steps; latency = l; best = r.best } :: r.trace_rev;
    if Obs.enabled () then
      Obs.emit "eval"
        [
          ("step", Json.Int r.steps);
          ("latency", match l with None -> Json.Null | Some x -> Json.Float x);
          ("best", match r.best with None -> Json.Null | Some x -> Json.Float x);
        ];
    l

  (* The secondary cap bounds searchers whose populations converge onto
     already-measured configurations (replays are free in budget terms but
     must not allow an infinite loop). *)
  let exhausted r = r.steps >= r.budget || r.evals >= 50 * r.budget
  let steps_left r = max 0 (r.budget - r.steps)

  let seen r a = Hashtbl.mem r.cache (Assignment.key a)

  let eval r a =
    r.evals <- r.evals + 1;
    Obs.Counter.incr c_evals;
    let key = Assignment.key a in
    match Hashtbl.find_opt r.cache key with
    | Some l ->
        Obs.Counter.incr c_cache_hits;
        l
    | None ->
        if exhausted r then begin
          Obs.Counter.incr c_skips;
          None
        end
        else commit_fresh r a key (r.env.measure a)

  (* What [eval] would do with one batch element, decided up front so the
     expensive [measure] calls can run in parallel while every piece of
     mutable bookkeeping stays sequential. *)
  type plan =
    | Cached of float option
        (* replay of a pre-batch cache entry, pinned at classification time
           so a (vanishingly rare) mid-batch eviction cannot lose it *)
    | Run of int  (* fresh measurement, index into the parallel job array *)
    | Dup of int  (* same key as job i, measured earlier in this batch *)
    | Skip  (* budget exhausted: eval would return None unmeasured *)

  let eval_batch ?pool r batch =
    let batch = Array.of_list batch in
    let n = Array.length batch in
    (* Phase 1 — sequential classification, mirroring [eval] exactly:
       cache lookups, the budget check against steps consumed by earlier
       batch elements, and within-batch duplicates (the second occurrence
       of a key replays the first one's cache entry). *)
    let plans = Array.make n Skip in
    let jobs_rev = ref [] and n_jobs = ref 0 in
    let evals_v = ref r.evals and steps_v = ref r.steps in
    let fresh_keys = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      incr evals_v;
      let key = Assignment.key batch.(i) in
      match Hashtbl.find_opt r.cache key with
      | Some l -> plans.(i) <- Cached l
      | None -> (
          match Hashtbl.find_opt fresh_keys key with
          | Some j -> plans.(i) <- Dup j
          | None ->
              if !steps_v >= r.budget || !evals_v >= 50 * r.budget then
                plans.(i) <- Skip
              else begin
                plans.(i) <- Run !n_jobs;
                Hashtbl.replace fresh_keys key !n_jobs;
                jobs_rev := batch.(i) :: !jobs_rev;
                incr n_jobs;
                incr steps_v
              end)
    done;
    (* Phase 2 — the only parallel part: run the measurer on every fresh
       candidate. Results land by job index. *)
    let jobs = Array.of_list (List.rev !jobs_rev) in
    let measured = Heron_util.Pool.map ?pool r.env.measure jobs in
    (* Phase 3 — sequential commit in submission order, byte-identical to
       calling [eval] element by element. *)
    Array.to_list
      (Array.mapi
         (fun i a ->
           r.evals <- r.evals + 1;
           Obs.Counter.incr c_evals;
           match plans.(i) with
           | Cached l ->
               Obs.Counter.incr c_cache_hits;
               l
           | Dup j ->
               Obs.Counter.incr c_cache_hits;
               measured.(j)
           | Skip ->
               Obs.Counter.incr c_skips;
               None
           | Run j -> commit_fresh r a (Assignment.key a) measured.(j))
         batch)

  let finish r =
    {
      best_latency = r.best;
      best_assignment = r.best_a;
      trace = List.rev r.trace_rev;
      invalid = r.invalid;
    }
end
