module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

type t = {
  problem : Problem.t;
  measure : Assignment.t -> float option;
  rng : Heron_util.Rng.t;
}

type point = { step : int; latency : float option; best : float option }

type result = {
  best_latency : float option;
  best_assignment : Assignment.t option;
  trace : point list;
  invalid : int;
}

let score_of_latency l = 1000.0 /. l

let score = function None -> 0.0 | Some l -> score_of_latency l

module Recorder = struct
  let c_evals = Obs.Counter.make "env.evals"
  let c_cache_hits = Obs.Counter.make "env.cache_hits"
  let c_steps = Obs.Counter.make "env.measure_steps"
  let c_invalid = Obs.Counter.make "env.invalid"
  let c_skips = Obs.Counter.make "env.budget_skips"
  let c_evictions = Obs.Counter.make "env.cache_evictions"

  (* Resilience outcomes (all zero when no resilience layer is installed,
     so fault-free runs emit no extra counter events). *)
  let c_retries = Obs.Counter.make "env.retries"
  let c_quarantined = Obs.Counter.make "env.quarantined"
  let c_quarantine_hits = Obs.Counter.make "env.quarantine_hits"
  let c_degraded = Obs.Counter.make "env.degraded"
  let c_fault_timeouts = Obs.Counter.make "env.fault_timeouts"
  let c_fault_crashes = Obs.Counter.make "env.fault_crashes"
  let c_fault_hangs = Obs.Counter.make "env.fault_hangs"

  type resilience = {
    policy : Resilience.policy;
    attempt_measure : Assignment.t -> attempt:int -> Resilience.attempt;
    mutable predict : (Assignment.t -> float option) option;
    quarantined : (string, unit) Hashtbl.t;
    degraded : (string, unit) Hashtbl.t;
  }

  let make_resilience ?(policy = Resilience.default_policy) attempt_measure =
    {
      policy;
      attempt_measure;
      predict = None;
      quarantined = Hashtbl.create 32;
      degraded = Hashtbl.create 32;
    }

  let set_fallback rz predict = rz.predict <- predict

  type r = {
    env : t;
    budget : int;
    resilience : resilience option;
    measure_batch : (?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) option;
    cache : (string, float option) Hashtbl.t;
    cache_cap : int;
    cache_order : string Queue.t;  (* insertion order, for FIFO eviction *)
    mutable steps : int;
    mutable evals : int;  (* total eval calls, cached replays included *)
    mutable best : float option;
    mutable best_a : Assignment.t option;
    mutable trace_rev : point list;
    mutable invalid : int;
  }

  let default_cache_cap = 65_536

  let create ?(cache_cap = default_cache_cap) ?measure_batch ?resilience env ~budget =
    {
      env;
      budget;
      resilience;
      measure_batch;
      cache = Hashtbl.create 256;
      cache_cap = max 1 cache_cap;
      cache_order = Queue.create ();
      steps = 0;
      evals = 0;
      best = None;
      best_a = None;
      trace_rev = [];
      invalid = 0;
    }

  let cache_size r = Hashtbl.length r.cache

  let quarantined_key r key =
    match r.resilience with None -> false | Some rz -> Hashtbl.mem rz.quarantined key

  let degraded r a =
    match r.resilience with
    | None -> false
    | Some rz -> Hashtbl.mem rz.degraded (Assignment.key a)

  (* Insert a fresh measurement, evicting oldest entries beyond the cap.
     Evicted configurations cost a fresh step if revisited, so the default
     cap is far above any realistic campaign's distinct-config count. *)
  let cache_insert r key l =
    while Hashtbl.length r.cache >= r.cache_cap do
      let oldest = Queue.pop r.cache_order in
      Hashtbl.remove r.cache oldest;
      Obs.Counter.incr c_evictions
    done;
    Hashtbl.replace r.cache key l;
    Queue.push key r.cache_order

  (* Shared commit path of [eval] and [eval_batch]: bookkeeping for one
     fresh measurement, in submission order. A [degraded] commit stores a
     cost-model prediction, not a measurement: it never becomes the
     incumbent best. Neither degraded nor quarantined commits count as
     [invalid] — that bucket means "the validator rejected the program". *)
  let commit_fresh ?(degraded = false) ?(quarantined = false) r a key l =
    cache_insert r key l;
    r.steps <- r.steps + 1;
    Obs.Counter.incr c_steps;
    (match l with
    | None ->
        if not (degraded || quarantined) then begin
          r.invalid <- r.invalid + 1;
          Obs.Counter.incr c_invalid
        end
    | Some lat ->
        if not degraded then begin
          let better = match r.best with None -> true | Some b -> lat < b in
          if better then begin
            r.best <- Some lat;
            r.best_a <- Some a
          end
        end);
    r.trace_rev <- { step = r.steps; latency = l; best = r.best } :: r.trace_rev;
    if Obs.enabled () then
      Obs.emit "eval"
        ([
           ("step", Json.Int r.steps);
           ("latency", match l with None -> Json.Null | Some x -> Json.Float x);
           ("best", match r.best with None -> Json.Null | Some x -> Json.Float x);
         ]
        @ (if degraded then [ ("degraded", Json.Bool true) ] else [])
        @ if quarantined then [ ("quarantined", Json.Bool true) ] else []);
    l

  (* The measurement of one fresh candidate, safe to run on a pool worker:
     either the plain measure call, or a full resilient retry session
     (attempts, simulated backoff). All mutable bookkeeping happens later,
     in [commit_outcome], sequentially. *)
  type outcome = Plain of float option | Resilient of Resilience.verdict

  let measure_outcome r a =
    match r.resilience with
    | None -> Plain (r.env.measure a)
    | Some rz ->
        Resilient (Resilience.run rz.policy (fun ~attempt -> rz.attempt_measure a ~attempt))

  let commit_outcome r a key = function
    | Plain l -> commit_fresh r a key l
    | Resilient v -> (
        let rz =
          match r.resilience with
          | Some rz -> rz
          | None -> assert false (* Resilient outcomes only arise with resilience on *)
        in
        let t = Resilience.tally_of v in
        Obs.Counter.add c_retries t.Resilience.retries;
        Obs.Counter.add c_fault_timeouts t.Resilience.timeouts;
        Obs.Counter.add c_fault_crashes t.Resilience.crashes;
        Obs.Counter.add c_fault_hangs t.Resilience.hangs;
        match v with
        | Resilience.Ok_measured { latency; _ } -> commit_fresh r a key (Some latency)
        | Resilience.Invalid_config _ -> commit_fresh r a key None
        | Resilience.Degraded _ ->
            Obs.Counter.incr c_degraded;
            Hashtbl.replace rz.degraded key ();
            let l = match rz.predict with None -> None | Some p -> p a in
            commit_fresh ~degraded:true r a key l
        | Resilience.Quarantined _ ->
            Obs.Counter.incr c_quarantined;
            Hashtbl.replace rz.quarantined key ();
            commit_fresh ~quarantined:true r a key None)

  (* The secondary cap bounds searchers whose populations converge onto
     already-measured configurations (replays are free in budget terms but
     must not allow an infinite loop). *)
  let exhausted r = r.steps >= r.budget || r.evals >= 50 * r.budget
  let steps_left r = max 0 (r.budget - r.steps)

  let seen r a = Hashtbl.mem r.cache (Assignment.key a)

  let eval r a =
    r.evals <- r.evals + 1;
    Obs.Counter.incr c_evals;
    let key = Assignment.key a in
    match Hashtbl.find_opt r.cache key with
    | Some l ->
        Obs.Counter.incr c_cache_hits;
        l
    | None ->
        if quarantined_key r key then begin
          (* Reachable only after the quarantined cache entry was evicted:
             the config is still never re-measured and still scores 0. *)
          Obs.Counter.incr c_quarantine_hits;
          None
        end
        else if exhausted r then begin
          Obs.Counter.incr c_skips;
          None
        end
        else commit_outcome r a key (measure_outcome r a)

  (* What [eval] would do with one batch element, decided up front so the
     expensive [measure] calls can run in parallel while every piece of
     mutable bookkeeping stays sequential. *)
  type plan =
    | Cached of float option
        (* replay of a pre-batch cache entry, pinned at classification time
           so a (vanishingly rare) mid-batch eviction cannot lose it *)
    | Run of int  (* fresh measurement, index into the parallel job array *)
    | Dup of int  (* same key as job i, measured earlier in this batch *)
    | Skip  (* budget exhausted: eval would return None unmeasured *)
    | Qhit  (* quarantined (and evicted from cache): never re-measured *)

  let eval_batch ?pool r batch =
    let batch = Array.of_list batch in
    let n = Array.length batch in
    (* Phase 1 — sequential classification, mirroring [eval] exactly:
       cache lookups, the budget check against steps consumed by earlier
       batch elements, within-batch duplicates (the second occurrence of a
       key replays the first one's cache entry), and the quarantine set. *)
    let plans = Array.make n Skip in
    let jobs_rev = ref [] and n_jobs = ref 0 in
    let evals_v = ref r.evals and steps_v = ref r.steps in
    let fresh_keys = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      incr evals_v;
      let key = Assignment.key batch.(i) in
      match Hashtbl.find_opt r.cache key with
      | Some l -> plans.(i) <- Cached l
      | None -> (
          match Hashtbl.find_opt fresh_keys key with
          | Some j -> plans.(i) <- Dup j
          | None ->
              if quarantined_key r key then plans.(i) <- Qhit
              else if !steps_v >= r.budget || !evals_v >= 50 * r.budget then
                plans.(i) <- Skip
              else begin
                plans.(i) <- Run !n_jobs;
                Hashtbl.replace fresh_keys key !n_jobs;
                jobs_rev := batch.(i) :: !jobs_rev;
                incr n_jobs;
                incr steps_v
              end)
    done;
    (* Phase 2 — the only parallel part: run the measurer (with its whole
       retry session when resilience is on) on every fresh candidate.
       Results land by job index. *)
    let jobs = Array.of_list (List.rev !jobs_rev) in
    let measured =
      match (r.measure_batch, r.resilience) with
      | Some mb, None ->
          (* The batched provider (ctx reuse, one pool dispatch) — only
             when no resilience layer wraps per-attempt closures around
             each measurement. Same values as the scalar [measure]. *)
          Array.map (fun l -> Plain l) (mb ?pool jobs)
      | _ -> Heron_util.Pool.map ?pool (fun a -> measure_outcome r a) jobs
    in
    (* Phase 3 — sequential commit in submission order, byte-identical to
       calling [eval] element by element. *)
    Array.to_list
      (Array.mapi
         (fun i a ->
           r.evals <- r.evals + 1;
           Obs.Counter.incr c_evals;
           match plans.(i) with
           | Cached l ->
               Obs.Counter.incr c_cache_hits;
               l
           | Dup j -> (
               Obs.Counter.incr c_cache_hits;
               (* Replay whatever job [j]'s commit put in the cache. *)
               match Hashtbl.find_opt r.cache (Assignment.key jobs.(j)) with
               | Some l -> l
               | None -> None)
           | Skip ->
               Obs.Counter.incr c_skips;
               None
           | Qhit ->
               Obs.Counter.incr c_quarantine_hits;
               None
           | Run j -> commit_outcome r a (Assignment.key a) measured.(j))
         batch)

  let finish r =
    {
      best_latency = r.best;
      best_assignment = r.best_a;
      trace = List.rev r.trace_rev;
      invalid = r.invalid;
    }

  (* ---------- checkpointing ---------- *)

  type export = {
    x_steps : int;
    x_evals : int;
    x_invalid : int;
    x_best : float option;
    x_best_a : Assignment.t option;
    x_trace : point list;
    x_cache : (string * float option) list;
    x_quarantined : string list;
    x_degraded : string list;
  }

  let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

  let export r =
    {
      x_steps = r.steps;
      x_evals = r.evals;
      x_invalid = r.invalid;
      x_best = r.best;
      x_best_a = r.best_a;
      x_trace = List.rev r.trace_rev;
      x_cache =
        List.rev
          (Queue.fold (fun acc key -> (key, Hashtbl.find r.cache key) :: acc) [] r.cache_order);
      x_quarantined = (match r.resilience with None -> [] | Some rz -> sorted_keys rz.quarantined);
      x_degraded = (match r.resilience with None -> [] | Some rz -> sorted_keys rz.degraded);
    }

  let import ?cache_cap ?measure_batch ?resilience env ~budget x =
    let r = create ?cache_cap ?measure_batch ?resilience env ~budget in
    List.iter
      (fun (key, l) ->
        Hashtbl.replace r.cache key l;
        Queue.push key r.cache_order)
      x.x_cache;
    r.steps <- x.x_steps;
    r.evals <- x.x_evals;
    r.invalid <- x.x_invalid;
    r.best <- x.x_best;
    r.best_a <- x.x_best_a;
    r.trace_rev <- List.rev x.x_trace;
    (match resilience with
    | None -> ()
    | Some rz ->
        List.iter (fun k -> Hashtbl.replace rz.quarantined k ()) x.x_quarantined;
        List.iter (fun k -> Hashtbl.replace rz.degraded k ()) x.x_degraded);
    r
end
