module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Domain = Heron_csp.Domain
module Solver = Heron_csp.Solver
module Rng = Heron_util.Rng

let random_search env ~budget =
  let rec_ = Env.Recorder.create env ~budget in
  let continue = ref true in
  while !continue && not (Env.Recorder.exhausted rec_) do
    match Solver.solve env.Env.rng env.Env.problem with
    | Some a -> ignore (Env.Recorder.eval rec_ a)
    | None -> continue := false
  done;
  Env.Recorder.finish rec_

(* Variables a concrete-chromosome searcher is allowed to flip. *)
let mutable_vars problem =
  match Problem.vars_of_category problem Problem.Tunable with
  | [] -> Array.to_list (Problem.vars problem)
  | vs -> vs

let mutate_one rng problem a =
  let vars = Array.of_list (mutable_vars problem) in
  let v = Rng.choice rng vars in
  Assignment.set a v (Domain.random rng (Problem.domain problem v))

type sa_params = {
  initial_temp : float;
  cooling : float;
  moves_per_step : int;
  restart_after : int;  (** steps without improvement before a fresh start *)
}

let default_sa_params =
  { initial_temp = 1.0; cooling = 0.995; moves_per_step = 1; restart_after = 15 }

let simulated_annealing ?(params = default_sa_params) env ~budget =
  let rec_ = Env.Recorder.create env ~budget in
  match Solver.solve env.Env.rng env.Env.problem with
  | None -> Env.Recorder.finish rec_
  | Some start ->
      let current = ref start in
      let current_fit = ref (Env.score (Env.Recorder.eval rec_ !current)) in
      let temp = ref params.initial_temp in
      let stuck = ref 0 in
      while not (Env.Recorder.exhausted rec_) do
        let neighbor = ref !current in
        for _ = 1 to params.moves_per_step do
          neighbor := mutate_one env.Env.rng env.Env.problem !neighbor
        done;
        let fit = Env.score (Env.Recorder.eval rec_ !neighbor) in
        let accept =
          fit > !current_fit
          || Rng.float env.Env.rng < exp ((fit -. !current_fit) /. max !temp 1e-9)
        in
        if fit > !current_fit then stuck := 0 else incr stuck;
        if accept then begin
          current := !neighbor;
          current_fit := fit
        end;
        (* A dead neighborhood (e.g. stranded in the invalid region of a
           relaxed space) triggers a fresh random start. *)
        if !stuck >= params.restart_after then begin
          (match Solver.solve env.Env.rng env.Env.problem with
          | Some fresh ->
              current := fresh;
              current_fit := Env.score (Env.Recorder.eval rec_ !current)
          | None -> ());
          stuck := 0
        end;
        temp := !temp *. params.cooling
      done;
      Env.Recorder.finish rec_

type ga_params = { pop_size : int; mutation_rate : float; elite : int }

let default_ga_params = { pop_size = 24; mutation_rate = 0.05; elite = 4 }

(* Cumulative weights plus a binary search per draw for the first slot
   reaching the target, replacing the O(n) scan. Scores are non-negative
   ([Env.score] is 0 or 1000/latency), so the cumulative array is
   monotone and the leftmost match is exactly where the scan stopped.
   RNG consumption is unchanged: one [Rng.float] per draw ([Rng.choice]
   on degenerate all-zero totals). Unlike {!Cga.roulette}, rounding
   shortfalls fall back to the FIRST element, as the scan always did. *)
let uniform_roulette rng scored n =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 scored in
  if total <= 0.0 then Array.init n (fun _ -> fst (Rng.choice rng scored))
  else begin
    let m = Array.length scored in
    let cum = Array.make m 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i (_, w) ->
        acc := !acc +. w;
        cum.(i) <- !acc)
      scored;
    Array.init n (fun _ ->
        let target = Rng.float rng *. total in
        if cum.(m - 1) < target then fst scored.(0)
        else begin
          let lo = ref 0 and hi = ref (m - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if cum.(mid) >= target then hi := mid else lo := mid + 1
          done;
          fst scored.(!lo)
        end)
  end

(* Single-point crossover over the declaration-ordered variable vector. *)
let crossover rng problem a b =
  let vars = Problem.vars problem in
  let cut = Rng.int rng (Array.length vars) in
  let bindings =
    Array.to_list
      (Array.mapi
         (fun i v ->
           let src = if i <= cut then a else b in
           match Assignment.find_opt src v with
           | Some x -> (v, x)
           | None -> (v, Domain.min_value (Problem.domain problem v)))
         vars)
  in
  Assignment.of_list bindings

let mutate rng problem rate a =
  List.fold_left
    (fun acc v ->
      if Rng.float rng < rate then
        Assignment.set acc v (Domain.random rng (Problem.domain problem v))
      else acc)
    a (mutable_vars problem)

(* Shared GA skeleton parameterized by the survivor-selection policy and an
   optional offspring repair step. *)
let ga_loop ?(repair = fun _env a -> a) ~select ?(params = default_ga_params) env ~budget =
  let rec_ = Env.Recorder.create env ~budget in
  let init = Solver.rand_sat env.Env.rng env.Env.problem params.pop_size in
  if init = [] then Env.Recorder.finish rec_
  else begin
    let evaluate pop = List.map (fun a -> (a, Env.Recorder.eval rec_ a)) pop in
    let pop = ref (evaluate init) in
    while not (Env.Recorder.exhausted rec_) do
      let scored =
        Array.of_list (List.map (fun (a, l) -> (a, Env.score l)) !pop)
      in
      let parents = uniform_roulette env.Env.rng scored params.pop_size in
      let n_children = max 1 (params.pop_size - params.elite) in
      let children =
        List.init n_children (fun _ ->
            let a = Rng.choice env.Env.rng parents and b = Rng.choice env.Env.rng parents in
            let child = crossover env.Env.rng env.Env.problem a b in
            let child = mutate env.Env.rng env.Env.problem params.mutation_rate child in
            repair env child)
      in
      let child_scores = evaluate children in
      let merged = child_scores @ !pop in
      pop := select env merged params.pop_size
    done;
    Env.Recorder.finish rec_
  end

(* Plain GA: keep the best by fitness (invalid = 0). *)
let select_by_fitness _env merged n =
  List.sort (fun (_, x) (_, y) -> Float.compare (Env.score y) (Env.score x)) merged
  |> List.filteri (fun i _ -> i < n)

let genetic ?params env ~budget = ga_loop ~select:select_by_fitness ?params env ~budget

(* GA-1: stochastic ranking (Runarsson & Yao). A bubble-sort sweep where
   adjacent pairs are compared by fitness with probability pf when either
   violates constraints, by violation count otherwise. *)
let stochastic_rank rng pf scored =
  let arr = Array.of_list scored in
  let n = Array.length arr in
  let fitness (_, l) = Env.score l in
  let viol (a, _) = a in
  for _sweep = 1 to n do
    for i = 0 to n - 2 do
      let (v1, x1) = arr.(i) and (v2, x2) = arr.(i + 1) in
      let both_feasible = fst v1 = 0 && fst v2 = 0 in
      let by_fitness = both_feasible || Rng.float rng < pf in
      let swap =
        if by_fitness then fitness (snd v1, x1) < fitness (snd v2, x2)
        else fst (viol (v1, x1)) > fst (viol (v2, x2))
      in
      if swap then begin
        arr.(i) <- (v2, x2);
        arr.(i + 1) <- (v1, x1)
      end
    done
  done;
  Array.to_list arr

let ga_stochastic_ranking ?params ?(pf = 0.45) env ~budget =
  let select env merged n =
    let annotated =
      List.map
        (fun (a, l) -> ((Problem.violations env.Env.problem a, a), l))
        merged
    in
    stochastic_rank env.Env.rng pf annotated
    |> List.filteri (fun i _ -> i < n)
    |> List.map (fun ((_, a), l) -> (a, l))
  in
  ga_loop ~select ?params env ~budget

(* GA-2: SAT-decoder — repair each offspring into a valid assignment by a
   biased CSP solve. *)
let ga_sat_decoder ?params env ~budget =
  let repair env child =
    match Solver.solve_biased ~max_fails:400 env.Env.rng env.Env.problem child with
    | Some decoded -> decoded
    | None -> child
  in
  ga_loop ~repair ~select:select_by_fitness ?params env ~budget

(* GA-3: multi-objective — Pareto dominance on (fitness up, violations
   down), selected by repeated non-dominated filtering. *)
let ga_multi_objective ?params env ~budget =
  let select env merged n =
    let items =
      List.map
        (fun (a, l) -> (a, l, Env.score l, Problem.violations env.Env.problem a))
        merged
    in
    let dominates (_, _, f1, v1) (_, _, f2, v2) =
      (f1 >= f2 && v1 <= v2) && (f1 > f2 || v1 < v2)
    in
    let rec fronts remaining acc =
      if remaining = [] then List.rev acc
      else
        let nd =
          List.filter
            (fun x -> not (List.exists (fun y -> y != x && dominates y x) remaining))
            remaining
        in
        let nd = if nd = [] then remaining else nd in
        let rest = List.filter (fun x -> not (List.memq x nd)) remaining in
        fronts rest (nd :: acc)
    in
    let ordered = List.concat (fronts items []) in
    ordered |> List.filteri (fun i _ -> i < n) |> List.map (fun (a, l, _, _) -> (a, l))
  in
  ga_loop ~select ?params env ~budget
