(* Assignment interning: the identity layer of the flat search engine.

   Every distinct assignment the loop touches gets a dense int id, with
   its structural hash computed once at intern time and its canonical key
   string materialized at most once (lazily, only when something actually
   needs the string — checkpoint export is the sole hot-path consumer).
   Dedupe, seen/cache/quarantine/degraded checks and the fault paths all
   become O(1) int-keyed array reads instead of rebuilding
   [Assignment.key] on every touch.

   Ids are allocated contiguously from 0, so per-id side tables (cache
   flags, feature rows, dedupe stamps) are plain arrays indexed by id. *)

module Assignment = Heron_csp.Assignment
module Obs = Heron_obs.Obs

let c_interned = Obs.Counter.make "search.interned"
let c_intern_hits = Obs.Counter.make "search.intern_hits"

type t = {
  mutable assignments : Assignment.t array;
  mutable keys : string option array;  (* memoized [Assignment.key] per id *)
  mutable n : int;
  buckets : (int, int list) Hashtbl.t;  (* structural hash -> ids, newest first *)
}

let create () =
  {
    assignments = Array.make 256 Assignment.empty;
    keys = Array.make 256 None;
    n = 0;
    buckets = Hashtbl.create 256;
  }

let size t = t.n

(* FNV-1a over the sorted bindings — no intermediate list or string. *)
let hash a =
  Assignment.fold
    (fun v x h ->
      let h = (h lxor Hashtbl.hash v) * 0x01000193 in
      (h lxor (x land 0xFFFFFF)) * 0x01000193)
    a 0x811C9DC5
  land max_int

let grow t =
  let cap = Array.length t.assignments in
  if t.n >= cap then begin
    let cap' = 2 * cap in
    let assignments = Array.make cap' Assignment.empty in
    Array.blit t.assignments 0 assignments 0 t.n;
    t.assignments <- assignments;
    let keys = Array.make cap' None in
    Array.blit t.keys 0 keys 0 t.n;
    t.keys <- keys
  end

let intern t a =
  let h = hash a in
  let ids = match Hashtbl.find_opt t.buckets h with Some l -> l | None -> [] in
  match List.find_opt (fun id -> Assignment.equal t.assignments.(id) a) ids with
  | Some id ->
      Obs.Counter.incr c_intern_hits;
      id
  | None ->
      grow t;
      let id = t.n in
      t.assignments.(id) <- a;
      t.n <- id + 1;
      Hashtbl.replace t.buckets h (id :: ids);
      Obs.Counter.incr c_interned;
      id

let intern_keyed t a key =
  let id = intern t a in
  if t.keys.(id) = None then t.keys.(id) <- Some key;
  id

let assignment t id = t.assignments.(id)

let key t id =
  match t.keys.(id) with
  | Some k -> k
  | None ->
      let k = Assignment.key t.assignments.(id) in
      t.keys.(id) <- Some k;
      k
