module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Cons = Heron_csp.Cons
module Solver = Heron_csp.Solver
module Model = Heron_cost.Model
module Rng = Heron_util.Rng
module Pool = Heron_util.Pool
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

let c_iterations = Obs.Counter.make "cga.iterations"
let c_generations = Obs.Counter.make "cga.generations"
let c_offspring_attempted = Obs.Counter.make "cga.offspring_attempted"
let c_offspring_accepted = Obs.Counter.make "cga.offspring_accepted"

type key_selection = By_model | Random_keys

type params = {
  pop_size : int;
  generations : int;
  batch : int;
  epsilon : float;
  top_k : int;
  survivors : int;
  key_selection : key_selection;
  mutation : bool;
}

let default_params =
  {
    pop_size = 32;
    generations = 3;
    batch = 16;
    epsilon = 0.15;
    top_k = 8;
    survivors = 16;
    key_selection = By_model;
    mutation = true;
  }

type outcome = {
  result : Env.result;
  model : Model.t;
  jobs : int;
  time_search_s : float;
  time_model_s : float;
  time_measure_s : float;
}

(* Everything the exploration loop carries across an iteration boundary.
   Restoring a snapshot and continuing is byte-identical to never having
   stopped: the RNG state covers every stochastic choice, the recorder
   export covers measurements/trace/quarantine, and the model ensemble is
   reproduced from its samples because GBT fitting is deterministic. *)
type snapshot = {
  s_iter : int;
  s_dry : int;
  s_stopped : bool;
  s_rng_hex : string;
  s_recorder : Env.Recorder.export;
  s_survivors : (Assignment.t * float) list;
  s_model : (int array * float) list;
}

let crossover_csps ?(mutation = true) rng problem ~keys ~parents ~n =
  if Array.length parents < 2 then []
  else
    List.init n (fun _ ->
        let c1 = Rng.choice rng parents and c2 = Rng.choice rng parents in
        let constraints =
          List.filter_map
            (fun v ->
              match (Assignment.find_opt c1 v, Assignment.find_opt c2 v) with
              | Some a, Some b -> Some (Cons.In (v, List.sort_uniq compare [ a; b ]))
              | _ -> None)
            keys
        in
        let constraints =
          if mutation && constraints <> [] then begin
            let drop = Rng.int rng (List.length constraints) in
            List.filteri (fun i _ -> i <> drop) constraints
          end
          else constraints
        in
        Problem.with_extra problem constraints)

(* Roulette-wheel selection on predicted fitness scores. Weights are
   strictly positive (the caller clamps predictions), so the cumulative
   array is monotone and each draw is one [Rng.float] plus a binary
   search for the first slot whose cumulative weight reaches the target —
   the same slot the linear scan stopped at, in O(log n) per draw with
   identical draw-for-draw RNG consumption. *)
let roulette rng scored n =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 scored in
  if total <= 0.0 then Array.init n (fun _ -> fst (Rng.choice rng scored))
  else begin
    let m = Array.length scored in
    let cum = Array.make m 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i (_, w) ->
        acc := !acc +. w;
        cum.(i) <- !acc)
      scored;
    Array.init n (fun _ ->
        let target = Rng.float rng *. total in
        (* Fall back to the LAST element: when floating-point rounding
           leaves the cumulative weight just below [target], the draw
           belongs to the final slot, not to [scored.(0)]. *)
        if cum.(m - 1) < target then fst scored.(m - 1)
        else begin
          let lo = ref 0 and hi = ref (m - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if cum.(mid) >= target then hi := mid else lo := mid + 1
          done;
          fst scored.(!lo)
        end)
  end

let dedupe assignments =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun a ->
      let k = Assignment.key a in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    assignments

let run ?(params = default_params) ?pool ?measure_batch ?resilience ?resume ?on_snapshot env
    ~budget =
  (* At small budgets, shrink the measurement batch so the cost model still
     sees several train/predict rounds. *)
  let params =
    { params with batch = min params.batch (max 4 (budget / 8)) }
  in
  let pool = Pool.resolve pool in
  let model = Model.create env.Env.problem in
  (* Degraded candidates fall back to the model's predicted latency; the
     closure reads the live ensemble, so it tracks every refit. *)
  (match resilience with
  | None -> ()
  | Some rz ->
      Env.Recorder.set_fallback rz
        (Some
           (fun a ->
             let s = Model.predict model a in
             if s > 0.0 then Some (1000.0 /. s) else None)));
  let time_search = ref 0.0 and time_model = ref 0.0 and time_measure = ref 0.0 in
  let timed acc name f =
    Obs.with_span name (fun () ->
        let t0 = Sys.time () in
        let x = f () in
        acc := !acc +. (Sys.time () -. t0);
        x)
  in
  let iter_no = ref 0 in
  let survivors = ref [] in
  (* Iterate until the measurement budget is exhausted (Algorithm 2). A few
     consecutive iterations without any fresh candidate mean the space is
     effectively enumerated. *)
  let continue = ref true in
  let dry_iterations = ref 0 in
  (* A snapshot from a different task must be rejected, not silently
     restored: its model window would corrupt the ring (wrong row width /
     bin ranges) and its assignments would not satisfy this problem. The
     feature layout and the carried assignments are checked against the
     live problem before anything is restored. *)
  (match resume with
  | None -> ()
  | Some s ->
      List.iteri
        (fun i (bins, _) ->
          if not (Model.layout_ok model bins) then
            invalid_arg
              (Printf.sprintf
                 "Cga.run: resume: model sample %d: feature layout mismatch (%d cells, this \
                  task bins %d features)"
                 i (Array.length bins) (Model.n_features model)))
        s.s_model;
      let vars = Problem.vars env.Env.problem in
      let check_assignment ctx a =
        let bound = Assignment.bindings a in
        if List.length bound <> Array.length vars then
          invalid_arg
            (Printf.sprintf
               "Cga.run: resume: %s: binds %d variables, this task has %d" ctx
               (List.length bound) (Array.length vars));
        List.iter
          (fun (v, x) ->
            if not (Array.exists (String.equal v) vars) then
              invalid_arg
                (Printf.sprintf "Cga.run: resume: %s: unknown variable %S" ctx v)
            else if not (Heron_csp.Domain.mem x (Problem.domain env.Env.problem v)) then
              invalid_arg
                (Printf.sprintf
                   "Cga.run: resume: %s: %s = %d is outside this task's domain" ctx v x))
          bound
      in
      List.iteri
        (fun i (a, _) -> check_assignment (Printf.sprintf "survivor %d" i) a)
        s.s_survivors;
      (match s.s_recorder.Env.Recorder.x_best_a with
      | None -> ()
      | Some a -> check_assignment "recorder best assignment" a));
  let rec_ =
    match resume with
    | None -> Env.Recorder.create ?measure_batch ?resilience env ~budget
    | Some s -> Env.Recorder.import ?measure_batch ?resilience env ~budget s.s_recorder
  in
  (match resume with
  | None -> ()
  | Some s ->
      iter_no := s.s_iter;
      dry_iterations := s.s_dry;
      continue := not s.s_stopped;
      survivors := s.s_survivors;
      (match Rng.set_state_hex env.Env.rng s.s_rng_hex with
      | Ok () -> ()
      | Error e -> invalid_arg ("Cga.run: resume: " ^ e));
      Model.restore model s.s_model;
      (* Refit reproduces the checkpointed ensemble exactly: fitting is
         deterministic in the samples, and the original run refit at the
         end of every iteration that recorded new samples. *)
      Model.refit ?pool model);
  let emit_snapshot () =
    match on_snapshot with
    | None -> ()
    | Some f ->
        f
          {
            s_iter = !iter_no;
            s_dry = !dry_iterations;
            s_stopped = not !continue;
            s_rng_hex = Rng.state_hex env.Env.rng;
            s_recorder = Env.Recorder.export rec_;
            s_survivors = !survivors;
            s_model = Model.samples model;
          }
  in
  while !continue && not (Env.Recorder.exhausted rec_) do
    incr iter_no;
    Obs.Counter.incr c_iterations;
    (* Step 1: first generation = random valid assignments + survivors. *)
    let pop0 =
      timed time_search "cga.seed_population" (fun () ->
          let need = max 2 (params.pop_size - List.length !survivors) in
          Solver.rand_sat ?pool env.Env.rng env.Env.problem need
          @ List.map fst !survivors)
    in
    if pop0 = [] then continue := false
    else begin
      (* Model scoring of a whole population fans out across the pool;
         scores come back in population order. *)
      let predict_all assignments =
        List.map2
          (fun a s -> (a, max s 1e-6))
          assignments
          (Model.predict_batch ?pool model assignments)
      in
      (* Step 2: evolve on CSPs for several generations. *)
      let pop = ref (dedupe pop0) in
      timed time_search "cga.evolve" (fun () ->
          for g = 1 to params.generations do
            Obs.Counter.incr c_generations;
            let scored = Array.of_list (predict_all !pop) in
            let chosen = roulette env.Env.rng scored params.pop_size in
            (* Elitism: every current survivor stays in the crossover pool. *)
            let parents = Array.append chosen (Array.of_list (List.map fst !survivors)) in
            let keys =
              match params.key_selection with
              | By_model -> Model.key_variables model params.top_k
              | Random_keys ->
                  let all = Array.copy (Problem.vars env.Env.problem) in
                  Rng.shuffle env.Env.rng all;
                  Array.to_list (Array.sub all 0 (min params.top_k (Array.length all)))
            in
            let csps =
              crossover_csps ~mutation:params.mutation env.Env.rng env.Env.problem ~keys
                ~parents ~n:params.pop_size
            in
            (* Offspring CSPs are independent: solve the whole generation
               on the pool, one split generator per CSP. *)
            let children =
              Solver.solve_all ~max_fails:400 ~max_restarts:0 ?pool env.Env.rng csps
              |> List.filter_map Fun.id
            in
            Obs.Counter.add c_offspring_attempted (List.length csps);
            Obs.Counter.add c_offspring_accepted (List.length children);
            if Obs.enabled () then
              Obs.emit "generation"
                [
                  ("iter", Json.Int !iter_no);
                  ("gen", Json.Int g);
                  ("pop", Json.Int (List.length !pop));
                  ("offspring_attempted", Json.Int (List.length csps));
                  ("offspring_accepted", Json.Int (List.length children));
                ];
            pop := dedupe (children @ !pop)
          done);
      (* Step 3: epsilon-greedy selection of the measurement batch. *)
      let fresh =
        List.filter (fun a -> not (Env.Recorder.seen rec_ a)) !pop
        |> predict_all
        |> List.sort (fun (_, x) (_, y) -> compare y x)
      in
      let batch_n = min params.batch (Env.Recorder.steps_left rec_) in
      let n_explore =
        int_of_float (ceil (params.epsilon *. float_of_int batch_n))
      in
      let n_exploit = max 0 (batch_n - n_explore) in
      let top = List.filteri (fun i _ -> i < n_exploit) fresh |> List.map fst in
      let rest = List.filteri (fun i _ -> i >= n_exploit) fresh |> List.map fst in
      (* Never request more explore samples than [rest] can provide —
         [Rng.sample] would otherwise under-fill the batch silently. *)
      let n_explore = min n_explore (List.length rest) in
      let explore = Rng.sample env.Env.rng rest n_explore in
      let chosen = top @ explore in
      if chosen = [] then begin
        incr dry_iterations;
        if !dry_iterations >= 3 then continue := false
      end
      else begin
        dry_iterations := 0;
        (* The whole batch is measured in parallel; bookkeeping stays in
           submission order inside [eval_batch]. *)
        let latencies =
          timed time_measure "cga.measure" (fun () ->
              Env.Recorder.eval_batch ?pool rec_ chosen)
        in
        let measured = List.combine chosen latencies in
        (* Degraded entries carry a cost-model prediction, not a
           measurement: training on them would be a feedback loop, and
           they must not seed survivors or the incumbent. *)
        let measured =
          List.filter (fun (a, _) -> not (Env.Recorder.degraded rec_ a)) measured
        in
        (* Step 4: update the cost model on the measured scores. *)
        timed time_model "cga.model" (fun () ->
            List.iter (fun (a, l) -> Model.record model a (Env.score l)) measured;
            Model.refit ?pool model);
        let valid =
          List.filter_map (fun (a, l) -> match l with Some v -> Some (a, v) | None -> None)
            measured
        in
        survivors :=
          List.sort (fun (_, x) (_, y) -> compare x y) (valid @ !survivors)
          |> List.filteri (fun i _ -> i < params.survivors)
      end
    end;
    emit_snapshot ()
  done;
  {
    result = Env.Recorder.finish rec_;
    model;
    jobs = (match pool with Some p -> Pool.jobs p | None -> 1);
    time_search_s = !time_search;
    time_model_s = !time_model;
    time_measure_s = !time_measure;
  }
