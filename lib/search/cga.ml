module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Cons = Heron_csp.Cons
module Solver = Heron_csp.Solver
module Model = Heron_cost.Model
module Fmat = Heron_cost.Fmat
module Rng = Heron_util.Rng
module Pool = Heron_util.Pool
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

let c_iterations = Obs.Counter.make "cga.iterations"
let c_generations = Obs.Counter.make "cga.generations"
let c_offspring_attempted = Obs.Counter.make "cga.offspring_attempted"
let c_offspring_accepted = Obs.Counter.make "cga.offspring_accepted"

(* Flat-engine counters ([search.interned] / [search.intern_hits] live in
   {!Intern}). Dedupe and ranking run on the sequential control path, so
   both are independent of pool size. *)
let c_dedupe_hits = Obs.Counter.make "search.dedupe_hits"
let c_rank_rows = Obs.Counter.make "search.rank_rows"

type key_selection = By_model | Random_keys

type params = {
  pop_size : int;
  generations : int;
  batch : int;
  epsilon : float;
  top_k : int;
  survivors : int;
  key_selection : key_selection;
  mutation : bool;
}

let default_params =
  {
    pop_size = 32;
    generations = 3;
    batch = 16;
    epsilon = 0.15;
    top_k = 8;
    survivors = 16;
    key_selection = By_model;
    mutation = true;
  }

type outcome = {
  result : Env.result;
  model : Model.t;
  jobs : int;
  time_search_s : float;
  time_model_s : float;
  time_measure_s : float;
}

(* Everything the exploration loop carries across an iteration boundary.
   Restoring a snapshot and continuing is byte-identical to never having
   stopped: the RNG state covers every stochastic choice, the recorder
   export covers measurements/trace/quarantine, and the model ensemble is
   reproduced from its samples because GBT fitting is deterministic.
   Snapshots speak assignments and key strings, never intern ids — ids
   are a per-run representation, so the on-disk format is engine-
   independent (see {!Checkpoint}). *)
type snapshot = {
  s_iter : int;
  s_dry : int;
  s_stopped : bool;
  s_rng_hex : string;
  s_recorder : Env.Recorder.export;
  s_survivors : (Assignment.t * float) list;
  s_model : (int array * float) list;
}

let crossover_csps ?(mutation = true) rng problem ~keys ~parents ~n =
  if Array.length parents < 2 then []
  else
    List.init n (fun _ ->
        let c1 = Rng.choice rng parents and c2 = Rng.choice rng parents in
        let constraints =
          List.filter_map
            (fun v ->
              match (Assignment.find_opt c1 v, Assignment.find_opt c2 v) with
              | Some a, Some b -> Some (Cons.In (v, List.sort_uniq Int.compare [ a; b ]))
              | _ -> None)
            keys
        in
        let constraints =
          if mutation && constraints <> [] then begin
            let drop = Rng.int rng (List.length constraints) in
            List.filteri (fun i _ -> i <> drop) constraints
          end
          else constraints
        in
        Problem.with_extra problem constraints)

(* ---------- flat population scratch ---------- *)

(* The population lives in reusable int-id arrays persisted across
   iterations: [pop.(0 .. pop_n-1)] are the live candidate ids, [buf] is
   the merge scratch populations are rebuilt through, [stamp]/[round]
   implement O(1) first-occurrence dedupe (a stamped id was already kept
   this round), and [feats] caches each id's binned feature row so
   ranking and model updates never re-bin an assignment. Everything grows
   geometrically and is only ever reused, so a steady-state iteration
   allocates nothing on this path. *)
type scratch = {
  mutable pop : int array;
  mutable pop_n : int;
  mutable buf : int array;
  mutable buf_n : int;
  mutable stamp : int array;
  mutable round : int;
  mutable scores : float array;  (* clamped predicted fitness, by pop index *)
  mutable cum : float array;  (* roulette cumulative weights *)
  mutable sel : int array;  (* roulette winners *)
  mutable fresh : int array;  (* step-3 unseen ids *)
  mutable order : int array;  (* ranking permutation over [fresh] *)
  mutable shuf : int array;  (* epsilon-greedy shuffle scratch *)
  feats : Fmat.t;  (* binned feature row per id *)
  mutable feats_n : int;  (* ids with a cached row: [0, feats_n) *)
}

let grown_int a n =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let cap' = ref (max 64 cap) in
    while n > !cap' do
      cap' := 2 * !cap'
    done;
    let a' = Array.make !cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  end

let grown_float a n =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let cap' = ref (max 64 cap) in
    while n > !cap' do
      cap' := 2 * !cap'
    done;
    let a' = Array.make !cap' 0.0 in
    Array.blit a 0 a' 0 cap;
    a'
  end

let make_scratch nf =
  {
    pop = Array.make 64 0;
    pop_n = 0;
    buf = Array.make 64 0;
    buf_n = 0;
    stamp = [||];
    round = 0;
    scores = [||];
    cum = [||];
    sel = [||];
    fresh = [||];
    order = [||];
    shuf = [||];
    feats = Fmat.create ~n_features:nf ();
    feats_n = 0;
  }

let push_buf sc id =
  sc.buf <- grown_int sc.buf (sc.buf_n + 1);
  sc.buf.(sc.buf_n) <- id;
  sc.buf_n <- sc.buf_n + 1

(* Rebuild [pop] from [buf], keeping the first occurrence of every id —
   [Cga_ref]'s string-keyed [dedupe] as one stamped array pass. *)
let dedupe_buf_into_pop intern sc =
  sc.stamp <- grown_int sc.stamp (Intern.size intern);
  sc.round <- sc.round + 1;
  sc.pop <- grown_int sc.pop sc.buf_n;
  sc.pop_n <- 0;
  for i = 0 to sc.buf_n - 1 do
    let id = sc.buf.(i) in
    if sc.stamp.(id) = sc.round then Obs.Counter.incr c_dedupe_hits
    else begin
      sc.stamp.(id) <- sc.round;
      sc.pop.(sc.pop_n) <- id;
      sc.pop_n <- sc.pop_n + 1
    end
  done

(* Bin the feature rows of ids allocated since the last sync. Ids are
   dense and allocated in order, so the row cache is a high-watermark. *)
let sync_feats model intern sc =
  let n = Intern.size intern in
  if n > sc.feats_n then begin
    Fmat.set_rows sc.feats n;
    for id = sc.feats_n to n - 1 do
      Model.featurize_row model (Intern.assignment intern id) sc.feats id
    done;
    sc.feats_n <- n
  end

(* In-place rank of [order.(0 .. nf-1)] (indices into [fresh]) by
   predicted score descending, index ascending. The index tiebreak makes
   the comparison a total order, so this unstable heapsort produces
   exactly the sequence the frozen engine's stable descending list sort
   does — without allocating. *)
let sort_order sc nf =
  let ord = sc.order and s = sc.scores in
  let cmp i j =
    let c = Float.compare s.(j) s.(i) in
    if c <> 0 then c else Int.compare i j
  in
  let swap i j =
    let t = ord.(i) in
    ord.(i) <- ord.(j);
    ord.(j) <- t
  in
  let rec sift i n =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < n && cmp ord.(l) ord.(!m) > 0 then m := l;
    if r < n && cmp ord.(r) ord.(!m) > 0 then m := r;
    if !m <> i then begin
      swap i !m;
      sift !m n
    end
  in
  for i = (nf / 2) - 1 downto 0 do
    sift i nf
  done;
  for k = nf - 1 downto 1 do
    swap 0 k;
    sift 0 k
  done

let run ?(params = default_params) ?pool ?measure_batch ?resilience ?resume ?on_snapshot
    (env : Env.t) ~budget =
  let params = { params with batch = min params.batch (max 4 (budget / 8)) } in
  let pool = Pool.resolve pool in
  let model = Model.create env.Env.problem in
  (match resilience with
  | None -> ()
  | Some rz ->
      Env.Recorder.set_fallback rz
        (Some
           (fun a ->
             let s = Model.predict model a in
             if s > 0.0 then Some (1000.0 /. s) else None)));
  let time_search = ref 0.0 and time_model = ref 0.0 and time_measure = ref 0.0 in
  let timed acc name f =
    Obs.with_span name (fun () ->
        let t0 = Sys.time () in
        let x = f () in
        acc := !acc +. (Sys.time () -. t0);
        x)
  in
  let iter_no = ref 0 in
  let continue = ref true in
  let dry_iterations = ref 0 in
  (match resume with
  | None -> ()
  | Some s ->
      List.iteri
        (fun i (bins, _) ->
          if not (Model.layout_ok model bins) then
            invalid_arg
              (Printf.sprintf
                 "Cga.run: resume: model sample %d: feature layout mismatch (%d cells, this \
                  task bins %d features)"
                 i (Array.length bins) (Model.n_features model)))
        s.s_model;
      let vars = Problem.vars env.Env.problem in
      let check_assignment ctx a =
        let bound = Assignment.bindings a in
        if List.length bound <> Array.length vars then
          invalid_arg
            (Printf.sprintf
               "Cga.run: resume: %s: binds %d variables, this task has %d" ctx
               (List.length bound) (Array.length vars));
        List.iter
          (fun (v, x) ->
            if not (Array.exists (String.equal v) vars) then
              invalid_arg
                (Printf.sprintf "Cga.run: resume: %s: unknown variable %S" ctx v)
            else if not (Heron_csp.Domain.mem x (Problem.domain env.Env.problem v)) then
              invalid_arg
                (Printf.sprintf
                   "Cga.run: resume: %s: %s = %d is outside this task's domain" ctx v x))
          bound
      in
      List.iteri
        (fun i (a, _) -> check_assignment (Printf.sprintf "survivor %d" i) a)
        s.s_survivors;
      (match s.s_recorder.Env.Recorder.x_best_a with
      | None -> ()
      | Some a -> check_assignment "recorder best assignment" a));
  let rec_ =
    match resume with
    | None -> Env.Recorder.create ?measure_batch ?resilience env ~budget
    | Some s -> Env.Recorder.import ?measure_batch ?resilience env ~budget s.s_recorder
  in
  let intern = Env.Recorder.interner rec_ in
  let sc = make_scratch (Model.n_features model) in
  (* Survivors carry (id, measured latency); ids only ever leave the run
     through [emit_snapshot], as assignments. *)
  let survivors = ref [] in
  (match resume with
  | None -> ()
  | Some s ->
      iter_no := s.s_iter;
      dry_iterations := s.s_dry;
      continue := not s.s_stopped;
      survivors := List.map (fun (a, l) -> (Env.Recorder.intern rec_ a, l)) s.s_survivors;
      (match Rng.set_state_hex env.Env.rng s.s_rng_hex with
      | Ok () -> ()
      | Error e -> invalid_arg ("Cga.run: resume: " ^ e));
      Model.restore model s.s_model;
      Model.refit ?pool model);
  let emit_snapshot () =
    match on_snapshot with
    | None -> ()
    | Some f ->
        f
          {
            s_iter = !iter_no;
            s_dry = !dry_iterations;
            s_stopped = not !continue;
            s_rng_hex = Rng.state_hex env.Env.rng;
            s_recorder = Env.Recorder.export rec_;
            s_survivors =
              List.map (fun (id, l) -> (Intern.assignment intern id, l)) !survivors;
            s_model = Model.samples model;
          }
  in
  (* Score [ids.(0 .. n-1)] into [scores.(0 .. n-1)] through the cached
     feature rows, clamped strictly positive for roulette weights (the
     frozen engine clamps identically before its sorts, so ranking sees
     the same values). *)
  let score_ids ids n =
    sync_feats model intern sc;
    sc.scores <- grown_float sc.scores n;
    Model.predict_gather ?pool model sc.feats ids n sc.scores;
    for i = 0 to n - 1 do
      if sc.scores.(i) < 1e-6 then sc.scores.(i) <- 1e-6
    done
  in
  (* Roulette-wheel selection into [sel.(0 .. n-1)]: cumulative weights
     over the live population plus one [Rng.float] and a binary search
     per draw — draw-for-draw the RNG consumption of the frozen engine. *)
  let roulette_ids n =
    sc.sel <- grown_int sc.sel n;
    let m = sc.pop_n in
    let total = ref 0.0 in
    for i = 0 to m - 1 do
      total := !total +. sc.scores.(i)
    done;
    let total = !total in
    if total <= 0.0 then
      for k = 0 to n - 1 do
        sc.sel.(k) <- sc.pop.(Rng.int env.Env.rng m)
      done
    else begin
      sc.cum <- grown_float sc.cum m;
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        acc := !acc +. sc.scores.(i);
        sc.cum.(i) <- !acc
      done;
      for k = 0 to n - 1 do
        let target = Rng.float env.Env.rng *. total in
        (* Fall back to the LAST element: when floating-point rounding
           leaves the cumulative weight just below [target], the draw
           belongs to the final slot, not to the first. *)
        if sc.cum.(m - 1) < target then sc.sel.(k) <- sc.pop.(m - 1)
        else begin
          let lo = ref 0 and hi = ref (m - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if sc.cum.(mid) >= target then hi := mid else lo := mid + 1
          done;
          sc.sel.(k) <- sc.pop.(!lo)
        end
      done
    end
  in
  while !continue && not (Env.Recorder.exhausted rec_) do
    incr iter_no;
    Obs.Counter.incr c_iterations;
    (* Step 1: first generation = random valid assignments + survivors,
       interned and deduped in one pass over the flat buffer. *)
    timed time_search "cga.seed_population" (fun () ->
        let need = max 2 (params.pop_size - List.length !survivors) in
        let seeds = Solver.rand_sat ?pool env.Env.rng env.Env.problem need in
        sc.buf_n <- 0;
        List.iter (fun a -> push_buf sc (Env.Recorder.intern rec_ a)) seeds;
        List.iter (fun (id, _) -> push_buf sc id) !survivors);
    if sc.buf_n = 0 then continue := false
    else begin
      dedupe_buf_into_pop intern sc;
      (* Step 2: evolve on CSPs for several generations. *)
      timed time_search "cga.evolve" (fun () ->
          for g = 1 to params.generations do
            Obs.Counter.incr c_generations;
            score_ids sc.pop sc.pop_n;
            roulette_ids params.pop_size;
            let ns = List.length !survivors in
            let parents = Array.make (params.pop_size + ns) Assignment.empty in
            for i = 0 to params.pop_size - 1 do
              parents.(i) <- Intern.assignment intern sc.sel.(i)
            done;
            List.iteri
              (fun i (id, _) -> parents.(params.pop_size + i) <- Intern.assignment intern id)
              !survivors;
            let keys =
              match params.key_selection with
              | By_model -> Model.key_variables model params.top_k
              | Random_keys ->
                  let all = Array.copy (Problem.vars env.Env.problem) in
                  Rng.shuffle env.Env.rng all;
                  Array.to_list (Array.sub all 0 (min params.top_k (Array.length all)))
            in
            let csps =
              crossover_csps ~mutation:params.mutation env.Env.rng env.Env.problem ~keys
                ~parents ~n:params.pop_size
            in
            let children =
              Solver.solve_all ~max_fails:400 ~max_restarts:0 ?pool env.Env.rng csps
              |> List.filter_map Fun.id
            in
            Obs.Counter.add c_offspring_attempted (List.length csps);
            Obs.Counter.add c_offspring_accepted (List.length children);
            if Obs.enabled () then
              Obs.emit "generation"
                [
                  ("iter", Json.Int !iter_no);
                  ("gen", Json.Int g);
                  ("pop", Json.Int sc.pop_n);
                  ("offspring_attempted", Json.Int (List.length csps));
                  ("offspring_accepted", Json.Int (List.length children));
                ];
            (* pop <- dedupe (children @ pop), children first. *)
            sc.buf_n <- 0;
            List.iter (fun a -> push_buf sc (Env.Recorder.intern rec_ a)) children;
            sc.buf <- grown_int sc.buf (sc.buf_n + sc.pop_n);
            Array.blit sc.pop 0 sc.buf sc.buf_n sc.pop_n;
            sc.buf_n <- sc.buf_n + sc.pop_n;
            dedupe_buf_into_pop intern sc
          done);
      (* Step 3: epsilon-greedy selection of the measurement batch —
         filter unseen, score through the cached rows, rank in place. *)
      let nf =
        timed time_search "cga.rank" (fun () ->
            sc.fresh <- grown_int sc.fresh sc.pop_n;
            let nf = ref 0 in
            for i = 0 to sc.pop_n - 1 do
              let id = sc.pop.(i) in
              if not (Env.Recorder.seen_id rec_ id) then begin
                sc.fresh.(!nf) <- id;
                incr nf
              end
            done;
            let nf = !nf in
            score_ids sc.fresh nf;
            Obs.Counter.add c_rank_rows nf;
            sc.order <- grown_int sc.order nf;
            for i = 0 to nf - 1 do
              sc.order.(i) <- i
            done;
            sort_order sc nf;
            nf)
      in
      let batch_n = min params.batch (Env.Recorder.steps_left rec_) in
      let n_explore = int_of_float (ceil (params.epsilon *. float_of_int batch_n)) in
      let n_exploit = max 0 (batch_n - n_explore) in
      let n_top = min n_exploit nf in
      (* The exploration draw replays [Rng.sample] on the ranked tail:
         copy the tail ids in rank order and run the full Fisher-Yates
         shuffle (RNG consumption depends on the tail length, not on how
         many ids are taken), then take the first [n_explore]. *)
      let n_rest = nf - n_top in
      sc.shuf <- grown_int sc.shuf n_rest;
      for i = 0 to n_rest - 1 do
        sc.shuf.(i) <- sc.fresh.(sc.order.(n_top + i))
      done;
      for i = n_rest - 1 downto 1 do
        let j = Rng.int env.Env.rng (i + 1) in
        let t = sc.shuf.(i) in
        sc.shuf.(i) <- sc.shuf.(j);
        sc.shuf.(j) <- t
      done;
      let n_explore = min n_explore n_rest in
      let n_chosen = n_top + n_explore in
      if n_chosen = 0 then begin
        incr dry_iterations;
        if !dry_iterations >= 3 then continue := false
      end
      else begin
        dry_iterations := 0;
        let chosen =
          Array.init n_chosen (fun k ->
              if k < n_top then sc.fresh.(sc.order.(k)) else sc.shuf.(k - n_top))
        in
        let latencies =
          timed time_measure "cga.measure" (fun () ->
              Env.Recorder.eval_batch_ids ?pool rec_ chosen)
        in
        let measured = ref [] in
        for i = n_chosen - 1 downto 0 do
          let id = chosen.(i) in
          if not (Env.Recorder.degraded_id rec_ id) then
            measured := (id, latencies.(i)) :: !measured
        done;
        let measured = !measured in
        (* Step 4: update the cost model on the measured scores, feeding
           the cached feature rows straight into the training ring. *)
        timed time_model "cga.model" (fun () ->
            List.iter
              (fun (id, l) -> Model.record_row model sc.feats id (Env.score l))
              measured;
            Model.refit ?pool model);
        let valid =
          List.filter_map
            (fun (id, l) -> match l with Some v -> Some (id, v) | None -> None)
            measured
        in
        survivors :=
          List.sort (fun ((_ : int), x) (_, y) -> Float.compare x y) (valid @ !survivors)
          |> List.filteri (fun i _ -> i < params.survivors)
      end
    end;
    emit_snapshot ()
  done;
  {
    result = Env.Recorder.finish rec_;
    model;
    jobs = (match pool with Some p -> Pool.jobs p | None -> 1);
    time_search_s = !time_search;
    time_model_s = !time_model;
    time_measure_s = !time_measure;
  }
