(* Frozen pre-overhaul CGA loop, kept verbatim as the differential oracle
   for the interned flat-pool engine in {!Cga} (the PR 4/6 playbook).
   Every population pass here rebuilds lists, every dedupe/seen touch
   re-stringifies assignments through the string-keyed {!Env_ref.Recorder},
   and ranking pays full list sorts with polymorphic compare — the cost
   profile the overhaul removes. Do not modify except to keep it
   compiling: the [search_engine] property group and [@bench-search] both
   diff the live engine against this one.

   Shares {!Cga}'s [params], [outcome] and [snapshot] types, so results
   and checkpoints from either engine compare byte for byte. The single
   deliberate delta from the historical loop is that step-3 ranking is
   charged to [time_search_s] (it previously fell between the timing
   buckets); the live engine charges it identically, so the bench ratio
   compares like with like. Results are unaffected. *)

module Problem = Heron_csp.Problem
module Assignment = Heron_csp.Assignment
module Cons = Heron_csp.Cons
module Solver = Heron_csp.Solver
module Model = Heron_cost.Model
module Rng = Heron_util.Rng
module Pool = Heron_util.Pool
module Obs = Heron_obs.Obs
module Json = Heron_obs.Json

(* Shared counter handles (idempotent by name): both engines advance the
   same cga.* metrics. *)
let c_iterations = Obs.Counter.make "cga.iterations"
let c_generations = Obs.Counter.make "cga.generations"
let c_offspring_attempted = Obs.Counter.make "cga.offspring_attempted"
let c_offspring_accepted = Obs.Counter.make "cga.offspring_accepted"

let crossover_csps ?(mutation = true) rng problem ~keys ~parents ~n =
  if Array.length parents < 2 then []
  else
    List.init n (fun _ ->
        let c1 = Rng.choice rng parents and c2 = Rng.choice rng parents in
        let constraints =
          List.filter_map
            (fun v ->
              match (Assignment.find_opt c1 v, Assignment.find_opt c2 v) with
              | Some a, Some b -> Some (Cons.In (v, List.sort_uniq compare [ a; b ]))
              | _ -> None)
            keys
        in
        let constraints =
          if mutation && constraints <> [] then begin
            let drop = Rng.int rng (List.length constraints) in
            List.filteri (fun i _ -> i <> drop) constraints
          end
          else constraints
        in
        Problem.with_extra problem constraints)

let roulette rng scored n =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 scored in
  if total <= 0.0 then Array.init n (fun _ -> fst (Rng.choice rng scored))
  else begin
    let m = Array.length scored in
    let cum = Array.make m 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i (_, w) ->
        acc := !acc +. w;
        cum.(i) <- !acc)
      scored;
    Array.init n (fun _ ->
        let target = Rng.float rng *. total in
        if cum.(m - 1) < target then fst scored.(m - 1)
        else begin
          let lo = ref 0 and hi = ref (m - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if cum.(mid) >= target then hi := mid else lo := mid + 1
          done;
          fst scored.(!lo)
        end)
  end

let dedupe assignments =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun a ->
      let k = Assignment.key a in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    assignments

let run ?(params = Cga.default_params) ?pool ?measure_batch ?resilience ?resume ?on_snapshot
    (env : Env.t) ~budget =
  let params =
    { params with Cga.batch = min params.Cga.batch (max 4 (budget / 8)) }
  in
  let pool = Pool.resolve pool in
  let model = Model.create env.Env.problem in
  (match resilience with
  | None -> ()
  | Some rz ->
      Env_ref.Recorder.set_fallback rz
        (Some
           (fun a ->
             let s = Model.predict model a in
             if s > 0.0 then Some (1000.0 /. s) else None)));
  let time_search = ref 0.0 and time_model = ref 0.0 and time_measure = ref 0.0 in
  let timed acc name f =
    Obs.with_span name (fun () ->
        let t0 = Sys.time () in
        let x = f () in
        acc := !acc +. (Sys.time () -. t0);
        x)
  in
  let iter_no = ref 0 in
  let survivors = ref [] in
  let continue = ref true in
  let dry_iterations = ref 0 in
  (match resume with
  | None -> ()
  | Some s ->
      List.iteri
        (fun i (bins, _) ->
          if not (Model.layout_ok model bins) then
            invalid_arg
              (Printf.sprintf
                 "Cga.run: resume: model sample %d: feature layout mismatch (%d cells, this \
                  task bins %d features)"
                 i (Array.length bins) (Model.n_features model)))
        s.Cga.s_model;
      let vars = Problem.vars env.Env.problem in
      let check_assignment ctx a =
        let bound = Assignment.bindings a in
        if List.length bound <> Array.length vars then
          invalid_arg
            (Printf.sprintf
               "Cga.run: resume: %s: binds %d variables, this task has %d" ctx
               (List.length bound) (Array.length vars));
        List.iter
          (fun (v, x) ->
            if not (Array.exists (String.equal v) vars) then
              invalid_arg
                (Printf.sprintf "Cga.run: resume: %s: unknown variable %S" ctx v)
            else if not (Heron_csp.Domain.mem x (Problem.domain env.Env.problem v)) then
              invalid_arg
                (Printf.sprintf
                   "Cga.run: resume: %s: %s = %d is outside this task's domain" ctx v x))
          bound
      in
      List.iteri
        (fun i (a, _) -> check_assignment (Printf.sprintf "survivor %d" i) a)
        s.Cga.s_survivors;
      (match s.Cga.s_recorder.Env.Recorder.x_best_a with
      | None -> ()
      | Some a -> check_assignment "recorder best assignment" a));
  let rec_ =
    match resume with
    | None -> Env_ref.Recorder.create ?measure_batch ?resilience env ~budget
    | Some s -> Env_ref.Recorder.import ?measure_batch ?resilience env ~budget s.Cga.s_recorder
  in
  (match resume with
  | None -> ()
  | Some s ->
      iter_no := s.Cga.s_iter;
      dry_iterations := s.Cga.s_dry;
      continue := not s.Cga.s_stopped;
      survivors := s.Cga.s_survivors;
      (match Rng.set_state_hex env.Env.rng s.Cga.s_rng_hex with
      | Ok () -> ()
      | Error e -> invalid_arg ("Cga.run: resume: " ^ e));
      Model.restore model s.Cga.s_model;
      Model.refit ?pool model);
  let emit_snapshot () =
    match on_snapshot with
    | None -> ()
    | Some f ->
        f
          {
            Cga.s_iter = !iter_no;
            s_dry = !dry_iterations;
            s_stopped = not !continue;
            s_rng_hex = Rng.state_hex env.Env.rng;
            s_recorder = Env_ref.Recorder.export rec_;
            s_survivors = !survivors;
            s_model = Model.samples model;
          }
  in
  while !continue && not (Env_ref.Recorder.exhausted rec_) do
    incr iter_no;
    Obs.Counter.incr c_iterations;
    (* Step 1: first generation = random valid assignments + survivors. *)
    let pop0 =
      timed time_search "cga.seed_population" (fun () ->
          let need = max 2 (params.Cga.pop_size - List.length !survivors) in
          Solver.rand_sat ?pool env.Env.rng env.Env.problem need
          @ List.map fst !survivors)
    in
    if pop0 = [] then continue := false
    else begin
      let predict_all assignments =
        List.map2
          (fun a s -> (a, max s 1e-6))
          assignments
          (Model.predict_batch ?pool model assignments)
      in
      (* Step 2: evolve on CSPs for several generations. *)
      let pop = ref (dedupe pop0) in
      timed time_search "cga.evolve" (fun () ->
          for g = 1 to params.Cga.generations do
            Obs.Counter.incr c_generations;
            let scored = Array.of_list (predict_all !pop) in
            let chosen = roulette env.Env.rng scored params.Cga.pop_size in
            let parents = Array.append chosen (Array.of_list (List.map fst !survivors)) in
            let keys =
              match params.Cga.key_selection with
              | Cga.By_model -> Model.key_variables model params.Cga.top_k
              | Cga.Random_keys ->
                  let all = Array.copy (Problem.vars env.Env.problem) in
                  Rng.shuffle env.Env.rng all;
                  Array.to_list (Array.sub all 0 (min params.Cga.top_k (Array.length all)))
            in
            let csps =
              crossover_csps ~mutation:params.Cga.mutation env.Env.rng env.Env.problem ~keys
                ~parents ~n:params.Cga.pop_size
            in
            let children =
              Solver.solve_all ~max_fails:400 ~max_restarts:0 ?pool env.Env.rng csps
              |> List.filter_map Fun.id
            in
            Obs.Counter.add c_offspring_attempted (List.length csps);
            Obs.Counter.add c_offspring_accepted (List.length children);
            if Obs.enabled () then
              Obs.emit "generation"
                [
                  ("iter", Json.Int !iter_no);
                  ("gen", Json.Int g);
                  ("pop", Json.Int (List.length !pop));
                  ("offspring_attempted", Json.Int (List.length csps));
                  ("offspring_accepted", Json.Int (List.length children));
                ];
            pop := dedupe (children @ !pop)
          done);
      (* Step 3: epsilon-greedy selection of the measurement batch. *)
      let fresh =
        timed time_search "cga.rank" (fun () ->
            List.filter (fun a -> not (Env_ref.Recorder.seen rec_ a)) !pop
            |> predict_all
            |> List.sort (fun (_, x) (_, y) -> compare y x))
      in
      let batch_n = min params.Cga.batch (Env_ref.Recorder.steps_left rec_) in
      let n_explore =
        int_of_float (ceil (params.Cga.epsilon *. float_of_int batch_n))
      in
      let n_exploit = max 0 (batch_n - n_explore) in
      let top = List.filteri (fun i _ -> i < n_exploit) fresh |> List.map fst in
      let rest = List.filteri (fun i _ -> i >= n_exploit) fresh |> List.map fst in
      let n_explore = min n_explore (List.length rest) in
      let explore = Rng.sample env.Env.rng rest n_explore in
      let chosen = top @ explore in
      if chosen = [] then begin
        incr dry_iterations;
        if !dry_iterations >= 3 then continue := false
      end
      else begin
        dry_iterations := 0;
        let latencies =
          timed time_measure "cga.measure" (fun () ->
              Env_ref.Recorder.eval_batch ?pool rec_ chosen)
        in
        let measured = List.combine chosen latencies in
        let measured =
          List.filter (fun (a, _) -> not (Env_ref.Recorder.degraded rec_ a)) measured
        in
        (* Step 4: update the cost model on the measured scores. *)
        timed time_model "cga.model" (fun () ->
            List.iter (fun (a, l) -> Model.record model a (Env.score l)) measured;
            Model.refit ?pool model);
        let valid =
          List.filter_map (fun (a, l) -> match l with Some v -> Some (a, v) | None -> None)
            measured
        in
        survivors :=
          List.sort (fun (_, x) (_, y) -> compare x y) (valid @ !survivors)
          |> List.filteri (fun i _ -> i < params.Cga.survivors)
      end
    end;
    emit_snapshot ()
  done;
  {
    Cga.result = Env_ref.Recorder.finish rec_;
    model;
    jobs = (match pool with Some p -> Pool.jobs p | None -> 1);
    time_search_s = !time_search;
    time_model_s = !time_model;
    time_measure_s = !time_measure;
  }
