type failure = Timeout | Crash | Hang

type attempt = Measured of float | Invalid | Fault of failure

type policy = {
  max_retries : int;
  deadline_us : float;
  attempt_timeout_us : float;
  crash_cost_us : float;
  backoff0_us : float;
  backoff_mult : float;
}

let default_policy =
  {
    max_retries = 3;
    deadline_us = 100_000.0;
    attempt_timeout_us = 5_000.0;
    crash_cost_us = 100.0;
    backoff0_us = 50.0;
    backoff_mult = 2.0;
  }

type tally = { retries : int; timeouts : int; crashes : int; hangs : int; sim_us : float }

let no_faults = { retries = 0; timeouts = 0; crashes = 0; hangs = 0; sim_us = 0.0 }

type verdict =
  | Ok_measured of { latency : float; tally : tally }
  | Invalid_config of { tally : tally }
  | Degraded of { tally : tally }
  | Quarantined of { tally : tally }

let tally_of = function
  | Ok_measured { tally; _ } | Invalid_config { tally } | Degraded { tally } | Quarantined { tally }
    -> tally

let run policy f =
  let rec go attempt tally =
    match f ~attempt with
    | Measured latency ->
        Ok_measured { latency; tally = { tally with sim_us = tally.sim_us +. latency } }
    | Invalid -> Invalid_config { tally }
    | Fault kind ->
        let tally =
          match kind with
          | Timeout ->
              {
                tally with
                timeouts = tally.timeouts + 1;
                sim_us = tally.sim_us +. policy.attempt_timeout_us;
              }
          | Crash ->
              {
                tally with
                crashes = tally.crashes + 1;
                sim_us = tally.sim_us +. policy.crash_cost_us;
              }
          | Hang ->
              (* A hang is only reclaimed when the candidate deadline
                 fires, so it swallows all remaining simulated time. *)
              { tally with hangs = tally.hangs + 1; sim_us = policy.deadline_us }
        in
        if attempt >= policy.max_retries then Quarantined { tally }
        else
          let backoff = policy.backoff0_us *. (policy.backoff_mult ** float_of_int attempt) in
          if tally.sim_us +. backoff +. policy.attempt_timeout_us > policy.deadline_us then
            Degraded { tally }
          else
            go (attempt + 1)
              { tally with retries = tally.retries + 1; sim_us = tally.sim_us +. backoff }
  in
  go 0 no_faults
