(** Resilient measurement: per-candidate deadlines, bounded retries with
    exponential backoff, quarantine and graceful degradation — the policy
    layer a production tuning service needs when hardware measurements
    fail transiently (see {!Heron_dla.Faults} for the matching injector).

    All timing runs on a {e simulated} clock in microseconds: a retry
    session is a pure function of the attempt outcomes, so fault
    campaigns stay deterministic and jobs-independent. *)

type failure = Timeout | Crash | Hang

(** One measurement attempt, as the measurement stack reports it. *)
type attempt =
  | Measured of float  (** latency in microseconds *)
  | Invalid  (** deterministic validator rejection — never retried *)
  | Fault of failure  (** transient (or persistent) infrastructure fault *)

type policy = {
  max_retries : int;  (** extra attempts after the first failure *)
  deadline_us : float;  (** per-candidate budget on the simulated clock *)
  attempt_timeout_us : float;  (** simulated cost of a timed-out attempt *)
  crash_cost_us : float;  (** simulated cost of a crashed attempt *)
  backoff0_us : float;  (** backoff before the first retry *)
  backoff_mult : float;  (** exponential backoff multiplier *)
}

val default_policy : policy
(** 3 retries, 100 ms deadline, 5 ms attempt timeout, 50 us initial
    backoff doubling per retry. A hang consumes the whole deadline, so a
    hung candidate degrades (or quarantines on its last attempt) rather
    than retrying. *)

(** Cumulative fault accounting for one candidate's retry session. *)
type tally = {
  retries : int;  (** attempts beyond the first actually started *)
  timeouts : int;
  crashes : int;
  hangs : int;
  sim_us : float;  (** simulated time the session consumed *)
}

type verdict =
  | Ok_measured of { latency : float; tally : tally }
      (** a (possibly retried) attempt eventually measured cleanly *)
  | Invalid_config of { tally : tally }
      (** the validator rejected the program — deterministic, score 0 *)
  | Degraded of { tally : tally }
      (** transiently unmeasurable: the deadline cut the session off with
          retries still allowed; the caller falls back to a cost-model
          prediction *)
  | Quarantined of { tally : tally }
      (** every allowed attempt failed: never measure this config again,
          score 0 *)

val run : policy -> (attempt:int -> attempt) -> verdict
(** [run policy f] drives one candidate's retry session: call
    [f ~attempt:0], and on a fault either quarantine (retries exhausted),
    degrade (the deadline cannot fit another backoff + attempt), or back
    off and try [f ~attempt:(n+1)]. Pure in [f]'s outcomes. *)

val tally_of : verdict -> tally
