(** The constraint-based genetic algorithm (paper Algorithms 2 and 3).

    CGA evolves constraint satisfaction problems rather than concrete
    chromosomes: crossover adds IN-constraints binding each key variable to
    one of its parents' values, mutation drops one such constraint, and a
    CSP solver materializes offspring — so every offspring satisfies
    [CSP_initial] by construction. *)

module Assignment = Heron_csp.Assignment
module Model = Heron_cost.Model

type key_selection = By_model | Random_keys
(** How key variables are chosen: by cost-model feature importance (CGA) or
    uniformly at random (the paper's CGA-1 ablation). *)

type params = {
  pop_size : int;
  generations : int;  (** evolution generations per exploration iteration *)
  batch : int;  (** hardware measurements per iteration *)
  epsilon : float;  (** fraction of the batch chosen at random *)
  top_k : int;  (** number of key variables for crossover *)
  survivors : int;  (** best measured assignments seeding the next iteration *)
  key_selection : key_selection;
  mutation : bool;  (** whether to drop one crossover constraint *)
}

val default_params : params

type outcome = {
  result : Env.result;
  model : Model.t;
  jobs : int;  (** domain-pool parallelism the run executed with *)
  time_search_s : float;  (** CGA evolution time, CSP solving included *)
  time_model_s : float;  (** cost-model training time *)
  time_measure_s : float;  (** DLA measurement time *)
}

(** Everything the exploration loop carries across an iteration boundary,
    for crash-safe checkpoint/resume (see {!Checkpoint} for the on-disk
    format). Restoring a snapshot and continuing is byte-identical to a
    run that never stopped. *)
type snapshot = {
  s_iter : int;  (** iterations completed *)
  s_dry : int;  (** consecutive iterations without fresh candidates *)
  s_stopped : bool;  (** the loop terminated (enumerated space) *)
  s_rng_hex : string;  (** search RNG state, {!Heron_util.Rng.state_hex} *)
  s_recorder : Env.Recorder.export;
  s_survivors : (Assignment.t * float) list;
  s_model : (int array * float) list;  (** cost-model training window *)
}

val run :
  ?params:params ->
  ?pool:Heron_util.Pool.t ->
  ?measure_batch:
    (?pool:Heron_util.Pool.t ->
    Heron_csp.Assignment.t array ->
    float option array) ->
  ?resilience:Env.Recorder.resilience ->
  ?resume:snapshot ->
  ?on_snapshot:(snapshot -> unit) ->
  Env.t ->
  budget:int ->
  outcome
(** Explore under the measurement budget. With [?pool] (or a process
    default pool, see {!Heron_util.Pool.set_default}), the three hot
    phases — batch measurement, CSP sampling/crossover solving, and
    cost-model training/scoring — fan out across the pool's domains.

    [?measure_batch] is handed to the {!Env.Recorder}: fresh candidates of
    a measurement batch then go through one batched dispatch (per-operator
    model state reused) instead of pool-mapped scalar calls; results are
    byte-identical either way. Ignored when [?resilience] is installed.

    With [?resilience], every fresh measurement runs as a retry session
    (see {!Env.Recorder}); the degraded-candidate fallback is wired to
    this run's cost model, and degraded values are excluded from model
    training and survivor selection.

    [?on_snapshot] is invoked at the end of every exploration iteration
    with the full loop state; [?resume] restarts from such a snapshot and
    continues byte-identically to an uninterrupted run (the model
    ensemble is rebuilt by one deterministic refit of the checkpointed
    samples). A snapshot that does not fit the current task —
    wrong-width or out-of-range model rows, or carried assignments that
    bind other variables or out-of-domain values — raises
    [Invalid_argument] before anything is restored, so a checkpoint (or
    a transferred warm-start window) from a different operator, shape or
    descriptor can never silently corrupt a run.

    Determinism: per-task generators are split from [env.rng] in index
    order and results always merge by task index, so a fixed seed yields a
    byte-identical [result.trace] whatever the pool size (including no
    pool at all). The per-phase wall-clock fields plus [jobs] let callers
    compute parallel speedups. *)

val crossover_csps :
  ?mutation:bool ->
  Heron_util.Rng.t ->
  Heron_csp.Problem.t ->
  keys:string list ->
  parents:Assignment.t array ->
  n:int ->
  Heron_csp.Problem.t list
(** The constraint-based crossover + mutation operator alone (Algorithm 3),
    exposed for tests and the playground example. *)
