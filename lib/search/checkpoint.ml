module Assignment = Heron_csp.Assignment
module Json = Heron_obs.Json

let version = 1

(* ---------- encoding ---------- *)

let json_of_opt f = function None -> Json.Null | Some x -> f x
let json_of_float x = Json.Float x

let json_of_assignment a =
  Json.List
    (List.map (fun (v, x) -> Json.List [ Json.String v; Json.Int x ]) (Assignment.bindings a))

let json_of_point (p : Env.point) =
  Json.List
    [ Json.Int p.Env.step; json_of_opt json_of_float p.Env.latency; json_of_opt json_of_float p.Env.best ]

let json_of_recorder (x : Env.Recorder.export) =
  Json.Obj
    [
      ("steps", Json.Int x.Env.Recorder.x_steps);
      ("evals", Json.Int x.Env.Recorder.x_evals);
      ("invalid", Json.Int x.Env.Recorder.x_invalid);
      ("best", json_of_opt json_of_float x.Env.Recorder.x_best);
      ("best_a", json_of_opt json_of_assignment x.Env.Recorder.x_best_a);
      ("trace", Json.List (List.map json_of_point x.Env.Recorder.x_trace));
      ( "cache",
        Json.List
          (List.map
             (fun (k, l) -> Json.List [ Json.String k; json_of_opt json_of_float l ])
             x.Env.Recorder.x_cache) );
      ("quarantined", Json.List (List.map (fun k -> Json.String k) x.Env.Recorder.x_quarantined));
      ("degraded", Json.List (List.map (fun k -> Json.String k) x.Env.Recorder.x_degraded));
    ]

let to_json ~label (s : Cga.snapshot) =
  Json.Obj
    [
      ("heron_checkpoint", Json.Int version);
      ("label", Json.String label);
      ("iter", Json.Int s.Cga.s_iter);
      ("dry", Json.Int s.Cga.s_dry);
      ("stopped", Json.Bool s.Cga.s_stopped);
      ("rng", Json.String s.Cga.s_rng_hex);
      ("recorder", json_of_recorder s.Cga.s_recorder);
      ( "survivors",
        Json.List
          (List.map
             (fun (a, l) -> Json.List [ json_of_assignment a; Json.Float l ])
             s.Cga.s_survivors) );
      ( "model",
        Json.List
          (List.map
             (fun (bins, score) ->
               Json.List
                 [ Json.List (Array.to_list (Array.map (fun b -> Json.Int b) bins)); Json.Float score ])
             s.Cga.s_model) );
    ]

let save ~path ~label s =
  Heron_util.Atomic_io.with_retry ~what:"search.checkpoint" (fun () ->
      Heron_util.Atomic_io.write_string ~path (Json.to_string (to_json ~label s) ^ "\n"))

(* ---------- decoding ---------- *)

(* A tiny result-monad decoder: every failure names the path of the
   offending field, so a truncated or hand-edited checkpoint produces an
   actionable diagnostic instead of a stack trace. *)

let ( let* ) = Result.bind

let fail ctx msg =
  if ctx = "" then Error (Printf.sprintf "checkpoint: %s" msg)
  else Error (Printf.sprintf "checkpoint: %s: %s" ctx msg)

let field ctx name obj =
  match Json.member name obj with
  | Some v -> Ok v
  | None -> fail ctx (Printf.sprintf "missing field %S" name)

let as_int ctx = function
  | Json.Int n -> Ok n
  | _ -> fail ctx "expected an integer"

let as_bool ctx = function
  | Json.Bool b -> Ok b
  | _ -> fail ctx "expected a boolean"

let as_string ctx = function
  | Json.String s -> Ok s
  | _ -> fail ctx "expected a string"

let as_float ctx = function
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | _ -> fail ctx "expected a number"

let as_list ctx = function
  | Json.List l -> Ok l
  | _ -> fail ctx "expected an array"

let as_opt f ctx = function Json.Null -> Ok None | v -> Result.map Option.some (f ctx v)

let map_listi ctx f l =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f (Printf.sprintf "%s[%d]" ctx i) x with
        | Ok y -> go (i + 1) (y :: acc) rest
        | Error _ as e -> e)
  in
  go 0 [] l

let dec_assignment ctx v =
  let* pairs = as_list ctx v in
  let* bindings =
    map_listi ctx
      (fun ctx -> function
        | Json.List [ Json.String var; Json.Int x ] -> Ok (var, x)
        | _ -> fail ctx "expected [variable, value]")
      pairs
  in
  Ok (Assignment.of_list bindings)

let dec_point ctx v =
  match v with
  | Json.List [ step; latency; best ] ->
      let* step = as_int (ctx ^ ".step") step in
      let* latency = as_opt as_float (ctx ^ ".latency") latency in
      let* best = as_opt as_float (ctx ^ ".best") best in
      Ok { Env.step; latency; best }
  | _ -> fail ctx "expected [step, latency, best]"

let dec_recorder ctx v =
  let* steps = Result.bind (field ctx "steps" v) (as_int (ctx ^ ".steps")) in
  let* evals = Result.bind (field ctx "evals" v) (as_int (ctx ^ ".evals")) in
  let* invalid = Result.bind (field ctx "invalid" v) (as_int (ctx ^ ".invalid")) in
  let* best = Result.bind (field ctx "best" v) (as_opt as_float (ctx ^ ".best")) in
  let* best_a = Result.bind (field ctx "best_a" v) (as_opt dec_assignment (ctx ^ ".best_a")) in
  let* trace = Result.bind (field ctx "trace" v) (as_list (ctx ^ ".trace")) in
  let* trace = map_listi (ctx ^ ".trace") dec_point trace in
  let* cache = Result.bind (field ctx "cache" v) (as_list (ctx ^ ".cache")) in
  let* cache =
    map_listi (ctx ^ ".cache")
      (fun ctx -> function
        | Json.List [ Json.String k; l ] ->
            let* l = as_opt as_float ctx l in
            Ok (k, l)
        | _ -> fail ctx "expected [key, latency]")
      cache
  in
  let dec_keys name =
    let* l = Result.bind (field ctx name v) (as_list (ctx ^ "." ^ name)) in
    map_listi (ctx ^ "." ^ name) as_string l
  in
  let* quarantined = dec_keys "quarantined" in
  let* degraded = dec_keys "degraded" in
  Ok
    {
      Env.Recorder.x_steps = steps;
      x_evals = evals;
      x_invalid = invalid;
      x_best = best;
      x_best_a = best_a;
      x_trace = trace;
      x_cache = cache;
      x_quarantined = quarantined;
      x_degraded = degraded;
    }

let of_json v =
  let ctx = "" in
  let* ver =
    match Json.member "heron_checkpoint" v with
    | Some (Json.Int n) -> Ok n
    | Some _ -> Error "checkpoint: heron_checkpoint: expected an integer"
    | None -> Error "checkpoint: not a Heron checkpoint (missing \"heron_checkpoint\")"
  in
  let* () =
    if ver = version then Ok ()
    else Error (Printf.sprintf "checkpoint: unsupported version %d (this build reads %d)" ver version)
  in
  let* label = Result.bind (field ctx "label" v) (as_string "label") in
  let* iter = Result.bind (field ctx "iter" v) (as_int "iter") in
  let* dry = Result.bind (field ctx "dry" v) (as_int "dry") in
  let* stopped = Result.bind (field ctx "stopped" v) (as_bool "stopped") in
  let* rng = Result.bind (field ctx "rng" v) (as_string "rng") in
  let* recorder = Result.bind (field ctx "recorder" v) (dec_recorder "recorder") in
  let* survivors = Result.bind (field ctx "survivors" v) (as_list "survivors") in
  let* survivors =
    map_listi "survivors"
      (fun ctx -> function
        | Json.List [ a; l ] ->
            let* a = dec_assignment ctx a in
            let* l = as_float ctx l in
            Ok (a, l)
        | _ -> fail ctx "expected [assignment, latency]")
      survivors
  in
  let* model = Result.bind (field ctx "model" v) (as_list "model") in
  let* model =
    map_listi "model"
      (fun ctx -> function
        | Json.List [ bins; score ] ->
            let* bins = as_list ctx bins in
            let* bins = map_listi ctx as_int bins in
            let* score = as_float ctx score in
            Ok (Array.of_list bins, score)
        | _ -> fail ctx "expected [bins, score]")
      model
  in
  Ok
    ( label,
      {
        Cga.s_iter = iter;
        s_dry = dry;
        s_stopped = stopped;
        s_rng_hex = rng;
        s_recorder = recorder;
        s_survivors = survivors;
        s_model = model;
      } )

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "checkpoint: cannot read %s: %s" path e)
  | content -> (
      match Json.parse (String.trim content) with
      | Error e -> Error (Printf.sprintf "checkpoint: %s: invalid JSON: %s" path e)
      | Ok v -> of_json v)

let snapshot_to_json = to_json
let snapshot_of_json = of_json

let describe (label, s) =
  let r = s.Cga.s_recorder in
  Printf.sprintf
    "label=%S iterations=%d steps=%d evals=%d invalid=%d best=%s cached=%d quarantined=%d \
     degraded=%d survivors=%d model_samples=%d%s"
    label s.Cga.s_iter r.Env.Recorder.x_steps r.Env.Recorder.x_evals r.Env.Recorder.x_invalid
    (match r.Env.Recorder.x_best with
    | None -> "none"
    | Some b -> Printf.sprintf "%.3fus" b)
    (List.length r.Env.Recorder.x_cache)
    (List.length r.Env.Recorder.x_quarantined)
    (List.length r.Env.Recorder.x_degraded)
    (List.length s.Cga.s_survivors)
    (List.length s.Cga.s_model)
    (if s.Cga.s_stopped then " (stopped)" else "")
