(** Frozen pre-overhaul recorder — the differential oracle for the
    interned flat-array engine in {!Env.Recorder}. String-keyed hash
    tables, [Assignment.key] on every touch: the cost profile the
    overhaul removes, kept so the [search_engine] property group and
    [@bench-search] can demand byte-identical results.

    Shares {!Env}'s [t], [point], [result] and [Recorder.export] types;
    only the runtime representation is frozen. *)

module Assignment = Heron_csp.Assignment

module Recorder : sig
  type r
  type resilience

  val make_resilience :
    ?policy:Resilience.policy ->
    (Assignment.t -> attempt:int -> Resilience.attempt) ->
    resilience

  val set_fallback : resilience -> (Assignment.t -> float option) option -> unit

  val create :
    ?cache_cap:int ->
    ?measure_batch:(?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) ->
    ?resilience:resilience ->
    Env.t ->
    budget:int ->
    r

  val exhausted : r -> bool
  val steps_left : r -> int
  val cache_size : r -> int
  val eval : r -> Assignment.t -> float option

  val eval_batch :
    ?pool:Heron_util.Pool.t -> r -> Assignment.t list -> float option list

  val seen : r -> Assignment.t -> bool
  val degraded : r -> Assignment.t -> bool
  val finish : r -> Env.result
  val export : r -> Env.Recorder.export

  val import :
    ?cache_cap:int ->
    ?measure_batch:(?pool:Heron_util.Pool.t -> Assignment.t array -> float option array) ->
    ?resilience:resilience ->
    Env.t ->
    budget:int ->
    Env.Recorder.export ->
    r
end
