(** The DLA Measurer: validates a program, then "runs" it several times on
    the simulator and reports the average latency, exactly as the paper's
    measurement module reports averaged hardware timings. *)

type t = {
  desc : Descriptor.t;
  reps : int;
  count : int Atomic.t;
      (** total measurement invocations so far; atomic because batches of
          candidates are measured in parallel on a domain pool *)
}

val create : ?reps:int -> Descriptor.t -> t

val count : t -> int
(** Measurement invocations so far. *)

val run : t -> Heron_sched.Concrete.t -> (float, Violation.t) result
(** Average latency in microseconds, or the violation that makes the
    program fail to compile/run. *)

val latency_exn : t -> Heron_sched.Concrete.t -> float
(** @raise Failure on an invalid program. *)
