(** The DLA Measurer: validates a program, then "runs" it several times on
    the simulator and reports the average latency, exactly as the paper's
    measurement module reports averaged hardware timings. *)

type t = {
  desc : Descriptor.t;
  reps : int;
  count : int Atomic.t;
      (** total measurement invocations so far; atomic because batches of
          candidates are measured in parallel on a domain pool *)
  ctx : Perf_model.ctx option;
      (** per-operator evaluation context, built eagerly by [create ~op];
          used when it matches the measured program's operator *)
}

val create : ?reps:int -> ?op:Heron_tensor.Op.t -> Descriptor.t -> t
(** With [~op], precomputes the {!Perf_model.ctx} for that operator once,
    so every measurement of its programs skips the per-call hoisting.
    Results are identical with or without it. *)

val count : t -> int
(** Measurement invocations so far. *)

val run : t -> Heron_sched.Concrete.t -> (float, Violation.t) result
(** Average latency in microseconds, or the violation that makes the
    program fail to compile/run. *)

val run_batch :
  ?pool:Heron_util.Pool.t ->
  t ->
  Heron_sched.Concrete.t array ->
  (float, Violation.t) result array
(** One {!run} per program, optionally fanned out across the pool; output
    order matches input order and each entry is byte-identical to the
    scalar call. *)

val latency_exn : t -> Heron_sched.Concrete.t -> float
(** @raise Failure on an invalid program. *)
