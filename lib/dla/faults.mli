(** Deterministic fault injection for the measurement pipeline.

    Real DLA measurements fail in ways the simulator never does: compiles
    time out, kernels crash, boards hang, timings come back noisy. This
    module injects exactly those failures on top of any base measurer,
    keyed purely on [(fault seed, configuration key, attempt number)] via
    stable hashing — no RNG state is consumed, so a fault campaign is
    reproducible from its spec alone, identical for any [--jobs] value,
    and a spec of all-zero rates is byte-for-byte inert. *)

type spec = {
  seed : int;  (** fault-universe seed; independent of the search seed *)
  timeout_rate : float;  (** transient per-attempt timeout probability *)
  crash_rate : float;  (** transient per-attempt crash probability *)
  hang_rate : float;
      (** transient per-attempt hang probability: the measurement never
          returns and is only reclaimed at the candidate's deadline *)
  noise : float;
      (** max multiplicative latency noise: a successful measurement is
          scaled by a per-(config, attempt) factor in [1 ± noise] *)
  persistent : float;
      (** fraction of configurations that fail {e every} attempt (a
          config-dependent miscompile), keyed on the config alone *)
}

val zero : spec
(** All rates and noise zero, seed 0: injects nothing. *)

(** What the injector decides for one measurement attempt. *)
type decision =
  | Noise of float  (** proceed; scale a successful latency by the factor *)
  | Timeout  (** transient: the attempt times out *)
  | Crash  (** transient: the attempt crashes *)
  | Hang  (** transient: the attempt hangs until the candidate deadline *)
  | Persistent  (** this configuration fails every attempt *)

val decide : spec -> key:string -> attempt:int -> decision
(** Pure function of [(spec, key, attempt)]. [Persistent] depends on
    [(spec.seed, key)] only, so it is stable across attempts. With
    [spec = zero] (or any all-zero rates), always [Noise 1.0]. *)

val parse : string -> (spec option, string) result
(** Parse a [--faults] spec: either [off] / [none] / [""] for [Ok None],
    or comma-separated [key=value] pairs over [seed], [timeout], [crash],
    [hang], [noise], [persistent] (unmentioned fields are zero), e.g.
    [timeout=0.1,crash=0.05,noise=0.2,persistent=0.1,seed=3]. Rates and
    the persistent fraction must lie in [0, 1]; noise must be
    non-negative. *)

val to_string : spec -> string
(** Canonical rendering; [parse (to_string s) = Ok (Some s)]. *)

val set_default : spec option -> unit
(** Install a process-default fault spec ([--faults] on the binaries);
    {!Heron.Pipeline.tune} picks it up when no explicit spec is passed. *)

val default : unit -> spec option
val resolve : spec option -> spec option
(** [resolve (Some s)] is [Some s]; [resolve None] is [default ()]. *)
