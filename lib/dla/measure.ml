module Concrete = Heron_sched.Concrete
module Hashing = Heron_util.Hashing
module Obs = Heron_obs.Obs

let c_runs = Obs.Counter.make "measure.runs"
let c_invalid = Obs.Counter.make "measure.invalid"

type t = { desc : Descriptor.t; reps : int; count : int Atomic.t }

let create ?(reps = 3) desc = { desc; reps; count = Atomic.make 0 }

let count t = Atomic.get t.count

let run t prog =
  Atomic.incr t.count;
  Obs.Counter.incr c_runs;
  match Validate.check t.desc prog with
  | Error v ->
      Obs.Counter.incr c_invalid;
      Error v
  | Ok () ->
      let base = Perf_model.latency_us t.desc prog in
      let key = Heron_csp.Assignment.key prog.Concrete.assignment in
      let total = ref 0.0 in
      for rep = 1 to t.reps do
        (* Per-repetition run-to-run noise, smaller than the configuration
           jitter already inside the model. *)
        let eps = Hashing.signed_unit (Printf.sprintf "%s#%d" key rep) in
        total := !total +. (base *. (1.0 +. (0.01 *. eps)))
      done;
      Ok (!total /. float_of_int t.reps)

let latency_exn t prog =
  match run t prog with
  | Ok l -> l
  | Error v -> failwith ("Measure.latency_exn: invalid program: " ^ Violation.to_string v)
