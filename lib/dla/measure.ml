module Concrete = Heron_sched.Concrete
module Hashing = Heron_util.Hashing
module Obs = Heron_obs.Obs

let c_runs = Obs.Counter.make "measure.runs"
let c_invalid = Obs.Counter.make "measure.invalid"

type t = {
  desc : Descriptor.t;
  reps : int;
  count : int Atomic.t;
  ctx : Perf_model.ctx option;
}

let create ?(reps = 3) ?op desc =
  { desc; reps; count = Atomic.make 0; ctx = Option.map (Perf_model.make_ctx desc) op }

let count t = Atomic.get t.count

(* The cached context applies only to programs of the operator it was built
   for; physical equality is the cheap sufficient check (generators reuse
   one [Op.t]). Either path produces the identical latency. *)
let model_latency t (prog : Heron_sched.Concrete.t) =
  match t.ctx with
  | Some ctx when Perf_model.op_of ctx == prog.Concrete.op -> Perf_model.latency_us_ctx ctx prog
  | _ -> Perf_model.latency_us t.desc prog

let run t prog =
  Atomic.incr t.count;
  Obs.Counter.incr c_runs;
  match Validate.check t.desc prog with
  | Error v ->
      Obs.Counter.incr c_invalid;
      Error v
  | Ok () ->
      let base = model_latency t prog in
      let key = Heron_csp.Assignment.key prog.Concrete.assignment in
      let total = ref 0.0 in
      for rep = 1 to t.reps do
        (* Per-repetition run-to-run noise, smaller than the configuration
           jitter already inside the model. *)
        let eps = Hashing.signed_unit (Printf.sprintf "%s#%d" key rep) in
        total := !total +. (base *. (1.0 +. (0.01 *. eps)))
      done;
      Ok (!total /. float_of_int t.reps)

let run_batch ?pool t progs =
  Heron_util.Pool.init ?pool (Array.length progs) (fun i -> run t progs.(i))

let latency_exn t prog =
  match run t prog with
  | Ok l -> l
  | Error v -> failwith ("Measure.latency_exn: invalid program: " ^ Violation.to_string v)
