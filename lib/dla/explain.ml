module Concrete = Heron_sched.Concrete

let report ?problem (desc : Descriptor.t) prog =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match Validate.check desc prog with
  | Ok () -> add "validity: ok"
  | Error v -> add "validity: INVALID — %s" (Violation.to_string v));
  Option.iter
    (fun p ->
      match Validate.check_assignment p prog.Concrete.assignment with
      | Ok () -> add "csp: ok"
      | Error v -> add "csp: INVALID — %s" (Violation.to_string v))
    problem;
  let b = Perf_model.analyze desc prog in
  add "decomposition: %d blocks x %d warps, %d resident/unit, %d wave%s" b.Perf_model.blocks
    b.Perf_model.warps b.Perf_model.blocks_per_unit b.Perf_model.waves
    (if b.Perf_model.waves = 1 then "" else "s");
  List.iter
    (fun (scope, cap) ->
      let used =
        Concrete.stages_in_scope prog scope
        |> List.fold_left (fun acc s -> acc + Concrete.footprint_bytes prog s) 0
      in
      if used > 0 then
        add "scratchpad %-10s %6d / %d bytes (%.0f%%)" scope used cap
          (100.0 *. float_of_int used /. float_of_int cap))
    desc.Descriptor.spm_capacity;
  let total = b.Perf_model.compute_us +. b.Perf_model.mem_us +. b.Perf_model.spm_us in
  let pct x = if total > 0.0 then 100.0 *. x /. total else 0.0 in
  add "time: compute %.1f us (%.0f%%) | off-chip %.1f us (%.0f%%) | on-chip %.1f us (%.0f%%)"
    b.Perf_model.compute_us (pct b.Perf_model.compute_us) b.Perf_model.mem_us
    (pct b.Perf_model.mem_us) b.Perf_model.spm_us (pct b.Perf_model.spm_us);
  add "latency: %.1f us (utilization %.0f%%)" b.Perf_model.latency_us
    (100.0 *. b.Perf_model.utilization);
  Buffer.contents buf
