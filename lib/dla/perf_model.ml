module Concrete = Heron_sched.Concrete
module Template = Heron_sched.Template
module Prim = Heron_sched.Prim
module Op = Heron_tensor.Op
module Hashing = Heron_util.Hashing
module Obs = Heron_obs.Obs

let c_ctx_builds = Obs.Counter.make "perf_model.ctx_builds"
let c_evals = Obs.Counter.make "perf_model.evals"

type breakdown = {
  compute_us : float;
  mem_us : float;
  spm_us : float;
  latency_us : float;
  blocks : int;
  warps : int;
  waves : int;
  blocks_per_unit : int;
  utilization : float;
}

let total_points (prog : Concrete.t) =
  List.fold_left (fun acc (it : Op.iter) -> acc *. float_of_int it.extent) 1.0 prog.op.iters

let clamp01 x = max 0.0 (min 1.0 x)

(* Unroll pragma efficiency: deeper unrolling hides issue latency up to a
   point, then spills the instruction buffer. *)
let unroll_eff (prog : Concrete.t) =
  let stage = Concrete.compute_stage prog in
  let u =
    Concrete.loop_path prog stage
    |> List.fold_left
         (fun acc (l : Concrete.cloop) ->
           match l.ann with Concrete.Unrolled n -> max acc n | _ -> acc)
         1
  in
  let log2 x = log (float_of_int x) /. log 2.0 in
  let base = 0.78 +. (0.22 *. clamp01 (log2 (max u 1) /. 4.0)) in
  if u > 128 then base -. 0.06 else base

(* Intrinsic shape efficiency: square wmma fragments balance the register
   pressure of the A/B fragments; skewed shapes lose a little. *)
let shape_eff = function
  | None -> 1.0
  | Some (m, n, _k) ->
      let skew = abs_float (log (float_of_int m /. float_of_int n) /. log 2.0) in
      1.0 -. (0.03 *. skew)

let vectorized_width (s : Concrete.cstage) =
  List.fold_left
    (fun acc (l : Concrete.cloop) ->
      match l.ann with Concrete.Vectorized v -> max acc v | _ -> acc)
    1 s.loops

(* Everything the model derives from the (descriptor, operator) pair alone
   — scope lists, dtype sizes, bandwidth denominators, peak rates — hoisted
   out of the per-assignment path. Each cached float is produced by the
   exact expression the scalar path used, so [analyze_ctx] is
   value-identical to [analyze]. *)
type ctx = {
  desc : Descriptor.t;
  op : Op.t;  (* the operator the ctx was built for; compare with [==] *)
  dt_by_tensor : (string * int) list;  (* input tensor name -> dtype bytes *)
  out_bytes : float;
  input_bytes : float;
  offchip_scopes : string list;
  onchip_scopes : string list;
  smem_cap : int;
  peak_intrin_per_us : float;
  peak_fallback_per_us : float;
  mem_denom : float;
  spm_denom : float;
  key_prefix : string;
}

let make_ctx (desc : Descriptor.t) (op : Op.t) =
  Obs.Counter.incr c_ctx_builds;
  {
    desc;
    op;
    dt_by_tensor = List.map (fun (t : Op.tensor) -> (t.tname, Op.dtype_bytes t.dt)) op.inputs;
    out_bytes = float_of_int (Op.tensor_bytes op.out);
    input_bytes =
      List.fold_left (fun acc t -> acc +. float_of_int (Op.tensor_bytes t)) 0.0 op.inputs;
    offchip_scopes =
      (match desc.family with
      | Descriptor.Tensorcore -> [ "shared" ]
      | Descriptor.Dlboost -> [ "l2" ]
      | Descriptor.Vta -> [ "vta.inp"; "vta.wgt" ]);
    onchip_scopes =
      (match desc.family with
      | Descriptor.Tensorcore -> [ "wmma.a"; "wmma.b"; "wmma.acc" ]
      | Descriptor.Dlboost -> [ "l1" ]
      | Descriptor.Vta -> [ "vta.acc" ]);
    smem_cap =
      (match desc.family with
      | Descriptor.Tensorcore -> (
          match Descriptor.scope_capacity desc "shared" with Some c -> c | None -> max_int)
      | _ -> max_int);
    peak_intrin_per_us =
      desc.intrin_flops_per_cycle *. float_of_int desc.units *. desc.clock_ghz *. 1000.0;
    peak_fallback_per_us =
      max desc.fallback_flops_per_cycle 1.0
      *. float_of_int desc.units *. desc.clock_ghz *. 1000.0;
    mem_denom = desc.mem_bw_gbs *. 1000.0;
    spm_denom = desc.mem_bw_gbs *. desc.spm_bw_factor *. 1000.0;
    key_prefix = desc.dname ^ "|";
  }

let op_of ctx = ctx.op

(* Dtype bytes behind a cache stage: first matching input tensor, 4 for
   everything else — same first-match semantics as a [List.find_opt] over
   [op.inputs]. *)
let stage_dt_bytes ctx (s : Concrete.cstage) =
  match s.role with
  | Template.Load tensor -> (
      match List.assoc_opt tensor ctx.dt_by_tensor with Some b -> b | None -> 4)
  | _ -> 4

(* Fraction of a 16-byte transaction a vectorized access fills. *)
let vec_eff ctx (s : Concrete.cstage) =
  let bytes = vectorized_width s * stage_dt_bytes ctx s in
  0.3 +. (0.7 *. clamp01 (float_of_int bytes /. 16.0))

(* Shared-memory bank conflict factor from the padded row length. A row
   stride that is a multiple of the full bank set serializes accesses;
   storage_align padding breaks the pattern. *)
let conflict_factor ctx (s : Concrete.cstage) =
  match List.rev s.loops with
  | [] -> 1.0
  | inner :: _ ->
      let dt_bytes = stage_dt_bytes ctx s in
      let row_bytes = (inner.extent + s.align_pad) * dt_bytes in
      let words = row_bytes / 4 in
      if words = 0 then 1.0
      else if words mod 32 = 0 then 8.0
      else if words mod 16 = 0 then 4.0
      else if words mod 8 = 0 then 2.0
      else 1.0

(* How many times a cache stage's tile is loaded within one block: the
   extents of the enclosing loops above the stage body, not counting
   grid/thread decomposition (threads cooperate on one copy). *)
let trips_in_block prog (s : Concrete.cstage) =
  let path = Concrete.loop_path prog s in
  let own = List.length s.loops in
  let above = List.filteri (fun i _ -> i < List.length path - own) path in
  List.fold_left
    (fun acc (l : Concrete.cloop) ->
      match l.ann with
      | Concrete.Bound _ -> acc
      | _ -> acc *. float_of_int l.extent)
    1.0 above

let grid_blocks prog =
  max 1 (Concrete.axis_extent prog Prim.Block_x)
  * max 1 (Concrete.axis_extent prog Prim.Block_y)
  * max 1 (Concrete.axis_extent prog Prim.Core)

let block_warps prog = max 1 (Concrete.axis_extent prog Prim.Thread_y)

let smem_block (desc : Descriptor.t) prog =
  let main_scope =
    match desc.family with
    | Descriptor.Tensorcore -> "shared"
    | Descriptor.Dlboost -> "l2"
    | Descriptor.Vta -> "vta.acc"
  in
  Concrete.stages_in_scope prog main_scope
  |> List.fold_left (fun acc s -> acc + Concrete.footprint_bytes prog s) 0

(* Off-chip and on-chip traffic in bytes for one full kernel. *)
let traffic ctx prog =
  let blocks = float_of_int (grid_blocks prog) in
  let stage_traffic scopes weight_conflicts =
    prog.Concrete.stages
    |> List.filter (fun (s : Concrete.cstage) -> List.mem s.scope scopes)
    |> List.fold_left
         (fun acc (s : Concrete.cstage) ->
           let tile = float_of_int (Concrete.footprint_bytes prog s) in
           let eff = vec_eff ctx s in
           let conflict = if weight_conflicts then conflict_factor ctx s else 1.0 in
           acc +. (blocks *. trips_in_block prog s *. tile *. conflict /. eff))
         0.0
  in
  let staged = stage_traffic ctx.offchip_scopes false in
  (* Programs without explicit cache stages still stream their inputs. *)
  let offchip = (if staged > 0.0 then staged else ctx.input_bytes) +. ctx.out_bytes in
  (* DL Boost: a cache-friendly packed weight layout (e.g. OhwI16o4i)
     reduces effective traffic, as the paper reports (~30%). *)
  let offchip =
    match (ctx.desc.family, Concrete.var_opt prog "packed_layout") with
    | Descriptor.Dlboost, Some 1 -> offchip *. 0.72
    | _ -> offchip
  in
  (* On-chip traffic pays bank conflicts; untensorized programs stream from
     shared directly, modeled by the same stages. *)
  let onchip = stage_traffic ctx.onchip_scopes true in
  let onchip =
    if onchip > 0.0 then onchip
    else
      (* No explicit inner-scope stages: charge the shared-level tiles once
         more for the register streaming, conflicts included. *)
      stage_traffic ctx.offchip_scopes true
  in
  (offchip, onchip)

let analyze_ctx ctx prog =
  Obs.Counter.incr c_evals;
  let desc = ctx.desc in
  let points = total_points prog in
  let mnk = Concrete.tensorize_mnk prog in
  let flops = 2.0 *. points in
  let blocks = grid_blocks prog in
  let warps = block_warps prog in
  (* Resident blocks per unit: limited by scratchpad capacity and warp slots. *)
  let smem = smem_block desc prog in
  let by_smem = if smem <= 0 then 8 else max 1 (ctx.smem_cap / max smem 1) in
  let by_warps = max 1 (desc.max_warps_per_unit / max warps 1) in
  let blocks_per_unit = min 8 (min by_smem by_warps) in
  let concurrency = desc.units * blocks_per_unit in
  let waves = (blocks + concurrency - 1) / concurrency in
  let tail_eff = float_of_int blocks /. float_of_int (waves * concurrency) in
  let occupancy_eff =
    match desc.family with
    | Descriptor.Tensorcore ->
        clamp01 (float_of_int (warps * blocks_per_unit) /. 8.0)
    | Descriptor.Dlboost | Descriptor.Vta -> 1.0
  in
  let util = shape_eff mnk *. unroll_eff prog *. occupancy_eff *. tail_eff in
  let util = max util 1e-3 in
  let peak_per_us =
    match mnk with Some _ -> ctx.peak_intrin_per_us | None -> ctx.peak_fallback_per_us
  in
  let compute_us = flops /. (peak_per_us *. util) in
  let offchip, onchip = traffic ctx prog in
  let mem_us = offchip /. ctx.mem_denom in
  let spm_us = onchip /. ctx.spm_denom in
  let dominant = max compute_us (max mem_us spm_us) in
  let rest = compute_us +. mem_us +. spm_us -. dominant in
  let raw = dominant +. (0.2 *. rest) +. desc.launch_overhead_us in
  let key = ctx.key_prefix ^ Heron_csp.Assignment.key prog.Concrete.assignment in
  let jitter = 1.0 +. (desc.noise *. Hashing.signed_unit key) in
  {
    compute_us;
    mem_us;
    spm_us;
    latency_us = raw *. jitter;
    blocks;
    warps;
    waves;
    blocks_per_unit;
    utilization = util;
  }

let analyze (desc : Descriptor.t) (prog : Concrete.t) = analyze_ctx (make_ctx desc prog.op) prog

let latency_us desc prog = (analyze desc prog).latency_us

let latency_us_ctx ctx prog = (analyze_ctx ctx prog).latency_us

let latency_batch ?pool ctx progs =
  Heron_util.Pool.init ?pool (Array.length progs) (fun i -> latency_us_ctx ctx progs.(i))

let achieved_tflops (op : Op.t) latency_us = op.flops /. latency_us /. 1e6
