(** Human-readable performance reports for a concrete program: where the
    time goes, how the grid maps onto the hardware, and which architectural
    limits bind. Used by the tuning CLI. *)

val report : ?problem:Heron_csp.Problem.t -> Descriptor.t -> Heron_sched.Concrete.t -> string
(** Multi-line report: validity, launch decomposition, scratchpad usage per
    scope against its capacity, and the compute/memory/on-chip time split.
    With [?problem], also reports whether the program's underlying
    assignment satisfies the constrained space ("csp: ok" or the violated
    constraint via {!Validate.check_assignment}). *)
