(** Program validation against a DLA descriptor.

    This is the simulator's ground truth for what real hardware rejects:
    the Heron Space Generator emits constraints that mirror exactly these
    checks, so every assignment drawn from its constrained space passes,
    while unconstrained baselines routinely fail here. *)

val check : Descriptor.t -> Heron_sched.Concrete.t -> (unit, Violation.t) result
(** First violation found, scanning in a fixed order: iteration-space
    coverage, staging-tile data coverage (a cache stage must load at least
    what its consumer reads), intrinsic shape, scratchpad capacities,
    vector widths, thread limits, and family-specific loop-order rules. *)

val is_valid : Descriptor.t -> Heron_sched.Concrete.t -> bool

val check_assignment :
  Heron_csp.Problem.t -> Heron_csp.Assignment.t -> (unit, Violation.t) result
(** The CSP-side check, reported in the same violation vocabulary: the
    first constraint (or declared domain) the assignment violates, as
    {!Violation.Unsatisfied_constraint} carrying the constraint's rendered
    form. This is the only producer of that constructor — hardware checks
    above never see the CSP. *)
