module Concrete = Heron_sched.Concrete
module Template = Heron_sched.Template
module Prim = Heron_sched.Prim

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let check_coverage prog =
  match Concrete.coverage_errors prog with
  | [] -> Ok ()
  | e :: _ -> Error (Violation.Coverage e)

let check_intrinsic (desc : Descriptor.t) prog =
  match (Concrete.tensorize_mnk prog, desc.family) with
  | None, Descriptor.Vta -> Error Violation.Missing_tensorize
  | None, _ -> Ok ()
  | Some (m, n, k), _ ->
      let shape_ok = List.mem (m, n, k) desc.intrin_shapes in
      let product_ok =
        match desc.intrin_mnk_product with None -> true | Some p -> m * n * k = p
      in
      if shape_ok && product_ok then Ok ()
      else Error (Violation.Bad_intrinsic_shape (m, n, k))

let check_spm (desc : Descriptor.t) prog =
  let failure =
    List.find_map
      (fun (scope, cap) ->
        let used =
          Concrete.stages_in_scope prog scope
          |> List.fold_left (fun acc s -> acc + Concrete.footprint_bytes prog s) 0
        in
        if used > cap then Some (Violation.Spm_overflow { scope; used; cap }) else None)
      desc.spm_capacity
  in
  match failure with Some v -> Error v | None -> Ok ()

let check_vectors (desc : Descriptor.t) prog =
  let bad =
    prog.Concrete.stages
    |> List.concat_map (fun (s : Concrete.cstage) -> s.loops)
    |> List.find_map (fun (l : Concrete.cloop) ->
           match l.ann with
           | Concrete.Vectorized v when not (List.mem v desc.vector_lengths) ->
               Some (Violation.Bad_vector_length v)
           | _ -> None)
  in
  match bad with Some v -> Error v | None -> Ok ()

let check_threads (desc : Descriptor.t) prog =
  let warps = Concrete.axis_extent prog Prim.Thread_y in
  let lanes = Concrete.axis_extent prog Prim.Thread_x in
  let threads = warps * lanes in
  if threads > desc.max_threads_per_block then Error (Violation.Too_many_threads threads)
  else Ok ()

(* VTA cannot write the same accumulator address on consecutive cycles:
   the loop immediately enclosing the tensorized tile must be a spatial
   loop of extent >= 2 (or no reduction loop remains above the tile). *)
let check_loop_order (desc : Descriptor.t) prog =
  match desc.family with
  | Descriptor.Tensorcore | Descriptor.Dlboost -> Ok ()
  | Descriptor.Vta -> (
      let stage = Concrete.compute_stage prog in
      let non_tile =
        Concrete.loop_path prog stage
        |> List.filter (fun (l : Concrete.cloop) -> l.ann <> Concrete.Tensorized)
      in
      let has_reduction =
        List.exists
          (fun (l : Concrete.cloop) -> l.kind = Heron_tensor.Op.Reduction && l.extent > 1)
          non_tile
      in
      if not has_reduction then Ok ()
      else
        match List.rev non_tile with
        | [] -> Ok ()
        | inner :: _ ->
            if inner.kind = Heron_tensor.Op.Spatial && inner.extent >= 2 then Ok ()
            else
              Error
                (Violation.Bad_loop_order
                   (Printf.sprintf
                      "innermost loop %s above the gemm tile is %s with extent %d" inner.name
                      (if inner.kind = Heron_tensor.Op.Reduction then "a reduction" else "spatial")
                      inner.extent)))

(* Each staging (load/store cache) tile must cover the data its consumer
   reads: for every original iterator appearing in the stage's loops, the
   tile extent times the enclosing loops' extents must reach the full
   iterator extent. Under-sized staging buffers would compute garbage on
   real hardware, so they are invalid (over-fetch is allowed). *)
let check_cache_coverage prog =
  let failure =
    prog.Concrete.stages
    |> List.find_map (fun (s : Concrete.cstage) ->
           match (s.Concrete.role, s.Concrete.attach) with
           | (Template.Load _ | Template.Store), Some _ when s.Concrete.scope <> "global" ->
               let path = Concrete.loop_path prog s in
               let own = List.length s.Concrete.loops in
               let above = List.filteri (fun i _ -> i < List.length path - own) path in
               let origins =
                 List.map (fun (l : Concrete.cloop) -> l.Concrete.origin) s.Concrete.loops
                 |> List.sort_uniq compare
               in
               List.find_map
                 (fun origin ->
                   match
                     List.find_opt
                       (fun (it : Heron_tensor.Op.iter) -> it.Heron_tensor.Op.iname = origin)
                       prog.Concrete.op.Heron_tensor.Op.iters
                   with
                   | None -> None
                   | Some it ->
                       let prod loops =
                         List.fold_left
                           (fun acc (l : Concrete.cloop) ->
                             if l.Concrete.origin = origin then acc * l.Concrete.extent
                             else acc)
                           1 loops
                       in
                       let covered = prod s.Concrete.loops * prod above in
                       if covered < it.Heron_tensor.Op.extent then
                         Some
                           (Violation.Coverage
                              (Printf.sprintf
                                 "stage %s stages %d of iterator %s's %d elements"
                                 s.Concrete.name covered origin it.Heron_tensor.Op.extent))
                       else None)
                 origins
           | _ -> None)
  in
  match failure with Some v -> Error v | None -> Ok ()

let check_assignment problem a =
  match Heron_csp.Problem.check problem a with
  | Ok () -> Ok ()
  | Error c -> Error (Violation.Unsatisfied_constraint (Heron_csp.Cons.to_string c))

let check desc prog =
  let* () = check_coverage prog in
  let* () = check_cache_coverage prog in
  let* () = check_intrinsic desc prog in
  let* () = check_spm desc prog in
  let* () = check_vectors desc prog in
  let* () = check_threads desc prog in
  check_loop_order desc prog

let is_valid desc prog = match check desc prog with Ok () -> true | Error _ -> false
