module Hashing = Heron_util.Hashing

type spec = {
  seed : int;
  timeout_rate : float;
  crash_rate : float;
  hang_rate : float;
  noise : float;
  persistent : float;
}

let zero =
  { seed = 0; timeout_rate = 0.0; crash_rate = 0.0; hang_rate = 0.0; noise = 0.0; persistent = 0.0 }

type decision = Noise of float | Timeout | Crash | Hang | Persistent

(* Every decision is a threshold test on a stable hash of the full context
   plus a tag naming the draw, so the draws are independent of each other
   and of everything the search's RNG does. *)
let roll spec ~key ~attempt tag =
  Hashing.unit_float (Printf.sprintf "fault:%d:%s:%d:%s" spec.seed key attempt tag)

let decide spec ~key ~attempt =
  if
    spec.persistent > 0.0
    && Hashing.unit_float (Printf.sprintf "fault:%d:%s:persistent" spec.seed key)
       < spec.persistent
  then Persistent
  else if spec.timeout_rate > 0.0 && roll spec ~key ~attempt "timeout" < spec.timeout_rate then
    Timeout
  else if spec.crash_rate > 0.0 && roll spec ~key ~attempt "crash" < spec.crash_rate then Crash
  else if spec.hang_rate > 0.0 && roll spec ~key ~attempt "hang" < spec.hang_rate then Hang
  else if spec.noise > 0.0 then
    Noise
      (1.0
      +. spec.noise
         *. Hashing.signed_unit (Printf.sprintf "fault:%d:%s:%d:noise" spec.seed key attempt))
  else Noise 1.0

let to_string s =
  Printf.sprintf "seed=%d,timeout=%g,crash=%g,hang=%g,noise=%g,persistent=%g" s.seed
    s.timeout_rate s.crash_rate s.hang_rate s.noise s.persistent

let parse str =
  let str = String.trim str in
  match String.lowercase_ascii str with
  | "" | "off" | "none" -> Ok None
  | _ -> (
      let parse_field acc part =
        match acc with
        | Error _ as e -> e
        | Ok s -> (
            match String.index_opt part '=' with
            | None -> Error (Printf.sprintf "fault spec: %S is not key=value" part)
            | Some i -> (
                let k = String.trim (String.sub part 0 i) in
                let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
                let float_v () =
                  match float_of_string_opt v with
                  | Some f when Float.is_finite f -> Ok f
                  | _ -> Error (Printf.sprintf "fault spec: %s=%S is not a number" k v)
                in
                let rate set =
                  Result.bind (float_v ()) (fun f ->
                      if f < 0.0 || f > 1.0 then
                        Error (Printf.sprintf "fault spec: %s=%g out of [0, 1]" k f)
                      else Ok (set f))
                in
                match k with
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some n -> Ok { s with seed = n }
                    | None -> Error (Printf.sprintf "fault spec: seed=%S is not an integer" v))
                | "timeout" -> rate (fun f -> { s with timeout_rate = f })
                | "crash" -> rate (fun f -> { s with crash_rate = f })
                | "hang" -> rate (fun f -> { s with hang_rate = f })
                | "persistent" -> rate (fun f -> { s with persistent = f })
                | "noise" ->
                    Result.bind (float_v ()) (fun f ->
                        if f < 0.0 then Error (Printf.sprintf "fault spec: noise=%g negative" f)
                        else Ok { s with noise = f })
                | _ ->
                    Error
                      (Printf.sprintf
                         "fault spec: unknown key %S (seed|timeout|crash|hang|noise|persistent)" k)))
      in
      match List.fold_left parse_field (Ok zero) (String.split_on_char ',' str) with
      | Ok s -> Ok (Some s)
      | Error _ as e -> e)

let default_spec = ref None
let set_default s = default_spec := s
let default () = !default_spec
let resolve = function Some _ as s -> s | None -> default ()
