(** Analytic performance models for the simulated DLAs.

    The model composes three time components — intrinsic/scalar compute,
    off-chip traffic, and on-chip (scratchpad) traffic — from the concrete
    program's loop structure: grid/thread decomposition, tile footprints
    and reuse (attach) depths, vector widths, unroll pragmas and
    storage-align padding. A small deterministic, configuration-dependent
    jitter makes the landscape rugged, as on real hardware (paper Fig. 11).

    The model assumes the program already passed {!Validate.check}. *)

type breakdown = {
  compute_us : float;
  mem_us : float;  (** off-chip traffic time *)
  spm_us : float;  (** on-chip traffic time, bank conflicts included *)
  latency_us : float;  (** composed latency, jitter applied *)
  blocks : int;
  warps : int;
  waves : int;
  blocks_per_unit : int;
  utilization : float;  (** compute efficiency factor in \[0, 1\] *)
}

val analyze : Descriptor.t -> Heron_sched.Concrete.t -> breakdown

val latency_us : Descriptor.t -> Heron_sched.Concrete.t -> float

(** {1 Batched evaluation}

    Everything the model derives from the (descriptor, operator) pair alone
    — scope lists, dtype sizes, bandwidth denominators, peak rates — can be
    hoisted into a reusable context. Context-based evaluation is
    value-identical to the scalar entry points: the cached floats are
    produced by the exact expressions the scalar path uses. *)

type ctx

val make_ctx : Descriptor.t -> Heron_tensor.Op.t -> ctx
(** Counts one [perf_model.ctx_builds]. *)

val op_of : ctx -> Heron_tensor.Op.t
(** The operator the context was built for; compare with [==] to decide
    whether a cached context applies to a program. *)

val analyze_ctx : ctx -> Heron_sched.Concrete.t -> breakdown
(** [analyze] with the per-operator work pre-hoisted; counts one
    [perf_model.evals] (as does every scalar [analyze]). *)

val latency_us_ctx : ctx -> Heron_sched.Concrete.t -> float

val latency_batch :
  ?pool:Heron_util.Pool.t -> ctx -> Heron_sched.Concrete.t array -> float array
(** Latency per program, optionally fanned out across the pool; output
    order matches input order and every entry equals the scalar
    [latency_us]. *)

val achieved_tflops : Heron_tensor.Op.t -> float -> float
(** [achieved_tflops op latency_us] from the operator's nominal flops. *)
