module Op = Heron_tensor.Op
module Library = Heron.Library

type task = { t_id : int; t_key : string; t_op : Op.t; t_weight : int }

let extract (net : Models.network) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (count, op) ->
      if count > 0 then
        let key = Library.op_key op in
        match Hashtbl.find_opt tbl key with
        | Some (op0, w) -> Hashtbl.replace tbl key (op0, w + count)
        | None ->
            Hashtbl.add tbl key (op, count);
            order := key :: !order)
    net.Models.layers;
  List.rev !order
  |> List.mapi (fun i key ->
         let op, w = Hashtbl.find tbl key in
         { t_id = i; t_key = key; t_op = op; t_weight = w })

let weights tasks =
  let n = List.length tasks in
  let w = Array.make n 1.0 in
  List.iter (fun t -> w.(t.t_id) <- float_of_int t.t_weight) tasks;
  w

let to_string t = Printf.sprintf "%dx %s" t.t_weight t.t_key
