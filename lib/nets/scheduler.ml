module Json = Heron_obs.Json

type policy = Gradient | Round_robin | Custom of (view -> float)

and view = {
  v_id : int;
  v_weight : float;
  v_rounds : int;
  v_alloc : int;
  v_best : float option;
  v_prev_best : float option;
  v_done : bool;
}

type slot = {
  weight : float;
  mutable rounds : int;
  mutable alloc : int;
  mutable best : float option;
  mutable prev_best : float option;
  mutable delta : float;  (** projected next-round latency gain, us *)
  mutable done_ : bool;
  mutable last_round : int;  (** global round index last scheduled, -1 never *)
}

type t = {
  policy : policy;
  slice : int;
  warmup : int;
  mutable remaining : int;
  mutable round : int;  (** rounds committed so far *)
  mutable rr : int;  (** round-robin scan origin *)
  slots : slot array;
}

let version = 1

let create ?(policy = Gradient) ?(slice = 16) ?(warmup = 1) ~budget weights =
  if Array.length weights = 0 then invalid_arg "Scheduler.create: no tasks";
  if budget <= 0 then invalid_arg "Scheduler.create: budget must be positive";
  if slice <= 0 then invalid_arg "Scheduler.create: slice must be positive";
  Array.iter
    (fun w ->
      if not (w > 0.0) then invalid_arg "Scheduler.create: weights must be positive")
    weights;
  {
    policy;
    slice;
    warmup;
    remaining = budget;
    round = 0;
    rr = 0;
    slots =
      Array.map
        (fun weight ->
          {
            weight;
            rounds = 0;
            alloc = 0;
            best = None;
            prev_best = None;
            delta = 0.0;
            done_ = false;
            last_round = -1;
          })
        weights;
  }

let view_of t i =
  let s = t.slots.(i) in
  {
    v_id = i;
    v_weight = s.weight;
    v_rounds = s.rounds;
    v_alloc = s.alloc;
    v_best = s.best;
    v_prev_best = s.prev_best;
    v_done = s.done_;
  }

let views t = Array.init (Array.length t.slots) (view_of t)
let remaining t = t.remaining

(* A task that keeps returning no result (fully invalid space) must not
   absorb the whole budget on optimism: after [warmup + 3] empty rounds
   its estimate drops to zero and it only gets leftover slices. *)
let gradient_gain t i =
  let s = t.slots.(i) in
  if s.done_ then neg_infinity
  else
    match s.best with
    | None -> if s.rounds < t.warmup + 3 then infinity else 0.0
    | Some _ -> s.weight *. s.delta

let gain t i =
  let s = t.slots.(i) in
  if s.done_ then neg_infinity
  else
    match t.policy with
    | Gradient -> gradient_gain t i
    | Round_robin -> 0.0
    | Custom f -> f (view_of t i)

let active t = Array.exists (fun s -> not s.done_) t.slots

let pick_by_gain t estimate =
  let n = Array.length t.slots in
  (* Warmup floor: while an active task sits below [warmup] rounds, only
     such tasks are candidates. *)
  let starved i = (not t.slots.(i).done_) && t.slots.(i).rounds < t.warmup in
  let any_starved = ref false in
  for i = 0 to n - 1 do
    if starved i then any_starved := true
  done;
  let best = ref (-1) in
  for i = 0 to n - 1 do
    if (not t.slots.(i).done_) && ((not !any_starved) || starved i) then
      if !best < 0 then best := i
      else
        let gi = estimate i and gb = estimate !best in
        if
          gi > gb
          || gi = gb
             && (t.slots.(i).last_round < t.slots.(!best).last_round
                || t.slots.(i).last_round = t.slots.(!best).last_round && i < !best)
        then best := i
  done;
  if !best < 0 then None else Some !best

let pick_round_robin t =
  let n = Array.length t.slots in
  let rec scan k =
    if k = n then None
    else
      let i = (t.rr + k) mod n in
      if t.slots.(i).done_ then scan (k + 1) else Some i
  in
  scan 0

let next t =
  if t.remaining <= 0 || not (active t) then None
  else
    let picked =
      match t.policy with
      | Round_robin -> pick_round_robin t
      | Gradient -> pick_by_gain t (gradient_gain t)
      | Custom f ->
          pick_by_gain t (fun i ->
              if t.slots.(i).done_ then neg_infinity else f (view_of t i))
    in
    Option.map (fun i -> (i, min t.slice t.remaining)) picked

let report t ~task ~alloc ~best ~done_ =
  let n = Array.length t.slots in
  if task < 0 || task >= n then invalid_arg "Scheduler.report: task out of range";
  let s = t.slots.(task) in
  (match (s.best, best) with
  | None, Some b -> s.delta <- b *. 0.5
  | Some p, Some b when b < p -> s.delta <- b *. (p -. b) /. p
  | _ -> s.delta <- s.delta *. 0.5);
  s.prev_best <- s.best;
  (match best with Some _ -> s.best <- best | None -> ());
  s.rounds <- s.rounds + 1;
  s.alloc <- s.alloc + alloc;
  s.done_ <- s.done_ || done_;
  s.last_round <- t.round;
  t.round <- t.round + 1;
  t.rr <- (task + 1) mod n;
  t.remaining <- t.remaining - alloc

(* ---------- checkpoint serialization ---------- *)

let json_of_opt = function None -> Json.Null | Some x -> Json.Float x

let export t =
  let policy_tag =
    match t.policy with
    | Gradient -> "gradient"
    | Round_robin -> "round_robin"
    | Custom _ -> "custom"
  in
  Json.Obj
    [
      ("heron_scheduler", Json.Int version);
      ("policy", Json.String policy_tag);
      ("slice", Json.Int t.slice);
      ("warmup", Json.Int t.warmup);
      ("remaining", Json.Int t.remaining);
      ("round", Json.Int t.round);
      ("rr", Json.Int t.rr);
      ( "tasks",
        Json.List
          (Array.to_list
             (Array.map
                (fun s ->
                  Json.Obj
                    [
                      ("weight", Json.Float s.weight);
                      ("rounds", Json.Int s.rounds);
                      ("alloc", Json.Int s.alloc);
                      ("best", json_of_opt s.best);
                      ("prev_best", json_of_opt s.prev_best);
                      ("delta", Json.Float s.delta);
                      ("done", Json.Bool s.done_);
                      ("last_round", Json.Int s.last_round);
                    ])
                t.slots)) );
    ]

let ( let* ) = Result.bind

let fail ctx msg = Error (Printf.sprintf "scheduler: %s: %s" ctx msg)

let field ctx name obj =
  match Json.member name obj with
  | Some v -> Ok v
  | None -> fail ctx (Printf.sprintf "missing field %S" name)

let as_int ctx = function
  | Json.Int n -> Ok n
  | _ -> fail ctx "expected an integer"

let as_float ctx = function
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | _ -> fail ctx "expected a number"

let as_bool ctx = function
  | Json.Bool b -> Ok b
  | _ -> fail ctx "expected a boolean"

let as_opt_float ctx = function
  | Json.Null -> Ok None
  | v -> Result.map Option.some (as_float ctx v)

let import v =
  let* ver =
    match Json.member "heron_scheduler" v with
    | Some (Json.Int n) -> Ok n
    | Some _ -> fail "heron_scheduler" "expected an integer"
    | None -> Error "scheduler: not a scheduler snapshot (missing \"heron_scheduler\")"
  in
  let* () =
    if ver = version then Ok ()
    else
      Error
        (Printf.sprintf "scheduler: unsupported version %d (this build reads %d)" ver version)
  in
  let as_string ctx = function
    | Json.String s -> Ok s
    | _ -> fail ctx "expected a string"
  in
  let* policy =
    let* tag = Result.bind (field "" "policy" v) (as_string "policy") in
    match tag with
    | "gradient" -> Ok Gradient
    | "round_robin" -> Ok Round_robin
    | "custom" -> Error "scheduler: a custom-policy snapshot cannot be restored"
    | other -> fail "policy" (Printf.sprintf "unknown policy %S" other)
  in
  let* slice = Result.bind (field "" "slice" v) (as_int "slice") in
  let* warmup = Result.bind (field "" "warmup" v) (as_int "warmup") in
  let* remaining = Result.bind (field "" "remaining" v) (as_int "remaining") in
  let* round = Result.bind (field "" "round" v) (as_int "round") in
  let* rr = Result.bind (field "" "rr" v) (as_int "rr") in
  let* tasks =
    match Json.member "tasks" v with
    | Some (Json.List l) -> Ok l
    | Some _ -> fail "tasks" "expected an array"
    | None -> fail "" "missing field \"tasks\""
  in
  let* slots =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | tv :: rest ->
          let ctx name = Printf.sprintf "tasks[%d].%s" i name in
          let* weight = Result.bind (field (ctx "weight") "weight" tv) (as_float (ctx "weight")) in
          let* rounds = Result.bind (field (ctx "rounds") "rounds" tv) (as_int (ctx "rounds")) in
          let* alloc = Result.bind (field (ctx "alloc") "alloc" tv) (as_int (ctx "alloc")) in
          let* best = Result.bind (field (ctx "best") "best" tv) (as_opt_float (ctx "best")) in
          let* prev_best =
            Result.bind (field (ctx "prev_best") "prev_best" tv) (as_opt_float (ctx "prev_best"))
          in
          let* delta = Result.bind (field (ctx "delta") "delta" tv) (as_float (ctx "delta")) in
          let* done_ = Result.bind (field (ctx "done") "done" tv) (as_bool (ctx "done")) in
          let* last_round =
            Result.bind (field (ctx "last_round") "last_round" tv) (as_int (ctx "last_round"))
          in
          go (i + 1)
            ({ weight; rounds; alloc; best; prev_best; delta; done_; last_round } :: acc)
            rest
    in
    go 0 [] tasks
  in
  let* () = if slots = [] then fail "tasks" "no tasks" else Ok () in
  Ok { policy; slice; warmup; remaining; round; rr; slots = Array.of_list slots }
