(** Gradient-based measurement-budget allocation across tuning tasks
    (Ansor-style task scheduling).

    The scheduler slices a total budget into rounds of [slice] trials.
    Each round goes to the task whose continued tuning is estimated to
    shave the most off the weighted end-to-end latency
    [sum_i w_i * best_i]. The gain estimate is optimistic for tasks that
    have not produced a result yet (so every task warms up), then tracks
    observed improvement with geometric decay: a round that improves
    [prev -> best] projects a next-round delta of [best * (prev - best) /
    prev]; a round without improvement halves the projection.

    The scheduler is pure state-machine code: no RNG, no clock, no I/O.
    Ties on the gain estimate break deterministically — least recently
    scheduled first, then lowest task id — which makes the allocation
    trace byte-stable across [--jobs] and, under a constant gain
    estimate, identical to round-robin order. *)

type policy =
  | Gradient  (** weighted marginal-gain allocation (the default) *)
  | Round_robin  (** cyclic equal slices — the ablation baseline *)
  | Custom of (view -> float)
      (** user-supplied gain estimator over the task's public view; rounds
          go to the argmax with the same deterministic tie-break *)

and view = {
  v_id : int;
  v_weight : float;
  v_rounds : int;  (** rounds this task has received *)
  v_alloc : int;  (** trials allocated to this task so far *)
  v_best : float option;  (** best latency reported, us *)
  v_prev_best : float option;  (** best before the last reported round *)
  v_done : bool;
}

type t

val create : ?policy:policy -> ?slice:int -> ?warmup:int -> budget:int -> float array -> t
(** A scheduler over [Array.length weights] tasks ([t_id]-indexed).
    [slice] (default 16) is the trials-per-round granularity; [warmup]
    (default 1) is the floor: no task is left below [warmup] rounds while
    it is still active and budget remains.
    @raise Invalid_argument on empty weights, non-positive budget/slice. *)

val next : t -> (int * int) option
(** [next s] picks the task for the upcoming round: [Some (task, trials)]
    with [trials = min slice remaining], or [None] when the budget is
    exhausted or every task is done. Pure: does not advance the state —
    call {!report} with the outcome to commit the round. Successive
    allocations sum exactly to the budget (conservation). *)

val report : t -> task:int -> alloc:int -> best:float option -> done_:bool -> unit
(** Commit a round: [task] consumed [alloc] trials and its best latency
    now stands at [best]. [done_] marks the task finished (search space
    enumerated) — it will never be scheduled again. *)

val views : t -> view array
val remaining : t -> int
val gain : t -> int -> float
(** The current gain estimate for a task — [neg_infinity] once done.
    Exposed for the conservation/equivalence properties in [lib/check]. *)

val export : t -> Heron_obs.Json.t
(** Versioned JSON of the full scheduler state, for embedding in the
    network-tuner checkpoint. *)

val import : Heron_obs.Json.t -> (t, string) result
(** Inverse of {!export}; diagnostics name the offending field. The
    restored scheduler continues byte-identically. *)
