(** Tuning-task extraction: the distinct (operator, shape) pairs of a
    network, with how often each occurs.

    Layers sharing an operator key (see {!Heron.Library.op_key}) are one
    task — they reuse one tuned schedule — so their multiplicities sum
    into the task's weight. End-to-end network latency is then
    [sum_i weight_i * best_latency_i], which is what the scheduler's
    gradient allocation optimizes. *)

module Op = Heron_tensor.Op

type task = {
  t_id : int;  (** dense index, first-appearance order *)
  t_key : string;  (** canonical operator key, {!Heron.Library.op_key} *)
  t_op : Op.t;
  t_weight : int;  (** summed layer multiplicity, >= 1 *)
}

val extract : Models.network -> task list
(** Deduplicate [net.layers] by operator key. Deterministic: tasks appear
    in first-appearance order of their key, [t_id] is the position in the
    returned list, and duplicate layers contribute their multiplicities to
    the first occurrence's weight. Layers with non-positive multiplicity
    are ignored. *)

val weights : task list -> float array
(** [t_weight] per task, as floats, indexed by [t_id]. *)

val to_string : task -> string
(** ["<weight>x <key>"] — for logs and reports. *)
