module Op = Heron_tensor.Op

type network = { net_name : string; layers : (int * Op.t) list }

let batch = 16

let c2d ?(stride = 1) ?(pad = 1) ci h co k =
  Op.conv2d ~n:batch ~ci ~h ~w:h ~co ~kh:k ~kw:k ~stride ~pad ()

let gemm m n k = Op.gemm ~m ~n ~k ()

(* Representative bottleneck layers; 1x1 convolutions dominate. *)
let resnet50 =
  {
    net_name = "ResNet-50";
    layers =
      [
        (1, c2d ~stride:2 ~pad:3 16 224 64 7);  (* stem (ci 3 padded to 16) *)
        (3, c2d ~pad:0 64 56 64 1);
        (3, c2d 64 56 64 3);
        (3, c2d ~pad:0 64 56 256 1);
        (4, c2d ~pad:0 256 28 128 1);
        (4, c2d 128 28 128 3);
        (4, c2d ~pad:0 128 28 512 1);
        (6, c2d ~pad:0 512 14 256 1);
        (6, c2d 256 14 256 3);
        (6, c2d ~pad:0 256 14 1024 1);
        (3, c2d ~pad:0 1024 7 512 1);
        (3, c2d 512 7 512 3);
        (3, c2d ~pad:0 512 7 2048 1);
        (1, gemm batch 1000 2048);  (* classifier *)
      ];
  }

let vgg16 =
  {
    net_name = "VGG-16";
    layers =
      [
        (1, c2d 16 224 64 3);  (* ci 3 padded to 16 *)
        (1, c2d 64 224 64 3);
        (1, c2d 64 112 128 3);
        (1, c2d 128 112 128 3);
        (1, c2d 128 56 256 3);
        (2, c2d 256 56 256 3);
        (1, c2d 256 28 512 3);
        (2, c2d 512 28 512 3);
        (3, c2d 512 14 512 3);
        (1, gemm batch 4096 25088);
        (1, gemm batch 4096 4096);
        (1, gemm batch 1000 4096);
      ];
  }

let inception_v3 =
  {
    net_name = "Inception-V3";
    layers =
      [
        (1, c2d ~stride:2 ~pad:0 16 299 32 3);
        (1, c2d ~pad:0 32 149 32 3);
        (1, c2d 32 147 64 3);
        (4, c2d ~pad:0 192 35 64 1);
        (4, c2d ~pad:2 64 35 96 5);
        (6, c2d ~pad:0 288 17 128 1);
        (6, c2d 128 17 192 3);
        (4, c2d ~pad:0 768 8 192 1);
        (4, c2d 192 8 320 3);
        (2, c2d ~pad:0 1280 8 384 1);
        (1, gemm batch 1000 2048);
      ];
  }

(* BERT-base, sequence length 128: 12 identical transformer layers. *)
let bert =
  let tokens = batch * 128 in
  let heads = 12 in
  {
    net_name = "BERT";
    layers =
      [
        (36, gemm tokens 768 768);  (* Q, K, V projections, 12 layers *)
        (12, Op.bmm ~b:(batch * heads) ~m:128 ~n:128 ~k:64 ());  (* QK^T *)
        (12, Op.bmm ~b:(batch * heads) ~m:128 ~n:64 ~k:128 ());  (* attn x V *)
        (12, gemm tokens 768 768);  (* output projection *)
        (12, gemm tokens 3072 768);  (* FFN up *)
        (12, gemm tokens 768 3072);  (* FFN down *)
      ];
  }

(* Two-task toy network for tests and the @nets-quick gate: duplicate
   32-cubed GEMM layers that must dedup with summed weights, plus one
   distinct shape. Small enough that a budget of a few dozen trials tunes
   both tasks in seconds. *)
let tiny =
  {
    net_name = "Tiny";
    layers = [ (2, gemm 32 32 32); (1, gemm 48 48 32); (1, gemm 32 32 32) ];
  }

(* Miniature for the nets benchmark: one heavy, large-space task (whose
   latency keeps improving with budget — the gradient scheduler's
   favorable regime), one lighter same-family neighbour (the transfer
   target) and one tiny cross-family task, with strongly skewed weights. *)
let mini =
  {
    net_name = "Mini";
    layers =
      [
        (12, gemm 256 256 256);
        (2, gemm 192 192 192);
        (1, Op.bmm ~b:4 ~m:32 ~n:32 ~k:32 ());
      ];
  }

let all = [ resnet50; vgg16; inception_v3; bert ]

let find name =
  let canon s =
    String.lowercase_ascii s
    |> String.map (function '-' | '_' | ' ' -> '.' | c -> c)
  in
  let want = canon name in
  List.find_opt (fun n -> canon n.net_name = want) (tiny :: mini :: all)

let total_flops net =
  List.fold_left
    (fun acc (count, (op : Op.t)) -> acc +. (float_of_int count *. op.Op.flops))
    0.0 net.layers
