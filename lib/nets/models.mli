(** Layer tables for the four evaluated networks (batch 16).

    Each network is a list of (multiplicity, operator): the distinct
    compute-heavy layers with how many times they occur. End-to-end network
    latency for a method is the multiplicity-weighted sum of its per-layer
    latencies (graph-level effects such as fusion are out of scope, as in
    the paper's per-backend comparison). *)

module Op = Heron_tensor.Op

type network = { net_name : string; layers : (int * Op.t) list }

val resnet50 : network
val vgg16 : network
val inception_v3 : network
val bert : network

val tiny : network
(** Two-task toy network (duplicate layers included) for tests and the
    [@nets-quick] gate. *)

val mini : network
(** Three-task, weight-skewed miniature for the [@bench-nets]
    comparison. *)

val all : network list
(** The four evaluated networks ({!tiny}/{!mini} are test fixtures, not
    part of the paper suite). *)

val find : string -> network option
(** Case- and separator-insensitive lookup by name over {!all} plus
    {!tiny} and {!mini} (["resnet-50"], ["ResNet_50"] and ["resnet.50"]
    all resolve). *)

val total_flops : network -> float
