(** Whole-network multi-task tuning: extract the distinct tasks of a
    network, slice the measurement budget into rounds under a
    {!Scheduler} policy, tune each round's task by resuming its CGA
    search from the previous round's snapshot, and assemble the winners
    into one {!Heron.Library}.

    Two cross-task mechanisms ride on the per-task searches:

    - {b Budget allocation}: every round goes to the task with the
      highest estimated marginal weighted end-to-end gain (or cyclically,
      under [Round_robin]).
    - {b Cost-model transfer}: a task's very first round may warm-start
      its cost model from the training window of an already-tuned task,
      re-binned through the shape-invariant feature view
      ({!Heron_cost.Transfer}). [~transfer:false] disables this, leaving
      each per-task search byte-identical to a hand-rolled sequence of
      resumed {!Heron_search.Cga.run} calls with the same allocation.

    Determinism: per-task seeds are derived from the run seed and the
    task key alone, the scheduler uses no RNG, and transfer donors are
    chosen by (window size, task id) — so the allocation trace and the
    final library are byte-identical at any [--jobs] and across
    kill/resume cycles. *)

module Op = Heron_tensor.Op
module Assignment = Heron_csp.Assignment
module Descriptor = Heron_dla.Descriptor
module Env = Heron_search.Env
module Cga = Heron_search.Cga

type task_report = {
  tr_task : Tasks.task;
  tr_rounds : int;  (** scheduler rounds this task received *)
  tr_alloc : int;  (** trials allocated to it *)
  tr_steps : int;  (** measurement steps it actually consumed *)
  tr_best : float option;
  tr_best_assignment : Assignment.t option;
  tr_trace : Env.point list;  (** cumulative, in step order *)
  tr_transferred : bool;  (** warm-started from another task's window *)
}

type result = {
  r_network : Models.network;
  r_desc : Descriptor.t;
  r_reports : task_report list;  (** in [t_id] order *)
  r_allocations : (int * int) list;  (** (task id, trials) per round *)
  r_library : Heron.Library.t;
  r_latency_us : float option;
      (** weighted end-to-end latency, [None] while any task lacks a
          valid schedule *)
  r_measurements : int;  (** DLA measurer invocations, all tasks *)
}

val run_label :
  Descriptor.t ->
  Models.network ->
  budget:int ->
  seed:int ->
  slice:int ->
  policy:Scheduler.policy ->
  transfer:bool ->
  string
(** Identity of a network-tuning run for checkpoint label checks. *)

val task_seed : seed:int -> string -> int
(** The per-task search seed: run seed mixed with the task key's hash. A
    pure function of durable state, so neither round order, nor [--jobs],
    nor a kill/resume cycle can shift a task's tuning stream. *)

val tune :
  ?budget:int ->
  ?seed:int ->
  ?slice:int ->
  ?policy:Scheduler.policy ->
  ?transfer:bool ->
  ?params:Cga.params ->
  ?pool:Heron_util.Pool.t ->
  ?checkpoint:string ->
  ?resume:string ->
  ?kill_after:int ->
  Descriptor.t ->
  Models.network ->
  result
(** Tune the whole network under a total measurement budget (default
    256), [slice] trials per round (default 16).

    [?checkpoint] writes one atomic JSON file after every round, with
    the scheduler state and every task's embedded CGA snapshot;
    [?resume] restores it (refusing a label mismatch or a task-set
    mismatch) and continues byte-identically to an uninterrupted run.
    [?kill_after n] exits the process with status 3 after the [n]th
    checkpoint write — the crash-simulation hook used by tests.

    @raise Invalid_argument when the network has no tasks or [?resume]
    names an unreadable, invalid or mismatched checkpoint. *)
